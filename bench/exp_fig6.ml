(* Figure 6: latency of the best relation-centric dataflow vs the best
   data-centric-expressible dataflow, across scratchpad bandwidths, for
   2D-CONV (a) and GEMM (b).  All configurations use 64 PEs (8x8 or 64x1)
   so the comparison is resource-fair.  Volumes are bandwidth-independent,
   so each dataflow is analyzed once and latency recomputed per
   bandwidth. *)

module Ir = Tenet.Ir
module Arch = Tenet.Arch
module Df = Tenet.Dataflow
module M = Tenet.Model
module Dse = Tenet.Dse.Dse

let bandwidths = [ 160; 128; 96; 64; 32; 16; 8 ]

let mesh_spec pe =
  let topology =
    if Arch.Pe_array.rank pe = 2 then Arch.Interconnect.Mesh
    else Arch.Interconnect.Bidirectional_1d
  in
  Arch.Spec.make ~pe ~topology ~bandwidth:64 ()

let sweep name op (configs : (Df.Dataflow.t * Arch.Pe_array.t) list) =
  Bench_util.subsection name;
  let analyzed, _ =
    Bench_util.phase ("analyze " ^ name) (fun () ->
        List.filter_map
          (fun (df, pe) ->
            match M.Concrete.analyze (mesh_spec pe) op df with
            | m -> Some (df, m)
            | exception M.Concrete.Invalid_dataflow _ -> None)
          configs)
  in
  Bench_util.row "%-10s | %-26s %-10s | %-26s %-10s | %s\n" "bw (w/cyc)"
    "best TENET dataflow" "latency" "best data-centric" "latency" "reduction";
  let reductions = ref [] in
  List.iter
    (fun bw ->
      let best pred =
        List.fold_left
          (fun acc (df, m) ->
            if not (pred df) then acc
            else begin
              let lat = Bench_util.latency_at_bandwidth m ~bandwidth:bw in
              match acc with
              | Some (_, best_lat) when best_lat <= lat -> acc
              | _ -> Some (df, lat)
            end)
          None analyzed
      in
      match (best (fun _ -> true), best Dse.data_centric_expressible) with
      | Some (bt, lt), Some (bd, ld) ->
          let red = Bench_util.pct lt ld in
          reductions := red :: !reductions;
          Bench_util.row "%-10d | %-26s %-10.0f | %-26s %-10.0f | %.1f%%\n" bw
            bt.Df.Dataflow.name lt bd.Df.Dataflow.name ld red
      | _ -> Bench_util.row "%-10d | (no valid dataflow)\n" bw)
    bandwidths;
  let avg =
    List.fold_left ( +. ) 0. !reductions
    /. float_of_int (max 1 (List.length !reductions))
  in
  Printf.printf "average latency reduction: %.1f%%\n" avg

let run () =
  Bench_util.section
    "Figure 6: latency vs bandwidth, relation-centric vs data-centric";
  let d2 = Arch.Pe_array.d2 8 8 and d1 = Arch.Pe_array.d1 64 in
  let conv = Ir.Kernels.conv2d ~nk:16 ~nc:16 ~nox:14 ~noy:14 ~nrx:3 ~nry:3 in
  sweep "(a) 2D-CONV 16x16x14x14 r3, 64 PEs" conv
    [
      (Df.Zoo.conv_kc_p_oy_kcox_t (), d2);
      (Df.Zoo.conv_kox_p_oy_koxc_t (), d2);
      (Df.Zoo.conv_kc_p_c_kox_t (), d2);
      (Df.Zoo.conv_shidiannao (), d2);
      (Df.Zoo.conv_nvdla (), d2);
      (Df.Zoo.conv_k_p_ox_oy_t (), d1);
      (Df.Zoo.conv_c_p_oy_ox_t (), d1);
    ];
  let gemm = Ir.Kernels.gemm ~ni:64 ~nj:64 ~nk:64 in
  sweep "(b) GEMM 64^3, 64 PEs" gemm
    [
      (Df.Zoo.gemm_ij_p_ijk_t (), d2);
      (Df.Zoo.gemm_kj_p_ijk_t (), d2);
      (Df.Zoo.gemm_ik_p_ijk_t (), d2);
      (Df.Zoo.gemm_k_p_ij_t (), d1);
      (Df.Zoo.gemm_j_p_ik_t (), d1);
    ];
  Printf.printf
    "(paper: 37.4%% / 51.4%% average latency reduction for CONV / GEMM; the \
     TENET-only skewed dataflows win as bandwidth shrinks)\n"
