(* Section IV-A: design-space sizes of the two notations, and the pruned
   Section VI-B conv exploration. *)

module Ir = Tenet.Ir
module Arch = Tenet.Arch
module Dse = Tenet.Dse.Dse
module M = Tenet.Model
module Json = Tenet.Obs.Json

let run () =
  Bench_util.section "Section IV-A: dataflow design-space size";
  Bench_util.row "%-10s %-22s %-22s %s\n" "kernel" "MAESTRO n!*C(n,2)"
    "TENET 2^(n^2)" "ratio";
  List.iter
    (fun (name, n) ->
      let ma = Dse.maestro_design_space_size ~n_loops:n in
      let te = Dse.tenet_design_space_size ~n_loops:n in
      Bench_util.row "%-10s %-22d %-22d %dx\n" name ma te (te / ma))
    [ ("GEMM", 3); ("MTTKRP", 4); ("2D-CONV", 6) ];
  Printf.printf
    "(paper: GEMM 18 vs 512, a 28x larger space for the relation-centric \
     notation)\n"

let run_dse () =
  Bench_util.section
    "Section VI-B: pruned conv design-space exploration";
  let op = Ir.Kernels.conv2d ~nk:8 ~nc:8 ~nox:8 ~noy:8 ~nrx:3 ~nry:3 in
  let spec = Arch.Repository.tpu_like ~bandwidth:16 () in
  let cands =
    Dse.candidates_2d ~permute_outer:true op ~p:8 @ Dse.candidates_1d op ~p:64
  in
  Printf.printf
    "candidates: %d (movement pairs x inner dim x skew x outer orders; \
     paper's prune: 25920)\n"
    (List.length cands);
  (* One amortized sweep over three problem sizes: the first is the
     op's own extents and runs the full pruned search (so the stats
     gates below see exactly the single-size numbers); the other two
     re-score its top candidates through per-candidate metric templates
     instead of fresh evaluations. *)
  let sweep_sizes =
    [
      [ ("ox", 8); ("oy", 8) ];
      [ ("ox", 16); ("oy", 16) ];
      [ ("ox", 24); ("oy", 16) ];
    ]
  in
  let results, dt =
    Bench_util.phase "dse.search_sizes" (fun () ->
        Dse.search_sizes ~mode:Dse.Pruned ~objective:Dse.Latency spec op cands
          ~sizes:sweep_sizes)
  in
  let result = match results with (_, r) :: _ -> r | [] -> assert false in
  let outcomes = result.Dse.outcomes in
  let st = result.Dse.stats in
  let reuse =
    List.fold_left
      (fun a (_, r) -> a + r.Dse.stats.Dse.template_reuse)
      0 results
  in
  Printf.printf "explored %d valid dataflows in %.1fs (paper: <1 hour)\n"
    (List.length outcomes) dt;
  Printf.printf
    "search: %d generated, %d full evaluations (pruned: %d precheck, %d \
     symmetry, %d dominated)\n"
    st.Dse.generated st.Dse.evaluated st.Dse.pruned_precheck
    st.Dse.pruned_symmetry st.Dse.pruned_dominated;
  Printf.printf
    "size sweep: %d sizes, %d candidate-size scores answered by template \
     instantiation\n"
    (List.length sweep_sizes) reuse;
  Bench_util.summary_extra "dse_template_reuse" (Json.Int reuse);
  Bench_util.summary_extra "dse_generated" (Json.Int st.Dse.generated);
  Bench_util.summary_extra "dse_evaluated" (Json.Int st.Dse.evaluated);
  Bench_util.summary_extra "dse_pruned_precheck"
    (Json.Int st.Dse.pruned_precheck);
  Bench_util.summary_extra "dse_pruned_symmetry"
    (Json.Int st.Dse.pruned_symmetry);
  Bench_util.summary_extra "dse_pruned_capacity"
    (Json.Int st.Dse.pruned_capacity);
  Bench_util.summary_extra "dse_pruned_dominated"
    (Json.Int st.Dse.pruned_dominated);
  (match outcomes with
  | o :: _ ->
      Bench_util.summary_extra "dse_best_dataflow"
        (Json.String o.Dse.dataflow.Tenet.Dataflow.Dataflow.name);
      Bench_util.summary_extra "dse_best_latency"
        (Json.Float o.Dse.metrics.M.Metrics.latency)
  | [] -> ());
  Printf.printf "top 5 by latency:\n";
  List.iteri
    (fun i o ->
      if i < 5 then
        Printf.printf "  %-34s lat=%8.0f util=%.2f  [%s]\n"
          o.Dse.dataflow.Tenet.Dataflow.Dataflow.name
          o.Dse.metrics.M.Metrics.latency
          o.Dse.metrics.M.Metrics.avg_utilization
          (if o.Dse.expressible then "data-centric" else "TENET-only"))
    outcomes;
  (* Capacity-constrained rerun: a 256-byte scratchpad makes the 8x8
     mappings provably infeasible, so the TN014 tier (not the evaluator)
     rejects them before any scoring. *)
  let gemm = Ir.Kernels.gemm ~ni:16 ~nj:16 ~nk:16 in
  let tight =
    Arch.Spec.with_capacities ~scratchpad_bytes:256
      (Arch.Repository.tpu_like ~bandwidth:16 ())
  in
  let gcands = Dse.candidates_2d gemm ~p:8 in
  let cap_result, cap_dt =
    Bench_util.phase "dse.search_capacity" (fun () ->
        Dse.search ~mode:Dse.Pruned ~objective:Dse.Latency tight gemm gcands)
  in
  let cst = cap_result.Dse.stats in
  Printf.printf
    "capacity-constrained gemm (scratchpad 256 B): %d generated, %d \
     capacity-pruned, %d evaluated in %.2fs\n"
    cst.Dse.generated cst.Dse.pruned_capacity cst.Dse.evaluated cap_dt;
  Bench_util.summary_extra "dse_cap_generated" (Json.Int cst.Dse.generated);
  Bench_util.summary_extra "dse_cap_pruned_capacity"
    (Json.Int cst.Dse.pruned_capacity);
  Bench_util.summary_extra "dse_cap_evaluated" (Json.Int cst.Dse.evaluated)
