(* Figure 11: model accuracy against executable ground truth.  The
   simulator (which actually moves data cycle by cycle under a bandwidth
   limit) plays the role of the reported Eyeriss / MAERI numbers; TENET's
   relation-based model and the MAESTRO-style polynomial model are
   compared against it on latency and PE utilization.

   Layers are channel-reduced so the simulator finishes quickly; the
   dataflow structure (and hence the accuracy comparison) is preserved.
   The reduced channel counts are printed with each row. *)

module Ir = Tenet.Ir
module Arch = Tenet.Arch
module Df = Tenet.Dataflow
module M = Tenet.Model
module Ma = Tenet.Maestro
module Sim = Tenet.Sim

let acc est golden =
  100. *. (1. -. (Float.abs (est -. golden) /. golden))

let compare_layer ~lname ~spec ~window ~op ~df ~mapping =
  let golden = Sim.Simulator.run ~window spec op df in
  let tenet = M.Concrete.analyze ~adjacency:`Lex_step ~window spec op df in
  let maestro = Ma.Analytical.analyze spec op mapping in
  let g_lat = float_of_int golden.Sim.Simulator.cycles in
  (* the stamped latency estimate accounts for per-stamp traffic
     granularity; both it and the Section V-B overlap bound come from the
     same counted volumes *)
  let t_lat = tenet.M.Metrics.latency_stamped in
  let m_lat = maestro.Ma.Analytical.latency in
  let g_util = golden.Sim.Simulator.utilization in
  let t_util = tenet.M.Metrics.avg_utilization in
  let m_util = maestro.Ma.Analytical.utilization in
  Bench_util.row
    "  %-10s | lat: golden %8.0f tenet %8.0f (%5.1f%%) maestro %8.0f \
     (%5.1f%%) | util: golden %4.2f tenet %4.2f maestro %4.2f\n"
    lname g_lat t_lat (acc t_lat g_lat) m_lat (acc m_lat g_lat) g_util t_util
    m_util;
  (acc t_lat g_lat, acc m_lat g_lat)

let average xs = List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let run () =
  Bench_util.section
    "Figure 11: latency & utilization accuracy vs simulated ground truth";
  Bench_util.subsection
    "(a/b) Eyeriss row-stationary on AlexNet (channels reduced to 16)";
  let spec =
    Arch.Spec.make
      ~pe:(Arch.Pe_array.d2 12 14)
      ~topology:Arch.Interconnect.Row_col_broadcast ~bandwidth:64 ()
  in
  let alex =
    (* (name, k, c, o, r): channels cut to 16 and the first two output
       resolutions to 14 so the simulator stays fast *)
    [
      ("CONV1", 16, 3, 14, 11);
      ("CONV2", 16, 16, 14, 5);
      ("CONV3", 16, 16, 13, 3);
      ("CONV4", 16, 16, 13, 3);
      ("CONV5", 16, 16, 13, 3);
    ]
  in
  let accs, _ =
    Bench_util.phase "eyeriss/alexnet" @@ fun () ->
    List.map
      (fun (lname, k, c, o, r) ->
        let op = Ir.Kernels.conv2d ~nk:k ~nc:c ~nox:o ~noy:o ~nrx:r ~nry:r in
        (* the row-stationary space stamp needs ry + 3*(c mod cpack) within
           12 rows; for r = 11 (CONV1) a single channel slice fills the
           column, cpack = 1 *)
        (* pack channel slices into the 12 rows: r*cpack <= 12 *)
        let cpack = max 1 (min (12 / r) (min 4 c)) in
        let kt = min 16 k and ct = min 16 c in
        let df = Df.Zoo.conv_eyeriss_rs ~kt ~ct ~cpack ~r () in
        compare_layer ~lname ~spec ~window:o ~op ~df
          ~mapping:(Ma.Maestro_zoo.conv_eyeriss_rs op))
      alex
  in
  Printf.printf "average latency accuracy: TENET %.1f%%  MAESTRO %.1f%%\n"
    (average (List.map fst accs))
    (average (List.map snd accs));
  Bench_util.subsection
    "(c/d) MAERI reduction tree on VGG (channels reduced to 14)";
  let spec_m = Arch.Repository.maeri_like ~n:63 ~bandwidth:64 () in
  let vgg =
    [
      ("C1-1", 8, 3, 56, 3);
      ("C2-1", 8, 14, 28, 3);
      ("C3-1", 14, 14, 28, 3);
      ("C4-1", 14, 14, 14, 3);
      ("C5-1", 14, 14, 14, 3);
    ]
  in
  let accs_m, _ =
    Bench_util.phase "maeri/vgg" @@ fun () ->
    List.map
      (fun (lname, k, c, o, r) ->
        let op = Ir.Kernels.conv2d ~nk:k ~nc:c ~nox:o ~noy:o ~nrx:r ~nry:r in
        let df = Df.Zoo.conv_maeri ~cslices:(min 7 c) () in
        compare_layer ~lname ~spec:spec_m ~window:1 ~op ~df
          ~mapping:(Ma.Maestro_zoo.conv_k_p_ox_oy_t op))
      vgg
  in
  Printf.printf "average latency accuracy: TENET %.1f%%  MAESTRO %.1f%%\n"
    (average (List.map fst accs_m))
    (average (List.map snd accs_m));
  Printf.printf
    "(paper: TENET 89.6%% vs MAESTRO 71.9%% on Eyeriss; 96.3%% vs 92.3%% \
     on MAERI)\n"
