(* Scale-out serving throughput: a synthetic load generator driving the
   real server over its Unix socket, once with a single in-process
   server and once with a pre-forked worker fleet.

   The parent process is the load generator — a select pump that keeps
   a fixed window of requests pipelined, stamps each request at send
   and each response at arrival (correlated by id), and derives
   client-observed throughput and latency quantiles.  The servers are
   forked children running the ordinary `Server.run`, so the whole
   serving path is measured: framing, admission, dispatch, fan-out,
   reassembly.

   This section MUST run before any section that spawns domains: both
   the server forks here and the fleet forks inside the server child
   predate every parallel map in their respective processes (the OCaml
   runtime cannot fork once domains exist).  bench/main.ml lists it
   first for exactly that reason.

   summary.json extras: serve_mp_requests, serve_mp_workers,
   serve_mp_cores, serve_mp_single_rps, serve_mp_throughput_rps,
   serve_mp_speedup, serve_mp_p50_ms, serve_mp_p99_ms.  scripts/ci.sh
   gates speedup >= 2x when the machine has >= 4 cores (the fleet
   cannot beat one process on a single-core container). *)

module Server = Tenet.Serve.Server
module Config = Tenet.Serve.Config
module Api = Tenet.Serve.Api
module Json = Tenet.Obs.Json

(* All-distinct fingerprints (i/16, i mod 16 enumerate distinct pairs),
   so neither configuration gets free cache hits and the comparison is
   pure serving throughput. *)
let corpus n =
  List.init n (fun i ->
      Json.to_string
        (Api.Request.to_json
           {
             (Api.Request.default Api.Request.Analyze) with
             Api.Request.id = Printf.sprintf "m%d" i;
             sizes = [ 16 + (i / 16); 16 + (i mod 16); 20 ];
           }))

let spawn_server ~workers ~socket_path : int =
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      (try
         Server.run
           {
             Config.default with
             Config.workers;
             (* one pool domain per worker: process-level parallelism is
                what this section measures *)
             worker_jobs = 1;
             queue_limit = 256;
             socket = Some socket_path;
           }
       with _ -> ());
      exit 0
  | pid -> pid

let connect_retry path =
  let rec go tries =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> fd
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
      when tries > 0 ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Unix.sleepf 0.05;
        go (tries - 1)
  in
  go 200

let split_lines (buf : Buffer.t) : string list =
  let s = Buffer.contents buf in
  let rec go start acc =
    match String.index_from_opt s start '\n' with
    | Some i -> go (i + 1) (String.sub s start (i - start) :: acc)
    | None ->
        Buffer.clear buf;
        Buffer.add_substring buf s start (String.length s - start);
        List.rev acc
  in
  go 0 []

let response_id line =
  match Json.member "id" (Json.parse line) with
  | Some (Json.String s) -> s
  | _ -> failwith ("serve_mp: response without an id: " ^ line)

(* The pump: keep [window] requests in flight, return per-request
   latencies (seconds, send to response) and the total wall clock. *)
let drive fd (lines : string array) : float list * float =
  Unix.set_nonblock fd;
  let n = Array.length lines in
  let window = 32 in
  let sent = ref 0 and received = ref 0 in
  let t_send : (string, float) Hashtbl.t = Hashtbl.create n in
  let latencies = ref [] in
  let rbuf = Buffer.create 65536 in
  let wpending = ref "" and woff = ref 0 in
  let chunk = Bytes.create 65536 in
  let t0 = Unix.gettimeofday () in
  while !received < n do
    if !woff >= String.length !wpending then begin
      let b = Buffer.create 4096 in
      while !sent < n && !sent - !received < window do
        Hashtbl.replace t_send
          (Printf.sprintf "m%d" !sent)
          (Unix.gettimeofday ());
        Buffer.add_string b lines.(!sent);
        Buffer.add_char b '\n';
        incr sent
      done;
      wpending := Buffer.contents b;
      woff := 0
    end;
    let want_write = !woff < String.length !wpending in
    match Unix.select [ fd ] (if want_write then [ fd ] else []) [] 30.0 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | [], [], [] -> failwith "serve_mp: server stopped responding (30 s)"
    | rs, ws, _ ->
        (if ws <> [] then
           match
             Unix.write_substring fd !wpending !woff
               (String.length !wpending - !woff)
           with
           | k -> woff := !woff + k
           | exception
               Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
               ());
        if rs <> [] then (
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 -> failwith "serve_mp: server closed the connection early"
          | k ->
              Buffer.add_subbytes rbuf chunk 0 k;
              List.iter
                (fun line ->
                  let now = Unix.gettimeofday () in
                  (match Hashtbl.find_opt t_send (response_id line) with
                  | Some t -> latencies := (now -. t) :: !latencies
                  | None -> ());
                  incr received)
                (split_lines rbuf)
          | exception
              Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
              ())
  done;
  (!latencies, Unix.gettimeofday () -. t0)

let run_once ~workers (lines : string array) : float list * float =
  let socket_path = Filename.temp_file "tenet-mp" ".sock" in
  Sys.remove socket_path;
  let pid = spawn_server ~workers ~socket_path in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
      try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
    (fun () ->
      let fd = connect_retry socket_path in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () -> drive fd lines))

let quantile q xs =
  match xs with
  | [] -> 0.
  | _ ->
      let a = Array.of_list xs in
      Array.sort compare a;
      let n = Array.length a in
      a.(min (n - 1) (int_of_float (q *. float_of_int n)))

let run () =
  Bench_util.section "Scale-out serving throughput (pre-fork fleet)";
  let n = 80 in
  let lines = Array.of_list (corpus n) in
  let cores = Domain.recommended_domain_count () in
  let workers = if cores >= 4 then 4 else 2 in
  let (lat1, t1), _ =
    Bench_util.phase "single_process" (fun () -> run_once ~workers:1 lines)
  in
  let (latm, tm), _ =
    Bench_util.phase "multi_worker" (fun () ->
        run_once ~workers lines)
  in
  let fn = float_of_int n in
  let single_rps = fn /. Float.max t1 1e-9 in
  let multi_rps = fn /. Float.max tm 1e-9 in
  let speedup = multi_rps /. Float.max single_rps 1e-9 in
  let p50_ms = 1e3 *. quantile 0.5 latm in
  let p99_ms = 1e3 *. quantile 0.99 latm in
  Bench_util.row "%d requests, %d cores detected\n" n cores;
  Bench_util.row "single process: %8.3f s  (%.0f req/s, p99 %.1f ms)\n" t1
    single_rps
    (1e3 *. quantile 0.99 lat1);
  Bench_util.row "%d workers:     %8.3f s  (%.0f req/s, p99 %.1f ms)\n"
    workers tm multi_rps p99_ms;
  Bench_util.row "speedup:        %8.2fx\n" speedup;
  Bench_util.summary_extra "serve_mp_requests" (Json.Int n);
  Bench_util.summary_extra "serve_mp_workers" (Json.Int workers);
  Bench_util.summary_extra "serve_mp_cores" (Json.Int cores);
  Bench_util.summary_extra "serve_mp_single_rps" (Json.Float single_rps);
  Bench_util.summary_extra "serve_mp_throughput_rps" (Json.Float multi_rps);
  Bench_util.summary_extra "serve_mp_speedup" (Json.Float speedup);
  Bench_util.summary_extra "serve_mp_p50_ms" (Json.Float p50_ms);
  Bench_util.summary_extra "serve_mp_p99_ms" (Json.Float p99_ms)
