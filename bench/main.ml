(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (see DESIGN.md's experiment index).  Run all
   sections with `dune exec bench/main.exe`, or a subset by name:
   `dune exec bench/main.exe -- fig6 fig9`. *)

let sections : (string * string * (unit -> unit)) list =
  [
    (* serve_mp first: it forks server processes, and the OCaml runtime
       cannot fork once any other section has spawned pool domains *)
    ("serve_mp", "Scale-out serving throughput (pre-fork fleet)", Exp_serve_mp.run);
    ("fig1", "Figure 1 motivation (1D-CONV reuse)", Exp_fig1.run);
    ("table_design_space", "Section IV-A design-space sizes", Exp_design_space.run);
    ("table3", "Table III dataflow zoo", Exp_table3.run);
    ("fig6", "Figure 6 latency vs bandwidth", Exp_fig6.run);
    ("fig7", "Figure 7 large-scale applications", Exp_fig7.run);
    ("fig8", "Figure 8 modeling runtime", Exp_fig8.run);
    ("dse", "Section VI-B conv design-space exploration", Exp_design_space.run_dse);
    ("fig9", "Figure 9 critical metrics", Exp_fig9.run);
    ("fig10", "Figure 10 bandwidth vs topology", Exp_fig10.run);
    ("fig11", "Figure 11 model accuracy vs simulator", Exp_fig11.run);
    ("fig12", "Figure 12 reuse comparison", Exp_fig12.run);
    ("buffer", "Buffer-capacity & compute-centric ablations", Exp_buffer.run);
    ("serve", "Serve result-cache throughput (warm vs cold batch)", Exp_serve.run);
  ]

module Obs = Tenet.Obs
module Json = Tenet.Obs.Json

(* One-line-per-section roll-up ({section, total_s, points_enumerated,
   qpoly_hits, qpoly_fallbacks, qpoly_parametric_hits,
   qpoly_parametric_fallbacks}) written next to the per-section phase
   files; scripts/bench_compare.sh diffs it against the committed
   BENCH_seed.json baseline (which predates the fast-path fields — the
   script treats them as optional, and the parametric pair rides in the
   pattern's open tail). *)
let write_summary dir rows =
  let path = Filename.concat dir "summary.json" in
  let j =
    Json.Obj
      [
        ( "sections",
          Json.List
            (List.rev_map
               (fun ( name,
                      total_s,
                      points,
                      qpoly,
                      qpoly_fb,
                      param,
                      param_fb,
                      extras ) ->
                 Json.Obj
                   ([
                      ("section", Json.String name);
                      ("total_s", Json.Float total_s);
                      ("points_enumerated", Json.Int points);
                      ("qpoly_hits", Json.Int qpoly);
                      ("qpoly_fallbacks", Json.Int qpoly_fb);
                      ("qpoly_parametric_hits", Json.Int param);
                      ("qpoly_parametric_fallbacks", Json.Int param_fb);
                    ]
                   @ extras))
               rows) );
      ]
  in
  let oc = open_out path in
  output_string oc (Json.to_string ~pretty:true j);
  output_char oc '\n';
  close_out oc;
  path

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map (fun (n, _, _) -> n) sections
  in
  let t0 = Unix.gettimeofday () in
  let telemetry = Bench_util.timings_dir () <> None in
  let c_points = Obs.counter "count.points_enumerated" in
  let c_qpoly = Obs.counter "count.qpoly_hits" in
  let c_qpoly_fb = Obs.counter "count.qpoly_fallbacks" in
  let c_param = Obs.counter "count.template_hits" in
  let c_param_fb = Obs.counter "count.template_fallbacks" in
  let timing_files = ref [] in
  let summary_rows = ref [] in
  List.iter
    (fun name ->
      match List.find_opt (fun (n, _, _) -> String.equal n name) sections with
      | Some (_, _, run) -> begin
          Bench_util.reset_phases ();
          Bench_util.reset_extras ();
          if telemetry then begin
            Obs.reset ();
            Obs.enable ()
          end;
          let s0 = Unix.gettimeofday () in
          (try run ()
           with e ->
             Printf.printf "!! section %s failed: %s\n" name
               (Printexc.to_string e));
          let total_s = Unix.gettimeofday () -. s0 in
          summary_rows :=
            ( name,
              total_s,
              Obs.value c_points,
              Obs.value c_qpoly,
              Obs.value c_qpoly_fb,
              Obs.value c_param,
              Obs.value c_param_fb,
              Bench_util.summary_extras () )
            :: !summary_rows;
          match Bench_util.write_phases ~name ~total_s with
          | Some path -> timing_files := path :: !timing_files
          | None -> ()
        end
      | None ->
          Printf.printf "unknown section %s (known: %s)\n" name
            (String.concat ", " (List.map (fun (n, _, _) -> n) sections)))
    requested;
  Printf.printf "\ntotal bench time: %.1fs\n" (Unix.gettimeofday () -. t0);
  if !timing_files <> [] then begin
    match Bench_util.timings_dir () with
    | Some dir ->
        let summary = write_summary dir !summary_rows in
        Printf.printf "per-phase timing JSON: %s\nsummary JSON: %s\n"
          (String.concat ", " (List.rev !timing_files))
          summary
    | None -> ()
  end
