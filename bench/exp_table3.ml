(* Table III: the twenty dataflows in relation-centric notation, their
   data-centric expressibility, and validity on their natural PE arrays. *)

module Ir = Tenet.Ir
module Arch = Tenet.Arch
module Df = Tenet.Dataflow
module Dse = Tenet.Dse.Dse
module M = Tenet.Model
module Obs = Tenet.Obs
module Json = Tenet.Obs.Json

let entry pe op (df : Df.Dataflow.t) =
  let ok =
    match Df.Dataflow.first_violation op df pe with
    | None -> "valid"
    | Some msg -> "INVALID: " ^ msg
  in
  Printf.printf "  %-26s %-60s %-14s %s\n" df.Df.Dataflow.name
    (Df.Dataflow.to_string df |> fun s ->
     if String.length s > 60 then String.sub s 0 57 ^ "..." else s)
    (if Dse.data_centric_expressible df then "data-centric" else "TENET-only")
    ok

let run () =
  Bench_util.section "Table III: dataflow notations for the five kernels";
  Bench_util.subsection "GEMM (64x64x64)";
  let gemm = Ir.Kernels.gemm ~ni:64 ~nj:64 ~nk:64 in
  List.iter (entry (Arch.Pe_array.d2 8 8) gemm) (Df.Zoo.gemm_2d ());
  List.iter (entry (Arch.Pe_array.d1 64) gemm) (Df.Zoo.gemm_1d ());
  Bench_util.subsection "2D-CONV (16x16x14x14, r=3)";
  let conv = Ir.Kernels.conv2d ~nk:16 ~nc:16 ~nox:14 ~noy:14 ~nrx:3 ~nry:3 in
  List.iter
    (entry (Arch.Pe_array.d2 8 8) conv)
    [
      Df.Zoo.conv_kc_p_oy_kcox_t ();
      Df.Zoo.conv_kox_p_oy_koxc_t ();
      Df.Zoo.conv_kc_p_c_kox_t ();
      Df.Zoo.conv_shidiannao ();
      Df.Zoo.conv_nvdla ();
    ];
  List.iter
    (entry (Arch.Pe_array.d1 64) conv)
    [ Df.Zoo.conv_k_p_ox_oy_t (); Df.Zoo.conv_c_p_oy_ox_t () ];
  let conv13 = Ir.Kernels.conv2d ~nk:16 ~nc:16 ~nox:13 ~noy:13 ~nrx:3 ~nry:3 in
  List.iter (entry (Arch.Pe_array.d2 12 14) conv13) [ Df.Zoo.conv_eyeriss_rs () ];
  Bench_util.subsection "MTTKRP (16^4)";
  let mt = Ir.Kernels.mttkrp ~ni:16 ~nj:16 ~nk:16 ~nl:16 in
  List.iter (entry (Arch.Pe_array.d2 8 8) mt) (Df.Zoo.mttkrp_all ());
  Bench_util.subsection "Jacobi-2D (66x66)";
  let jac = Ir.Kernels.jacobi2d ~n:66 in
  List.iter (entry (Arch.Pe_array.d1 64) jac) [ Df.Zoo.jacobi_i_p_ij_t () ];
  List.iter (entry (Arch.Pe_array.d2 8 8) jac) [ Df.Zoo.jacobi_ij_p_ij_t () ];
  Bench_util.subsection "MMc (16^4)";
  let mmc = Ir.Kernels.mmc ~ni:16 ~nj:16 ~nk:16 ~nl:16 in
  List.iter (entry (Arch.Pe_array.d2 8 8) mmc) (Df.Zoo.mmc_all ());
  (* Parametric re-instantiation: compile the table's GEMM workload into
     a metric template once, then answer a size never analyzed before by
     pure substitution.  scripts/ci.sh gates the second size on zero
     enumerated points — the O(1) re-analysis claim, made checkable. *)
  Bench_util.subsection "parametric re-instantiation (GEMM 64^3 template)";
  let spec = Arch.Repository.tpu_like () in
  let df = Df.Zoo.gemm_ij_p_ijk_t () in
  let tpl, compile_s =
    Bench_util.phase "template_compile" (fun () ->
        let t =
          M.Model.analyze_template spec gemm df ~params:[ "i"; "j"; "k" ]
        in
        ignore
          (M.Model.instantiate t ~sizes:[ ("i", 64); ("j", 64); ("k", 64) ]);
        t)
  in
  let c_points = Obs.counter "count.points_enumerated" in
  let before = Obs.value c_points in
  let m2, reinst_s =
    Bench_util.phase "template_reinstantiate" (fun () ->
        M.Model.instantiate tpl ~sizes:[ ("i", 96); ("j", 80); ("k", 112) ])
  in
  let delta = Obs.value c_points - before in
  Printf.printf
    "compile+pin %.3fs; 96x80x112 in %.6fs (lat=%.0f, %d points enumerated)\n"
    compile_s reinst_s m2.M.Metrics.latency delta;
  Bench_util.summary_extra "table3_reinstantiation_points" (Json.Int delta);
  Bench_util.summary_extra "table3_reinstantiate_s" (Json.Float reinst_s)
