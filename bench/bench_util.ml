(* Shared helpers for the per-figure benchmark sections. *)

module M = Tenet.Model
module Obs = Tenet.Obs
module Json = Tenet.Obs.Json

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let subsection title = Printf.printf "\n-- %s --\n" title

let row fmt = Printf.printf fmt

(* Latency under a different scratchpad bandwidth, recomputed from the
   bandwidth-independent volume metrics (Section V-B formulas). *)
let latency_at_bandwidth (m : M.Metrics.t) ~bandwidth =
  let bw = float_of_int bandwidth in
  let read = float_of_int (M.Metrics.unique_inputs m) /. bw in
  let write = float_of_int (M.Metrics.unique_outputs m) /. bw in
  Float.max (float_of_int m.M.Metrics.delay_compute) (read +. write)

let ideal_latency (m : M.Metrics.t) =
  float_of_int m.M.Metrics.n_instances /. float_of_int m.M.Metrics.pe_size

let pct a b = 100. *. (1. -. (a /. b))

let time_it f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* ------------------------------------------------------------------ *)
(* Per-phase timing registry (docs/observability.md).                  *)
(*                                                                     *)
(* Sections record named phases with [phase]; the harness (bench/main)  *)
(* resets the registry before each section and writes one JSON file per *)
(* section with the phase breakdown, next to the printed tables.  Set   *)
(* TENET_BENCH_TIMINGS to choose the directory ("none" disables).       *)
(* ------------------------------------------------------------------ *)

let phases : (string * float) list ref = ref [] (* newest first *)

let reset_phases () = phases := []
let record_phase name seconds = phases := (name, seconds) :: !phases

(* Extra summary fields: sections can attach named scalars (e.g. the
   serve section's warm/cold batch timings) that the harness merges into
   their row of summary.json; scripts/bench_compare.sh ignores fields it
   does not know. *)
let extras : (string * Json.t) list ref = ref [] (* newest first *)

let reset_extras () = extras := []
let summary_extra name j = extras := (name, j) :: !extras
let summary_extras () = List.rev !extras

(* Like [time_it], but also records the measurement as a named phase. *)
let phase name f =
  let r, dt = time_it f in
  record_phase name dt;
  (r, dt)

let timings_dir () =
  match Sys.getenv_opt "TENET_BENCH_TIMINGS" with
  | Some "" | Some "0" | Some "none" -> None
  | Some dir -> Some dir
  | None -> Some "bench-timings"

(* Engine work counters (from Tenet.Obs, when the harness armed telemetry)
   included in the per-section JSON so perf baselines capture both time and
   the amount of counting work behind it. *)
let counter_fields () =
  if not (Obs.enabled ()) then []
  else
    List.filter_map
      (fun (name, v) -> if v = 0 then None else Some (name, Json.Int v))
      (Obs.counters ())

let write_phases ~name ~total_s : string option =
  match timings_dir () with
  | None -> None
  | Some dir ->
      if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
      let path = Filename.concat dir (name ^ ".json") in
      let j =
        Json.Obj
          [
            ("section", Json.String name);
            ("total_s", Json.Float total_s);
            ( "phases",
              Json.List
                (List.rev_map
                   (fun (n, s) ->
                     Json.Obj
                       [ ("name", Json.String n); ("seconds", Json.Float s) ])
                   !phases) );
            ("counters", Json.Obj (counter_fields ()));
          ]
      in
      let oc = open_out path in
      output_string oc (Json.to_string ~pretty:true j);
      output_char oc '\n';
      close_out oc;
      Some path
