(* Figure 7: large-scale applications (Table IV) — normalized latency and
   scratchpad-bandwidth requirement of the best TENET dataflow vs the
   best data-centric-expressible dataflow.

   Per layer: candidates are generated from the layer's own loop dims,
   pre-screened exactly on a probe-sized layer, and the finalists
   re-evaluated on the full layer with multilinear scaled analysis.  ALS
   and Transformer have no data-centric equivalent in MAESTRO (the paper
   could not run them); we report TENET numbers and mark the baseline
   n/a when the expressible subspace is empty. *)

module Ir = Tenet.Ir
module Arch = Tenet.Arch
module Df = Tenet.Dataflow
module M = Tenet.Model
module Dse = Tenet.Dse.Dse
module W = Tenet.Workloads.Layers

let probe_extent = 8

let probe_of (op : Ir.Tensor_op.t) =
  {
    op with
    Ir.Tensor_op.iters =
      List.map
        (fun it ->
          let ext = min (Ir.Tensor_op.extent it) probe_extent in
          { it with Ir.Tensor_op.hi = it.Ir.Tensor_op.lo + ext - 1 })
        op.Ir.Tensor_op.iters;
  }

(* Best (TENET, data-centric) scaled metrics for one layer. *)
let explore_layer (spec : Arch.Spec.t) (layer : W.layer) =
  let op = layer.W.op in
  let cands = Dse.candidates_2d op ~p:8 in
  let probe = probe_of op in
  let screened = Dse.evaluate_all ~objective:Dse.Latency spec probe cands in
  let finalists pred =
    let rec take n = function
      | o :: rest when n > 0 -> o.Dse.dataflow :: take (n - 1) rest
      | _ -> []
    in
    take 2 (List.filter pred screened)
  in
  (* All candidate stamps are periodic (mod/div tiles or plain dims), so
     every large dim is multilinear in its extent from one period on;
     sample at 1 and 2 periods to keep the corner problems tiny. *)
  let eval_full df =
    let scale_dims =
      List.filter
        (fun it -> Ir.Tensor_op.extent it > 16)
        op.Ir.Tensor_op.iters
      |> List.map (fun it -> it.Ir.Tensor_op.iname)
    in
    let spec_dims =
      List.map
        (fun d ->
          let s = M.Scaled.default_samples op df d in
          {
            s with
            M.Scaled.sample_lo = max 2 (s.M.Scaled.sample_lo / 2);
            sample_hi = max 4 (s.M.Scaled.sample_hi / 2);
          })
        scale_dims
    in
    match M.Scaled.analyze ~spec_dims spec op df ~scale_dims with
    | m -> Some (df, m)
    | exception _ -> None
  in
  let best dfs =
    List.fold_left
      (fun acc df ->
        match eval_full df with
        | None -> acc
        | Some (df, m) -> (
            match acc with
            | Some (_, bm) when bm.M.Metrics.latency <= m.M.Metrics.latency ->
                acc
            | _ -> Some (df, m)))
      None dfs
  in
  ( best (finalists (fun _ -> true)),
    best (finalists (fun o -> o.Dse.expressible)) )

let show_app ?(maestro_supported = true) name (layers : W.layer list) spec =
  let t_lat = ref 0. and d_lat = ref 0. and ideal = ref 0. in
  let t_sbw = ref 0. and d_sbw = ref 0. and have_d = ref true in
  let (), _ =
    Bench_util.phase ("explore " ^ name) @@ fun () ->
  List.iter
    (fun layer ->
      match explore_layer spec layer with
      | Some (_, tm), dres ->
          ideal :=
            !ideal
            +. (float_of_int tm.M.Metrics.n_instances
               /. float_of_int tm.M.Metrics.pe_size);
          t_lat := !t_lat +. tm.M.Metrics.latency;
          t_sbw := Float.max !t_sbw tm.M.Metrics.sbw;
          (match dres with
          | Some (_, dm) when maestro_supported ->
              d_lat := !d_lat +. dm.M.Metrics.latency;
              d_sbw := Float.max !d_sbw dm.M.Metrics.sbw
          | _ -> have_d := false)
      | None, _ -> ())
    layers
  in
  if !have_d && !d_lat > 0. then
    Bench_util.row
      "  %-12s | norm-lat TENET %6.2f  data-centric %6.2f  (-%5.1f%%) | \
       peak SBW %7.1f vs %7.1f (-%5.1f%%)\n"
      name (!t_lat /. !ideal) (!d_lat /. !ideal)
      (Bench_util.pct !t_lat !d_lat)
      !t_sbw !d_sbw (Bench_util.pct !t_sbw !d_sbw)
  else
    Bench_util.row
      "  %-12s | norm-lat TENET %6.2f | peak SBW %7.1f | data-centric: n/a \
       (unsupported operators, as in the paper)\n"
      name (!t_lat /. !ideal) !t_sbw

let run () =
  Bench_util.section
    "Figure 7: large-scale applications (normalized latency & bandwidth)";
  let spec = Arch.Repository.tpu_like ~bandwidth:16 () in
  (* representative layer subsets keep the sweep under a minute each *)
  let subset n l =
    List.filteri (fun i _ -> i < n) l
  in
  show_app "GoogLeNet" (subset 3 W.googlenet) spec;
  show_app "MobileNet" (subset 4 W.mobilenet) spec;
  (* MAESTRO's frontend does not support MTTKRP / MMc operators *)
  show_app ~maestro_supported:false "ALS" [ W.als () ] spec;
  show_app ~maestro_supported:false "Transformer"
    (subset 2 (W.transformer ())) spec;
  Printf.printf
    "(paper: 74%% / 22%% latency reduction and 63%% / 54%% bandwidth \
     reduction for GoogLeNet / MobileNet; MAESTRO cannot model ALS and \
     Transformer)\n"
