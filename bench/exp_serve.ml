(* Serve result-cache throughput: a duplicate-heavy batch (every
   distinct request repeated 5 times — the DSE-client and
   sweep-over-bandwidths access pattern) run twice through Api.run:

   - cold: the cross-request cache starts empty, so each distinct
     request is computed once and its four duplicates are hits;
   - warm: the cache already holds every result, so all requests hit.

   The cold/warm wall-clock and their ratio land in summary.json
   (serve_cold_s / serve_warm_s / serve_speedup); scripts/ci.sh asserts
   the warm pass is at least 3x faster. *)

module Api = Tenet.Serve.Api
module Cache = Tenet.Serve.Cache
module Json = Tenet.Obs.Json
module Obs = Tenet.Obs

let distinct_requests () : Api.Request.t list =
  let analyze ~id ?(sizes = [ 32; 32; 32 ]) ?dataflow ?(arch = "tpu-8x8-systolic")
      () =
    {
      (Api.Request.default Api.Request.Analyze) with
      Api.Request.id;
      sizes;
      dataflow;
      arch;
    }
  in
  [
    analyze ~id:"b1" ();
    analyze ~id:"b2" ~sizes:[ 48; 48; 48 ] ();
    analyze ~id:"b3" ~dataflow:"gemm/(KJ-P | K,IJK-T)" ();
    analyze ~id:"b4" ~arch:"mesh-8x8" ();
    analyze ~id:"b5" ~sizes:[ 32; 48; 32 ] ();
    {
      (Api.Request.default Api.Request.Volumes) with
      Api.Request.id = "b6";
      sizes = [ 32; 32; 32 ];
    };
    {
      (Api.Request.default Api.Request.Volumes) with
      Api.Request.id = "b7";
      sizes = [ 48; 48; 48 ];
      adjacency = `Lex_step;
    };
    {
      (Api.Request.default Api.Request.Check) with
      Api.Request.id = "b8";
      sizes = [ 32; 32; 32 ];
    };
    {
      (Api.Request.default Api.Request.Check) with
      Api.Request.id = "b9";
      sizes = [ 48; 48; 48 ];
      dataflow = Some "gemm/(IK-P | K,IJK-T)";
    };
    {
      (Api.Request.default Api.Request.Dse) with
      Api.Request.id = "b10";
      sizes = [ 8; 8; 8 ];
      top = 3;
    };
  ]

let run () =
  Bench_util.section "Serve result-cache throughput (warm vs cold)";
  let dup = 5 in
  let batch =
    List.concat_map
      (fun r -> List.init dup (fun _ -> r))
      (distinct_requests ())
  in
  let run_batch () =
    List.iter
      (fun r ->
        let resp = Api.run r in
        if Api.Response.is_error resp then
          failwith ("bench request failed: " ^ r.Api.Request.id))
      batch
  in
  Api.clear_cache ();
  let (), cold_s = Bench_util.phase "cold_batch" run_batch in
  let (), warm_s = Bench_util.phase "warm_batch" run_batch in
  let c = (Api.cache_tiers ()).Api.result in
  let speedup = cold_s /. Float.max warm_s 1e-9 in
  Bench_util.row "%d requests (%d distinct x%d)\n" (List.length batch)
    (List.length batch / dup) dup;
  Bench_util.row "cold batch: %8.3f s  (%.0f req/s)\n" cold_s
    (float_of_int (List.length batch) /. cold_s);
  Bench_util.row "warm batch: %8.3f s  (%.0f req/s)\n" warm_s
    (float_of_int (List.length batch) /. warm_s);
  Bench_util.row "speedup:    %8.1fx  (cache: %d entries, %d hits, %d misses)\n"
    speedup c.Cache.entries c.Cache.hits c.Cache.misses;
  (* Latency quantiles over every request of both passes (the section
     harness armed telemetry, so Api.run observed each one), and the
     warm pass's throughput: the ROADMAP item-2 fleet-sizing numbers. *)
  let h = Obs.histogram "serve.request_latency" in
  let p99_ms = 1e3 *. Obs.quantile h 0.99 in
  let p50_ms = 1e3 *. Obs.quantile h 0.5 in
  let warm_rps = float_of_int (List.length batch) /. Float.max warm_s 1e-9 in
  Bench_util.row "latency:    p50 %.3f ms, p99 %.3f ms (%d observed)\n"
    p50_ms p99_ms (Obs.hist_count h);
  Bench_util.summary_extra "serve_cold_s" (Json.Float cold_s);
  Bench_util.summary_extra "serve_warm_s" (Json.Float warm_s);
  Bench_util.summary_extra "serve_speedup" (Json.Float speedup);
  Bench_util.summary_extra "serve_p50_ms" (Json.Float p50_ms);
  Bench_util.summary_extra "serve_p99_ms" (Json.Float p99_ms);
  Bench_util.summary_extra "serve_throughput_rps" (Json.Float warm_rps);
  (* The template cache tier: one parametric workload swept over sizes.
     Every request has a distinct result-cache fingerprint (the sizes
     differ), but the size-abstracted template key is shared, so one
     compiled template answers the whole sweep.  [template_reuse] is
     (requests - templates compiled) — deterministic, no telemetry
     needed. *)
  let sweep =
    List.mapi
      (fun i (ni, nj, nk) ->
        {
          (Api.Request.default Api.Request.Analyze) with
          Api.Request.id = Printf.sprintf "t%d" i;
          sizes = [ ni; nj; nk ];
          params = [ "i"; "j"; "k" ];
        })
      [
        (64, 64, 64);
        (96, 80, 112);
        (80, 96, 64);
        (112, 112, 48);
        (48, 64, 96);
        (64, 96, 80);
      ]
  in
  Api.clear_cache ();
  let (), sweep_s =
    Bench_util.phase "template_batch" (fun () ->
        List.iter
          (fun r ->
            let resp = Api.run r in
            if Api.Response.is_error resp then
              failwith ("bench request failed: " ^ r.Api.Request.id))
          sweep)
  in
  let templates = (Api.cache_tiers ()).Api.template_entries in
  let reuse = List.length sweep - templates in
  Bench_util.row
    "template sweep: %d sizes in %.3f s through %d compiled template(s) \
     (%d reused)\n"
    (List.length sweep) sweep_s templates reuse;
  Bench_util.summary_extra "serve_template_reuse" (Json.Int reuse)
