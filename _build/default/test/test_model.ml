(* Tests for tenet.model: volume metrics, latency/bandwidth/utilization,
   and the equivalence of the relational and concrete engines. *)

module Isl = Tenet.Isl
module Ir = Tenet.Ir
module Arch = Tenet.Arch
module Df = Tenet.Dataflow
module M = Tenet.Model

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let fig3_df =
  Df.Dataflow.make ~name:"fig3"
    ~space:Isl.Aff.[ Var "i"; Var "j" ]
    ~time:Isl.Aff.[ Add (Add (Var "i", Var "j"), Var "k") ]

let spec2 = Arch.Repository.tpu_like ~n:2 ()

(* ------------------------------------------------------------------ *)
(* Paper worked example end to end.                                    *)
(* ------------------------------------------------------------------ *)

let test_fig3_metrics () =
  let op = Ir.Kernels.gemm ~ni:2 ~nj:2 ~nk:4 in
  let m = M.Concrete.analyze spec2 op fig3_df in
  let a = (M.Metrics.find_tensor m "A").M.Metrics.volumes in
  check_int "A total" 16 a.M.Metrics.total;
  (* full-domain unique of A = its footprint: every element enters once *)
  check_int "A unique" 8 a.M.Metrics.unique;
  check_int "A temporal" 0 a.M.Metrics.temporal_reuse;
  check_int "A spatial" 8 a.M.Metrics.spatial_reuse;
  let y = (M.Metrics.find_tensor m "Y").M.Metrics.volumes in
  check_int "Y temporal (stationary)" 12 y.M.Metrics.temporal_reuse;
  check_int "Y unique" 4 y.M.Metrics.unique;
  (* timestamps: i+j+k ranges over 0..5 *)
  check_int "timestamps" 6 m.M.Metrics.n_timestamps;
  check_int "compute delay" 6 m.M.Metrics.delay_compute

let test_volume_identities () =
  let op = Ir.Kernels.gemm ~ni:8 ~nj:8 ~nk:8 in
  let spec = Arch.Repository.tpu_like ~n:4 () in
  let df = Df.Zoo.gemm_ij_p_ijk_t ~p:4 () in
  let m = M.Concrete.analyze spec op df in
  List.iter
    (fun tm ->
      let v = tm.M.Metrics.volumes in
      check_int
        (tm.M.Metrics.tensor ^ ": total = unique + reuse")
        v.M.Metrics.total
        (v.M.Metrics.unique + M.Metrics.reuse v);
      check_bool
        (tm.M.Metrics.tensor ^ ": unique >= footprint")
        true
        (v.M.Metrics.unique >= tm.M.Metrics.footprint))
    m.M.Metrics.per_tensor

let test_utilization () =
  let op = Ir.Kernels.gemm ~ni:8 ~nj:8 ~nk:8 in
  let spec = Arch.Repository.tpu_like ~n:8 () in
  (* one 8x8 pass, skewed: 8+8+8-2 = 22 stamps *)
  let m = M.Concrete.analyze spec op (Df.Zoo.gemm_ij_p_ijk_t ()) in
  check_int "stamps" 22 m.M.Metrics.n_timestamps;
  Alcotest.(check (float 1e-6))
    "avg util" (512. /. (64. *. 22.))
    m.M.Metrics.avg_utilization;
  (* the busiest skewed wavefront covers i+j in an 8-wide window:
     64 - 10 - 6 = 48 active PEs *)
  Alcotest.(check (float 1e-6)) "max util" 0.75 m.M.Metrics.max_utilization

let test_latency_bandwidth_tradeoff () =
  let op = Ir.Kernels.gemm ~ni:32 ~nj:32 ~nk:32 in
  let df = Df.Zoo.gemm_ij_p_ijk_t () in
  let hi = M.Concrete.analyze (Arch.Repository.tpu_like ~bandwidth:256 ()) op df in
  let lo = M.Concrete.analyze (Arch.Repository.tpu_like ~bandwidth:2 ()) op df in
  check_bool "low bandwidth hurts" true
    (lo.M.Metrics.latency > hi.M.Metrics.latency);
  (* at high bandwidth, compute bound: latency = stamps *)
  Alcotest.(check (float 1e-6))
    "compute bound" (float_of_int hi.M.Metrics.n_timestamps)
    hi.M.Metrics.latency

let test_energy_monotone_in_reuse () =
  (* stationary output dataflow should cost less energy than one that
     spills the output every step (compare two dataflows on same op) *)
  let op = Ir.Kernels.gemm ~ni:16 ~nj:16 ~nk:16 in
  let spec = Arch.Repository.tpu_like () in
  let good = M.Concrete.analyze spec op (Df.Zoo.gemm_ij_p_ijk_t ()) in
  check_bool "energy positive" true (good.M.Metrics.energy > 0.);
  (* sanity: energy at least MAC cost *)
  check_bool "energy >= macs" true
    (good.M.Metrics.energy >= float_of_int good.M.Metrics.n_instances)

let test_invalid_dataflow_raises () =
  let op = Ir.Kernels.gemm ~ni:32 ~nj:8 ~nk:8 in
  check_bool "out of array" true
    (match M.Concrete.analyze spec2 op fig3_df with
    | _ -> false
    | exception M.Concrete.Invalid_dataflow _ -> true)

let test_multicast_leader_fetches () =
  (* broadcast row: with an output-channel-parallel dataflow, B[k] is per
     PE but A is shared across the row at the same cycle *)
  let op = Ir.Kernels.gemm ~ni:4 ~nj:4 ~nk:4 in
  let spec =
    Arch.Spec.make ~pe:(Arch.Pe_array.d1 4)
      ~topology:(Arch.Interconnect.Multicast 3) ~bandwidth:64 ()
  in
  let df =
    (* PE = j; time = (i, k): A[i,k] identical across all PEs at each
       stamp -> 3 of 4 copies come over the wire *)
    Df.Dataflow.make ~name:"(J-P | I,K-T)"
      ~space:[ Isl.Aff.Var "j" ]
      ~time:Isl.Aff.[ Var "i"; Var "k" ]
  in
  let m = M.Concrete.analyze spec op df in
  let a = (M.Metrics.find_tensor m "A").M.Metrics.volumes in
  check_int "A total" 64 a.M.Metrics.total;
  check_int "A spatial (3 of 4 per stamp)" 48 a.M.Metrics.spatial_reuse;
  check_int "A unique (leader only)" 16 a.M.Metrics.unique


let test_huge_op_guarded () =
  (* the concrete engine refuses to enumerate oversized domains and
     points at scaled analysis instead *)
  let op = Ir.Kernels.gemm ~ni:9_999_999 ~nj:100 ~nk:100 in
  check_bool "guard raises" true
    (match M.Concrete.analyze spec2 op (Df.Zoo.gemm_ij_p_ijk_t ~p:2 ()) with
    | _ -> false
    | exception M.Concrete.Invalid_dataflow msg ->
        String.length msg > 0)

(* ------------------------------------------------------------------ *)
(* Engine equivalence: relational vs concrete on random dataflows.     *)
(* ------------------------------------------------------------------ *)

let vol_summary (m : M.Metrics.t) =
  ( m.M.Metrics.n_timestamps,
    List.map
      (fun tm ->
        let v = tm.M.Metrics.volumes in
        ( tm.M.Metrics.tensor,
          v.M.Metrics.total,
          v.M.Metrics.temporal_reuse,
          v.M.Metrics.spatial_reuse ))
      m.M.Metrics.per_tensor )

(* random small GEMM dataflows over a 2x2 array *)
let arb_small_dataflow =
  let gen =
    QCheck.Gen.(
      let* skew = bool in
      let* swap = bool in
      let* topo = int_range 0 2 in
      return (skew, swap, topo))
  in
  QCheck.make gen

let spec_of_topo = function
  | 0 -> Arch.Interconnect.Systolic_2d
  | 1 -> Arch.Interconnect.Mesh
  | _ -> Arch.Interconnect.Broadcast_row

let prop_engines_agree =
  QCheck.Test.make ~name:"relational = concrete" ~count:12 arb_small_dataflow
    (fun (skew, swap, topo) ->
      let op = Ir.Kernels.gemm ~ni:4 ~nj:4 ~nk:3 in
      let da, db = if swap then ("j", "i") else ("i", "j") in
      let inner =
        if skew then
          Isl.Aff.(
            Add (Add (Mod (Var da, 2), Mod (Var db, 2)), Var "k"))
        else Isl.Aff.Var "k"
      in
      let df =
        Df.Dataflow.make ~name:"rand"
          ~space:Isl.Aff.[ Mod (Var da, 2); Mod (Var db, 2) ]
          ~time:
            Isl.Aff.[ Fdiv (Var da, 2); Fdiv (Var db, 2); inner ]
      in
      let spec =
        Arch.Spec.make ~pe:(Arch.Pe_array.d2 2 2) ~topology:(spec_of_topo topo)
          ~bandwidth:16 ()
      in
      let mr = M.Model.analyze spec op df in
      let mc = M.Concrete.analyze spec op df in
      vol_summary mr = vol_summary mc)

let prop_engines_agree_lex =
  QCheck.Test.make ~name:"relational = concrete (lex adjacency)" ~count:8
    arb_small_dataflow (fun (skew, swap, topo) ->
      let op = Ir.Kernels.gemm ~ni:4 ~nj:4 ~nk:2 in
      let da, db = if swap then ("j", "i") else ("i", "j") in
      let inner =
        if skew then
          Isl.Aff.(Add (Add (Mod (Var da, 2), Mod (Var db, 2)), Var "k"))
        else Isl.Aff.Var "k"
      in
      let df =
        Df.Dataflow.make ~name:"rand"
          ~space:Isl.Aff.[ Mod (Var da, 2); Mod (Var db, 2) ]
          ~time:Isl.Aff.[ Fdiv (Var da, 2); Fdiv (Var db, 2); inner ]
      in
      let spec =
        Arch.Spec.make ~pe:(Arch.Pe_array.d2 2 2) ~topology:(spec_of_topo topo)
          ~bandwidth:16 ()
      in
      let mr = M.Model.analyze ~adjacency:`Lex_step spec op df in
      let mc = M.Concrete.analyze ~adjacency:`Lex_step spec op df in
      vol_summary mr = vol_summary mc)

let prop_total_eq_instances_times_accesses =
  QCheck.Test.make ~name:"total(F) = instances for single-access tensors"
    ~count:20
    QCheck.(triple (int_range 2 6) (int_range 2 6) (int_range 2 6))
    (fun (ni, nj, nk) ->
      let op = Ir.Kernels.gemm ~ni ~nj ~nk in
      let df =
        Df.Dataflow.make ~name:"seq"
          ~space:Isl.Aff.[ Mod (Var "i", 2); Mod (Var "j", 2) ]
          ~time:Isl.Aff.[ Fdiv (Var "i", 2); Fdiv (Var "j", 2); Var "k" ]
      in
      let m = M.Concrete.analyze spec2 op df in
      List.for_all
        (fun tm ->
          tm.M.Metrics.volumes.M.Metrics.total = Ir.Tensor_op.n_instances op)
        m.M.Metrics.per_tensor)

let () =
  Alcotest.run "model"
    [
      ( "volumes",
        [
          Alcotest.test_case "fig3 end to end" `Quick test_fig3_metrics;
          Alcotest.test_case "volume identities" `Quick test_volume_identities;
          Alcotest.test_case "multicast leader" `Quick
            test_multicast_leader_fetches;
        ] );
      ( "latency/util",
        [
          Alcotest.test_case "utilization" `Quick test_utilization;
          Alcotest.test_case "bandwidth tradeoff" `Quick
            test_latency_bandwidth_tradeoff;
          Alcotest.test_case "energy" `Quick test_energy_monotone_in_reuse;
          Alcotest.test_case "invalid dataflow" `Quick
            test_invalid_dataflow_raises;
          Alcotest.test_case "oversized domain guarded" `Quick
            test_huge_op_guarded;
        ] );
      ( "engine equivalence",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_engines_agree;
            prop_engines_agree_lex;
            prop_total_eq_instances_times_accesses;
          ] );
    ]
