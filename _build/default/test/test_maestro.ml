(* Tests for the MAESTRO baseline: the data-centric notation, its design
   space, and the documented inaccuracies of its polynomial model
   (paper Figure 1 and Section VI-E). *)

module Ir = Tenet.Ir
module Arch = Tenet.Arch
module Df = Tenet.Dataflow
module M = Tenet.Model
module Ma = Tenet.Maestro
module Dse = Tenet.Dse

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- notation --- *)

let test_notation_printing () =
  let m =
    Ma.Notation.make ~name:"x"
      [ Ma.Notation.spatial "k"; Ma.Notation.temporal "c"; Ma.Notation.cluster 4 ]
  in
  Alcotest.(check string)
    "printed" "x: SpatialMap(1,1) k; TemporalMap(1,1) c; Cluster(4, P)"
    (Ma.Notation.to_string m)

let test_notation_queries () =
  let m =
    Ma.Notation.make ~name:"x"
      [
        Ma.Notation.spatial "k";
        Ma.Notation.temporal "c";
        Ma.Notation.temporal "ox";
      ]
  in
  Alcotest.(check (list string)) "spatial" [ "k" ] (Ma.Notation.spatial_dims m);
  Alcotest.(check (list string))
    "temporal" [ "c"; "ox" ]
    (Ma.Notation.temporal_dims m);
  Alcotest.(check (option string))
    "innermost" (Some "ox")
    (Ma.Notation.innermost_temporal m)

(* --- design-space sizes (Section IV-A) --- *)

let test_design_space_sizes () =
  check_int "MAESTRO GEMM: 3! x C(3,2) = 18" 18
    (Dse.Dse.maestro_design_space_size ~n_loops:3);
  check_int "TENET GEMM: 2^(3x3) = 512" 512
    (Dse.Dse.tenet_design_space_size ~n_loops:3);
  check_int "ratio 28x (paper)" 28 (512 / 18);
  check_int "conv: 2^36" (Tenet_util.Int_math.pow 2 36)
    (Dse.Dse.tenet_design_space_size ~n_loops:6)

(* --- expressibility classification of Table III --- *)

let test_expressibility () =
  let e df = Dse.Dse.data_centric_expressible df in
  (* GEMM: skewed 2D dataflows are NOT expressible, 1D ones are *)
  check_bool "(IJ-P | J,IJK-T)" false (e (Df.Zoo.gemm_ij_p_ijk_t ()));
  check_bool "(KJ-P | K,IJK-T)" false (e (Df.Zoo.gemm_kj_p_ijk_t ()));
  check_bool "(IK-P | K,IJK-T)" false (e (Df.Zoo.gemm_ik_p_ijk_t ()));
  check_bool "(K-P | I,J-T)" true (e (Df.Zoo.gemm_k_p_ij_t ()));
  check_bool "(J-P | I,K-T)" true (e (Df.Zoo.gemm_j_p_ik_t ()));
  (* CONV *)
  check_bool "(KC-P | OY,KCOX-T)" false (e (Df.Zoo.conv_kc_p_oy_kcox_t ()));
  check_bool "(KOX-P | OY,KOXC-T)" false (e (Df.Zoo.conv_kox_p_oy_koxc_t ()));
  check_bool "(KC-P | C,KOX-T)" false (e (Df.Zoo.conv_kc_p_c_kox_t ()));
  check_bool "(K-P | OX,OY-T)" true (e (Df.Zoo.conv_k_p_ox_oy_t ()));
  check_bool "(C-P | OY,OX-T)" true (e (Df.Zoo.conv_c_p_oy_ox_t ()));
  check_bool "eyeriss (cluster idiom)" true (e (Df.Zoo.conv_eyeriss_rs ()));
  check_bool "shidiannao" true (e (Df.Zoo.conv_shidiannao ()));
  check_bool "nvdla" true (e (Df.Zoo.conv_nvdla ()))

(* --- Figure 1: MAESTRO overestimates the reuse of A --- *)

let test_fig1_reuse_gap () =
  let op = Ir.Kernels.conv1d ~no:4 ~nr:3 in
  let spec =
    Arch.Spec.make ~pe:(Arch.Pe_array.d1 4)
      ~topology:Arch.Interconnect.Bidirectional_1d ~bandwidth:64 ()
  in
  (* MAESTRO: unique(A) = size(i) = 4 -> reuse = 12 - 4 = 8 *)
  let rep = Ma.Analytical.analyze spec op Ma.Maestro_zoo.conv1d_fig1 in
  let a = Ma.Analytical.find_tensor rep "A" in
  check_int "MAESTRO unique(A) = 4" 4 (int_of_float a.Ma.Analytical.traffic);
  check_int "MAESTRO reuse(A) = 8 (paper Fig 1c)" 8
    (12 - int_of_float a.Ma.Analytical.traffic);
  (* TENET (ground truth): unique(A) = footprint 6 -> actual reuse 6 *)
  let df =
    Df.Dataflow.make ~name:"fig1"
      ~space:[ Tenet.Isl.Aff.Var "i" ]
      ~time:[ Tenet.Isl.Aff.Var "j" ]
  in
  let m = M.Concrete.analyze spec op df in
  let va = (M.Metrics.find_tensor m "A").M.Metrics.volumes in
  check_int "TENET unique(A) = 6" 6 va.M.Metrics.unique;
  check_int "TENET reuse(A) = 6 (actual)" 6 (M.Metrics.reuse va)

(* --- no output reuse reported, ever --- *)

let test_output_reuse_always_one () =
  let op = Ir.Kernels.conv2d ~nk:8 ~nc:8 ~nox:6 ~noy:6 ~nrx:3 ~nry:3 in
  let spec = Arch.Repository.eyeriss_like () in
  List.iter
    (fun mapping ->
      let rep = Ma.Analytical.analyze spec op mapping in
      let y = Ma.Analytical.find_tensor rep "Y" in
      Alcotest.(check (float 1e-9))
        ("no output reuse: " ^ mapping.Ma.Notation.name)
        1.0 y.Ma.Analytical.reuse_factor)
    [
      Ma.Maestro_zoo.conv_k_p_ox_oy_t op;
      Ma.Maestro_zoo.conv_c_p_oy_ox_t op;
      Ma.Maestro_zoo.conv_eyeriss_rs op;
    ]

(* --- utilization polynomial --- *)

let test_utilization_polynomial () =
  let op = Ir.Kernels.gemm ~ni:48 ~nj:48 ~nk:48 in
  let spec = Arch.Repository.maeri_like ~n:64 () in
  let rep = Ma.Analytical.analyze spec op Ma.Maestro_zoo.gemm_k_p_ij_t in
  (* SpatialMap k with 48 ways on 64 PEs: util = 48/64 *)
  Alcotest.(check (float 1e-9)) "util" 0.75 rep.Ma.Analytical.utilization;
  check_bool "compute cycles = temporal product" true
    (rep.Ma.Analytical.compute_cycles = float_of_int (48 * 48))

let test_ways () =
  check_int "unit" 5 (Ma.Analytical.ways ~size:1 ~offset:1 5);
  check_int "tile" 3 (Ma.Analytical.ways ~size:3 ~offset:3 9);
  check_int "sliding" 7 (Ma.Analytical.ways ~size:3 ~offset:1 9);
  check_int "oversize" 1 (Ma.Analytical.ways ~size:9 ~offset:1 5)

(* --- MAESTRO is cheap to evaluate (Figure 8 direction) --- *)

let test_runtime_direction () =
  let op = Ir.Kernels.conv2d ~nk:16 ~nc:16 ~nox:14 ~noy:14 ~nrx:3 ~nry:3 in
  let spec = Arch.Repository.eyeriss_like () in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to 100 do
    ignore (Ma.Analytical.analyze spec op (Ma.Maestro_zoo.conv_k_p_ox_oy_t op))
  done;
  let maestro_time = (Unix.gettimeofday () -. t0) /. 100. in
  let t1 = Unix.gettimeofday () in
  ignore
    (M.Concrete.analyze
       (Arch.Repository.tpu_like ())
       op (Df.Zoo.conv_nvdla ()));
  let tenet_time = Unix.gettimeofday () -. t1 in
  check_bool "MAESTRO faster than TENET" true (maestro_time < tenet_time)

let () =
  Alcotest.run "maestro"
    [
      ( "notation",
        [
          Alcotest.test_case "printing" `Quick test_notation_printing;
          Alcotest.test_case "queries" `Quick test_notation_queries;
        ] );
      ( "design space",
        [ Alcotest.test_case "sizes (Section IV-A)" `Quick
            test_design_space_sizes ] );
      ( "expressibility",
        [ Alcotest.test_case "Table III classification" `Quick
            test_expressibility ] );
      ( "model inaccuracies",
        [
          Alcotest.test_case "Fig 1 reuse 8 vs 6" `Quick test_fig1_reuse_gap;
          Alcotest.test_case "no output reuse" `Quick
            test_output_reuse_always_one;
          Alcotest.test_case "utilization polynomial" `Quick
            test_utilization_polynomial;
          Alcotest.test_case "ways" `Quick test_ways;
        ] );
      ( "runtime",
        [ Alcotest.test_case "Fig 8 direction" `Quick test_runtime_direction ]
      );
    ]
