(* Tests for the design-space exploration module. *)

module Ir = Tenet.Ir
module Arch = Tenet.Arch
module Df = Tenet.Dataflow
module M = Tenet.Model
module Dse = Tenet.Dse.Dse

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_candidate_counts () =
  let op = Ir.Kernels.gemm ~ni:8 ~nj:8 ~nk:8 in
  (* 2D: 6 ordered pairs x 1 remaining inner dim x 2 (skew or not) *)
  check_int "gemm 2D" 12 (List.length (Dse.candidates_2d op ~p:4));
  (* 1D: 3 choices of spatial dim x 2 inner dims *)
  check_int "gemm 1D" 6 (List.length (Dse.candidates_1d op ~p:8));
  let conv = Ir.Kernels.conv2d ~nk:4 ~nc:4 ~nox:4 ~noy:4 ~nrx:3 ~nry:3 in
  (* 30 ordered pairs x 4 inner x 2 *)
  check_int "conv 2D" 240 (List.length (Dse.candidates_2d conv ~p:4));
  (* with outer permutations: 30 x 4 x 2 x 3! *)
  check_int "conv 2D permuted" 1440
    (List.length (Dse.candidates_2d ~permute_outer:true conv ~p:4))

let test_unique_names () =
  let op = Ir.Kernels.gemm ~ni:8 ~nj:8 ~nk:8 in
  let names =
    List.map (fun d -> d.Df.Dataflow.name) (Dse.candidates_2d op ~p:4)
  in
  check_int "names distinct" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_search_finds_tpu_class () =
  (* on a square GEMM the known-good dataflows must be near the top *)
  let op = Ir.Kernels.gemm ~ni:16 ~nj:16 ~nk:16 in
  let spec = Arch.Repository.tpu_like ~bandwidth:8 () in
  let cands = Dse.candidates_2d op ~p:8 in
  match Dse.best spec op cands with
  | None -> Alcotest.fail "no valid dataflow found"
  | Some o ->
      check_bool "best latency sane" true (o.Dse.metrics.M.Metrics.latency > 0.)

let test_expressible_subset () =
  let op = Ir.Kernels.gemm ~ni:16 ~nj:16 ~nk:16 in
  let spec = Arch.Repository.tpu_like ~bandwidth:8 () in
  let cands = Dse.candidates_2d op ~p:8 in
  let all = Dse.evaluate_all ~objective:Dse.Latency spec op cands in
  let expressible = List.filter (fun o -> o.Dse.expressible) all in
  check_bool "strict subset" true
    (List.length expressible < List.length all && expressible <> []);
  (* the skewed candidates must be classified inexpressible *)
  List.iter
    (fun o ->
      let skewed =
        List.exists
          (fun e ->
            List.length
              (List.sort_uniq compare (Tenet.Isl.Aff.free_vars e))
            > 1)
          o.Dse.dataflow.Df.Dataflow.time
      in
      if skewed then check_bool "skewed -> inexpressible" false o.Dse.expressible)
    all

let test_fig6_direction () =
  (* at low bandwidth, the best relation-centric dataflow must beat or
     match the best data-centric-expressible one (Fig 6's claim) *)
  let op = Ir.Kernels.gemm ~ni:16 ~nj:16 ~nk:16 in
  let cands = Dse.candidates_2d op ~p:8 @ Dse.candidates_1d op ~p:64 in
  List.iter
    (fun bw ->
      let spec = Arch.Repository.tpu_like ~bandwidth:bw () in
      match (Dse.best spec op cands, Dse.best_expressible spec op cands) with
      | Some b, Some be ->
          check_bool
            (Printf.sprintf "bw=%d: tenet <= data-centric" bw)
            true
            (b.Dse.metrics.M.Metrics.latency
            <= be.Dse.metrics.M.Metrics.latency)
      | _ -> Alcotest.fail "search failed")
    [ 2; 8; 64 ]

let test_invalid_candidates_dropped () =
  (* a 16-wide PE request on an 8x8 array: all 2D candidates with p=16
     are invalid and must be silently dropped *)
  let op = Ir.Kernels.gemm ~ni:32 ~nj:32 ~nk:32 in
  let spec = Arch.Repository.tpu_like ~n:8 () in
  let cands = Dse.candidates_2d op ~p:16 in
  check_int "all dropped" 0
    (List.length (Dse.evaluate_all ~objective:Dse.Latency spec op cands))

let test_objectives () =
  let op = Ir.Kernels.gemm ~ni:16 ~nj:16 ~nk:16 in
  let spec = Arch.Repository.tpu_like ~bandwidth:4 () in
  let cands = Dse.candidates_2d op ~p:8 in
  let by_lat = Option.get (Dse.best ~objective:Dse.Latency spec op cands) in
  let by_en = Option.get (Dse.best ~objective:Dse.Energy spec op cands) in
  let by_sbw = Option.get (Dse.best ~objective:Dse.Sbw spec op cands) in
  (* each winner is optimal under its own objective *)
  let all = Dse.evaluate_all ~objective:Dse.Latency spec op cands in
  List.iter
    (fun o ->
      check_bool "latency opt" true
        (by_lat.Dse.metrics.M.Metrics.latency <= o.Dse.metrics.M.Metrics.latency);
      check_bool "energy opt" true
        (by_en.Dse.metrics.M.Metrics.energy <= o.Dse.metrics.M.Metrics.energy);
      check_bool "sbw opt" true
        (by_sbw.Dse.metrics.M.Metrics.sbw <= o.Dse.metrics.M.Metrics.sbw))
    all

let () =
  Alcotest.run "dse"
    [
      ( "generation",
        [
          Alcotest.test_case "candidate counts" `Quick test_candidate_counts;
          Alcotest.test_case "unique names" `Quick test_unique_names;
        ] );
      ( "search",
        [
          Alcotest.test_case "finds valid" `Quick test_search_finds_tpu_class;
          Alcotest.test_case "expressible subset" `Quick test_expressible_subset;
          Alcotest.test_case "fig6 direction" `Quick test_fig6_direction;
          Alcotest.test_case "invalid dropped" `Quick
            test_invalid_candidates_dropped;
          Alcotest.test_case "objectives" `Quick test_objectives;
        ] );
    ]
