test/test_maestro.mli:
