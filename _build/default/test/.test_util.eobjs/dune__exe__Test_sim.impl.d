test/test_sim.ml: Alcotest List Printf String Tenet
