test/test_window.ml: Alcotest List QCheck QCheck_alcotest Tenet
