test/test_scaled.ml: Alcotest List QCheck QCheck_alcotest Tenet
