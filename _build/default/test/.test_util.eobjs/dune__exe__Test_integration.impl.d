test/test_integration.ml: Alcotest List String Tenet
