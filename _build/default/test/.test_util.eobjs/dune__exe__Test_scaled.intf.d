test/test_scaled.mli:
