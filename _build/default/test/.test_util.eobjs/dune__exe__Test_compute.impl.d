test/test_compute.ml: Alcotest List QCheck QCheck_alcotest String Tenet Tenet_compute
