test/test_ir.ml: Alcotest Array List QCheck QCheck_alcotest Tenet
