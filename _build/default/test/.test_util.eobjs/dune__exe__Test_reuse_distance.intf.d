test/test_reuse_distance.mli:
