test/test_model.ml: Alcotest List QCheck QCheck_alcotest String Tenet
