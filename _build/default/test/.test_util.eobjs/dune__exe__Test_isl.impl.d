test/test_isl.ml: Alcotest Array List Printf QCheck QCheck_alcotest Tenet
