test/test_dse.ml: Alcotest List Option Printf Tenet
