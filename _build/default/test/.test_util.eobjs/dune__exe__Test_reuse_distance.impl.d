test/test_reuse_distance.ml: Alcotest Array List QCheck QCheck_alcotest Tenet
