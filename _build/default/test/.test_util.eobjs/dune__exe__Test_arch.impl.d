test/test_arch.ml: Alcotest List QCheck QCheck_alcotest Tenet Tenet_util
