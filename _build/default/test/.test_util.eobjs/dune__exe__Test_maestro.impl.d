test/test_maestro.ml: Alcotest List Tenet Tenet_util Unix
