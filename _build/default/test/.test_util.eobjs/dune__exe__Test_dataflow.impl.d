test/test_dataflow.ml: Alcotest Array List Printf Tenet
