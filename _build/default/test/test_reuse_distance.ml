(* Tests for the LRU reuse-distance buffer analysis. *)

module Rd = Tenet.Sim.Reuse_distance
module Ir = Tenet.Ir
module Arch = Tenet.Arch
module Df = Tenet.Dataflow
module Sim = Tenet.Sim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let t name i = (name, [| i |])

let test_simple_trace () =
  (* a b c a : distance of the second 'a' is 2 (b, c touched between) *)
  let h = Rd.histogram [| t "x" 0; t "x" 1; t "x" 2; t "x" 0 |] in
  check_int "cold" 3 h.Rd.cold;
  check_int "total" 4 h.Rd.total;
  check_int "misses cap 2" 4 (Rd.misses h ~capacity:2);
  check_int "misses cap 3" 3 (Rd.misses h ~capacity:3);
  check_int "min full reuse" 3 (Rd.min_full_reuse_capacity h)

let test_repeat_trace () =
  (* a a a a : all re-accesses at distance 0 *)
  let h = Rd.histogram (Array.make 4 (t "x" 0)) in
  check_int "cold" 1 h.Rd.cold;
  check_int "misses cap 1" 1 (Rd.misses h ~capacity:1);
  check_int "misses cap 0" 4 (Rd.misses h ~capacity:0)

let test_tensor_namespaces () =
  (* same element index in different tensors is different data *)
  let h = Rd.histogram [| t "x" 0; t "y" 0; t "x" 0 |] in
  check_int "cold" 2 h.Rd.cold;
  check_int "misses cap 1" 3 (Rd.misses h ~capacity:1);
  check_int "misses cap 2" 2 (Rd.misses h ~capacity:2)

let test_cyclic_thrash () =
  (* round-robin over k elements: LRU of capacity < k never hits *)
  let k = 5 in
  let trace = Array.init (3 * k) (fun i -> t "x" (i mod k)) in
  let h = Rd.histogram trace in
  check_int "cap k-1 thrashes" (3 * k) (Rd.misses h ~capacity:(k - 1));
  check_int "cap k all hits after cold" k (Rd.misses h ~capacity:k)

let test_empty () =
  let h = Rd.histogram [||] in
  check_int "misses" 0 (Rd.misses h ~capacity:4);
  Alcotest.(check (float 1e-9)) "hit rate" 1.0 (Rd.hit_rate h ~capacity:4)

(* infinite capacity leaves only cold misses = distinct elements *)
let prop_infinite_capacity =
  QCheck.Test.make ~name:"cap=inf -> cold = distinct" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 0 60) (int_range 0 9))
    (fun accesses ->
      let trace = Array.of_list (List.map (t "x") accesses) in
      let h = Rd.histogram trace in
      let distinct = List.length (List.sort_uniq compare accesses) in
      Rd.misses h ~capacity:max_int = distinct && h.Rd.cold = distinct)

(* misses decrease monotonically with capacity *)
let prop_monotone =
  QCheck.Test.make ~name:"misses monotone in capacity" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 0 60) (int_range 0 9))
    (fun accesses ->
      let trace = Array.of_list (List.map (t "x") accesses) in
      let h = Rd.histogram trace in
      let rec ok c prev =
        if c > 12 then true
        else begin
          let m = Rd.misses h ~capacity:c in
          m <= prev && ok (c + 1) m
        end
      in
      ok 1 max_int)

(* brute-force LRU simulation agrees with the stack-distance histogram *)
let brute_lru ~capacity accesses =
  let cache = ref [] in
  let misses = ref 0 in
  List.iter
    (fun a ->
      if List.mem a !cache then cache := a :: List.filter (( <> ) a) !cache
      else begin
        incr misses;
        let c = a :: !cache in
        cache :=
          if List.length c > capacity then List.filteri (fun i _ -> i < capacity) c
          else c
      end)
    accesses;
  !misses

let prop_matches_lru_simulation =
  QCheck.Test.make ~name:"histogram = brute-force LRU" ~count:100
    QCheck.(
      pair (int_range 1 8)
        (list_of_size (QCheck.Gen.int_range 0 50) (int_range 0 7)))
    (fun (capacity, accesses) ->
      let trace = Array.of_list (List.map (t "x") accesses) in
      let h = Rd.histogram trace in
      Rd.misses h ~capacity = brute_lru ~capacity accesses)

(* end-to-end: simulator trace + buffer analysis *)
let test_sim_trace_integration () =
  let spec = Arch.Repository.tpu_like ~bandwidth:1024 () in
  let op = Ir.Kernels.gemm ~ni:16 ~nj:16 ~nk:16 in
  let df = Df.Zoo.gemm_ij_p_ijk_t () in
  let buf = ref [] in
  let r =
    Sim.Simulator.run ~trace:(fun t f -> buf := (t, Array.copy f) :: !buf)
      spec op df
  in
  let trace = Array.of_list (List.rev !buf) in
  let expected =
    List.fold_left
      (fun acc (t : Sim.Simulator.tensor_traffic) ->
        acc + t.Sim.Simulator.fetches + t.Sim.Simulator.writebacks)
      0 r.Sim.Simulator.traffic
  in
  check_int "trace length = scratchpad accesses" expected (Array.length trace);
  let h = Rd.histogram trace in
  (* with infinite scratchpad, off-chip traffic = sum of footprints *)
  let footprints =
    List.fold_left (fun a t -> a + Ir.Tensor_op.footprint op t) 0
      (Ir.Tensor_op.tensors op)
  in
  check_bool "cold misses <= footprints (outputs may never be re-read)"
    true (h.Rd.cold <= footprints);
  check_bool "bigger buffer never worse" true
    (Rd.misses h ~capacity:4096 <= Rd.misses h ~capacity:64)


let test_offchip_analyze () =
  let spec =
    Arch.Spec.make ~buffer_words:256
      ~pe:(Arch.Pe_array.d2 8 8)
      ~topology:Arch.Interconnect.Systolic_2d ~bandwidth:64 ()
  in
  let op = Ir.Kernels.gemm ~ni:16 ~nj:16 ~nk:16 in
  let a = Sim.Offchip.analyze spec op (Df.Zoo.gemm_ij_p_ijk_t ()) in
  check_bool "dram <= scratchpad accesses" true
    (a.Sim.Offchip.dram_accesses <= a.Sim.Offchip.scratchpad_accesses);
  check_bool "hit rate in [0,1]" true
    (a.Sim.Offchip.hit_rate >= 0. && a.Sim.Offchip.hit_rate <= 1.);
  check_bool "min capacity positive" true
    (a.Sim.Offchip.min_full_reuse_capacity >= 1)

let test_offchip_sweep_monotone () =
  let spec = Arch.Repository.tpu_like () in
  let op = Ir.Kernels.gemm ~ni:16 ~nj:16 ~nk:16 in
  let rows =
    Sim.Offchip.sweep spec op (Df.Zoo.gemm_ij_p_ijk_t ())
      ~capacities:[ 32; 64; 128; 256; 512; 1024 ]
  in
  let rec monotone = function
    | (_, a) :: ((_, b) :: _ as rest) -> a >= b && monotone rest
    | _ -> true
  in
  check_bool "misses non-increasing in capacity" true (monotone rows)

let () =
  Alcotest.run "reuse_distance"
    [
      ( "unit",
        [
          Alcotest.test_case "simple" `Quick test_simple_trace;
          Alcotest.test_case "repeat" `Quick test_repeat_trace;
          Alcotest.test_case "namespaces" `Quick test_tensor_namespaces;
          Alcotest.test_case "cyclic thrash" `Quick test_cyclic_thrash;
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "simulator integration" `Quick
            test_sim_trace_integration;
          Alcotest.test_case "offchip analyze" `Quick test_offchip_analyze;
          Alcotest.test_case "offchip sweep" `Quick
            test_offchip_sweep_monotone;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_infinite_capacity; prop_monotone; prop_matches_lru_simulation ]
      );
    ]
