(* Tests for tenet.isl: exact counting, relation algebra, the parser, and
   the worked examples of the paper (Figure 3 and Section V-A). *)

module Isl = Tenet.Isl
module Set = Isl.Set
module Map = Isl.Map
module Aff = Isl.Aff
module P = Isl.Parser

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Basic sets and counting.                                            *)
(* ------------------------------------------------------------------ *)

let test_box_card () =
  check_int "1D" 10 (Set.card (P.set "{ A[i] : 0 <= i < 10 }"));
  check_int "2D" 12 (Set.card (P.set "{ A[i,j] : 0 <= i < 4 and 0 <= j < 3 }"));
  check_int "empty" 0 (Set.card (P.set "{ A[i] : 0 <= i < 0 }"));
  check_int "point" 1 (Set.card (P.set "{ A[i] : i = 5 }"));
  check_int "negative range" 7 (Set.card (P.set "{ A[i] : -3 <= i <= 3 }"));
  check_int "huge box (closed form)" 1_000_000_000_000
    (Set.card (P.set "{ A[i,j] : 0 <= i < 1000000 and 0 <= j < 1000000 }"))

let test_triangle () =
  (* i + j <= 3 over 0..3: 10 points *)
  check_int "triangle" 10
    (Set.card (P.set "{ A[i,j] : 0 <= i and 0 <= j and i + j <= 3 }"));
  (* diagonal slice *)
  check_int "diagonal" 4
    (Set.card
       (P.set "{ A[i,j] : 0 <= i < 4 and 0 <= j < 4 and i = j }"))

let test_mod_div () =
  check_int "mod" 4 (Set.card (P.set "{ A[i] : 0 <= i < 10 and i mod 3 = 0 }"));
  check_int "mod %" 3 (Set.card (P.set "{ A[i] : 0 <= i < 9 and i % 3 = 1 }"));
  check_int "div" 4
    (Set.card (P.set "{ A[i] : 0 <= i < 10 and floor(i/4) = 1 }"));
  check_int "combined" 4
    (Set.card
       (P.set "{ A[i] : 0 <= i < 20 and i mod 2 = 0 and floor(i/8) = 1 }"))

let test_union_subtract () =
  let u = P.set "{ A[i] : (0 <= i < 10) or (5 <= i < 15) }" in
  check_int "union overlap counted once" 15 (Set.card u);
  let a = P.set "{ A[i] : 0 <= i < 10 }" in
  let b = P.set "{ A[i] : 3 <= i < 5 }" in
  check_int "subtract" 8 (Set.card (Set.subtract a b));
  check_int "subtract disjoint" 10
    (Set.card (Set.subtract a (P.set "{ A[i] : 20 <= i < 30 }")));
  check_int "subtract all" 0 (Set.card (Set.subtract a a));
  check_int "intersect" 2 (Set.card (Set.intersect a b))

let test_ne_expansion () =
  check_int "!=" 9 (Set.card (P.set "{ A[i] : 0 <= i < 10 and i != 4 }"))

let test_mem_sample () =
  let s = P.set "{ A[i,j] : 0 <= i < 4 and 0 <= j < 3 and i + j <= 3 }" in
  check_bool "mem in" true (Set.mem s [| 1; 2 |]);
  check_bool "mem out" false (Set.mem s [| 3; 3 |]);
  check_bool "mem out of box" false (Set.mem s [| 9; 0 |]);
  (match Set.sample s with
  | Some p -> check_bool "sample is member" true (Set.mem s p)
  | None -> Alcotest.fail "expected nonempty");
  check_bool "empty sample" true
    (Set.sample (P.set "{ A[i] : 0 <= i < 0 }") = None);
  check_bool "is_empty" true (Set.is_empty (P.set "{ A[i] : i < 0 and i > 0 }"))

let test_iter_points () =
  let s = P.set "{ A[i,j] : 0 <= i < 3 and 0 <= j < 3 and i <= j }" in
  let seen = ref [] in
  Set.iter_points (fun p -> seen := Array.to_list p :: !seen) s;
  check_int "iter count" 6 (List.length !seen);
  check_int "iter distinct" 6
    (List.length (List.sort_uniq compare !seen))

let test_projection () =
  let s = P.set "{ A[i,j] : 0 <= i < 4 and 0 <= j < 3 }" in
  let pi = Set.project ~keep:[ true; false ] s in
  check_int "project j away" 4 (Set.card pi);
  (* projection of a diagonal strip: distinct sums *)
  let d = P.set "{ A[i,j] : 0 <= i < 4 and 0 <= j < 3 and i = j }" in
  check_int "project diagonal" 3
    (Set.card (Set.project ~keep:[ false; true ] d))

let test_dim_bounds () =
  let s = P.set "{ A[i,j] : 2 <= i < 7 and 0 <= j < 3 }" in
  (match Set.dim_bounds ~dim:0 s with
  | Some (lo, hi) ->
      check_int "lo" 2 lo;
      check_int "hi" 6 hi
  | None -> Alcotest.fail "nonempty");
  check_bool "empty bounds" true
    (Set.dim_bounds ~dim:0 (P.set "{ A[i] : 1 <= i < 1 }") = None)

(* ------------------------------------------------------------------ *)
(* Maps.                                                               *)
(* ------------------------------------------------------------------ *)

let test_map_basics () =
  let m = P.map "{ S[i,j] -> A[i + j] : 0 <= i < 4 and 0 <= j < 3 }" in
  check_int "pairs" 12 (Map.card m);
  check_int "domain" 12 (Set.card (Map.domain m));
  check_int "range (distinct sums)" 6 (Set.card (Map.range m));
  check_bool "single valued" true (Map.is_single_valued m);
  check_bool "not injective" false (Map.is_injective m);
  check_int "reverse pairs" 12 (Map.card (Map.reverse m));
  check_int "wrap card" 12 (Set.card (Map.wrap m))

let test_map_eval_image () =
  let m = P.map "{ S[i,j] -> A[i + j, i - j] : 0 <= i < 4 and 0 <= j < 3 }" in
  (match Map.eval m [| 2; 1 |] with
  | Some out ->
      check_int "eval fst" 3 out.(0);
      check_int "eval snd" 1 out.(1)
  | None -> Alcotest.fail "in domain");
  check_bool "outside domain" true (Map.eval m [| 9; 9 |] = None);
  let inv = Map.reverse m in
  check_int "image of (3,1)" 1 (List.length (Map.image inv [| 3; 1 |]))

let test_apply_range () =
  (* S -> T -> U composition *)
  let a = P.map "{ S[i] -> T[2*i] : 0 <= i < 5 }" in
  let b = P.map "{ T[x] -> U[x + 1] : 0 <= x < 20 }" in
  let c = Map.apply_range a b in
  check_int "composition card" 5 (Map.card c);
  (match Map.eval c [| 3 |] with
  | Some out -> check_int "composed value" 7 out.(0)
  | None -> Alcotest.fail "in domain");
  (* composition through a relation (not a function) *)
  let r = P.map "{ T[x] -> U[y] : x <= y and y <= x + 1 }" in
  let cr = Map.apply_range a r in
  check_int "relation composition" 10 (Map.card cr)

let test_intersect_domain_range () =
  let m = P.map "{ S[i] -> A[i] : 0 <= i < 10 }" in
  let d = P.set "{ S[i] : 0 <= i < 3 }" in
  check_int "restrict domain" 3 (Map.card (Map.intersect_domain m d));
  let r = P.set "{ A[i] : 5 <= i < 10 }" in
  check_int "restrict range" 5 (Map.card (Map.intersect_range m r))

let test_map_subtract_union () =
  let m = P.map "{ S[i] -> A[i] : 0 <= i < 10 }" in
  let n = P.map "{ S[i] -> A[i] : 0 <= i < 4 }" in
  check_int "map subtract" 6 (Map.card (Map.subtract m n));
  let u = Map.union m (P.map "{ S[i] -> A[i + 1] : 0 <= i < 10 }") in
  check_int "map union" 20 (Map.card u)

let test_mem_fn () =
  let s = P.set "{ A[i,j] : 0 <= i < 8 and 0 <= j < 8 and i + j <= 9 }" in
  let f = Set.mem_fn s in
  let slow = Set.mem s in
  let agree = ref true in
  for i = -1 to 8 do
    for j = -1 to 8 do
      if f [| i; j |] <> slow [| i; j |] then agree := false
    done
  done;
  check_bool "mem_fn agrees with mem" true !agree

(* ------------------------------------------------------------------ *)
(* The paper's worked examples (Figure 3, Section V-A).                *)
(* ------------------------------------------------------------------ *)

let fig3_theta () =
  P.map
    "{ S[i,j,k] -> ST[i, j, i+j+k] : 0 <= i < 2 and 0 <= j < 2 and 0 <= k < 4 }"

let fig3_access_a () =
  P.map "{ S[i,j,k] -> A[i,k] : 0 <= i < 2 and 0 <= j < 2 and 0 <= k < 4 }"

let test_fig3_total_volume () =
  let assign = Map.apply_range (Map.reverse (fig3_theta ())) (fig3_access_a ()) in
  check_int "TotalVolume(A) full" 16 (Map.card assign);
  (* the paper's t <= 3 window: 1 + 3 + 4 + 4 = 12 *)
  let windowed = Map.constrain assign ~ges:[ Aff.(Int 3 - Var "_o2") ] in
  check_int "TotalVolume(A) t<=3 (paper: 12)" 12 (Map.card windowed)

let test_fig3_reuse_volume () =
  let assign = Map.apply_range (Map.reverse (fig3_theta ())) (fig3_access_a ()) in
  let m =
    P.map
      "{ ST[p1,p2,t] -> ST[q1,q2,u] : ((q1 = p1 and q2 = p2 + 1) or (q1 = p1 \
       + 1 and q2 = p2)) and u = t + 1 }"
  in
  let reuse = Map.intersect assign (Map.apply_range (Map.reverse m) assign) in
  let windowed =
    Map.constrain reuse
      ~ges:[ Aff.(Var "_o2" - Int 1); Aff.(Int 3 - Var "_o2") ]
  in
  check_int "ReuseVolume(A) t in [1,3] (paper: 5)" 5 (Map.card windowed);
  (* UniqueVolume = Total - Reuse on the same window: 12 - 5 = 7 *)
  let total_w =
    Map.card (Map.constrain assign ~ges:[ Aff.(Int 3 - Var "_o2") ])
  in
  check_int "UniqueVolume(A) t<=3 (paper: 7)" 7 (total_w - 5 - 0)

let test_fig3_y_stationary () =
  let acc_y =
    P.map "{ S[i,j,k] -> Y[i,j] : 0 <= i < 2 and 0 <= j < 2 and 0 <= k < 4 }"
  in
  let assign = Map.apply_range (Map.reverse (fig3_theta ())) acc_y in
  let mt =
    P.map "{ ST[p1,p2,t] -> ST[q1,q2,u] : q1 = p1 and q2 = p2 and u = t + 1 }"
  in
  let reuse = Map.intersect assign (Map.apply_range (Map.reverse mt) assign) in
  (* every use except the first per PE is a temporal reuse: 16 - 4 *)
  check_int "TemporalReuse(Y)" 12 (Map.card reuse)

(* ------------------------------------------------------------------ *)
(* Quasi-affine dataflow relations (tiled stamps).                     *)
(* ------------------------------------------------------------------ *)

let test_tiled_theta () =
  let m =
    P.map
      "{ S[i,j,k] -> ST[i mod 8, j mod 8, floor(i/8), floor(j/8), i mod 8 + \
       j mod 8 + k] : 0 <= i < 16 and 0 <= j < 16 and 0 <= k < 4 }"
  in
  check_int "pairs = instances" 1024 (Map.card m);
  check_int "range = pairs (injective)" 1024 (Set.card (Map.range m));
  check_bool "injective" true (Map.is_injective m)

let test_interconnect_abs () =
  let mesh =
    P.map
      "{ PE[i,j] -> PE[x,y] : abs(x - i) <= 1 and abs(y - j) <= 1 and 0 <= i \
       < 4 and 0 <= j < 4 and 0 <= x < 4 and 0 <= y < 4 }"
  in
  (* interior PEs have 9 within-distance-1 cells, edges 6, corners 4 *)
  check_int "mesh incl self" 100 (Map.card mesh)

(* ------------------------------------------------------------------ *)
(* Parser details.                                                     *)
(* ------------------------------------------------------------------ *)

let test_parser_forms () =
  check_int "chain" 5 (Set.card (P.set "{ A[i] : 0 <= i <= 4 }"));
  check_int "gt chain" 4 (Set.card (P.set "{ A[i] : 5 > i > 0 }"));
  check_int "multiplication" 3
    (Set.card (P.set "{ A[i] : 0 <= 2*i and 2*i < 6 }"));
  check_int "fl alias" 4
    (Set.card (P.set "{ A[i] : 0 <= i < 10 and fl(i/4) = 1 }"));
  check_int "true" 6 (Set.card (P.set "{ A[i] : true and 0 <= i < 6 }"));
  check_int "false" 0 (Set.card (P.set "{ A[i] : false }"));
  check_bool "universe map has unbounded card" true
    (match Map.card (P.map "{ S[i] -> A[i] }") with
    | _ -> false
    | exception Isl.Count.Unbounded _ -> true)

let test_parser_errors () =
  let fails s = match P.set s with _ -> false | exception _ -> true in
  check_bool "unknown dim" true (fails "{ A[i] : 0 <= q < 4 }");
  check_bool "garbage" true (fails "{ A[i] 0 <= i }");
  check_bool "unclosed" true (fails "{ A[i : 0 <= i < 4 }")

let test_to_string_roundtrip () =
  let cases =
    [
      "{ A[i,j] : 0 <= i < 4 and 0 <= j < 3 }";
      "{ A[i] : 0 <= i < 10 and i mod 3 = 1 }";
      "{ A[i,j] : 0 <= i < 4 and 0 <= j < 4 and i + j <= 3 }";
    ]
  in
  List.iter
    (fun src ->
      let s = P.set src in
      let reparsed = P.set (Set.to_string s) in
      check_int ("roundtrip card " ^ src) (Set.card s) (Set.card reparsed))
    cases

(* ------------------------------------------------------------------ *)
(* Aff expressions.                                                    *)
(* ------------------------------------------------------------------ *)

let test_aff_eval () =
  let e = Aff.((Var "i" % 8) + (Var "j" / 4) - Int 2) in
  let env = function "i" -> 13 | "j" -> 9 | _ -> raise Not_found in
  check_int "eval" (5 + 2 - 2) (Aff.eval env e)

let test_aff_interval () =
  let env = function
    | "i" -> (0, 63)
    | "j" -> (0, 7)
    | _ -> raise Not_found
  in
  let iv e = Aff.interval env e in
  Alcotest.(check (pair int int)) "var" (0, 63) (iv (Aff.Var "i"));
  Alcotest.(check (pair int int)) "mod" (0, 7) (iv Aff.(Var "i" % 8));
  Alcotest.(check (pair int int)) "div" (0, 7) (iv Aff.(Var "i" / 8));
  Alcotest.(check (pair int int))
    "skew" (0, 14)
    (iv Aff.((Var "i" % 8) + (Var "j") + Int 7 - Int 7));
  Alcotest.(check (pair int int))
    "neg" (-63, 0)
    (iv (Aff.Neg (Aff.Var "i")));
  Alcotest.(check (pair int int))
    "abs" (0, 63)
    (iv (Aff.Abs (Aff.Sub (Aff.Var "i", Aff.Int 0))));
  Alcotest.(check (pair int int))
    "mul" (0, 126)
    (iv (Aff.Mul (Aff.Int 2, Aff.Var "i")))

let test_aff_nonlinear () =
  let lookup _ = 0 in
  let ctx = Aff.make_ctx 2 in
  check_bool "var*var rejected" true
    (match Aff.lower ctx ~lookup (Aff.Mul (Aff.Var "i", Aff.Var "j")) with
    | _ -> false
    | exception Aff.Nonlinear _ -> true)

(* ------------------------------------------------------------------ *)
(* Properties: counting vs brute force on random sets.                 *)
(* ------------------------------------------------------------------ *)

let bound = 6

(* random basic sets inside the box [0, bound)^2, as constraint lists *)
let gen_constraints =
  QCheck.Gen.(
    list_size (int_range 0 3)
      (map3
         (fun a b k -> (a, b, k))
         (int_range (-2) 2) (int_range (-2) 2) (int_range (-4) 4)))

let arb_constraints = QCheck.make gen_constraints

let set_of_cons cons =
  let space = Isl.Space.make "A" [ "i"; "j" ] in
  let s = Set.box space [ (0, bound - 1); (0, bound - 1) ] in
  List.fold_left
    (fun s (a, b, k) ->
      Set.constrain s
        ~ges:
          [
            Aff.(
              Add
                ( Add (Mul (Int a, Var "i"), Mul (Int b, Var "j")),
                  Int k ));
          ])
    s cons

let brute_count cons =
  let n = ref 0 in
  for i = 0 to bound - 1 do
    for j = 0 to bound - 1 do
      if List.for_all (fun (a, b, k) -> (a * i) + (b * j) + k >= 0) cons then
        incr n
    done
  done;
  !n

let prop_count_vs_brute =
  QCheck.Test.make ~name:"card = brute force" ~count:300 arb_constraints
    (fun cons -> Set.card (set_of_cons cons) = brute_count cons)

let prop_union_card =
  QCheck.Test.make ~name:"card(A u B) + card(A n B) = card A + card B"
    ~count:150
    QCheck.(pair arb_constraints arb_constraints)
    (fun (ca, cb) ->
      let a = set_of_cons ca and b = set_of_cons cb in
      Set.card (Set.union a b) + Set.card (Set.intersect a b)
      = Set.card a + Set.card b)

let prop_subtract_card =
  QCheck.Test.make ~name:"card(A \\ B) = card A - card(A n B)" ~count:150
    QCheck.(pair arb_constraints arb_constraints)
    (fun (ca, cb) ->
      let a = set_of_cons ca and b = set_of_cons cb in
      Set.card (Set.subtract a b) = Set.card a - Set.card (Set.intersect a b))

let prop_reverse_card =
  QCheck.Test.make ~name:"card(reverse m) = card m" ~count:100
    QCheck.(pair (int_range 1 5) (int_range 1 5))
    (fun (n, k) ->
      let m =
        P.map
          (Printf.sprintf "{ S[i] -> A[i mod %d] : 0 <= i < %d }" k (n * k))
      in
      Map.card (Map.reverse m) = Map.card m)

let prop_mem_consistent_with_iter =
  QCheck.Test.make ~name:"iterated points are members" ~count:100
    arb_constraints (fun cons ->
      let s = set_of_cons cons in
      let ok = ref true in
      Set.iter_points (fun p -> if not (Set.mem s p) then ok := false) s;
      !ok)



let test_subset_equal () =
  let a = P.set "{ A[i] : 0 <= i < 5 }" in
  let b = P.set "{ A[i] : 0 <= i < 10 }" in
  check_bool "subset" true (Set.is_subset a b);
  check_bool "not superset" false (Set.is_subset b a);
  check_bool "self equal" true (Set.equal_sets a a);
  (* same set via different constraints *)
  let c = P.set "{ A[i] : 0 <= i and i <= 4 }" in
  check_bool "syntactically different, equal" true (Set.equal_sets a c)

(* ------------------------------------------------------------------ *)
(* Fourier-Motzkin stress: coupled constraints with no box bounds.     *)
(* ------------------------------------------------------------------ *)

let test_fm_shapes () =
  (* diamond |i| + |j| <= 4: 41 points *)
  check_int "diamond" 41
    (Set.card
       (P.set
          "{ A[i,j] : i + j <= 4 and i - j <= 4 and -i + j <= 4 and -i - j \
           <= 4 }"));
  (* parallelogram: 0 <= i+j < 4, 0 <= i-j < 4; i,j integral forces
     i+j and i-j to share parity: 8 lattice points *)
  check_int "parallelogram" 8
    (Set.card
       (P.set
          "{ A[i,j] : 0 <= i + j and i + j < 4 and 0 <= i - j and i - j < 4 \
           }"));
  (* 3D simplex i + j + k <= 4, all >= 0: C(7,3) = 35 *)
  check_int "simplex 3D" 35
    (Set.card
       (P.set
          "{ A[i,j,k] : 0 <= i and 0 <= j and 0 <= k and i + j + k <= 4 }"));
  (* thin coupled band: exactly one of {i, i+1} is even, so one j per i *)
  check_int "band" 10
    (Set.card
       (P.set
          "{ A[i,j] : 0 <= i < 10 and i <= 2*j and 2*j <= i + 1 }"))

let test_fm_empty_detection () =
  check_int "infeasible coupled" 0
    (Set.card
       (P.set "{ A[i,j] : i + j >= 5 and i + j <= 3 and 0 <= i and 0 <= j }"))

(* random quasi-affine expressions: print -> parse -> same evaluation *)
let gen_expr =
  QCheck.Gen.(
    sized_size (int_range 0 4) (fix (fun self n ->
        if n = 0 then
          oneof [ map (fun v -> Aff.Var (if v then "i" else "j")) bool;
                  map (fun c -> Aff.Int c) (int_range (-9) 9) ]
        else
          frequency
            [ (3, map2 (fun a b -> Aff.Add (a, b)) (self (n / 2)) (self (n / 2)));
              (2, map2 (fun a b -> Aff.Sub (a, b)) (self (n / 2)) (self (n / 2)));
              (1, map (fun a -> Aff.Neg a) (self (n - 1)));
              (1, map2 (fun a c -> Aff.Mul (Aff.Int c, a)) (self (n - 1)) (int_range (-4) 4));
              (1, map2 (fun a d -> Aff.Fdiv (a, d)) (self (n - 1)) (int_range 1 5));
              (1, map2 (fun a d -> Aff.Mod (a, d)) (self (n - 1)) (int_range 1 5)) ])))

let prop_expr_roundtrip =
  QCheck.Test.make ~name:"expr print/parse/eval roundtrip" ~count:200
    (QCheck.make gen_expr) (fun e ->
      let printed = Aff.to_string e in
      match P.expr ~dims:[ "i"; "j" ] printed with
      | e' ->
          List.for_all
            (fun (i, j) ->
              let env = function
                | "i" -> i
                | "j" -> j
                | _ -> raise Not_found
              in
              Aff.eval env e = Aff.eval env e')
            [ (0, 0); (3, 5); (-2, 7); (11, -4) ]
      | exception P.Parse_error _ -> false)

(* interval analysis is sound: the value at sampled points lies within *)
let prop_interval_sound =
  QCheck.Test.make ~name:"interval analysis sound" ~count:200
    (QCheck.make gen_expr) (fun e ->
      let env_iv = function
        | "i" -> (0, 7)
        | "j" -> (-3, 4)
        | _ -> raise Not_found
      in
      let lo, hi = Aff.interval env_iv e in
      List.for_all
        (fun (i, j) ->
          let env = function "i" -> i | "j" -> j | _ -> raise Not_found in
          let v = Aff.eval env e in
          lo <= v && v <= hi)
        [ (0, -3); (7, 4); (3, 0); (5, -1); (0, 4); (7, -3) ])

let extra_suites =
  [
    ( "fourier-motzkin",
      [
        Alcotest.test_case "coupled shapes" `Quick test_fm_shapes;
        Alcotest.test_case "infeasible" `Quick test_fm_empty_detection;
      ] );
    ( "fuzz",
      List.map QCheck_alcotest.to_alcotest
        [ prop_expr_roundtrip; prop_interval_sound ] );
  ]

let () =
  Alcotest.run "isl"
    ([
      ( "sets",
        [
          Alcotest.test_case "box card" `Quick test_box_card;
          Alcotest.test_case "triangle" `Quick test_triangle;
          Alcotest.test_case "mod/div" `Quick test_mod_div;
          Alcotest.test_case "union/subtract" `Quick test_union_subtract;
          Alcotest.test_case "!= expansion" `Quick test_ne_expansion;
          Alcotest.test_case "mem/sample" `Quick test_mem_sample;
          Alcotest.test_case "iter_points" `Quick test_iter_points;
          Alcotest.test_case "projection" `Quick test_projection;
          Alcotest.test_case "dim_bounds" `Quick test_dim_bounds;
        ] );
      ( "maps",
        [
          Alcotest.test_case "basics" `Quick test_map_basics;
          Alcotest.test_case "eval/image" `Quick test_map_eval_image;
          Alcotest.test_case "apply_range" `Quick test_apply_range;
          Alcotest.test_case "intersect dom/ran" `Quick
            test_intersect_domain_range;
          Alcotest.test_case "subtract/union" `Quick test_map_subtract_union;
          Alcotest.test_case "mem_fn" `Quick test_mem_fn;
          Alcotest.test_case "subset/equal" `Quick test_subset_equal;
        ] );
      ( "paper examples",
        [
          Alcotest.test_case "Fig3 TotalVolume" `Quick test_fig3_total_volume;
          Alcotest.test_case "Fig3 ReuseVolume" `Quick test_fig3_reuse_volume;
          Alcotest.test_case "Fig3 Y stationary" `Quick
            test_fig3_y_stationary;
          Alcotest.test_case "tiled theta" `Quick test_tiled_theta;
          Alcotest.test_case "mesh via abs" `Quick test_interconnect_abs;
        ] );
      ( "parser",
        [
          Alcotest.test_case "forms" `Quick test_parser_forms;
          Alcotest.test_case "errors" `Quick test_parser_errors;
          Alcotest.test_case "print/parse roundtrip" `Quick
            test_to_string_roundtrip;
        ] );
      ( "aff",
        [
          Alcotest.test_case "eval" `Quick test_aff_eval;
          Alcotest.test_case "interval" `Quick test_aff_interval;
          Alcotest.test_case "nonlinear rejected" `Quick test_aff_nonlinear;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_count_vs_brute;
            prop_union_card;
            prop_subtract_card;
            prop_reverse_card;
            prop_mem_consistent_with_iter;
          ] );
    ]
    @ extra_suites)
