(* Tests for the cycle-level simulator: agreement with the analytical
   model where the model's assumptions hold, and realistic divergence
   where they do not. *)

module Ir = Tenet.Ir
module Arch = Tenet.Arch
module Df = Tenet.Dataflow
module M = Tenet.Model
module Sim = Tenet.Sim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_compute_bound_agreement () =
  (* ample bandwidth: observed cycles ~ model compute delay (one extra
     drain step is allowed) *)
  let spec = Arch.Repository.tpu_like ~bandwidth:1024 () in
  let op = Ir.Kernels.gemm ~ni:16 ~nj:16 ~nk:16 in
  let df = Df.Zoo.gemm_ij_p_ijk_t () in
  let m = M.Concrete.analyze spec op df in
  let s = Sim.Simulator.run spec op df in
  check_bool "within one drain step" true
    (abs (s.Sim.Simulator.cycles - m.M.Metrics.delay_compute) <= 1);
  check_int "no stalls" 0 s.Sim.Simulator.stalled_cycles

let test_traffic_matches_unique_volume () =
  (* the simulator's fetch counts must equal the model's UniqueVolume:
     both count first-touch transfers under the same reuse channels *)
  let spec = Arch.Repository.tpu_like ~bandwidth:1024 () in
  let op = Ir.Kernels.gemm ~ni:16 ~nj:16 ~nk:16 in
  let df = Df.Zoo.gemm_ij_p_ijk_t () in
  let m = M.Concrete.analyze spec op df in
  let s = Sim.Simulator.run spec op df in
  List.iter
    (fun (tr : Sim.Simulator.tensor_traffic) ->
      let v = (M.Metrics.find_tensor m tr.Sim.Simulator.tensor).M.Metrics.volumes in
      match tr.Sim.Simulator.direction with
      | Ir.Tensor_op.Read ->
          check_int
            ("reads " ^ tr.Sim.Simulator.tensor)
            v.M.Metrics.unique tr.Sim.Simulator.fetches
      | Ir.Tensor_op.Write ->
          check_int
            ("writes " ^ tr.Sim.Simulator.tensor)
            v.M.Metrics.unique
            (tr.Sim.Simulator.writebacks + tr.Sim.Simulator.fetches))
    s.Sim.Simulator.traffic

let test_bandwidth_stalls () =
  let op = Ir.Kernels.gemm ~ni:16 ~nj:16 ~nk:16 in
  let df = Df.Zoo.gemm_ij_p_ijk_t () in
  let wide = Sim.Simulator.run (Arch.Repository.tpu_like ~bandwidth:256 ()) op df in
  let narrow = Sim.Simulator.run (Arch.Repository.tpu_like ~bandwidth:2 ()) op df in
  check_bool "narrow slower" true
    (narrow.Sim.Simulator.cycles > wide.Sim.Simulator.cycles);
  check_bool "stalls appear" true (narrow.Sim.Simulator.stalled_cycles > 0);
  check_bool "utilization drops" true
    (narrow.Sim.Simulator.utilization < wide.Sim.Simulator.utilization)

let test_busy_cycles () =
  let spec = Arch.Repository.tpu_like () in
  let op = Ir.Kernels.gemm ~ni:16 ~nj:16 ~nk:16 in
  let s = Sim.Simulator.run spec op (Df.Zoo.gemm_ij_p_ijk_t ()) in
  check_int "busy = instances" (16 * 16 * 16) s.Sim.Simulator.busy_pe_cycles

let test_stationary_output_written_once () =
  let spec = Arch.Repository.tpu_like ~bandwidth:1024 () in
  let op = Ir.Kernels.gemm ~ni:16 ~nj:16 ~nk:16 in
  let s = Sim.Simulator.run spec op (Df.Zoo.gemm_ij_p_ijk_t ()) in
  let y =
    List.find
      (fun t -> String.equal t.Sim.Simulator.tensor "Y")
      s.Sim.Simulator.traffic
  in
  check_int "each output written once" 256 y.Sim.Simulator.writebacks;
  check_int "never reloaded" 0 y.Sim.Simulator.fetches

let test_reloaded_partial_sums () =
  (* a dataflow that revisits outputs: (K-P | I,J-T) on a 1D array makes
     each PE hold a k-slice; Y[i,j] revisited per k tile -> reloads *)
  let spec = Arch.Repository.systolic_1d ~n:8 ~bandwidth:1024 () in
  let op = Ir.Kernels.gemm ~ni:4 ~nj:4 ~nk:16 in
  let df = Df.Zoo.gemm_k_p_ij_t ~p:8 () in
  let s = Sim.Simulator.run spec op df in
  let y =
    List.find
      (fun t -> String.equal t.Sim.Simulator.tensor "Y")
      s.Sim.Simulator.traffic
  in
  check_bool "partial sums move" true (y.Sim.Simulator.writebacks > 16)

let test_mesh_vs_systolic_traffic () =
  (* richer interconnect can only reduce scratchpad fetches *)
  let op = Ir.Kernels.conv2d ~nk:8 ~nc:8 ~nox:8 ~noy:8 ~nrx:3 ~nry:3 in
  let df = Df.Zoo.conv_nvdla () in
  let fetches spec =
    let s = Sim.Simulator.run spec op df in
    List.fold_left
      (fun acc t -> acc + t.Sim.Simulator.fetches)
      0 s.Sim.Simulator.traffic
  in
  let sys = fetches (Arch.Repository.tpu_like ~bandwidth:1024 ()) in
  let mesh = fetches (Arch.Repository.mesh_array ~bandwidth:1024 ()) in
  check_bool "mesh <= systolic fetches" true (mesh <= sys)


let test_windowed_traffic_parity () =
  (* the simulator's per-PE register window implements exactly the
     concrete model's lex-window temporal channel: input fetch counts
     match the model's UniqueVolume at every window size.  (Output
     parity needs per-PE-unique outputs — the simulator deduplicates
     writebacks of replicated copies within a stamp while the model
     counts per PE — so it is checked on the GEMM dataflow below.) *)
  let op = Ir.Kernels.conv2d ~nk:4 ~nc:4 ~nox:5 ~noy:5 ~nrx:3 ~nry:3 in
  let spec =
    Arch.Spec.make ~pe:(Arch.Pe_array.d2 4 4)
      ~topology:Arch.Interconnect.Systolic_2d ~bandwidth:4096 ()
  in
  let df = Df.Zoo.conv_nvdla ~p:4 () in
  List.iter
    (fun window ->
      let m = M.Concrete.analyze ~adjacency:`Lex_step ~window spec op df in
      let s = Sim.Simulator.run ~window spec op df in
      List.iter
        (fun (tr : Sim.Simulator.tensor_traffic) ->
          let v =
            (M.Metrics.find_tensor m tr.Sim.Simulator.tensor).M.Metrics.volumes
          in
          match tr.Sim.Simulator.direction with
          | Ir.Tensor_op.Read ->
              check_int
                (Printf.sprintf "w=%d reads %s" window tr.Sim.Simulator.tensor)
                v.M.Metrics.unique tr.Sim.Simulator.fetches
          | Ir.Tensor_op.Write -> ())
        s.Sim.Simulator.traffic)
    [ 1; 2; 5; 15 ];
  (* output parity on an output-stationary GEMM (Y unique per PE) *)
  let gop = Ir.Kernels.gemm ~ni:8 ~nj:8 ~nk:8 in
  let gspec =
    Arch.Spec.make ~pe:(Arch.Pe_array.d2 4 4)
      ~topology:Arch.Interconnect.Systolic_2d ~bandwidth:4096 ()
  in
  let gdf = Df.Zoo.gemm_ij_p_ijk_t ~p:4 () in
  List.iter
    (fun window ->
      let m = M.Concrete.analyze ~adjacency:`Lex_step ~window gspec gop gdf in
      let s = Sim.Simulator.run ~window gspec gop gdf in
      let y =
        List.find
          (fun t -> String.equal t.Sim.Simulator.tensor "Y")
          s.Sim.Simulator.traffic
      in
      let v = (M.Metrics.find_tensor m "Y").M.Metrics.volumes in
      check_int
        (Printf.sprintf "w=%d writes Y" window)
        v.M.Metrics.unique
        (y.Sim.Simulator.writebacks + y.Sim.Simulator.fetches))
    [ 1; 3 ]

let () =
  Alcotest.run "sim"
    [
      ( "agreement",
        [
          Alcotest.test_case "compute bound" `Quick test_compute_bound_agreement;
          Alcotest.test_case "traffic = unique volume" `Quick
            test_traffic_matches_unique_volume;
          Alcotest.test_case "busy cycles" `Quick test_busy_cycles;
          Alcotest.test_case "windowed traffic parity" `Quick
            test_windowed_traffic_parity;
        ] );
      ( "behavior",
        [
          Alcotest.test_case "bandwidth stalls" `Quick test_bandwidth_stalls;
          Alcotest.test_case "stationary output" `Quick
            test_stationary_output_written_once;
          Alcotest.test_case "reloaded partial sums" `Quick
            test_reloaded_partial_sums;
          Alcotest.test_case "mesh vs systolic" `Quick
            test_mesh_vs_systolic_traffic;
        ] );
    ]
