(* Tests for the register-window temporal channel and the lexicographic
   adjacency: the machinery behind the Section VI-E row-stationary
   analysis. *)

module Isl = Tenet.Isl
module Ir = Tenet.Ir
module Arch = Tenet.Arch
module Df = Tenet.Dataflow
module M = Tenet.Model

let check_int = Alcotest.(check int)

(* A 1-PE "machine" running a loop that revisits elements at a fixed
   stride: Y[i] accessed for each j, at temporal distance = extent of the
   inner dim. *)
let strided_op ~ni ~nj =
  Ir.Tensor_op.make
    ~iters:[ ("j", 0, nj - 1); ("i", 0, ni - 1) ]
    ~accesses:
      [
        {
          Ir.Tensor_op.tensor = "Y";
          subscripts = [ Isl.Aff.Var "i" ];
          direction = Ir.Tensor_op.Write;
        };
      ]
    ()

let one_pe_df =
  Df.Dataflow.make ~name:"seq" ~space:[ Isl.Aff.Int 0 ]
    ~time:Isl.Aff.[ Var "j"; Var "i" ]

let spec1 =
  Arch.Spec.make ~pe:(Arch.Pe_array.d1 1)
    ~topology:Arch.Interconnect.Systolic_1d ~bandwidth:64 ()

let y_volumes ~window ~adjacency ~ni ~nj =
  let m =
    M.Concrete.analyze ~adjacency ~window spec1 (strided_op ~ni ~nj) one_pe_df
  in
  (M.Metrics.find_tensor m "Y").M.Metrics.volumes

let test_window_1_misses_strided_reuse () =
  (* Y[i] revisited at lex distance ni; window 1 sees nothing *)
  let v = y_volumes ~window:1 ~adjacency:`Lex_step ~ni:5 ~nj:4 in
  check_int "total" 20 v.M.Metrics.total;
  check_int "temporal" 0 v.M.Metrics.temporal_reuse;
  check_int "unique" 20 v.M.Metrics.unique

let test_window_covers_stride () =
  (* window >= ni captures every revisit: unique = footprint *)
  let v = y_volumes ~window:5 ~adjacency:`Lex_step ~ni:5 ~nj:4 in
  check_int "temporal" 15 v.M.Metrics.temporal_reuse;
  check_int "unique = footprint" 5 v.M.Metrics.unique

let test_window_boundary () =
  (* window = stride - 1 still misses *)
  let v = y_volumes ~window:4 ~adjacency:`Lex_step ~ni:5 ~nj:4 in
  check_int "temporal" 0 v.M.Metrics.temporal_reuse

let test_inner_step_never_wraps () =
  (* under Inner_step the revisit crosses the j boundary: invisible at
     any window *)
  let v = y_volumes ~window:50 ~adjacency:`Inner_step ~ni:5 ~nj:4 in
  check_int "temporal" 0 v.M.Metrics.temporal_reuse

let test_inner_step_within_row () =
  (* an element reused within the inner loop is visible to Inner_step *)
  let op =
    Ir.Tensor_op.make
      ~iters:[ ("j", 0, 3); ("i", 0, 9) ]
      ~accesses:
        [
          {
            Ir.Tensor_op.tensor = "Y";
            subscripts = [ Isl.Aff.Fdiv (Isl.Aff.Var "i", 5) ];
            direction = Ir.Tensor_op.Write;
          };
        ]
      ()
  in
  let m = M.Concrete.analyze ~adjacency:`Inner_step ~window:1 spec1 op one_pe_df in
  let v = (M.Metrics.find_tensor m "Y").M.Metrics.volumes in
  (* Y[i/5]: runs of 5 consecutive accesses -> 4 reuses per run, 8 runs *)
  check_int "temporal" 32 v.M.Metrics.temporal_reuse;
  check_int "unique" 8 v.M.Metrics.unique

(* the Eyeriss miniature: output row cycling with period = OX is captured
   exactly by window = OX under lex adjacency *)
let test_eyeriss_miniature () =
  let op = Ir.Kernels.conv2d ~nk:4 ~nc:4 ~nox:5 ~noy:5 ~nrx:3 ~nry:3 in
  let spec =
    Arch.Spec.make
      ~pe:(Arch.Pe_array.d2 12 14)
      ~topology:Arch.Interconnect.Row_col_broadcast ~bandwidth:64 ()
  in
  let df = Df.Zoo.conv_eyeriss_rs ~kt:4 ~ct:4 ~cpack:4 () in
  let m = M.Concrete.analyze ~adjacency:`Lex_step ~window:5 spec op df in
  let y = (M.Metrics.find_tensor m "Y").M.Metrics.volumes in
  (* with C = 4 all channel slices sit in the space stamp: temporal chain
     is rx (3), the column shares across ry x c%4 (12): factor 3 x 12 *)
  Alcotest.(check (float 1e-6))
    "output factor 36" 36.
    (M.Metrics.reuse_factor y)

(* window does not change TotalVolume or instance counts *)
let prop_window_invariants =
  QCheck.Test.make ~name:"window only moves unique -> reuse" ~count:20
    QCheck.(pair (int_range 1 6) (int_range 0 1))
    (fun (window, adj) ->
      let adjacency = if adj = 0 then `Inner_step else `Lex_step in
      let op = Ir.Kernels.gemm ~ni:8 ~nj:8 ~nk:4 in
      let spec = Arch.Repository.tpu_like ~n:4 () in
      let df = Df.Zoo.gemm_ij_p_ijk_t ~p:4 () in
      let m = M.Concrete.analyze ~adjacency ~window spec op df in
      List.for_all
        (fun tm ->
          let v = tm.M.Metrics.volumes in
          v.M.Metrics.total = 256
          && v.M.Metrics.unique + M.Metrics.reuse v = v.M.Metrics.total
          && v.M.Metrics.unique >= tm.M.Metrics.footprint)
        m.M.Metrics.per_tensor)

(* a larger window never decreases temporal reuse *)
let prop_window_monotone =
  QCheck.Test.make ~name:"temporal reuse monotone in window" ~count:10
    QCheck.(int_range 1 6)
    (fun w ->
      let op = Ir.Kernels.conv2d ~nk:4 ~nc:4 ~nox:5 ~noy:5 ~nrx:3 ~nry:3 in
      let spec = Arch.Repository.tpu_like ~n:4 () in
      let df = Df.Zoo.conv_nvdla ~p:4 () in
      let t window =
        let m = M.Concrete.analyze ~adjacency:`Lex_step ~window spec op df in
        List.fold_left
          (fun a tm -> a + tm.M.Metrics.volumes.M.Metrics.temporal_reuse)
          0 m.M.Metrics.per_tensor
      in
      t (w + 1) >= t w)

let () =
  Alcotest.run "window"
    [
      ( "semantics",
        [
          Alcotest.test_case "window 1 misses stride" `Quick
            test_window_1_misses_strided_reuse;
          Alcotest.test_case "window covers stride" `Quick
            test_window_covers_stride;
          Alcotest.test_case "window boundary" `Quick test_window_boundary;
          Alcotest.test_case "inner-step never wraps" `Quick
            test_inner_step_never_wraps;
          Alcotest.test_case "inner-step within row" `Quick
            test_inner_step_within_row;
          Alcotest.test_case "eyeriss miniature" `Quick test_eyeriss_miniature;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_window_invariants; prop_window_monotone ] );
    ]
