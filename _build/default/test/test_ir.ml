(* Tests for tenet.ir: kernels, access maps, footprints, C frontend. *)

module Ir = Tenet.Ir
module Isl = Tenet.Isl

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_gemm_shape () =
  let op = Ir.Kernels.gemm ~ni:4 ~nj:5 ~nk:6 in
  check_int "instances" 120 (Ir.Tensor_op.n_instances op);
  check_int "iters" 3 (Ir.Tensor_op.n_iters op);
  Alcotest.(check (list string)) "tensors" [ "A"; "B"; "Y" ]
    (Ir.Tensor_op.tensors op);
  Alcotest.(check (list string)) "inputs" [ "A"; "B" ] (Ir.Tensor_op.inputs op);
  Alcotest.(check (list string)) "outputs" [ "Y" ] (Ir.Tensor_op.outputs op);
  check_int "domain card" 120 (Isl.Set.card (Ir.Tensor_op.domain op));
  check_int "arity A" 2 (Ir.Tensor_op.tensor_arity op "A")

let test_gemm_footprints () =
  let op = Ir.Kernels.gemm ~ni:4 ~nj:5 ~nk:6 in
  check_int "A footprint" 24 (Ir.Tensor_op.footprint op "A");
  check_int "B footprint" 30 (Ir.Tensor_op.footprint op "B");
  check_int "Y footprint" 20 (Ir.Tensor_op.footprint op "Y")

let test_access_map () =
  let op = Ir.Kernels.gemm ~ni:4 ~nj:5 ~nk:6 in
  let a = Ir.Tensor_op.access_map op "A" in
  check_int "A pairs = instances" 120 (Isl.Map.card a);
  check_bool "functional" true (Isl.Map.is_single_valued a);
  match Isl.Map.eval a [| 1; 2; 3 |] with
  | Some f ->
      check_int "A[i,k] fst" 1 f.(0);
      check_int "A[i,k] snd" 3 f.(1)
  | None -> Alcotest.fail "in domain"

let test_conv_shape () =
  let op = Ir.Kernels.conv2d ~nk:4 ~nc:3 ~nox:5 ~noy:5 ~nrx:3 ~nry:3 in
  check_int "instances" (4 * 3 * 5 * 5 * 3 * 3) (Ir.Tensor_op.n_instances op);
  (* input footprint: c x (ox+rx) x (oy+ry) = 3 x 7 x 7 *)
  check_int "A footprint" 147 (Ir.Tensor_op.footprint op "A");
  check_int "B footprint" (4 * 3 * 3 * 3) (Ir.Tensor_op.footprint op "B");
  check_int "Y footprint" (4 * 5 * 5) (Ir.Tensor_op.footprint op "Y")

let test_conv1d_fig1 () =
  (* the 1D-CONV of Figure 1: 4 outputs, 3 taps *)
  let op = Ir.Kernels.conv1d ~no:4 ~nr:3 in
  check_int "instances" 12 (Ir.Tensor_op.n_instances op);
  check_int "A footprint (distinct i+j)" 6 (Ir.Tensor_op.footprint op "A");
  check_int "B footprint" 3 (Ir.Tensor_op.footprint op "B");
  check_int "Y footprint" 4 (Ir.Tensor_op.footprint op "Y")

let test_jacobi () =
  let op = Ir.Kernels.jacobi2d ~n:6 in
  check_int "instances" 16 (Ir.Tensor_op.n_instances op);
  (* 5-point stencil over the interior touches the full 6x6 grid *)
  check_int "A footprint" 32 (Ir.Tensor_op.footprint op "A");
  check_int "accesses of A" 5 (List.length (Ir.Tensor_op.accesses_of op "A"))

let test_mttkrp_mmc () =
  let op = Ir.Kernels.mttkrp ~ni:3 ~nj:4 ~nk:5 ~nl:6 in
  check_int "instances" 360 (Ir.Tensor_op.n_instances op);
  check_int "A footprint" 90 (Ir.Tensor_op.footprint op "A");
  check_int "C footprint" 24 (Ir.Tensor_op.footprint op "C");
  let op2 = Ir.Kernels.mmc ~ni:3 ~nj:4 ~nk:5 ~nl:6 in
  check_int "mmc instances" 360 (Ir.Tensor_op.n_instances op2);
  check_int "mmc B footprint" 30 (Ir.Tensor_op.footprint op2 "B")

let test_dw_pw () =
  let dw = Ir.Kernels.dw_conv2d ~nc:8 ~nox:4 ~noy:4 ~nrx:3 ~nry:3 in
  check_int "dw instances" (8 * 4 * 4 * 9) (Ir.Tensor_op.n_instances dw);
  check_int "dw Y footprint" (8 * 16) (Ir.Tensor_op.footprint dw "Y");
  let pw = Ir.Kernels.pw_conv2d ~nk:8 ~nc:8 ~nox:4 ~noy:4 in
  check_int "pw instances" (64 * 16) (Ir.Tensor_op.n_instances pw);
  (* 1x1 filter: input footprint = c * ox * oy exactly, no halo *)
  check_int "pw A footprint" (8 * 16) (Ir.Tensor_op.footprint pw "A")

let test_make_rejects_unknown_iter () =
  check_bool "unknown iterator" true
    (match
       Ir.Tensor_op.make
         ~iters:[ ("i", 0, 3) ]
         ~accesses:
           [
             {
               Ir.Tensor_op.tensor = "A";
               subscripts = [ Isl.Aff.Var "zz" ];
               direction = Ir.Tensor_op.Read;
             };
           ]
         ()
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* --- C frontend --- *)

let gemm_src =
  "for (i = 0; i < 4; i++)\n\
   for (j = 0; j < 5; j++)\n\
   for (k = 0; k < 6; k++)\n\
   Y[i][j] += A[i][k] * B[k][j];"

let test_cfront_gemm () =
  let op = Ir.Cfront.parse gemm_src in
  check_int "instances" 120 (Ir.Tensor_op.n_instances op);
  Alcotest.(check (list string)) "outputs" [ "Y" ] (Ir.Tensor_op.outputs op);
  check_int "A footprint" 24 (Ir.Tensor_op.footprint op "A")

let test_cfront_conv () =
  let src =
    "for (k = 0; k < 4; k++)\n\
     for (c = 0; c < 3; c++)\n\
     for (ox = 0; ox < 5; ox++)\n\
     for (oy = 0; oy < 5; oy++)\n\
     for (rx = 0; rx < 3; rx++)\n\
     for (ry = 0; ry < 3; ry++)\n\
     Y[k][ox][oy] += A[c][ox+rx][oy+ry] * B[k][c][rx][ry];"
  in
  let op = Ir.Cfront.parse src in
  check_int "instances" 2700 (Ir.Tensor_op.n_instances op);
  check_int "A footprint" 147 (Ir.Tensor_op.footprint op "A")

let test_cfront_variants () =
  (* <=, += 1, i = i + 1, comments, int decls, braces *)
  let src =
    "for (int i = 0; i <= 3; i += 1) { // outer\n\
     for (j = 0; j < 2; j = j + 1) {\n\
     Y[i] += A[i + j] * B[j];\n\
     } }"
  in
  let op = Ir.Cfront.parse src in
  check_int "instances" 8 (Ir.Tensor_op.n_instances op);
  check_int "A footprint" 5 (Ir.Tensor_op.footprint op "A")

let test_cfront_jacobi_style () =
  let src =
    "for (i = 1; i <= 4; i++)\n\
     for (j = 1; j <= 4; j++)\n\
     Y[i][j] = (A[i][j] + A[i-1][j] + A[i][j-1] + A[i+1][j] + A[i][j+1]) / 5;"
  in
  let op = Ir.Cfront.parse src in
  check_int "instances" 16 (Ir.Tensor_op.n_instances op);
  check_int "A accesses" 5 (List.length (Ir.Tensor_op.accesses_of op "A"))

let test_cfront_errors () =
  let fails s = match Ir.Cfront.parse s with _ -> false | exception _ -> true in
  check_bool "no loop" true (fails "Y[i] += A[i];");
  check_bool "stride 2" true
    (fails "for (i = 0; i < 4; i += 2) Y[i] += A[i];");
  check_bool "bad test var" true
    (fails "for (i = 0; j < 4; i++) Y[i] += A[i];");
  check_bool "missing semicolon" true
    (fails "for (i = 0; i < 4; i++) Y[i] += A[i]")

(* properties *)
let prop_footprint_le_instances =
  QCheck.Test.make ~name:"footprint <= accesses" ~count:50
    QCheck.(triple (int_range 1 6) (int_range 1 6) (int_range 1 6))
    (fun (ni, nj, nk) ->
      let op = Ir.Kernels.gemm ~ni ~nj ~nk in
      List.for_all
        (fun t -> Ir.Tensor_op.footprint op t <= Ir.Tensor_op.n_instances op)
        (Ir.Tensor_op.tensors op))

let prop_gemm_footprints_formula =
  QCheck.Test.make ~name:"gemm footprints are products" ~count:50
    QCheck.(triple (int_range 1 8) (int_range 1 8) (int_range 1 8))
    (fun (ni, nj, nk) ->
      let op = Ir.Kernels.gemm ~ni ~nj ~nk in
      Ir.Tensor_op.footprint op "A" = ni * nk
      && Ir.Tensor_op.footprint op "B" = nk * nj
      && Ir.Tensor_op.footprint op "Y" = ni * nj)

let () =
  Alcotest.run "ir"
    [
      ( "kernels",
        [
          Alcotest.test_case "gemm shape" `Quick test_gemm_shape;
          Alcotest.test_case "gemm footprints" `Quick test_gemm_footprints;
          Alcotest.test_case "access map" `Quick test_access_map;
          Alcotest.test_case "conv shape" `Quick test_conv_shape;
          Alcotest.test_case "conv1d fig1" `Quick test_conv1d_fig1;
          Alcotest.test_case "jacobi" `Quick test_jacobi;
          Alcotest.test_case "mttkrp/mmc" `Quick test_mttkrp_mmc;
          Alcotest.test_case "dw/pw conv" `Quick test_dw_pw;
          Alcotest.test_case "unknown iterator rejected" `Quick
            test_make_rejects_unknown_iter;
        ] );
      ( "cfront",
        [
          Alcotest.test_case "gemm" `Quick test_cfront_gemm;
          Alcotest.test_case "conv" `Quick test_cfront_conv;
          Alcotest.test_case "syntax variants" `Quick test_cfront_variants;
          Alcotest.test_case "jacobi-style =" `Quick test_cfront_jacobi_style;
          Alcotest.test_case "errors" `Quick test_cfront_errors;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_footprint_le_instances; prop_gemm_footprints_formula ] );
    ]
