(* Unit and property tests for tenet.util. *)

module IM = Tenet_util.Int_math
module Ivec = Tenet_util.Ivec
module Uf = Tenet_util.Union_find

let check_int = Alcotest.(check int)

let test_gcd () =
  check_int "gcd 12 18" 6 (IM.gcd 12 18);
  check_int "gcd 0 0" 0 (IM.gcd 0 0);
  check_int "gcd -12 18" 6 (IM.gcd (-12) 18);
  check_int "gcd 7 0" 7 (IM.gcd 7 0);
  check_int "gcd 1 1" 1 (IM.gcd 1 1)

let test_lcm () =
  check_int "lcm 4 6" 12 (IM.lcm 4 6);
  check_int "lcm 0 5" 0 (IM.lcm 0 5);
  check_int "lcm -4 6" 12 (IM.lcm (-4) 6)

let test_fdiv_fmod () =
  check_int "fdiv 7 2" 3 (IM.fdiv 7 2);
  check_int "fdiv -7 2" (-4) (IM.fdiv (-7) 2);
  check_int "fdiv 7 -2" (-4) (IM.fdiv 7 (-2));
  check_int "fdiv -7 -2" 3 (IM.fdiv (-7) (-2));
  check_int "fmod -7 2" 1 (IM.fmod (-7) 2);
  check_int "fmod 7 2" 1 (IM.fmod 7 2);
  check_int "cdiv 7 2" 4 (IM.cdiv 7 2);
  check_int "cdiv -7 2" (-3) (IM.cdiv (-7) 2);
  check_int "cdiv 8 2" 4 (IM.cdiv 8 2)

let test_pow_factorial_binomial () =
  check_int "2^10" 1024 (IM.pow 2 10);
  check_int "3^0" 1 (IM.pow 3 0);
  check_int "2^9" 512 (IM.pow 2 9);
  check_int "5!" 120 (IM.factorial 5);
  check_int "0!" 1 (IM.factorial 0);
  check_int "C(3,2)" 3 (IM.binomial 3 2);
  check_int "C(6,3)" 20 (IM.binomial 6 3);
  check_int "C(5,0)" 1 (IM.binomial 5 0);
  check_int "C(4,7)" 0 (IM.binomial 4 7)

let test_clamp_sum () =
  check_int "clamp low" 0 (IM.clamp ~lo:0 ~hi:5 (-3));
  check_int "clamp high" 5 (IM.clamp ~lo:0 ~hi:5 9);
  check_int "clamp mid" 3 (IM.clamp ~lo:0 ~hi:5 3);
  check_int "sum" 10 (IM.sum [ 1; 2; 3; 4 ])

let test_ivec () =
  check_int "dot" 32 (Ivec.dot [| 1; 2; 3 |] [| 4; 5; 6 |]);
  check_int "content" 4 (Ivec.content [| 8; -12; 4 |]);
  check_int "content zero" 0 (Ivec.content [| 0; 0 |]);
  Alcotest.(check bool) "is_zero" true (Ivec.is_zero [| 0; 0; 0 |]);
  Alcotest.(check bool)
    "equal" true
    (Ivec.equal (Ivec.add [| 1; 2 |] [| 3; 4 |]) [| 4; 6 |]);
  Alcotest.(check bool)
    "sub" true
    (Ivec.equal (Ivec.sub [| 1; 2 |] [| 3; 4 |]) [| -2; -2 |]);
  Alcotest.(check bool)
    "scale" true
    (Ivec.equal (Ivec.scale 3 [| 1; -2 |]) [| 3; -6 |]);
  check_int "lex lt" (-1)
    (compare (Ivec.compare_lex [| 1; 2 |] [| 1; 3 |]) 0);
  check_int "lex eq" 0 (Ivec.compare_lex [| 1; 2 |] [| 1; 2 |])

let test_union_find () =
  let uf = Uf.create 6 in
  Uf.union uf 0 1;
  Uf.union uf 2 3;
  Uf.union uf 1 2;
  Alcotest.(check bool) "joined" true (Uf.find uf 0 = Uf.find uf 3);
  Alcotest.(check bool) "separate" true (Uf.find uf 4 <> Uf.find uf 0);
  let groups = Uf.groups uf in
  check_int "n groups" 3 (Array.length groups)

(* properties *)
let prop_fdiv_fmod =
  QCheck.Test.make ~name:"a = b*fdiv(a,b) + fmod(a,b), 0 <= fmod < |b|"
    ~count:500
    QCheck.(pair (int_range (-1000) 1000) (int_range 1 50))
    (fun (a, b) ->
      let q = IM.fdiv a b and r = IM.fmod a b in
      a = (b * q) + r && r >= 0 && r < b)

let prop_gcd_divides =
  QCheck.Test.make ~name:"gcd divides both" ~count:500
    QCheck.(pair (int_range (-500) 500) (int_range (-500) 500))
    (fun (a, b) ->
      let g = IM.gcd a b in
      if a = 0 && b = 0 then g = 0 else a mod g = 0 && b mod g = 0)

let prop_cdiv_neg =
  QCheck.Test.make ~name:"cdiv a b = -fdiv (-a) b" ~count:500
    QCheck.(pair (int_range (-1000) 1000) (int_range 1 50))
    (fun (a, b) -> IM.cdiv a b = -IM.fdiv (-a) b)

let () =
  Alcotest.run "util"
    [
      ( "int_math",
        [
          Alcotest.test_case "gcd" `Quick test_gcd;
          Alcotest.test_case "lcm" `Quick test_lcm;
          Alcotest.test_case "fdiv/fmod/cdiv" `Quick test_fdiv_fmod;
          Alcotest.test_case "pow/factorial/binomial" `Quick
            test_pow_factorial_binomial;
          Alcotest.test_case "clamp/sum" `Quick test_clamp_sum;
        ] );
      ( "ivec",
        [ Alcotest.test_case "vector ops" `Quick test_ivec ] );
      ( "union_find",
        [ Alcotest.test_case "components" `Quick test_union_find ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_fdiv_fmod; prop_gcd_divides; prop_cdiv_neg ] );
    ]
