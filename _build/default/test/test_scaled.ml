(* Tests for Model.Scaled: the multilinear extrapolation must agree with
   exact analysis wherever exact analysis is feasible. *)

module Ir = Tenet.Ir
module Arch = Tenet.Arch
module Df = Tenet.Dataflow
module M = Tenet.Model

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let summary (m : M.Metrics.t) =
  ( m.M.Metrics.n_instances,
    m.M.Metrics.n_timestamps,
    List.map
      (fun tm ->
        let v = tm.M.Metrics.volumes in
        ( tm.M.Metrics.tensor,
          v.M.Metrics.total,
          v.M.Metrics.temporal_reuse,
          v.M.Metrics.spatial_reuse,
          tm.M.Metrics.footprint ))
      m.M.Metrics.per_tensor )

let test_gemm_exactness () =
  let spec = Arch.Repository.tpu_like () in
  let op = Ir.Kernels.gemm ~ni:64 ~nj:64 ~nk:48 in
  let df = Df.Zoo.gemm_ij_p_ijk_t () in
  let exact = M.Concrete.analyze spec op df in
  let scaled = M.Scaled.analyze spec op df ~scale_dims:[ "i"; "j"; "k" ] in
  Alcotest.(check bool) "summaries equal" true (summary exact = summary scaled)

let test_conv_exactness () =
  let spec = Arch.Repository.tpu_like () in
  let op = Ir.Kernels.conv2d ~nk:16 ~nc:16 ~nox:20 ~noy:12 ~nrx:3 ~nry:3 in
  let df = Df.Zoo.conv_nvdla () in
  let exact = M.Concrete.analyze spec op df in
  let scaled = M.Scaled.analyze spec op df ~scale_dims:[ "c"; "ox"; "oy" ] in
  Alcotest.(check bool) "summaries equal" true (summary exact = summary scaled)

let test_mttkrp_exactness () =
  let spec = Arch.Repository.tpu_like () in
  let op = Ir.Kernels.mttkrp ~ni:24 ~nj:16 ~nk:16 ~nl:16 in
  let df = Df.Zoo.mttkrp_ij_p_ijl_t () in
  let exact = M.Concrete.analyze spec op df in
  let scaled = M.Scaled.analyze spec op df ~scale_dims:[ "k"; "l" ] in
  Alcotest.(check bool) "summaries equal" true (summary exact = summary scaled)

let test_degenerate_dims_fall_back () =
  (* a dim already at its sample size: scaled must equal exact *)
  let spec = Arch.Repository.tpu_like () in
  let op = Ir.Kernels.gemm ~ni:16 ~nj:16 ~nk:8 in
  let df = Df.Zoo.gemm_ij_p_ijk_t () in
  let exact = M.Concrete.analyze spec op df in
  let scaled = M.Scaled.analyze spec op df ~scale_dims:[ "k" ] in
  Alcotest.(check bool) "summaries equal" true (summary exact = summary scaled)

let test_huge_runs_fast () =
  let spec = Arch.Repository.tpu_like () in
  let op = Ir.Kernels.mttkrp ~ni:48_000 ~nj:32 ~nk:1_800 ~nl:200 in
  let df = Df.Zoo.mttkrp_ij_p_ijl_t () in
  let m = M.Scaled.analyze spec op df ~scale_dims:[ "i"; "k"; "l" ] in
  check_int "instances" (48_000 * 32 * 1_800 * 200) m.M.Metrics.n_instances;
  check_bool "positive latency" true (m.M.Metrics.latency > 0.);
  check_bool "utilization sane" true
    (m.M.Metrics.avg_utilization > 0. && m.M.Metrics.avg_utilization <= 1.0)

let prop_scaled_matches_exact_gemm =
  QCheck.Test.make ~name:"scaled = exact across gemm sizes" ~count:8
    QCheck.(triple (int_range 3 6) (int_range 3 6) (int_range 3 6))
    (fun (ti, tj, tk) ->
      let spec = Arch.Repository.tpu_like () in
      let op = Ir.Kernels.gemm ~ni:(8 * ti) ~nj:(8 * tj) ~nk:(8 * tk) in
      let df = Df.Zoo.gemm_ij_p_ijk_t () in
      let exact = M.Concrete.analyze spec op df in
      let scaled = M.Scaled.analyze spec op df ~scale_dims:[ "i"; "j"; "k" ] in
      summary exact = summary scaled)

let () =
  Alcotest.run "scaled"
    [
      ( "exactness",
        [
          Alcotest.test_case "gemm" `Quick test_gemm_exactness;
          Alcotest.test_case "conv" `Quick test_conv_exactness;
          Alcotest.test_case "mttkrp" `Quick test_mttkrp_exactness;
          Alcotest.test_case "degenerate" `Quick test_degenerate_dims_fall_back;
          Alcotest.test_case "huge layer" `Quick test_huge_runs_fast;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_scaled_matches_exact_gemm ]
      );
    ]
