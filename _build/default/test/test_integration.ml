(* End-to-end integration tests: C source -> parse -> dataflow -> metrics,
   the umbrella API, workload tables, and the Section VI-E reuse-factor
   analysis of AlexNet CONV3. *)

module T = Tenet
module Ir = Tenet.Ir
module Arch = Tenet.Arch
module Df = Tenet.Dataflow
module M = Tenet.Model

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_c_to_metrics () =
  let source =
    "for (i = 0; i < 16; i++)\n\
     for (j = 0; j < 16; j++)\n\
     for (k = 0; k < 16; k++)\n\
     Y[i][j] += A[i][k] * B[k][j];"
  in
  let arch = Arch.Repository.tpu_like () in
  let m =
    T.analyze_c_source ~arch ~source ~dataflow:(Df.Zoo.gemm_ij_p_ijk_t ()) ()
  in
  check_int "instances" 4096 m.M.Metrics.n_instances;
  (* 4 tiles x (8+8+16-2) stamps *)
  check_int "stamps" (4 * 30) m.M.Metrics.n_timestamps;
  let y = (M.Metrics.find_tensor m "Y").M.Metrics.volumes in
  check_int "Y unique" 256 y.M.Metrics.unique

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_umbrella_report () =
  let arch = Arch.Repository.tpu_like () in
  let op = Ir.Kernels.gemm ~ni:16 ~nj:16 ~nk:16 in
  let m = T.analyze ~arch ~op ~dataflow:(Df.Zoo.gemm_ij_p_ijk_t ()) () in
  let r = T.report m in
  check_bool "mentions dataflow" true
    (String.length r > 0 && contains r "(IJ-P | J,IJK-T)")

let test_workload_tables () =
  check_int "alexnet layers" 5 (List.length T.Workloads.Layers.alexnet);
  check_int "vgg layers" 5 (List.length T.Workloads.Layers.vgg16);
  check_bool "googlenet nonempty" true (T.Workloads.Layers.googlenet <> []);
  check_bool "mobilenet nonempty" true (T.Workloads.Layers.mobilenet <> []);
  (* AlexNet CONV3: 384 x 256 x 13 x 13 x 3 x 3 MACs *)
  let c3 = List.nth T.Workloads.Layers.alexnet 2 in
  check_int "conv3 macs"
    (384 * 256 * 13 * 13 * 3 * 3)
    (T.Workloads.Layers.macs c3);
  (* transformer: three model sizes *)
  check_int "transformer" 3 (List.length (T.Workloads.Layers.transformer ()));
  (* ALS dims *)
  let als = T.Workloads.Layers.als () in
  check_bool "als huge" true (T.Workloads.Layers.macs als > 1_000_000_000)

(* --- Section VI-E: AlexNet CONV3 row-stationary reuse factors ---

   The paper: filter reuse factor 169 = 13 (spatial, OY) x 13 (temporal,
   OX); output reuse factor 144 = 12 x 12.  We reproduce the analysis on
   a channel-reduced CONV3 (full K = 384, C = 256 is exact under scaled
   analysis; the reuse *factors* are invariant to the channel counts, so
   a 16-channel slice shows the same factors). *)
let test_alexnet_conv3_reuse_factors () =
  let op = Ir.Kernels.conv2d ~nk:16 ~nc:16 ~nox:13 ~noy:13 ~nrx:3 ~nry:3 in
  let spec =
    Arch.Spec.make
      ~pe:(Arch.Pe_array.d2 12 14)
      ~topology:Arch.Interconnect.Row_col_broadcast ~bandwidth:64 ()
  in
  let df = Df.Zoo.conv_eyeriss_rs () in
  (* window = 13: each PE buffers one 13-wide output row, as in Eyeriss *)
  let m = M.Concrete.analyze ~adjacency:`Lex_step ~window:13 spec op df in
  let b = (M.Metrics.find_tensor m "B").M.Metrics.volumes in
  Alcotest.(check (float 1e-6))
    "filter reuse factor 169 = 13 x 13 (paper)" 169. (M.Metrics.reuse_factor b);
  let y = (M.Metrics.find_tensor m "Y").M.Metrics.volumes in
  Alcotest.(check (float 1e-6))
    "output reuse factor 144 = 12 x 12 (paper)" 144. (M.Metrics.reuse_factor y)

let test_analyze_scaled_umbrella () =
  let arch = Arch.Repository.tpu_like () in
  let op = Ir.Kernels.gemm ~ni:128 ~nj:128 ~nk:128 in
  let m =
    T.analyze_scaled ~arch ~op ~dataflow:(Df.Zoo.gemm_ij_p_ijk_t ())
      ~scale_dims:[ "i"; "j"; "k" ] ()
  in
  check_int "instances" (128 * 128 * 128) m.M.Metrics.n_instances

let () =
  Alcotest.run "integration"
    [
      ( "end to end",
        [
          Alcotest.test_case "C source to metrics" `Quick test_c_to_metrics;
          Alcotest.test_case "umbrella report" `Quick test_umbrella_report;
          Alcotest.test_case "scaled umbrella" `Quick
            test_analyze_scaled_umbrella;
        ] );
      ( "workloads",
        [ Alcotest.test_case "layer tables" `Quick test_workload_tables ] );
      ( "section VI-E",
        [
          Alcotest.test_case "AlexNet CONV3 reuse factors" `Quick
            test_alexnet_conv3_reuse_factors;
        ] );
    ]
