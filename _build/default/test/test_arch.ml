(* Tests for tenet.arch: PE arrays, interconnect relations, repository. *)

module Arch = Tenet.Arch
module Isl = Tenet.Isl

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_pe_array () =
  let pe = Arch.Pe_array.d2 8 8 in
  check_int "size" 64 (Arch.Pe_array.size pe);
  check_int "rank" 2 (Arch.Pe_array.rank pe);
  check_int "domain card" 64 (Isl.Set.card (Arch.Pe_array.domain pe));
  check_bool "in bounds" true (Arch.Pe_array.in_bounds pe [| 7; 7 |]);
  check_bool "out of bounds" false (Arch.Pe_array.in_bounds pe [| 8; 0 |]);
  check_bool "negative" false (Arch.Pe_array.in_bounds pe [| -1; 0 |]);
  check_bool "bad rank" false (Arch.Pe_array.in_bounds pe [| 1 |]);
  check_bool "invalid dims" true
    (match Arch.Pe_array.make [| 0 |] with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* Edge counts for an n x n array:
   2D-systolic: right edges n*(n-1) + down edges n*(n-1)
   mesh: 8-neighborhood: 4 corners*3 + 4(n-2) edges*5 + (n-2)^2 interior*8 *)
let test_systolic_2d_edges () =
  let pe = Arch.Pe_array.d2 4 4 in
  let rel = Arch.Interconnect.relation Arch.Interconnect.Systolic_2d pe in
  check_int "edges" (2 * 4 * 3) (Isl.Map.card rel);
  check_int "interval" 1 (Arch.Interconnect.interval Arch.Interconnect.Systolic_2d)

let test_mesh_edges () =
  let pe = Arch.Pe_array.d2 4 4 in
  let rel = Arch.Interconnect.relation Arch.Interconnect.Mesh pe in
  check_int "edges" ((4 * 3) + (8 * 5) + (4 * 8)) (Isl.Map.card rel)

let test_systolic_1d_edges () =
  let pe = Arch.Pe_array.d1 8 in
  let rel = Arch.Interconnect.relation Arch.Interconnect.Systolic_1d pe in
  check_int "edges" 7 (Isl.Map.card rel);
  (* no self loops *)
  check_bool "no self" false (Isl.Map.mem rel ~src:[| 3 |] ~dst:[| 3 |]);
  check_bool "forward only" true (Isl.Map.mem rel ~src:[| 3 |] ~dst:[| 4 |]);
  check_bool "no backward" false (Isl.Map.mem rel ~src:[| 4 |] ~dst:[| 3 |])

let test_multicast_edges () =
  let pe = Arch.Pe_array.d1 8 in
  (* abs distance in [1,3]: per paper, 4 PEs share a wire *)
  let rel = Arch.Interconnect.relation (Arch.Interconnect.Multicast 3) pe in
  (* sum over i of #{j : |i-j| <= 3, j != i, 0 <= j < 8} *)
  let expect = 3 + 4 + 5 + 6 + 6 + 5 + 4 + 3 in
  check_int "edges" expect (Isl.Map.card rel);
  check_int "interval" 0
    (Arch.Interconnect.interval (Arch.Interconnect.Multicast 3))

let test_broadcast_row_col () =
  let pe = Arch.Pe_array.d2 3 4 in
  let row = Arch.Interconnect.relation Arch.Interconnect.Broadcast_row pe in
  check_int "row edges" (3 * 4 * 3) (Isl.Map.card row);
  check_bool "same row" true (Isl.Map.mem row ~src:[| 1; 0 |] ~dst:[| 1; 3 |]);
  check_bool "cross row" false
    (Isl.Map.mem row ~src:[| 1; 0 |] ~dst:[| 2; 0 |]);
  let col = Arch.Interconnect.relation Arch.Interconnect.Broadcast_col pe in
  check_int "col edges" (4 * 3 * 2) (Isl.Map.card col)

let test_reduction_tree () =
  let pe = Arch.Pe_array.d1 4 in
  let rel = Arch.Interconnect.relation Arch.Interconnect.Reduction_tree pe in
  (* full multicast minus self *)
  check_int "edges" (4 * 3) (Isl.Map.card rel);
  check_int "interval" 0
    (Arch.Interconnect.interval Arch.Interconnect.Reduction_tree)

let test_identity_relation () =
  let pe = Arch.Pe_array.d2 3 3 in
  let id = Arch.Interconnect.identity pe in
  check_int "pairs" 9 (Isl.Map.card id);
  check_bool "self" true (Isl.Map.mem id ~src:[| 1; 2 |] ~dst:[| 1; 2 |]);
  check_bool "not other" false (Isl.Map.mem id ~src:[| 1; 2 |] ~dst:[| 2; 2 |])

let test_rank_mismatch () =
  check_bool "1D topology on 2D array" true
    (match
       Arch.Interconnect.relation Arch.Interconnect.Systolic_1d
         (Arch.Pe_array.d2 2 2)
     with
    | _ -> false
    | exception Invalid_argument _ -> true);
  check_bool "2D topology on 1D array" true
    (match
       Arch.Interconnect.relation Arch.Interconnect.Mesh (Arch.Pe_array.d1 4)
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_spec () =
  let s = Arch.Spec.make ~pe:(Arch.Pe_array.d2 8 8)
      ~topology:Arch.Interconnect.Systolic_2d () in
  check_int "default bandwidth" 64 s.Arch.Spec.bandwidth;
  let s2 = Arch.Spec.with_bandwidth 16 s in
  check_int "override" 16 s2.Arch.Spec.bandwidth;
  check_bool "bad bandwidth" true
    (match
       Arch.Spec.make ~bandwidth:0 ~pe:(Arch.Pe_array.d1 4)
         ~topology:Arch.Interconnect.Systolic_1d ()
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_repository () =
  check_int "entries" 7 (List.length Arch.Repository.all);
  List.iter
    (fun (name, spec) ->
      check_bool (name ^ " nonempty PE array") true
        (Arch.Pe_array.size spec.Arch.Spec.pe > 0))
    Arch.Repository.all;
  let e = Arch.Repository.find "eyeriss-12x14" in
  check_int "eyeriss size" (12 * 14) (Arch.Pe_array.size e.Arch.Spec.pe);
  check_bool "unknown" true
    (match Arch.Repository.find "nope" with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_energy () =
  let e = Arch.Energy.default in
  check_bool "hierarchy" true
    (e.Arch.Energy.reg <= e.Arch.Energy.link
    && e.Arch.Energy.link <= e.Arch.Energy.spm
    && e.Arch.Energy.spm <= e.Arch.Energy.dram);
  let s = Arch.Energy.scale 2.0 e in
  Alcotest.(check (float 1e-9)) "scaled" (2.0 *. e.Arch.Energy.spm)
    s.Arch.Energy.spm

(* property: every topology's relation stays inside the array and never
   contains self loops *)
let prop_relation_wellformed =
  QCheck.Test.make ~name:"interconnect relations well-formed" ~count:30
    QCheck.(pair (int_range 2 5) (int_range 0 4))
    (fun (n, which) ->
      let pe, topo =
        match which with
        | 0 -> (Arch.Pe_array.d1 n, Arch.Interconnect.Systolic_1d)
        | 1 -> (Arch.Pe_array.d2 n n, Arch.Interconnect.Systolic_2d)
        | 2 -> (Arch.Pe_array.d2 n n, Arch.Interconnect.Mesh)
        | 3 -> (Arch.Pe_array.d1 n, Arch.Interconnect.Multicast 2)
        | _ -> (Arch.Pe_array.d1 n, Arch.Interconnect.Reduction_tree)
      in
      let rel = Arch.Interconnect.relation topo pe in
      let ok = ref true in
      Isl.Map.iter_pairs
        (fun src dst ->
          if not (Arch.Pe_array.in_bounds pe src) then ok := false;
          if not (Arch.Pe_array.in_bounds pe dst) then ok := false;
          if Tenet_util.Ivec.equal src dst then ok := false)
        rel;
      !ok)

let () =
  Alcotest.run "arch"
    [
      ( "pe_array",
        [ Alcotest.test_case "basics" `Quick test_pe_array ] );
      ( "interconnect",
        [
          Alcotest.test_case "2D systolic" `Quick test_systolic_2d_edges;
          Alcotest.test_case "mesh" `Quick test_mesh_edges;
          Alcotest.test_case "1D systolic" `Quick test_systolic_1d_edges;
          Alcotest.test_case "multicast" `Quick test_multicast_edges;
          Alcotest.test_case "broadcast row/col" `Quick test_broadcast_row_col;
          Alcotest.test_case "reduction tree" `Quick test_reduction_tree;
          Alcotest.test_case "identity" `Quick test_identity_relation;
          Alcotest.test_case "rank mismatch" `Quick test_rank_mismatch;
        ] );
      ( "spec",
        [
          Alcotest.test_case "spec" `Quick test_spec;
          Alcotest.test_case "repository" `Quick test_repository;
          Alcotest.test_case "energy" `Quick test_energy;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_relation_wellformed ] );
    ]
