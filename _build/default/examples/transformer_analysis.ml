(* Analyze the Transformer's matrix-multiplication chain (Table IV) -
   an operator MAESTRO cannot model - at full scale using multilinear
   scaled analysis, plus the ALS MTTKRP bottleneck.

     dune exec examples/transformer_analysis.exe *)

module Ir = Tenet.Ir
module Arch = Tenet.Arch
module Df = Tenet.Dataflow
module M = Tenet.Model
module W = Tenet.Workloads.Layers

let show name (layer : W.layer) df =
  let arch = Arch.Repository.tpu_like () in
  let m =
    Tenet.analyze_scaled ~arch ~op:layer.W.op ~dataflow:df
      ~scale_dims:layer.W.scale_dims ()
  in
  let ideal =
    float_of_int m.M.Metrics.n_instances /. float_of_int m.M.Metrics.pe_size
  in
  Printf.printf
    "%-14s %12d MACs | norm-lat %5.2f | sbw %6.2f w/cyc | avg util %4.2f\n"
    name (W.macs layer)
    (m.M.Metrics.latency /. ideal)
    m.M.Metrics.sbw m.M.Metrics.avg_utilization

let () =
  Printf.printf "Transformer MMc layers (seq 512) on an 8x8 systolic array:\n";
  List.iter
    (fun layer -> show layer.W.lname layer (Df.Zoo.mmc_ij_p_ijl_t ()))
    (W.transformer ());
  Printf.printf "\nALS MTTKRP (480K x 32 x 18K x 2K):\n";
  show "ALS-MTTKRP" (W.als ()) (Df.Zoo.mttkrp_ij_p_ijl_t ());
  print_endline
    "\nAll four analyses extrapolate exactly from small corner problems\n\
     (multilinear scaled analysis); the full ALS op has 5.5e14 MACs and\n\
     would be unenumerable directly."
