(* Compare the five Table III GEMM dataflows on one architecture budget
   (64 PEs), reproducing the Figure 9 observation that 2D space-stamps
   expose more reuse than 1D ones.

     dune exec examples/gemm_systolic.exe *)

module Ir = Tenet.Ir
module Arch = Tenet.Arch
module Df = Tenet.Dataflow
module M = Tenet.Model

let () =
  let op = Ir.Kernels.gemm ~ni:64 ~nj:64 ~nk:64 in
  let configs =
    [
      (Df.Zoo.gemm_ij_p_ijk_t (), Arch.Repository.tpu_like ());
      (Df.Zoo.gemm_kj_p_ijk_t (), Arch.Repository.tpu_like ());
      (Df.Zoo.gemm_ik_p_ijk_t (), Arch.Repository.tpu_like ());
      (Df.Zoo.gemm_k_p_ij_t (), Arch.Repository.systolic_1d ());
      (Df.Zoo.gemm_j_p_ik_t (), Arch.Repository.systolic_1d ());
    ]
  in
  Printf.printf "GEMM 64^3 on 64 PEs, 64 words/cycle:\n\n";
  List.iter
    (fun (df, arch) ->
      let m = Tenet.analyze ~arch ~op ~dataflow:df () in
      Printf.printf "%s\n" (Tenet.report m))
    configs;
  print_endline
    "Note how the skewed 2D dataflows trade a longer pipeline (more\n\
     time-stamps) for drastically lower scratchpad bandwidth - the\n\
     Figure 6 crossover when bandwidth becomes scarce."
