(* Design-space exploration for a convolution layer: generate candidates,
   evaluate them once (volume metrics are bandwidth-independent), and
   show how the skewed (TENET-only) dataflows take over as scratchpad
   bandwidth shrinks.

     dune exec examples/conv_explorer.exe *)

module Ir = Tenet.Ir
module Arch = Tenet.Arch
module Df = Tenet.Dataflow
module M = Tenet.Model
module Dse = Tenet.Dse.Dse

let latency_at (m : M.Metrics.t) bw =
  let read = float_of_int (M.Metrics.unique_inputs m) /. float_of_int bw in
  let write = float_of_int (M.Metrics.unique_outputs m) /. float_of_int bw in
  Float.max (float_of_int m.M.Metrics.delay_compute) (read +. write)

let () =
  let op = Ir.Kernels.conv2d ~nk:16 ~nc:16 ~nox:8 ~noy:8 ~nrx:3 ~nry:3 in
  Printf.printf "layer: %s\n" (Ir.Tensor_op.to_string op);
  let spec = Arch.Repository.tpu_like () in
  let cands = Dse.candidates_2d op ~p:8 in
  Printf.printf "generated %d candidate dataflows\n" (List.length cands);
  let analyzed =
    List.filter_map
      (fun df ->
        match M.Concrete.analyze spec op df with
        | m -> Some (df, m, Dse.data_centric_expressible df)
        | exception M.Concrete.Invalid_dataflow _ -> None)
      cands
  in
  Printf.printf "%d valid; top 3 per bandwidth:\n\n" (List.length analyzed);
  List.iter
    (fun bw ->
      let ranked =
        List.sort
          (fun (_, a, _) (_, b, _) -> compare (latency_at a bw) (latency_at b bw))
          analyzed
      in
      Printf.printf "bandwidth %3d words/cycle:\n" bw;
      List.iteri
        (fun i (df, m, expressible) ->
          if i < 3 then
            Printf.printf "  %d. %-30s lat=%8.0f util=%4.2f [%s]\n" (i + 1)
              df.Df.Dataflow.name (latency_at m bw)
              m.M.Metrics.avg_utilization
              (if expressible then "data-centric" else "TENET-only"))
        ranked;
      print_newline ())
    [ 128; 32; 8 ];
  print_endline
    "The best dataflow at high bandwidth is usually expressible in the\n\
     data-centric notation; at low bandwidth only the affine-transformed\n\
     (skewed) dataflows keep the array busy - the Figure 6 story."
