(* Quickstart: model a GEMM on a TPU-like systolic array in ~20 lines.

     dune exec examples/quickstart.exe

   The flow is the paper's Figure 2: a tensor operation (here parsed from
   C), an architecture from the repository, and a relation-centric
   dataflow; TENET reports reuse, utilization, bandwidth and latency. *)

let () =
  (* 1. the tensor operation, straight from C *)
  let op =
    Tenet.Ir.Cfront.parse
      "for (i = 0; i < 64; i++)\n\
       for (j = 0; j < 64; j++)\n\
       for (k = 0; k < 64; k++)\n\
       Y[i][j] += A[i][k] * B[k][j];"
  in
  (* 2. the architecture: 8x8 systolic array, 64 words/cycle scratchpad *)
  let arch = Tenet.Arch.Repository.tpu_like () in
  (* 3. the dataflow: output-stationary with skewed feeding, written as
     quasi-affine space/time stamps (the TPU mapping of Table III) *)
  let dataflow =
    let dims = Tenet.Ir.Tensor_op.iter_names op in
    Tenet.Dataflow.Dataflow.make ~name:"(IJ-P | J,IJK-T)"
      ~space:(Tenet.Isl.Parser.exprs ~dims "i%8, j%8")
      ~time:(Tenet.Isl.Parser.exprs ~dims "i/8, j/8, i%8 + j%8 + k")
  in
  (* 4. analyze and report *)
  let metrics = Tenet.analyze ~arch ~op ~dataflow () in
  print_string (Tenet.report metrics);
  (* 5. cross-check against the cycle-level simulator *)
  let sim = Tenet.Sim.Simulator.run arch op dataflow in
  Printf.printf "simulator: %s\n" (Tenet.Sim.Simulator.to_string sim)
