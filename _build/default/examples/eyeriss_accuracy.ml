(* Model-accuracy study in the style of Figure 11: run the Eyeriss
   row-stationary dataflow on an AlexNet-like layer three ways -
   cycle-level simulation (ground truth), TENET's relation-based model,
   and a MAESTRO-style polynomial model - and compare latency,
   utilization, and the CONV3 reuse factors of Section VI-E.

     dune exec examples/eyeriss_accuracy.exe *)

module Ir = Tenet.Ir
module Arch = Tenet.Arch
module Df = Tenet.Dataflow
module M = Tenet.Model
module Ma = Tenet.Maestro
module Sim = Tenet.Sim

let () =
  (* AlexNet CONV3 geometry with channels sliced to 16 for a fast sim *)
  let op = Ir.Kernels.conv2d ~nk:16 ~nc:16 ~nox:13 ~noy:13 ~nrx:3 ~nry:3 in
  let spec =
    Arch.Spec.make
      ~pe:(Arch.Pe_array.d2 12 14)
      ~topology:Arch.Interconnect.Row_col_broadcast ~bandwidth:32 ()
  in
  let df = Df.Zoo.conv_eyeriss_rs () in
  Printf.printf "layer: %s\narch : %s\ndf   : %s\n\n"
    (Ir.Tensor_op.to_string op)
    (Arch.Spec.to_string spec)
    (Df.Dataflow.to_string df);
  (* window = 13: the Eyeriss PE register file holds one output row *)
  let golden = Sim.Simulator.run ~window:13 spec op df in
  Printf.printf "simulator (golden): %s\n" (Sim.Simulator.to_string golden);
  (* window = 13: each PE buffers one 13-wide output row, as in Eyeriss *)
  let tenet = M.Concrete.analyze ~adjacency:`Lex_step ~window:13 spec op df in
  Printf.printf "TENET model       : lat=%.0f util=%.3f\n"
    tenet.M.Metrics.latency tenet.M.Metrics.avg_utilization;
  let maestro = Ma.Analytical.analyze spec op (Ma.Maestro_zoo.conv_eyeriss_rs op) in
  Printf.printf "MAESTRO model     : lat=%.0f util=%.3f\n\n"
    maestro.Ma.Analytical.latency maestro.Ma.Analytical.utilization;
  (* the Section VI-E reuse factors *)
  let b = (M.Metrics.find_tensor tenet "B").M.Metrics.volumes in
  let y = (M.Metrics.find_tensor tenet "Y").M.Metrics.volumes in
  Printf.printf "filter reuse factor: TENET %.0f (paper: 169 = 13 x 13)\n"
    (M.Metrics.reuse_factor b);
  Printf.printf "output reuse factor: TENET %.0f (paper: 144 = 12 x 12)\n"
    (M.Metrics.reuse_factor y);
  let mb = (Ma.Analytical.find_tensor maestro "B").Ma.Analytical.reuse_factor in
  let my = (Ma.Analytical.find_tensor maestro "Y").Ma.Analytical.reuse_factor in
  Printf.printf "MAESTRO           : filter %.0f, output %.0f (no output \
                 reuse ever reported)\n" mb my
