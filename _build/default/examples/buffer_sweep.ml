(* Scratchpad sizing study: DRAM traffic versus on-chip buffer capacity
   for two GEMM dataflows, using the simulator's scratchpad access trace
   and LRU reuse-distance analysis.

     dune exec examples/buffer_sweep.exe *)

module Ir = Tenet.Ir
module Arch = Tenet.Arch
module Df = Tenet.Dataflow
module Sim = Tenet.Sim

let () =
  let op = Ir.Kernels.gemm ~ni:32 ~nj:32 ~nk:32 in
  let capacities = [ 64; 128; 256; 512; 1024; 2048; 4096 ] in
  Printf.printf "GEMM 32^3, DRAM accesses vs scratchpad capacity (words):\n\n";
  Printf.printf "%-26s" "dataflow \\ capacity";
  List.iter (fun c -> Printf.printf "%8d" c) capacities;
  print_newline ();
  List.iter
    (fun (df, arch) ->
      let rows = Sim.Offchip.sweep arch op df ~capacities in
      Printf.printf "%-26s" df.Df.Dataflow.name;
      List.iter (fun (_, m) -> Printf.printf "%8d" m) rows;
      print_newline ())
    [
      (Df.Zoo.gemm_ij_p_ijk_t (), Arch.Repository.tpu_like ());
      (Df.Zoo.gemm_k_p_ij_t (), Arch.Repository.systolic_1d ());
    ];
  print_newline ();
  let a =
    Sim.Offchip.analyze (Arch.Repository.tpu_like ()) op
      (Df.Zoo.gemm_ij_p_ijk_t ())
  in
  Printf.printf
    "output-stationary systolic: %d scratchpad accesses; a %d-word buffer \
     already captures all reuse (cold misses only: %d)\n"
    a.Sim.Offchip.scratchpad_accesses a.Sim.Offchip.min_full_reuse_capacity
    a.Sim.Offchip.histogram.Sim.Reuse_distance.cold
