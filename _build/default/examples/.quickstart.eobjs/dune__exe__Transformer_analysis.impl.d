examples/transformer_analysis.ml: List Printf Tenet
