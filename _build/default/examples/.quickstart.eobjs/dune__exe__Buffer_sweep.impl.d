examples/buffer_sweep.ml: List Printf Tenet
