examples/conv_explorer.mli:
