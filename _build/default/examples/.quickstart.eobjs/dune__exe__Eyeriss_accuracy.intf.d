examples/eyeriss_accuracy.mli:
