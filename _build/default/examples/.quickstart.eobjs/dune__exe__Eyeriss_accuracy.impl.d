examples/eyeriss_accuracy.ml: Printf Tenet
