examples/transformer_analysis.mli:
