examples/conv_explorer.ml: Float List Printf Tenet
