examples/gemm_systolic.ml: List Printf Tenet
