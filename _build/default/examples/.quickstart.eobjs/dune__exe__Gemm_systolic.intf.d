examples/gemm_systolic.mli:
