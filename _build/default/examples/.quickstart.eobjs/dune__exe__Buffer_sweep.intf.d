examples/buffer_sweep.mli:
