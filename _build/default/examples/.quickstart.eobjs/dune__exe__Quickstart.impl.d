examples/quickstart.ml: Printf Tenet
