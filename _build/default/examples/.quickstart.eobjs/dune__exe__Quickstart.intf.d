examples/quickstart.mli:
