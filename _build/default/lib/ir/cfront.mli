(** C frontend: parse the perfectly-nested loop form TENET takes as input
    (Figure 2 of the paper).

    {v
    for (i = 0; i < 64; i++)
      for (j = 0; j < 64; j++)
        for (k = 0; k < 64; k++)
          Y[i][j] += A[i][k] * B[k][j];
    v}

    Supported: literal bounds, [<]/[<=] tests, unit-stride increments
    ([i++], [i += 1], [i = i + 1]), one statement with [=] or [+=], affine
    subscripts.  Comments ([// ...]) are skipped. *)

exception Syntax_error of string

val parse : string -> Tensor_op.t
