lib/ir/cfront.mli: Tensor_op
