lib/ir/kernels.mli: Tensor_op
