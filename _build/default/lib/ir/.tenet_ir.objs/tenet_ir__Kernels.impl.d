lib/ir/kernels.ml: Tenet_isl Tensor_op
