lib/ir/cfront.ml: List Printf String Tenet_isl Tensor_op
