lib/ir/tensor_op.mli: Tenet_isl
