lib/ir/tensor_op.ml: List Printf String Tenet_isl
