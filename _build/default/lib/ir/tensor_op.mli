(** Tensor-operation IR: a perfectly-nested loop over a box iteration
    domain with one unconditional statement — the class of programs TENET
    models (Section II-B of the paper).

    Each access is an affine map from loop iterators to tensor subscripts
    (the access function [A_{S,F}] of Eq. 1). *)

module Isl = Tenet_isl

type direction = Read | Write

type access = {
  tensor : string;
  subscripts : Isl.Aff.t list;
  direction : direction;
}

type iter = { iname : string; lo : int; hi : int }
(** One loop level with inclusive bounds. *)

type t = { name : string; iters : iter list; accesses : access list }

val make :
  ?name:string ->
  iters:(string * int * int) list ->
  accesses:access list ->
  unit ->
  t
(** [make ~iters ~accesses ()] with [(name, lo, hi)] inclusive loop bounds.
    Raises [Invalid_argument] if a subscript references an unknown
    iterator. *)

val iter_names : t -> string list
val n_iters : t -> int
val extent : iter -> int

val n_instances : t -> int
(** Product of loop extents, i.e. [card D_S]; one MAC per instance. *)

val iter_bounds : t -> string -> int * int
(** Inclusive bounds of a named iterator; raises [Not_found]. *)

val space : t -> Isl.Space.t
(** The statement space [S[iters]]. *)

val domain : t -> Isl.Set.t
(** The iteration domain [D_S] as an integer set. *)

val tensors : t -> string list
val inputs : t -> string list
val outputs : t -> string list
val accesses_of : t -> string -> access list
val tensor_arity : t -> string -> int

val access_map : t -> string -> Isl.Map.t
(** The access function [{ S[n] -> F[f] }] of one tensor, as a union over
    all its syntactic accesses, restricted to the iteration domain. *)

val footprint : t -> string -> int
(** Number of distinct elements of the tensor touched by the operation. *)

val to_string : t -> string
