(* The five tensor kernels evaluated in the paper (Section VI-A):

     GEMM       Y(i,j)    = A(i,k) B(k,j)
     2D-CONV    Y(k,ox,oy)= A(c, ox+rx, oy+ry) B(k,c,rx,ry)
     MTTKRP     Y(i,j)    = A(i,k,l) B(k,j) C(l,j)
     MMc        Y(i,j)    = A(i,k) B(k,l) C(l,j)
     Jacobi-2D  Y(i,j)    = (A(i,j)+A(i-1,j)+A(i,j-1)+A(i+1,j)+A(i,j+1))/5

   plus the 1D-CONV of Figure 1 used to motivate the notation. *)

module Aff = Tenet_isl.Aff

let read tensor subscripts =
  { Tensor_op.tensor; subscripts; direction = Tensor_op.Read }

let write tensor subscripts =
  { Tensor_op.tensor; subscripts; direction = Tensor_op.Write }

let i = Aff.var "i"
and j = Aff.var "j"
and k = Aff.var "k"
and l = Aff.var "l"

let gemm ~ni ~nj ~nk =
  Tensor_op.make
    ~iters:[ ("i", 0, ni - 1); ("j", 0, nj - 1); ("k", 0, nk - 1) ]
    ~accesses:
      [ write "Y" [ i; j ]; read "A" [ i; k ]; read "B" [ k; j ] ]
    ()

let conv1d ~no ~nr =
  Tensor_op.make
    ~iters:[ ("i", 0, no - 1); ("j", 0, nr - 1) ]
    ~accesses:[ write "Y" [ i ]; read "A" [ Aff.Add (i, j) ]; read "B" [ j ] ]
    ()

(* Six-deep conv loop nest in the paper's iteration order
   [k, c, ox, oy, rx, ry]: K output channels, C input channels, OX x OY
   output pixels, RX x RY filter taps. *)
let conv2d ~nk ~nc ~nox ~noy ~nrx ~nry =
  let kk = Aff.var "k"
  and c = Aff.var "c"
  and ox = Aff.var "ox"
  and oy = Aff.var "oy"
  and rx = Aff.var "rx"
  and ry = Aff.var "ry" in
  Tensor_op.make
    ~iters:
      [
        ("k", 0, nk - 1);
        ("c", 0, nc - 1);
        ("ox", 0, nox - 1);
        ("oy", 0, noy - 1);
        ("rx", 0, nrx - 1);
        ("ry", 0, nry - 1);
      ]
    ~accesses:
      [
        write "Y" [ kk; ox; oy ];
        read "A" [ c; Aff.Add (ox, rx); Aff.Add (oy, ry) ];
        read "B" [ kk; c; rx; ry ];
      ]
    ()

(* Depthwise convolution (MobileNet): one filter per channel, no
   accumulation over input channels. *)
let dw_conv2d ~nc ~nox ~noy ~nrx ~nry =
  let c = Aff.var "c"
  and ox = Aff.var "ox"
  and oy = Aff.var "oy"
  and rx = Aff.var "rx"
  and ry = Aff.var "ry" in
  Tensor_op.make
    ~iters:
      [
        ("c", 0, nc - 1);
        ("ox", 0, nox - 1);
        ("oy", 0, noy - 1);
        ("rx", 0, nrx - 1);
        ("ry", 0, nry - 1);
      ]
    ~accesses:
      [
        write "Y" [ c; ox; oy ];
        read "A" [ c; Aff.Add (ox, rx); Aff.Add (oy, ry) ];
        read "B" [ c; rx; ry ];
      ]
    ()

(* Pointwise (1x1) convolution. *)
let pw_conv2d ~nk ~nc ~nox ~noy = conv2d ~nk ~nc ~nox ~noy ~nrx:1 ~nry:1

let mttkrp ~ni ~nj ~nk ~nl =
  Tensor_op.make
    ~iters:
      [ ("i", 0, ni - 1); ("j", 0, nj - 1); ("k", 0, nk - 1); ("l", 0, nl - 1) ]
    ~accesses:
      [
        write "Y" [ i; j ];
        read "A" [ i; k; l ];
        read "B" [ k; j ];
        read "C" [ l; j ];
      ]
    ()

let mmc ~ni ~nj ~nk ~nl =
  Tensor_op.make
    ~iters:
      [ ("i", 0, ni - 1); ("j", 0, nj - 1); ("k", 0, nk - 1); ("l", 0, nl - 1) ]
    ~accesses:
      [
        write "Y" [ i; j ];
        read "A" [ i; k ];
        read "B" [ k; l ];
        read "C" [ l; j ];
      ]
    ()

(* Jacobi-2D over an n x n grid; the iteration domain excludes the halo so
   every access stays in bounds. *)
let jacobi2d ~n =
  Tensor_op.make
    ~iters:[ ("i", 1, n - 2); ("j", 1, n - 2) ]
    ~accesses:
      [
        write "Y" [ i; j ];
        read "A" [ i; j ];
        read "A" [ Aff.Sub (i, Aff.Int 1); j ];
        read "A" [ i; Aff.Sub (j, Aff.Int 1) ];
        read "A" [ Aff.Add (i, Aff.Int 1); j ];
        read "A" [ i; Aff.Add (j, Aff.Int 1) ];
      ]
    ()
