(* Tensor-operation IR: a perfectly-nested loop over a box iteration domain
   with one unconditional statement, which is what TENET supports.  Each
   accessed tensor element is given by affine subscripts of the loop
   iterators (the access functions of the paper, Eq. 1). *)

module Isl = Tenet_isl

type direction = Read | Write

type access = {
  tensor : string;
  subscripts : Isl.Aff.t list;
  direction : direction;
}

type iter = { iname : string; lo : int; hi : int } (* inclusive bounds *)

type t = {
  name : string; (* statement name, e.g. "S" *)
  iters : iter list;
  accesses : access list;
}

let make ?(name = "S") ~iters ~accesses () =
  let iter_names = List.map (fun (n, _, _) -> n) iters in
  List.iter
    (fun a ->
      List.iter
        (fun sub ->
          List.iter
            (fun v ->
              if not (List.mem v iter_names) then
                invalid_arg
                  (Printf.sprintf "Tensor_op.make: unknown iterator %s in %s"
                     v a.tensor))
            (Isl.Aff.free_vars sub))
        a.subscripts)
    accesses;
  {
    name;
    iters = List.map (fun (iname, lo, hi) -> { iname; lo; hi }) iters;
    accesses;
  }

let iter_names t = List.map (fun i -> i.iname) t.iters
let n_iters t = List.length t.iters

let extent i = i.hi - i.lo + 1

let n_instances t =
  List.fold_left (fun acc i -> acc * extent i) 1 t.iters

let iter_bounds t name =
  let i = List.find (fun i -> String.equal i.iname name) t.iters in
  (i.lo, i.hi)

let space t : Isl.Space.t = Isl.Space.make t.name (iter_names t)

(* The iteration domain D_S as a box set. *)
let domain t : Isl.Set.t =
  Isl.Set.box (space t) (List.map (fun i -> (i.lo, i.hi)) t.iters)

let tensors t =
  List.sort_uniq String.compare (List.map (fun a -> a.tensor) t.accesses)

let accesses_of t tensor =
  List.filter (fun a -> String.equal a.tensor tensor) t.accesses

let inputs t =
  List.sort_uniq String.compare
    (List.filter_map
       (fun a -> if a.direction = Read then Some a.tensor else None)
       t.accesses)

let outputs t =
  List.sort_uniq String.compare
    (List.filter_map
       (fun a -> if a.direction = Write then Some a.tensor else None)
       t.accesses)

let tensor_arity t tensor =
  match accesses_of t tensor with
  | [] -> invalid_arg ("Tensor_op.tensor_arity: no access to " ^ tensor)
  | a :: _ -> List.length a.subscripts

(* The access function A_{S,F} = { S[n] -> F[f] } for one tensor, as the
   union over all syntactic accesses to it, restricted to the iteration
   domain. *)
let access_map t tensor : Isl.Map.t =
  let accs = accesses_of t tensor in
  if accs = [] then invalid_arg ("Tensor_op.access_map: no access to " ^ tensor);
  let arity = List.length (List.hd accs).subscripts in
  let ran =
    Isl.Space.make tensor (List.init arity (fun i -> Printf.sprintf "f%d" i))
  in
  let dom_set = domain t in
  let maps =
    List.map
      (fun a ->
        if List.length a.subscripts <> arity then
          invalid_arg ("Tensor_op.access_map: mixed arity for " ^ tensor);
        Isl.Map.intersect_domain
          (Isl.Map.of_exprs (space t) ran a.subscripts)
          dom_set)
      accs
  in
  Isl.Map.union_all maps

(* Number of distinct elements of [tensor] touched by the operation. *)
let footprint t tensor = Isl.Set.card (Isl.Map.range (access_map t tensor))

let to_string t =
  let iters =
    String.concat ", "
      (List.map (fun i -> Printf.sprintf "%d <= %s <= %d" i.lo i.iname i.hi) t.iters)
  in
  let acc a =
    Printf.sprintf "%s%s[%s]"
      (match a.direction with Write -> "write " | Read -> "read ")
      a.tensor
      (String.concat ", " (List.map Isl.Aff.to_string a.subscripts))
  in
  Printf.sprintf "%s: { %s } %s" t.name iters
    (String.concat "; " (List.map acc t.accesses))
