(** The tensor kernels evaluated in the paper (Section VI-A):

    {v
    GEMM       Y(i,j)     = A(i,k) B(k,j)
    2D-CONV    Y(k,ox,oy) = A(c, ox+rx, oy+ry) B(k,c,rx,ry)
    MTTKRP     Y(i,j)     = A(i,k,l) B(k,j) C(l,j)
    MMc        Y(i,j)     = A(i,k) B(k,l) C(l,j)
    Jacobi-2D  Y(i,j)     = (A(i,j)+A(i-1,j)+A(i,j-1)+A(i+1,j)+A(i,j+1))/5
    v}

    plus the Figure 1 1D-CONV and MobileNet's depthwise / pointwise
    convolution variants. *)

val gemm : ni:int -> nj:int -> nk:int -> Tensor_op.t
val conv1d : no:int -> nr:int -> Tensor_op.t

val conv2d :
  nk:int -> nc:int -> nox:int -> noy:int -> nrx:int -> nry:int -> Tensor_op.t
(** Loop order [k, c, ox, oy, rx, ry] as in the paper. *)

val dw_conv2d :
  nc:int -> nox:int -> noy:int -> nrx:int -> nry:int -> Tensor_op.t
(** Depthwise: one filter per channel, no cross-channel accumulation. *)

val pw_conv2d : nk:int -> nc:int -> nox:int -> noy:int -> Tensor_op.t
(** Pointwise (1x1 filter). *)

val mttkrp : ni:int -> nj:int -> nk:int -> nl:int -> Tensor_op.t
val mmc : ni:int -> nj:int -> nk:int -> nl:int -> Tensor_op.t

val jacobi2d : n:int -> Tensor_op.t
(** Interior of an [n x n] grid (the halo keeps accesses in bounds). *)
