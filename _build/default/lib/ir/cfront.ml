(* A small C frontend: parses the perfectly-nested loop form that TENET
   takes as input (Figure 2, "tensor operation in C"), e.g.

     for (i = 0; i < 64; i++)
       for (j = 0; j < 64; j++)
         for (k = 0; k < 64; k++)
           Y[i][j] += A[i][k] * B[k][j];

   Supported: literal loop bounds, [<] / [<=] tests, [i++] / [i += 1] /
   [i = i + 1] increments, a single unconditional statement whose
   left-hand side is the output tensor ([=] or [+=]), and affine
   subscripts over the iterators.  The right-hand side may be any
   arithmetic combination of tensor references and literals; only the
   references matter for dataflow modeling. *)

module Aff = Tenet_isl.Aff

exception Syntax_error of string

type token =
  | INT of int
  | IDENT of string
  | KFOR
  | LP
  | RP
  | LB
  | RB
  | SEMI
  | ASSIGN
  | PLUS_ASSIGN
  | PLUSPLUS
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | LT
  | LE
  | COMMA
  | EOF

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  let emit t = toks := t :: !toks in
  let is_id_start c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
  in
  let is_id c = is_id_start c || (c >= '0' && c <= '9') in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' || c = '{' || c = '}' then
      incr i
    else if c = '/' && !i + 1 < n && s.[!i + 1] = '/' then begin
      while !i < n && s.[!i] <> '\n' do
        incr i
      done
    end
    else if c >= '0' && c <= '9' then begin
      let j = ref !i in
      while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do
        incr j
      done;
      emit (INT (int_of_string (String.sub s !i (!j - !i))));
      i := !j
    end
    else if is_id_start c then begin
      let j = ref !i in
      while !j < n && is_id s.[!j] do
        incr j
      done;
      let w = String.sub s !i (!j - !i) in
      i := !j;
      emit (match w with "for" -> KFOR | "int" -> COMMA (* ignore decls *) | _ -> IDENT w)
    end
    else begin
      let two = if !i + 1 < n then String.sub s !i 2 else "" in
      match two with
      | "+=" ->
          emit PLUS_ASSIGN;
          i := !i + 2
      | "++" ->
          emit PLUSPLUS;
          i := !i + 2
      | "<=" ->
          emit LE;
          i := !i + 2
      | _ -> (
          incr i;
          match c with
          | '(' -> emit LP
          | ')' -> emit RP
          | '[' -> emit LB
          | ']' -> emit RB
          | ';' -> emit SEMI
          | '=' -> emit ASSIGN
          | '+' -> emit PLUS
          | '-' -> emit MINUS
          | '*' -> emit STAR
          | '/' -> emit SLASH
          | '<' -> emit LT
          | ',' -> emit COMMA
          | c -> raise (Syntax_error (Printf.sprintf "unexpected character %c" c)))
    end
  done;
  (* drop the COMMA placeholders standing for "int" *)
  List.rev (EOF :: List.filter (fun t -> t <> COMMA) !toks)

type state = { mutable toks : token list }

let peek st = match st.toks with [] -> EOF | t :: _ -> t

let next st =
  match st.toks with
  | [] -> EOF
  | t :: rest ->
      st.toks <- rest;
      t

let expect st t what =
  if next st <> t then raise (Syntax_error ("expected " ^ what))

let expect_ident st what =
  match next st with
  | IDENT v -> v
  | _ -> raise (Syntax_error ("expected identifier: " ^ what))

let expect_int st what =
  match next st with
  | INT v -> v
  | MINUS -> (
      match next st with
      | INT v -> -v
      | _ -> raise (Syntax_error ("expected integer: " ^ what)))
  | _ -> raise (Syntax_error ("expected integer: " ^ what))

(* --- affine subscript expressions --- *)

let rec parse_expr st : Aff.t =
  let lhs = parse_term st in
  parse_expr_rest st lhs

and parse_expr_rest st lhs =
  match peek st with
  | PLUS ->
      ignore (next st);
      parse_expr_rest st (Aff.Add (lhs, parse_term st))
  | MINUS ->
      ignore (next st);
      parse_expr_rest st (Aff.Sub (lhs, parse_term st))
  | _ -> lhs

and parse_term st =
  let lhs = parse_factor st in
  parse_term_rest st lhs

and parse_term_rest st lhs =
  match peek st with
  | STAR ->
      ignore (next st);
      parse_term_rest st (Aff.Mul (lhs, parse_factor st))
  | SLASH ->
      ignore (next st);
      let d = expect_int st "divisor" in
      parse_term_rest st (Aff.Fdiv (lhs, d))
  | _ -> lhs

and parse_factor st =
  match next st with
  | INT v -> Aff.Int v
  | IDENT v -> Aff.Var v
  | MINUS -> Aff.Neg (parse_factor st)
  | LP ->
      let e = parse_expr st in
      expect st RP ")";
      e
  | _ -> raise (Syntax_error "expected subscript expression")

(* --- tensor references --- *)

let parse_subscripts st =
  let subs = ref [] in
  let rec go () =
    match peek st with
    | LB ->
        ignore (next st);
        subs := parse_expr st :: !subs;
        expect st RB "]";
        go ()
    | _ -> ()
  in
  go ();
  List.rev !subs

(* Scan the right-hand side up to the terminating ';', collecting tensor
   references (IDENT immediately followed by '['). *)
let parse_rhs_refs st =
  let refs = ref [] in
  let rec go () =
    match next st with
    | SEMI -> ()
    | EOF -> raise (Syntax_error "missing ';'")
    | IDENT name when peek st = LB ->
        let subs = parse_subscripts st in
        refs := (name, subs) :: !refs;
        go ()
    | _ -> go ()
  in
  go ();
  List.rev !refs

(* --- loops --- *)

let parse_for_header st =
  expect st KFOR "for";
  expect st LP "(";
  let v = expect_ident st "loop variable" in
  expect st ASSIGN "=";
  let lo = expect_int st "lower bound" in
  expect st SEMI ";";
  let v2 = expect_ident st "loop variable in test" in
  if v2 <> v then raise (Syntax_error "loop test variable mismatch");
  let hi =
    match next st with
    | LT -> expect_int st "upper bound" - 1
    | LE -> expect_int st "upper bound"
    | _ -> raise (Syntax_error "expected < or <= in loop test")
  in
  expect st SEMI ";";
  let v3 = expect_ident st "loop variable in increment" in
  if v3 <> v then raise (Syntax_error "loop increment variable mismatch");
  (match next st with
  | PLUSPLUS -> ()
  | PLUS_ASSIGN ->
      if expect_int st "increment" <> 1 then
        raise (Syntax_error "only unit-stride loops are supported")
  | ASSIGN ->
      (* i = i + 1 *)
      let v4 = expect_ident st "increment" in
      if v4 <> v then raise (Syntax_error "loop increment variable mismatch");
      expect st PLUS "+";
      if expect_int st "increment" <> 1 then
        raise (Syntax_error "only unit-stride loops are supported")
  | _ -> raise (Syntax_error "expected ++ or += 1"));
  expect st RP ")";
  (v, lo, hi)

let parse (source : string) : Tensor_op.t =
  let st = { toks = tokenize source } in
  let iters = ref [] in
  while peek st = KFOR do
    iters := parse_for_header st :: !iters
  done;
  let iters = List.rev !iters in
  if iters = [] then raise (Syntax_error "expected at least one for loop");
  (* statement: OUT[subs] (= | +=) rhs ; *)
  let out = expect_ident st "output tensor" in
  let out_subs = parse_subscripts st in
  if out_subs = [] then raise (Syntax_error "output must be subscripted");
  (match next st with
  | ASSIGN | PLUS_ASSIGN -> ()
  | _ -> raise (Syntax_error "expected = or +="));
  let refs = parse_rhs_refs st in
  if peek st <> EOF then raise (Syntax_error "trailing input after statement");
  let accesses =
    { Tensor_op.tensor = out; subscripts = out_subs; direction = Tensor_op.Write }
    :: List.map
         (fun (name, subs) ->
           { Tensor_op.tensor = name; subscripts = subs; direction = Tensor_op.Read })
         refs
  in
  Tensor_op.make ~iters ~accesses ()
