(** A repository of common spatial architectures (paper Section III):
    systolic arrays (TPU), mesh NoCs (DySER/Plasticine), multicast arrays
    (Eyeriss, Diannao) and reduction trees (MAERI). *)

val tpu_like : ?n:int -> ?bandwidth:int -> unit -> Spec.t
val mesh_array : ?rows:int -> ?cols:int -> ?bandwidth:int -> unit -> Spec.t
val eyeriss_like : ?rows:int -> ?cols:int -> ?bandwidth:int -> unit -> Spec.t
val shidiannao_like : ?n:int -> ?bandwidth:int -> unit -> Spec.t
val maeri_like : ?n:int -> ?bandwidth:int -> unit -> Spec.t
val vector_multicast : ?n:int -> ?group:int -> ?bandwidth:int -> unit -> Spec.t
val systolic_1d : ?n:int -> ?bandwidth:int -> unit -> Spec.t

val all : (string * Spec.t) list
val find : string -> Spec.t
(** Raises [Invalid_argument] for unknown names. *)
