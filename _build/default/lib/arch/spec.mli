(** A complete spatial-architecture specification. *)

type t = {
  pe : Pe_array.t;
  topology : Interconnect.t;
  bandwidth : int;  (** scratchpad words per cycle *)
  buffer_words : int option;  (** scratchpad capacity, if bounded *)
  energy : Energy.t;
}

val make :
  ?bandwidth:int ->
  ?buffer_words:int ->
  ?energy:Energy.t ->
  pe:Pe_array.t ->
  topology:Interconnect.t ->
  unit ->
  t
(** Defaults: 64 words/cycle, unbounded buffer, {!Energy.default}. *)

val with_bandwidth : int -> t -> t
val with_topology : Interconnect.t -> t -> t
val to_string : t -> string
