(** Per-event energy coefficients, normalized to one MAC = 1.0, following
    the Eyeriss energy hierarchy (register ~ MAC, inter-PE link ~ 2x,
    scratchpad ~ 6x, DRAM ~ 200x). *)

type t = { mac : float; reg : float; link : float; spm : float; dram : float }

val default : t
val scale : float -> t -> t
