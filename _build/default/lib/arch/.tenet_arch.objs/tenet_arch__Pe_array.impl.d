lib/arch/pe_array.ml: Array List Printf String Tenet_isl
