lib/arch/repository.mli: Spec
