lib/arch/repository.ml: Interconnect List Pe_array Printf Spec String
