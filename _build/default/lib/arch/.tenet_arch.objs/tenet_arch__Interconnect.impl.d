lib/arch/interconnect.ml: Array List Pe_array Printf Tenet_isl
