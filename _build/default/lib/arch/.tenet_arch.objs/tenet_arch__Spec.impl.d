lib/arch/spec.ml: Energy Interconnect Pe_array Printf
