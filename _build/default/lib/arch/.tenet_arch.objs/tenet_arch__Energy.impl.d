lib/arch/energy.ml:
