lib/arch/pe_array.mli: Tenet_isl
