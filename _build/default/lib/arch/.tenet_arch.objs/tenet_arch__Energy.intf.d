lib/arch/energy.mli:
