lib/arch/spec.mli: Energy Interconnect Pe_array
