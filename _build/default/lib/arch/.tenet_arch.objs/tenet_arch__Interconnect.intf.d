lib/arch/interconnect.mli: Pe_array Tenet_isl
