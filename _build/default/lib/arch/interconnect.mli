(** PE interconnection topologies (Definition 3 / Figure 4 of the paper),
    realized as relations [{ PE[p] -> PE[p'] }] between distinct
    connected PEs. *)

type t =
  | Systolic_1d  (** PE[i] -> PE[i+1] *)
  | Bidirectional_1d  (** PE[i] <-> PE[i+1] (1D mesh) *)
  | Systolic_2d  (** right and down neighbors *)
  | Mesh  (** 8-neighborhood: abs deltas <= 1, excluding self *)
  | Multicast of int
      (** PEs within Chebyshev distance [d] share a wire; the paper's 1D
          multicast uses [d = 3] (4 PEs per wire) *)
  | Broadcast_row  (** all PEs in a row share a wire (2D arrays) *)
  | Broadcast_col  (** all PEs in a column share a wire *)
  | Row_col_broadcast  (** Eyeriss-style: wires along rows and columns *)
  | Reduction_tree
      (** MAERI-style: multipliers are leaves of a fat tree; distribution
          behaves like full multicast across the (1D) array *)
  | Custom of { rel : Tenet_isl.Map.t; interval : int }

val name : t -> string

val interval : t -> int
(** Transfer latency in cycles: 1 for point-to-point hops, 0 for shared
    wires (same-cycle multicast reuse, Section V-A). *)

val relation : t -> Pe_array.t -> Tenet_isl.Map.t
(** The concrete relation over a PE array.  Self-loops are excluded;
    same-PE reuse is the separate temporal channel.  Raises
    [Invalid_argument] on a rank mismatch. *)

val identity : Pe_array.t -> Tenet_isl.Map.t
(** The same-PE relation, used for the temporal-reuse channel. *)
