(* A PE array: a box of processing elements, 1D or 2D (or higher).  Each PE
   performs one multiply-and-accumulate per cycle (paper Section II-A). *)

module Isl = Tenet_isl

type t = { dims : int array }

let make dims =
  if Array.length dims = 0 || Array.exists (fun d -> d <= 0) dims then
    invalid_arg "Pe_array.make: dimensions must be positive";
  { dims }

let d1 n = make [| n |]
let d2 rows cols = make [| rows; cols |]
let rank t = Array.length t.dims
let size t = Array.fold_left ( * ) 1 t.dims
let dims t = t.dims

let dim_names t = List.init (rank t) (fun i -> Printf.sprintf "p%d" i)
let space t : Isl.Space.t = Isl.Space.make "PE" (dim_names t)

(* All PE coordinates as a set. *)
let domain t : Isl.Set.t =
  Isl.Set.box (space t)
    (Array.to_list (Array.map (fun d -> (0, d - 1)) t.dims))

let in_bounds t (p : int array) =
  Array.length p = rank t
  && Array.for_all2 (fun v d -> v >= 0 && v < d) p t.dims

let to_string t =
  String.concat "x" (Array.to_list (Array.map string_of_int t.dims))
