(* A complete spatial-architecture specification: PE array, interconnect
   topology, scratchpad bandwidth, and energy coefficients. *)

type t = {
  pe : Pe_array.t;
  topology : Interconnect.t;
  bandwidth : int; (* scratchpad words per cycle *)
  buffer_words : int option; (* on-chip scratchpad capacity, if bounded *)
  energy : Energy.t;
}

let make ?(bandwidth = 64) ?buffer_words ?(energy = Energy.default) ~pe
    ~topology () =
  if bandwidth <= 0 then invalid_arg "Spec.make: bandwidth must be positive";
  { pe; topology; bandwidth; buffer_words; energy }

let with_bandwidth bandwidth t = { t with bandwidth }
let with_topology topology t = { t with topology }

let to_string t =
  Printf.sprintf "%s PEs, %s, %d words/cycle"
    (Pe_array.to_string t.pe)
    (Interconnect.name t.topology)
    t.bandwidth
