(* PE interconnection topologies, each realized as a relation
   { PE[p] -> PE[p'] : conditions } between *distinct* connected PEs
   (Definition 3 / Figure 4 of the paper).

   The topology also fixes the reuse time interval: a hop over a systolic
   or mesh link takes one cycle, while multicast wires deliver the same
   datum to several PEs in the same cycle (interval 0, Section V-A). *)

module Isl = Tenet_isl

type t =
  | Systolic_1d  (** PE[i] -> PE[i+1] *)
  | Bidirectional_1d  (** PE[i] <-> PE[i+1] (1D mesh) *)
  | Systolic_2d  (** right and down neighbors *)
  | Mesh  (** 8-neighborhood: abs deltas <= 1, excluding self *)
  | Multicast of int
      (** PEs within Chebyshev distance [d] share a wire (1D multicast of
          the paper uses [d = 3], i.e. 4 PEs per wire) *)
  | Broadcast_row  (** all PEs in the same row share a wire (2D arrays) *)
  | Broadcast_col  (** all PEs in the same column share a wire *)
  | Row_col_broadcast
      (** Eyeriss-style NoC: wires along both rows and columns *)
  | Reduction_tree
      (** MAERI-style: multipliers are leaves of a fat tree; distribution
          behaves like full multicast across the (1D) array *)
  | Custom of { rel : Isl.Map.t; interval : int }

let name = function
  | Systolic_1d -> "1D-systolic"
  | Bidirectional_1d -> "1D-bidirectional"
  | Systolic_2d -> "2D-systolic"
  | Mesh -> "mesh"
  | Multicast d -> Printf.sprintf "multicast-%d" d
  | Broadcast_row -> "broadcast-row"
  | Broadcast_col -> "broadcast-col"
  | Row_col_broadcast -> "row+col-broadcast"
  | Reduction_tree -> "reduction-tree"
  | Custom _ -> "custom"

(* Data transferred over this interconnect arrives after [interval]
   cycles: 1 for point-to-point hops, 0 for shared wires. *)
let interval = function
  | Systolic_1d | Bidirectional_1d | Systolic_2d | Mesh -> 1
  | Multicast _ | Broadcast_row | Broadcast_col | Row_col_broadcast
  | Reduction_tree ->
      0
  | Custom { interval; _ } -> interval

(* Build the relation over a concrete PE array.  Self-loops are excluded:
   same-PE reuse is the temporal channel, modeled separately. *)
let rec relation (t : t) (pe : Pe_array.t) : Isl.Map.t =
  let r = Pe_array.rank pe in
  let dims = Pe_array.dims pe in
  let in_names = Pe_array.dim_names pe in
  let out_names = List.map (fun n -> n ^ "'") in_names in
  let dom = Isl.Space.make "PE" in_names in
  let ran = Isl.Space.make "PE" out_names in
  let v n = Isl.Aff.Var n in
  let bounds =
    (* 0 <= p_i < dim_i on both sides *)
    List.concat
      (List.mapi
         (fun i n ->
           let n' = List.nth out_names i in
           Isl.Aff.
             [
               v n;
               Sub (Int dims.(i), Add (v n, Int 1));
               Var n';
               Sub (Int dims.(i), Add (Var n', Int 1));
             ]
           |> fun l -> l)
         in_names)
  in
  let with_bounds m = Isl.Map.constrain m ~ges:bounds in
  match t with
  | Custom { rel; _ } -> rel
  | Systolic_1d ->
      if r <> 1 then invalid_arg "Interconnect: 1D-systolic needs a 1D array";
      with_bounds
        (Isl.Map.constrain
           (Isl.Map.universe dom ran)
           ~eqs:[ Isl.Aff.(Sub (Var "p0'", Add (v "p0", Int 1))) ])
  | Bidirectional_1d ->
      if r <> 1 then
        invalid_arg "Interconnect: 1D-bidirectional needs a 1D array";
      let fwd =
        Isl.Map.constrain
          (Isl.Map.universe dom ran)
          ~eqs:[ Isl.Aff.(Sub (Var "p0'", Add (v "p0", Int 1))) ]
      in
      let bwd =
        Isl.Map.constrain
          (Isl.Map.universe dom ran)
          ~eqs:[ Isl.Aff.(Sub (Add (Var "p0'", Int 1), v "p0")) ]
      in
      with_bounds (Isl.Map.union fwd bwd)
  | Systolic_2d ->
      if r <> 2 then invalid_arg "Interconnect: 2D-systolic needs a 2D array";
      let right =
        Isl.Map.constrain
          (Isl.Map.universe dom ran)
          ~eqs:
            Isl.Aff.
              [
                Sub (Var "p0'", v "p0"); Sub (Var "p1'", Add (v "p1", Int 1));
              ]
      in
      let down =
        Isl.Map.constrain
          (Isl.Map.universe dom ran)
          ~eqs:
            Isl.Aff.
              [
                Sub (Var "p0'", Add (v "p0", Int 1)); Sub (Var "p1'", v "p1");
              ]
      in
      with_bounds (Isl.Map.union right down)
  | Mesh ->
      if r <> 2 then invalid_arg "Interconnect: mesh needs a 2D array";
      (* abs(dx) <= 1 and abs(dy) <= 1, minus the self pair; expressed
         without abs to keep each disjunct convex: the 8 neighbors are
         (dx,dy) in {-1,0,1}^2 \ {(0,0)}. *)
      let shift (dx, dy) =
        Isl.Map.constrain
          (Isl.Map.universe dom ran)
          ~eqs:
            Isl.Aff.
              [
                Sub (Var "p0'", Add (v "p0", Int dx));
                Sub (Var "p1'", Add (v "p1", Int dy));
              ]
      in
      let deltas =
        [ (-1, -1); (-1, 0); (-1, 1); (0, -1); (0, 1); (1, -1); (1, 0); (1, 1) ]
      in
      with_bounds (Isl.Map.union_all (List.map shift deltas))
  | Multicast d ->
      (* Chebyshev distance in [1, d]; in 1D this is abs(p0' - p0) <= d. *)
      let per_dim_close =
        List.concat
          (List.mapi
             (fun idx n ->
               let n' = List.nth out_names idx in
               Isl.Aff.
                 [
                   Sub (Int d, Sub (v n, Var n'));
                   Sub (Int d, Sub (Var n', v n));
                 ])
             in_names)
      in
      let close =
        Isl.Map.constrain (Isl.Map.universe dom ran) ~ges:per_dim_close
      in
      (* exclude the self pair: at least one coordinate differs *)
      let differs =
        Isl.Map.union_all
          (List.concat
             (List.mapi
                (fun idx n ->
                  let n' = List.nth out_names idx in
                  ignore idx;
                  [
                    Isl.Map.constrain (Isl.Map.universe dom ran)
                      ~ges:[ Isl.Aff.(Sub (Sub (v n, Var n'), Int 1)) ];
                    Isl.Map.constrain (Isl.Map.universe dom ran)
                      ~ges:[ Isl.Aff.(Sub (Sub (Var n', v n), Int 1)) ];
                  ])
                in_names))
      in
      with_bounds (Isl.Map.intersect close differs)
  | Broadcast_row ->
      if r <> 2 then invalid_arg "Interconnect: broadcast-row needs 2D";
      let same_row =
        Isl.Map.constrain
          (Isl.Map.universe dom ran)
          ~eqs:[ Isl.Aff.(Sub (Var "p0'", v "p0")) ]
      in
      let differs =
        Isl.Map.union
          (Isl.Map.constrain (Isl.Map.universe dom ran)
             ~ges:[ Isl.Aff.(Sub (Sub (v "p1", Var "p1'"), Int 1)) ])
          (Isl.Map.constrain (Isl.Map.universe dom ran)
             ~ges:[ Isl.Aff.(Sub (Sub (Var "p1'", v "p1"), Int 1)) ])
      in
      with_bounds (Isl.Map.intersect same_row differs)
  | Broadcast_col ->
      if r <> 2 then invalid_arg "Interconnect: broadcast-col needs 2D";
      let same_col =
        Isl.Map.constrain
          (Isl.Map.universe dom ran)
          ~eqs:[ Isl.Aff.(Sub (Var "p1'", v "p1")) ]
      in
      let differs =
        Isl.Map.union
          (Isl.Map.constrain (Isl.Map.universe dom ran)
             ~ges:[ Isl.Aff.(Sub (Sub (v "p0", Var "p0'"), Int 1)) ])
          (Isl.Map.constrain (Isl.Map.universe dom ran)
             ~ges:[ Isl.Aff.(Sub (Sub (Var "p0'", v "p0"), Int 1)) ])
      in
      with_bounds (Isl.Map.intersect same_col differs)
  | Row_col_broadcast ->
      if r <> 2 then invalid_arg "Interconnect: row+col broadcast needs 2D";
      Isl.Map.union (relation Broadcast_row pe) (relation Broadcast_col pe)
  | Reduction_tree ->
      if r <> 1 then invalid_arg "Interconnect: reduction tree needs 1D";
      (* The distribution network can deliver one datum to any subset of
         leaves in a cycle: full multicast minus self. *)
      let differs =
        Isl.Map.union
          (Isl.Map.constrain (Isl.Map.universe dom ran)
             ~ges:[ Isl.Aff.(Sub (Sub (v "p0", Var "p0'"), Int 1)) ])
          (Isl.Map.constrain (Isl.Map.universe dom ran)
             ~ges:[ Isl.Aff.(Sub (Sub (Var "p0'", v "p0"), Int 1)) ])
      in
      with_bounds differs

(* The same-PE relation, used for the temporal-reuse channel. *)
let identity (pe : Pe_array.t) : Isl.Map.t =
  let in_names = Pe_array.dim_names pe in
  let out_names = List.map (fun n -> n ^ "'") in_names in
  let dom = Isl.Space.make "PE" in_names in
  let ran = Isl.Space.make "PE" out_names in
  let eqs =
    List.map2
      (fun n n' -> Isl.Aff.(Sub (Var n', Var n)))
      in_names out_names
  in
  let dims = Pe_array.dims pe in
  let bounds =
    List.concat
      (List.mapi
         (fun i n ->
           Isl.Aff.[ Var n; Sub (Int dims.(i), Add (Var n, Int 1)) ])
         in_names)
  in
  Isl.Map.constrain (Isl.Map.universe dom ran) ~eqs ~ges:bounds
