(** PE arrays: boxes of processing elements, each performing one
    multiply-accumulate per cycle (paper Section II-A). *)

type t

val make : int array -> t
(** [make dims]; every extent must be positive. *)

val d1 : int -> t
(** A 1D array of [n] PEs. *)

val d2 : int -> int -> t
(** [d2 rows cols]. *)

val rank : t -> int
val size : t -> int
val dims : t -> int array

val dim_names : t -> string list
(** ["p0"; "p1"; ...] — the canonical space-stamp dimension names. *)

val space : t -> Tenet_isl.Space.t
val domain : t -> Tenet_isl.Set.t
val in_bounds : t -> int array -> bool
val to_string : t -> string
