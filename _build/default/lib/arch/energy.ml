(* Per-event energy coefficients, in arbitrary energy units normalized to
   one MAC = 1.0.  The ratios follow the Eyeriss energy hierarchy
   (Chen et al., ISCA 2016): register file ~ MAC, inter-PE link ~ 2x,
   scratchpad (global buffer) ~ 6x; DRAM (unused by the on-chip model but
   exposed for extensions) ~ 200x. *)

type t = {
  mac : float; (* one multiply-accumulate *)
  reg : float; (* one local register access *)
  link : float; (* one inter-PE transfer *)
  spm : float; (* one scratchpad access *)
  dram : float; (* one off-chip access *)
}

let default = { mac = 1.0; reg = 1.0; link = 2.0; spm = 6.0; dram = 200.0 }

let scale k t =
  {
    mac = k *. t.mac;
    reg = k *. t.reg;
    link = k *. t.link;
    spm = k *. t.spm;
    dram = k *. t.dram;
  }
