(** Off-chip traffic analysis: the simulator's scratchpad access trace
    fed to {!Reuse_distance}, giving DRAM traffic as a function of
    scratchpad capacity (and meaning to [Spec.buffer_words]). *)

type t = {
  histogram : Reuse_distance.histogram;
  scratchpad_accesses : int;
  dram_accesses : int;
      (** at the spec's [buffer_words] (all-cold if unbounded) *)
  hit_rate : float;
  min_full_reuse_capacity : int;
}

val analyze :
  ?window:int ->
  Tenet_arch.Spec.t ->
  Tenet_ir.Tensor_op.t ->
  Tenet_dataflow.Dataflow.t ->
  t

val sweep :
  ?window:int ->
  Tenet_arch.Spec.t ->
  Tenet_ir.Tensor_op.t ->
  Tenet_dataflow.Dataflow.t ->
  capacities:int list ->
  (int * int) list
(** [(capacity, dram accesses)] pairs from a single simulator run. *)
