(** LRU reuse-distance (stack-distance) analysis of the scratchpad access
    stream, computed with the Bennett-Kruskal Fenwick-tree algorithm in
    O(N log N).

    An access hits in an LRU buffer of [capacity] words iff fewer than
    [capacity] distinct words were touched since its previous access, so
    one histogram answers every capacity. *)

type trace = (string * int array) array
(** (tensor, element) scratchpad accesses in program order. *)

type histogram = {
  distances : (int, int) Hashtbl.t;  (** stack distance -> access count *)
  cold : int;  (** first-ever accesses *)
  total : int;
}

val histogram : trace -> histogram

val misses : histogram -> capacity:int -> int
(** Cold misses plus accesses at stack distance >= [capacity]. *)

val hit_rate : histogram -> capacity:int -> float

val min_full_reuse_capacity : histogram -> int
(** The smallest capacity at which only cold misses remain. *)
