lib/sim/offchip.ml: Array List Reuse_distance Simulator Tenet_arch Tenet_dataflow Tenet_ir
