lib/sim/simulator.mli: Tenet_arch Tenet_dataflow Tenet_ir
