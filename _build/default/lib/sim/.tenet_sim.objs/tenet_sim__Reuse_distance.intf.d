lib/sim/reuse_distance.mli: Hashtbl
