lib/sim/reuse_distance.ml: Array Hashtbl Option
