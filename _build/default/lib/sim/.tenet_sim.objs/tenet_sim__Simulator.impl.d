lib/sim/simulator.ml: Array Hashtbl List Printf String Tenet_arch Tenet_dataflow Tenet_ir Tenet_isl Tenet_model
