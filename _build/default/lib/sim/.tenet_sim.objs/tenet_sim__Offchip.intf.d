lib/sim/offchip.mli: Reuse_distance Tenet_arch Tenet_dataflow Tenet_ir
