(* LRU reuse-distance analysis of the scratchpad access stream.

   The analytical model's UniqueVolume is the traffic between PE array
   and scratchpad; whether each of those accesses also crosses the
   off-chip boundary depends on the scratchpad capacity.  Classic stack
   (reuse) distances answer that for every capacity at once: an access
   hits in an LRU buffer of B words iff fewer than B distinct words were
   touched since its previous access.

   The histogram is computed with the standard Bennett-Kruskal algorithm:
   a Fenwick tree over access positions marks each element's most recent
   position; the stack distance of an access is the number of marked
   positions after its element's previous one.  O(N log N). *)

type trace = (string * int array) array
(** (tensor, element) scratchpad accesses in program order. *)

type histogram = {
  distances : (int, int) Hashtbl.t; (* stack distance -> access count *)
  cold : int; (* first-ever accesses *)
  total : int;
}

module Fenwick = struct
  type t = { tree : int array }

  let create n = { tree = Array.make (n + 1) 0 }

  let add t i delta =
    let i = ref (i + 1) in
    while !i < Array.length t.tree do
      t.tree.(!i) <- t.tree.(!i) + delta;
      i := !i + (!i land - !i)
    done

  (* sum of positions [0, i] *)
  let prefix t i =
    let acc = ref 0 in
    let i = ref (i + 1) in
    while !i > 0 do
      acc := !acc + t.tree.(!i);
      i := !i - (!i land - !i)
    done;
    !acc
end

let histogram (trace : trace) : histogram =
  let n = Array.length trace in
  let fw = Fenwick.create (max n 1) in
  let last : (string * int list, int) Hashtbl.t = Hashtbl.create 1024 in
  let distances = Hashtbl.create 64 in
  let cold = ref 0 in
  Array.iteri
    (fun t (tensor, element) ->
      let key = (tensor, Array.to_list element) in
      (match Hashtbl.find_opt last key with
      | None -> incr cold
      | Some t0 ->
          (* distinct elements touched strictly after t0: marked
             positions in (t0, t) *)
          let d = Fenwick.prefix fw (t - 1) - Fenwick.prefix fw t0 in
          Hashtbl.replace distances d
            (1 + Option.value ~default:0 (Hashtbl.find_opt distances d));
          Fenwick.add fw t0 (-1));
      Fenwick.add fw t 1;
      Hashtbl.replace last key t)
    trace;
  { distances; cold = !cold; total = n }

(* Misses of an LRU buffer holding [capacity] words: cold misses plus
   accesses whose stack distance is >= capacity. *)
let misses (h : histogram) ~capacity =
  if capacity <= 0 then h.total
  else
    Hashtbl.fold
      (fun d count acc -> if d >= capacity then acc + count else acc)
      h.distances h.cold

let hit_rate (h : histogram) ~capacity =
  if h.total = 0 then 1.0
  else 1.0 -. (float_of_int (misses h ~capacity) /. float_of_int h.total)

(* The smallest capacity at which only cold misses remain. *)
let min_full_reuse_capacity (h : histogram) =
  Hashtbl.fold (fun d _ acc -> max acc (d + 1)) h.distances 1
