lib/workloads/layers.ml: List Printf Tenet_ir
