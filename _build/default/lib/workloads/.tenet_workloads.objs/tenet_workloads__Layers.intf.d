lib/workloads/layers.mli: Tenet_ir
