(** Layer tables for the real-world applications of the paper (Table IV,
    Figures 11-12): AlexNet, VGG16, GoogLeNet, MobileNet, ALS (MTTKRP)
    and Transformer (matrix chains).  Strides are normalized to 1
    (documented substitution in DESIGN.md). *)

type kind = Conv | Dw_conv | Gemm | Mttkrp | Mmc

type layer = {
  lname : string;
  kind : kind;
  op : Tenet_ir.Tensor_op.t;
  scale_dims : string list;
      (** dims safe to extrapolate with {!Tenet_model.Scaled} *)
}

val conv : string -> k:int -> c:int -> o:int -> r:int -> layer
val dw_conv : string -> c:int -> o:int -> r:int -> layer
val pw_conv : string -> k:int -> c:int -> o:int -> layer
val macs : layer -> int

val alexnet : layer list
val vgg16 : layer list
val googlenet : layer list
val mobilenet : layer list
val als : ?rank:int -> unit -> layer
val transformer : ?seq:int -> unit -> layer list
val all_networks : (string * layer list) list
