(* Layer tables for the real-world applications of the paper (Table IV and
   Figures 11-12): AlexNet, VGG16, GoogLeNet, MobileNet, ALS (MTTKRP) and
   Transformer (matrix-multiplication chains).

   Convolution strides are normalized to 1 (our conv IR indexes the input
   as [ox + rx]); output resolutions are the networks' actual ones, so
   MAC counts and reuse structure are preserved — this is the documented
   stride substitution in DESIGN.md.  Grouped convolutions (AlexNet
   conv2/4/5) use their per-group channel counts. *)

module Ir = Tenet_ir

type kind = Conv | Dw_conv | Gemm | Mttkrp | Mmc

type layer = {
  lname : string;
  kind : kind;
  op : Ir.Tensor_op.t;
  (* dims that are safe to extrapolate (sequential in common dataflows) *)
  scale_dims : string list;
}

let conv lname ~k ~c ~o ~r =
  {
    lname;
    kind = Conv;
    op = Ir.Kernels.conv2d ~nk:k ~nc:c ~nox:o ~noy:o ~nrx:r ~nry:r;
    scale_dims = [ "k"; "c"; "ox" ];
  }

let dw_conv lname ~c ~o ~r =
  {
    lname;
    kind = Dw_conv;
    op = Ir.Kernels.dw_conv2d ~nc:c ~nox:o ~noy:o ~nrx:r ~nry:r;
    scale_dims = [ "c"; "ox" ];
  }

let pw_conv lname ~k ~c ~o =
  {
    lname;
    kind = Conv;
    op = Ir.Kernels.pw_conv2d ~nk:k ~nc:c ~nox:o ~noy:o;
    scale_dims = [ "k"; "c"; "ox" ];
  }

let macs l = Ir.Tensor_op.n_instances l.op

(* --- AlexNet (Krizhevsky et al.): the five conv layers of Fig 11a/b. --- *)
let alexnet : layer list =
  [
    conv "CONV1" ~k:96 ~c:3 ~o:55 ~r:11;
    conv "CONV2" ~k:256 ~c:48 ~o:27 ~r:5;
    conv "CONV3" ~k:384 ~c:256 ~o:13 ~r:3;
    conv "CONV4" ~k:384 ~c:192 ~o:13 ~r:3;
    conv "CONV5" ~k:256 ~c:192 ~o:13 ~r:3;
  ]

(* --- VGG16: the first conv of each stage (C1-C5 in Fig 11c/d). --- *)
let vgg16 : layer list =
  [
    conv "CONV1-1" ~k:64 ~c:3 ~o:224 ~r:3;
    conv "CONV2-1" ~k:128 ~c:64 ~o:112 ~r:3;
    conv "CONV3-1" ~k:256 ~c:128 ~o:56 ~r:3;
    conv "CONV4-1" ~k:512 ~c:256 ~o:28 ~r:3;
    conv "CONV5-1" ~k:512 ~c:512 ~o:14 ~r:3;
  ]

(* --- GoogLeNet: stem + representative inception branches (6.7M params,
   three layer shapes per Table IV). --- *)
let googlenet : layer list =
  [
    conv "conv1/7x7" ~k:64 ~c:3 ~o:112 ~r:7;
    conv "conv2/3x3" ~k:192 ~c:64 ~o:56 ~r:3;
    conv "inception-3a/3x3" ~k:128 ~c:96 ~o:28 ~r:3;
    conv "inception-4a/3x3" ~k:208 ~c:96 ~o:14 ~r:3;
    pw_conv "inception-4a/1x1" ~k:192 ~c:480 ~o:14;
    conv "inception-5a/3x3" ~k:320 ~c:160 ~o:7 ~r:3;
  ]

(* --- MobileNet v1: alternating depthwise / pointwise stacks (4.2M
   params, four layer shapes per Table IV). --- *)
let mobilenet : layer list =
  [
    conv "conv1" ~k:32 ~c:3 ~o:112 ~r:3;
    dw_conv "dw-CONV2" ~c:64 ~o:112 ~r:3;
    pw_conv "pw-CONV2" ~k:128 ~c:64 ~o:56;
    dw_conv "dw-CONV4" ~c:256 ~o:28 ~r:3;
    pw_conv "pw-CONV4" ~k:256 ~c:256 ~o:28;
    dw_conv "dw-CONV6" ~c:512 ~o:14 ~r:3;
    pw_conv "pw-CONV6" ~k:512 ~c:512 ~o:14;
  ]

(* --- ALS on the Netflix-scale tensor (Table IV: 480K x 18K x 2K), rank
   32: the MTTKRP bottleneck operation. --- *)
let als ?(rank = 32) () : layer =
  {
    lname = "ALS-MTTKRP";
    kind = Mttkrp;
    op = Ir.Kernels.mttkrp ~ni:480_000 ~nj:rank ~nk:18_000 ~nl:2_000;
    scale_dims = [ "i"; "k"; "l" ];
  }

(* --- Transformer (Vaswani et al.): attention score x value chains with
   model dims 512 / 768 / 1024 (Table IV), sequence length 512. --- *)
let transformer ?(seq = 512) () : layer list =
  List.map
    (fun dm ->
      {
        lname = Printf.sprintf "MMc-d%d" dm;
        kind = Mmc;
        op = Ir.Kernels.mmc ~ni:seq ~nj:dm ~nk:seq ~nl:dm;
        scale_dims = [ "i"; "j"; "k"; "l" ];
      })
    [ 512; 768; 1024 ]

let all_networks : (string * layer list) list =
  [
    ("AlexNet", alexnet);
    ("VGG16", vgg16);
    ("GoogLeNet", googlenet);
    ("MobileNet", mobilenet);
  ]
