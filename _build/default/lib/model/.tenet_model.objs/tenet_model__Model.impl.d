lib/model/model.ml: Array Concrete Float Hashtbl List Metrics Tenet_arch Tenet_dataflow Tenet_ir Tenet_isl Volumes
