lib/model/model.mli: Hashtbl Metrics Tenet_arch Tenet_dataflow Tenet_ir Tenet_isl
