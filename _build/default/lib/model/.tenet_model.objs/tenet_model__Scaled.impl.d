lib/model/scaled.ml: Array Concrete Float List Metrics Option String Tenet_arch Tenet_dataflow Tenet_ir Tenet_isl Tenet_util
