lib/model/metrics.ml: Float Format List String Tenet_ir
