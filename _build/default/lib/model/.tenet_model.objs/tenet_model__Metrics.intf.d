lib/model/metrics.mli: Format Tenet_ir
