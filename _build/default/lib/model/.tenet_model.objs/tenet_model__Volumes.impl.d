lib/model/volumes.ml: List Metrics Tenet_dataflow Tenet_isl
