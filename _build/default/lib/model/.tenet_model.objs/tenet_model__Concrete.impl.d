lib/model/concrete.ml: Array Float Hashtbl List Metrics Option Printf Tenet_arch Tenet_dataflow Tenet_ir Tenet_isl
