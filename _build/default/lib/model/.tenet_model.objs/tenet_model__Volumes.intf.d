lib/model/volumes.mli: Metrics Tenet_dataflow Tenet_isl
