(** Volume metrics by relation counting (paper Section V-A, Table II).

    For a tensor with data-assignment relation [A = { (PE|T) -> F }] and
    spacetime-map channels [M]:
    TotalVolume = sum(A); ReuseVolume = sum(A /\ M^-1 . A);
    UniqueVolume = Total - Reuse.  A stamp that could reuse both from its
    own register and from a neighbor is credited to the temporal channel
    (registers are the cheaper source), keeping
    Reuse = Temporal + Spatial exact. *)

val reuse_map :
  assignment:Tenet_isl.Map.t -> m:Tenet_isl.Map.t -> Tenet_isl.Map.t
(** [A /\ M^-1 . A]: the (stamp, element) pairs whose element was already
    present at an adjacent predecessor stamp. *)

val compute :
  assignment:Tenet_isl.Map.t ->
  channels:Tenet_dataflow.Spacetime.channel list ->
  Metrics.volumes
