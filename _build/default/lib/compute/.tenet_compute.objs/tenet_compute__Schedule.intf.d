lib/compute/schedule.mli: Tenet_dataflow Tenet_ir
