lib/compute/schedule.ml: List Printf String Tenet_dataflow Tenet_ir Tenet_isl
