(* The compute-centric notation (Timeloop / Interstellar, paper
   Section II-C and Table I): loop transformation directives — tiling,
   reordering, and parallelization — applied to the original loop nest.

   A schedule compiles into a relation-centric {!Tenet_dataflow.Dataflow}
   whose stamps are single-dimension tile expressions, which demonstrates
   the containment the paper argues: every compute-centric schedule is a
   relation-centric dataflow (and is also data-centric expressible), but
   the converse fails for skewed dataflows. *)

module Aff = Tenet_isl.Aff
module Ir = Tenet_ir
module Df = Tenet_dataflow

type level = Full | Outer | Inner

type loop = { dim : string; level : level }

type t = {
  sname : string;
  tiles : (string * int) list; (* tiling factor per tiled dim *)
  order : loop list; (* the sequential loop order, outermost first *)
  parallel : loop list; (* <= 2 loops unrolled onto the PE array *)
}

exception Ill_formed of string

let full d = { dim = d; level = Full }
let outer d = { dim = d; level = Outer }
let inner d = { dim = d; level = Inner }

let make ?(name = "schedule") ?(tiles = []) ~order ~parallel () =
  { sname = name; tiles; order; parallel }

let tile_of t d =
  match List.assoc_opt d t.tiles with
  | Some f when f > 0 -> f
  | Some _ -> raise (Ill_formed ("non-positive tile for " ^ d))
  | None -> raise (Ill_formed ("loop level refers to untiled dim " ^ d))

let loop_expr t { dim; level } =
  match level with
  | Full -> Aff.Var dim
  | Outer -> Aff.Fdiv (Aff.Var dim, tile_of t dim)
  | Inner -> Aff.Mod (Aff.Var dim, tile_of t dim)

(* Every instance must be covered exactly once: each dim appears either
   as one Full loop, or as the Outer and Inner pair of one tiling. *)
let validate_coverage (op : Ir.Tensor_op.t) (t : t) =
  let loops = t.order @ t.parallel in
  List.iter
    (fun it ->
      let d = it.Ir.Tensor_op.iname in
      let of_level l =
        List.length
          (List.filter (fun lp -> lp.dim = d && lp.level = l) loops)
      in
      match (of_level Full, of_level Outer, of_level Inner) with
      | 1, 0, 0 | 0, 1, 1 -> ()
      | f, o, i ->
          raise
            (Ill_formed
               (Printf.sprintf
                  "dim %s covered as %d full / %d outer / %d inner loops" d f
                  o i)))
    op.Ir.Tensor_op.iters;
  List.iter
    (fun lp ->
      if not (List.exists (fun it -> it.Ir.Tensor_op.iname = lp.dim) op.Ir.Tensor_op.iters)
      then raise (Ill_formed ("unknown dim " ^ lp.dim)))
    loops;
  if List.length t.parallel > 2 then
    raise (Ill_formed "at most two parallel loops (2D PE arrays)")

(* Compile to a relation-centric dataflow: parallel loops become space
   stamps, the sequential order becomes the time stamps. *)
let to_dataflow (op : Ir.Tensor_op.t) (t : t) : Df.Dataflow.t =
  validate_coverage op t;
  Df.Dataflow.make ~name:t.sname
    ~space:(List.map (loop_expr t) t.parallel)
    ~time:(List.map (loop_expr t) t.order)

(* ------------------------------------------------------------------ *)
(* Classic schedules, for tests and examples.                          *)
(* ------------------------------------------------------------------ *)

(* Output-stationary GEMM: parallel i%p, j%p; k innermost. *)
let gemm_output_stationary ?(p = 8) () =
  make ~name:"gemm-os (compute-centric)"
    ~tiles:[ ("i", p); ("j", p) ]
    ~order:[ outer "i"; outer "j"; full "k" ]
    ~parallel:[ inner "i"; inner "j" ]
    ()

(* Weight-stationary GEMM: parallel k%p, j%p; i innermost. *)
let gemm_weight_stationary ?(p = 8) () =
  make ~name:"gemm-ws (compute-centric)"
    ~tiles:[ ("k", p); ("j", p) ]
    ~order:[ outer "k"; outer "j"; full "i" ]
    ~parallel:[ inner "k"; inner "j" ]
    ()

(* NVDLA-style conv: channels parallel, pixels sequential. *)
let conv_channel_parallel ?(p = 8) () =
  make ~name:"conv-kc (compute-centric)"
    ~tiles:[ ("k", p); ("c", p) ]
    ~order:[ full "ry"; full "rx"; outer "k"; outer "c"; full "oy"; full "ox" ]
    ~parallel:[ inner "k"; inner "c" ]
    ()

let to_string t =
  let loop_str lp =
    match lp.level with
    | Full -> lp.dim
    | Outer -> Printf.sprintf "%s/%d" lp.dim (tile_of t lp.dim)
    | Inner -> Printf.sprintf "%s%%%d" lp.dim (tile_of t lp.dim)
  in
  Printf.sprintf "%s: for %s parallel [%s]" t.sname
    (String.concat " for " (List.map loop_str t.order))
    (String.concat ", " (List.map loop_str t.parallel))
