(** The compute-centric notation (Timeloop / Interstellar, paper
    Section II-C): loop tiling, reordering and parallelization
    directives, compiled into relation-centric dataflows.

    Demonstrates the Table I containment: every compute-centric schedule
    is a relation-centric dataflow (and is data-centric expressible); the
    converse fails for skewed dataflows. *)

type level = Full | Outer | Inner

type loop = { dim : string; level : level }

type t = {
  sname : string;
  tiles : (string * int) list;
  order : loop list;  (** sequential loops, outermost first *)
  parallel : loop list;  (** at most two loops unrolled onto the array *)
}

exception Ill_formed of string

val full : string -> loop
val outer : string -> loop
val inner : string -> loop

val make :
  ?name:string ->
  ?tiles:(string * int) list ->
  order:loop list ->
  parallel:loop list ->
  unit ->
  t

val to_dataflow : Tenet_ir.Tensor_op.t -> t -> Tenet_dataflow.Dataflow.t
(** Compile: parallel loops become space stamps, the sequential order
    becomes time stamps.  Raises {!Ill_formed} if some dim is not covered
    exactly once (as one Full loop or an Outer/Inner pair), a level
    refers to an untiled dim, or more than two loops are parallel. *)

val gemm_output_stationary : ?p:int -> unit -> t
val gemm_weight_stationary : ?p:int -> unit -> t
val conv_channel_parallel : ?p:int -> unit -> t

val to_string : t -> string
