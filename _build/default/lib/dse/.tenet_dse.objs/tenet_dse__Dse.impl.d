lib/dse/dse.ml: List Printf String Tenet_arch Tenet_dataflow Tenet_ir Tenet_isl Tenet_maestro Tenet_model Tenet_util
