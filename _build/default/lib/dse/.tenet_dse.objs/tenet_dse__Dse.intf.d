lib/dse/dse.mli: Tenet_arch Tenet_dataflow Tenet_ir Tenet_model
