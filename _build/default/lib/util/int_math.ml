let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

let lcm a b = if a = 0 || b = 0 then 0 else abs (a / gcd a b * b)

let fdiv a b =
  assert (b <> 0);
  let q = a / b and r = a mod b in
  if r <> 0 && (r < 0) <> (b < 0) then q - 1 else q

let fmod a b = a - (b * fdiv a b)

let cdiv a b = -fdiv (-a) b

let pow base e =
  assert (e >= 0);
  let rec go acc base e =
    if e = 0 then acc
    else if e land 1 = 1 then go (acc * base) (base * base) (e asr 1)
    else go acc (base * base) (e asr 1)
  in
  go 1 base e

let factorial n =
  assert (n >= 0);
  let rec go acc i = if i > n then acc else go (acc * i) (i + 1) in
  go 1 2

let binomial n k =
  if k < 0 || k > n then 0
  else begin
    let k = min k (n - k) in
    let rec go acc i = if i > k then acc else go (acc * (n - k + i) / i) (i + 1) in
    go 1 1
  end

let sum = List.fold_left ( + ) 0

let clamp ~lo ~hi v = if v < lo then lo else if v > hi then hi else v
