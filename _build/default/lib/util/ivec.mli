(** Small helpers on [int array] treated as integer vectors. *)

val zeros : int -> int array
val dot : int array -> int array -> int
val add : int array -> int array -> int array
val sub : int array -> int array -> int array
val scale : int -> int array -> int array
val neg : int array -> int array

val content : int array -> int
(** Gcd of all entries (non-negative); 0 for the zero vector. *)

val is_zero : int array -> bool

val compare_lex : int array -> int array -> int
(** Lexicographic comparison; arrays must have equal length. *)

val hash : int array -> int
val equal : int array -> int array -> bool
val to_string : int array -> string
