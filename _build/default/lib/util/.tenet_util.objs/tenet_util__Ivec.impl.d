lib/util/ivec.ml: Array Hashtbl Int_math String
