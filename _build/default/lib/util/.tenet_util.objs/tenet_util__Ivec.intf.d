lib/util/ivec.mli:
