lib/util/int_math.ml: List
