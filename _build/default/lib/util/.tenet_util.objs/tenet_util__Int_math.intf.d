lib/util/int_math.mli:
