(** Exact integer arithmetic helpers.

    All divisions here are the mathematical (floor/ceil) variants, which
    differ from OCaml's truncating [(/)] on negative operands.  Quasi-affine
    expressions in the polyhedral model are defined in terms of floor
    division, so these are used pervasively by {!Tenet_isl}. *)

val gcd : int -> int -> int
(** [gcd a b] is the non-negative greatest common divisor; [gcd 0 0 = 0]. *)

val lcm : int -> int -> int
(** [lcm a b] is the non-negative least common multiple. *)

val fdiv : int -> int -> int
(** [fdiv a b] is [floor (a / b)]. [b] must be non-zero. *)

val fmod : int -> int -> int
(** [fmod a b] is [a - b * fdiv a b]; always in [\[0, |b|)] for [b > 0]. *)

val cdiv : int -> int -> int
(** [cdiv a b] is [ceil (a / b)]. [b] must be non-zero. *)

val pow : int -> int -> int
(** [pow base e] for [e >= 0]. *)

val factorial : int -> int

val binomial : int -> int -> int
(** [binomial n k] is the number of [k]-subsets of an [n]-set. *)

val sum : int list -> int
val clamp : lo:int -> hi:int -> int -> int
