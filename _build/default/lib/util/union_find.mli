(** Imperative union-find over integers [0 .. n-1], used to split constraint
    systems into independent connected components before counting. *)

type t

val create : int -> t
val find : t -> int -> int
val union : t -> int -> int -> unit

val groups : t -> int list array
(** All equivalence classes, each as a sorted list of members.  The array is
    indexed arbitrarily (one entry per class). *)
