let zeros n = Array.make n 0

let dot a b =
  assert (Array.length a = Array.length b);
  let acc = ref 0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc + (a.(i) * b.(i))
  done;
  !acc

let add a b = Array.init (Array.length a) (fun i -> a.(i) + b.(i))
let sub a b = Array.init (Array.length a) (fun i -> a.(i) - b.(i))
let scale k a = Array.map (fun x -> k * x) a
let neg a = Array.map (fun x -> -x) a
let content a = Array.fold_left (fun g x -> Int_math.gcd g x) 0 a
let is_zero a = Array.for_all (fun x -> x = 0) a

let compare_lex a b =
  assert (Array.length a = Array.length b);
  let rec go i =
    if i = Array.length a then 0
    else
      let c = compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let hash a = Hashtbl.hash (Array.to_list a)
let equal a b = Array.length a = Array.length b && compare_lex a b = 0

let to_string a =
  "[" ^ String.concat "," (Array.to_list (Array.map string_of_int a)) ^ "]"
