lib/isl/printer.ml: Array Bset Buffer List Printf Space String
