lib/isl/count.ml: Array Bset Hashtbl List Option Printf Tenet_util
