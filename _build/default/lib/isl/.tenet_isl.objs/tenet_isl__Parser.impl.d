lib/isl/parser.ml: Aff Bset Buffer Fun List Map Printf Set Space String
