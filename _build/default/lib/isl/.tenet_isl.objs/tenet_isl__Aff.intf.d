lib/isl/aff.mli: Bset
