lib/isl/map.mli: Aff Bset Set Space
