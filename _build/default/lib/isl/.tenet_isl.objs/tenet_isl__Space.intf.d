lib/isl/space.mli:
