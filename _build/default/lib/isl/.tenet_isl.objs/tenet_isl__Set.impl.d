lib/isl/set.ml: Aff Array Bset Count List Printer Space
