lib/isl/space.ml: List String
