lib/isl/aff.ml: Array Bset Hashtbl List Stdlib Tenet_util
