lib/isl/parser.mli: Aff Map Set
