lib/isl/map.ml: Aff Array Bset Count List Printer Set Space String
