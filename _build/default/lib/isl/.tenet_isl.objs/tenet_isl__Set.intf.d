lib/isl/set.mli: Aff Bset Space
