lib/isl/bset.ml: Array List Option Tenet_util
