lib/isl/count.mli: Bset
