(** Integer sets: finite unions of basic sets (conjunctions of quasi-affine
    constraints) over one named space.

    This is the OCaml counterpart of isl's [isl_union_set] restricted to
    what TENET needs: bounded, parameter-free sets.  Cardinality ([card])
    is exact (see {!Count}). *)

type t

val space : t -> Space.t
val dim : t -> int

val of_bsets : Space.t -> Bset.t list -> t
val disjuncts : t -> Bset.t list

val empty : Space.t -> t
val universe : Space.t -> t

val box : Space.t -> (int * int) list -> t
(** [box space bounds] with inclusive per-dimension [(lo, hi)] bounds. *)

val point : Space.t -> int array -> t

val union : t -> t -> t
val intersect : t -> t -> t

val subtract : t -> t -> t
(** [subtract a b] is [a] minus [b].  The subtrahend must not contain free
    existentials (its floor-division dims are fine); raises
    [Invalid_argument] otherwise. *)

val card : t -> int
(** Exact number of integer points.  Raises {!Count.Unbounded} if some
    dimension is unbounded. *)

val is_empty : t -> bool
val mem : t -> int array -> bool
val sample : t -> int array option

val iter_points : (int array -> unit) -> t -> unit
(** Visit every point exactly once.  The callback's array is reused only
    across distinct calls, never mutated after being passed. *)

val project : keep:bool list -> t -> t
(** Existentially project away the dims where [keep] is [false]. *)

val fix : dim:int -> int -> t -> t
val lower_bound : dim:int -> int -> t -> t
val upper_bound : dim:int -> int -> t -> t

val constrain : ?eqs:Aff.t list -> ?ges:Aff.t list -> t -> t
(** Intersect with quasi-affine constraints over the space's dimension
    names ([eqs] must equal 0, [ges] must be non-negative). *)

val dim_bounds : dim:int -> t -> (int * int) option
(** Min and max value of a dimension over the set; [None] if empty. *)

val rename_dims : string list -> t -> t
val to_string : t -> string

val mem_fn : t -> int array -> bool
(** Precompiled membership tester; prefer over repeated {!mem} calls. *)

val is_subset : t -> t -> bool
(** [is_subset a b] iff every point of [a] is in [b].  The superset must
    satisfy {!subtract}'s restriction (no free existentials). *)

val equal_sets : t -> t -> bool
