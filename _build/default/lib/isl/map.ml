(* Integer relations: finite unions of basic relations between two named
   spaces.  A basic relation is stored as a {!Bset} over the concatenated
   (domain, range) dimensions. *)

type t = { dom : Space.t; ran : Space.t; disjuncts : Bset.t list }

let dom t = t.dom
let ran t = t.ran
let n_in t = Space.dim t.dom
let n_out t = Space.dim t.ran
let disjuncts t = t.disjuncts
let of_bsets dom ran disjuncts = { dom; ran; disjuncts }
let empty dom ran = { dom; ran; disjuncts = [] }

let universe dom ran =
  { dom; ran; disjuncts = [ Bset.universe (Space.dim dom + Space.dim ran) ] }

let check_same a b =
  if n_in a <> n_in b || n_out a <> n_out b then
    invalid_arg "Map: space mismatch"

let union a b =
  check_same a b;
  { a with disjuncts = a.disjuncts @ b.disjuncts }

let union_all = function
  | [] -> invalid_arg "Map.union_all: empty list"
  | m :: ms -> List.fold_left union m ms

let intersect a b =
  check_same a b;
  let ds =
    List.concat_map
      (fun da -> List.map (fun db -> Bset.meet da db) b.disjuncts)
      a.disjuncts
  in
  { a with disjuncts = ds }

let subtract a b =
  check_same a b;
  let sub_one pieces bb = List.concat_map (fun p -> Bset.subtract p bb) pieces in
  let ds = List.fold_left sub_one a.disjuncts b.disjuncts in
  { a with disjuncts = ds }

let reverse t =
  {
    dom = t.ran;
    ran = t.dom;
    disjuncts =
      List.map (Bset.swap_blocks ~n1:(n_in t) ~n2:(n_out t)) t.disjuncts;
  }

(* [apply_range a b] composes [a : X -> Y] with [b : Y -> Z] giving
   [X -> Z] (isl's [isl_union_map_apply_range]). *)
let apply_range a b =
  if n_out a <> n_in b then invalid_arg "Map.apply_range: space mismatch";
  let nx = n_in a and ny = n_out a and nz = n_out b in
  let ds =
    List.concat_map
      (fun da ->
        List.map (fun db -> Bset.compose ~nx ~ny ~nz da db) b.disjuncts)
      a.disjuncts
  in
  { dom = a.dom; ran = b.ran; disjuncts = ds }

(* Restrict the domain (resp. range) to a set. *)
let intersect_domain t (s : Set.t) =
  if Set.dim s <> n_in t then invalid_arg "Map.intersect_domain: arity";
  let ds =
    List.concat_map
      (fun d ->
        List.map
          (fun sb -> Bset.meet d (Bset.product sb (Bset.universe (n_out t))))
          (Set.disjuncts s))
      t.disjuncts
  in
  { t with disjuncts = ds }

let intersect_range t (s : Set.t) =
  if Set.dim s <> n_out t then invalid_arg "Map.intersect_range: arity";
  let ds =
    List.concat_map
      (fun d ->
        List.map
          (fun sb -> Bset.meet d (Bset.product (Bset.universe (n_in t)) sb))
          (Set.disjuncts s))
      t.disjuncts
  in
  { t with disjuncts = ds }

let domain t : Set.t =
  let keep = Array.init (n_in t + n_out t) (fun i -> i < n_in t) in
  Set.of_bsets t.dom
    (List.map (Bset.project ~keep) t.disjuncts)

let range t : Set.t =
  let keep = Array.init (n_in t + n_out t) (fun i -> i >= n_in t) in
  Set.of_bsets t.ran
    (List.map (Bset.project ~keep) t.disjuncts)

(* View the relation as a set of flattened (in, out) pairs. *)
let wrap t : Set.t =
  Set.of_bsets (Space.concat t.dom t.ran) t.disjuncts

let card t = Count.count_union t.disjuncts
let is_empty t = Count.is_empty_union t.disjuncts

let mem t ~src ~dst =
  Count.mem_union t.disjuncts (Array.append src dst)

let iter_pairs f t =
  let ni = n_in t in
  Count.iter_union t.disjuncts (fun p ->
      f (Array.sub p 0 ni) (Array.sub p ni (Array.length p - ni)))

(* The image of one point; for functional relations this has one element. *)
let image t (src : int array) : int array list =
  if Array.length src <> n_in t then invalid_arg "Map.image: arity";
  let fixed =
    List.map
      (fun b ->
        let b = ref b in
        Array.iteri (fun i v -> b := Bset.fix !b ~dim:i v) src;
        Bset.project
          ~keep:(Array.init (n_in t + n_out t) (fun i -> i >= n_in t))
          !b)
      t.disjuncts
  in
  let out = ref [] in
  Count.iter_union fixed (fun p -> out := Array.copy p :: !out);
  List.rev !out

(* Evaluate a functional relation at a point. *)
let eval t src =
  match image t src with
  | [ p ] -> Some p
  | [] -> None
  | _ :: _ :: _ -> invalid_arg "Map.eval: relation is not single-valued here"

(* A relation is single-valued iff each domain point has exactly one image,
   i.e. the pair count equals the domain count. *)
let is_single_valued t = Set.card (domain t) = card t

let is_injective t = Set.card (range t) = card t
let is_bijective_on_domain t = is_single_valued t && is_injective t

let fix_input ~dim v t =
  { t with disjuncts = List.map (fun b -> Bset.fix b ~dim v) t.disjuncts }

let fix_output ~dim v t =
  let d = n_in t + dim in
  { t with disjuncts = List.map (fun b -> Bset.fix b ~dim:d v) t.disjuncts }

(* Build a map from quasi-affine output expressions of the input dims:
   { dom -> ran : ran_i = expr_i(dom) } *)
let of_exprs dom ran (exprs : Aff.t list) =
  let ni = Space.dim dom and no = Space.dim ran in
  if List.length exprs <> no then invalid_arg "Map.of_exprs: arity";
  let ctx = Aff.make_ctx (ni + no) in
  let lookup name = Space.index dom name in
  let eqs =
    List.mapi
      (fun i e ->
        (* expr_i(dom) - out_i = 0 *)
        let l = Aff.lower ctx ~lookup e in
        Aff.lin_add l { Aff.terms = [ (ni + i, -1) ]; const = 0 })
      exprs
  in
  { dom; ran; disjuncts = [ Aff.to_bset ctx ~eqs ~ges:[] ] }

(* Add constraints written over the concatenated (dom, ran) dim names.
   Domain names take precedence on collision; range dims can be given
   distinct names by the caller. *)
let constrain ?(eqs = []) ?(ges = []) t =
  let names = t.dom.Space.dims @ t.ran.Space.dims in
  let lookup name =
    let rec go i = function
      | [] -> raise Not_found
      | d :: _ when String.equal d name -> i
      | _ :: rest -> go (i + 1) rest
    in
    go 0 names
  in
  let n = n_in t + n_out t in
  let ctx = Aff.make_ctx n in
  let leqs = List.map (Aff.lower ctx ~lookup) eqs in
  let lges = List.map (Aff.lower ctx ~lookup) ges in
  let extra = Aff.to_bset ctx ~eqs:leqs ~ges:lges in
  { t with disjuncts = List.map (fun b -> Bset.meet b extra) t.disjuncts }

let to_string t = Printer.map_to_string t.dom t.ran t.disjuncts

(* Precompiled membership tester over flattened (in, out) pairs. *)
let mem_fn t = Count.make_mem_union t.disjuncts
