(* A named tuple of dimensions, e.g. [S[i,j,k]] or [PE[x,y]]. *)

type t = { tuple : string; dims : string list }

let make tuple dims = { tuple; dims }
let dim t = List.length t.dims
let anonymous dims = { tuple = ""; dims }

let index t name =
  let rec go i = function
    | [] -> raise Not_found
    | d :: _ when String.equal d name -> i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 t.dims

let concat a b = { tuple = a.tuple ^ b.tuple; dims = a.dims @ b.dims }

let equal a b = String.equal a.tuple b.tuple && List.length a.dims = List.length b.dims

let to_string t =
  t.tuple ^ "[" ^ String.concat ", " t.dims ^ "]"

let rename_dims t dims =
  assert (List.length dims = List.length t.dims);
  { t with dims }
