(** Integer relations (maps) between two named spaces: finite unions of
    basic relations, mirroring isl's [isl_union_map].

    All four TENET relations — dataflow [Θ], data assignment [A_{D,F}],
    interconnection [I], and spacetime-map [M] — are values of this type.
    The metric formulas of the paper are direct combinations of
    {!reverse}, {!apply_range}, {!intersect} and {!card}. *)

type t

val dom : t -> Space.t
val ran : t -> Space.t
val n_in : t -> int
val n_out : t -> int

val of_bsets : Space.t -> Space.t -> Bset.t list -> t
val disjuncts : t -> Bset.t list
val empty : Space.t -> Space.t -> t
val universe : Space.t -> Space.t -> t

val of_exprs : Space.t -> Space.t -> Aff.t list -> t
(** [of_exprs dom ran exprs] is the graph [{ dom -> ran : ran_i =
    exprs_i(dom) }] (no domain constraints; intersect with a domain set as
    needed). *)

val union : t -> t -> t
val union_all : t list -> t
val intersect : t -> t -> t

val subtract : t -> t -> t
(** Set difference of the underlying pair sets; the subtrahend must not
    contain free existentials. *)

val reverse : t -> t
(** The inverse relation ([isl_union_map_reverse]). *)

val apply_range : t -> t -> t
(** [apply_range a b] composes [a : X -> Y] with [b : Y -> Z] into
    [X -> Z] ([isl_union_map_apply_range]).  The shared [Y] dimensions
    become existentials. *)

val intersect_domain : t -> Set.t -> t
val intersect_range : t -> Set.t -> t

val domain : t -> Set.t
val range : t -> Set.t

val wrap : t -> Set.t
(** View the relation as a set of flattened (in, out) pairs. *)

val card : t -> int
(** Exact number of pairs. *)

val is_empty : t -> bool
val mem : t -> src:int array -> dst:int array -> bool

val iter_pairs : (int array -> int array -> unit) -> t -> unit
(** Visit every (in, out) pair exactly once. *)

val image : t -> int array -> int array list
(** All images of one domain point. *)

val eval : t -> int array -> int array option
(** The unique image of a point, [None] if outside the domain; raises
    [Invalid_argument] if the relation is not single-valued there. *)

val is_single_valued : t -> bool
val is_injective : t -> bool
val is_bijective_on_domain : t -> bool

val fix_input : dim:int -> int -> t -> t
val fix_output : dim:int -> int -> t -> t

val constrain : ?eqs:Aff.t list -> ?ges:Aff.t list -> t -> t
(** Intersect with quasi-affine constraints over the concatenated
    (domain, range) dimension names; domain names win on collision. *)

val to_string : t -> string

val mem_fn : t -> int array -> bool
(** Precompiled membership tester over flattened (in, out) pairs. *)
