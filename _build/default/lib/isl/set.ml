(* Integer sets: finite unions of {!Bset} basic sets over one space. *)

type t = { space : Space.t; disjuncts : Bset.t list }

let space t = t.space
let dim t = Space.dim t.space
let of_bsets space disjuncts = { space; disjuncts }
let disjuncts t = t.disjuncts
let empty space = { space; disjuncts = [] }
let universe space = { space; disjuncts = [ Bset.universe (Space.dim space) ] }

let check_space a b =
  if Space.dim a.space <> Space.dim b.space then
    invalid_arg "Set: dimension mismatch"

(* A box [lo_i <= x_i <= hi_i] (inclusive on both ends). *)
let box space bounds =
  let n = Space.dim space in
  if List.length bounds <> n then invalid_arg "Set.box: arity mismatch";
  let b = ref (Bset.universe n) in
  List.iteri
    (fun i (lo, hi) ->
      b := Bset.lower_bound !b ~dim:i lo;
      b := Bset.upper_bound !b ~dim:i hi)
    bounds;
  { space; disjuncts = [ !b ] }

let point space coords =
  let n = Space.dim space in
  if Array.length coords <> n then invalid_arg "Set.point: arity mismatch";
  let b = ref (Bset.universe n) in
  Array.iteri (fun i v -> b := Bset.fix !b ~dim:i v) coords;
  { space; disjuncts = [ !b ] }

let union a b =
  check_space a b;
  { a with disjuncts = a.disjuncts @ b.disjuncts }

let intersect a b =
  check_space a b;
  let ds =
    List.concat_map
      (fun da -> List.map (fun db -> Bset.meet da db) b.disjuncts)
      a.disjuncts
  in
  { a with disjuncts = ds }

let subtract a b =
  check_space a b;
  (* a \ (b1 u b2 ...) = ((a \ b1) \ b2) ... *)
  let sub_one pieces bb =
    List.concat_map (fun p -> Bset.subtract p bb) pieces
  in
  let ds = List.fold_left sub_one a.disjuncts b.disjuncts in
  { a with disjuncts = ds }

let card t = Count.count_union t.disjuncts
let is_empty t = Count.is_empty_union t.disjuncts
let mem t p = Count.mem_union t.disjuncts p
let iter_points f t = Count.iter_union t.disjuncts f
let sample t = List.find_map Count.sample_bset t.disjuncts

(* Keep only the dims where [keep] is true; the rest are projected out. *)
let project ~keep t =
  let keep_arr = Array.of_list keep in
  if Array.length keep_arr <> dim t then invalid_arg "Set.project: arity";
  let dims' =
    List.filteri (fun i _ -> keep_arr.(i)) t.space.Space.dims
  in
  {
    space = { t.space with Space.dims = dims' };
    disjuncts = List.map (Bset.project ~keep:keep_arr) t.disjuncts;
  }

let fix ~dim v t =
  { t with disjuncts = List.map (fun b -> Bset.fix b ~dim v) t.disjuncts }

let lower_bound ~dim v t =
  { t with disjuncts = List.map (fun b -> Bset.lower_bound b ~dim v) t.disjuncts }

let upper_bound ~dim v t =
  { t with disjuncts = List.map (fun b -> Bset.upper_bound b ~dim v) t.disjuncts }

(* Add constraints given as quasi-affine expressions over the space's
   dimension names: [eqs] must equal 0, [ges] must be >= 0. *)
let constrain ?(eqs = []) ?(ges = []) t =
  let n = dim t in
  let lookup name = Space.index t.space name in
  let build () =
    let ctx = Aff.make_ctx n in
    let leqs = List.map (Aff.lower ctx ~lookup) eqs in
    let lges = List.map (Aff.lower ctx ~lookup) ges in
    Aff.to_bset ctx ~eqs:leqs ~ges:lges
  in
  let extra = build () in
  { t with disjuncts = List.map (fun b -> Bset.meet b extra) t.disjuncts }

let rename_dims names t = { t with space = Space.rename_dims t.space names }
let to_string t = Printer.set_to_string t.space t.disjuncts

(* Bounds of a dimension across the whole set (min, max); None if empty. *)
let dim_bounds ~dim t =
  let lo = ref max_int and hi = ref min_int in
  iter_points (fun p ->
      if p.(dim) < !lo then lo := p.(dim);
      if p.(dim) > !hi then hi := p.(dim))
    t;
  if !hi < !lo then None else Some (!lo, !hi)

(* Precompiled membership tester (compiles the constraint system once). *)
let mem_fn t = Count.make_mem_union t.disjuncts

let is_subset a b =
  check_space a b;
  is_empty (subtract a b)

let equal_sets a b = is_subset a b && is_subset b a
