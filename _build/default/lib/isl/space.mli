(** Named tuples of dimensions, e.g. [S[i,j,k]] or [PE[x,y]].

    A space names one side of a relation or the dimensions of a set; it
    carries no constraints. *)

type t = { tuple : string; dims : string list }

val make : string -> string list -> t
(** [make tuple dims] is the space [tuple\[dims\]]. *)

val anonymous : string list -> t
(** A space with an empty tuple name. *)

val dim : t -> int
(** Number of dimensions. *)

val index : t -> string -> int
(** Position of a dimension name; raises [Not_found]. *)

val concat : t -> t -> t
(** Concatenate dimension lists (used when wrapping a relation as a set). *)

val equal : t -> t -> bool
(** Same tuple name and arity. *)

val rename_dims : t -> string list -> t
(** Replace all dimension names; arity must match. *)

val to_string : t -> string
