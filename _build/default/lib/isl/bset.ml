(* Basic integer sets: conjunctions of (quasi-)affine constraints over a
   block of visible dimensions followed by a block of existential dimensions.

   Variable layout inside one basic set: indices [0, nvis) are the visible
   dimensions; indices [nvis, nvis + nex) are existentials.  An existential
   either carries a floor-division definition ([Some def], introduced when
   lowering `mod`/`floor` from quasi-affine expressions — such variables are
   functionally determined by earlier variables) or is free ([None],
   introduced by projection and relation composition).

   A point of the set is an assignment to the *visible* dimensions such that
   the existentials can be completed; all counting is over visible
   assignments (see {!Count}). *)

type con = {
  a : int array; (* coefficients, length nvars *)
  k : int; (* constant *)
  eq : bool; (* true: a.x + k = 0; false: a.x + k >= 0 *)
}

type def = {
  num : int array; (* length nvars; must reference only earlier variables *)
  dk : int;
  den : int; (* > 0: var = floor((num.x + dk) / den) *)
}

type t = { nvis : int; defs : def option array; cons : con list }

let nex t = Array.length t.defs
let nvars t = t.nvis + nex t

let universe nvis = { nvis; defs = [||]; cons = [] }

let con_ge a k = { a; k; eq = false }
let con_eq a k = { a; k; eq = true }

let add_cons t cons =
  List.iter (fun c -> assert (Array.length c.a = nvars t)) cons;
  { t with cons = cons @ t.cons }

(* Remap a constraint/def into a wider variable space via an index map. *)
let remap_array ~nvars' ~perm a =
  let a' = Array.make nvars' 0 in
  Array.iteri (fun i c -> if c <> 0 then a'.(perm i) <- c) a;
  a'

let remap_con ~nvars' ~perm c = { c with a = remap_array ~nvars' ~perm c.a }

let remap_def ~nvars' ~perm d =
  { d with num = remap_array ~nvars' ~perm d.num }

(* Intersection of two basic sets over the same visible dimensions. *)
let meet a b =
  assert (a.nvis = b.nvis);
  let nvis = a.nvis in
  let nexa = nex a and nexb = nex b in
  let nvars' = nvis + nexa + nexb in
  let perm_a i = i (* visible and a's exes keep their indices *) in
  let perm_b i = if i < nvis then i else i + nexa in
  let defs =
    Array.append
      (Array.map (Option.map (remap_def ~nvars' ~perm:perm_a)) a.defs)
      (Array.map (Option.map (remap_def ~nvars' ~perm:perm_b)) b.defs)
  in
  let cons =
    List.map (remap_con ~nvars' ~perm:perm_a) a.cons
    @ List.map (remap_con ~nvars' ~perm:perm_b) b.cons
  in
  { nvis; defs; cons }

(* Cartesian product: visible dims of [a] followed by visible dims of [b]. *)
let product a b =
  let nvis = a.nvis + b.nvis in
  let nexa = nex a and nexb = nex b in
  let nvars' = nvis + nexa + nexb in
  let perm_a i = if i < a.nvis then i else a.nvis + b.nvis + (i - a.nvis) in
  let perm_b i =
    if i < b.nvis then a.nvis + i else nvis + nexa + (i - b.nvis)
  in
  let defs =
    Array.append
      (Array.map (Option.map (remap_def ~nvars' ~perm:perm_a)) a.defs)
      (Array.map (Option.map (remap_def ~nvars' ~perm:perm_b)) b.defs)
  in
  let cons =
    List.map (remap_con ~nvars' ~perm:perm_a) a.cons
    @ List.map (remap_con ~nvars' ~perm:perm_b) b.cons
  in
  { nvis; defs; cons }

(* Relation composition on flattened relations: [a] is over (x, y) with
   [nx + ny] visible dims, [b] over (y, z) with [ny + nz]; the result is over
   (x, z) with the shared y block turned into free existentials. *)
let compose ~nx ~ny ~nz a b =
  assert (a.nvis = nx + ny);
  assert (b.nvis = ny + nz);
  let nvis = nx + nz in
  let nexa = nex a and nexb = nex b in
  let nvars' = nvis + ny + nexa + nexb in
  let perm_a i =
    if i < nx then i
    else if i < nx + ny then nvis + (i - nx) (* y *)
    else nvis + ny + (i - (nx + ny))
  in
  let perm_b i =
    if i < ny then nvis + i (* y *)
    else if i < ny + nz then nx + (i - ny) (* z *)
    else nvis + ny + nexa + (i - (ny + nz))
  in
  let defs =
    Array.concat
      [
        Array.make ny None;
        Array.map (Option.map (remap_def ~nvars' ~perm:perm_a)) a.defs;
        Array.map (Option.map (remap_def ~nvars' ~perm:perm_b)) b.defs;
      ]
  in
  let cons =
    List.map (remap_con ~nvars' ~perm:perm_a) a.cons
    @ List.map (remap_con ~nvars' ~perm:perm_b) b.cons
  in
  { nvis; defs; cons }

(* Project away the visible dims where [keep] is false; they become free
   existentials. *)
let project ~keep t =
  assert (Array.length keep = t.nvis);
  let kept = ref [] and dropped = ref [] in
  for i = t.nvis - 1 downto 0 do
    if keep.(i) then kept := i :: !kept else dropped := i :: !dropped
  done;
  let kept = Array.of_list !kept and dropped = Array.of_list !dropped in
  let nvis' = Array.length kept in
  let nvars' = nvars t in
  let perm_tbl = Array.make nvars' 0 in
  Array.iteri (fun rank old -> perm_tbl.(old) <- rank) kept;
  Array.iteri (fun rank old -> perm_tbl.(old) <- nvis' + rank) dropped;
  for i = t.nvis to nvars' - 1 do
    perm_tbl.(i) <- i
  done;
  let perm i = perm_tbl.(i) in
  let defs =
    Array.append
      (Array.make (Array.length dropped) None)
      (Array.map (Option.map (remap_def ~nvars' ~perm)) t.defs)
  in
  let cons = List.map (remap_con ~nvars' ~perm) t.cons in
  { nvis = nvis'; defs; cons }

(* Reorder the visible dims according to [perm_vis]: new dim [i] is old dim
   [perm_vis.(i)]. *)
let permute_vis ~perm_vis t =
  assert (Array.length perm_vis = t.nvis);
  let inv = Array.make t.nvis 0 in
  Array.iteri (fun newi oldi -> inv.(oldi) <- newi) perm_vis;
  let nvars' = nvars t in
  let perm i = if i < t.nvis then inv.(i) else i in
  {
    t with
    defs = Array.map (Option.map (remap_def ~nvars' ~perm)) t.defs;
    cons = List.map (remap_con ~nvars' ~perm) t.cons;
  }

(* Swap the two visible blocks (used by Map.reverse). *)
let swap_blocks ~n1 ~n2 t =
  assert (t.nvis = n1 + n2);
  let perm_vis =
    Array.init t.nvis (fun i -> if i < n2 then n1 + i else i - n2)
  in
  permute_vis ~perm_vis t

let fix t ~dim v =
  assert (dim >= 0 && dim < t.nvis);
  let a = Array.make (nvars t) 0 in
  a.(dim) <- 1;
  add_cons t [ con_eq a (-v) ]

let lower_bound t ~dim v =
  let a = Array.make (nvars t) 0 in
  a.(dim) <- 1;
  add_cons t [ con_ge a (-v) ]

let upper_bound t ~dim v =
  let a = Array.make (nvars t) 0 in
  a.(dim) <- -1;
  add_cons t [ con_ge a v ]

let has_free_ex t = Array.exists Option.is_none t.defs

(* Complement-based subtraction: [a \ b], where [b] must have no free
   existentials (its divs are functional, so negating its constraints while
   keeping the div definitions is sound).  Returns a list of pairwise
   disjoint basic sets. *)
let subtract a b =
  assert (a.nvis = b.nvis);
  if has_free_ex b then
    invalid_arg "Bset.subtract: subtrahend has free existentials";
  let negate_con c =
    (* not (a.x + k >= 0)  <=>  -a.x - k - 1 >= 0 *)
    [ con_ge (Tenet_util.Ivec.neg c.a) (-c.k - 1) ]
  in
  let negations c =
    if c.eq then
      negate_con { c with eq = false }
      @ negate_con { a = Tenet_util.Ivec.neg c.a; k = -c.k; eq = false }
    else negate_con c
  in
  let bcons = Array.of_list b.cons in
  let n = Array.length bcons in
  let pieces = ref [] in
  for i = n - 1 downto 0 do
    (* a /\ c_0 /\ ... /\ c_{i-1} /\ not c_i *)
    let prefix = Array.to_list (Array.sub bcons 0 i) in
    let keep_pos = { b with cons = prefix } in
    List.iter
      (fun neg ->
        let piece = meet a (add_cons keep_pos [ neg ]) in
        pieces := piece :: !pieces)
      (negations bcons.(i))
  done;
  !pieces
