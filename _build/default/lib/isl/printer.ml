(* Rendering of basic sets and relations in ISL-like syntax.

   Defined div dimensions are inlined as [floor((...)/d)] expressions;
   free existentials are named [e0, e1, ...] and introduced with
   [exists]. *)

let term_to_string name coeff first =
  if coeff = 0 then ""
  else begin
    let sign =
      if first then (if coeff < 0 then "-" else "")
      else if coeff < 0 then " - "
      else " + "
    in
    let mag = abs coeff in
    if mag = 1 then sign ^ name
    else sign ^ string_of_int mag ^ "*" ^ name
  end

(* Names for all variables of a basic set: visible names then existential
   names; defined divs render as their floor expression. *)
let var_names (names : string list) (b : Bset.t) : string array =
  let nvars = Bset.nvars b in
  let out = Array.make nvars "" in
  List.iteri (fun i n -> out.(i) <- n) names;
  (* Defined divs may reference earlier existentials, so fill in order. *)
  Array.iteri
    (fun e def ->
      let v = b.Bset.nvis + e in
      match def with
      | None -> out.(v) <- Printf.sprintf "e%d" e
      | Some (d : Bset.def) ->
          let buf = Buffer.create 32 in
          let first = ref true in
          Array.iteri
            (fun i c ->
              if c <> 0 then begin
                Buffer.add_string buf (term_to_string out.(i) c !first);
                first := false
              end)
            d.Bset.num;
          if d.Bset.dk <> 0 || !first then begin
            let k = d.Bset.dk in
            if !first then Buffer.add_string buf (string_of_int k)
            else if k > 0 then Buffer.add_string buf (" + " ^ string_of_int k)
            else Buffer.add_string buf (" - " ^ string_of_int (-k))
          end;
          out.(v) <-
            Printf.sprintf "floor((%s)/%d)" (Buffer.contents buf) d.Bset.den)
    b.Bset.defs;
  out

let con_to_string names (c : Bset.con) =
  let buf = Buffer.create 32 in
  let first = ref true in
  Array.iteri
    (fun i coeff ->
      if coeff <> 0 then begin
        Buffer.add_string buf (term_to_string names.(i) coeff !first);
        first := false
      end)
    c.Bset.a;
  if !first then Buffer.add_string buf "0";
  let k = c.Bset.k in
  if k > 0 then Buffer.add_string buf (" + " ^ string_of_int k)
  else if k < 0 then Buffer.add_string buf (" - " ^ string_of_int (-k));
  Buffer.add_string buf (if c.Bset.eq then " = 0" else " >= 0");
  Buffer.contents buf

let bset_body names (b : Bset.t) =
  let vnames = var_names names b in
  let frees = ref [] in
  Array.iteri
    (fun e def -> if def = None then frees := Printf.sprintf "e%d" e :: !frees)
    b.Bset.defs;
  let cons = List.map (con_to_string vnames) b.Bset.cons in
  let body = String.concat " and " cons in
  match (!frees, cons) with
  | [], [] -> ""
  | [], _ -> body
  | fs, _ ->
      Printf.sprintf "exists %s: %s" (String.concat ", " (List.rev fs))
        (if cons = [] then "true" else body)

let tuple_to_string (sp : Space.t) =
  sp.Space.tuple ^ "[" ^ String.concat ", " sp.Space.dims ^ "]"

let set_to_string (sp : Space.t) (ds : Bset.t list) =
  let head = tuple_to_string sp in
  match ds with
  | [] -> Printf.sprintf "{ %s : false }" head
  | _ ->
      let pieces =
        List.map
          (fun b ->
            let body = bset_body sp.Space.dims b in
            if body = "" then head else head ^ " : " ^ body)
          ds
      in
      "{ " ^ String.concat "; " pieces ^ " }"

let map_to_string (dom : Space.t) (ran : Space.t) (ds : Bset.t list) =
  let head = tuple_to_string dom ^ " -> " ^ tuple_to_string ran in
  let names = dom.Space.dims @ ran.Space.dims in
  match ds with
  | [] -> Printf.sprintf "{ %s : false }" head
  | _ ->
      let pieces =
        List.map
          (fun b ->
            let body = bset_body names b in
            if body = "" then head else head ^ " : " ^ body)
          ds
      in
      "{ " ^ String.concat "; " pieces ^ " }"
