(* The dataflow relation Θ (Definition 1): a quasi-affine assignment of
   each loop instance to a spacetime-stamp (PE[p] | T[t]).

   Space-stamp and time-stamp coordinates are quasi-affine expressions of
   the loop iterators; the spacetime tuple is flattened into one range
   space [ST[p..., t...]] for relation algebra. *)

module Isl = Tenet_isl
module Ir = Tenet_ir
module Arch = Tenet_arch

type t = {
  name : string;
  space : Isl.Aff.t list; (* PE coordinates *)
  time : Isl.Aff.t list; (* execution sequence, lexicographic *)
}

let make ~name ~space ~time = { name; space; time }

let n_space t = List.length t.space
let n_time t = List.length t.time

let space_dim_names t = List.init (n_space t) (fun i -> Printf.sprintf "p%d" i)
let time_dim_names t = List.init (n_time t) (fun i -> Printf.sprintf "t%d" i)

let st_space t : Isl.Space.t =
  Isl.Space.make "ST" (space_dim_names t @ time_dim_names t)

(* Θ = { S[n] -> ST[p..., t...] } restricted to the iteration domain. *)
let theta (op : Ir.Tensor_op.t) (df : t) : Isl.Map.t =
  let used =
    List.concat_map Isl.Aff.free_vars (df.space @ df.time)
  in
  let known = Ir.Tensor_op.iter_names op in
  List.iter
    (fun v ->
      if not (List.mem v known) then
        invalid_arg
          (Printf.sprintf "Dataflow.theta: %s references unknown iterator %s"
             df.name v))
    used;
  Isl.Map.intersect_domain
    (Isl.Map.of_exprs (Ir.Tensor_op.space op) (st_space df)
       (df.space @ df.time))
    (Ir.Tensor_op.domain op)

(* Data assignment A_{D,F} = Θ⁻¹ . A_{S,F} (Definition 2). *)
let data_assignment (op : Ir.Tensor_op.t) (df : t) (tensor : string) :
    Isl.Map.t =
  Isl.Map.apply_range (Isl.Map.reverse (theta op df))
    (Ir.Tensor_op.access_map op tensor)

(* Per-dimension inclusive intervals of the time stamps over the iteration
   box (used to build lexicographic successor relations). *)
let time_bounds (op : Ir.Tensor_op.t) (df : t) : (int * int) list =
  let env v = Ir.Tensor_op.iter_bounds op v in
  List.map (Isl.Aff.interval env) df.time

let space_bounds (op : Ir.Tensor_op.t) (df : t) : (int * int) list =
  let env v = Ir.Tensor_op.iter_bounds op v in
  List.map (Isl.Aff.interval env) df.space

(* ------------------------------------------------------------------ *)
(* Validation.                                                         *)
(* ------------------------------------------------------------------ *)

type violation =
  | Out_of_array of string (* a space stamp escapes the PE array *)
  | Pe_conflict of string (* two instances share a spacetime-stamp *)
  | Rank_mismatch of string

let violation_to_string = function
  | Out_of_array s | Pe_conflict s | Rank_mismatch s -> s

(* A dataflow is valid on an architecture iff (1) the space-stamp rank
   matches the PE array rank, (2) every instance lands inside the array,
   and (3) no two instances share a spacetime-stamp (each PE has one MAC).

   The bounds check uses interval analysis (exact for box domains); the
   conflict check compares card(range Θ) against card(D_S). *)
let validate (op : Ir.Tensor_op.t) (df : t) (pe : Arch.Pe_array.t) :
    (unit, violation) result =
  if n_space df <> Arch.Pe_array.rank pe then
    Error
      (Rank_mismatch
         (Printf.sprintf "%s: space-stamp rank %d vs PE array rank %d" df.name
            (n_space df) (Arch.Pe_array.rank pe)))
  else begin
    let dims = Arch.Pe_array.dims pe in
    let bad = ref None in
    List.iteri
      (fun i (lo, hi) ->
        if !bad = None && (lo < 0 || hi >= dims.(i)) then
          bad :=
            Some
              (Printf.sprintf
                 "%s: space dim %d spans [%d, %d] outside [0, %d)" df.name i
                 lo hi dims.(i)))
      (space_bounds op df);
    match !bad with
    | Some msg -> Error (Out_of_array msg)
    | None ->
        let th = theta op df in
        let pairs = Isl.Map.card th in
        let stamps = Isl.Set.card (Isl.Map.range th) in
        if stamps <> pairs then
          Error
            (Pe_conflict
               (Printf.sprintf
                  "%s: %d instances map to %d spacetime-stamps" df.name pairs
                  stamps))
        else Ok ()
  end

let to_string df =
  let s = String.concat ", " (List.map Isl.Aff.to_string df.space) in
  let t = String.concat ", " (List.map Isl.Aff.to_string df.time) in
  Printf.sprintf "%s: PE[%s] | T[%s]" df.name s t
