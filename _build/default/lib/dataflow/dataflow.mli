(** The dataflow relation Θ (Definition 1 of the paper): a quasi-affine
    assignment of each loop instance to a spacetime-stamp
    [(PE[p] | T[t])]. *)

module Isl = Tenet_isl
module Ir = Tenet_ir
module Arch = Tenet_arch

type t = {
  name : string;
  space : Isl.Aff.t list;  (** PE coordinates *)
  time : Isl.Aff.t list;  (** execution order, compared lexicographically *)
}

val make : name:string -> space:Isl.Aff.t list -> time:Isl.Aff.t list -> t

val n_space : t -> int
val n_time : t -> int

val st_space : t -> Isl.Space.t
(** The flattened spacetime space [ST[p0.., t0..]]. *)

val theta : Ir.Tensor_op.t -> t -> Isl.Map.t
(** [Θ = { S[n] -> ST[p, t] }] restricted to the iteration domain.
    Raises [Invalid_argument] if a stamp references an unknown
    iterator. *)

val data_assignment : Ir.Tensor_op.t -> t -> string -> Isl.Map.t
(** [A_{D,F} = Θ⁻¹ . A_{S,F}] (Definition 2). *)

val time_bounds : Ir.Tensor_op.t -> t -> (int * int) list
(** Inclusive per-dimension intervals of the time stamps over the
    iteration box (interval analysis; exact for box domains). *)

val space_bounds : Ir.Tensor_op.t -> t -> (int * int) list

type violation =
  | Out_of_array of string
  | Pe_conflict of string
  | Rank_mismatch of string

val violation_to_string : violation -> string

val validate :
  Ir.Tensor_op.t -> t -> Arch.Pe_array.t -> (unit, violation) result
(** A dataflow is valid iff the space-stamp rank matches the array, every
    instance lands inside it, and no two instances share a
    spacetime-stamp (one MAC per PE per cycle). *)

val to_string : t -> string
