lib/dataflow/spacetime.mli: Dataflow Tenet_arch Tenet_ir Tenet_isl
