lib/dataflow/spacetime.ml: Array Dataflow List Tenet_arch Tenet_ir Tenet_isl
