lib/dataflow/dataflow.ml: Array List Printf String Tenet_arch Tenet_ir Tenet_isl
