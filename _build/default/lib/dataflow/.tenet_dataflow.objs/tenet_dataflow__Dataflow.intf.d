lib/dataflow/dataflow.mli: Tenet_arch Tenet_ir Tenet_isl
