lib/dataflow/zoo.mli: Dataflow
