lib/dataflow/zoo.ml: Dataflow Tenet_isl
