(* The data-centric notation of MAESTRO (Kwon et al., MICRO'19 / IEEE
   Micro'20): an ordered list of mapping directives.

   SpatialMap(size, offset) dim  distributes [dim] across PEs in chunks of
   [size] advancing by [offset]; TemporalMap(size, offset) dim iterates
   [dim] across time-steps; Cluster(n) splits the PE array into groups of
   [n], with directives below it applying inside a group.

   Expressiveness limits reproduced here (paper Section II-C): every
   mapped entity is a *single* loop dimension — no affine combination, no
   skewing, no mapping several loop dims onto one PE dim without an
   explicit Cluster. *)

type directive =
  | Spatial_map of { size : int; offset : int; dim : string }
  | Temporal_map of { size : int; offset : int; dim : string }
  | Cluster of int

type t = { name : string; directives : directive list }

let make ~name directives = { name; directives }

let spatial ?(size = 1) ?(offset = 1) dim = Spatial_map { size; offset; dim }
let temporal ?(size = 1) ?(offset = 1) dim = Temporal_map { size; offset; dim }
let cluster n = Cluster n

let directive_to_string = function
  | Spatial_map { size; offset; dim } ->
      Printf.sprintf "SpatialMap(%d,%d) %s" size offset dim
  | Temporal_map { size; offset; dim } ->
      Printf.sprintf "TemporalMap(%d,%d) %s" size offset dim
  | Cluster n -> Printf.sprintf "Cluster(%d, P)" n

let to_string t =
  t.name ^ ": "
  ^ String.concat "; " (List.map directive_to_string t.directives)

let spatial_dims t =
  List.filter_map
    (function Spatial_map { dim; _ } -> Some dim | _ -> None)
    t.directives

let temporal_dims t =
  List.filter_map
    (function Temporal_map { dim; _ } -> Some dim | _ -> None)
    t.directives

(* The innermost temporal dimension (last temporal directive), which is
   the only one MAESTRO's reuse polynomial inspects (Section VI-E). *)
let innermost_temporal t =
  List.fold_left
    (fun acc d ->
      match d with Temporal_map { dim; _ } -> Some dim | _ -> acc)
    None t.directives

let mapped_dims t = spatial_dims t @ temporal_dims t

(* Design-space size of the data-centric notation under the paper's
   Section IV-A assumptions (size = offset = 1, two SpatialMaps on a 2D
   array): n! orders x C(n,2) choices of the spatial pair = n!*C(n,2).
   The paper quotes this as O(n! * C(n,2)); for GEMM (n = 3) it evaluates
   the variant with one spatial dim: 3! * 3 = 18. *)
let design_space_size ~n_loops ~n_spatial =
  Tenet_util.Int_math.factorial n_loops
  * Tenet_util.Int_math.binomial n_loops n_spatial
