(* The data-centric mappings printed in Table III for the dataflows that
   the notation can express ("x" rows in the table have no equivalent:
   they need affine transformations).  Sizes come from the tensor op at
   construction time. *)

module Ir = Tenet_ir
open Notation

let sz op d =
  let lo, hi = Ir.Tensor_op.iter_bounds op d in
  hi - lo + 1

(* --- GEMM --- *)

let gemm_k_p_ij_t =
  make ~name:"(K-P | I,J-T)" [ spatial "k"; temporal "i"; temporal "j" ]

let gemm_j_p_ik_t =
  make ~name:"(J-P | I,K-T)" [ spatial "j"; temporal "i"; temporal "k" ]

(* --- 2D-CONV --- *)

let conv_k_p_ox_oy_t op =
  make ~name:"(K-P | OX,OY-T)"
    [
      spatial "k";
      temporal "c";
      temporal ~size:(sz op "rx") "ox";
      temporal ~size:(sz op "ry") "oy";
      temporal ~size:(sz op "ry") ~offset:(sz op "ry") "ry";
      temporal ~size:(sz op "rx") ~offset:(sz op "rx") "rx";
    ]

let conv_c_p_oy_ox_t op =
  make ~name:"(C-P | OY,OX-T)"
    [
      spatial "c";
      temporal "k";
      temporal ~size:(sz op "ry") "oy";
      temporal ~size:(sz op "rx") "ox";
      temporal ~size:(sz op "ry") ~offset:(sz op "ry") "ry";
      temporal ~size:(sz op "rx") ~offset:(sz op "rx") "rx";
    ]

(* Eyeriss row-stationary, as printed in Table III (two cluster levels
   flattened: the analytical model reads the directive list linearly). *)
let conv_eyeriss_rs op =
  make ~name:"(RYOY-P | OY,OX-T)"
    [
      temporal ~size:4 ~offset:4 "c";
      temporal ~size:16 ~offset:16 "k";
      spatial ~size:(sz op "ry") "oy";
      temporal ~size:(sz op "rx") "ox";
      cluster (sz op "ry");
      temporal "c";
      temporal "k";
      spatial "oy";
      spatial "ry";
    ]

(* ShiDianNao output-stationary (Table III). *)
let conv_shidiannao op =
  make ~name:"(OYOX-P | OY,OX-T)"
    [
      temporal "k";
      temporal "c";
      spatial ~size:(sz op "ry") "oy";
      temporal ~size:10 ~offset:8 "ox";
      temporal ~size:(sz op "ry") ~offset:(sz op "ry") "ry";
      temporal ~size:(sz op "rx") ~offset:(sz op "rx") "rx";
      cluster 8;
      spatial ~size:(sz op "rx") "ox";
    ]

(* NVDLA-style (Table III). *)
let conv_nvdla op =
  make ~name:"(KC-P | OY,OX-T)"
    [
      spatial "k";
      temporal ~size:8 ~offset:8 "c";
      temporal ~size:(sz op "ry") ~offset:(sz op "ry") "ry";
      temporal ~size:(sz op "rx") ~offset:(sz op "rx") "rx";
      temporal ~size:(sz op "ry") "oy";
      temporal ~size:(sz op "rx") "ox";
      cluster 8;
      spatial "c";
    ]

(* --- 1D-CONV of Figure 1 --- *)

let conv1d_fig1 =
  make ~name:"Fig1 (I-Sp, J-Tp)" [ spatial "i"; temporal "j" ]
