lib/maestro/analytical.ml: Float Hashtbl List Notation String Tenet_arch Tenet_ir Tenet_isl
