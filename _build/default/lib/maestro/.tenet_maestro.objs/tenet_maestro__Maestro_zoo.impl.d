lib/maestro/maestro_zoo.ml: Notation Tenet_ir
