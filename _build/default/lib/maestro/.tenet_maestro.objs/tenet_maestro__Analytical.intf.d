lib/maestro/analytical.mli: Notation Tenet_arch Tenet_ir
