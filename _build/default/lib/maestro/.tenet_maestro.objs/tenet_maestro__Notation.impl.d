lib/maestro/notation.ml: List Printf String Tenet_util
