lib/maestro/notation.mli:
