(* A MAESTRO-style analytical performance model: closed-form polynomials
   over mapping-directive parameters, deliberately reproducing the
   approximations the paper criticizes (Sections II-C and VI-E):

   - tensor footprints are products of the sizes of the *base* dimension
     of each subscript, so compound subscripts like [ox + rx] are treated
     as [ox] (Figure 1's reuse of A: estimated 8, actual 6);
   - temporal reuse only considers the innermost TemporalMap dimension;
   - outputs are reported with no reuse at all ("MAESTRO reports no reuse
     for the output array in all circumstances");
   - PE utilization is the polynomial spatial-ways / PEs, blind to
     pipeline fill/drain and skew.

   The model is orders of magnitude cheaper to evaluate than relation
   counting, which is the Figure 8 runtime trade-off. *)

module Ir = Tenet_ir
module Arch = Tenet_arch

type tensor_report = {
  tensor : string;
  direction : Ir.Tensor_op.direction;
  reuse_factor : float; (* as reported by the reuse analysis *)
  traffic : float; (* words moved to/from scratchpad *)
}

type report = {
  mapping : string;
  latency : float;
  compute_cycles : float;
  io_cycles : float;
  utilization : float;
  per_tensor : tensor_report list;
}

(* Number of chunks a directive walks for a dimension of size [s]. *)
let ways ~size ~offset s =
  if s <= size then 1 else 1 + ((s - size + offset - 1) / offset)

(* The base dimension of a subscript: the first loop variable occurring in
   it.  [A(c, ox+rx, oy+ry)] has base dims {c, ox, oy}. *)
let base_dims (op : Ir.Tensor_op.t) tensor : string list =
  let accs = Ir.Tensor_op.accesses_of op tensor in
  let of_sub sub =
    match Tenet_isl.Aff.free_vars sub with v :: _ -> Some v | [] -> None
  in
  List.sort_uniq String.compare
    (List.concat_map
       (fun (a : Ir.Tensor_op.access) ->
         List.filter_map of_sub a.Ir.Tensor_op.subscripts)
       accs)

let dim_size op d =
  let lo, hi = Ir.Tensor_op.iter_bounds op d in
  hi - lo + 1

let analyze (spec : Arch.Spec.t) (op : Ir.Tensor_op.t)
    (mapping : Notation.t) : report =
  let pes = Arch.Pe_array.size spec.Arch.Spec.pe in
  let dims_mapped = Notation.mapped_dims mapping in
  (* every loop dim must be covered by a directive or it is iterated
     sequentially inside the PE *)
  let residual =
    List.fold_left
      (fun acc it ->
        if List.mem it.Ir.Tensor_op.iname dims_mapped then acc
        else acc * Ir.Tensor_op.extent it)
      1 op.Ir.Tensor_op.iters
  in
  (* A dimension may be mapped at several cluster levels (e.g. the
     Eyeriss mapping tiles C twice); its combined ways are capped at the
     dimension size, and a dimension touched by any SpatialMap counts as
     spatially distributed. *)
  let per_dim : (string, int * bool) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun d ->
      let update dim w spatial =
        let prev_w, prev_s =
          try Hashtbl.find per_dim dim with Not_found -> (1, false)
        in
        Hashtbl.replace per_dim dim
          (min (dim_size op dim) (prev_w * w), prev_s || spatial)
      in
      match d with
      | Notation.Spatial_map { size; offset; dim } ->
          update dim (ways ~size ~offset (dim_size op dim)) true
      | Notation.Temporal_map { size; offset; dim } ->
          update dim (ways ~size ~offset (dim_size op dim)) false
      | Notation.Cluster _ -> ())
    mapping.Notation.directives;
  let spatial_ways, temporal_steps =
    Hashtbl.fold
      (fun _dim (w, spatial) (s, t) ->
        if spatial then (s * w, t) else (s, t * w))
      per_dim (1, 1)
  in
  let passes = max 1 ((spatial_ways + pes - 1) / pes) in
  let utilization =
    float_of_int spatial_ways /. float_of_int (passes * pes)
  in
  let compute_cycles =
    float_of_int (passes * temporal_steps * residual)
  in
  let n_instances = float_of_int (Ir.Tensor_op.n_instances op) in
  let spatial_dims = Notation.spatial_dims mapping in
  let innermost_t = Notation.innermost_temporal mapping in
  let per_tensor =
    List.map
      (fun tensor ->
        let dirn =
          if List.mem tensor (Ir.Tensor_op.outputs op) then
            Ir.Tensor_op.Write
          else Ir.Tensor_op.Read
        in
        let bases = base_dims op tensor in
        let spatial_factor =
          List.fold_left
            (fun acc d ->
              if List.mem d bases then acc
              else acc *. float_of_int (dim_size op d))
            1. spatial_dims
        in
        let temporal_factor =
          match innermost_t with
          | Some d when not (List.mem d bases) ->
              float_of_int (dim_size op d)
          | _ -> 1.
        in
        let reuse_factor =
          match dirn with
          | Ir.Tensor_op.Write -> 1. (* outputs: no reuse reported *)
          | Ir.Tensor_op.Read -> spatial_factor *. temporal_factor
        in
        (* scratchpad traffic estimate: polynomial footprint for outputs,
           accesses / reuse for inputs *)
        let traffic =
          match dirn with
          | Ir.Tensor_op.Write ->
              List.fold_left
                (fun acc d -> acc *. float_of_int (dim_size op d))
                1. bases
          | Ir.Tensor_op.Read -> n_instances /. reuse_factor
        in
        { tensor; direction = dirn; reuse_factor; traffic })
      (Ir.Tensor_op.tensors op)
  in
  let io_words =
    List.fold_left (fun acc tr -> acc +. tr.traffic) 0. per_tensor
  in
  let io_cycles = io_words /. float_of_int spec.Arch.Spec.bandwidth in
  {
    mapping = mapping.Notation.name;
    latency = Float.max compute_cycles io_cycles;
    compute_cycles;
    io_cycles;
    utilization;
    per_tensor;
  }

let find_tensor r name =
  List.find (fun tr -> String.equal tr.tensor name) r.per_tensor
