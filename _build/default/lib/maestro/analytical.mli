(** A MAESTRO-style analytical model: closed-form polynomials over
    mapping parameters, deliberately reproducing the approximations the
    paper criticizes — compound subscripts reduced to their base dim
    (Figure 1's 8-vs-6 reuse), innermost-temporal-only reuse, no output
    reuse ever, and a utilization polynomial blind to skew and pipeline
    effects.  Evaluation cost is microseconds (the Figure 8 trade-off). *)

type tensor_report = {
  tensor : string;
  direction : Tenet_ir.Tensor_op.direction;
  reuse_factor : float;
  traffic : float;
}

type report = {
  mapping : string;
  latency : float;
  compute_cycles : float;
  io_cycles : float;
  utilization : float;
  per_tensor : tensor_report list;
}

val ways : size:int -> offset:int -> int -> int
(** Number of chunks a directive walks over a dimension. *)

val base_dims : Tenet_ir.Tensor_op.t -> string -> string list
val analyze : Tenet_arch.Spec.t -> Tenet_ir.Tensor_op.t -> Notation.t -> report
val find_tensor : report -> string -> tensor_report
