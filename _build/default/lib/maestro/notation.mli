(** The data-centric notation of MAESTRO (Kwon et al.): ordered mapping
    directives.  Reproduced as the paper's baseline; its expressiveness
    limits (no affine combination of loop dims) are what Table III's "x"
    rows are about. *)

type directive =
  | Spatial_map of { size : int; offset : int; dim : string }
  | Temporal_map of { size : int; offset : int; dim : string }
  | Cluster of int

type t = { name : string; directives : directive list }

val make : name:string -> directive list -> t
val spatial : ?size:int -> ?offset:int -> string -> directive
val temporal : ?size:int -> ?offset:int -> string -> directive
val cluster : int -> directive

val directive_to_string : directive -> string
val to_string : t -> string

val spatial_dims : t -> string list
val temporal_dims : t -> string list

val innermost_temporal : t -> string option
(** The only temporal dimension MAESTRO's reuse polynomial inspects
    (paper Section VI-E). *)

val mapped_dims : t -> string list

val design_space_size : n_loops:int -> n_spatial:int -> int
(** [n! * C(n, n_spatial)] (paper Section IV-A; 18 for GEMM). *)
