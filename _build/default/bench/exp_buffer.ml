(* Ablation: scratchpad capacity vs off-chip traffic (the buffer-size
   configuration knob the paper shares with MAESTRO), plus the
   compute-centric baseline from Table I compiled through the
   relation-centric pipeline. *)

module Ir = Tenet.Ir
module Arch = Tenet.Arch
module Df = Tenet.Dataflow
module M = Tenet.Model
module Sim = Tenet.Sim
module Cc = Tenet.Compute.Schedule

let capacities = [ 128; 256; 512; 1024; 2048; 4096; 8192 ]

let run () =
  Bench_util.section
    "Ablation: scratchpad capacity vs DRAM traffic (LRU reuse distance)";
  let op = Ir.Kernels.gemm ~ni:32 ~nj:32 ~nk:32 in
  Bench_util.row "  %-26s" "GEMM 32^3 dataflow";
  List.iter (fun c -> Bench_util.row "%8d" c) capacities;
  print_newline ();
  List.iter
    (fun (df, arch) ->
      let rows = Sim.Offchip.sweep arch op df ~capacities in
      Bench_util.row "  %-26s" df.Df.Dataflow.name;
      List.iter (fun (_, miss) -> Bench_util.row "%8d" miss) rows;
      print_newline ())
    [
      (Df.Zoo.gemm_ij_p_ijk_t (), Arch.Repository.tpu_like ());
      (Df.Zoo.gemm_ik_p_ijk_t (), Arch.Repository.tpu_like ());
      (Df.Zoo.gemm_k_p_ij_t (), Arch.Repository.systolic_1d ());
    ];
  Bench_util.section
    "Ablation: compute-centric schedules through the relation pipeline";
  let spec = Arch.Repository.tpu_like ~bandwidth:16 () in
  List.iter
    (fun sched ->
      let df = Cc.to_dataflow op sched in
      let m = M.Concrete.analyze spec op df in
      Printf.printf "  %-30s lat=%8.0f util=%4.2f sbw=%6.2f\n"
        df.Df.Dataflow.name m.M.Metrics.latency m.M.Metrics.avg_utilization
        m.M.Metrics.sbw)
    [ Cc.gemm_output_stationary (); Cc.gemm_weight_stationary () ];
  let skewed = M.Concrete.analyze spec op (Df.Zoo.gemm_ij_p_ijk_t ()) in
  Printf.printf "  %-30s lat=%8.0f util=%4.2f sbw=%6.2f  <- skewed, TENET-only\n"
    skewed.M.Metrics.dataflow skewed.M.Metrics.latency
    skewed.M.Metrics.avg_utilization skewed.M.Metrics.sbw
