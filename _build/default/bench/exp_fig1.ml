(* Figure 1: the motivating 1D-CONV.  Shows (a) the skewed dataflow that
   compute/data-centric notations cannot express, and (c) MAESTRO's reuse
   overestimate (8) versus the actual value (6) that relation counting
   recovers. *)

module Ir = Tenet.Ir
module Arch = Tenet.Arch
module Df = Tenet.Dataflow
module M = Tenet.Model
module Ma = Tenet.Maestro

let run () =
  Bench_util.section "Figure 1: 1D-CONV motivation (reuse of tensor A)";
  let op = Ir.Kernels.conv1d ~no:4 ~nr:3 in
  let spec =
    Arch.Spec.make ~pe:(Arch.Pe_array.d1 4)
      ~topology:Arch.Interconnect.Bidirectional_1d ~bandwidth:64 ()
  in
  Printf.printf "kernel: %s\n" (Ir.Tensor_op.to_string op);
  (* the straightforward dataflow of Fig 1(b) *)
  let df =
    Df.Dataflow.make ~name:"(I-P | J-T)"
      ~space:[ Tenet.Isl.Aff.Var "i" ]
      ~time:[ Tenet.Isl.Aff.Var "j" ]
  in
  let m = M.Concrete.analyze spec op df in
  let va = (M.Metrics.find_tensor m "A").M.Metrics.volumes in
  Printf.printf "TENET   : total(A)=%d unique(A)=%d reuse(A)=%d  <- actual\n"
    va.M.Metrics.total va.M.Metrics.unique (M.Metrics.reuse va);
  let rep = Ma.Analytical.analyze spec op Ma.Maestro_zoo.conv1d_fig1 in
  let a = Ma.Analytical.find_tensor rep "A" in
  Printf.printf
    "MAESTRO : total(A)=12 unique(A)=%.0f reuse(A)=%.0f  <- polynomial \
     estimate (paper: 8)\n"
    a.Ma.Analytical.traffic
    (12. -. a.Ma.Analytical.traffic);
  (* the skewed dataflow of Fig 1(a): T[t] covers the anti-diagonal *)
  let skewed =
    Df.Dataflow.make ~name:"(I-P | I+J-T, skewed)"
      ~space:[ Tenet.Isl.Aff.Var "i" ]
      ~time:[ Tenet.Isl.Aff.(Add (Var "i", Var "j")) ]
  in
  let ms = M.Concrete.analyze spec op skewed in
  Printf.printf
    "skewed dataflow (relation-centric only): %d time-stamps, unique(A)=%d\n"
    ms.M.Metrics.n_timestamps
    (M.Metrics.find_tensor ms "A").M.Metrics.volumes.M.Metrics.unique
