(* Shared helpers for the per-figure benchmark sections. *)

module M = Tenet.Model

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let subsection title = Printf.printf "\n-- %s --\n" title

let row fmt = Printf.printf fmt

(* Latency under a different scratchpad bandwidth, recomputed from the
   bandwidth-independent volume metrics (Section V-B formulas). *)
let latency_at_bandwidth (m : M.Metrics.t) ~bandwidth =
  let bw = float_of_int bandwidth in
  let read = float_of_int (M.Metrics.unique_inputs m) /. bw in
  let write = float_of_int (M.Metrics.unique_outputs m) /. bw in
  Float.max (float_of_int m.M.Metrics.delay_compute) (read +. write)

let ideal_latency (m : M.Metrics.t) =
  float_of_int m.M.Metrics.n_instances /. float_of_int m.M.Metrics.pe_size

let pct a b = 100. *. (1. -. (a /. b))

let time_it f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)
