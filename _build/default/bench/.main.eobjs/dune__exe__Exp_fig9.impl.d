bench/exp_fig9.ml: Bench_util List Printf Tenet
