bench/main.ml: Array Exp_buffer Exp_design_space Exp_fig1 Exp_fig10 Exp_fig11 Exp_fig12 Exp_fig6 Exp_fig7 Exp_fig8 Exp_fig9 Exp_table3 List Printexc Printf String Sys Unix
