bench/exp_table3.ml: Bench_util List Printf String Tenet
