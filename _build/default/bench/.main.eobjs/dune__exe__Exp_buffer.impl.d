bench/exp_buffer.ml: Bench_util List Printf Tenet
