bench/exp_fig1.ml: Bench_util Printf Tenet
