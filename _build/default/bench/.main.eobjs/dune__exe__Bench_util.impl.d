bench/bench_util.ml: Float Printf String Tenet Unix
