bench/exp_fig8.ml: Analyze Bechamel Bench_util Benchmark Hashtbl Instance List Measure Printf Staged Tenet Test Time Toolkit
