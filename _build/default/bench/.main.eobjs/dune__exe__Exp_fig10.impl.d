bench/exp_fig10.ml: Array Bench_util List Printf Tenet
