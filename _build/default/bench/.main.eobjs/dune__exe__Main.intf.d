bench/main.mli:
