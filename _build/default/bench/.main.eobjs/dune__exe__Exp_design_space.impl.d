bench/exp_design_space.ml: Bench_util List Printf Tenet
