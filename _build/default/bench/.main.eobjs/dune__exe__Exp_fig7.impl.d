bench/exp_fig7.ml: Bench_util Float List Printf Tenet
