bench/exp_fig11.ml: Bench_util Float List Printf Tenet
