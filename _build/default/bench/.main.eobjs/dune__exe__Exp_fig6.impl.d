bench/exp_fig6.ml: Bench_util List Printf Tenet
