(* Figure 8: modeling runtime per dataflow — MAESTRO's polynomials vs
   TENET's relation counting — measured with bechamel, plus TENET's
   sensitivity to interconnect complexity and (in)sensitivity to PE-array
   size. *)

module Ir = Tenet.Ir
module Arch = Tenet.Arch
module Df = Tenet.Dataflow
module M = Tenet.Model
module Ma = Tenet.Maestro
open Bechamel
open Toolkit

let conv_small = Ir.Kernels.conv2d ~nk:8 ~nc:8 ~nox:8 ~noy:8 ~nrx:3 ~nry:3
let gemm_small = Ir.Kernels.gemm ~ni:16 ~nj:16 ~nk:16
let gemm_tiny = Ir.Kernels.gemm ~ni:4 ~nj:4 ~nk:4

let tests () =
  let maestro =
    Test.make ~name:"MAESTRO polynomial (conv)"
      (Staged.stage (fun () ->
           ignore
             (Ma.Analytical.analyze
                (Arch.Repository.eyeriss_like ())
                conv_small
                (Ma.Maestro_zoo.conv_k_p_ox_oy_t conv_small))))
  in
  let tenet_concrete =
    Test.make ~name:"TENET concrete (conv 8^2x8^2x3^2)"
      (Staged.stage (fun () ->
           ignore
             (M.Concrete.analyze
                (Arch.Repository.tpu_like ())
                conv_small (Df.Zoo.conv_nvdla ()))))
  in
  let tenet_gemm =
    Test.make ~name:"TENET concrete (gemm 16^3)"
      (Staged.stage (fun () ->
           ignore
             (M.Concrete.analyze
                (Arch.Repository.tpu_like ())
                gemm_small (Df.Zoo.gemm_ij_p_ijk_t ()))))
  in
  let tenet_relational =
    Test.make ~name:"TENET relational/ISL (gemm 4^3)"
      (Staged.stage (fun () ->
           ignore
             (M.Model.analyze ~validate:false
                (Arch.Repository.tpu_like ~n:2 ())
                gemm_tiny
                (Df.Zoo.gemm_ij_p_ijk_t ~p:2 ()))))
  in
  let by_topology topo name =
    Test.make ~name:("TENET concrete gemm 16^3, " ^ name)
      (Staged.stage (fun () ->
           ignore
             (M.Concrete.analyze
                (Arch.Spec.make ~pe:(Arch.Pe_array.d2 8 8) ~topology:topo
                   ~bandwidth:64 ())
                gemm_small (Df.Zoo.gemm_ij_p_ijk_t ()))))
  in
  let by_pes n =
    Test.make ~name:(Printf.sprintf "TENET concrete gemm 16^3, %dx%d PEs" n n)
      (Staged.stage (fun () ->
           ignore
             (M.Concrete.analyze
                (Arch.Repository.tpu_like ~n ())
                gemm_small
                (Df.Zoo.gemm_ij_p_ijk_t ~p:n ()))))
  in
  [
    maestro;
    tenet_concrete;
    tenet_gemm;
    tenet_relational;
    by_topology Arch.Interconnect.Systolic_2d "systolic";
    by_topology Arch.Interconnect.Mesh "mesh";
    by_topology Arch.Interconnect.Row_col_broadcast "row+col bcast";
    by_pes 4;
    by_pes 8;
  ]

let run () =
  Bench_util.section "Figure 8: modeling runtime, TENET vs MAESTRO";
  let clock = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg [ clock ] test in
      let res = Analyze.all ols clock raw in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
              Printf.printf "  %-48s %14.1f ns/run (%10.3f ms)\n" name est
                (est /. 1e6)
          | _ -> Printf.printf "  %-48s (no estimate)\n" name)
        res)
    (tests ());
  Printf.printf
    "(paper: ~10^-2 s for MAESTRO vs ~10^-1 s for TENET per dataflow; \
     runtime grows with interconnect complexity, not with PE count)\n"
