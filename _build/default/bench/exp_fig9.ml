(* Figure 9: critical metrics per dataflow — temporal/spatial reuse of
   input and output tensors (normalized to the instance count), max and
   average PE utilization, latency.  Systolic interconnects throughout,
   as in the paper. *)

module Ir = Tenet.Ir
module Arch = Tenet.Arch
module Df = Tenet.Dataflow
module M = Tenet.Model

let spec_for pe =
  let topology =
    if Arch.Pe_array.rank pe = 2 then Arch.Interconnect.Systolic_2d
    else Arch.Interconnect.Systolic_1d
  in
  Arch.Spec.make ~pe ~topology ~bandwidth:64 ()

let header () =
  Bench_util.row "  %-26s %8s %8s %8s %8s %6s %6s %10s\n" "dataflow" "in-Trs"
    "in-Srs" "out-Trs" "out-Srs" "maxU" "avgU" "latency"

let show op (df, pe) =
  match M.Concrete.analyze (spec_for pe) op df with
  | exception M.Concrete.Invalid_dataflow msg ->
      Bench_util.row "  %-26s invalid: %s\n" df.Df.Dataflow.name msg
  | m ->
      let inst = float_of_int m.M.Metrics.n_instances in
      let sum_dir dir f =
        List.fold_left
          (fun acc tm ->
            if tm.M.Metrics.direction = dir then
              acc + f tm.M.Metrics.volumes
            else acc)
          0 m.M.Metrics.per_tensor
      in
      let norm n = float_of_int n /. inst in
      Bench_util.row
        "  %-26s %8.3f %8.3f %8.3f %8.3f %6.2f %6.2f %10.0f\n"
        df.Df.Dataflow.name
        (norm (sum_dir Ir.Tensor_op.Read (fun v -> v.M.Metrics.temporal_reuse)))
        (norm (sum_dir Ir.Tensor_op.Read (fun v -> v.M.Metrics.spatial_reuse)))
        (norm (sum_dir Ir.Tensor_op.Write (fun v -> v.M.Metrics.temporal_reuse)))
        (norm (sum_dir Ir.Tensor_op.Write (fun v -> v.M.Metrics.spatial_reuse)))
        m.M.Metrics.max_utilization m.M.Metrics.avg_utilization
        m.M.Metrics.latency

let run () =
  Bench_util.section "Figure 9: critical metrics per dataflow (systolic NoC)";
  let d2 = Arch.Pe_array.d2 8 8 and d1 = Arch.Pe_array.d1 64 in
  Bench_util.subsection "2D-CONV 16x16x14x14 r3";
  header ();
  let conv = Ir.Kernels.conv2d ~nk:16 ~nc:16 ~nox:14 ~noy:14 ~nrx:3 ~nry:3 in
  List.iter (show conv)
    [
      (Df.Zoo.conv_kc_p_oy_kcox_t (), d2);
      (Df.Zoo.conv_kox_p_oy_koxc_t (), d2);
      (Df.Zoo.conv_kc_p_c_kox_t (), d2);
      (Df.Zoo.conv_k_p_ox_oy_t (), d1);
      (Df.Zoo.conv_c_p_oy_ox_t (), d1);
      (Df.Zoo.conv_shidiannao (), d2);
      (Df.Zoo.conv_nvdla (), d2);
    ];
  (* the row-stationary dataflow needs the 12x14 array; its RY dimension
     cannot match the array (the paper's low-utilization observation) *)
  let conv13 = Ir.Kernels.conv2d ~nk:16 ~nc:16 ~nox:13 ~noy:13 ~nrx:3 ~nry:3 in
  show conv13 (Df.Zoo.conv_eyeriss_rs (), Arch.Pe_array.d2 12 14);
  Bench_util.subsection "GEMM 64^3";
  header ();
  let gemm = Ir.Kernels.gemm ~ni:64 ~nj:64 ~nk:64 in
  List.iter (show gemm)
    [
      (Df.Zoo.gemm_ij_p_ijk_t (), d2);
      (Df.Zoo.gemm_kj_p_ijk_t (), d2);
      (Df.Zoo.gemm_ik_p_ijk_t (), d2);
      (Df.Zoo.gemm_k_p_ij_t (), d1);
      (Df.Zoo.gemm_j_p_ik_t (), d1);
    ];
  Bench_util.subsection "MTTKRP 16^4";
  header ();
  let mt = Ir.Kernels.mttkrp ~ni:16 ~nj:16 ~nk:16 ~nl:16 in
  List.iter (show mt)
    [
      (Df.Zoo.mttkrp_ij_p_ijl_t (), d2);
      (Df.Zoo.mttkrp_kj_p_kjl_t (), d2);
      (Df.Zoo.mttkrp_kl_p_klj_t (), d2);
    ];
  Printf.printf
    "(expect: 2D space-stamps beat 1D for GEMM; (RYOY-P) suffers low \
     utilization; high reuse does not imply low latency)\n"
