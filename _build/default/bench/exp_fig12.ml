(* Figure 12: per-tensor reuse factors, TENET vs MAESTRO, across DNN
   layers.  Highlights: AlexNet CONV3 filter 169 (TENET) vs MAESTRO's
   polynomial estimate, output 144 vs MAESTRO's always-zero output reuse,
   and MobileNet's depthwise/pointwise layers with inherently lower input
   reuse. *)

module Ir = Tenet.Ir
module Arch = Tenet.Arch
module Df = Tenet.Dataflow
module M = Tenet.Model
module Ma = Tenet.Maestro
module W = Tenet.Workloads.Layers

let header () =
  Bench_util.row "  %-22s | %9s %9s | %9s %9s | %9s %9s\n" "layer"
    "in TENET" "in MAES" "flt TENET" "flt MAES" "out TENET" "out MAES"

let factor_of m tensor = M.Metrics.reuse_factor (M.Metrics.find_tensor m tensor).M.Metrics.volumes

let show ~spec ~window ~df ~mapping ~lname (op : Ir.Tensor_op.t) =
  match M.Concrete.analyze ~adjacency:`Lex_step ~window spec op df with
  | exception M.Concrete.Invalid_dataflow msg ->
      Bench_util.row "  %-22s invalid: %s\n" lname msg
  | m ->
      let rep = Ma.Analytical.analyze spec op mapping in
      let mf t = (Ma.Analytical.find_tensor rep t).Ma.Analytical.reuse_factor in
      Bench_util.row "  %-22s | %9.1f %9.1f | %9.1f %9.1f | %9.1f %9.1f\n"
        lname (factor_of m "A") (mf "A") (factor_of m "B") (mf "B")
        (factor_of m "Y") (mf "Y")

let run () =
  Bench_util.section "Figure 12: data-reuse comparison with MAESTRO";
  Bench_util.subsection
    "AlexNet, Eyeriss row-stationary on 12x14 (channels reduced to 16)";
  header ();
  let spec_e =
    Arch.Spec.make
      ~pe:(Arch.Pe_array.d2 12 14)
      ~topology:Arch.Interconnect.Row_col_broadcast ~bandwidth:64 ()
  in
  List.iter
    (fun (lname, k, c, o, r) ->
      let op = Ir.Kernels.conv2d ~nk:k ~nc:c ~nox:o ~noy:o ~nrx:r ~nry:r in
      let cpack = max 1 (min (12 / r) (min 4 c)) in
      let df =
        Df.Zoo.conv_eyeriss_rs ~kt:(min 16 k) ~ct:(min 16 c) ~cpack ~r ()
      in
      show ~spec:spec_e ~window:o ~df ~mapping:(Ma.Maestro_zoo.conv_eyeriss_rs op)
        ~lname op)
    [
      ("CONV1", 16, 3, 14, 11);
      ("CONV2", 16, 16, 14, 5);
      ("CONV3 (paper:169/144)", 16, 16, 13, 3);
      ("CONV4", 16, 16, 13, 3);
      ("CONV5", 16, 16, 13, 3);
    ];
  Bench_util.subsection
    "VGG16, ShiDianNao output-stationary on 8x8 mesh (channels reduced)";
  header ();
  let spec_s =
    Arch.Spec.make ~pe:(Arch.Pe_array.d2 8 8) ~topology:Arch.Interconnect.Mesh
      ~bandwidth:64 ()
  in
  List.iter
    (fun (lname, k, c, o) ->
      let op = Ir.Kernels.conv2d ~nk:k ~nc:c ~nox:o ~noy:o ~nrx:3 ~nry:3 in
      show ~spec:spec_s ~window:(o * o / 4) ~df:(Df.Zoo.conv_shidiannao ())
        ~mapping:(Ma.Maestro_zoo.conv_shidiannao op) ~lname op)
    [
      ("C1-1", 8, 3, 32); ("C2-1", 8, 8, 32); ("C3-1", 16, 16, 16);
      ("C4-1", 16, 16, 16); ("C5-1", 16, 16, 8);
    ];
  Bench_util.subsection "GoogLeNet, NVDLA-style on 8x8 (channels reduced)";
  header ();
  let spec_n =
    Arch.Spec.make ~pe:(Arch.Pe_array.d2 8 8)
      ~topology:Arch.Interconnect.Row_col_broadcast ~bandwidth:64 ()
  in
  List.iter
    (fun (lname, k, c, o, r) ->
      let op = Ir.Kernels.conv2d ~nk:k ~nc:c ~nox:o ~noy:o ~nrx:r ~nry:r in
      show ~spec:spec_n ~window:o ~df:(Df.Zoo.conv_nvdla ())
        ~mapping:(Ma.Maestro_zoo.conv_nvdla op) ~lname op)
    [
      ("conv2/3x3", 16, 16, 28, 3);
      ("inception-3a/3x3", 16, 16, 28, 3);
      ("inception-4a/3x3", 16, 16, 14, 3);
      ("inception-4a/1x1", 16, 16, 14, 1);
    ];
  Bench_util.subsection "MobileNet: depthwise & pointwise layers";
  header ();
  List.iter
    (fun (lname, layer_op, window) ->
      (* depthwise conv has no k dim: use a generic C-parallel dataflow *)
      let df =
        match List.mem "k" (Ir.Tensor_op.iter_names layer_op) with
        | true -> Df.Zoo.conv_nvdla ()
        | false ->
            Df.Dataflow.make ~name:"(C-P | OY,OX-T)"
              ~space:
                Tenet.Isl.Aff.[ Mod (Var "c", 8); Mod (Fdiv (Var "c", 8), 8) ]
              ~time:
                Tenet.Isl.Aff.
                  [ Fdiv (Var "c", 64); Var "oy"; Var "ox"; Var "ry"; Var "rx" ]
      in
      let mapping =
        if List.mem "k" (Ir.Tensor_op.iter_names layer_op) then
          Ma.Maestro_zoo.conv_nvdla layer_op
        else
          Ma.Notation.make ~name:"(C-P | OY,OX-T)"
            [
              Ma.Notation.spatial "c";
              Ma.Notation.temporal "oy";
              Ma.Notation.temporal "ox";
            ]
      in
      show ~spec:spec_n ~window ~df ~mapping ~lname layer_op)
    [
      ("dw-CONV (c=64,o=28)", Ir.Kernels.dw_conv2d ~nc:64 ~nox:28 ~noy:28 ~nrx:3 ~nry:3, 28);
      ("pw-CONV (16x64,o=28)", Ir.Kernels.pw_conv2d ~nk:16 ~nc:64 ~nox:28 ~noy:28, 28);
      ("dw-CONV (c=128,o=14)", Ir.Kernels.dw_conv2d ~nc:128 ~nox:14 ~noy:14 ~nrx:3 ~nry:3, 14);
      ("pw-CONV (16x128,o=14)", Ir.Kernels.pw_conv2d ~nk:16 ~nc:128 ~nox:14 ~noy:14, 14);
    ];
  ignore W.mobilenet;
  Printf.printf
    "(expect: MAESTRO reports zero output reuse everywhere and misses \
     compound-subscript input reuse; pw-CONV shows no input-halo reuse)\n"
