(* Figure 10: interconnect (IBW) and scratchpad (SBW) bandwidth
   requirements per tensor under three interconnect topologies:
   1D-systolic (row links only), 2D-systolic, and mesh. *)

module Isl = Tenet.Isl
module Ir = Tenet.Ir
module Arch = Tenet.Arch
module Df = Tenet.Dataflow
module M = Tenet.Model

(* rows-only systolic links on a 2D array, as a custom relation *)
let systolic_rows pe =
  let dims = Arch.Pe_array.dims pe in
  let rel =
    Isl.Parser.map
      (Printf.sprintf
         "{ PE[i,j] -> PE[x,y] : x = i and y = j + 1 and 0 <= i < %d and 0 \
          <= j < %d and 0 <= x < %d and 0 <= y < %d }"
         dims.(0) dims.(1) dims.(0) dims.(1))
  in
  Arch.Interconnect.Custom { rel; interval = 1 }

let topologies pe =
  if Arch.Pe_array.rank pe = 2 then
    [
      ("1D-systolic", systolic_rows pe);
      ("2D-systolic", Arch.Interconnect.Systolic_2d);
      ("mesh", Arch.Interconnect.Mesh);
    ]
  else
    [
      ("1D-systolic", Arch.Interconnect.Systolic_1d);
      ("1D-bidir", Arch.Interconnect.Bidirectional_1d);
      ("multicast-3", Arch.Interconnect.Multicast 3);
    ]

let show op pe (df : Df.Dataflow.t) =
  Bench_util.row "  %-26s %-12s %10s %10s %10s %10s\n" df.Df.Dataflow.name
    "topology" "IBW" "SBW" "SBW(in)" "SBW(out)";
  List.iter
    (fun (tname, topo) ->
      let spec = Arch.Spec.make ~pe ~topology:topo ~bandwidth:64 () in
      match M.Concrete.analyze spec op df with
      | exception M.Concrete.Invalid_dataflow msg ->
          Bench_util.row "  %-26s %-12s invalid: %s\n" "" tname msg
      | m ->
          let cyc = float_of_int m.M.Metrics.delay_compute in
          Bench_util.row "  %-26s %-12s %10.2f %10.2f %10.2f %10.2f\n" ""
            tname m.M.Metrics.ibw m.M.Metrics.sbw
            (float_of_int (M.Metrics.unique_inputs m) /. cyc)
            (float_of_int (M.Metrics.unique_outputs m) /. cyc))
    (topologies pe)

let run () =
  Bench_util.section "Figure 10: bandwidth vs interconnect topology";
  let d2 = Arch.Pe_array.d2 8 8 and d1 = Arch.Pe_array.d1 64 in
  Bench_util.subsection "2D-CONV 16x16x14x14 r3 dataflows";
  let conv = Ir.Kernels.conv2d ~nk:16 ~nc:16 ~nox:14 ~noy:14 ~nrx:3 ~nry:3 in
  List.iter (show conv d2)
    [
      Df.Zoo.conv_kc_p_oy_kcox_t ();
      Df.Zoo.conv_kc_p_c_kox_t ();
      Df.Zoo.conv_shidiannao ();
      Df.Zoo.conv_nvdla ();
    ];
  let conv13 = Ir.Kernels.conv2d ~nk:16 ~nc:16 ~nox:13 ~noy:13 ~nrx:3 ~nry:3 in
  show conv13 (Arch.Pe_array.d2 12 14) (Df.Zoo.conv_eyeriss_rs ());
  Bench_util.subsection "GEMM 64^3";
  let gemm = Ir.Kernels.gemm ~ni:64 ~nj:64 ~nk:64 in
  List.iter (show gemm d2) [ Df.Zoo.gemm_ij_p_ijk_t (); Df.Zoo.gemm_ik_p_ijk_t () ];
  Bench_util.subsection "MTTKRP 16^4";
  show (Ir.Kernels.mttkrp ~ni:16 ~nj:16 ~nk:16 ~nl:16) d2
    (Df.Zoo.mttkrp_ij_p_ijl_t ());
  Bench_util.subsection "Jacobi-2D 66x66 (1D array)";
  show (Ir.Kernels.jacobi2d ~n:66) d1 (Df.Zoo.jacobi_i_p_ij_t ());
  Printf.printf
    "(expect: topologies mostly similar; mesh helps dataflows with \
     diagonal input reuse (row-stationary, Jacobi); Jacobi is \
     memory-hungry)\n"
