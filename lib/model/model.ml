(* The TENET performance model (paper Section V): volumes per tensor, PE
   utilization, latency, bandwidth requirements and energy, all computed
   by counting relations. *)

module Isl = Tenet_isl
module Ir = Tenet_ir
module Arch = Tenet_arch
module Df = Tenet_dataflow
module Obs = Tenet_obs

let c_relational = Obs.counter "model.relational_analyses"

exception Invalid_dataflow of string

(* Entry-point note:
   [analyze] and [analyze_with] below keep their signatures and remain
   the engine-level primitives, but they are now the bottom layer under
   Tenet_serve.Api.run — the one request-level entry point the CLI,
   `tenet batch` and `tenet serve` share.  New request-level callers
   (anything wanting deadlines, structured errors, or the cross-request
   result cache) should construct a Serve.Api.Request.t instead of
   calling these directly; these stay for library users composing the
   engines in-process. *)

(* Per-time-stamp occupancy, shared by utilization and timestamp count:
   walk Θ's pairs once, bucketing instances by time-stamp.  Injectivity
   (validated separately) makes instances-per-stamp equal active PEs.
   Stamps are mixed-radix-encoded into a single int against the
   dataflow's time bounds (every Θ range point evaluates the time
   expressions over the iteration domain, so it lies inside them) —
   hashing a boxed int instead of allocating an [Array.sub] per pair. *)
let stamp_histogram (th : Isl.Map.t) ~n_space
    ~(time_bounds : (int * int) list) =
  let lo = Array.of_list (List.map fst time_bounds) in
  let width = Array.of_list (List.map (fun (l, h) -> h - l + 1) time_bounds) in
  let n_time = Array.length lo in
  let tbl : (int, int ref) Hashtbl.t = Hashtbl.create 4096 in
  Isl.Map.iter_pairs
    (fun _src dst ->
      let key = ref 0 in
      for i = 0 to n_time - 1 do
        key := (!key * width.(i)) + (dst.(n_space + i) - lo.(i))
      done;
      match Hashtbl.find_opt tbl !key with
      | Some r -> incr r
      | None -> Hashtbl.add tbl !key (ref 1))
    th;
  tbl

let analyze ?(adjacency = `Inner_step) ?(validate = true)
    (spec : Arch.Spec.t) (op : Ir.Tensor_op.t) (df : Df.Dataflow.t) :
    Metrics.t =
  Obs.with_span ~args:[ ("dataflow", df.Df.Dataflow.name) ] "model.analyze"
  @@ fun () ->
  Obs.incr c_relational;
  if validate then begin
    match Df.Dataflow.first_violation op df spec.Arch.Spec.pe with
    | None -> ()
    | Some msg -> raise (Invalid_dataflow msg)
  end;
  let th = Obs.with_span "model.theta" (fun () -> Df.Dataflow.theta op df) in
  let channels =
    Obs.with_span "model.channels" (fun () ->
        Df.Spacetime.channels ~adjacency spec op df)
  in
  let per_tensor =
    List.map
      (fun tensor ->
        Obs.with_span ~args:[ ("tensor", tensor) ] "model.volumes"
        @@ fun () ->
        let assignment = Df.Dataflow.data_assignment op df tensor in
        let volumes = Volumes.compute ~assignment ~channels in
        let direction =
          if List.mem tensor (Ir.Tensor_op.outputs op) then
            Ir.Tensor_op.Write
          else Ir.Tensor_op.Read
        in
        {
          Metrics.tensor;
          direction;
          volumes;
          footprint = Ir.Tensor_op.footprint op tensor;
        })
      (Ir.Tensor_op.tensors op)
  in
  let n_instances = Ir.Tensor_op.n_instances op in
  let pe_size = Arch.Pe_array.size spec.Arch.Spec.pe in
  let hist =
    Obs.with_span "model.stamp_histogram" (fun () ->
        stamp_histogram th ~n_space:(Df.Dataflow.n_space df)
          ~time_bounds:(Df.Dataflow.time_bounds op df))
  in
  let n_timestamps = max 1 (Hashtbl.length hist) in
  let busiest = Hashtbl.fold (fun _ r acc -> max acc !r) hist 0 in
  let avg_utilization =
    float_of_int n_instances /. float_of_int (pe_size * n_timestamps)
  in
  let max_utilization = float_of_int busiest /. float_of_int pe_size in
  let metrics_partial =
    {
      Metrics.dataflow = df.Df.Dataflow.name;
      per_tensor;
      n_instances;
      n_timestamps;
      pe_size;
      avg_utilization;
      max_utilization;
      delay_compute = n_timestamps;
      delay_read = 0.;
      delay_write = 0.;
      latency = 0.;
      latency_stamped = 0.;
      ibw = 0.;
      sbw = 0.;
      energy = 0.;
    }
  in
  let bw = float_of_int spec.Arch.Spec.bandwidth in
  let delay_read =
    float_of_int (Metrics.unique_inputs metrics_partial) /. bw
  in
  let delay_write =
    float_of_int (Metrics.unique_outputs metrics_partial) /. bw
  in
  (* Buffers, networks and arithmetic are pipelined with double buffering
     (Section V-B): latency is the maximum of computation and
     communication. *)
  let latency =
    Float.max (float_of_int n_timestamps) (delay_read +. delay_write)
  in
  let ibw =
    float_of_int (Metrics.total_spatial_reuse metrics_partial)
    /. float_of_int n_timestamps
  in
  let sbw =
    float_of_int (Metrics.total_unique metrics_partial)
    /. float_of_int n_timestamps
  in
  let e = spec.Arch.Spec.energy in
  let energy =
    let open Arch.Energy in
    let totals =
      List.fold_left (fun a tm -> a + tm.Metrics.volumes.Metrics.total) 0
        per_tensor
    in
    let uniques = Metrics.total_unique metrics_partial in
    let spatial = Metrics.total_spatial_reuse metrics_partial in
    (float_of_int n_instances *. e.mac)
    +. (float_of_int totals *. e.reg)
    +. (float_of_int uniques *. e.spm)
    +. (float_of_int spatial *. e.link)
  in
  {
    metrics_partial with
    delay_read;
    delay_write;
    latency;
    latency_stamped = latency;
    ibw;
    sbw;
    energy;
  }

(* Volumes for a single tensor without the full report (used by DSE inner
   loops where only one tensor matters). *)
let tensor_volumes ?(adjacency = `Inner_step) (spec : Arch.Spec.t)
    (op : Ir.Tensor_op.t) (df : Df.Dataflow.t) (tensor : string) :
    Metrics.volumes =
  let channels = Df.Spacetime.channels ~adjacency spec op df in
  let assignment = Df.Dataflow.data_assignment op df tensor in
  Volumes.compute ~assignment ~channels

type engine = [ `Relational | `Concrete ]

(* Engine dispatch: the concrete evaluator computes identical metrics
   orders of magnitude faster (see Concrete); the relational path is the
   faithful transcription of the paper's formulas and serves as the
   reference in tests. *)
let analyze_with ?(engine : engine = `Concrete) ?(adjacency = `Inner_step)
    ?(validate = true) spec op df : Metrics.t =
  match engine with
  | `Relational -> analyze ~adjacency ~validate spec op df
  | `Concrete -> Concrete.analyze ~adjacency ~validate spec op df

let analyze_template ?adjacency ?validate ?window spec op df ~params :
    Template.t =
  Template.compile ?adjacency ?validate ?window spec op df ~params

let instantiate (t : Template.t) ~sizes : Metrics.t =
  Template.instantiate t ~sizes
