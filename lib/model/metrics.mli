(** Result records of the performance model (paper Section V). *)

type volumes = {
  total : int;  (** TotalVolume: all (stamp, element) accesses *)
  temporal_reuse : int;  (** reused from the same PE's earlier stamps *)
  spatial_reuse : int;
      (** reused over the interconnect (and not already temporally) *)
  unique : int;  (** TotalVolume - ReuseVolume: scratchpad traffic *)
}

val reuse : volumes -> int
(** ReuseVolume = temporal + spatial (Table II). *)

val reuse_factor : volumes -> float
(** ReuseFactor = TotalVolume / UniqueVolume. *)

type tensor_metrics = {
  tensor : string;
  direction : Tenet_ir.Tensor_op.direction;
  volumes : volumes;
  footprint : int;  (** distinct elements touched *)
}

type t = {
  dataflow : string;
  per_tensor : tensor_metrics list;
  n_instances : int;  (** card D_S: number of MACs *)
  n_timestamps : int;  (** distinct time-stamps = compute cycles *)
  pe_size : int;
  avg_utilization : float;
  max_utilization : float;
  delay_compute : int;  (** Eq. 8 *)
  delay_read : float;  (** Eq. 7 *)
  delay_write : float;
  latency : float;  (** max(compute, read + write), Section V-B *)
  latency_stamped : float;
      (** sum over stamps of max(1, ceil(traffic_t / bandwidth)); refines
          the overlap formula for bursty traffic (concrete engine only;
          equals [latency] elsewhere) *)
  ibw : float;  (** Eq. 9: interconnect bandwidth requirement *)
  sbw : float;  (** Eq. 10: scratchpad bandwidth requirement *)
  energy : float;  (** in Energy model units (one MAC = 1) *)
}

val find_tensor : t -> string -> tensor_metrics
(** Raises [Not_found]. *)

val unique_inputs : t -> int
val unique_outputs : t -> int
val total_unique : t -> int
val total_spatial_reuse : t -> int

val pp_row : Format.formatter -> t -> unit
val pp_tensor_row : Format.formatter -> tensor_metrics -> unit
val to_string : t -> string

val volumes_to_json : volumes -> Tenet_obs.Json.t

val to_json : t -> Tenet_obs.Json.t
(** Machine-readable form with stable keys (CLI [--json], stats files). *)

val of_json : Tenet_obs.Json.t -> (t, string) result
(** Total inverse of {!to_json} (the serve protocol and result cache
    rely on the round-trip being exact, floats included). *)
