(* Concrete-evaluation engine: computes exactly the same volume and
   utilization metrics as the relational path ({!Volumes} over {!Tenet_isl}
   counting), but by walking the iteration domain once and looking
   adjacent spacetime-stamps up in a hash table.

   Equivalence with the relational engine is enforced by property tests;
   this engine exists because polyhedral counting of the composed reuse
   relations costs seconds per tensor, which is too slow for design-space
   exploration sweeps.  Sets with more than ~10^8 instances should use
   {!Scaled} analysis instead. *)

module Isl = Tenet_isl
module Ir = Tenet_ir
module Arch = Tenet_arch
module Df = Tenet_dataflow
module Obs = Tenet_obs

let c_analyses = Obs.counter "concrete.analyses"
let c_instances = Obs.counter "concrete.instances_walked"

exception Invalid_dataflow of string

type compiled = {
  op : Ir.Tensor_op.t;
  df : Df.Dataflow.t;
  iters : (int * int) array; (* (lo, extent) per iterator *)
  n_iters : int;
  vals : int array; (* current iterator values (mutable scratch) *)
  env : string -> int;
  lookup : string -> int; (* iterator name -> index in [vals] *)
  space_exprs : Isl.Aff.t array;
  time_exprs : Isl.Aff.t array;
  (* staged evaluators of the same expressions over [vals] (no name
     resolution or AST walk per instance — the walk is the hot loop) *)
  space_evals : (int array -> int) array;
  time_evals : (int array -> int) array;
  (* mixed-radix encodings *)
  space_base : (int * int) array; (* (lo, extent) per space dim *)
  time_base : (int * int) array;
}

let compile (op : Ir.Tensor_op.t) (df : Df.Dataflow.t) : compiled =
  let iters =
    Array.of_list
      (List.map (fun it -> (it.Ir.Tensor_op.lo, Ir.Tensor_op.extent it)) op.Ir.Tensor_op.iters)
  in
  let n_iters = Array.length iters in
  let vals = Array.make n_iters 0 in
  let index = Hashtbl.create 8 in
  List.iteri
    (fun i it -> Hashtbl.replace index it.Ir.Tensor_op.iname i)
    op.Ir.Tensor_op.iters;
  let lookup name = Hashtbl.find index name in
  let env name = vals.(lookup name) in
  let ienv name = Ir.Tensor_op.iter_bounds op name in
  let to_base e =
    let lo, hi = Isl.Aff.interval ienv e in
    (lo, hi - lo + 1)
  in
  let stage e = Isl.Aff.compile_eval ~lookup e in
  {
    op;
    df;
    iters;
    n_iters;
    vals;
    env;
    lookup;
    space_exprs = Array.of_list df.Df.Dataflow.space;
    time_exprs = Array.of_list df.Df.Dataflow.time;
    space_evals = Array.of_list (List.map stage df.Df.Dataflow.space);
    time_evals = Array.of_list (List.map stage df.Df.Dataflow.time);
    space_base = Array.of_list (List.map to_base df.Df.Dataflow.space);
    time_base = Array.of_list (List.map to_base df.Df.Dataflow.time);
  }

(* Mixed-radix encoding of a tuple given (lo, extent) bases; -1 when any
   coordinate is out of range (encoding a nonexistent stamp). *)
let encode (base : (int * int) array) (tup : int array) : int =
  let acc = ref 0 in
  let ok = ref true in
  for i = 0 to Array.length base - 1 do
    let lo, ext = base.(i) in
    let v = tup.(i) - lo in
    if v < 0 || v >= ext then ok := false else acc := (!acc * ext) + v
  done;
  if !ok then !acc else -1

let encode_iters (c : compiled) : int =
  let acc = ref 0 in
  for i = 0 to c.n_iters - 1 do
    let lo, ext = c.iters.(i) in
    acc := (!acc * ext) + (c.vals.(i) - lo)
  done;
  !acc

let decode_iters (c : compiled) (code : int) (out : int array) : unit =
  let code = ref code in
  for i = c.n_iters - 1 downto 0 do
    let lo, ext = c.iters.(i) in
    out.(i) <- (!code mod ext) + lo;
    code := !code / ext
  done

(* Decode a mixed-radix code (from [encode]) back into a tuple. *)
let decode (base : (int * int) array) (code : int) (out : int array) : unit =
  let code = ref code in
  for i = Array.length base - 1 downto 0 do
    let lo, ext = base.(i) in
    out.(i) <- (!code mod ext) + lo;
    code := !code / ext
  done

(* Iterate an iteration box, calling [f] with [vals] filled; the visit
   order is exactly increasing [encode_iters] code (outermost dim most
   significant), which the shared-needs table below relies on. *)
let iter_box (iters : (int * int) array) (vals : int array) (f : unit -> unit)
    : unit =
  let n = Array.length iters in
  let rec go i =
    if i = n then f ()
    else begin
      let lo, ext = iters.(i) in
      for v = lo to lo + ext - 1 do
        vals.(i) <- v;
        go (i + 1)
      done
    end
  in
  go 0

(* Iterate the whole iteration box, calling [f] with [c.vals] filled. *)
let iter_instances (c : compiled) (f : unit -> unit) : unit =
  iter_box c.iters c.vals f

let eval_tuple (c : compiled) (exprs : Isl.Aff.t array) (out : int array) :
    unit =
  for i = 0 to Array.length exprs - 1 do
    out.(i) <- Isl.Aff.eval c.env exprs.(i)
  done

(* Staged variant of [eval_tuple] for the walk loops. *)
let eval_staged (c : compiled) (evals : (int array -> int) array)
    (out : int array) : unit =
  for i = 0 to Array.length evals - 1 do
    out.(i) <- evals.(i) c.vals
  done

(* Predecessor time-stamps under the chosen adjacency, written into
   [out]; returns false when there is no predecessor (start of time or a
   wrap position that does not apply). *)
let time_preds ~(adjacency : Df.Spacetime.adjacency) (c : compiled)
    (t : int array) ~dt : int array list =
  let m = Array.length t in
  if m = 0 then []
  else if dt = 0 then [ Array.copy t ]
  else begin
    match adjacency with
    | `Inner_step ->
        let t' = Array.copy t in
        t'.(m - 1) <- t'.(m - 1) - dt;
        [ t' ]
    | `Lex_step ->
        (* piece j applies iff all dims after j currently sit at their
           minimum; the predecessor has those dims at their maximum. *)
        let rec pieces j acc =
          if j < 0 then acc
          else begin
            let applies = ref true in
            for i = j + 1 to m - 1 do
              let lo, _ = c.time_base.(i) in
              if t.(i) <> lo then applies := false
            done;
            let acc =
              if !applies then begin
                let t' = Array.copy t in
                t'.(j) <- t'.(j) - dt;
                for i = j + 1 to m - 1 do
                  let lo, ext = c.time_base.(i) in
                  t'.(i) <- lo + ext - 1
                done;
                t' :: acc
              end
              else acc
            in
            pieces (j - 1) acc
          end
        in
        pieces (m - 1) []
  end

(* Temporal predecessor stamps within a register window of [window]
   stamps: under [`Inner_step] the innermost dim steps back 1..window
   without wrapping; under [`Lex_step] the window walks back through the
   box-lexicographic order (wrap-aware), modeling a register file that
   holds the last [window] elements the PE touched. *)
let temporal_preds ~(adjacency : Df.Spacetime.adjacency) (c : compiled)
    (t : int array) ~window : int array list =
  let m = Array.length t in
  if m = 0 then []
  else begin
    match adjacency with
    | `Inner_step ->
        List.init window (fun d ->
            let t' = Array.copy t in
            t'.(m - 1) <- t'.(m - 1) - (d + 1);
            t')
    | `Lex_step ->
        let code = encode c.time_base t in
        if code < 0 then []
        else begin
          let rec go d acc =
            if d > window || code - d < 0 then List.rev acc
            else begin
              let t' = Array.make m 0 in
              decode c.time_base (code - d) t';
              go (d + 1) (t' :: acc)
            end
          in
          go 1 []
        end
  end

(* Spatial predecessor PEs (mixed-radix-encoded) per destination PE, from
   the (already lex-filtered when interval = 0) interconnect relation.
   Memoized per (topology, PE-array dims): a DSE sweep calls [analyze]
   once per candidate against the same architecture, and re-enumerating
   the interconnect relation dominated small-layer analyses.  The memo
   table is mutex-guarded (analyses run on the parallel work pool); the
   cached arrays are never mutated after construction. *)
let pred_cache : (Arch.Interconnect.t * int array, int list array) Hashtbl.t =
  Hashtbl.create 16

let pred_cache_mutex = Mutex.create ()

let pred_pe_keys (spec : Arch.Spec.t) : int list array =
  let pe = spec.Arch.Spec.pe in
  let dims = Arch.Pe_array.dims pe in
  let key = (spec.Arch.Spec.topology, dims) in
  Mutex.lock pred_cache_mutex;
  let cached = Hashtbl.find_opt pred_cache key in
  Mutex.unlock pred_cache_mutex;
  match cached with
  | Some a -> a
  | None ->
      let rel = Df.Spacetime.reuse_pe_relation pe spec.Arch.Spec.topology in
      let base = Array.map (fun d -> (0, d)) dims in
      let out = Array.make (max 1 (Arch.Pe_array.size pe)) [] in
      Isl.Map.iter_pairs
        (fun src dst ->
          let k = encode base dst in
          if k >= 0 then out.(k) <- encode base src :: out.(k))
        rel;
      Mutex.lock pred_cache_mutex;
      if not (Hashtbl.mem pred_cache key) then Hashtbl.add pred_cache key out;
      Mutex.unlock pred_cache_mutex;
      out

(* For tests and cold-cache measurements. *)
let clear_pred_cache () =
  Mutex.lock pred_cache_mutex;
  Hashtbl.reset pred_cache;
  Mutex.unlock pred_cache_mutex

(* ------------------------------------------------------------------ *)
(* Reusable evaluation context.                                        *)
(* ------------------------------------------------------------------ *)

(* Per-tensor element encodings: one mixed-radix base per subscript
   position, wide enough for every access to the tensor. *)
let tensor_bases (op : Ir.Tensor_op.t) (accs : Ir.Tensor_op.access array) :
    (int * int) array =
  let ienv name = Ir.Tensor_op.iter_bounds op name in
  let arity = List.length (accs.(0)).Ir.Tensor_op.subscripts in
  Array.init arity (fun i ->
      let lo = ref max_int and hi = ref min_int in
      Array.iter
        (fun (a : Ir.Tensor_op.access) ->
          let l, h =
            Isl.Aff.interval ienv (List.nth a.Ir.Tensor_op.subscripts i)
          in
          if l < !lo then lo := l;
          if h > !hi then hi := h)
        accs;
      (!lo, !hi - !lo + 1))

(* Everything the analysis needs that depends only on the (architecture,
   operator, evaluation options) triple — not on the candidate dataflow.
   A DSE sweep scores hundreds of dataflows against one such triple; the
   context is built once and shared, and each candidate pays only the
   dataflow-dependent part of the walk.  A context is immutable after
   construction, so sharing one across the parallel work pool is safe. *)
type ctx = {
  x_spec : Arch.Spec.t;
  x_op : Ir.Tensor_op.t;
  x_adjacency : Df.Spacetime.adjacency;
  x_window : int;
  x_validate : bool;
  x_n_instances : int;
  x_tensors : string array;
  x_n_tensors : int;
  x_outputs : string list;
  x_fspace : int; (* widest per-tensor element space *)
  x_fenc_evals : (int array -> int) array array; (* per tensor, per access *)
  x_pe_base : (int * int) array;
  x_pe_size : int;
  x_preds : int list array; (* pred_pe_keys, resolved once *)
  x_dt_spatial : int;
  x_kspace : int;
  x_use_direct : bool;
  x_needs : (int array * int array) array option;
      (* Per-tensor [(offs, flat)]: instance code [i] touches elements
         [flat.(offs.(i)) .. flat.(offs.(i + 1) - 1)] (deduplicated,
         sorted when the tensor has several accesses).  Element
         encodings are dataflow-independent, so this one walk of the
         iteration box serves every candidate the context scores.
         [None] when the layer is too large for the table to pay. *)
}

(* Caps on the shared element-needs table: past a few million instances
   its build cost and footprint outweigh re-evaluating the accesses per
   candidate, and one-shot [analyze] calls never build it at all. *)
let needs_max_instances = 2_000_000
let needs_max_cells = 8_000_000

let build_needs (op : Ir.Tensor_op.t)
    (fenc_evals : (int array -> int) array array) :
    (int array * int array) array option =
  let n_instances = Ir.Tensor_op.n_instances op in
  let n_tensors = Array.length fenc_evals in
  let cells =
    Array.fold_left (fun a fs -> a + (n_instances * Array.length fs)) 0
      fenc_evals
  in
  if n_instances > needs_max_instances || cells > needs_max_cells then None
  else begin
    let iters =
      Array.of_list
        (List.map
           (fun it -> (it.Ir.Tensor_op.lo, Ir.Tensor_op.extent it))
           op.Ir.Tensor_op.iters)
    in
    let vals = Array.make (Array.length iters) 0 in
    let offs = Array.init n_tensors (fun _ -> Array.make (n_instances + 1) 0) in
    let flats =
      Array.init n_tensors (fun ti ->
          Array.make (n_instances * Array.length fenc_evals.(ti)) 0)
    in
    let lens = Array.make n_tensors 0 in
    let inst = ref 0 in
    iter_box iters vals (fun () ->
        for ti = 0 to n_tensors - 1 do
          (match fenc_evals.(ti) with
          | [| f |] ->
              flats.(ti).(lens.(ti)) <- f vals;
              lens.(ti) <- lens.(ti) + 1
          | fs ->
              List.iter
                (fun fenc ->
                  flats.(ti).(lens.(ti)) <- fenc;
                  lens.(ti) <- lens.(ti) + 1)
                (List.sort_uniq compare
                   (Array.to_list (Array.map (fun f -> f vals) fs))));
          offs.(ti).(!inst + 1) <- lens.(ti)
        done;
        incr inst);
    Some
      (Array.init n_tensors (fun ti ->
           (offs.(ti), Array.sub flats.(ti) 0 lens.(ti))))
  end

let context ?(adjacency : Df.Spacetime.adjacency = `Inner_step)
    ?(validate = true) ?(window = 1) ?(share = true) (spec : Arch.Spec.t)
    (op : Ir.Tensor_op.t) : ctx =
  let pe = spec.Arch.Spec.pe in
  let tensors = Array.of_list (Ir.Tensor_op.tensors op) in
  let n_tensors = Array.length tensors in
  let accs =
    Array.map (fun t -> Array.of_list (Ir.Tensor_op.accesses_of op t)) tensors
  in
  let bases = Array.map (tensor_bases op) accs in
  let fspace =
    Array.fold_left
      (fun acc b -> max acc (Array.fold_left (fun a (_, e) -> a * e) 1 b))
      1 bases
  in
  let index = Hashtbl.create 8 in
  List.iteri
    (fun i it -> Hashtbl.replace index it.Ir.Tensor_op.iname i)
    op.Ir.Tensor_op.iters;
  let lookup name = Hashtbl.find index name in
  (* Staged access evaluators: one closure per access computing the
     mixed-radix element encoding straight from an iterator-value array
     laid out like [compiled.vals] (the layout depends only on [op], so
     the closures are shared across every candidate's walk). *)
  let fenc_evals =
    Array.mapi
      (fun ti accs_ti ->
        let b = bases.(ti) in
        let arity = Array.length b in
        Array.map
          (fun (a : Ir.Tensor_op.access) ->
            let subs =
              Array.of_list
                (List.map
                   (Isl.Aff.compile_eval ~lookup)
                   a.Ir.Tensor_op.subscripts)
            in
            fun vals ->
              let acc = ref 0 in
              for i = 0 to arity - 1 do
                let lo, ext = b.(i) in
                acc := (!acc * ext) + (subs.(i) vals - lo)
              done;
              !acc)
          accs_ti)
      accs
  in
  let pe_size = Arch.Pe_array.size pe in
  let kspace = pe_size * n_tensors * fspace in
  {
    x_spec = spec;
    x_op = op;
    x_adjacency = adjacency;
    x_window = window;
    x_validate = validate;
    x_n_instances = Ir.Tensor_op.n_instances op;
    x_tensors = tensors;
    x_n_tensors = n_tensors;
    x_outputs = Ir.Tensor_op.outputs op;
    x_fspace = fspace;
    x_fenc_evals = fenc_evals;
    x_pe_base = Array.map (fun d -> (0, d)) (Arch.Pe_array.dims pe);
    x_pe_size = pe_size;
    x_preds = pred_pe_keys spec;
    x_dt_spatial = Arch.Interconnect.interval spec.Arch.Spec.topology;
    x_kspace = kspace;
    (* Direct addressing also requires validated space bounds: only
       validation guarantees every pkey is in range. *)
    x_use_direct = validate && kspace > 0 && kspace <= 50_000_000;
    x_needs = (if share then build_needs op fenc_evals else None);
  }

(* ------------------------------------------------------------------ *)
(* Cheap time-only profile (DSE dominance bounds).                     *)
(* ------------------------------------------------------------------ *)

type profile = { p_timestamps : int; p_conflict : bool }

(* Count distinct time-stamps and detect spacetime conflicts without
   touching tensor accesses: a fraction of the full walk's cost, enough
   for a latency lower bound ([latency >= n_timestamps]) and for
   discarding invalid candidates before they reach the full analysis. *)
let time_profile (ctx : ctx) (df : Df.Dataflow.t) : profile =
  let c = compile ctx.x_op df in
  let r = Array.length c.space_exprs and m = Array.length c.time_exprs in
  let p_scratch = Array.make r 0 and t_scratch = Array.make m 0 in
  let seen_t : (int, unit) Hashtbl.t = Hashtbl.create 1024 in
  let seen_tp : (int, unit) Hashtbl.t = Hashtbl.create 4096 in
  let conflict = ref false in
  iter_instances c (fun () ->
      eval_staged c c.space_evals p_scratch;
      eval_staged c c.time_evals t_scratch;
      let tcode = encode c.time_base t_scratch in
      let pkey = encode ctx.x_pe_base p_scratch in
      if not (Hashtbl.mem seen_t tcode) then Hashtbl.add seen_t tcode ();
      let k = (tcode * (ctx.x_pe_size + 1)) + (pkey + 1) in
      if Hashtbl.mem seen_tp k then conflict := true
      else Hashtbl.add seen_tp k ());
  { p_timestamps = max 1 (Hashtbl.length seen_t); p_conflict = !conflict }

(* ------------------------------------------------------------------ *)
(* The full analysis.                                                  *)
(* ------------------------------------------------------------------ *)

let analyze_in (ctx : ctx) (df : Df.Dataflow.t) : Metrics.t =
  Obs.with_span ~args:[ ("dataflow", df.Df.Dataflow.name) ] "concrete.analyze"
  @@ fun () ->
  Obs.incr c_analyses;
  let spec = ctx.x_spec and op = ctx.x_op in
  let adjacency = ctx.x_adjacency and window = ctx.x_window in
  let validate = ctx.x_validate in
  let c = compile op df in
  let pe = spec.Arch.Spec.pe in
  if ctx.x_n_instances > 200_000_000 then
    raise
      (Invalid_dataflow
         (Printf.sprintf
            "%s: %d instances is too large to enumerate; use Scaled.analyze \
             (CLI: --scale-dims) for layers of this size"
            df.Df.Dataflow.name ctx.x_n_instances));
  (* bounds validation *)
  if validate then begin
    if Df.Dataflow.n_space df <> Arch.Pe_array.rank pe then
      raise
        (Invalid_dataflow
           (Printf.sprintf "%s: space rank %d vs array rank %d"
              df.Df.Dataflow.name (Df.Dataflow.n_space df)
              (Arch.Pe_array.rank pe)));
    let dims = Arch.Pe_array.dims pe in
    List.iteri
      (fun i (lo, hi) ->
        if lo < 0 || hi >= dims.(i) then
          raise
            (Invalid_dataflow
               (Printf.sprintf "%s: space dim %d spans [%d,%d] outside [0,%d)"
                  df.Df.Dataflow.name i lo hi dims.(i))))
      (Df.Dataflow.space_bounds op df)
  end;
  let r = Array.length c.space_exprs and m = Array.length c.time_exprs in
  let pe_base = ctx.x_pe_base in
  let p_scratch = Array.make r 0 and t_scratch = Array.make m 0 in
  (* pass 1: bucket instances by time-stamp code *)
  let buckets : (int, (int * int) list ref) Hashtbl.t = Hashtbl.create 4096 in
  let tcodes = ref [] in
  Obs.with_span "concrete.bucket" (fun () ->
      iter_instances c (fun () ->
          eval_staged c c.space_evals p_scratch;
          eval_staged c c.time_evals t_scratch;
          let tcode = encode c.time_base t_scratch in
          let pkey = encode pe_base p_scratch in
          let inst = encode_iters c in
          match Hashtbl.find_opt buckets tcode with
          | Some l -> l := (pkey, inst) :: !l
          | None ->
              Hashtbl.add buckets tcode (ref [ (pkey, inst) ]);
              tcodes := tcode :: !tcodes));
  Obs.add c_instances ctx.x_n_instances;
  let order = List.sort compare !tcodes in
  let preds_enc = ctx.x_preds in
  let dt_spatial = ctx.x_dt_spatial in
  let tensors = ctx.x_tensors in
  let n_tensors = ctx.x_n_tensors in
  let fspace = ctx.x_fspace in
  (* pe/tensor/element key for the last-touch table *)
  let key ~pkey ~ti fenc = (((pkey * n_tensors) + ti) * fspace) + fenc in
  (* element encodings of the instance currently in c.vals, deduplicated *)
  let eval_fenc ti : int array =
    match ctx.x_fenc_evals.(ti) with
    | [| f |] -> [| f c.vals |]
    | fs ->
        Array.of_list
          (List.sort_uniq compare
             (Array.to_list (Array.map (fun f -> f c.vals) fs)))
  in
  (* The last-touch / same-stamp-needs / footprint tables are the inner
     loop's only lookups.  When the (PE, tensor, element) key space is
     small enough they are flat arrays (direct addressing, no hashing);
     otherwise hash tables. *)
  let pe_size = ctx.x_pe_size in
  let kspace = ctx.x_kspace in
  let use_direct = ctx.x_use_direct in
  let lt_get, lt_set =
    if use_direct then begin
      let a = Array.make kspace min_int in
      ((fun k -> a.(k)), fun k t -> a.(k) <- t)
    end
    else begin
      let h : (int, int) Hashtbl.t = Hashtbl.create 4096 in
      ( (fun k -> match Hashtbl.find_opt h k with Some t -> t | None -> min_int),
        fun k t -> Hashtbl.replace h k t )
    end
  in
  (* same-stamp needs (interval-0 wire sharing), generation-stamped so one
     allocation serves every stamp *)
  let sn_next, sn_mark, sn_mem =
    if use_direct then begin
      let a = Array.make (if dt_spatial = 0 then kspace else 0) 0 in
      let gen = ref 0 in
      ( (fun () -> incr gen),
        (fun k -> a.(k) <- !gen),
        fun k -> a.(k) = !gen )
    end
    else begin
      let h : (int, unit) Hashtbl.t = Hashtbl.create 64 in
      ( (fun () -> Hashtbl.reset h),
        (fun k -> Hashtbl.replace h k ()),
        fun k -> Hashtbl.mem h k )
    end
  in
  let inner_ext = if m = 0 then 1 else snd c.time_base.(m - 1) in
  let same_outer a b =
    match adjacency with
    | `Lex_step -> true
    | `Inner_step -> a / inner_ext = b / inner_ext
  in
  let totals = Array.make n_tensors 0 in
  let reuse_t = Array.make n_tensors 0 in
  let reuse_s = Array.make n_tensors 0 in
  (* distinct elements per tensor (footprints), collected on the fly *)
  let touch, footprint =
    if use_direct then begin
      let marks = Array.init n_tensors (fun _ -> Bytes.make fspace '\000') in
      let counts = Array.make n_tensors 0 in
      ( (fun ti fenc ->
          let m = marks.(ti) in
          if Bytes.get m fenc = '\000' then begin
            Bytes.set m fenc '\001';
            counts.(ti) <- counts.(ti) + 1
          end),
        fun ti -> counts.(ti) )
    end
    else begin
      let tbls : (int, unit) Hashtbl.t array =
        Array.init n_tensors (fun _ -> Hashtbl.create 1024)
      in
      ( (fun ti fenc -> Hashtbl.replace tbls.(ti) fenc ()),
        fun ti -> Hashtbl.length tbls.(ti) )
    end
  in
  let busiest = ref 0 in
  let conflict = ref false in
  let stamped_cycles = ref 0 in
  let iv = Array.make c.n_iters 0 in
  (* pass 2: walk stamps in lexicographic order, checking each element
     against the last time this PE (temporal window) or a predecessor PE
     (spatial, exact interconnect latency) touched it.  The per-instance
     element lists come from the context's shared needs table when it
     exists; otherwise each instance is decoded and its accesses
     re-evaluated, exactly as the table builder would have. *)
  Obs.with_span "concrete.walk" (fun () ->
      List.iter
        (fun tcode ->
          let insts = !(Hashtbl.find buckets tcode) in
          busiest := max !busiest (List.length insts);
          let stamp_unique = ref 0 in
          (* conflict check: two instances on one PE in one stamp *)
          let seen_pe = Hashtbl.create 16 in
          List.iter
            (fun (pkey, _) ->
              if Hashtbl.mem seen_pe pkey then conflict := true
              else Hashtbl.add seen_pe pkey ())
            insts;
          let needs =
            match ctx.x_needs with
            | Some tabs ->
                List.map
                  (fun (pkey, inst) ->
                    ( pkey,
                      Array.init n_tensors (fun ti ->
                          let offs, flat = tabs.(ti) in
                          Array.sub flat
                            offs.(inst)
                            (offs.(inst + 1) - offs.(inst))) ))
                  insts
            | None ->
                List.map
                  (fun (pkey, inst) ->
                    decode_iters c inst iv;
                    Array.blit iv 0 c.vals 0 c.n_iters;
                    (pkey, Array.init n_tensors eval_fenc))
                  insts
          in
          (* same-stamp needs, for interval-0 wire sharing *)
          if dt_spatial = 0 then begin
            sn_next ();
            List.iter
              (fun (pkey, per_tensor) ->
                Array.iteri
                  (fun ti fencs ->
                    Array.iter
                      (fun fenc -> sn_mark (key ~pkey ~ti fenc))
                      fencs)
                  per_tensor)
              needs
          end;
          List.iter
            (fun (pkey, per_tensor) ->
              let plist =
                if pkey >= 0 && pkey < Array.length preds_enc then
                  preds_enc.(pkey)
                else []
              in
              Array.iteri
                (fun ti fencs ->
                  Array.iter
                    (fun fenc ->
                      totals.(ti) <- totals.(ti) + 1;
                      touch ti fenc;
                      let temporal =
                        m > 0
                        &&
                        let last = lt_get (key ~pkey ~ti fenc) in
                        last <> min_int
                        && tcode - last <= window
                        && same_outer tcode last
                      in
                      if temporal then reuse_t.(ti) <- reuse_t.(ti) + 1
                      else begin
                        let spatial =
                          if dt_spatial = 0 then
                            List.exists
                              (fun p' -> sn_mem (key ~pkey:p' ~ti fenc))
                              plist
                          else
                            List.exists
                              (fun p' ->
                                let last = lt_get (key ~pkey:p' ~ti fenc) in
                                last <> min_int
                                && tcode - last = dt_spatial
                                && same_outer tcode last)
                              plist
                        in
                        if spatial then reuse_s.(ti) <- reuse_s.(ti) + 1
                        else incr stamp_unique
                      end)
                    fencs)
                per_tensor)
            needs;
          stamped_cycles :=
            !stamped_cycles
            + max 1
                ((!stamp_unique + spec.Arch.Spec.bandwidth - 1)
                / spec.Arch.Spec.bandwidth);
          (* commit this stamp's touches *)
          List.iter
            (fun (pkey, per_tensor) ->
              Array.iteri
                (fun ti fencs ->
                  Array.iter
                    (fun fenc -> lt_set (key ~pkey ~ti fenc) tcode)
                    fencs)
                per_tensor)
            needs)
        order);
  if validate && !conflict then
    raise
      (Invalid_dataflow
         (Printf.sprintf "%s: two instances share a spacetime-stamp"
            df.Df.Dataflow.name));
  (* assemble metrics, mirroring Model.analyze *)
  let per_tensor =
    List.mapi
      (fun ti tensor ->
        let total = totals.(ti) in
        let temporal_reuse = reuse_t.(ti) in
        let spatial_reuse = reuse_s.(ti) in
        let direction =
          if List.mem tensor ctx.x_outputs then Ir.Tensor_op.Write
          else Ir.Tensor_op.Read
        in
        {
          Metrics.tensor;
          direction;
          volumes =
            {
              Metrics.total;
              temporal_reuse;
              spatial_reuse;
              unique = total - temporal_reuse - spatial_reuse;
            };
          footprint = footprint ti;
        })
      (Array.to_list tensors)
  in
  let n_instances = ctx.x_n_instances in
  let n_timestamps = max 1 (Hashtbl.length buckets) in
  let partial =
    {
      Metrics.dataflow = df.Df.Dataflow.name;
      per_tensor;
      n_instances;
      n_timestamps;
      pe_size;
      avg_utilization =
        float_of_int n_instances /. float_of_int (pe_size * n_timestamps);
      max_utilization = float_of_int !busiest /. float_of_int pe_size;
      delay_compute = n_timestamps;
      delay_read = 0.;
      delay_write = 0.;
      latency = 0.;
      latency_stamped = 0.;
      ibw = 0.;
      sbw = 0.;
      energy = 0.;
    }
  in
  let bw = float_of_int spec.Arch.Spec.bandwidth in
  let delay_read = float_of_int (Metrics.unique_inputs partial) /. bw in
  let delay_write = float_of_int (Metrics.unique_outputs partial) /. bw in
  let latency =
    Float.max (float_of_int n_timestamps) (delay_read +. delay_write)
  in
  let e = spec.Arch.Spec.energy in
  let energy =
    let open Arch.Energy in
    let all_total =
      List.fold_left (fun a tm -> a + tm.Metrics.volumes.Metrics.total) 0
        per_tensor
    in
    (float_of_int n_instances *. e.mac)
    +. (float_of_int all_total *. e.reg)
    +. (float_of_int (Metrics.total_unique partial) *. e.spm)
    +. (float_of_int (Metrics.total_spatial_reuse partial) *. e.link)
  in
  {
    partial with
    delay_read;
    delay_write;
    latency;
    latency_stamped = float_of_int !stamped_cycles;
    ibw =
      float_of_int (Metrics.total_spatial_reuse partial)
      /. float_of_int n_timestamps;
    sbw =
      float_of_int (Metrics.total_unique partial) /. float_of_int n_timestamps;
    energy;
  }

let analyze ?(adjacency : Df.Spacetime.adjacency = `Inner_step)
    ?(validate = true) ?(window = 1) (spec : Arch.Spec.t)
    (op : Ir.Tensor_op.t) (df : Df.Dataflow.t) : Metrics.t =
  analyze_in (context ~adjacency ~validate ~window ~share:false spec op) df
