(* Volume metrics (paper Section V-A, Table II).

   For one tensor with data-assignment relation A = { (PE|T) -> F }:
   - TotalVolume          = sum(A)
   - ReuseVolume          = sum(A  /\  M^-1 . A) for a spacetime-map M
   - UniqueVolume         = TotalVolume - ReuseVolume
   - TemporalReuseVolume  = reuse through the same-PE channel
   - SpatialReuseVolume   = reuse through the interconnect channel

   A stamp may be able to reuse a datum both from its own register and
   from a neighbor; the paper requires ReuseVolume = Temporal + Spatial,
   so we count temporal reuse first (registers are the cheaper source)
   and only credit the spatial channel with stamps that temporal reuse
   does not already cover. *)

module Isl = Tenet_isl
module Obs = Tenet_obs

let c_computes = Obs.counter "volumes.computes"

let reuse_map ~(assignment : Isl.Map.t) ~(m : Isl.Map.t) : Isl.Map.t =
  (* A /\ M^-1.A, i.e. (stamp, element) pairs whose element was already
     present at an adjacent predecessor stamp. *)
  Isl.Map.intersect assignment
    (Isl.Map.apply_range (Isl.Map.reverse m) assignment)

let compute ~(assignment : Isl.Map.t) ~(channels : Tenet_dataflow.Spacetime.channel list)
    : Metrics.volumes =
  Obs.incr c_computes;
  let total =
    Obs.with_span "volumes.total" (fun () -> Isl.Map.card assignment)
  in
  let temporal_ms =
    List.filter (fun c -> c.Tenet_dataflow.Spacetime.kind = `Temporal) channels
  in
  let spatial_ms =
    List.filter (fun c -> c.Tenet_dataflow.Spacetime.kind = `Spatial) channels
  in
  let union_reuse ms =
    match ms with
    | [] -> None
    | _ ->
        Some
          (Isl.Map.union_all
             (List.map
                (fun c ->
                  reuse_map ~assignment ~m:c.Tenet_dataflow.Spacetime.m)
                ms))
  in
  let rt = union_reuse temporal_ms in
  let temporal_reuse =
    Obs.with_span "volumes.temporal" (fun () ->
        match rt with None -> 0 | Some rt -> Isl.Map.card rt)
  in
  let spatial_reuse =
    Obs.with_span "volumes.spatial" (fun () ->
        match union_reuse spatial_ms with
        | None -> 0
        | Some rs -> (
            match rt with
            | None -> Isl.Map.card rs
            | Some rt ->
                (* pairs spatially reusable but not temporally reusable:
                   |rs \ rt| = |rs| - |rs /\ rt|, two cardinalities the
                   counting engine evaluates in closed form instead of a
                   per-point membership sweep over rs *)
                Isl.Map.card rs - Isl.Map.card (Isl.Map.intersect rs rt)))
  in
  {
    Metrics.total;
    temporal_reuse;
    spatial_reuse;
    unique = total - temporal_reuse - spatial_reuse;
  }
