(** Parametric metric templates.

    A template compiles an (arch spec, tensor op, dataflow) triple once,
    keeping chosen iterator extents as free {e parameters}; any concrete
    problem size is then answered by quasi-polynomial substitution — no
    point enumeration, no re-planning, O(1) in the size.

    Within one residue class of the extents modulo the dataflow's tiling
    periods, every integer metric (instance/timestamp counts, per-tensor
    volumes, footprints, stamped cycles) is polynomial of low per-dim
    degree in the extents.  The template fits that polynomial per class
    by exact-rational Lagrange interpolation through a few small concrete
    analyses, verifies it on a held-out larger sample, and caches it.
    Derived float metrics are reassembled by the same expressions as
    {!Concrete.analyze}, so instantiated metrics are byte-identical to a
    fresh concrete analysis at the same sizes.

    Sizes the template cannot cover (unfit class, extent below the
    sample floor, non-integral evaluation) fall back to the concrete
    engine; [template.class_fits], [template.class_unfit],
    [template.instantiations] and [template.fallbacks] counters record
    the split.  Under [TENET_COUNT_VERIFY=1] every instantiation is
    cross-checked against a fresh concrete analysis and a disagreement
    raises {!Tenet_isl.Count.Verify_mismatch} (diagnostic TN012). *)

type t
(** A compiled template.  Fitting is lazy per residue class and the
    class cache is mutex-guarded: a template may be shared across
    domains/threads. *)

val compile :
  ?adjacency:Tenet_dataflow.Spacetime.adjacency ->
  ?validate:bool ->
  ?window:int ->
  Tenet_arch.Spec.t ->
  Tenet_ir.Tensor_op.t ->
  Tenet_dataflow.Dataflow.t ->
  params:string list ->
  t
(** [compile spec op df ~params] builds a template with the named
    iterators of [op] as free size parameters.  Cheap: no concrete
    analysis runs until the first instantiation (only the parametric
    domain count is derived symbolically).  Raises [Invalid_argument]
    if a param is not an iterator of [op] or appears twice.  The
    optional arguments match {!Concrete.analyze}. *)

val params : t -> string list
(** The parameter names, in the order [compile] received them. *)

val try_instantiate : t -> sizes:(string * int) list -> Metrics.t option
(** [try_instantiate t ~sizes] answers the metrics at the given extents
    (params absent from [sizes] keep the op's own extent) purely by
    substitution, or [None] when this size resists the template (the
    caller should fall back to a concrete analysis).  Raises
    [Invalid_argument] for names that are not parameters or extents
    [< 1]. *)

val instantiate : t -> sizes:(string * int) list -> Metrics.t
(** [try_instantiate] with the concrete-engine fallback applied: always
    returns metrics (possibly by running {!Concrete.analyze} on the
    resized op). *)

val closed_forms : t -> sizes:(string * int) list -> (string * string) list
(** [closed_forms t ~sizes] renders the fitted quasi-polynomials for the
    residue class containing [sizes] as [(metric, polynomial)] pairs in
    the parameter names — e.g. [("n_instances", "N*M*K")] — plus a
    ["domain_points"] entry from the symbolic counting engine when it
    produced one.  Empty when that class is not covered. *)

val domain_closed_form : t -> string option
(** The parametric iteration-domain count from
    {!Tenet_isl.Count.count_bset_param}, rendered in the parameter
    names, when the symbolic engine covered it. *)

(** {2 Shared helpers} *)

val shrink_op :
  Tenet_ir.Tensor_op.t -> (string * int) list -> Tenet_ir.Tensor_op.t
(** [shrink_op op [(dim, extent); ...]] re-bounds each named iterator to
    [extent] points, keeping its origin.  Extents may exceed the
    original bounds. *)

val period_of : Tenet_dataflow.Dataflow.t -> string -> int option
(** The tiling period the dataflow applies to a dim (the modulus or
    divisor of the innermost [mod]/[fdiv] on it), when any. *)
