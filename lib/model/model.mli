(** The TENET performance model (paper Section V), relational engine:
    a verbatim transcription of the paper's counting formulas over
    {!Tenet_isl}.  Use {!Concrete} for the fast engine with identical
    semantics, and {!Scaled} for layers too large to enumerate. *)

module Ir = Tenet_ir
module Arch = Tenet_arch
module Df = Tenet_dataflow

exception Invalid_dataflow of string

val stamp_histogram :
  Tenet_isl.Map.t ->
  n_space:int ->
  time_bounds:(int * int) list ->
  (int, int ref) Hashtbl.t
(** Instances per time-stamp (active PEs under an injective dataflow),
    keyed by the stamp's mixed-radix encoding against [time_bounds]. *)

val analyze :
  ?adjacency:[ `Inner_step | `Lex_step ] ->
  ?validate:bool ->
  Arch.Spec.t ->
  Ir.Tensor_op.t ->
  Df.Dataflow.t ->
  Metrics.t
(** Full metrics by relation counting.  Raises {!Invalid_dataflow} when
    validation fails. *)

val tensor_volumes :
  ?adjacency:[ `Inner_step | `Lex_step ] ->
  Arch.Spec.t ->
  Ir.Tensor_op.t ->
  Df.Dataflow.t ->
  string ->
  Metrics.volumes
(** Volumes of a single tensor (no validation). *)

type engine = [ `Relational | `Concrete ]

val analyze_with :
  ?engine:engine ->
  ?adjacency:[ `Inner_step | `Lex_step ] ->
  ?validate:bool ->
  Arch.Spec.t ->
  Ir.Tensor_op.t ->
  Df.Dataflow.t ->
  Metrics.t
(** Engine dispatch; the default [`Concrete] engine is property-tested
    equivalent and orders of magnitude faster. *)

val analyze_template :
  ?adjacency:Df.Spacetime.adjacency ->
  ?validate:bool ->
  ?window:int ->
  Arch.Spec.t ->
  Ir.Tensor_op.t ->
  Df.Dataflow.t ->
  params:string list ->
  Template.t
(** Compile once with the named iterator extents left as free
    parameters; answer any concrete size with {!instantiate} in O(1).
    See {!Template}. *)

val instantiate : Template.t -> sizes:(string * int) list -> Metrics.t
(** {!Template.instantiate}: quasi-polynomial substitution when the
    size is covered, concrete-engine fallback otherwise. *)
