(* Result records of the performance model (paper Section V). *)

type volumes = {
  total : int; (* TotalVolume: all (stamp, element) accesses *)
  temporal_reuse : int; (* reused from the same PE's previous stamp *)
  spatial_reuse : int; (* reused over the interconnect (and not temporally) *)
  unique : int; (* TotalVolume - ReuseVolume: scratchpad traffic *)
}

let reuse v = v.temporal_reuse + v.spatial_reuse

let reuse_factor v =
  if v.unique = 0 then Float.infinity
  else float_of_int v.total /. float_of_int v.unique

type tensor_metrics = {
  tensor : string;
  direction : Tenet_ir.Tensor_op.direction;
  volumes : volumes;
  footprint : int; (* distinct elements touched *)
}

type t = {
  dataflow : string;
  per_tensor : tensor_metrics list;
  n_instances : int; (* card D_S = number of MACs *)
  n_timestamps : int; (* distinct time-stamps = compute cycles *)
  pe_size : int;
  avg_utilization : float; (* instances / (pe_size * timestamps) *)
  max_utilization : float; (* busiest stamp / pe_size *)
  delay_compute : int; (* cycles: one time-stamp per cycle *)
  delay_read : float; (* unique input volume / bandwidth *)
  delay_write : float; (* unique output volume / bandwidth *)
  latency : float; (* max(compute, read + write) *)
  latency_stamped : float;
      (* sum over stamps of max(1, traffic_t / bandwidth): accounts for
         bursty per-stamp traffic the overlap formula hides *)
  ibw : float; (* interconnect bandwidth: spatial reuse / compute *)
  sbw : float; (* scratchpad bandwidth: unique volume / compute *)
  energy : float; (* Energy model units (MAC = 1) *)
}

let find_tensor t name =
  List.find (fun tm -> String.equal tm.tensor name) t.per_tensor

let unique_inputs t =
  List.fold_left
    (fun acc tm ->
      if tm.direction = Tenet_ir.Tensor_op.Read then acc + tm.volumes.unique
      else acc)
    0 t.per_tensor

let unique_outputs t =
  List.fold_left
    (fun acc tm ->
      if tm.direction = Tenet_ir.Tensor_op.Write then acc + tm.volumes.unique
      else acc)
    0 t.per_tensor

let total_unique t =
  List.fold_left (fun acc tm -> acc + tm.volumes.unique) 0 t.per_tensor

let total_spatial_reuse t =
  List.fold_left (fun acc tm -> acc + tm.volumes.spatial_reuse) 0 t.per_tensor

let pp_row fmt t =
  Format.fprintf fmt
    "%-24s lat=%10.1f cyc=%8d util(avg/max)=%4.2f/%4.2f sbw=%6.2f ibw=%6.2f \
     energy=%12.1f"
    t.dataflow t.latency t.delay_compute t.avg_utilization t.max_utilization
    t.sbw t.ibw t.energy

let to_string t = Format.asprintf "%a" pp_row t

(* Machine-readable form, consumed by the CLI's --json/--stats outputs and
   the bench timing files.  Keys are stable: tests round-trip this through
   Tenet_obs.Json.parse. *)
let volumes_to_json (v : volumes) : Tenet_obs.Json.t =
  Tenet_obs.Json.Obj
    [
      ("total", Tenet_obs.Json.Int v.total);
      ("temporal_reuse", Tenet_obs.Json.Int v.temporal_reuse);
      ("spatial_reuse", Tenet_obs.Json.Int v.spatial_reuse);
      ("unique", Tenet_obs.Json.Int v.unique);
    ]

let to_json (t : t) : Tenet_obs.Json.t =
  let open Tenet_obs.Json in
  Obj
    [
      ("dataflow", String t.dataflow);
      ("n_instances", Int t.n_instances);
      ("n_timestamps", Int t.n_timestamps);
      ("pe_size", Int t.pe_size);
      ("avg_utilization", Float t.avg_utilization);
      ("max_utilization", Float t.max_utilization);
      ("delay_compute", Int t.delay_compute);
      ("delay_read", Float t.delay_read);
      ("delay_write", Float t.delay_write);
      ("latency", Float t.latency);
      ("latency_stamped", Float t.latency_stamped);
      ("ibw", Float t.ibw);
      ("sbw", Float t.sbw);
      ("energy", Float t.energy);
      ( "per_tensor",
        List
          (List.map
             (fun tm ->
               Obj
                 [
                   ("tensor", String tm.tensor);
                   ( "direction",
                     String
                       (match tm.direction with
                       | Tenet_ir.Tensor_op.Read -> "in"
                       | Tenet_ir.Tensor_op.Write -> "out") );
                   ("footprint", Int tm.footprint);
                   ("volumes", volumes_to_json tm.volumes);
                 ])
             t.per_tensor) );
    ]

(* Total inverse of [to_json], so responses cached or shipped over the
   serve protocol round-trip exactly (floats print via the
   shortest-exact form in Tenet_obs.Json). *)
let of_json (j : Tenet_obs.Json.t) : (t, string) result =
  let module J = Tenet_obs.Json in
  let ( let* ) = Result.bind in
  let field name conv j =
    match J.member name j with
    | None -> Error (Printf.sprintf "metrics: missing field %S" name)
    | Some v -> (
        match conv v with
        | Some x -> Ok x
        | None -> Error (Printf.sprintf "metrics: bad field %S" name))
  in
  let int_f n = field n J.to_int in
  let float_f n = field n J.to_float in
  let str_f n = field n J.to_str in
  let volumes_of_json v =
    let* total = int_f "total" v in
    let* temporal_reuse = int_f "temporal_reuse" v in
    let* spatial_reuse = int_f "spatial_reuse" v in
    let* unique = int_f "unique" v in
    Ok { total; temporal_reuse; spatial_reuse; unique }
  in
  let tensor_of_json v =
    let* tensor = str_f "tensor" v in
    let* dir = str_f "direction" v in
    let* direction =
      match dir with
      | "in" -> Ok Tenet_ir.Tensor_op.Read
      | "out" -> Ok Tenet_ir.Tensor_op.Write
      | d -> Error (Printf.sprintf "metrics: bad direction %S" d)
    in
    let* footprint = int_f "footprint" v in
    let* volumes = field "volumes" Option.some v in
    let* volumes = volumes_of_json volumes in
    Ok { tensor; direction; volumes; footprint }
  in
  let* dataflow = str_f "dataflow" j in
  let* n_instances = int_f "n_instances" j in
  let* n_timestamps = int_f "n_timestamps" j in
  let* pe_size = int_f "pe_size" j in
  let* avg_utilization = float_f "avg_utilization" j in
  let* max_utilization = float_f "max_utilization" j in
  let* delay_compute = int_f "delay_compute" j in
  let* delay_read = float_f "delay_read" j in
  let* delay_write = float_f "delay_write" j in
  let* latency = float_f "latency" j in
  let* latency_stamped = float_f "latency_stamped" j in
  let* ibw = float_f "ibw" j in
  let* sbw = float_f "sbw" j in
  let* energy = float_f "energy" j in
  let* rows = field "per_tensor" J.to_list j in
  let* per_tensor =
    List.fold_left
      (fun acc row ->
        let* acc = acc in
        let* tm = tensor_of_json row in
        Ok (tm :: acc))
      (Ok []) rows
  in
  Ok
    {
      dataflow;
      per_tensor = List.rev per_tensor;
      n_instances;
      n_timestamps;
      pe_size;
      avg_utilization;
      max_utilization;
      delay_compute;
      delay_read;
      delay_write;
      latency;
      latency_stamped;
      ibw;
      sbw;
      energy;
    }

let pp_tensor_row fmt tm =
  let v = tm.volumes in
  Format.fprintf fmt
    "%-3s %-6s total=%-10d uniq=%-10d reuseT=%-10d reuseS=%-10d factor=%6.2f"
    tm.tensor
    (match tm.direction with
    | Tenet_ir.Tensor_op.Read -> "in"
    | Tenet_ir.Tensor_op.Write -> "out")
    v.total v.unique v.temporal_reuse v.spatial_reuse (reuse_factor v)
