(* Scaled analysis for large layers — the substitute for Barvinok's
   symbolic counting (DESIGN.md, substitution table).

   TENET's quasi-affine dataflows are periodic in their sequential loop
   dimensions: after the first period, every additional iteration of an
   outer dim contributes the same per-period volumes.  Hence every integer
   metric (TotalVolume, reuse volumes, timestamps, instances) is
   *multilinear* in the extents of those dims once the extents exceed one
   period.  We exploit this by measuring the metrics exactly on the 2^h
   corner combinations of two sample extents per scaled dim, fitting the
   unique multilinear interpolant, and evaluating it at the full extents.

   Exactness on in-range problems is covered by unit tests
   (test_scaled.ml); callers are responsible for choosing scaled dims that
   are sequential (not skewed into space stamps), which holds for the
   channel/spatial dims of the large layers in the paper's Table IV. *)

module Ir = Tenet_ir
module Arch = Tenet_arch
module Df = Tenet_dataflow
module Obs = Tenet_obs

let c_corners = Obs.counter "scaled.corners_evaluated"
let c_template_exact = Obs.counter "scaled.template_exact"
let c_interpolated = Obs.counter "scaled.interpolated"

type spec_dim = { dim : string; sample_lo : int; sample_hi : int }

(* Default samples: two and four periods of the dim's tiling (or 4 and 8
   iterations when untiled), clamped to the full extent. *)
let default_samples (op : Ir.Tensor_op.t) (df : Df.Dataflow.t) dim =
  let lo, hi = Ir.Tensor_op.iter_bounds op dim in
  let extent = hi - lo + 1 in
  let base = match Template.period_of df dim with Some p -> p | None -> 4 in
  let s_lo = min extent (2 * base) and s_hi = min extent (4 * base) in
  { dim; sample_lo = s_lo; sample_hi = s_hi }

let shrink_op = Template.shrink_op

(* The integer metrics we extrapolate, flattened to a float vector. *)
let to_vector (m : Metrics.t) : float array =
  let per_tensor =
    List.concat_map
      (fun tm ->
        let v = tm.Metrics.volumes in
        [
          float_of_int v.Metrics.total;
          float_of_int v.Metrics.temporal_reuse;
          float_of_int v.Metrics.spatial_reuse;
          float_of_int tm.Metrics.footprint;
        ])
      m.Metrics.per_tensor
  in
  Array.of_list
    (float_of_int m.Metrics.n_instances
    :: float_of_int m.Metrics.n_timestamps
    :: per_tensor)

let of_vector (template : Metrics.t) (bw : int) (energy : Arch.Energy.t)
    (vec : float array) : Metrics.t =
  let geti i = int_of_float (Float.round vec.(i)) in
  let n_instances = geti 0 and n_timestamps = max 1 (geti 1) in
  let per_tensor =
    List.mapi
      (fun idx tm ->
        let base = 2 + (4 * idx) in
        let total = geti base
        and temporal_reuse = geti (base + 1)
        and spatial_reuse = geti (base + 2)
        and footprint = geti (base + 3) in
        {
          tm with
          Metrics.volumes =
            {
              Metrics.total;
              temporal_reuse;
              spatial_reuse;
              unique = total - temporal_reuse - spatial_reuse;
            };
          footprint;
        })
      template.Metrics.per_tensor
  in
  let partial =
    {
      template with
      Metrics.per_tensor;
      n_instances;
      n_timestamps;
      delay_compute = n_timestamps;
      latency_stamped = 0.;
      avg_utilization =
        float_of_int n_instances
        /. float_of_int (template.Metrics.pe_size * n_timestamps);
    }
  in
  let bwf = float_of_int bw in
  let delay_read = float_of_int (Metrics.unique_inputs partial) /. bwf in
  let delay_write = float_of_int (Metrics.unique_outputs partial) /. bwf in
  let latency =
    Float.max (float_of_int n_timestamps) (delay_read +. delay_write)
  in
  let all_total =
    List.fold_left
      (fun a tm -> a + tm.Metrics.volumes.Metrics.total)
      0 per_tensor
  in
  let energy_total =
    let open Arch.Energy in
    (float_of_int n_instances *. energy.mac)
    +. (float_of_int all_total *. energy.reg)
    +. (float_of_int (Metrics.total_unique partial) *. energy.spm)
    +. (float_of_int (Metrics.total_spatial_reuse partial) *. energy.link)
  in
  {
    partial with
    delay_read;
    delay_write;
    latency;
    latency_stamped = latency;
    ibw =
      float_of_int (Metrics.total_spatial_reuse partial)
      /. float_of_int n_timestamps;
    sbw =
      float_of_int (Metrics.total_unique partial) /. float_of_int n_timestamps;
    energy = energy_total;
  }

(* Multilinear (tensor-product linear) extrapolation from 2^h corners.

   When no explicit [spec_dims] override the sampling (callers that pass
   one are deliberately exercising the interpolant), a parametric
   {!Template} is tried first: where its per-residue-class fit covers
   the full extents the answer is *exact* — byte-identical to a concrete
   analysis, including [latency_stamped] and [max_utilization], which
   the interpolant only approximates.  The corner interpolant remains
   the fallback for sizes or classes the template refuses. *)
let analyze ?(adjacency : Df.Spacetime.adjacency = `Inner_step)
    ?(validate = true) ?spec_dims (spec : Arch.Spec.t) (op : Ir.Tensor_op.t)
    (df : Df.Dataflow.t) ~(scale_dims : string list) : Metrics.t =
  let template_first () =
    if spec_dims <> None || scale_dims = [] then None
    else
      match
        Template.compile ~adjacency ~validate spec op df ~params:scale_dims
      with
      | exception Invalid_argument _ -> None
      | tpl -> Template.try_instantiate tpl ~sizes:[]
  in
  match template_first () with
  | Some m ->
      Obs.incr c_template_exact;
      m
  | None ->
  Obs.incr c_interpolated;
  let sdims =
    match spec_dims with
    | Some s -> s
    | None -> List.map (default_samples op df) scale_dims
  in
  (* dims whose sample span is degenerate are analyzed at full size *)
  let sdims = List.filter (fun s -> s.sample_lo < s.sample_hi) sdims in
  let h = List.length sdims in
  if h = 0 then Concrete.analyze ~adjacency ~validate spec op df
  else begin
    Obs.with_span ~args:[ ("dataflow", df.Df.Dataflow.name) ] "scaled.analyze"
    @@ fun () ->
    let corners = Tenet_util.Int_math.pow 2 h in
    let corner_vec = Array.make corners [||] in
    let template = ref None in
    for c = 0 to corners - 1 do
      Obs.incr c_corners;
      let assignment =
        List.mapi
          (fun i s ->
            (s.dim, if c land (1 lsl i) <> 0 then s.sample_hi else s.sample_lo))
          sdims
      in
      let small = shrink_op op assignment in
      let m =
        Obs.with_span ~args:[ ("corner", string_of_int c) ] "scaled.corner"
          (fun () -> Concrete.analyze ~adjacency ~validate spec small df)
      in
      if !template = None then template := Some m;
      corner_vec.(c) <- to_vector m
    done;
    let full_extent d =
      let lo, hi = Ir.Tensor_op.iter_bounds op d in
      float_of_int (hi - lo + 1)
    in
    (* Lagrange weights per corner *)
    let weight c =
      List.fold_left
        (fun (acc, i) s ->
          let x = full_extent s.dim in
          let x0 = float_of_int s.sample_lo and x1 = float_of_int s.sample_hi in
          let w =
            if c land (1 lsl i) <> 0 then (x -. x0) /. (x1 -. x0)
            else (x1 -. x) /. (x1 -. x0)
          in
          (acc *. w, i + 1))
        (1., 0) sdims
      |> fst
    in
    let dim_v = Array.length corner_vec.(0) in
    let out = Array.make dim_v 0. in
    for c = 0 to corners - 1 do
      let w = weight c in
      for i = 0 to dim_v - 1 do
        out.(i) <- out.(i) +. (w *. corner_vec.(c).(i))
      done
    done;
    let template = Option.get !template in
    let m =
      of_vector template spec.Arch.Spec.bandwidth spec.Arch.Spec.energy out
    in
    (* the sampled max utilization is representative; keep the largest *)
    { m with Metrics.max_utilization = template.Metrics.max_utilization }
  end
