(* Parametric metric templates — compile a dataflow once, answer any
   problem size by substitution (ROADMAP item 1; PAPER.md §2's Barvinok
   substitution, generalized from counts to the full metric record).

   TENET's quasi-affine dataflows are periodic in their iteration dims:
   within a residue class of the extent modulo the dim's tiling period,
   every integer metric (instances, timestamps, volumes, footprints,
   stamped cycles) is a polynomial of low per-dim degree in the extents.
   A template exploits that by fitting, per residue class, the exact
   tensor-product Lagrange interpolant through concrete measurements at
   a few small sample extents — exact rationals throughout, so the fit
   is an identity rather than an approximation — and *verifying* the
   fit on a held-out larger sample before trusting it.  Instantiation
   then evaluates quasi-polynomials ({!Tenet_isl.Qpoly.eval}): no
   enumeration, no re-planning, O(1) in the problem size.

   The derived float metrics (utilizations, delays, latency, energy,
   bandwidths) are re-assembled from the integer vector by the same
   expressions, in the same order, as [Concrete.analyze_in]'s final
   assembly — so an instantiation that covers the integer vector
   reproduces the concrete metrics byte for byte.

   Anything that resists (an unfit class, an extent below the sample
   floor, a non-integral evaluation) falls back to the concrete engine;
   [template.*] counters record the split, and under
   [TENET_COUNT_VERIFY=1] every instantiation is cross-checked against
   a fresh concrete analysis (a disagreement raises
   {!Tenet_isl.Count.Verify_mismatch}, surfaced as TN012). *)

module Ir = Tenet_ir
module Arch = Tenet_arch
module Df = Tenet_dataflow
module Obs = Tenet_obs
module Isl = Tenet_isl
module Qpoly = Isl.Qpoly

let c_class_fits = Obs.counter "template.class_fits"
let c_class_unfit = Obs.counter "template.class_unfit"
let c_instantiations = Obs.counter "template.instantiations"
let c_fallbacks = Obs.counter "template.fallbacks"

(* Re-bound the named iterators to the given extents (keeping each
   dim's origin).  Extents may exceed the op's original bounds: the
   template answers sizes never seen before. *)
let shrink_op (op : Ir.Tensor_op.t) (assignment : (string * int) list) :
    Ir.Tensor_op.t =
  {
    op with
    Ir.Tensor_op.iters =
      List.map
        (fun it ->
          match List.assoc_opt it.Ir.Tensor_op.iname assignment with
          | Some extent ->
              { it with Ir.Tensor_op.hi = it.Ir.Tensor_op.lo + extent - 1 }
          | None -> it)
        op.Ir.Tensor_op.iters;
  }

(* The tiling period applied to [dim] by the dataflow's stamps (the
   modulus or divisor of the innermost mod/fdiv on the dim), when any:
   metrics repeat their polynomial shape with this period. *)
let period_of (df : Df.Dataflow.t) dim : int option =
  let rec modulus_of (e : Isl.Aff.t) =
    match e with
    | Isl.Aff.Mod (Isl.Aff.Var d, p) when String.equal d dim -> Some p
    | Isl.Aff.Fdiv (Isl.Aff.Var d, p) when String.equal d dim -> Some p
    | Isl.Aff.Var _ | Isl.Aff.Int _ -> None
    | Isl.Aff.Neg a | Isl.Aff.Abs a | Isl.Aff.Fdiv (a, _) | Isl.Aff.Mod (a, _)
      ->
        modulus_of a
    | Isl.Aff.Add (a, b) | Isl.Aff.Sub (a, b) | Isl.Aff.Mul (a, b) -> (
        match modulus_of a with Some p -> Some p | None -> modulus_of b)
  in
  List.fold_left
    (fun acc e -> match acc with Some _ -> acc | None -> modulus_of e)
    None
    (df.Df.Dataflow.space @ df.Df.Dataflow.time)

(* ------------------------------------------------------------------ *)
(* The integer metric vector.                                          *)
(* ------------------------------------------------------------------ *)

(* Everything [Concrete.analyze_in]'s final assembly consumes, as exact
   integers: the float metrics are all functions of these plus the
   arch spec.  [busiest] round-trips through [max_utilization] exactly
   (it is busiest / pe_size in binary floating point), [stamped_cycles]
   through [latency_stamped]. *)
let vector_of (m : Metrics.t) : int array =
  let busiest =
    int_of_float
      (Float.round (m.Metrics.max_utilization *. float_of_int m.Metrics.pe_size))
  in
  let stamped = int_of_float m.Metrics.latency_stamped in
  Array.of_list
    (m.Metrics.n_instances :: m.Metrics.n_timestamps :: busiest :: stamped
    :: List.concat_map
         (fun tm ->
           [
             tm.Metrics.volumes.Metrics.total;
             tm.Metrics.volumes.Metrics.temporal_reuse;
             tm.Metrics.volumes.Metrics.spatial_reuse;
             tm.Metrics.footprint;
           ])
         m.Metrics.per_tensor)

let component_names (skeleton : Metrics.t) : string list =
  [ "n_instances"; "n_timestamps"; "busiest_pe_instances"; "stamped_cycles" ]
  @ List.concat_map
      (fun tm ->
        let t = tm.Metrics.tensor in
        [
          t ^ ".total_volume";
          t ^ ".temporal_reuse";
          t ^ ".spatial_reuse";
          t ^ ".footprint";
        ])
      skeleton.Metrics.per_tensor

(* Reassemble a full metric record from the integer vector.  This
   mirrors the final assembly of [Concrete.analyze_in] expression for
   expression (same operations, same order), so the derived floats are
   bit-identical to what a concrete run at the same sizes produces. *)
let metrics_of_vector (skeleton : Metrics.t) (spec : Arch.Spec.t)
    (vec : int array) : Metrics.t =
  let n_instances = vec.(0) in
  let n_timestamps = max 1 vec.(1) in
  let busiest = vec.(2) in
  let stamped_cycles = vec.(3) in
  let pe_size = skeleton.Metrics.pe_size in
  let per_tensor =
    List.mapi
      (fun idx tm ->
        let base = 4 + (4 * idx) in
        let total = vec.(base)
        and temporal_reuse = vec.(base + 1)
        and spatial_reuse = vec.(base + 2)
        and footprint = vec.(base + 3) in
        {
          tm with
          Metrics.volumes =
            {
              Metrics.total;
              temporal_reuse;
              spatial_reuse;
              unique = total - temporal_reuse - spatial_reuse;
            };
          footprint;
        })
      skeleton.Metrics.per_tensor
  in
  let partial =
    {
      skeleton with
      Metrics.per_tensor;
      n_instances;
      n_timestamps;
      avg_utilization =
        float_of_int n_instances /. float_of_int (pe_size * n_timestamps);
      max_utilization = float_of_int busiest /. float_of_int pe_size;
      delay_compute = n_timestamps;
      delay_read = 0.;
      delay_write = 0.;
      latency = 0.;
      latency_stamped = 0.;
      ibw = 0.;
      sbw = 0.;
      energy = 0.;
    }
  in
  let bw = float_of_int spec.Arch.Spec.bandwidth in
  let delay_read = float_of_int (Metrics.unique_inputs partial) /. bw in
  let delay_write = float_of_int (Metrics.unique_outputs partial) /. bw in
  let latency =
    Float.max (float_of_int n_timestamps) (delay_read +. delay_write)
  in
  let e = spec.Arch.Spec.energy in
  let energy =
    let open Arch.Energy in
    let all_total =
      List.fold_left (fun a tm -> a + tm.Metrics.volumes.Metrics.total) 0
        per_tensor
    in
    (float_of_int n_instances *. e.mac)
    +. (float_of_int all_total *. e.reg)
    +. (float_of_int (Metrics.total_unique partial) *. e.spm)
    +. (float_of_int (Metrics.total_spatial_reuse partial) *. e.link)
  in
  {
    partial with
    delay_read;
    delay_write;
    latency;
    latency_stamped = float_of_int stamped_cycles;
    ibw =
      float_of_int (Metrics.total_spatial_reuse partial)
      /. float_of_int n_timestamps;
    sbw =
      float_of_int (Metrics.total_unique partial) /. float_of_int n_timestamps;
    energy;
  }

(* ------------------------------------------------------------------ *)
(* Templates.                                                          *)
(* ------------------------------------------------------------------ *)

type class_model =
  | Fitted of {
      qps : Qpoly.t array;
          (* one quasi-polynomial per vector component, variables are
             parameter indices (valued by extent) *)
      skeleton : Metrics.t;
      degree : int; (* per-dim polynomial degree of the fit *)
      floor : int array;
          (* per-param smallest sampled extent: the fit is certified
             from here up only — transients (e.g. a systolic pipeline
             still filling) make small extents genuinely non-polynomial *)
    }
  | Unfit

type t = {
  spec : Arch.Spec.t;
  op : Ir.Tensor_op.t;
  df : Df.Dataflow.t;
  adjacency : Df.Spacetime.adjacency;
  validate : bool;
  window : int;
  params : string array;
  periods : int array;
  domain_qp : Qpoly.t option;
      (* |iteration domain| in the parameters, from the symbolic counting
         engine — the parametric n_instances, for display/cross-checks *)
  classes : (int list, class_model) Hashtbl.t; (* residue vector -> fit *)
  mutex : Mutex.t;
}

let params t = Array.to_list t.params

(* Parametric count of the op's iteration domain: a box whose
   param-dim widths are the parameters themselves. *)
let domain_count (op : Ir.Tensor_op.t) (params : string array) :
    Qpoly.t option =
  let h = Array.length params in
  let iters = op.Ir.Tensor_op.iters in
  let nvis = h + List.length iters in
  let param_index d =
    let rec go i = if i >= h then None else if String.equal params.(i) d then Some i else go (i + 1) in
    go 0
  in
  let cons = ref [] in
  List.iteri
    (fun k (it : Ir.Tensor_op.iter) ->
      let v = h + k in
      let a = Array.make nvis 0 in
      a.(v) <- 1;
      cons := { Isl.Bset.a; k = -it.Ir.Tensor_op.lo; eq = false } :: !cons;
      let a = Array.make nvis 0 in
      a.(v) <- -1;
      match param_index it.Ir.Tensor_op.iname with
      | Some i ->
          (* x <= lo + e_i - 1 *)
          a.(i) <- 1;
          cons :=
            { Isl.Bset.a; k = it.Ir.Tensor_op.lo - 1; eq = false } :: !cons
      | None -> cons := { Isl.Bset.a; k = it.Ir.Tensor_op.hi; eq = false } :: !cons)
    iters;
  Isl.Count.count_bset_param ~n_params:h
    (Isl.Bset.add_cons (Isl.Bset.universe nvis) !cons)

let compile ?(adjacency : Df.Spacetime.adjacency = `Inner_step)
    ?(validate = true) ?(window = 1) (spec : Arch.Spec.t)
    (op : Ir.Tensor_op.t) (df : Df.Dataflow.t) ~(params : string list) : t =
  let names = Ir.Tensor_op.iter_names op in
  List.iter
    (fun d ->
      if not (List.mem d names) then
        invalid_arg
          (Printf.sprintf "Template.compile: %s is not an iterator of %s" d
             op.Ir.Tensor_op.name))
    params;
  let rec dups = function
    | [] -> ()
    | d :: tl ->
        if List.mem d tl then
          invalid_arg (Printf.sprintf "Template.compile: duplicate param %s" d)
        else dups tl
  in
  dups params;
  let params = Array.of_list params in
  let periods =
    Array.map
      (fun d -> match period_of df d with Some p -> p | None -> 4)
      params
  in
  {
    spec;
    op;
    df;
    adjacency;
    validate;
    window;
    params;
    periods;
    domain_qp = domain_count op params;
    classes = Hashtbl.create 8;
    mutex = Mutex.create ();
  }

(* ------------------------------------------------------------------ *)
(* Per-residue-class fitting.                                          *)
(* ------------------------------------------------------------------ *)

(* Concrete analysis at a corner beyond this size would cost more than
   it saves; such classes stay on the concrete path. *)
let max_corner_instances = 20_000_000

(* basis_j(x) = prod_{k<>j} (x - x_k) / (x_j - x_k), exact. *)
let lagrange_qp ~var ~(nodes : int array) (j : int) : Qpoly.t =
  let num = ref Qpoly.one and den = ref 1 in
  Array.iteri
    (fun k xk ->
      if k <> j then begin
        num := Qpoly.mul !num (Qpoly.sub (Qpoly.var var) (Qpoly.of_int xk));
        den := !den * (nodes.(j) - xk)
      end)
    nodes;
  Qpoly.scale (Qpoly.Q.make 1 !den) !num

let fit_class (t : t) (residues : int array) : class_model =
  let h = Array.length residues in
  let cache : (int list, int array * Metrics.t) Hashtbl.t =
    Hashtbl.create 32
  in
  let eval_at (extents : int array) : int array * Metrics.t =
    let key = Array.to_list extents in
    match Hashtbl.find_opt cache key with
    | Some v -> v
    | None ->
        let assignment =
          List.mapi (fun i d -> (d, extents.(i))) (Array.to_list t.params)
        in
        let small = shrink_op t.op assignment in
        if Ir.Tensor_op.n_instances small > max_corner_instances then
          raise Exit;
        let m =
          Concrete.analyze ~adjacency:t.adjacency ~validate:t.validate
            ~window:t.window t.spec small t.df
        in
        let v = (vector_of m, m) in
        Hashtbl.add cache key v;
        v
  in
  (* [nodes_per_dim] sample extents per dim (degree nodes_per_dim - 1)
     starting [base] periods above the residue, plus one held-out
     verification point per dim beyond the last node: a polynomial of
     per-dim degree <= nodes_per_dim that agrees with the interpolant at
     nodes_per_dim + 1 points per dim *is* the interpolant, so within
     the periodicity assumption the holdout check certifies the fit.
     Escalating [base] skips start-up transients (a systolic pipeline
     still filling) that make the smallest extents non-polynomial. *)
  let try_degree ~base nodes_per_dim =
    let nodes =
      Array.init h (fun i ->
          Array.init nodes_per_dim (fun j ->
              residues.(i) + ((base + j) * t.periods.(i))))
    in
    let holdout =
      Array.init h (fun i ->
          residues.(i) + ((base + nodes_per_dim) * t.periods.(i)))
    in
    let ncorners = Tenet_util.Int_math.pow nodes_per_dim h in
    let qps = ref [||] and skeleton = ref None in
    for c = 0 to ncorners - 1 do
      (* mixed-radix digits of [c] select one node per dim *)
      let extents = Array.make h 0 in
      let rem = ref c in
      for i = 0 to h - 1 do
        let j = !rem mod nodes_per_dim in
        rem := !rem / nodes_per_dim;
        extents.(i) <- nodes.(i).(j)
      done;
      let vec, m = eval_at extents in
      if !skeleton = None then skeleton := Some m;
      let basis = ref Qpoly.one in
      let rem = ref c in
      for i = 0 to h - 1 do
        let j = !rem mod nodes_per_dim in
        rem := !rem / nodes_per_dim;
        basis := Qpoly.mul !basis (lagrange_qp ~var:i ~nodes:nodes.(i) j)
      done;
      if Array.length !qps = 0 then
        qps := Array.make (Array.length vec) Qpoly.zero;
      Array.iteri
        (fun comp v ->
          !qps.(comp) <-
            Qpoly.add !qps.(comp) (Qpoly.scale (Qpoly.Q.of_int v) !basis))
        vec
    done;
    let qps = !qps and skeleton = Option.get !skeleton in
    (* holdout verification *)
    let hvec, _ = eval_at holdout in
    let dbg = Sys.getenv_opt "TENET_TEMPLATE_DEBUG" <> None in
    let ok =
      try
        Array.length hvec = Array.length qps
        && Array.for_all (fun x -> x)
             (Array.mapi
                (fun comp expect ->
                  let got = Qpoly.eval (fun i -> holdout.(i)) qps.(comp) in
                  if dbg && got <> expect then
                    Printf.eprintf
                      "[template] holdout miss comp=%d expect=%d got=%d qp=%s\n%!"
                      comp expect got
                      (Qpoly.to_string qps.(comp));
                  got = expect)
                hvec)
      with Invalid_argument msg ->
        if dbg then Printf.eprintf "[template] holdout raise: %s\n%!" msg;
        false
    in
    if ok then
      Some
        (Fitted
           {
             qps;
             skeleton;
             degree = nodes_per_dim - 1;
             floor = Array.map (fun ns -> ns.(0)) nodes;
           })
    else None
  in
  let rec ladder = function
    | [] -> None
    | (base, deg) :: rest -> (
        match try_degree ~base deg with
        | Some f -> Some f
        | None -> ladder rest)
  in
  (* deeper bases skip longer start-up transients: a systolic skew over
     a p x p array takes ~2p cycles to fill, which can exceed several
     periods of a finely-tiled dim *)
  match ladder [ (2, 2); (2, 3); (3, 2); (3, 3); (4, 2); (4, 3); (6, 2) ] with
  | Some f ->
      Obs.incr c_class_fits;
      f
  | None ->
      Obs.incr c_class_unfit;
      Unfit
  | exception (Exit | Concrete.Invalid_dataflow _) ->
      Obs.incr c_class_unfit;
      Unfit

let class_of (t : t) (extents : int array) : class_model option =
  (* Below residue + 2 periods no fit can cover the size (the ladder's
     lowest sample node): skip fitting, the concrete engine handles it. *)
  let residues = Array.mapi (fun i e -> e mod t.periods.(i)) extents in
  let in_range =
    let ok = ref true in
    Array.iteri
      (fun i e -> if e < residues.(i) + (2 * t.periods.(i)) then ok := false)
      extents;
    !ok
  in
  if not in_range then None
  else begin
    let key = Array.to_list residues in
    Mutex.lock t.mutex;
    let cached = Hashtbl.find_opt t.classes key in
    Mutex.unlock t.mutex;
    match cached with
    | Some m -> Some m
    | None ->
        (* fit outside the lock: a racing duplicate fit is deterministic
           and benign, and fitting runs concrete analyses *)
        let m = fit_class t residues in
        Mutex.lock t.mutex;
        let m =
          match Hashtbl.find_opt t.classes key with
          | Some prior -> prior
          | None ->
              Hashtbl.add t.classes key m;
              m
        in
        Mutex.unlock t.mutex;
        Some m
  end

(* ------------------------------------------------------------------ *)
(* Instantiation.                                                      *)
(* ------------------------------------------------------------------ *)

let extents_of (t : t) (sizes : (string * int) list) : int array =
  List.iter
    (fun (d, e) ->
      if not (Array.exists (String.equal d) t.params) then
        invalid_arg
          (Printf.sprintf "Template: %s is not a parameter (have %s)" d
             (String.concat "," (Array.to_list t.params)));
      if e < 1 then
        invalid_arg (Printf.sprintf "Template: extent %d for %s" e d))
    sizes;
  Array.map
    (fun d ->
      match List.assoc_opt d sizes with
      | Some e -> e
      | None ->
          let lo, hi = Ir.Tensor_op.iter_bounds t.op d in
          hi - lo + 1)
    t.params

let try_instantiate (t : t) ~(sizes : (string * int) list) : Metrics.t option
    =
  let extents = extents_of t sizes in
  match class_of t extents with
  | None | Some Unfit ->
      Obs.incr c_fallbacks;
      None
  | Some (Fitted { floor; _ })
    when Array.exists (fun i -> extents.(i) < floor.(i))
           (Array.init (Array.length extents) Fun.id) ->
      Obs.incr c_fallbacks;
      None
  | Some (Fitted { qps; skeleton; _ }) -> (
      match Array.map (Qpoly.eval (fun i -> extents.(i))) qps with
      | exception Invalid_argument _ ->
          Obs.incr c_fallbacks;
          None
      | vec ->
          let m = metrics_of_vector skeleton t.spec vec in
          if Isl.Count.verify_mode () then begin
            let assignment =
              List.mapi (fun i d -> (d, extents.(i))) (Array.to_list t.params)
            in
            let reference =
              vector_of
                (Concrete.analyze ~adjacency:t.adjacency ~validate:t.validate
                   ~window:t.window t.spec
                   (shrink_op t.op assignment)
                   t.df)
            in
            let names = Array.of_list (component_names skeleton) in
            Array.iteri
              (fun comp v ->
                if reference.(comp) <> v then
                  raise
                    (Isl.Count.Verify_mismatch
                       {
                         fast = v;
                         reference = reference.(comp);
                         set =
                           Printf.sprintf
                             "metric template %s of %s under %s at (%s)"
                             names.(comp) t.op.Ir.Tensor_op.name
                             t.df.Df.Dataflow.name
                             (String.concat ","
                                (Array.to_list
                                   (Array.map string_of_int extents)));
                       }))
              vec
          end;
          Obs.incr c_instantiations;
          Some m)

let instantiate (t : t) ~(sizes : (string * int) list) : Metrics.t =
  match try_instantiate t ~sizes with
  | Some m -> m
  | None ->
      let extents = extents_of t sizes in
      let assignment =
        List.mapi (fun i d -> (d, extents.(i))) (Array.to_list t.params)
      in
      Concrete.analyze ~adjacency:t.adjacency ~validate:t.validate
        ~window:t.window t.spec
        (shrink_op t.op assignment)
        t.df

let closed_forms (t : t) ~(sizes : (string * int) list) :
    (string * string) list =
  let extents = extents_of t sizes in
  match class_of t extents with
  | None | Some Unfit -> []
  | Some (Fitted { qps; skeleton; _ }) ->
      let name i = t.params.(i) in
      let forms =
        List.mapi
          (fun comp cname -> (cname, Qpoly.to_string_with name qps.(comp)))
          (component_names skeleton)
      in
      let forms =
        match t.domain_qp with
        | Some dq -> ("domain_points", Qpoly.to_string_with name dq) :: forms
        | None -> forms
      in
      forms

let domain_closed_form (t : t) : string option =
  Option.map (Qpoly.to_string_with (fun i -> t.params.(i))) t.domain_qp
