(** Design-space exploration (paper Sections IV-A and VI-B). *)

module Ir = Tenet_ir
module Arch = Tenet_arch
module Df = Tenet_dataflow
module M = Tenet_model

val tenet_design_space_size : n_loops:int -> int
(** [2^(n^2)]: one 0/1 transformation matrix per dataflow. *)

val maestro_design_space_size : n_loops:int -> int
(** [n! * C(n, 2)]: primitive orders with exactly two SpatialMaps. *)

val data_centric_expressible : Df.Dataflow.t -> bool
(** No affine combinations: every time coordinate maps a single loop dim
    and every space coordinate at most two (the Cluster idiom).  This
    classifies Table III exactly. *)

val candidates_2d :
  ?permute_outer:bool -> Ir.Tensor_op.t -> p:int -> Df.Dataflow.t list
(** 2D dataflows: every ordered dim pair tiled by [p] on the array, each
    remaining dim as the innermost time dim, with and without skewing;
    [permute_outer] additionally enumerates outer loop orders. *)

val candidates_1d : Ir.Tensor_op.t -> p:int -> Df.Dataflow.t list

type objective = Latency | Energy | Sbw

type outcome = {
  dataflow : Df.Dataflow.t;
  metrics : M.Metrics.t;
  expressible : bool;
}

val evaluate_all :
  ?adjacency:[ `Inner_step | `Lex_step ] ->
  ?prefilter:(Df.Dataflow.t -> bool) ->
  objective:objective ->
  Arch.Spec.t ->
  Ir.Tensor_op.t ->
  Df.Dataflow.t list ->
  outcome list
(** Evaluate every candidate with the concrete engine, dropping invalid
    dataflows, sorted best-first.  [prefilter] rejects candidates before
    scoring (each rejection bumps [dse.candidates_pruned]); the CLI
    wires the analysis checker's precheck here under [--strict]. *)

val best_pair :
  ?adjacency:[ `Inner_step | `Lex_step ] ->
  ?objective:objective ->
  Arch.Spec.t ->
  Ir.Tensor_op.t ->
  Df.Dataflow.t list ->
  outcome option * outcome option
(** One sweep, both answers: the overall best and the best
    data-centric-expressible outcome (the Figure 6 pair).  Callers that
    need both must use this — [best] and [best_expressible] each cost a
    full sweep. *)

val best :
  ?adjacency:[ `Inner_step | `Lex_step ] ->
  ?objective:objective ->
  Arch.Spec.t ->
  Ir.Tensor_op.t ->
  Df.Dataflow.t list ->
  outcome option

val best_expressible :
  ?adjacency:[ `Inner_step | `Lex_step ] ->
  ?objective:objective ->
  Arch.Spec.t ->
  Ir.Tensor_op.t ->
  Df.Dataflow.t list ->
  outcome option
(** Best within the data-centric-expressible subspace (the Figure 6
    baseline). *)

(** {1 Search} *)

type mode =
  | Exhaustive  (** score every candidate; the oracle *)
  | Pruned
      (** precheck, symmetry-class and dominance pruning; same best
          outcomes as [Exhaustive], computed with far fewer full
          evaluations *)
  | Heuristic
      (** [Pruned] plus a seeded best-bound-first visit order capped at
          [budget] full evaluations *)

type stats = {
  generated : int;  (** candidates handed to [search] *)
  pruned_precheck : int;
      (** rejected by the prefilter or the checker's precheck *)
  pruned_symmetry : int;  (** folded into an equivalent class rep *)
  pruned_capacity : int;
      (** rejected by a resource-infeasibility proof
          ({!Tenet_analysis.Capacity.feasible}): the declared capacities
          cannot hold the candidate's working set.  Only proven-infeasible
          candidates are dropped, so the surviving ranking is identical
          to the unpruned oracle's on every feasible candidate.  Always
          [0] when the spec declares no capacities or in [Exhaustive]
          mode. *)
  pruned_dominated : int;
      (** latency lower bound exceeded the incumbent *)
  evaluated : int;  (** full concrete-engine evaluations *)
  template_reuse : int;
      (** candidate-size scores answered by instantiating a parametric
          metric template instead of a full evaluation
          ({!search_sizes}; always [0] for a single-size {!search}) *)
}

type result = { outcomes : outcome list; stats : stats }

val search :
  ?adjacency:[ `Inner_step | `Lex_step ] ->
  ?mode:mode ->
  ?budget:int ->
  ?seed:int ->
  ?prefilter:(Df.Dataflow.t -> bool) ->
  ?objective:objective ->
  Arch.Spec.t ->
  Ir.Tensor_op.t ->
  Df.Dataflow.t list ->
  result
(** Mapper entry point.  Outcomes are sorted by (score, generation
    order) and include the pruned symmetry twins, materialized from
    their class representative's metrics, so [Pruned] (the default)
    returns the same best — byte-identical metrics — as [Exhaustive].
    Deterministic at any [--jobs] and, given [seed], in [Heuristic]
    mode too.  [budget] (default [generated / 4]) caps full evaluations
    in [Heuristic] mode only.  Symmetry grouping applies only under
    [`Inner_step] adjacency, where its metric-equality argument holds;
    dominance bounds apply only to the [Latency] objective.
    Per-tier prune counts are reported in [stats] and on the
    [dse.pruned_precheck] / [dse.pruned_symmetry] /
    [dse.pruned_capacity] / [dse.pruned_dominated] counters. *)

val search_sizes :
  ?adjacency:[ `Inner_step | `Lex_step ] ->
  ?mode:mode ->
  ?budget:int ->
  ?seed:int ->
  ?prefilter:(Df.Dataflow.t -> bool) ->
  ?objective:objective ->
  ?top:int ->
  Arch.Spec.t ->
  Ir.Tensor_op.t ->
  Df.Dataflow.t list ->
  sizes:(string * int) list list ->
  ((string * int) list * result) list
(** A sweep amortized across problem sizes (each an iterator-extent
    assignment applied to [op]).  The first size runs a full {!search};
    its [top] (default 8) outcomes are then re-scored at every other
    size through one parametric metric template per candidate
    ({!Tenet_model.Template}) — compiled once, instantiated per size in
    O(1), with a full concrete evaluation as fallback wherever a
    template refuses.  Per-size [stats.template_reuse] (and the
    [dse.template_reuse] counter) report how many candidate-size scores
    the templates answered. *)
