(** Design-space exploration (paper Sections IV-A and VI-B). *)

module Ir = Tenet_ir
module Arch = Tenet_arch
module Df = Tenet_dataflow
module M = Tenet_model

val tenet_design_space_size : n_loops:int -> int
(** [2^(n^2)]: one 0/1 transformation matrix per dataflow. *)

val maestro_design_space_size : n_loops:int -> int
(** [n! * C(n, 2)]: primitive orders with exactly two SpatialMaps. *)

val data_centric_expressible : Df.Dataflow.t -> bool
(** No affine combinations: every time coordinate maps a single loop dim
    and every space coordinate at most two (the Cluster idiom).  This
    classifies Table III exactly. *)

val candidates_2d :
  ?permute_outer:bool -> Ir.Tensor_op.t -> p:int -> Df.Dataflow.t list
(** 2D dataflows: every ordered dim pair tiled by [p] on the array, each
    remaining dim as the innermost time dim, with and without skewing;
    [permute_outer] additionally enumerates outer loop orders. *)

val candidates_1d : Ir.Tensor_op.t -> p:int -> Df.Dataflow.t list

type objective = Latency | Energy | Sbw

type outcome = {
  dataflow : Df.Dataflow.t;
  metrics : M.Metrics.t;
  expressible : bool;
}

val evaluate_all :
  ?adjacency:[ `Inner_step | `Lex_step ] ->
  ?prefilter:(Df.Dataflow.t -> bool) ->
  objective:objective ->
  Arch.Spec.t ->
  Ir.Tensor_op.t ->
  Df.Dataflow.t list ->
  outcome list
(** Evaluate every candidate with the concrete engine, dropping invalid
    dataflows, sorted best-first.  [prefilter] rejects candidates before
    scoring (each rejection bumps [dse.candidates_pruned]); the CLI
    wires the analysis checker's precheck here under [--strict]. *)

val best :
  ?adjacency:[ `Inner_step | `Lex_step ] ->
  ?objective:objective ->
  Arch.Spec.t ->
  Ir.Tensor_op.t ->
  Df.Dataflow.t list ->
  outcome option

val best_expressible :
  ?adjacency:[ `Inner_step | `Lex_step ] ->
  ?objective:objective ->
  Arch.Spec.t ->
  Ir.Tensor_op.t ->
  Df.Dataflow.t list ->
  outcome option
(** Best within the data-centric-expressible subspace (the Figure 6
    baseline). *)
