(* Design-space exploration (paper Sections IV-A and VI-B).

   The candidate generator follows the paper's pruning: pick the loop dims
   distributed over the PE array (the data-movement choice), tile them by
   the array width, order the remaining dims in time, and optionally skew
   the innermost time dimension by the space dims (the boundary data
   assignment choice).  Candidates are evaluated with the concrete engine
   and ranked. *)

module Aff = Tenet_isl.Aff
module Ir = Tenet_ir
module Arch = Tenet_arch
module Df = Tenet_dataflow
module M = Tenet_model
module Obs = Tenet_obs

let c_evaluated = Obs.counter "dse.candidates_evaluated"
let c_valid = Obs.counter "dse.candidates_valid"
let c_invalid = Obs.counter "dse.candidates_invalid"
let c_pruned = Obs.counter "dse.candidates_pruned"

(* ------------------------------------------------------------------ *)
(* Design-space sizes (Section IV-A).                                  *)
(* ------------------------------------------------------------------ *)

(* Relation-centric: any n x n 0/1 transformation matrix. *)
let tenet_design_space_size ~n_loops =
  Tenet_util.Int_math.pow 2 (n_loops * n_loops)

(* Data-centric: n! orders, exactly two SpatialMaps. *)
let maestro_design_space_size ~n_loops =
  Tenet_maestro.Notation.design_space_size ~n_loops ~n_spatial:2

(* ------------------------------------------------------------------ *)
(* Candidate generation.                                               *)
(* ------------------------------------------------------------------ *)

(* A dataflow is expressible in the data-centric notation iff no stamp
   coordinate needs an affine combination: every time coordinate maps a
   single loop dim and every space coordinate at most two (the Cluster
   idiom).  This classifies Table III exactly. *)
let data_centric_expressible (df : Df.Dataflow.t) : bool =
  let nvars e =
    List.length (List.sort_uniq String.compare (Aff.free_vars e))
  in
  List.for_all (fun e -> nvars e <= 2) df.Df.Dataflow.space
  && List.for_all (fun e -> nvars e <= 1) df.Df.Dataflow.time

let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> not (String.equal x y)) l in
          List.map (fun p -> x :: p) (permutations rest))
        l

let v = Aff.var

(* 2D candidates: space = (da mod p, db mod p); time = outer dims, the two
   tile counters, then the innermost dim [dc], optionally skewed by the
   space stamps.  [permute_outer] additionally enumerates the orderings of
   the outer sequential dims (larger space, as in the Section VI-B count). *)
let candidates_2d ?(permute_outer = false) (op : Ir.Tensor_op.t) ~p :
    Df.Dataflow.t list =
  let dims = Ir.Tensor_op.iter_names op in
  let pairs =
    List.concat_map
      (fun da ->
        List.filter_map
          (fun db -> if String.equal da db then None else Some (da, db))
          dims)
      dims
  in
  List.concat_map
    (fun (da, db) ->
      let others =
        List.filter (fun d -> not (String.equal d da || String.equal d db)) dims
      in
      List.concat_map
        (fun dc ->
          let outer = List.filter (fun d -> not (String.equal d dc)) others in
          let outer_orders =
            if permute_outer then permutations outer else [ outer ]
          in
          List.concat_map
            (fun outer ->
              let base_time =
                List.map v outer
                @ [ Aff.Fdiv (v da, p); Aff.Fdiv (v db, p) ]
              in
              let name skew =
                Printf.sprintf "(%s%s-P | %s%s-T%s)" da db
                  (if permute_outer then "," ^ String.concat "" outer else "")
                  dc
                  (if skew then "+skew" else "")
              in
              [
                Df.Dataflow.make ~name:(name false)
                  ~space:[ Aff.Mod (v da, p); Aff.Mod (v db, p) ]
                  ~time:(base_time @ [ v dc ]);
                Df.Dataflow.make ~name:(name true)
                  ~space:[ Aff.Mod (v da, p); Aff.Mod (v db, p) ]
                  ~time:
                    (base_time
                    @ [
                        Aff.Add
                          ( Aff.Add (Aff.Mod (v da, p), Aff.Mod (v db, p)),
                            v dc );
                      ]);
              ])
            outer_orders)
        others)
    pairs

(* 1D candidates: space = da mod p; time = outer dims + tile + innermost. *)
let candidates_1d (op : Ir.Tensor_op.t) ~p : Df.Dataflow.t list =
  let dims = Ir.Tensor_op.iter_names op in
  List.concat_map
    (fun da ->
      let others = List.filter (fun d -> not (String.equal d da)) dims in
      List.map
        (fun dc ->
          let outer = List.filter (fun d -> not (String.equal d dc)) others in
          Df.Dataflow.make
            ~name:(Printf.sprintf "(%s-P | %s-T)" da dc)
            ~space:[ Aff.Mod (v da, p) ]
            ~time:(List.map v outer @ [ Aff.Fdiv (v da, p); v dc ]))
        others)
    dims

(* ------------------------------------------------------------------ *)
(* Search.                                                             *)
(* ------------------------------------------------------------------ *)

type objective = Latency | Energy | Sbw

let score objective (m : M.Metrics.t) =
  match objective with
  | Latency -> m.M.Metrics.latency
  | Energy -> m.M.Metrics.energy
  | Sbw -> m.M.Metrics.sbw

type outcome = {
  dataflow : Df.Dataflow.t;
  metrics : M.Metrics.t;
  expressible : bool; (* in the data-centric notation *)
}

(* Evaluate all candidates, silently dropping invalid ones (out-of-array
   or conflicting dataflows), sorted best-first by [objective].

   Candidates are independent, so they are scored on the parallel work
   pool (TENET_JOBS / --jobs).  The result is deterministic at any job
   count: [Parallel.map] preserves input order and the final sort is
   stable, so ties keep the generator's candidate order. *)
let evaluate_all ?(adjacency = `Inner_step) ?prefilter ~objective
    (spec : Arch.Spec.t) (op : Ir.Tensor_op.t) (cands : Df.Dataflow.t list) :
    outcome list =
  (* [prefilter] (e.g. the analysis checker's precheck under --strict)
     rejects candidates before the expensive scoring; rejections are
     counted on dse.candidates_pruned. *)
  let cands =
    match prefilter with
    | None -> cands
    | Some keep ->
        List.filter
          (fun df ->
            let ok = keep df in
            if not ok then Obs.incr c_pruned;
            ok)
          cands
  in
  let outcomes =
    Obs.with_span "dse.evaluate_all" @@ fun () ->
    (* warm the per-architecture predecessor memo once, outside the
       workers, so candidates don't race to build it *)
    ignore (M.Concrete.pred_pe_keys spec);
    List.filter_map Fun.id
      (Tenet_util.Parallel.map
         (fun df ->
           Obs.with_span ~args:[ ("dataflow", df.Df.Dataflow.name) ]
             "dse.candidate"
           @@ fun () ->
           Obs.incr c_evaluated;
           match M.Concrete.analyze ~adjacency spec op df with
           | m ->
               Obs.incr c_valid;
               Some
                 { dataflow = df; metrics = m;
                   expressible = data_centric_expressible df }
           | exception M.Concrete.Invalid_dataflow _ ->
               Obs.incr c_invalid;
               None)
         cands)
  in
  List.sort
    (fun a b ->
      Float.compare (score objective a.metrics) (score objective b.metrics))
    outcomes

let best ?(adjacency = `Inner_step) ?(objective = Latency) spec op cands =
  match evaluate_all ~adjacency ~objective spec op cands with
  | [] -> None
  | o :: _ -> Some o

(* Best restricted to the data-centric-expressible subspace: the paper's
   Figure 6 baseline. *)
let best_expressible ?(adjacency = `Inner_step) ?(objective = Latency) spec op
    cands =
  match
    List.filter
      (fun o -> o.expressible)
      (evaluate_all ~adjacency ~objective spec op cands)
  with
  | [] -> None
  | o :: _ -> Some o
