(* Design-space exploration (paper Sections IV-A and VI-B).

   The candidate generator follows the paper's pruning: pick the loop dims
   distributed over the PE array (the data-movement choice), tile them by
   the array width, order the remaining dims in time, and optionally skew
   the innermost time dimension by the space dims (the boundary data
   assignment choice).

   Evaluation is a search engine rather than an enumerator: candidates
   share one reusable evaluation context (compiled access chains,
   predecessor memos, per-architecture state), and [search] layers three
   pruning tiers on top — the checker's precheck, symmetry classes, and
   objective dominance bounds — plus a budgeted heuristic mode, all
   deterministic at any [--jobs].  [evaluate_all] remains the exhaustive
   oracle. *)

module Aff = Tenet_isl.Aff
module Ir = Tenet_ir
module Arch = Tenet_arch
module Df = Tenet_dataflow
module M = Tenet_model
module Obs = Tenet_obs

let c_evaluated = Obs.counter "dse.candidates_evaluated"
let c_valid = Obs.counter "dse.candidates_valid"
let c_invalid = Obs.counter "dse.candidates_invalid"
let c_pruned = Obs.counter "dse.candidates_pruned"
let c_pruned_precheck = Obs.counter "dse.pruned_precheck"
let c_pruned_symmetry = Obs.counter "dse.pruned_symmetry"
let c_pruned_dominated = Obs.counter "dse.pruned_dominated"
let c_pruned_capacity = Obs.counter "dse.pruned_capacity"
let c_template_reuse = Obs.counter "dse.template_reuse"

(* ------------------------------------------------------------------ *)
(* Design-space sizes (Section IV-A).                                  *)
(* ------------------------------------------------------------------ *)

(* Relation-centric: any n x n 0/1 transformation matrix. *)
let tenet_design_space_size ~n_loops =
  Tenet_util.Int_math.pow 2 (n_loops * n_loops)

(* Data-centric: n! orders, exactly two SpatialMaps. *)
let maestro_design_space_size ~n_loops =
  Tenet_maestro.Notation.design_space_size ~n_loops ~n_spatial:2

(* ------------------------------------------------------------------ *)
(* Candidate generation.                                               *)
(* ------------------------------------------------------------------ *)

(* A dataflow is expressible in the data-centric notation iff no stamp
   coordinate needs an affine combination: every time coordinate maps a
   single loop dim and every space coordinate at most two (the Cluster
   idiom).  This classifies Table III exactly. *)
let data_centric_expressible (df : Df.Dataflow.t) : bool =
  let nvars e =
    List.length (List.sort_uniq String.compare (Aff.free_vars e))
  in
  List.for_all (fun e -> nvars e <= 2) df.Df.Dataflow.space
  && List.for_all (fun e -> nvars e <= 1) df.Df.Dataflow.time

let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> not (String.equal x y)) l in
          List.map (fun p -> x :: p) (permutations rest))
        l

let v = Aff.var

(* 2D candidates: space = (da mod p, db mod p); time = outer dims, the two
   tile counters, then the innermost dim [dc], optionally skewed by the
   space stamps.  [permute_outer] additionally enumerates the orderings of
   the outer sequential dims (larger space, as in the Section VI-B count). *)
let candidates_2d ?(permute_outer = false) (op : Ir.Tensor_op.t) ~p :
    Df.Dataflow.t list =
  let dims = Ir.Tensor_op.iter_names op in
  let pairs =
    List.concat_map
      (fun da ->
        List.filter_map
          (fun db -> if String.equal da db then None else Some (da, db))
          dims)
      dims
  in
  List.concat_map
    (fun (da, db) ->
      let others =
        List.filter (fun d -> not (String.equal d da || String.equal d db)) dims
      in
      List.concat_map
        (fun dc ->
          let outer = List.filter (fun d -> not (String.equal d dc)) others in
          let outer_orders =
            if permute_outer then permutations outer else [ outer ]
          in
          List.concat_map
            (fun outer ->
              let base_time =
                List.map v outer
                @ [ Aff.Fdiv (v da, p); Aff.Fdiv (v db, p) ]
              in
              let name skew =
                Printf.sprintf "(%s%s-P | %s%s-T%s)" da db
                  (if permute_outer then "," ^ String.concat "" outer else "")
                  dc
                  (if skew then "+skew" else "")
              in
              [
                Df.Dataflow.make ~name:(name false)
                  ~space:[ Aff.Mod (v da, p); Aff.Mod (v db, p) ]
                  ~time:(base_time @ [ v dc ]);
                Df.Dataflow.make ~name:(name true)
                  ~space:[ Aff.Mod (v da, p); Aff.Mod (v db, p) ]
                  ~time:
                    (base_time
                    @ [
                        Aff.Add
                          ( Aff.Add (Aff.Mod (v da, p), Aff.Mod (v db, p)),
                            v dc );
                      ]);
              ])
            outer_orders)
        others)
    pairs

(* 1D candidates: space = da mod p; time = outer dims + tile + innermost. *)
let candidates_1d (op : Ir.Tensor_op.t) ~p : Df.Dataflow.t list =
  let dims = Ir.Tensor_op.iter_names op in
  List.concat_map
    (fun da ->
      let others = List.filter (fun d -> not (String.equal d da)) dims in
      List.map
        (fun dc ->
          let outer = List.filter (fun d -> not (String.equal d dc)) others in
          Df.Dataflow.make
            ~name:(Printf.sprintf "(%s-P | %s-T)" da dc)
            ~space:[ Aff.Mod (v da, p) ]
            ~time:(List.map v outer @ [ Aff.Fdiv (v da, p); v dc ]))
        others)
    dims

(* ------------------------------------------------------------------ *)
(* Symmetry classes.                                                   *)
(* ------------------------------------------------------------------ *)

(* Canonical rendering for symmetry keys.  Integer [+] is commutative
   and associative, so [Add] chains are flattened and their operand
   renderings sorted: the generator's skewed inner stamps for the (da,
   db) and (db, da) movement pairs then render identically, as they
   evaluate identically. *)
let rec norm_string (e : Aff.t) : string =
  match e with
  | Aff.Add (a, b) ->
      let rec flat e acc =
        match e with
        | Aff.Add (x, y) -> flat x (flat y acc)
        | e -> norm_string e :: acc
      in
      let parts = List.sort String.compare (flat a (flat b [])) in
      "(" ^ String.concat " + " parts ^ ")"
  | Aff.Sub (a, b) -> "(" ^ norm_string a ^ " - " ^ norm_string b ^ ")"
  | Aff.Mul (a, b) -> "(" ^ norm_string a ^ " * " ^ norm_string b ^ ")"
  | Aff.Neg a -> "(- " ^ norm_string a ^ ")"
  | Aff.Fdiv (a, d) -> "fl(" ^ norm_string a ^ "/" ^ string_of_int d ^ ")"
  | Aff.Mod (a, d) -> "(" ^ norm_string a ^ " % " ^ string_of_int d ^ ")"
  | Aff.Abs a -> "abs(" ^ norm_string a ^ ")"
  | Aff.Var x -> x
  | Aff.Int i -> string_of_int i

(* Whether the interconnect's predecessor relation commutes with
   transposing a square 2D array: pred(transpose dst) = transpose (pred
   dst) for every PE.  Decided from the same [pred_pe_keys] memo the
   walk uses, so it is exact for any topology, including [Custom]. *)
let transpose_invariant (spec : Arch.Spec.t) : bool =
  let dims = Arch.Pe_array.dims spec.Arch.Spec.pe in
  Array.length dims = 2
  && dims.(0) = dims.(1)
  &&
  let n = dims.(0) in
  let preds = M.Concrete.pred_pe_keys spec in
  let tr k = if k < 0 then k else ((k mod n) * n) + (k / n) in
  try
    Array.iteri
      (fun dst ps ->
        let a = List.sort_uniq compare (List.rev_map tr ps) in
        let b = List.sort_uniq compare preds.(tr dst) in
        if a <> b then raise Exit)
      preds;
    true
  with Exit -> false

(* Symmetry key under [`Inner_step] adjacency: two candidates with the
   same space tuple, the same multiset of non-innermost time coordinates
   and the same innermost coordinate produce byte-identical metrics —
   permuting the time prefix only relabels the outer blocks, and every
   reuse condition is confined to one block ([same_outer]).  When the
   array is square and the interconnect is transpose-invariant, swapping
   the two space coordinates is a further metric-preserving bijection,
   so the key is the minimum over both orientations. *)
let sym_key ~transpose_ok (df : Df.Dataflow.t) : string =
  let prefix, inner =
    match List.rev df.Df.Dataflow.time with
    | [] -> ([], "")
    | last :: rev_prefix ->
        ( List.sort String.compare (List.map norm_string rev_prefix),
          norm_string last )
  in
  let render space =
    String.concat "|" (List.map norm_string space)
    ^ " ;; " ^ String.concat "|" prefix ^ " ;; " ^ inner
  in
  let k = render df.Df.Dataflow.space in
  match df.Df.Dataflow.space with
  | [ a; b ] when transpose_ok ->
      let k' = render [ b; a ] in
      if String.compare k' k < 0 then k' else k
  | _ -> k

(* ------------------------------------------------------------------ *)
(* Evaluation.                                                         *)
(* ------------------------------------------------------------------ *)

type objective = Latency | Energy | Sbw

let score objective (m : M.Metrics.t) =
  match objective with
  | Latency -> m.M.Metrics.latency
  | Energy -> m.M.Metrics.energy
  | Sbw -> m.M.Metrics.sbw

type outcome = {
  dataflow : Df.Dataflow.t;
  metrics : M.Metrics.t;
  expressible : bool; (* in the data-centric notation *)
}

(* Score one candidate against the shared context. *)
let eval_candidate (ctx : M.Concrete.ctx) (df : Df.Dataflow.t) :
    outcome option =
  Obs.with_span ~args:[ ("dataflow", df.Df.Dataflow.name) ] "dse.candidate"
  @@ fun () ->
  Obs.incr c_evaluated;
  match M.Concrete.analyze_in ctx df with
  | m ->
      Obs.incr c_valid;
      Some
        {
          dataflow = df;
          metrics = m;
          expressible = data_centric_expressible df;
        }
  | exception M.Concrete.Invalid_dataflow _ ->
      Obs.incr c_invalid;
      None

(* Evaluate all candidates, silently dropping invalid ones (out-of-array
   or conflicting dataflows), sorted best-first by [objective].

   Candidates are independent, so they are scored on the parallel work
   pool (TENET_JOBS / --jobs) against one shared evaluation context.
   The result is deterministic at any job count: [Parallel.map]
   preserves input order and the final sort is stable, so ties keep the
   generator's candidate order. *)
let evaluate_all ?(adjacency = `Inner_step) ?prefilter ~objective
    (spec : Arch.Spec.t) (op : Ir.Tensor_op.t) (cands : Df.Dataflow.t list) :
    outcome list =
  (* [prefilter] (e.g. the analysis checker's precheck under --strict)
     rejects candidates before the expensive scoring; rejections are
     counted on dse.candidates_pruned. *)
  let cands =
    match prefilter with
    | None -> cands
    | Some keep ->
        List.filter
          (fun df ->
            let ok = keep df in
            if not ok then Obs.incr c_pruned;
            ok)
          cands
  in
  let outcomes =
    Obs.with_span "dse.evaluate_all" @@ fun () ->
    (* one shared context: compiled access chains and the architecture's
       predecessor memo are built here, outside the workers *)
    let ctx = M.Concrete.context ~adjacency spec op in
    List.filter_map Fun.id
      (Tenet_util.Parallel.map (fun df -> eval_candidate ctx df) cands)
  in
  List.sort
    (fun a b ->
      Float.compare (score objective a.metrics) (score objective b.metrics))
    outcomes

(* Single sweep returning both the overall best and the best
   data-centric-expressible outcome (the Figure 6 pair); [best] and
   [best_expressible] are projections of this. *)
let best_pair ?(adjacency = `Inner_step) ?(objective = Latency)
    (spec : Arch.Spec.t) (op : Ir.Tensor_op.t) (cands : Df.Dataflow.t list) :
    outcome option * outcome option =
  let all = evaluate_all ~adjacency ~objective spec op cands in
  let b = match all with [] -> None | o :: _ -> Some o in
  (b, List.find_opt (fun o -> o.expressible) all)

let best ?(adjacency = `Inner_step) ?(objective = Latency) spec op cands =
  fst (best_pair ~adjacency ~objective spec op cands)

(* Best restricted to the data-centric-expressible subspace: the paper's
   Figure 6 baseline. *)
let best_expressible ?(adjacency = `Inner_step) ?(objective = Latency) spec op
    cands =
  snd (best_pair ~adjacency ~objective spec op cands)

(* ------------------------------------------------------------------ *)
(* Search.                                                             *)
(* ------------------------------------------------------------------ *)

type mode = Exhaustive | Pruned | Heuristic

type stats = {
  generated : int;
  pruned_precheck : int;
  pruned_symmetry : int;
  pruned_capacity : int;
  pruned_dominated : int;
  evaluated : int;
  template_reuse : int;
}

type result = { outcomes : outcome list; stats : stats }

(* Reps are scored in fixed-size slices so pruning can consult the
   incumbent scores: decisions inside a slice use the incumbents frozen
   at its start, and incumbents are refreshed sequentially between
   slices, so the result is independent of how the pool schedules the
   slice.  The size is a constant — tying it to the job count would make
   prune decisions depend on [--jobs]. *)
let eval_slice = 32

(* xorshift64*: deterministic generator for the heuristic visit order. *)
let xorshift (s : int) : int =
  let s = s lxor (s lsl 13) in
  let s = s lxor (s lsr 7) in
  let s = s lxor (s lsl 17) in
  s land max_int

let search ?(adjacency = `Inner_step) ?(mode = Pruned) ?budget ?(seed = 0)
    ?prefilter ?(objective = Latency) (spec : Arch.Spec.t)
    (op : Ir.Tensor_op.t) (cands : Df.Dataflow.t list) : result =
  Obs.with_span "dse.search" @@ fun () ->
  let generated = List.length cands in
  let ctx = M.Concrete.context ~adjacency spec op in
  let n_precheck = ref 0 in
  (* Tier 1 (hard): the caller's prefilter, then the checker's staged
     precheck — both reject only candidates the full analysis would
     refuse (unknown iterators, rank or interval-bound violations). *)
  let keep =
    let pre = match prefilter with None -> fun _ -> true | Some k -> k in
    match mode with
    | Exhaustive -> pre
    | Pruned | Heuristic ->
        let pc = Tenet_analysis.Checker.prechecker spec op in
        fun df -> pre df && pc df
  in
  let live =
    List.mapi (fun i df -> (i, df)) cands
    |> List.filter (fun (_, df) ->
           let ok = keep df in
           if not ok then begin
             incr n_precheck;
             Obs.incr c_pruned_precheck
           end;
           ok)
  in
  (* Tier 1.5: resource feasibility.  Candidates the declared
     capacities provably cannot host are rejected before any scoring;
     the predicate errs toward keeping (only proofs prune), so the
     surviving ranking matches the unpruned oracle on every feasible
     candidate.  No-op when the spec declares no capacities. *)
  let n_capacity = ref 0 in
  let live =
    match (mode, Tenet_analysis.Capacity.feasible spec op) with
    | Exhaustive, _ | _, None -> live
    | (Pruned | Heuristic), Some feasible ->
        List.filter
          (fun (_, df) ->
            let ok = feasible df in
            if not ok then begin
              incr n_capacity;
              Obs.incr c_pruned_capacity
            end;
            ok)
          live
  in
  (* Tier 2: symmetry classes.  The metric-equality arguments behind
     [sym_key] hold under [`Inner_step] adjacency only, so grouping is
     disabled otherwise (and in exhaustive mode). *)
  let n_symmetry = ref 0 in
  let groups : (int * Df.Dataflow.t * (int * Df.Dataflow.t) list) list =
    if mode = Exhaustive || adjacency <> `Inner_step then
      List.map (fun (i, df) -> (i, df, [])) live
    else begin
      let transpose_ok = transpose_invariant spec in
      let tbl : (string, int) Hashtbl.t = Hashtbl.create 256 in
      let reps = ref [] and twins = Hashtbl.create 256 in
      List.iteri
        (fun pos (i, df) ->
          let k = sym_key ~transpose_ok df in
          match Hashtbl.find_opt tbl k with
          | None ->
              Hashtbl.add tbl k pos;
              reps := (i, df) :: !reps
          | Some rep_pos ->
              incr n_symmetry;
              Obs.incr c_pruned_symmetry;
              Hashtbl.replace twins rep_pos
                ((i, df)
                :: (try Hashtbl.find twins rep_pos with Not_found -> [])))
        live;
      List.rev_map
        (fun (i, df) ->
          let pos = Hashtbl.find tbl (sym_key ~transpose_ok df) in
          ( i,
            df,
            List.rev (try Hashtbl.find twins pos with Not_found -> []) ))
        !reps
    end
  in
  (* Tier 3 bound: every (space, time) stamp of a valid mapping holds at
     most one instance, so n_timestamps >= ceil(instances / space
     cardinality) and latency >= n_timestamps.  Exact only as a lower
     bound, free to compute, and only meaningful for the latency
     objective. *)
  let ienv name = Ir.Tensor_op.iter_bounds op name in
  let n_inst = Ir.Tensor_op.n_instances op in
  let lower_bound (df : Df.Dataflow.t) : int =
    if objective <> Latency then 0
    else begin
      let card =
        List.fold_left
          (fun acc e ->
            let lo, hi = Aff.interval ienv e in
            acc * (hi - lo + 1))
          1 df.Df.Dataflow.space
      in
      if card <= 0 then 0 else (n_inst + card - 1) / card
    end
  in
  let reps =
    Array.of_list
      (List.map
         (fun (i, df, tw) ->
           (i, df, tw, lower_bound df, data_centric_expressible df))
         groups)
  in
  (* Visit order: best lower bound first (ties by generator order), so
     the incumbent tightens as early as possible.  The heuristic mode
     additionally interleaves seeded jumps into the unexplored tail, so
     a misleading bound ordering cannot starve whole regions within the
     evaluation budget. *)
  Array.sort
    (fun (i, _, _, la, _) (j, _, _, lb, _) -> compare (la, i) (lb, j))
    reps;
  let reps =
    if mode <> Heuristic then reps
    else begin
      let n = Array.length reps in
      let order = Array.init n Fun.id in
      let s = ref (xorshift (seed + 0x9e3779b9)) in
      (* every 4th visit is a seeded pick from the tail *)
      for k = 0 to n - 1 do
        if k mod 4 = 3 && k + 1 < n then begin
          s := xorshift !s;
          let j = k + 1 + (!s mod (n - k - 1)) in
          let t = order.(k) in
          order.(k) <- order.(j);
          order.(j) <- t
        end
      done;
      Array.map (fun idx -> reps.(idx)) order
    end
  in
  let budget =
    match (mode, budget) with
    | Heuristic, Some b -> max 1 b
    | Heuristic, None -> max 1 (generated / 4)
    | (Exhaustive | Pruned), _ -> max_int
  in
  let n_dominated = ref 0 and n_evaluated = ref 0 in
  let inc_best = ref infinity and inc_expr = ref infinity in
  let collected : (int * outcome) list ref = ref [] in
  let n_reps = Array.length reps in
  let pos = ref 0 in
  while !pos < n_reps && !n_evaluated < budget do
    let len = min eval_slice (min (n_reps - !pos) (budget - !n_evaluated)) in
    let slice = Array.sub reps !pos len in
    pos := !pos + len;
    let frozen_best = !inc_best and frozen_expr = !inc_expr in
    (* A class is dominated when its latency lower bound strictly
       exceeds the incumbent best — and, if the class is data-centric
       expressible, also the expressible incumbent, so the Figure 6
       baseline can never be pruned away. *)
    let dominated ~expr lb =
      mode <> Exhaustive && objective = Latency
      && float_of_int lb > frozen_best
      && ((not expr) || float_of_int lb > frozen_expr)
    in
    let outs =
      Tenet_util.Parallel.map_array ~chunk:2
        (fun (_, df, _, lb, expr) ->
          if dominated ~expr lb then `Dominated
          else if
            (* Tier 3b: the same bound with the exact timestamp count
               from a cheap time-only pass; only once an incumbent
               exists, otherwise the profile cannot prune anything. *)
            mode <> Exhaustive && objective = Latency
            && frozen_best < infinity
          then begin
            let p = M.Concrete.time_profile ctx df in
            if p.M.Concrete.p_conflict then begin
              Obs.incr c_invalid;
              `Invalid
            end
            else if dominated ~expr p.M.Concrete.p_timestamps then `Dominated
            else
              match eval_candidate ctx df with
              | Some o -> `Outcome o
              | None -> `Invalid
          end
          else
            match eval_candidate ctx df with
            | Some o -> `Outcome o
            | None -> `Invalid)
        slice
    in
    (* Sequential commit, in slice order: refresh incumbents, count
       prunes, and materialize each class's twins from its rep. *)
    Array.iteri
      (fun k out ->
        let i, _, twins, _, _ = slice.(k) in
        match out with
        | `Dominated ->
            (* the class's twins are already accounted under symmetry *)
            incr n_dominated;
            Obs.incr c_pruned_dominated
        | `Invalid -> incr n_evaluated
        | `Outcome o ->
            incr n_evaluated;
            let s = score objective o.metrics in
            if s < !inc_best then inc_best := s;
            if o.expressible && s < !inc_expr then inc_expr := s;
            collected := (i, o) :: !collected;
            List.iter
              (fun (ti, tdf) ->
                let tm =
                  {
                    o.metrics with
                    M.Metrics.dataflow = tdf.Df.Dataflow.name;
                  }
                in
                collected :=
                  ( ti,
                    {
                      dataflow = tdf;
                      metrics = tm;
                      expressible = o.expressible;
                    } )
                  :: !collected)
              twins)
      outs
  done;
  let outcomes =
    List.map snd
      (List.sort
         (fun (i, a) (j, b) ->
           match
             Float.compare (score objective a.metrics)
               (score objective b.metrics)
           with
           | 0 -> compare i j
           | c -> c)
         !collected)
  in
  {
    outcomes;
    stats =
      {
        generated;
        pruned_precheck = !n_precheck;
        pruned_symmetry = !n_symmetry;
        pruned_capacity = !n_capacity;
        pruned_dominated = !n_dominated;
        evaluated = !n_evaluated;
        template_reuse = 0;
      };
  }

(* ------------------------------------------------------------------ *)
(* Size sweeps.                                                        *)
(* ------------------------------------------------------------------ *)

(* [search_sizes] amortizes a sweep across problem sizes: candidates are
   searched in full at the first size only; the survivors are then
   re-scored at every other size through one parametric metric template
   per candidate ({!Tenet_model.Template}), compiled once and
   instantiated per size in O(1).  Sizes or candidates a template
   refuses fall back to a full concrete evaluation, so the results are
   exactly what a fresh per-size search over the same candidates would
   produce. *)
let search_sizes ?(adjacency = `Inner_step) ?(mode = Pruned) ?budget ?seed
    ?prefilter ?(objective = Latency) ?(top = 8) (spec : Arch.Spec.t)
    (op : Ir.Tensor_op.t) (cands : Df.Dataflow.t list)
    ~(sizes : (string * int) list list) :
    ((string * int) list * result) list =
  match sizes with
  | [] -> []
  | first :: rest ->
      Obs.with_span "dse.search_sizes" @@ fun () ->
      let op0 = M.Template.shrink_op op first in
      let base =
        search ~adjacency ~mode ?budget ?seed ?prefilter ~objective spec op0
          cands
      in
      let dims = List.map fst first in
      let rec take n = function
        | x :: tl when n > 0 -> x :: take (n - 1) tl
        | _ -> []
      in
      let survivors = take top base.outcomes in
      (* one template per surviving candidate, shared by all sizes *)
      let tpls =
        List.map
          (fun (o : outcome) ->
            let tpl =
              try
                Some
                  (M.Template.compile ~adjacency spec op o.dataflow
                     ~params:dims)
              with Invalid_argument _ -> None
            in
            (o, tpl))
          survivors
      in
      let at_size (sz : (string * int) list) : result =
        let n_reuse = ref 0 and n_eval = ref 0 and n_invalid = ref 0 in
        let opn = M.Template.shrink_op op sz in
        let outs =
          List.concat_map
            (fun ((o : outcome), tpl) ->
              let via_template =
                match tpl with
                | None -> None
                | Some tpl -> (
                    try M.Template.try_instantiate tpl ~sizes:sz
                    with Invalid_argument _ -> None)
              in
              match via_template with
              | Some m ->
                  incr n_reuse;
                  Obs.incr c_template_reuse;
                  [ { o with metrics = m } ]
              | None -> (
                  incr n_eval;
                  Obs.incr c_evaluated;
                  match
                    M.Concrete.analyze ~adjacency spec opn o.dataflow
                  with
                  | m ->
                      Obs.incr c_valid;
                      [ { o with metrics = m } ]
                  | exception M.Concrete.Invalid_dataflow _ ->
                      Obs.incr c_invalid;
                      incr n_invalid;
                      []))
            tpls
        in
        let indexed = List.mapi (fun i o -> (i, o)) outs in
        let outcomes =
          List.map snd
            (List.sort
               (fun (i, a) (j, b) ->
                 match
                   Float.compare (score objective a.metrics)
                     (score objective b.metrics)
                 with
                 | 0 -> compare i j
                 | c -> c)
               indexed)
        in
        {
          outcomes;
          stats =
            {
              generated = List.length survivors;
              pruned_precheck = !n_invalid;
              pruned_symmetry = 0;
              pruned_capacity = 0;
              pruned_dominated = 0;
              evaluated = !n_eval;
              template_reuse = !n_reuse;
            };
        }
      in
      (first, base) :: List.map (fun sz -> (sz, at_size sz)) rest
