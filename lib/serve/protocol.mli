(** JSON-lines framing for the serve protocol: one request object per
    line in, one response object per line out (docs/serving.md). *)

module Json = Tenet_obs.Json

val is_comment : string -> bool
(** Blank lines and ['#']-prefixed lines carry no request. *)

val parse_line : string -> (Json.t, Api.Response.t) result
(** [Error] carries the ready-to-send [Bad_request] response for a line
    that is not valid JSON. *)

val request_id : Json.t -> string
(** The raw object's ["id"] when it is a string, [""] otherwise. *)

val is_stats : Json.t -> bool
(** Deprecated: the stringly-typed stats probe on raw JSON.  The server
    loops now decode first with {!parse_request} and match the typed
    [cmd] instead. *)

val parse_request : string -> (Api.Request.t, Api.Response.t) result
(** Total decode of one line to a typed request; [Error] carries the
    ready-to-send [Bad_request] / [Unsupported_version] response
    (malformed JSON, unknown fields, bad version), with the [id]
    recovered from the raw object when possible. *)

val response_line : Api.Response.t -> string
(** One compact JSON line, no trailing newline. *)

val handle_line : string -> Api.Response.t
(** Parse and run one request line.  Never raises. *)
