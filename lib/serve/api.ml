(* The versioned request/response API (docs/serving.md): one entry point,
   [run : Request.t -> Response.t], shared by the one-shot CLI commands,
   `tenet batch` and `tenet serve`.

   A request names a workload (kernel+sizes or C source), an architecture
   and a dataflow exactly like the CLI flags do; [run] builds the model
   inputs, executes the command as a sequence of named pipeline stages,
   and assembles a structured response.  Three behaviors live here rather
   than in the server so every caller gets them:

   - Deadlines.  [deadline_ms] is a processing budget measured from the
     moment [run] starts (queue wait is not charged).  Expiry is polled
     between stages: stages that already ran keep their results, stages
     after the expiry are skipped, and the response reports status
     "partial" with a TN013 diagnostic naming what was skipped.  A
     request whose stages all completed despite running past the deadline
     stays "ok" but still carries the TN013 warning.

   - Structured errors.  Malformed expressions, unknown names and invalid
     dataflows become "error" responses with kind [Bad_request] (carrying
     the parser's offset+fragment messages); everything unexpected
     becomes [Internal].  No exception escapes [run].

   - The result cache.  Complete "ok" responses are memoized in a
     byte-budgeted LRU ({!Cache}) keyed on the canonical request
     fingerprint — arch, op, dataflow, engine, adjacency and every other
     semantic field, but not [id] or [deadline_ms] — layered above the
     per-set counting caches so repeated and near-duplicate queries (the
     DSE access pattern) are O(lookup).  Identical requests therefore
     produce byte-identical responses.  Because the fingerprint excludes
     [deadline_ms], any body carrying a timing-dependent TN013 warning
     (over-deadline but complete) is excluded from the cache: replaying
     it for a request with a different (or no) deadline would be a lie. *)

module Isl = Tenet_isl
module Ir = Tenet_ir
module Arch = Tenet_arch
module Df = Tenet_dataflow
module M = Tenet_model
module Dse = Tenet_dse.Dse
module An = Tenet_analysis
module Obs = Tenet_obs
module Json = Tenet_obs.Json
module Parallel = Tenet_util.Parallel

let version = 1

let c_requests = Obs.counter "serve.requests"
let c_cache_hits = Obs.counter "serve.cache_hits"
let c_cache_misses = Obs.counter "serve.cache_misses"
let c_template_cache_hits = Obs.counter "serve.template_cache_hits"
let c_template_cache_misses = Obs.counter "serve.template_cache_misses"
let c_deadline_expired = Obs.counter "serve.deadline_expired"

(* Pre-registered so the per-request observation never takes the
   telemetry registry lock.  Values are in seconds (the stats exporters
   convert to ms at the edge). *)
let h_latency = Obs.histogram "serve.request_latency"
let h_queue_wait = Obs.histogram "serve.queue_wait"

(* Carry the submitting domain's trace id into pool workers: a traced
   request that fans out (or the one-shot CLI's instrumented engines)
   keeps its request id on the spans recorded by worker domains. *)
let () =
  Parallel.set_task_wrap (fun task ->
      match Obs.current_trace () with
      | "" -> task
      | trace -> fun () -> Obs.with_trace ~trace task)

(* ------------------------------------------------------------------ *)
(* Requests.                                                           *)
(* ------------------------------------------------------------------ *)

module Request = struct
  type cmd = Analyze | Volumes | Dse | Check | Stats

  type t = {
    api_version : int;
    id : string;
    cmd : cmd;
    kernel : string;
    sizes : int list;
    c_source : string option; (* overrides kernel/sizes when present *)
    arch : string;
    bandwidth : int option;
    space : string;
    time : string;
    dataflow : string option; (* zoo name; overrides space/time *)
    engine : [ `Concrete | `Relational ];
    adjacency : [ `Inner_step | `Lex_step ];
    window : int;
    strict : bool;
    scale_dims : string list;
    params : string list; (* analyze: dims kept as template parameters *)
    tensors : string list; (* volumes: subset of tensors; [] = all *)
    search : [ `Exhaustive | `Pruned | `Heuristic ]; (* dse mode *)
    budget : int option; (* dse: heuristic evaluation cap *)
    top : int;
    deadline_ms : int option;
    priority : Admission.priority; (* admission tier under load *)
    format : [ `Json | `Prometheus ]; (* stats: response encoding *)
  }

  let default cmd =
    {
      api_version = version;
      id = "";
      cmd;
      kernel = "gemm";
      sizes = [ 64; 64; 64 ];
      c_source = None;
      arch = "tpu-8x8-systolic";
      bandwidth = None;
      space = "i%8,j%8";
      time = "i/8,j/8,i%8+j%8+k";
      dataflow = None;
      engine = `Concrete;
      adjacency = `Inner_step;
      window = 1;
      strict = false;
      scale_dims = [];
      params = [];
      tensors = [];
      search = `Exhaustive;
      budget = None;
      top = 10;
      deadline_ms = None;
      priority = `Normal;
      format = `Json;
    }

  let cmd_to_string = function
    | Analyze -> "analyze"
    | Volumes -> "volumes"
    | Dse -> "dse"
    | Check -> "check"
    | Stats -> "stats"

  let cmd_of_string = function
    | "analyze" -> Some Analyze
    | "volumes" -> Some Volumes
    | "dse" -> Some Dse
    | "check" -> Some Check
    | "stats" -> Some Stats
    | _ -> None

  let known_cmds = [ "analyze"; "volumes"; "dse"; "check"; "stats" ]

  (* Canonical encoding: every field, fixed order, options as null.
     [fingerprint] depends on this being stable. *)
  let to_json (r : t) : Json.t =
    let opt f = function None -> Json.Null | Some x -> f x in
    let strings l = Json.List (List.map (fun s -> Json.String s) l) in
    Json.Obj
      [
        ("api_version", Json.Int r.api_version);
        ("id", Json.String r.id);
        ("cmd", Json.String (cmd_to_string r.cmd));
        ("kernel", Json.String r.kernel);
        ("sizes", Json.List (List.map (fun n -> Json.Int n) r.sizes));
        ("c_source", opt (fun s -> Json.String s) r.c_source);
        ("arch", Json.String r.arch);
        ("bandwidth", opt (fun n -> Json.Int n) r.bandwidth);
        ("space", Json.String r.space);
        ("time", Json.String r.time);
        ("dataflow", opt (fun s -> Json.String s) r.dataflow);
        ( "engine",
          Json.String
            (match r.engine with
            | `Concrete -> "concrete"
            | `Relational -> "relational") );
        ( "adjacency",
          Json.String
            (match r.adjacency with `Inner_step -> "inner" | `Lex_step -> "lex")
        );
        ("window", Json.Int r.window);
        ("strict", Json.Bool r.strict);
        ("scale_dims", strings r.scale_dims);
        ("params", strings r.params);
        ("tensors", strings r.tensors);
        ( "search",
          Json.String
            (match r.search with
            | `Exhaustive -> "exhaustive"
            | `Pruned -> "pruned"
            | `Heuristic -> "heuristic") );
        ("budget", opt (fun n -> Json.Int n) r.budget);
        ("top", Json.Int r.top);
        ("deadline_ms", opt (fun n -> Json.Int n) r.deadline_ms);
        ("priority", Json.String (Admission.priority_to_string r.priority));
        ( "format",
          Json.String
            (match r.format with `Json -> "json" | `Prometheus -> "prometheus")
        );
      ]

  type decode_error = Bad_field of string | Bad_version of int

  let decode_error_message = function
    | Bad_field m -> m
    | Bad_version v ->
        Printf.sprintf
          "unsupported api_version %d (this server speaks version %d)" v
          version

  (* Total decode: unknown fields and type mismatches are errors, every
     known field is optional except [cmd], null means "use the default". *)
  let of_json (j : Json.t) : (t, decode_error) result =
    let ( let* ) = Result.bind in
    let bad fmt = Printf.ksprintf (fun m -> Error (Bad_field m)) fmt in
    let as_string k = function
      | Json.String s -> Ok s
      | _ -> bad "field %S must be a string" k
    in
    let as_int k = function
      | Json.Int i -> Ok i
      | _ -> bad "field %S must be an integer" k
    in
    let as_bool k = function
      | Json.Bool b -> Ok b
      | _ -> bad "field %S must be a boolean" k
    in
    let as_string_list k = function
      | Json.List l ->
          List.fold_left
            (fun acc v ->
              let* acc = acc in
              let* s = as_string k v in
              Ok (s :: acc))
            (Ok []) l
          |> Result.map List.rev
      | _ -> bad "field %S must be a list of strings" k
    in
    let as_int_list k = function
      | Json.List l ->
          List.fold_left
            (fun acc v ->
              let* acc = acc in
              let* i = as_int k v in
              Ok (i :: acc))
            (Ok []) l
          |> Result.map List.rev
      | _ -> bad "field %S must be a list of integers" k
    in
    match j with
    | Json.Obj fields ->
        let* r =
          List.fold_left
            (fun acc (k, v) ->
              let* r = acc in
              if v = Json.Null then Ok r (* null = default *)
              else
                match k with
                | "api_version" ->
                    let* n = as_int k v in
                    Ok { r with api_version = n }
                | "id" ->
                    let* s = as_string k v in
                    Ok { r with id = s }
                | "cmd" -> (
                    let* s = as_string k v in
                    match cmd_of_string s with
                    | Some c -> Ok { r with cmd = c }
                    | None ->
                        Error
                          (Bad_field
                             (Tenet_util.Text.unknown ~what:"cmd" s known_cmds)))
                | "kernel" ->
                    let* s = as_string k v in
                    Ok { r with kernel = s }
                | "sizes" ->
                    let* l = as_int_list k v in
                    Ok { r with sizes = l }
                | "c_source" ->
                    let* s = as_string k v in
                    Ok { r with c_source = Some s }
                | "arch" ->
                    let* s = as_string k v in
                    Ok { r with arch = s }
                | "bandwidth" ->
                    let* n = as_int k v in
                    Ok { r with bandwidth = Some n }
                | "space" ->
                    let* s = as_string k v in
                    Ok { r with space = s }
                | "time" ->
                    let* s = as_string k v in
                    Ok { r with time = s }
                | "dataflow" ->
                    let* s = as_string k v in
                    Ok { r with dataflow = Some s }
                | "engine" -> (
                    let* s = as_string k v in
                    match s with
                    | "concrete" -> Ok { r with engine = `Concrete }
                    | "relational" -> Ok { r with engine = `Relational }
                    | _ ->
                        Error
                          (Bad_field
                             (Tenet_util.Text.unknown ~what:"engine" s
                                [ "concrete"; "relational" ])))
                | "adjacency" -> (
                    let* s = as_string k v in
                    match s with
                    | "inner" -> Ok { r with adjacency = `Inner_step }
                    | "lex" -> Ok { r with adjacency = `Lex_step }
                    | _ ->
                        Error
                          (Bad_field
                             (Tenet_util.Text.unknown ~what:"adjacency" s
                                [ "inner"; "lex" ])))
                | "window" ->
                    let* n = as_int k v in
                    if n < 1 then bad "field \"window\" must be >= 1"
                    else Ok { r with window = n }
                | "strict" ->
                    let* b = as_bool k v in
                    Ok { r with strict = b }
                | "scale_dims" ->
                    let* l = as_string_list k v in
                    Ok { r with scale_dims = l }
                | "params" ->
                    let* l = as_string_list k v in
                    Ok { r with params = l }
                | "tensors" ->
                    let* l = as_string_list k v in
                    Ok { r with tensors = l }
                | "search" -> (
                    let* s = as_string k v in
                    match s with
                    | "exhaustive" -> Ok { r with search = `Exhaustive }
                    | "pruned" -> Ok { r with search = `Pruned }
                    | "heuristic" -> Ok { r with search = `Heuristic }
                    | _ ->
                        Error
                          (Bad_field
                             (Tenet_util.Text.unknown ~what:"search" s
                                [ "exhaustive"; "pruned"; "heuristic" ])))
                | "budget" ->
                    let* n = as_int k v in
                    if n < 1 then bad "field \"budget\" must be >= 1"
                    else Ok { r with budget = Some n }
                | "top" ->
                    let* n = as_int k v in
                    if n < 0 then bad "field \"top\" must be >= 0"
                    else Ok { r with top = n }
                | "deadline_ms" ->
                    let* n = as_int k v in
                    if n < 0 then bad "field \"deadline_ms\" must be >= 0"
                    else Ok { r with deadline_ms = Some n }
                | "priority" -> (
                    let* s = as_string k v in
                    match Admission.priority_of_string s with
                    | Some p -> Ok { r with priority = p }
                    | None ->
                        Error
                          (Bad_field
                             (Tenet_util.Text.unknown ~what:"priority" s
                                Admission.known_priorities)))
                | "format" -> (
                    let* s = as_string k v in
                    match s with
                    | "json" -> Ok { r with format = `Json }
                    | "prometheus" -> Ok { r with format = `Prometheus }
                    | _ ->
                        Error
                          (Bad_field
                             (Tenet_util.Text.unknown ~what:"format" s
                                [ "json"; "prometheus" ])))
                | k -> bad "unknown request field %S" k)
            (Ok (default Analyze))
            fields
        in
        let* () =
          match List.assoc_opt "cmd" fields with
          | Some _ -> Ok ()
          | None -> bad "missing request field \"cmd\""
        in
        if r.api_version <> version then Error (Bad_version r.api_version)
        else Ok r
    | _ -> bad "a request must be a JSON object"

  (* The cache key: the canonical encoding with the semantically inert
     fields blanked ([format] only changes the stats encoding, and stats
     responses are never cached; [priority] only changes the admission
     tier, never the result). *)
  let fingerprint (r : t) : string =
    Json.to_string
      (to_json
         { r with id = ""; deadline_ms = None; priority = `Normal;
           format = `Json })
end

(* ------------------------------------------------------------------ *)
(* Responses.                                                          *)
(* ------------------------------------------------------------------ *)

module Response = struct
  type error_kind = Bad_request | Unsupported_version | Overloaded | Internal

  type dse_outcome = {
    o_dataflow : Df.Dataflow.t;
    o_expressible : bool;
    o_metrics : M.Metrics.t;
  }

  type payload =
    | Metrics of {
        dataflow : Df.Dataflow.t;
        metrics : M.Metrics.t;
        forms : (string * string) list;
            (* closed forms per metric component; non-empty only when the
               request kept [params] and the template covered the size *)
      }
    | Volumes of {
        dataflow : Df.Dataflow.t;
        tensors :
          (string * Ir.Tensor_op.direction * M.Metrics.volumes) list;
      }
    | Dse_result of {
        candidates : int;
        pruned : int;
        valid : int;
        outcomes : dse_outcome list; (* best-first, truncated to [top] *)
      }
    | Stats of Json.t

  type body = {
    status : [ `Ok | `Partial | `Error ];
    payload : payload option;
    diagnostics : An.Diagnostic.t list;
    error : (error_kind * string) option;
  }

  type t = {
    api_version : int;
    id : string;
    body : body;
    raw : string option;
        (* serialized body bytes from the persistent cache; when
           present, serialization splices them verbatim so a replayed
           response is byte-identical to the run that produced it *)
  }

  let error_kind_to_string = function
    | Bad_request -> "bad_request"
    | Unsupported_version -> "unsupported_version"
    | Overloaded -> "overloaded"
    | Internal -> "internal"

  (* Exit code the CLI maps each kind to (documented in
     docs/serving.md): client mistakes are distinguishable from server
     faults in shell scripts. *)
  let error_exit_code = function
    | Bad_request | Unsupported_version -> 2
    | Overloaded -> 3
    | Internal -> 1

  let status_to_string = function
    | `Ok -> "ok"
    | `Partial -> "partial"
    | `Error -> "error"

  let dataflow_json (df : Df.Dataflow.t) : Json.t =
    Json.Obj
      [
        ("name", Json.String df.Df.Dataflow.name);
        ( "space",
          Json.List
            (List.map
               (fun e -> Json.String (Isl.Aff.to_string e))
               df.Df.Dataflow.space) );
        ( "time",
          Json.List
            (List.map
               (fun e -> Json.String (Isl.Aff.to_string e))
               df.Df.Dataflow.time) );
      ]

  let direction_string = function
    | Ir.Tensor_op.Read -> "in"
    | Ir.Tensor_op.Write -> "out"

  let payload_json = function
    | Metrics { dataflow; metrics; forms } ->
        Json.Obj
          ([
             ("kind", Json.String "metrics");
             ("dataflow", dataflow_json dataflow);
             ("metrics", M.Metrics.to_json metrics);
           ]
          @
          match forms with
          | [] -> []
          | fs ->
              [
                ( "closed_forms",
                  Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) fs)
                );
              ])
    | Volumes { dataflow; tensors } ->
        Json.Obj
          [
            ("kind", Json.String "volumes");
            ("dataflow", dataflow_json dataflow);
            ( "tensors",
              Json.List
                (List.map
                   (fun (tensor, dir, v) ->
                     Json.Obj
                       [
                         ("tensor", Json.String tensor);
                         ("direction", Json.String (direction_string dir));
                         ("volumes", M.Metrics.volumes_to_json v);
                       ])
                   tensors) );
          ]
    | Dse_result { candidates; pruned; valid; outcomes } ->
        Json.Obj
          [
            ("kind", Json.String "dse");
            ("candidates", Json.Int candidates);
            ("pruned", Json.Int pruned);
            ("valid", Json.Int valid);
            ( "outcomes",
              Json.List
                (List.map
                   (fun o ->
                     Json.Obj
                       [
                         ("dataflow", dataflow_json o.o_dataflow);
                         ("expressible", Json.Bool o.o_expressible);
                         ("metrics", M.Metrics.to_json o.o_metrics);
                       ])
                   outcomes) );
          ]
    | Stats j -> Json.Obj [ ("kind", Json.String "stats"); ("stats", j) ]

  let body_fields (b : body) : (string * Json.t) list =
    [ ("status", Json.String (status_to_string b.status)) ]
    @ (match b.payload with
      | None -> []
      | Some p -> [ ("payload", payload_json p) ])
    @ (match b.diagnostics with
      | [] -> []
      | ds ->
          [ ("diagnostics", Json.List (List.map An.Diagnostic.to_json ds)) ])
    @
    match b.error with
    | None -> []
    | Some (kind, message) ->
        [
          ( "error",
            Json.Obj
              [
                ("kind", Json.String (error_kind_to_string kind));
                ("message", Json.String message);
              ] );
        ]

  let to_json (r : t) : Json.t =
    let fields =
      match r.raw with
      | Some s -> (
          (* Disk-cached bytes are validated on load to re-encode
             byte-identically (see [load_disk_cache]), so going through
             the printer here still reproduces them exactly. *)
          match Json.parse s with
          | Json.Obj fs -> fs
          | _ | (exception Json.Parse_error _) -> body_fields r.body)
      | None -> body_fields r.body
    in
    Json.Obj
      ([ ("api_version", Json.Int r.api_version); ("id", Json.String r.id) ]
      @ fields)

  let ok_body ?(diagnostics = []) payload =
    { status = `Ok; payload = Some payload; diagnostics; error = None }

  let error_body ?(diagnostics = []) kind message =
    { status = `Error; payload = None; diagnostics; error = Some (kind, message) }

  let error ~id kind message =
    { api_version = version; id; body = error_body kind message; raw = None }

  let is_error (r : t) = r.body.error <> None
end

(* ------------------------------------------------------------------ *)
(* Building model inputs from a request.                               *)
(* ------------------------------------------------------------------ *)

exception Bad of string
(* Client-side mistakes surfaced while building inputs; mapped to a
   [Bad_request] error response. *)

let known_kernels = [ "gemm"; "conv"; "conv1d"; "mttkrp"; "mmc"; "jacobi2d" ]

let kernel_of ~kernel ~sizes =
  if not (List.mem kernel known_kernels) then
    raise (Bad (Tenet_util.Text.unknown ~what:"kernel" kernel known_kernels));
  List.iter
    (fun n ->
      if n <= 0 then
        raise (Bad (Printf.sprintf "size %d is not a positive extent" n)))
    sizes;
  match (kernel, sizes) with
  | "gemm", [ ni; nj; nk ] -> Ir.Kernels.gemm ~ni ~nj ~nk
  | "conv", [ nk; nc; nox; noy; nrx; nry ] ->
      Ir.Kernels.conv2d ~nk ~nc ~nox ~noy ~nrx ~nry
  | "conv1d", [ no; nr ] -> Ir.Kernels.conv1d ~no ~nr
  | "mttkrp", [ ni; nj; nk; nl ] -> Ir.Kernels.mttkrp ~ni ~nj ~nk ~nl
  | "mmc", [ ni; nj; nk; nl ] -> Ir.Kernels.mmc ~ni ~nj ~nk ~nl
  | "jacobi2d", [ n ] -> Ir.Kernels.jacobi2d ~n
  | k, sz ->
      raise
        (Bad
           (Printf.sprintf
              "kernel %s got %d sizes (expected: gemm i,j,k | conv \
               k,c,ox,oy,rx,ry | conv1d o,r | mttkrp i,j,k,l | mmc i,j,k,l \
               | jacobi2d n)"
              k (List.length sz)))

let op_of (r : Request.t) =
  match r.Request.c_source with
  | Some src -> (
      (* [Cfront.parse] raises [Syntax_error] for malformed input, but
         building the op can also reject e.g. a subscript naming an
         unknown iterator with [Invalid_argument] — equally a mistake in
         the client's C source, so surface it as [Bad]. *)
      try Ir.Cfront.parse src with Invalid_argument msg -> raise (Bad msg))
  | None -> kernel_of ~kernel:r.Request.kernel ~sizes:r.Request.sizes

let arch_of (r : Request.t) =
  let spec =
    try Arch.Repository.find r.Request.arch
    with Invalid_argument msg -> raise (Bad msg)
  in
  match r.Request.bandwidth with
  | Some bw when bw <= 0 ->
      raise (Bad (Printf.sprintf "bandwidth %d is not positive" bw))
  | Some bw -> Arch.Spec.with_bandwidth bw spec
  | None -> spec

let dataflow_of (r : Request.t) op =
  match r.Request.dataflow with
  | Some name -> (
      try Df.Zoo.find name with Invalid_argument msg -> raise (Bad msg))
  | None ->
      let dims = Ir.Tensor_op.iter_names op in
      Df.Dataflow.make ~name:"(request)"
        ~space:(Isl.Parser.exprs ~dims r.Request.space)
        ~time:(Isl.Parser.exprs ~dims r.Request.time)

(* ------------------------------------------------------------------ *)
(* The result cache.                                                   *)
(* ------------------------------------------------------------------ *)

let cache_env = "TENET_SERVE_CACHE_MB"

let cache_budget_bytes () =
  match Sys.getenv_opt cache_env with
  | None | Some "" -> 64 * 1024 * 1024
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some mb when mb >= 0 -> mb * 1024 * 1024
      | _ ->
          failwith
            (Printf.sprintf "bad %s %S: expected a non-negative integer \
                             number of megabytes" cache_env s))

(* Entries are either typed bodies (results computed in this process)
   or raw serialized body bytes reloaded from the persistent tier —
   kept as bytes end-to-end so a warm restart replays responses
   byte-identical to the run that produced them. *)
type cached = Cached_body of Response.body | Cached_raw of string

let global_cache : cached Cache.t Lazy.t =
  lazy (Cache.create ~bytes:(cache_budget_bytes ()) ())

let result_cache () = Lazy.force global_cache
let cache_stats () = Cache.stats (result_cache ())

(* ------------------------------------------------------------------ *)
(* The persistent tier (Disk_cache): loaded under the same LRU, saved  *)
(* from it.                                                            *)
(* ------------------------------------------------------------------ *)

let c_disk_rejected = Obs.counter "serve.disk_cache_rejected"

(* Where the persistent tier lives (set by [load_disk_cache]) and how
   many entries it contributed, for the stats payload. *)
let disk_mutex = Mutex.create ()
let disk_dir : string option ref = ref None
let disk_loaded : int ref = ref 0

let load_disk_cache ~dir : int =
  let cache = result_cache () in
  let accepted =
    List.fold_left
      (fun n (e : Disk_cache.entry) ->
        (* Accept only entries whose bytes are a JSON object with "ok"
           status that re-encode byte-identically: anything else (torn
           writes that still parse, hand-edited files, a printer drift
           across versions) would break the byte-identity contract the
           raw path exists for, so it is recomputed instead. *)
        match Json.parse e.Disk_cache.body with
        | exception Json.Parse_error _ ->
            Obs.incr c_disk_rejected;
            n
        | j ->
            let ok_status =
              match Json.member "status" j with
              | Some (Json.String "ok") -> true
              | _ -> false
            in
            if ok_status && Json.to_string j = e.Disk_cache.body then begin
              Cache.add cache ~key:e.Disk_cache.key
                ~size:(String.length e.Disk_cache.body)
                (Cached_raw e.Disk_cache.body);
              n + 1
            end
            else begin
              Obs.incr c_disk_rejected;
              n
            end)
      0 (Disk_cache.load ~dir)
  in
  Mutex.lock disk_mutex;
  disk_dir := Some dir;
  disk_loaded := accepted;
  Mutex.unlock disk_mutex;
  accepted

let save_disk_cache ~dir : int =
  let entries =
    Cache.fold (result_cache ()) ~init:[] ~f:(fun acc ~key ~size:_ v ->
        let body =
          match v with
          | Cached_raw s -> s
          | Cached_body b ->
              Json.to_string (Json.Obj (Response.body_fields b))
        in
        { Disk_cache.key; body } :: acc)
  in
  Disk_cache.merge_save ~dir entries

(* ------------------------------------------------------------------ *)
(* The template cache tier.                                            *)
(*                                                                     *)
(* Requests that keep [params] share one compiled metric template per  *)
(* dataflow *structure*: the key is the request fingerprint with the   *)
(* [sizes] field abstracted away, re-anchored on the extents of the    *)
(* dims that are NOT parameters (those stay baked into the template).  *)
(* A hit answers any concrete size by O(1) substitution — no counting, *)
(* no enumeration — where the template's per-class fit covers it.      *)
(* ------------------------------------------------------------------ *)

let template_mutex = Mutex.create ()
let template_cache : (string, M.Template.t) Hashtbl.t = Hashtbl.create 16

let template_cache_entries () =
  Mutex.lock template_mutex;
  let n = Hashtbl.length template_cache in
  Mutex.unlock template_mutex;
  n

let clear_cache () =
  Cache.clear (result_cache ());
  Mutex.lock template_mutex;
  Hashtbl.reset template_cache;
  Mutex.unlock template_mutex

let template_key (r : Request.t) op =
  let fixed =
    List.filter_map
      (fun d ->
        if List.mem d r.Request.params then None
        else
          let lo, hi = Ir.Tensor_op.iter_bounds op d in
          Some (Printf.sprintf "%s=%d" d (hi - lo + 1)))
      (Ir.Tensor_op.iter_names op)
  in
  Request.fingerprint { r with Request.sizes = [] }
  ^ "|" ^ String.concat "," fixed

(* Gauges contributed by the server loop (inflight), spliced into
   [stats] responses when serving. *)
let extra_gauges : (unit -> (string * int) list) ref = ref (fun () -> [])
let set_extra_gauges f = extra_gauges := f

(* The JSON stats scrape reports the recent window — everything since
   the previous JSON scrape — via Snapshot.diff, so the monitoring loop
   that polls stats every N seconds gets rates and window quantiles
   without ever resetting the lifetime telemetry.  Prometheus scrapes
   export raw cumulative series (rates are the scraper's job) and
   deliberately do not advance the window. *)
let window_mutex = Mutex.create ()
let last_snapshot : Obs.Snapshot.t option ref = ref None

let hist_ms_json (h : Obs.Snapshot.hist) : Json.t =
  let ms v = Json.Float (1e3 *. v) in
  Json.Obj
    [
      ("count", Json.Int h.Obs.Snapshot.hs_count);
      ("mean_ms", ms (Obs.Snapshot.mean h));
      ("p50_ms", ms (Obs.Snapshot.quantile h 0.5));
      ("p90_ms", ms (Obs.Snapshot.quantile h 0.9));
      ("p99_ms", ms (Obs.Snapshot.quantile h 0.99));
      ("p999_ms", ms (Obs.Snapshot.quantile h 0.999));
      ("max_ms", ms h.Obs.Snapshot.hs_max);
    ]

(* Advance the window: diff against the previous JSON scrape.  The
   first scrape has no window yet and reports nothing. *)
let window_json () : (string * Json.t) list =
  let nwer = Obs.Snapshot.take () in
  let prev =
    Mutex.lock window_mutex;
    let p = !last_snapshot in
    last_snapshot := Some nwer;
    Mutex.unlock window_mutex;
    p
  in
  match prev with
  | None -> []
  | Some older ->
      let d = Obs.Snapshot.diff ~newer:nwer ~older in
      let hits = Obs.Snapshot.counter d "serve.cache_hits" in
      let misses = Obs.Snapshot.counter d "serve.cache_misses" in
      let hit_ratio =
        if hits + misses = 0 then 0.
        else float_of_int hits /. float_of_int (hits + misses)
      in
      let hist_fields name key =
        match Obs.Snapshot.hist d name with
        | Some h when h.Obs.Snapshot.hs_count > 0 ->
            [ (key, hist_ms_json h) ]
        | _ -> []
      in
      [
        ( "window",
          Json.Obj
            ([
               ("duration_s", Json.Float d.Obs.Snapshot.s_duration);
               ( "requests",
                 Json.Int (Obs.Snapshot.counter d "serve.requests") );
               ( "request_rate_rps",
                 Json.Float (Obs.Snapshot.rate d "serve.requests") );
               ("cache_hit_ratio", Json.Float hit_ratio);
               ( "overloaded",
                 Json.Int (Obs.Snapshot.counter d "serve.overloaded") );
               ( "deadline_expired",
                 Json.Int (Obs.Snapshot.counter d "serve.deadline_expired") );
             ]
            @ hist_fields "serve.request_latency" "latency_ms"
            @ hist_fields "serve.queue_wait" "queue_wait_ms") );
      ]

(* Lifetime quantiles for a histogram cell, in milliseconds. *)
let lifetime_ms_json (h : Obs.histogram) : Json.t =
  let ms v = Json.Float (1e3 *. v) in
  Json.Obj
    [
      ("count", Json.Int (Obs.hist_count h));
      ("p50_ms", ms (Obs.quantile h 0.5));
      ("p99_ms", ms (Obs.quantile h 0.99));
      ("max_ms", ms (Obs.hist_max h));
    ]

(* The unified view of every cache tier — in-memory result LRU,
   template tier, persistent disk tier — consumed by the stats payload,
   the Prometheus gauges and the benches through one structured
   record instead of one accessor per tier. *)
type cache_tiers = {
  result : Cache.stats;
  template_entries : int;
  template_hits : int;
  template_misses : int;
  tiers_disk_dir : string option;
  disk_entries_loaded : int;
}

let cache_tiers () : cache_tiers =
  Mutex.lock disk_mutex;
  let dir = !disk_dir and loaded = !disk_loaded in
  Mutex.unlock disk_mutex;
  {
    result = cache_stats ();
    template_entries = template_cache_entries ();
    template_hits = Obs.value c_template_cache_hits;
    template_misses = Obs.value c_template_cache_misses;
    tiers_disk_dir = dir;
    disk_entries_loaded = loaded;
  }

let cache_tiers_json (t : cache_tiers) : Json.t =
  Json.Obj
    [
      ( "result",
        Json.Obj
          [
            ("entries", Json.Int t.result.Cache.entries);
            ("bytes", Json.Int t.result.Cache.bytes);
            ("budget_bytes", Json.Int t.result.Cache.budget);
            ("hits", Json.Int t.result.Cache.hits);
            ("misses", Json.Int t.result.Cache.misses);
            ("evictions", Json.Int t.result.Cache.evictions);
          ] );
      ( "template",
        Json.Obj
          [
            ("entries", Json.Int t.template_entries);
            ("hits", Json.Int t.template_hits);
            ("misses", Json.Int t.template_misses);
          ] );
      ( "disk",
        Json.Obj
          [
            ( "dir",
              match t.tiers_disk_dir with
              | None -> Json.Null
              | Some d -> Json.String d );
            ("entries_loaded", Json.Int t.disk_entries_loaded);
            ("rejected", Json.Int (Obs.value c_disk_rejected));
          ] );
    ]

let stats_payload () : Json.t =
  Json.Obj
    ([
       ("caches", cache_tiers_json (cache_tiers ()));
       ( "pool",
         Json.Obj
           [
             ("jobs", Json.Int (Parallel.jobs ()));
             ("queued", Json.Int (Parallel.waiting ()));
             ("running", Json.Int (Parallel.running ()));
           ] );
       ( "queue",
         Json.Obj
           [
             ("depth", Json.Int (Parallel.waiting ()));
             ( "overloaded",
               Json.Int (Obs.value (Obs.counter "serve.overloaded")) );
             ( "shed",
               Json.Obj
                 (List.map
                    (fun (k, v) -> (k, Json.Int v))
                    (Admission.counts ())) );
             ("wait", lifetime_ms_json h_queue_wait);
           ] );
     ]
    @ List.map (fun (k, v) -> (k, Json.Int v)) (!extra_gauges ())
    @ window_json ()
    @ [ ("telemetry", Obs.stats ()) ])

(* Prometheus text exposition of the same data: telemetry counters and
   histograms (cumulative buckets) from lib/obs, plus the serving
   gauges and the result cache's own counters. *)
let prometheus_text () : string =
  let t = cache_tiers () in
  let c = t.result in
  let gauges =
    [
      ("serve_queue_depth", float_of_int (Parallel.waiting ()));
      ("serve_pool_jobs", float_of_int (Parallel.jobs ()));
      ("serve_pool_workers", float_of_int (Parallel.spawned_workers ()));
      ("serve_pool_running", float_of_int (Parallel.running ()));
      ("serve_cache_entries", float_of_int c.Cache.entries);
      ("serve_cache_bytes", float_of_int c.Cache.bytes);
      ("serve_cache_budget_bytes", float_of_int c.Cache.budget);
      ("serve_template_cache_entries", float_of_int t.template_entries);
      ( "serve_disk_cache_entries_loaded",
        float_of_int t.disk_entries_loaded );
    ]
    @ List.map
        (fun (k, v) -> ("serve_" ^ k, float_of_int v))
        (!extra_gauges ())
  in
  let extra_counters =
    [
      ("serve_result_cache_hits", c.Cache.hits);
      ("serve_result_cache_misses", c.Cache.misses);
      ("serve_result_cache_evictions", c.Cache.evictions);
    ]
  in
  Obs.prometheus ~extra_counters ~gauges ()

let prometheus_payload () : Json.t =
  Json.Obj
    [
      ("format", Json.String "prometheus");
      ("exposition", Json.String (prometheus_text ()));
    ]

(* ------------------------------------------------------------------ *)
(* The pipeline driver.                                                *)
(* ------------------------------------------------------------------ *)

(* Run named stages in order.  The first stage always runs; afterwards,
   expiry is polled between stages and the remaining stages are skipped.
   Returns (expired, skipped stage names). *)
let drive (token : Parallel.token option) stages : bool * string list =
  let skipped = ref [] in
  let expired = ref false in
  List.iter
    (fun (name, f) ->
      if !expired then skipped := name :: !skipped
      else begin
        f ();
        match token with
        | Some t when Parallel.cancelled t -> expired := true
        | _ -> ()
      end)
    stages;
  (!expired, List.rev !skipped)

(* Close a staged run into a body: attach TN013 when the deadline
   expired, downgrade to "partial" when stages were actually skipped. *)
let close_stages (r : Request.t) ~expired ~skipped ?(diagnostics = [])
    payload : Response.body =
  if not expired then
    { status = `Ok; payload; diagnostics; error = None }
  else begin
    Obs.incr c_deadline_expired;
    let deadline = Option.value ~default:0 r.Request.deadline_ms in
    let d =
      An.Diagnostic.make "TN013"
        (if skipped = [] then
           Printf.sprintf
             "request ran past its %d ms deadline (all stages completed)"
             deadline
         else
           Printf.sprintf "deadline of %d ms expired; skipped stages: %s"
             deadline
             (String.concat ", " skipped))
    in
    {
      status = (if skipped = [] then `Ok else `Partial);
      payload;
      diagnostics = diagnostics @ [ d ];
      error = None;
    }
  end

exception Strict_failed of An.Diagnostic.t list

(* Analyze through the template tier: look up (or compile and insert)
   the size-abstracted template, then instantiate it at the request's
   own extents.  Sizes below a class's validity floor fall back to one
   concrete evaluation, exactly like an uncached request. *)
let analyze_via_template (r : Request.t) spec op df :
    M.Metrics.t * (string * string) list =
  let adjacency = r.Request.adjacency in
  let known = Ir.Tensor_op.iter_names op in
  List.iter
    (fun d ->
      if not (List.mem d known) then
        raise (Bad (Tenet_util.Text.unknown ~what:"param" d known)))
    r.Request.params;
  let key = template_key r op in
  let probe () =
    Mutex.lock template_mutex;
    let t = Hashtbl.find_opt template_cache key in
    Mutex.unlock template_mutex;
    t
  in
  let tpl =
    match probe () with
    | Some t ->
        Obs.incr c_template_cache_hits;
        t
    | None ->
        Obs.incr c_template_cache_misses;
        let t =
          try
            M.Template.compile ~adjacency ~window:r.Request.window spec op df
              ~params:r.Request.params
          with Invalid_argument msg -> raise (Bad msg)
        in
        (* insert-if-absent: a racing compile of the same key built the
           same (deterministic) template; keep the first *)
        Mutex.lock template_mutex;
        let t =
          match Hashtbl.find_opt template_cache key with
          | Some existing -> existing
          | None ->
              Hashtbl.add template_cache key t;
              t
        in
        Mutex.unlock template_mutex;
        t
  in
  let sizes =
    List.map
      (fun d ->
        let lo, hi = Ir.Tensor_op.iter_bounds op d in
        (d, hi - lo + 1))
      r.Request.params
  in
  match M.Template.try_instantiate tpl ~sizes with
  | Some m -> (m, M.Template.closed_forms tpl ~sizes)
  | None ->
      (M.Concrete.analyze ~adjacency ~window:r.Request.window spec op df, [])

let compute_metrics (r : Request.t) spec op df :
    M.Metrics.t * (string * string) list =
  let adjacency = r.Request.adjacency in
  if r.Request.params <> [] then begin
    if r.Request.scale_dims <> [] then
      raise (Bad "fields \"params\" and \"scale_dims\" are mutually exclusive");
    analyze_via_template r spec op df
  end
  else if r.Request.scale_dims <> [] then begin
    let known = Ir.Tensor_op.iter_names op in
    List.iter
      (fun d ->
        if not (List.mem d known) then
          raise (Bad (Tenet_util.Text.unknown ~what:"scale dim" d known)))
      r.Request.scale_dims;
    ( M.Scaled.analyze ~adjacency spec op df ~scale_dims:r.Request.scale_dims,
      [] )
  end
  else
    ( (match r.Request.engine with
      | `Relational -> M.Model.analyze ~adjacency spec op df
      | `Concrete ->
          M.Concrete.analyze ~adjacency ~window:r.Request.window spec op df),
      [] )

let run_analyze ~token (r : Request.t) : Response.body =
  let op = op_of r in
  let spec = arch_of r in
  let df = dataflow_of r op in
  let diags = ref [] in
  let metrics = ref None in
  let stages =
    (if r.Request.strict then
       [
         ( "check",
           fun () ->
             let ds =
               An.Checker.check ~adjacency:r.Request.adjacency spec op df
             in
             diags := ds;
             if An.Diagnostic.errors ds <> [] then raise (Strict_failed ds) );
       ]
     else [])
    @ [ ("metrics", fun () -> metrics := Some (compute_metrics r spec op df)) ]
  in
  let expired, skipped = drive token stages in
  close_stages r ~expired ~skipped ~diagnostics:!diags
    (Option.map
       (fun (m, forms) ->
         Response.Metrics { dataflow = df; metrics = m; forms })
       !metrics)

let run_volumes ~token (r : Request.t) : Response.body =
  let op = op_of r in
  let spec = arch_of r in
  let df = dataflow_of r op in
  let all = Ir.Tensor_op.tensors op in
  let wanted =
    match r.Request.tensors with
    | [] -> all
    | ts ->
        List.iter
          (fun t ->
            if not (List.mem t all) then
              raise (Bad (Tenet_util.Text.unknown ~what:"tensor" t all)))
          ts;
        ts
  in
  let outputs = Ir.Tensor_op.outputs op in
  (* Channels are shared by every tensor stage; computing them lazily
     inside the first stage keeps the stage list free of a cheap
     "prepare" stage whose checkpoint would be timing-noise. *)
  let channels = ref None in
  let channels_of () =
    match !channels with
    | Some c -> c
    | None ->
        let c =
          Df.Spacetime.channels ~adjacency:r.Request.adjacency spec op df
        in
        channels := Some c;
        c
  in
  let results = ref [] in
  let stages =
    List.map
      (fun tensor ->
        ( Printf.sprintf "volumes[%s]" tensor,
          fun () ->
            let assignment = Df.Dataflow.data_assignment op df tensor in
            let v =
              M.Volumes.compute ~assignment ~channels:(channels_of ())
            in
            let dir =
              if List.mem tensor outputs then Ir.Tensor_op.Write
              else Ir.Tensor_op.Read
            in
            results := (tensor, dir, v) :: !results ))
      wanted
  in
  let expired, skipped = drive token stages in
  close_stages r ~expired ~skipped
    (Some
       (Response.Volumes { dataflow = df; tensors = List.rev !results }))

let run_dse ~token (r : Request.t) : Response.body =
  let op = op_of r in
  let spec = arch_of r in
  let cands = ref [] in
  let n_pruned = ref 0 in
  let outcomes = ref [] in
  let stages =
    [
      ( "candidates",
        fun () ->
          let rank = Arch.Pe_array.rank spec.Arch.Spec.pe in
          if rank < 1 || rank > 2 then
            raise
              (Bad
                 (Printf.sprintf
                    "dse needs a 1D or 2D PE array; %s has rank %d"
                    r.Request.arch rank));
          let p = (Arch.Pe_array.dims spec.Arch.Spec.pe).(0) in
          cands :=
            if rank = 2 then Dse.candidates_2d op ~p
            else Dse.candidates_1d op ~p );
      ( "evaluate",
        fun () ->
          let prefilter =
            if r.Request.strict then
              Some
                (fun df ->
                  let ok =
                    An.Diagnostic.errors (An.Checker.precheck spec op df) = []
                  in
                  if not ok then incr n_pruned;
                  ok)
            else None
          in
          match r.Request.search with
          | `Exhaustive ->
              outcomes :=
                Dse.evaluate_all ?prefilter ~adjacency:r.Request.adjacency
                  ~objective:Dse.Latency spec op !cands
          | (`Pruned | `Heuristic) as mode ->
              let mode =
                match mode with
                | `Pruned -> Dse.Pruned
                | `Heuristic -> Dse.Heuristic
              in
              let result =
                Dse.search ~mode ?budget:r.Request.budget ?prefilter
                  ~adjacency:r.Request.adjacency ~objective:Dse.Latency spec
                  op !cands
              in
              (* the search's own prune tiers count toward [pruned] on
                 top of the strict prefilter's rejections *)
              n_pruned :=
                result.Dse.stats.Dse.pruned_precheck
                + result.Dse.stats.Dse.pruned_symmetry
                + result.Dse.stats.Dse.pruned_capacity
                + result.Dse.stats.Dse.pruned_dominated;
              outcomes := result.Dse.outcomes );
    ]
  in
  let expired, skipped = drive token stages in
  let rec take n = function
    | x :: r when n > 0 -> x :: take (n - 1) r
    | _ -> []
  in
  close_stages r ~expired ~skipped
    (Some
       (Response.Dse_result
          {
            candidates = List.length !cands;
            pruned = !n_pruned;
            valid = List.length !outcomes;
            outcomes =
              List.map
                (fun (o : Dse.outcome) ->
                  {
                    Response.o_dataflow = o.Dse.dataflow;
                    o_expressible = o.Dse.expressible;
                    o_metrics = o.Dse.metrics;
                  })
                (take r.Request.top !outcomes);
          }))

let run_check ~token (r : Request.t) : Response.body =
  let op = op_of r in
  let spec = arch_of r in
  let df = dataflow_of r op in
  let diags = ref [] in
  let stages =
    [
      ( "check",
        fun () ->
          diags := An.Checker.check ~adjacency:r.Request.adjacency spec op df
      );
    ]
  in
  let expired, skipped = drive token stages in
  close_stages r ~expired ~skipped ~diagnostics:!diags None

let run_uncached ~token (r : Request.t) : Response.body =
  match r.Request.cmd with
  | Request.Analyze -> run_analyze ~token r
  | Request.Volumes -> run_volumes ~token r
  | Request.Dse -> run_dse ~token r
  | Request.Check -> run_check ~token r
  | Request.Stats ->
      Response.ok_body
        (Response.Stats
           (match r.Request.format with
           | `Json -> stats_payload ()
           | `Prometheus -> prometheus_payload ()))

(* ------------------------------------------------------------------ *)
(* The entry point.                                                    *)
(* ------------------------------------------------------------------ *)

let body_size (b : Response.body) : int =
  String.length (Json.to_string (Json.Obj (Response.body_fields b)))

let run (r : Request.t) : Response.t =
  Obs.incr c_requests;
  let t0 = Obs.now () in
  let cache_outcome = ref `Bypass in
  let resp =
    (* The request id doubles as the trace id: every span recorded under
       this request (including on pool workers, via the task wrap) and
       the access-log line carry it. *)
    Obs.with_trace ~trace:r.Request.id
    @@ fun () ->
    Obs.with_span
      ~args:[ ("cmd", Request.cmd_to_string r.Request.cmd) ]
      "serve.request"
    @@ fun () ->
    let respond body =
      { Response.api_version = version; id = r.Request.id; body; raw = None }
    in
    if r.Request.cmd = Request.Stats then
      (* never cached: the whole point is the live gauges *)
      respond (run_uncached ~token:None r)
    else begin
      let key = Request.fingerprint r in
      let cache = result_cache () in
      match Cache.find cache key with
      | Some (Cached_body body) ->
          Obs.incr c_cache_hits;
          cache_outcome := `Hit;
          respond body
      | Some (Cached_raw s) ->
          Obs.incr c_cache_hits;
          cache_outcome := `Hit;
          (* a warm-restart hit: replay the persisted bytes verbatim;
             the skeleton body only feeds the access log's status field *)
          {
            Response.api_version = version;
            id = r.Request.id;
            body =
              {
                Response.status = `Ok;
                payload = None;
                diagnostics = [];
                error = None;
              };
            raw = Some s;
          }
      | None ->
          Obs.incr c_cache_misses;
          cache_outcome := `Miss;
          let token =
            Option.map
              (fun ms ->
                Parallel.token ~deadline_s:(float_of_int ms /. 1000.) ())
              r.Request.deadline_ms
          in
          let body =
            try run_uncached ~token r with
            | Bad msg -> Response.error_body Response.Bad_request msg
            | Strict_failed ds ->
                Response.error_body ~diagnostics:ds Response.Bad_request
                  "the model checker rejected the dataflow (see diagnostics)"
            | Isl.Parser.Parse_error msg ->
                Response.error_body Response.Bad_request
                  ("parse error: " ^ msg)
            | Ir.Cfront.Syntax_error msg ->
                Response.error_body Response.Bad_request
                  ("C syntax error: " ^ msg)
            | M.Concrete.Invalid_dataflow msg | M.Model.Invalid_dataflow msg
              ->
                Response.error_body Response.Bad_request
                  ("invalid dataflow: " ^ msg)
            | Isl.Count.Verify_mismatch _ as e ->
                let ds =
                  match An.Checker.diagnostic_of_exn e with
                  | Some d -> [ d ]
                  | None -> []
                in
                Response.error_body ~diagnostics:ds Response.Internal
                  "counting sanitizer mismatch"
            | Failure msg | Invalid_argument msg ->
                (* A bare [Failure]/[Invalid_argument] reaching this far is
                   a broken internal invariant, not a client mistake: every
                   expected client-error site raises [Bad] (or one of the
                   typed exceptions above) explicitly. *)
                Response.error_body Response.Internal msg
            | e ->
                Response.error_body Response.Internal (Printexc.to_string e)
          in
          (* Only complete, successful results are worth replaying; errors
             are cheap, partials depend on the deadline that cut them, and
             an "ok" body that ran past its deadline carries a TN013
             warning the deadline-blind fingerprint must never replay. *)
          if
            body.Response.status = `Ok
            && body.Response.error = None
            && not
                 (List.exists
                    (fun d -> d.An.Diagnostic.code = "TN013")
                    body.Response.diagnostics)
          then
            Cache.add cache ~key ~size:(body_size body) (Cached_body body);
          respond body
    end
  in
  let latency_s = Obs.now () -. t0 in
  Obs.observe_h h_latency latency_s;
  let body = resp.Response.body in
  Access_log.record ~id:r.Request.id ~trace:r.Request.id
    ~cmd:(Request.cmd_to_string r.Request.cmd)
    ~fingerprint:
      (if Access_log.enabled () && r.Request.cmd <> Request.Stats then
         Some (Digest.to_hex (Digest.string (Request.fingerprint r)))
       else None)
    ~status:(Response.status_to_string body.Response.status)
    ~error_kind:
      (Option.map
         (fun (k, _) -> Response.error_kind_to_string k)
         body.Response.error)
    ~cache:!cache_outcome
    ~deadline_expired:
      (List.exists
         (fun d -> d.An.Diagnostic.code = "TN013")
         body.Response.diagnostics)
    ~latency_ms:(1e3 *. latency_s) ();
  resp

(* Total decode to either a typed request or a ready-to-send error
   response (the [id] recovered from the raw object when possible):
   the typed half of the server loop's request handling — admission
   control and the inline-stats path match on the decoded request, not
   on raw JSON members. *)
let decode (j : Json.t) : (Request.t, Response.t) result =
  match Request.of_json j with
  | Ok r -> Ok r
  | Error e ->
      let id =
        match Json.member "id" j with Some (Json.String s) -> s | _ -> ""
      in
      let kind =
        match e with
        | Request.Bad_version _ -> Response.Unsupported_version
        | Request.Bad_field _ -> Response.Bad_request
      in
      Error (Response.error ~id kind (Request.decode_error_message e))

(* Decode a raw JSON request and run it: the shared core of the batch
   runner, the server loop and the CLI.  Never raises. *)
let run_json (j : Json.t) : Response.t =
  match decode j with Ok r -> run r | Error resp -> resp
