(* The pre-fork worker fleet: the scale-out serving tier's front end
   (docs/serving.md, "Scaling out").

   [create] forks [Config.workers] worker processes, each holding one
   end of a socketpair and running a sequential JSON-lines loop (read a
   request line, [Protocol.handle_line], write the response line).  The
   parent is a single-threaded [Unix.select] event loop that never
   touches the domain pool — it parses, admits and dispatches; all
   model work happens in the children.

   Forking must happen before any domain is spawned: the OCaml 5
   runtime refuses [Unix.fork] once other domains exist.  [create]
   checks and fails with a message naming the constraint.  Because the
   parent loads the persistent cache *before* forking, every worker
   inherits the warm in-memory cache for free.

   Two dispatch shapes:

   - [batch]: requests are assigned round-robin by input index, so
     worker [w]'s [k]-th response is global response [k*N + w] — the
     reassembled output is in input order and byte-identical to the
     single-process batch of the same lines (the golden transcript is
     diffed against a multi-worker run in CI).  No admission control:
     batch is offline, nothing sheds.

   - [session]: the serving loop.  Client lines are admitted through
     the graduated watermarks ({!Admission}), queue in the parent, and
     are dispatched to the least-loaded worker with a small pipeline
     window per worker (enough to hide the socketpair round-trip, small
     enough that deadline-expired shedding still sees the queue).
     Responses are forwarded in completion order, like the in-process
     server.  [stats] is answered inline by the parent, so the fleet
     stays observable while every worker is busy.

   A worker that dies mid-request surfaces as an [Internal] error
   response for each of its outstanding requests (counted on
   [serve.worker_failures]); the fleet keeps serving on the survivors.
   At shutdown the parent half-closes every socketpair; workers see
   EOF, persist their cache slice ({!Api.save_disk_cache}, merged
   across workers through the lock file) and exit.  A parent killed
   outright has the same effect — fd closure is the shutdown signal,
   so even SIGKILL on the front end loses no cached work. *)

module Obs = Tenet_obs
module Parallel = Tenet_util.Parallel

let c_worker_failures = Obs.counter "serve.worker_failures"

(* Per-worker dispatch window in [session] mode: deep enough to hide
   the socketpair round-trip behind compute, shallow enough that load
   stays visible in the parent's queue for the admission watermarks. *)
let pipeline_depth = 4

type worker = {
  w_pid : int;
  w_fd : Unix.file_descr; (* parent's end of the socketpair *)
  mutable w_inflight : int; (* session mode: dispatched, unanswered *)
  w_outstanding : string Queue.t; (* their request ids, dispatch order *)
  w_rbuf : Buffer.t; (* partial response line *)
  mutable w_alive : bool;
}

type t = { f_cfg : Config.t; f_workers : worker array }

let check_forkable () =
  if Parallel.spawned_workers () > 0 then
    failwith
      "serve fleet: worker processes must be forked before any parallel \
       work runs (the OCaml runtime cannot fork once domains have been \
       spawned); start the fleet first"

(* The child side: a sequential request loop on the inherited fd.  EOF
   from the parent is the shutdown signal — persist the cache slice,
   then exit.  Never returns. *)
let worker_main (cfg : Config.t) (idx : int) (fd : Unix.file_descr) : 'a =
  let status = ref 0 in
  (try
     (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
      with Invalid_argument _ | Sys_error _ -> ());
     if cfg.Config.worker_jobs > 0 then
       Parallel.set_jobs cfg.Config.worker_jobs;
     if not (Obs.enabled ()) then Obs.enable ();
     (match cfg.Config.access_log with
     | Some path ->
         (* one sink per worker — concurrent appends from sibling
            processes would interleave partial lines *)
         Access_log.configure ~sample:cfg.Config.access_log_sample
           (Printf.sprintf "%s.w%d" path idx)
     | None -> ());
     let ic = Unix.in_channel_of_descr fd in
     let oc = Unix.out_channel_of_descr fd in
     (try
        let rec loop () =
          match input_line ic with
          | exception End_of_file -> ()
          | line when Protocol.is_comment line -> loop ()
          | line ->
              let resp = Protocol.handle_line line in
              output_string oc (Protocol.response_line resp);
              output_char oc '\n';
              flush oc;
              loop ()
        in
        loop ()
      with Sys_error _ -> ());
     (match cfg.Config.cache_dir with
     | Some dir -> (
         try ignore (Api.save_disk_cache ~dir)
         with Sys_error _ | Unix.Unix_error _ -> ())
     | None -> ());
     Access_log.disable ()
   with e ->
     prerr_endline ("tenet fleet worker: " ^ Printexc.to_string e);
     status := 1);
  exit !status

let create (cfg : Config.t) : t =
  check_forkable ();
  (* Buffered output copied into children would be flushed twice. *)
  flush stdout;
  flush stderr;
  let earlier_parent_fds = ref [] in
  let workers =
    Array.make cfg.Config.workers
      {
        w_pid = 0;
        w_fd = Unix.stdin;
        w_inflight = 0;
        w_outstanding = Queue.create ();
        w_rbuf = Buffer.create 64;
        w_alive = false;
      }
  in
  for i = 0 to cfg.Config.workers - 1 do
    let parent_fd, child_fd =
      Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0
    in
    match Unix.fork () with
    | 0 ->
        (try Unix.close parent_fd with Unix.Unix_error _ -> ());
        (* inherited parent ends of earlier siblings: close them or
           their EOF (the shutdown signal) would never arrive *)
        List.iter
          (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
          !earlier_parent_fds;
        worker_main cfg i child_fd
    | pid ->
        (try Unix.close child_fd with Unix.Unix_error _ -> ());
        earlier_parent_fds := parent_fd :: !earlier_parent_fds;
        workers.(i) <-
          {
            w_pid = pid;
            w_fd = parent_fd;
            w_inflight = 0;
            w_outstanding = Queue.create ();
            w_rbuf = Buffer.create 4096;
            w_alive = true;
          }
  done;
  { f_cfg = cfg; f_workers = workers }

let shutdown (t : t) : unit =
  Array.iter
    (fun w ->
      try Unix.shutdown w.w_fd Unix.SHUTDOWN_SEND
      with Unix.Unix_error _ -> ())
    t.f_workers;
  (* Drain to EOF so a worker blocked writing a response can finish,
     then reap.  The draining also waits out the workers' cache
     persistence (they write the disk cache after their loop ends). *)
  Array.iter
    (fun w ->
      (try
         let buf = Bytes.create 4096 in
         let rec drain () = if Unix.read w.w_fd buf 0 4096 > 0 then drain () in
         drain ()
       with Unix.Unix_error _ -> ());
      (try Unix.close w.w_fd with Unix.Unix_error _ -> ());
      try ignore (Unix.waitpid [] w.w_pid) with Unix.Unix_error _ -> ())
    t.f_workers

(* Split the buffer's complete lines off, keeping the partial tail. *)
let drain_lines (buf : Buffer.t) : string list =
  let s = Buffer.contents buf in
  let rec go start acc =
    match String.index_from_opt s start '\n' with
    | Some i -> go (i + 1) (String.sub s start (i - start) :: acc)
    | None ->
        Buffer.clear buf;
        Buffer.add_substring buf s start (String.length s - start);
        List.rev acc
  in
  go 0 []

let rec select_retry rds wrs timeout =
  match Unix.select rds wrs [] timeout with
  | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      select_retry rds wrs timeout
  | r -> r

(* ------------------------------------------------------------------ *)
(* Batch: round-robin fan-out, index-ordered reassembly.               *)
(* ------------------------------------------------------------------ *)

let read_lines (ic : in_channel) : string list =
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  go []

let batch (cfg : Config.t) (ic : in_channel) (oc : out_channel) : unit =
  let lines =
    List.filter (fun l -> not (Protocol.is_comment l)) (read_lines ic)
  in
  let n = List.length lines in
  if n = 0 then flush oc
  else begin
    let t = create cfg in
    let ws = t.f_workers in
    let nw = Array.length ws in
    (* line i -> worker (i mod nw), so worker w's k-th response is
       global response k*nw + w: reassembly is pure arithmetic *)
    let payload = Array.init nw (fun _ -> Buffer.create 4096) in
    let expected = Array.make nw 0 in
    List.iteri
      (fun i line ->
        let w = i mod nw in
        Buffer.add_string payload.(w) line;
        Buffer.add_char payload.(w) '\n';
        expected.(w) <- expected.(w) + 1)
      lines;
    let send = Array.map Buffer.contents payload in
    let sent = Array.make nw 0 in
    let shut = Array.make nw false in
    let received = Array.make nw 0 in
    let responses = Array.make n "" in
    Array.iter (fun w -> Unix.set_nonblock w.w_fd) ws;
    let half_close w =
      if not shut.(w) then begin
        (try Unix.shutdown ws.(w).w_fd Unix.SHUTDOWN_SEND
         with Unix.Unix_error _ -> ());
        shut.(w) <- true
      end
    in
    Array.iteri (fun w s -> if s = "" then half_close w) send;
    let fd_index fd =
      let rec find i = if ws.(i).w_fd == fd then i else find (i + 1) in
      find 0
    in
    let finished () =
      let ok = ref true in
      Array.iteri (fun w r -> if r < expected.(w) then ok := false) received;
      !ok
    in
    (* Interleave writes and reads through select: writing every
       request first would deadlock once both socketpair buffers fill
       (the worker blocks writing responses nobody reads, and stops
       reading requests). *)
    while not (finished ()) do
      let rds =
        Array.to_list ws
        |> List.filteri (fun w _ -> received.(w) < expected.(w))
        |> List.map (fun w -> w.w_fd)
      in
      let wrs =
        Array.to_list ws
        |> List.filteri (fun w _ -> sent.(w) < String.length send.(w))
        |> List.map (fun w -> w.w_fd)
      in
      let rs, wsel, _ = select_retry rds wrs (-1.0) in
      List.iter
        (fun fd ->
          let w = fd_index fd in
          let s = send.(w) in
          (match
             Unix.write_substring fd s sent.(w) (String.length s - sent.(w))
           with
          | k -> sent.(w) <- sent.(w) + k
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
            ->
              ()
          | exception Unix.Unix_error (Unix.EPIPE, _, _) ->
              failwith "serve fleet: a batch worker died mid-batch");
          if sent.(w) = String.length s then half_close w)
        wsel;
      List.iter
        (fun fd ->
          let w = fd_index fd in
          let buf = Bytes.create 65536 in
          match Unix.read fd buf 0 (Bytes.length buf) with
          | 0 ->
              if received.(w) < expected.(w) then
                failwith
                  (Printf.sprintf
                     "serve fleet: batch worker %d exited after %d of %d \
                      responses"
                     w received.(w) expected.(w))
          | k ->
              Buffer.add_subbytes ws.(w).w_rbuf buf 0 k;
              List.iter
                (fun line ->
                  responses.((received.(w) * nw) + w) <- line;
                  received.(w) <- received.(w) + 1)
                (drain_lines ws.(w).w_rbuf)
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
            ->
              ())
        rs;
      (* a worker with nothing left to say may have died: detected by
         the 0-byte read above on its next readable event *)
      ignore rs
    done;
    Array.iter
      (fun w ->
        (try Unix.close w.w_fd with Unix.Unix_error _ -> ());
        try ignore (Unix.waitpid [] w.w_pid) with Unix.Unix_error _ -> ())
      ws;
    Array.iter
      (fun line ->
        output_string oc line;
        output_char oc '\n')
      responses;
    flush oc
  end

(* ------------------------------------------------------------------ *)
(* Session: the serving loop.                                          *)
(* ------------------------------------------------------------------ *)

type pending = {
  p_line : string;
  p_req : Api.Request.t;
  p_enqueued : float;
  p_pressure : bool; (* admitted at or past the low watermark *)
}

let total_inflight ws = Array.fold_left (fun a w -> a + w.w_inflight) 0 ws

let write_all fd s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write_substring fd s !off (len - !off)
  done

let session (t : t) (ic : in_channel) (oc : out_channel) : unit =
  let cfg = t.f_cfg in
  let ws = t.f_workers in
  let queue_limit = cfg.Config.queue_limit in
  let shed_low = Config.shed_low_watermark cfg in
  let shed_normal = Config.shed_normal_watermark cfg in
  let pending : pending Queue.t = Queue.create () in
  let cin = Unix.descr_of_in_channel ic in
  let client_eof = ref false in
  let client_buf = Buffer.create 4096 in
  let respond_line line =
    output_string oc line;
    output_char oc '\n';
    flush oc
  in
  let respond resp = respond_line (Protocol.response_line resp) in
  Api.set_extra_gauges (fun () ->
      [
        ("workers", Array.length ws);
        ( "workers_alive",
          Array.fold_left (fun a w -> if w.w_alive then a + 1 else a) 0 ws );
        ("fleet_pending", Queue.length pending);
        ("fleet_inflight", total_inflight ws);
      ]);
  let shed reason ~id ~waited_ms =
    Admission.note reason;
    respond
      (Api.Response.error ~id Api.Response.Overloaded
         (Admission.message ~queue_limit ~shed_low ~shed_normal ~waited_ms
            reason))
  in
  (* Fail a dead worker's outstanding requests: the client gets a real
     response for each (never silence), the fleet keeps serving. *)
  let bury w =
    if w.w_alive then begin
      w.w_alive <- false;
      Queue.iter
        (fun id ->
          Obs.incr c_worker_failures;
          respond
            (Api.Response.error ~id Api.Response.Internal
               "fleet worker exited mid-request"))
        w.w_outstanding;
      Queue.clear w.w_outstanding;
      w.w_inflight <- 0;
      try Unix.close w.w_fd with Unix.Unix_error _ -> ()
    end
  in
  let capacity () =
    Array.exists (fun w -> w.w_alive && w.w_inflight < pipeline_depth) ws
  in
  let rec dispatch_one (p : pending) =
    let waited_ms = 1e3 *. (Obs.now () -. p.p_enqueued) in
    if
      p.p_pressure
      && Admission.expired_in_queue
           ~deadline_ms:p.p_req.Api.Request.deadline_ms ~waited_ms
    then shed Admission.Expired ~id:p.p_req.Api.Request.id ~waited_ms
    else begin
      let best = ref None in
      Array.iter
        (fun w ->
          if w.w_alive && w.w_inflight < pipeline_depth then
            match !best with
            | Some b when b.w_inflight <= w.w_inflight -> ()
            | _ -> best := Some w)
        ws;
      match !best with
      | None -> assert false (* caller checked [capacity] *)
      | Some w -> (
          match write_all w.w_fd (p.p_line ^ "\n") with
          | () ->
              w.w_inflight <- w.w_inflight + 1;
              Queue.push p.p_req.Api.Request.id w.w_outstanding
          | exception Unix.Unix_error _ ->
              bury w;
              if capacity () then dispatch_one p
              else
                respond
                  (Api.Response.error ~id:p.p_req.Api.Request.id
                     Api.Response.Internal "no fleet worker available"))
    end
  in
  let pump () =
    while (not (Queue.is_empty pending)) && capacity () do
      dispatch_one (Queue.pop pending)
    done
  in
  let handle_client_line line =
    if not (Protocol.is_comment line) then
      match Protocol.parse_request line with
      | Error resp -> respond resp
      | Ok req when req.Api.Request.cmd = Api.Request.Stats ->
          (* inline on the front end: observable while saturated *)
          respond (Api.run req)
      | Ok req -> (
          let depth = Queue.length pending in
          match
            Admission.decide ~queue_limit ~shed_low ~shed_normal ~depth
              ~priority:req.Api.Request.priority
          with
          | Admission.Shed reason ->
              shed reason ~id:req.Api.Request.id ~waited_ms:0.
          | Admission.Admit ->
              Queue.push
                {
                  p_line = line;
                  p_req = req;
                  p_enqueued = Obs.now ();
                  p_pressure = depth >= shed_low;
                }
                pending)
  in
  Unix.set_nonblock cin;
  Fun.protect
    ~finally:(fun () ->
      try Unix.clear_nonblock cin with Unix.Unix_error _ -> ())
  @@ fun () ->
  let chunk = Bytes.create 65536 in
  let rec loop () =
    pump ();
    if !client_eof && Queue.is_empty pending && total_inflight ws = 0 then ()
    else if not (Array.exists (fun w -> w.w_alive) ws) then begin
      (* every worker is gone: answer what is queued, then stop *)
      Queue.iter
        (fun p ->
          respond
            (Api.Response.error ~id:p.p_req.Api.Request.id
               Api.Response.Internal "no fleet worker available"))
        pending;
      Queue.clear pending
    end
    else begin
      let rds =
        (if !client_eof then [] else [ cin ])
        @ (Array.to_list ws
          |> List.filter (fun w -> w.w_alive && w.w_inflight > 0)
          |> List.map (fun w -> w.w_fd))
      in
      if rds = [] then () (* client done, nothing in flight *)
      else begin
        let rs, _, _ = select_retry rds [] (-1.0) in
        List.iter
          (fun fd ->
            if fd == cin then (
              match Unix.read cin chunk 0 (Bytes.length chunk) with
              | 0 -> client_eof := true
              | k ->
                  Buffer.add_subbytes client_buf chunk 0 k;
                  List.iter handle_client_line (drain_lines client_buf)
              | exception
                  Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
                  ())
            else
              let w =
                let found = ref None in
                Array.iter
                  (fun w -> if w.w_alive && w.w_fd == fd then found := Some w)
                  ws;
                !found
              in
              match w with
              | None -> ()
              | Some w -> (
                  match Unix.read fd chunk 0 (Bytes.length chunk) with
                  | 0 -> bury w
                  | k ->
                      Buffer.add_subbytes w.w_rbuf chunk 0 k;
                      List.iter
                        (fun line ->
                          (* per-worker completion order is dispatch
                             order: the worker loop is sequential *)
                          ignore (Queue.pop w.w_outstanding);
                          w.w_inflight <- w.w_inflight - 1;
                          respond_line line)
                        (drain_lines w.w_rbuf)
                  | exception
                      Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
                    ->
                      ()))
          rs;
        loop ()
      end
    end
  in
  loop ()

let serve (cfg : Config.t) (ic : in_channel) (oc : out_channel) : unit =
  let t = create cfg in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> session t ic oc)
