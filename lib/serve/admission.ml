(* Graduated admission control for the serving tier (docs/serving.md).

   The legacy policy was binary: queue full -> `overloaded`.  The
   scale-out tier grades it by queue-depth watermarks so cheap-to-lose
   work sheds first and the hard limit is the last resort:

     depth >= queue_limit   -> shed everything      (serve.shed_hard)
     depth >= shed_normal   -> shed normal priority (serve.shed_normal)
     depth >= shed_low      -> shed low priority    (serve.shed_low)

   High-priority requests ride through every watermark and only hit the
   hard limit.  A fourth tier sheds work whose deadline already expired
   while it sat in the queue (serve.shed_expired) — running it would
   only produce a partial response the client has stopped waiting for.
   That tier applies only when the request was admitted under pressure
   (depth at or past the low watermark), so an idle server never sheds
   a deadline request that merely waited a scheduling quantum.

   Every shed also counts on the legacy serve.overloaded total (the
   response kind stays `overloaded`), so dashboards built on it keep
   reading "requests shed" whatever tier did the shedding. *)

module Obs = Tenet_obs

type priority = [ `High | `Normal | `Low ]
type reason = Hard_limit | Normal_priority | Low_priority | Expired
type verdict = Admit | Shed of reason

let c_overloaded = Obs.counter "serve.overloaded"
let c_shed_hard = Obs.counter "serve.shed_hard"
let c_shed_normal = Obs.counter "serve.shed_normal"
let c_shed_low = Obs.counter "serve.shed_low"
let c_shed_expired = Obs.counter "serve.shed_expired"

let priority_to_string = function
  | `High -> "high"
  | `Normal -> "normal"
  | `Low -> "low"

let priority_of_string = function
  | "high" -> Some `High
  | "normal" -> Some `Normal
  | "low" -> Some `Low
  | _ -> None

let known_priorities = [ "high"; "normal"; "low" ]

let decide ~queue_limit ~shed_low ~shed_normal ~depth
    ~(priority : priority) : verdict =
  if depth >= queue_limit then Shed Hard_limit
  else
    match priority with
    | `High -> Admit
    | `Normal -> if depth >= shed_normal then Shed Normal_priority else Admit
    | `Low -> if depth >= shed_low then Shed Low_priority else Admit

let expired_in_queue ~(deadline_ms : int option) ~(waited_ms : float) : bool =
  match deadline_ms with
  | Some d when d > 0 -> waited_ms > float_of_int d
  | _ -> false

(* One call per shed: the tier counter plus the legacy total. *)
let note (r : reason) : unit =
  Obs.incr c_overloaded;
  Obs.incr
    (match r with
    | Hard_limit -> c_shed_hard
    | Normal_priority -> c_shed_normal
    | Low_priority -> c_shed_low
    | Expired -> c_shed_expired)

let message ~queue_limit ~shed_low ~shed_normal ~waited_ms (r : reason) :
    string =
  match r with
  | Hard_limit ->
      (* byte-for-byte the legacy overload message: scripts and tests
         built against the binary policy keep matching *)
      Printf.sprintf
        "work queue is full (limit %d); retry later or raise %s" queue_limit
        Config.queue_env
  | Normal_priority ->
      Printf.sprintf
        "shedding normal-priority work (queue depth >= %d of limit %d); \
         retry later"
        shed_normal queue_limit
  | Low_priority ->
      Printf.sprintf
        "shedding low-priority work (queue depth >= %d of limit %d); retry \
         later or raise the request priority"
        shed_low queue_limit
  | Expired ->
      Printf.sprintf
        "deadline expired after %.0f ms in the queue; the request was \
         dropped unstarted"
        waited_ms

(* Shed totals for the stats payload. *)
let counts () =
  [
    ("hard", Obs.value c_shed_hard);
    ("normal", Obs.value c_shed_normal);
    ("low", Obs.value c_shed_low);
    ("expired", Obs.value c_shed_expired);
  ]
