(* A byte-budgeted LRU cache for whole-request results (the model-level
   layer above Tenet_isl.Count's per-set caches): repeated and
   near-duplicate queries — the DSE access pattern — become O(lookup).

   Keys are canonical request fingerprints (Api.Request.fingerprint);
   values carry a caller-computed byte size (the serialized response
   body) charged against the budget.  Recency is a monotonic stamp per
   entry; eviction scans for the minimum stamp.  The scan is O(entries)
   per eviction, which is fine at the cache's scale (hundreds of
   responses, bounded by the byte budget), and keeps the structure a
   plain hashtable under one mutex — the serve workers share it. *)

type 'v entry = { value : 'v; size : int; mutable stamp : int }

type 'v t = {
  budget : int; (* bytes; 0 disables the cache entirely *)
  tbl : (string, 'v entry) Hashtbl.t;
  mutable bytes : int;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutex : Mutex.t;
}

let create ~bytes () =
  if bytes < 0 then invalid_arg "Cache.create: negative byte budget";
  {
    budget = bytes;
    tbl = Hashtbl.create 256;
    bytes = 0;
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    mutex = Mutex.create ();
  }

let locked c f =
  Mutex.lock c.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.mutex) f

let find c key =
  locked c (fun () ->
      match Hashtbl.find_opt c.tbl key with
      | Some e ->
          c.tick <- c.tick + 1;
          e.stamp <- c.tick;
          c.hits <- c.hits + 1;
          Some e.value
      | None ->
          c.misses <- c.misses + 1;
          None)

let evict_lru c =
  let victim =
    Hashtbl.fold
      (fun key e acc ->
        match acc with
        | Some (_, stamp) when stamp <= e.stamp -> acc
        | _ -> Some (key, e.stamp))
      c.tbl None
  in
  match victim with
  | None -> ()
  | Some (key, _) ->
      (match Hashtbl.find_opt c.tbl key with
      | Some e -> c.bytes <- c.bytes - e.size
      | None -> ());
      Hashtbl.remove c.tbl key;
      c.evictions <- c.evictions + 1

let add c ~key ~size value =
  if size <= c.budget then
    locked c (fun () ->
        (match Hashtbl.find_opt c.tbl key with
        | Some old ->
            c.bytes <- c.bytes - old.size;
            Hashtbl.remove c.tbl key
        | None -> ());
        while c.bytes + size > c.budget && Hashtbl.length c.tbl > 0 do
          evict_lru c
        done;
        c.tick <- c.tick + 1;
        Hashtbl.add c.tbl key { value; size; stamp = c.tick };
        c.bytes <- c.bytes + size)

let fold c ~init ~f =
  locked c (fun () ->
      Hashtbl.fold (fun key e acc -> f acc ~key ~size:e.size e.value) c.tbl init)

let clear c =
  locked c (fun () ->
      Hashtbl.reset c.tbl;
      c.bytes <- 0)

type stats = {
  entries : int;
  bytes : int;
  budget : int;
  hits : int;
  misses : int;
  evictions : int;
}

let stats c =
  locked c (fun () ->
      {
        entries = Hashtbl.length c.tbl;
        bytes = c.bytes;
        budget = c.budget;
        hits = c.hits;
        misses = c.misses;
        evictions = c.evictions;
      })
