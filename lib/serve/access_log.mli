(** Opt-in JSON-lines access log for the serving tier: one line per
    completed request, written by the worker that finished it and
    flushed immediately.  Unconfigured, everything here is a cheap
    no-op.  See docs/serving.md for the line schema. *)

val configure : ?sample:int -> string -> unit
(** Open (append, create) the log at the given path.  With [sample = n]
    every n-th completed request is written (deterministic, counted in
    completion order across all domains); default 1 (every request).
    Replaces and closes any previously configured sink.  Raises
    [Invalid_argument] when [sample < 1]. *)

val disable : unit -> unit
(** Close the sink; subsequent {!record} calls are no-ops. *)

val enabled : unit -> bool
(** Whether a sink is configured — callers use this to skip computing
    expensive fields (the fingerprint digest) when nothing listens. *)

val stash_queue_wait_ms : float -> unit
(** Called by the server loop at execution start with the measured
    submit-to-start wait; held in domain-local state until the same
    domain finishes the request and {!record} pops it. *)

val record :
  id:string ->
  trace:string ->
  cmd:string ->
  fingerprint:string option ->
  status:string ->
  error_kind:string option ->
  cache:[ `Hit | `Miss | `Bypass ] ->
  deadline_expired:bool ->
  latency_ms:float ->
  unit ->
  unit
(** Emit one log line (subject to sampling).  Must be called for every
    completed request even when the log is disabled: it also clears the
    per-domain queue-wait stash so a stale value cannot attach to the
    next request executing on the domain.  Never raises on I/O errors;
    swallowed write failures are counted on the
    [serve.access_log_errors] counter so lost lines stay visible in
    stats and the Prometheus exposition. *)
