(* The one configuration surface for the serving tier (docs/serving.md).

   The serve entrypoints used to grow an optional argument per knob
   (?queue_limit, ?socket, ...); with the scale-out tier adding worker
   counts, cache directories and shed watermarks, that sprawl is folded
   into this record: [default] is the compiled-in configuration,
   [load ()] layers the TENET_SERVE_* environment on top, and the CLI
   layers its flags on top of that.  [Server.run]/[run_batch] consume
   the record; the legacy entrypoints survive as thin wrappers.

   Watermarks are stored as options ("not configured") and resolved
   against the queue limit on use: shedding of low-priority work starts
   at half the queue by default, while the normal-priority watermark
   defaults to the queue limit itself — i.e. out of the box only the
   hard limit sheds normal traffic, exactly the legacy behavior. *)

type t = {
  queue_limit : int;  (* bound on waiting requests before shedding *)
  socket : string option;  (* Unix socket path; None = stdin/stdout *)
  workers : int;  (* worker processes; 1 = in-process serving *)
  worker_jobs : int;  (* pool domains per worker process *)
  cache_dir : string option;  (* persistent result-cache directory *)
  shed_low : int option;  (* queue depth where low-priority work sheds *)
  shed_normal : int option;  (* queue depth where normal-priority sheds *)
  access_log : string option;  (* JSON-lines access log path *)
  access_log_sample : int;  (* keep every Nth access-log line *)
}

let queue_env = "TENET_SERVE_QUEUE"
let workers_env = "TENET_SERVE_WORKERS"
let worker_jobs_env = "TENET_SERVE_WORKER_JOBS"
let cache_dir_env = "TENET_SERVE_CACHE_DIR"
let shed_low_env = "TENET_SERVE_SHED_LOW"
let shed_normal_env = "TENET_SERVE_SHED_NORMAL"

let default =
  {
    queue_limit = 64;
    socket = None;
    workers = 1;
    worker_jobs = 0;  (* 0 = inherit TENET_JOBS / the pool default *)
    cache_dir = None;
    shed_low = None;
    shed_normal = None;
    access_log = None;
    access_log_sample = 1;
  }

let env_int ~min name base =
  match Sys.getenv_opt name with
  | None | Some "" -> base
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= min -> n
      | _ ->
          failwith
            (Printf.sprintf "bad %s %S: expected an integer >= %d" name s min))

let env_int_opt ~min name base =
  match Sys.getenv_opt name with
  | None | Some "" -> base
  | Some _ -> Some (env_int ~min name 0)

let load ?(base = default) () =
  {
    base with
    queue_limit = env_int ~min:1 queue_env base.queue_limit;
    workers = env_int ~min:1 workers_env base.workers;
    worker_jobs = env_int ~min:0 worker_jobs_env base.worker_jobs;
    cache_dir =
      (match Sys.getenv_opt cache_dir_env with
      | None | Some "" -> base.cache_dir
      | Some d -> Some d);
    shed_low = env_int_opt ~min:1 shed_low_env base.shed_low;
    shed_normal = env_int_opt ~min:1 shed_normal_env base.shed_normal;
  }

(* Resolved watermarks: clamped into [1, queue_limit] and ordered
   low <= normal, whatever the raw configuration says, so the admission
   tiers are always well-formed. *)
let shed_low_watermark (c : t) : int =
  let raw = match c.shed_low with Some n -> n | None -> c.queue_limit / 2 in
  max 1 (min raw c.queue_limit)

let shed_normal_watermark (c : t) : int =
  let raw = match c.shed_normal with Some n -> n | None -> c.queue_limit in
  max (shed_low_watermark c) (min raw c.queue_limit)

let validate (c : t) : unit =
  let bad fmt = Printf.ksprintf failwith fmt in
  if c.queue_limit < 1 then
    bad "serve config: queue_limit %d must be >= 1" c.queue_limit;
  if c.workers < 1 then bad "serve config: workers %d must be >= 1" c.workers;
  if c.worker_jobs < 0 then
    bad "serve config: worker_jobs %d must be >= 0" c.worker_jobs;
  if c.access_log_sample < 1 then
    bad "serve config: access-log sample %d must be >= 1" c.access_log_sample;
  (match c.shed_low with
  | Some n when n < 1 -> bad "serve config: shed_low %d must be >= 1" n
  | _ -> ());
  match c.shed_normal with
  | Some n when n < 1 -> bad "serve config: shed_normal %d must be >= 1" n
  | _ -> ()
