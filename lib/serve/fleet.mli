(** The pre-fork worker fleet behind [tenet serve --workers N] and
    [tenet batch --workers N] (docs/serving.md, "Scaling out").

    [create] forks N worker processes over socketpairs, each running a
    sequential JSON-lines request loop; the parent is a single-threaded
    [select] pump that parses, admits ({!Admission}) and dispatches, and
    reassembles responses.  Forking must precede any domain spawn — the
    OCaml 5 runtime cannot fork once other domains exist — so fleets are
    created before the first parallel map; [create] fails with a clear
    message otherwise.

    Workers inherit the parent's warm in-memory cache (the parent loads
    the persistent tier before forking) and persist their own cache
    slice on shutdown, merged through {!Disk_cache.merge_save}'s lock.
    The shutdown signal is fd closure, so cached work survives even a
    SIGKILL of the front end. *)

type t

val create : Config.t -> t
(** Fork [Config.workers] workers.  Must run before any domain is
    spawned; raises [Failure] with an explanatory message if the
    parallel pool already started. *)

val session : t -> in_channel -> out_channel -> unit
(** Serve one client connection through the fleet: graduated admission
    at arrival, deadline-expired shedding at dispatch under pressure,
    least-loaded dispatch with a bounded per-worker pipeline,
    completion-order responses.  [stats] requests are answered inline
    by the parent.  Returns when the client closes its input and every
    dispatched request has been answered.  A worker death surfaces as
    [Internal] error responses for its in-flight requests (counted on
    [serve.worker_failures]); the fleet keeps serving on the rest. *)

val shutdown : t -> unit
(** Half-close every worker's socketpair, wait for the workers to
    persist their cache slice and exit, and reap them. *)

val serve : Config.t -> in_channel -> out_channel -> unit
(** [create] + one {!session} + [shutdown]. *)

val batch : Config.t -> in_channel -> out_channel -> unit
(** Fan a batch out round-robin and reassemble in input order: output
    is byte-identical to the single-process batch of the same lines.
    No admission control — batch is offline.  Raises [Failure] if a
    worker dies mid-batch. *)
