(** The configuration record for the serving tier — the single entry
    surface consumed by [Server.run]/[Server.run_batch].  See
    docs/serving.md ("Scaling out") for how each knob behaves. *)

type t = {
  queue_limit : int;
      (** bound on waiting requests; beyond it every request sheds *)
  socket : string option;  (** Unix socket path; [None] = stdin/stdout *)
  workers : int;
      (** worker processes behind the pre-fork front end; [1] serves
          in-process exactly like older builds *)
  worker_jobs : int;
      (** pool domains per worker process; [0] inherits [TENET_JOBS] *)
  cache_dir : string option;
      (** directory of the persistent result cache ({!Disk_cache});
          loaded at startup, written atomically at shutdown *)
  shed_low : int option;
      (** queue depth where low-priority and deadline-carrying work is
          shed; [None] = half the queue limit *)
  shed_normal : int option;
      (** queue depth where normal-priority work is shed; [None] = the
          queue limit itself (only the hard limit sheds, the legacy
          behavior) *)
  access_log : string option;  (** JSON-lines access log path *)
  access_log_sample : int;  (** keep every Nth access-log line *)
}

val default : t
(** The compiled-in configuration: queue 64, one in-process worker, no
    socket, no persistent cache, no access log. *)

val load : ?base:t -> unit -> t
(** [base] (default {!default}) with the [TENET_SERVE_*] environment
    layered on top: [TENET_SERVE_QUEUE], [TENET_SERVE_WORKERS],
    [TENET_SERVE_WORKER_JOBS], [TENET_SERVE_CACHE_DIR],
    [TENET_SERVE_SHED_LOW], [TENET_SERVE_SHED_NORMAL].  Raises
    [Failure] on a malformed value. *)

val shed_low_watermark : t -> int
(** The resolved low-priority watermark: the configured value (or half
    the queue limit), clamped into [[1, queue_limit]]. *)

val shed_normal_watermark : t -> int
(** The resolved normal-priority watermark: the configured value (or
    the queue limit), clamped into [[shed_low_watermark, queue_limit]]. *)

val validate : t -> unit
(** Raises [Failure] naming the offending field on an unusable
    configuration (non-positive queue/workers/sample, bad watermark). *)

val queue_env : string
val workers_env : string
val worker_jobs_env : string
val cache_dir_env : string
val shed_low_env : string
val shed_normal_env : string
