(* The persistent tier of the result cache (docs/serving.md).

   Layout: one JSON-lines file per directory, [results-v1.jsonl].  The
   first line is a version header; every following line is one entry

     {"key":"<canonical request fingerprint>","body":"<body JSON>"}

   where [body] is the serialized response-body object (the exact bytes
   [Api] appends after the per-request envelope), carried as a JSON
   string.  Storing serialized bytes rather than re-encoded structures
   is what makes warm-restart responses byte-identical: nothing is ever
   parsed and re-printed on the replay path.

   Writes are atomic: the whole file is rendered to a process-unique
   temp name in the same directory and renamed over the target, so a
   writer killed mid-write leaves either the previous file or the new
   one, never a torn hybrid (the crash-safety tests kill writers at
   random points and assert exactly this).  Concurrent writers — the
   fleet's worker processes persisting at shutdown — serialize through
   a lock file and merge with the on-disk state before renaming, so the
   last rename still contains every worker's entries.

   Loads are tolerant: a missing file, a foreign version header or a
   torn/garbage line loads as "everything up to the damage" rather than
   an error — a cache is an accelerator, never a correctness input. *)

module Json = Tenet_obs.Json

let version = 1

type entry = { key : string; body : string }

let file ~dir = Filename.concat dir (Printf.sprintf "results-v%d.jsonl" version)
let lock_file ~dir = Filename.concat dir "cache.lock"

let header_line () =
  Json.to_string (Json.Obj [ ("tenet_disk_cache", Json.Int version) ])

let entry_line (e : entry) =
  Json.to_string
    (Json.Obj [ ("key", Json.String e.key); ("body", Json.String e.body) ])

let parse_entry (j : Json.t) : entry option =
  match (Json.member "key" j, Json.member "body" j) with
  | Some (Json.String key), Some (Json.String body) -> Some { key; body }
  | _ -> None

let ensure_dir (dir : string) : unit =
  (* mkdir -p, innermost last; EEXIST from a concurrent creator is fine *)
  let rec mk d =
    if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      mk (Filename.dirname d);
      try Unix.mkdir d 0o755
      with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  mk dir

let load ~dir : entry list =
  let path = file ~dir in
  match open_in path with
  | exception Sys_error _ -> []
  | ic ->
      Fun.protect
        ~finally:(fun () -> try close_in ic with Sys_error _ -> ())
        (fun () ->
          let header_ok =
            match input_line ic with
            | exception End_of_file -> false
            | line -> (
                match Json.parse line with
                | exception Json.Parse_error _ -> false
                | j -> (
                    match Json.member "tenet_disk_cache" j with
                    | Some (Json.Int v) -> v = version
                    | _ -> false))
          in
          if not header_ok then []
          else
            let rec go acc =
              match input_line ic with
              | exception End_of_file -> List.rev acc
              | line -> (
                  match Json.parse line with
                  | exception Json.Parse_error _ ->
                      (* torn tail from a non-atomic writer: keep what
                         parsed, drop the rest *)
                      List.rev acc
                  | j -> (
                      match parse_entry j with
                      | Some e -> go (e :: acc)
                      | None -> List.rev acc))
            in
            go [])

let save ~dir (entries : entry list) : unit =
  ensure_dir dir;
  let path = file ~dir in
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = open_out tmp in
  (try
     output_string oc (header_line ());
     output_char oc '\n';
     List.iter
       (fun e ->
         output_string oc (entry_line e);
         output_char oc '\n')
       (List.sort (fun a b -> compare a.key b.key) entries);
     close_out oc
   with e ->
     (try close_out_noerr oc with _ -> ());
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let with_lock ~dir f =
  ensure_dir dir;
  let fd =
    Unix.openfile (lock_file ~dir) [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.lockf fd Unix.F_ULOCK 0 with Unix.Unix_error _ -> ());
      try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.lockf fd Unix.F_LOCK 0;
      f ())

let merge_save ~dir (entries : entry list) : int =
  with_lock ~dir (fun () ->
      (* union, newcomers winning: a fresh result for the same key
         supersedes whatever an earlier writer persisted *)
      let tbl = Hashtbl.create 256 in
      List.iter (fun e -> Hashtbl.replace tbl e.key e.body) (load ~dir);
      List.iter (fun e -> Hashtbl.replace tbl e.key e.body) entries;
      let merged = Hashtbl.fold (fun key body acc -> { key; body } :: acc) tbl [] in
      save ~dir merged;
      List.length merged)
