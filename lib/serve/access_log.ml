(* Opt-in JSON-lines access log for the serving tier (docs/serving.md):
   one line per completed request — id, trace id, command, fingerprint
   digest, status, cache outcome, latency, queue wait, deadline expiry.

   The sink is process-global (one server, one log) and append-only, so
   restarting the server extends the previous log.  Writes happen on the
   worker domain that finished the request, serialized by a mutex and
   flushed per line; a failing write (full disk, revoked file) is
   swallowed — logging must never take down the service it observes.

   Sampling is deterministic: with [sample = n], every n-th completed
   request (in completion order, counted by one atomic sequence across
   all domains) is written.  [record] is called for every request even
   when sampled out or unconfigured, because it also owns the
   queue-wait handoff below.

   Queue wait is measured by the server loop (submit time to execution
   start) before the API layer ever sees the request, so it is handed
   over in domain-local state: the loop stashes it in the task, and
   [record] — running later on the same domain — pops it.  The pop is
   unconditional so a stashed value can never leak into the next
   request that runs on the domain (e.g. a batch request following a
   served one). *)

module Obs = Tenet_obs
module Json = Tenet_obs.Json

(* Swallowed writes stay visible: the counter shows up in stats and the
   Prometheus exposition, so a log silently losing lines (full disk,
   revoked file) is still diagnosable. *)
let c_write_errors = Obs.counter "serve.access_log_errors"

type sink = {
  oc : out_channel;
  mutex : Mutex.t;
  sample : int;
  seq : int Atomic.t;
}

let sink : sink option ref = ref None

let disable () =
  match !sink with
  | None -> ()
  | Some s ->
      sink := None;
      (try close_out s.oc with Sys_error _ -> ())

let configure ?(sample = 1) (path : string) : unit =
  if sample < 1 then
    invalid_arg "Access_log.configure: sample must be >= 1";
  disable ();
  let oc = open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path in
  sink := Some { oc; mutex = Mutex.create (); sample; seq = Atomic.make 0 }

let enabled () = !sink <> None

(* --- queue-wait handoff (server loop -> record), per-domain --- *)

let qw_key = Domain.DLS.new_key (fun () -> Float.nan)
let stash_queue_wait_ms (v : float) : unit = Domain.DLS.set qw_key v

let pop_queue_wait_ms () : float =
  let v = Domain.DLS.get qw_key in
  Domain.DLS.set qw_key Float.nan;
  v

(* --- the one emission point --- *)

let cache_outcome_string = function
  | `Hit -> "hit"
  | `Miss -> "miss"
  | `Bypass -> "bypass"

let record ~(id : string) ~(trace : string) ~(cmd : string)
    ~(fingerprint : string option) ~(status : string)
    ~(error_kind : string option)
    ~(cache : [ `Hit | `Miss | `Bypass ]) ~(deadline_expired : bool)
    ~(latency_ms : float) () : unit =
  let queue_wait_ms = pop_queue_wait_ms () in
  match !sink with
  | None -> ()
  | Some s ->
      if Atomic.fetch_and_add s.seq 1 mod s.sample = 0 then begin
        let opt_str k = function
          | None -> []
          | Some v -> [ (k, Json.String v) ]
        in
        let fields =
          [
            ("ts", Json.Float (Obs.now ()));
            ("id", Json.String id);
            ("trace", Json.String trace);
            ("cmd", Json.String cmd);
          ]
          @ opt_str "fingerprint" fingerprint
          @ [ ("status", Json.String status) ]
          @ opt_str "error_kind" error_kind
          @ [
              ("cache", Json.String (cache_outcome_string cache));
              ("latency_ms", Json.Float latency_ms);
            ]
          @ (if Float.is_nan queue_wait_ms then []
             else [ ("queue_wait_ms", Json.Float queue_wait_ms) ])
          @
          if deadline_expired then [ ("deadline_expired", Json.Bool true) ]
          else []
        in
        let line = Json.to_string (Json.Obj fields) in
        Mutex.lock s.mutex;
        (try
           output_string s.oc line;
           output_char s.oc '\n';
           flush s.oc
         with Sys_error _ -> Obs.incr c_write_errors);
        Mutex.unlock s.mutex
      end
