(** Graduated admission control: queue-depth watermarks shed
    low-priority and deadline-expired work before the hard queue limit
    sheds everything.  Each shed increments a per-tier [serve.shed_*]
    counter plus the legacy [serve.overloaded] total; the response kind
    stays [Overloaded].  See docs/serving.md ("Admission control"). *)

type priority = [ `High | `Normal | `Low ]
type reason = Hard_limit | Normal_priority | Low_priority | Expired
type verdict = Admit | Shed of reason

val priority_to_string : priority -> string
val priority_of_string : string -> priority option
val known_priorities : string list

val decide :
  queue_limit:int ->
  shed_low:int ->
  shed_normal:int ->
  depth:int ->
  priority:priority ->
  verdict
(** The watermark policy at submission time: at or past [queue_limit]
    everything sheds; past [shed_normal] normal priority sheds; past
    [shed_low] low priority sheds.  High priority only hits the hard
    limit.  Watermarks come resolved from {!Config.shed_low_watermark}
    / {!Config.shed_normal_watermark}. *)

val expired_in_queue : deadline_ms:int option -> waited_ms:float -> bool
(** Whether a request's whole deadline elapsed while it waited in the
    queue.  Callers apply this only to requests admitted under pressure
    (depth at or past the low watermark at submission). *)

val note : reason -> unit
(** Count one shed: the per-tier counter plus [serve.overloaded]. *)

val message :
  queue_limit:int ->
  shed_low:int ->
  shed_normal:int ->
  waited_ms:float ->
  reason ->
  string
(** The human-readable response message.  [Hard_limit] keeps the legacy
    "work queue is full" wording byte-for-byte. *)

val counts : unit -> (string * int) list
(** Lifetime shed totals per tier, for the stats payload:
    [("hard", _); ("normal", _); ("low", _); ("expired", _)]. *)
