(** The persistent tier of the result cache: a versioned JSON-lines
    file written atomically (render to temp, rename), loaded tolerantly
    (missing file, foreign version or a torn tail load as fewer
    entries, never an error), merged across concurrent writers through
    a lock file.  Entries carry the serialized response-body bytes, so
    replays are byte-identical.  See docs/serving.md ("The disk
    cache"). *)

val version : int
(** The on-disk format version (the file is [results-v<N>.jsonl]); a
    header carrying any other version loads as empty. *)

type entry = { key : string; body : string }
(** [key] is the canonical request fingerprint; [body] the serialized
    response-body object — exactly the bytes the server writes after
    the [{"api_version":..,"id":..] envelope. *)

val file : dir:string -> string
(** The cache file path inside [dir]. *)

val load : dir:string -> entry list
(** Every well-formed entry, in file order.  Never raises on missing,
    foreign or damaged files. *)

val save : dir:string -> entry list -> unit
(** Atomically replace the cache file (entries sorted by key; the
    directory is created if needed).  Raises on I/O failure — callers
    on shutdown paths catch and drop. *)

val merge_save : dir:string -> entry list -> int
(** Union the entries with the current on-disk state (new entries win
    per key) and {!save} the result, serialized against other
    [merge_save] callers through a lock file.  Returns the number of
    entries written. *)
