(** The persistent analysis service ([tenet serve]) and the offline
    batch runner ([tenet batch]).  See docs/serving.md for the
    protocol, the admission watermarks and the deadline/overload
    semantics.

    Both entry points take one {!Config.t} record; {!Config.load}
    layers the TENET_SERVE_* environment over the defaults and the CLI
    layers its flags on top.  The pre-config entry points at the bottom
    survive as thin wrappers. *)

module Config = Config

val run : Config.t -> unit
(** Run the service described by the config: over stdin/stdout, or
    listening on [socket]; in-process on the domain pool
    ([workers = 1]), or across a pre-forked {!Fleet} ([workers > 1] —
    forking happens before any domain spawn, so call this before any
    parallel work runs in this process).  Requests pass graduated
    admission ({!Admission}): low-priority sheds first at the low
    watermark, normal at the normal watermark, everything but [stats]
    at the hard queue limit, and deadline-expired-in-queue work sheds
    at dispatch under pressure.  [stats] is answered inline.  With
    [cache_dir] set, the persistent result cache is loaded first
    (pre-fork: workers inherit it warm) and merged back to disk when a
    session ends.  Raises [Failure] on an invalid config
    ({!Config.validate}). *)

val run_batch : Config.t -> in_channel -> out_channel -> unit
(** Evaluate every JSON-lines request (blank and ['#'] lines skipped)
    and print responses in input order.  Deterministic: the output is
    byte-identical at any job count, at any worker count (the fleet's
    round-robin fan-out reassembles to input order), and to the same
    requests run one-shot.  No admission control — batch is offline.
    With [cache_dir] set, loads the persistent cache first and merges
    it back after (each fleet worker merges its own slice). *)

(** {2 Legacy entry points}

    Thin wrappers over {!run} / {!run_batch} from before the config
    record.  They pin [workers = 1] — they predate the fleet and may be
    called after domains were spawned, when forking is impossible — and
    never touch the persistent tier. *)

val default_queue_limit : unit -> int
(** The bound on waiting requests: [TENET_SERVE_QUEUE], default 64.
    Raises [Failure] on a malformed value.  (Now just
    [(Config.load ()).queue_limit].) *)

val batch : in_channel -> out_channel -> unit
(** [run_batch Config.default]: in-process, no persistence. *)

val serve_channels : ?queue_limit:int -> in_channel -> out_channel -> unit
(** One in-process serving session on explicit channels; queue limit
    from the argument, else the environment.  SIGPIPE is ignored on
    entry, so a client disconnecting mid-response surfaces as a
    catchable I/O error rather than terminating the process. *)

val serve_socket : ?queue_limit:int -> path:string -> unit -> unit
(** Listen on a Unix socket, serving one in-process JSON-lines
    connection at a time.  Removes [path] on exit. *)

val serve : ?queue_limit:int -> ?socket:string -> unit -> unit
(** [serve ()] runs over stdin/stdout; with [~socket] it listens there
    instead. *)
