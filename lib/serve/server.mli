(** The persistent analysis service ([tenet serve]) and the offline
    batch runner ([tenet batch]).  See docs/serving.md for the protocol
    and the deadline/overload semantics. *)

val default_queue_limit : unit -> int
(** The bound on waiting requests: [TENET_SERVE_QUEUE], default 64.
    Raises [Failure] on a malformed value. *)

val batch : in_channel -> out_channel -> unit
(** Evaluate every JSON-lines request (blank and ['#'] lines skipped)
    with the order-preserving parallel map and print responses in input
    order.  Deterministic: the output is byte-identical at any job count
    and to the same requests run one-shot. *)

val serve_channels : ?queue_limit:int -> in_channel -> out_channel -> unit
(** The service loop on explicit channels: schedule each request onto
    the worker pool ([overloaded] response when the bounded queue is
    full), answer [stats] inline, write responses in completion order
    (correlate by [id]), and drain in-flight work at EOF.  SIGPIPE is
    ignored on entry (as in {!batch}), so a client disconnecting
    mid-response surfaces as a catchable I/O error rather than
    terminating the process. *)

val serve_socket : ?queue_limit:int -> path:string -> unit -> unit
(** Listen on a Unix socket, serving one JSON-lines connection at a
    time.  Removes [path] on exit. *)

val serve : ?queue_limit:int -> ?socket:string -> unit -> unit
(** [serve ()] runs over stdin/stdout; with [~socket] it listens there
    instead. *)
