(* The persistent analysis service and the offline batch runner.

   Both entry points are driven by one {!Config.t} record ({!run} for
   the service, {!run_batch} for the batch runner); the config layers
   TENET_SERVE_* environment overrides over compiled defaults and the
   CLI layers its flags on top, so every knob has exactly one spelling
   per layer (docs/serving.md).

   `tenet serve` reads JSON-lines requests from stdin (or a Unix
   socket).  With [workers = 1] it schedules them onto the
   Tenet_util.Parallel pool through its bounded submission queue; with
   [workers > 1] it pre-forks a {!Fleet} of worker processes and
   dispatches over socketpairs instead.  Either way:

   - Graduated admission ({!Admission}): under queue pressure,
     low-priority work sheds at the low watermark, normal work at the
     normal watermark, and everything but stats at the hard queue
     limit; deadline-expired requests admitted under pressure shed at
     dispatch.  Every shed is a real [overloaded] response — requests
     already in flight keep running.
   - Admin traffic: `stats` requests are answered inline by the reader,
     bypassing the queue, so the service can be observed even while
     saturated.
   - Responses are written in completion order, one JSON line each;
     clients correlate them by `id`.
   - With [cache_dir] set, the persistent result cache is loaded before
     serving (pre-fork, so fleet workers inherit it warm) and merged
     back on session end.

   `batch` is the deterministic offline variant: it reads every request
   line, evaluates them with the order-preserving Parallel.map — or the
   round-robin fleet fan-out, which reassembles to the identical order —
   and prints responses in input order, so a batch at any --jobs or
   --workers count produces the byte-identical output of the same
   requests run one-shot. *)

module Obs = Tenet_obs
module Parallel = Tenet_util.Parallel
module Config = Config

(* Same cell as the one [Api.stats_payload] reports quantiles for. *)
let h_queue_wait = Obs.histogram "serve.queue_wait"

(* OCaml's default SIGPIPE disposition terminates the whole process, so
   without this a client that disconnects while a response is being
   written would kill the persistent server.  Ignoring the signal makes
   broken-pipe writes surface as catchable [Sys_error] / [Unix_error]
   instead (the handlers around the serve loops rely on this).  Windows
   has no SIGPIPE; [set_signal] raising there is harmless. *)
let ignore_sigpipe () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ | Sys_error _ -> ()

let default_queue_limit () = (Config.load ()).Config.queue_limit

(* Load the persistent tier, if configured.  Damaged or missing caches
   load as empty; only a malformed directory path is a real error. *)
let load_persistent (cfg : Config.t) : unit =
  match cfg.Config.cache_dir with
  | Some dir -> ignore (Api.load_disk_cache ~dir)
  | None -> ()

(* Merge the in-memory result cache back to disk.  Persistence must
   never take the service down, so I/O failures are swallowed here (the
   entries survive in memory; the next save retries). *)
let save_persistent (cfg : Config.t) : unit =
  match cfg.Config.cache_dir with
  | Some dir -> (
      try ignore (Api.save_disk_cache ~dir)
      with Sys_error _ | Unix.Unix_error _ | Failure _ -> ())
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Batch.                                                              *)
(* ------------------------------------------------------------------ *)

let read_lines (ic : in_channel) : string list =
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  go []

let batch_single (ic : in_channel) (oc : out_channel) : unit =
  let lines =
    List.filter (fun l -> not (Protocol.is_comment l)) (read_lines ic)
  in
  let responses = Parallel.map Protocol.handle_line lines in
  List.iter
    (fun resp ->
      output_string oc (Protocol.response_line resp);
      output_char oc '\n')
    responses;
  flush oc

let run_batch (cfg : Config.t) (ic : in_channel) (oc : out_channel) : unit =
  Config.validate cfg;
  ignore_sigpipe ();
  (* Telemetry is always on for the runners: responses never embed it
     (stats is pull-only), recording is bounded (span ring buffer), and
     a batch/serve process without it cannot be observed at all. *)
  if not (Obs.enabled ()) then Obs.enable ();
  load_persistent cfg;
  if cfg.Config.workers > 1 then
    (* forks: must come before any domain spawn, hence before any
       single-process Parallel.map in this process *)
    Fleet.batch cfg ic oc
  else begin
    batch_single ic oc;
    save_persistent cfg
  end

let batch (ic : in_channel) (oc : out_channel) : unit =
  (* legacy entry point: fixed defaults, in-process, no persistence *)
  run_batch Config.default ic oc

(* ------------------------------------------------------------------ *)
(* Serve.                                                              *)
(* ------------------------------------------------------------------ *)

(* The in-process session (workers = 1): requests go straight onto the
   domain pool's bounded queue; admission reads the pool's waiting
   count as its depth. *)
let serve_session (cfg : Config.t) (ic : in_channel) (oc : out_channel) :
    unit =
  let queue_limit = cfg.Config.queue_limit in
  let shed_low = Config.shed_low_watermark cfg in
  let shed_normal = Config.shed_normal_watermark cfg in
  Parallel.set_queue_limit queue_limit;
  let write_mutex = Mutex.create () in
  let respond resp =
    (* [Fun.protect]: a failed write (disconnected client) must release
       the mutex, or every other in-flight responder would deadlock. *)
    Mutex.lock write_mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock write_mutex)
      (fun () ->
        output_string oc (Protocol.response_line resp);
        output_char oc '\n';
        flush oc)
  in
  (* Inflight accounting: EOF drains before returning so a piped client
     always sees every response. *)
  let inflight = ref 0 in
  let inflight_mutex = Mutex.create () in
  let inflight_cv = Condition.create () in
  let incr_inflight () =
    Mutex.lock inflight_mutex;
    incr inflight;
    Mutex.unlock inflight_mutex
  in
  let decr_inflight () =
    Mutex.lock inflight_mutex;
    decr inflight;
    Condition.broadcast inflight_cv;
    Mutex.unlock inflight_mutex
  in
  let drain () =
    Mutex.lock inflight_mutex;
    while !inflight > 0 do
      Condition.wait inflight_cv inflight_mutex
    done;
    Mutex.unlock inflight_mutex
  in
  Api.set_extra_gauges (fun () -> [ ("inflight", !inflight) ]);
  let shed reason ~id ~waited_ms =
    Admission.note reason;
    respond
      (Api.Response.error ~id Api.Response.Overloaded
         (Admission.message ~queue_limit ~shed_low ~shed_normal ~waited_ms
            reason))
  in
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> drain ()
    | line when Protocol.is_comment line -> loop ()
    | line ->
        (match Protocol.parse_request line with
        | Error resp -> respond resp
        | Ok req when req.Api.Request.cmd = Api.Request.Stats ->
            (* answered inline: observable even while saturated *)
            respond (Api.run req)
        | Ok req -> (
            let depth = Parallel.waiting () in
            match
              Admission.decide ~queue_limit ~shed_low ~shed_normal ~depth
                ~priority:req.Api.Request.priority
            with
            | Admission.Shed reason ->
                shed reason ~id:req.Api.Request.id ~waited_ms:0.
            | Admission.Admit ->
                incr_inflight ();
                let submitted = Obs.now () in
                (* pressure is judged at admission: a request that got
                   in under a calm queue keeps its deadline semantics
                   (TN013 partial response), one admitted under
                   pressure may shed at dispatch instead *)
                let pressure = depth >= shed_low in
                let task () =
                  (* Queue wait: submission to start of execution.
                     Stashed for the access log before the request runs
                     on this domain. *)
                  let wait_s = Obs.now () -. submitted in
                  Obs.observe_h h_queue_wait wait_s;
                  Access_log.stash_queue_wait_ms (1e3 *. wait_s);
                  Fun.protect ~finally:decr_inflight (fun () ->
                      let waited_ms = 1e3 *. wait_s in
                      if
                        pressure
                        && Admission.expired_in_queue
                             ~deadline_ms:req.Api.Request.deadline_ms
                             ~waited_ms
                      then
                        shed Admission.Expired ~id:req.Api.Request.id
                          ~waited_ms
                      else respond (Api.run req))
                in
                if not (Parallel.try_submit task) then begin
                  (* raced with other submitters between the depth read
                     and the submit: the hard limit still holds *)
                  decr_inflight ();
                  shed Admission.Hard_limit ~id:req.Api.Request.id
                    ~waited_ms:0.
                end));
        loop ()
  in
  loop ()

let run (cfg : Config.t) : unit =
  Config.validate cfg;
  ignore_sigpipe ();
  if not (Obs.enabled ()) then Obs.enable ();
  (match cfg.Config.access_log with
  | Some path when cfg.Config.workers = 1 ->
      (* fleet workers configure their own per-process sinks *)
      Access_log.configure ~sample:cfg.Config.access_log_sample path
  | Some _ | None -> ());
  load_persistent cfg;
  match cfg.Config.socket with
  | None ->
      if cfg.Config.workers > 1 then Fleet.serve cfg stdin stdout
      else begin
        serve_session cfg stdin stdout;
        save_persistent cfg
      end
  | Some path ->
      (* The fleet outlives connections: fork once, before the first
         accept, and reuse the workers across sessions. *)
      let fleet =
        if cfg.Config.workers > 1 then Some (Fleet.create cfg) else None
      in
      let session ic oc =
        match fleet with
        | Some t -> Fleet.session t ic oc
        | None ->
            serve_session cfg ic oc;
            save_persistent cfg
      in
      let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ());
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 8;
      Fun.protect
        ~finally:(fun () ->
          (try Unix.close sock with Unix.Unix_error _ -> ());
          (try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ());
          match fleet with Some t -> Fleet.shutdown t | None -> ())
        (fun () ->
          (* one connection at a time: each client gets the full
             JSON-lines session; the next accept begins when it
             disconnects *)
          let rec accept_loop () =
            let fd, _ = Unix.accept sock in
            let ic = Unix.in_channel_of_descr fd in
            let oc = Unix.out_channel_of_descr fd in
            (try session ic oc with End_of_file | Sys_error _ -> ());
            (try Unix.close fd with Unix.Unix_error _ -> ());
            accept_loop ()
          in
          accept_loop ())

(* ------------------------------------------------------------------ *)
(* Legacy entry points: thin wrappers over the config record.  They    *)
(* pin [workers = 1] (they predate the fleet and may be called after   *)
(* domains were spawned, when forking is impossible) and leave the     *)
(* persistent tier off unless TENET_SERVE_CACHE_DIR asks for it.       *)
(* ------------------------------------------------------------------ *)

let wrapper_config ?queue_limit () : Config.t =
  let base = Config.load () in
  let base =
    match queue_limit with
    | Some q -> { base with Config.queue_limit = q }
    | None -> base
  in
  { base with Config.workers = 1; socket = None; cache_dir = None }

let serve_channels ?queue_limit (ic : in_channel) (oc : out_channel) : unit =
  let cfg = wrapper_config ?queue_limit () in
  ignore_sigpipe ();
  if not (Obs.enabled ()) then Obs.enable ();
  serve_session cfg ic oc

let serve_socket ?queue_limit ~path () : unit =
  let cfg = wrapper_config ?queue_limit () in
  run { cfg with Config.socket = Some path }

let serve ?queue_limit ?socket () : unit =
  let cfg = wrapper_config ?queue_limit () in
  run { cfg with Config.socket = socket }
