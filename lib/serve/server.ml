(* The persistent analysis service and the offline batch runner.

   `tenet serve` reads JSON-lines requests from stdin (or a Unix socket)
   and schedules them onto the Tenet_util.Parallel worker pool through
   its bounded submission queue:

   - Backpressure: when the queue is full, the request is answered
     immediately with an `overloaded` error response instead of
     buffering without bound; requests already in flight keep running.
   - Admin traffic: `stats` requests are answered inline by the reader
     thread, bypassing the queue, so the service can be observed even
     while saturated.
   - Responses are written in completion order, one JSON line each,
     under a write mutex; clients correlate them by `id`.

   `batch` is the deterministic offline variant: it reads every request
   line, evaluates them with the order-preserving Parallel.map (so a
   batch at any --jobs count produces the byte-identical output of the
   same requests run one-shot), and prints responses in input order. *)

module Obs = Tenet_obs
module Parallel = Tenet_util.Parallel

let c_overloaded = Obs.counter "serve.overloaded"

(* Same cell as the one [Api.stats_payload] reports quantiles for. *)
let h_queue_wait = Obs.histogram "serve.queue_wait"

let queue_env = "TENET_SERVE_QUEUE"

(* OCaml's default SIGPIPE disposition terminates the whole process, so
   without this a client that disconnects while a response is being
   written would kill the persistent server.  Ignoring the signal makes
   broken-pipe writes surface as catchable [Sys_error] / [Unix_error]
   instead (the handlers around the serve loops rely on this).  Windows
   has no SIGPIPE; [set_signal] raising there is harmless. *)
let ignore_sigpipe () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ | Sys_error _ -> ()

let default_queue_limit () =
  match Sys.getenv_opt queue_env with
  | None | Some "" -> 64
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ ->
          failwith
            (Printf.sprintf
               "bad %s %S: expected a positive integer queue limit" queue_env
               s))

(* ------------------------------------------------------------------ *)
(* Batch.                                                              *)
(* ------------------------------------------------------------------ *)

let read_lines (ic : in_channel) : string list =
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  go []

let batch (ic : in_channel) (oc : out_channel) : unit =
  ignore_sigpipe ();
  (* Telemetry is always on for the runners: responses never embed it
     (stats is pull-only), recording is bounded (span ring buffer), and
     a batch/serve process without it cannot be observed at all. *)
  if not (Obs.enabled ()) then Obs.enable ();
  let lines =
    List.filter (fun l -> not (Protocol.is_comment l)) (read_lines ic)
  in
  let responses = Parallel.map Protocol.handle_line lines in
  List.iter
    (fun resp ->
      output_string oc (Protocol.response_line resp);
      output_char oc '\n')
    responses;
  flush oc

(* ------------------------------------------------------------------ *)
(* Serve.                                                              *)
(* ------------------------------------------------------------------ *)

let serve_channels ?(queue_limit = default_queue_limit ()) (ic : in_channel)
    (oc : out_channel) : unit =
  ignore_sigpipe ();
  if not (Obs.enabled ()) then Obs.enable ();
  Parallel.set_queue_limit queue_limit;
  let write_mutex = Mutex.create () in
  let respond resp =
    (* [Fun.protect]: a failed write (disconnected client) must release
       the mutex, or every other in-flight responder would deadlock. *)
    Mutex.lock write_mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock write_mutex)
      (fun () ->
        output_string oc (Protocol.response_line resp);
        output_char oc '\n';
        flush oc)
  in
  (* Inflight accounting: EOF drains before returning so a piped client
     always sees every response. *)
  let inflight = ref 0 in
  let inflight_mutex = Mutex.create () in
  let inflight_cv = Condition.create () in
  let incr_inflight () =
    Mutex.lock inflight_mutex;
    incr inflight;
    Mutex.unlock inflight_mutex
  in
  let decr_inflight () =
    Mutex.lock inflight_mutex;
    decr inflight;
    Condition.broadcast inflight_cv;
    Mutex.unlock inflight_mutex
  in
  let drain () =
    Mutex.lock inflight_mutex;
    while !inflight > 0 do
      Condition.wait inflight_cv inflight_mutex
    done;
    Mutex.unlock inflight_mutex
  in
  Api.set_extra_gauges (fun () -> [ ("inflight", !inflight) ]);
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> drain ()
    | line when Protocol.is_comment line -> loop ()
    | line ->
        (match Protocol.parse_line line with
        | Error resp -> respond resp
        | Ok j when Protocol.is_stats j ->
            (* answered inline: observable even while saturated *)
            respond (Api.run_json j)
        | Ok j ->
            incr_inflight ();
            let submitted = Obs.now () in
            let task () =
              (* Queue wait: submission to start of execution.  Stashed
                 for the access log before the request runs on this
                 domain. *)
              let wait_s = Obs.now () -. submitted in
              Obs.observe_h h_queue_wait wait_s;
              Access_log.stash_queue_wait_ms (1e3 *. wait_s);
              Fun.protect ~finally:decr_inflight (fun () ->
                  respond (Api.run_json j))
            in
            if not (Parallel.try_submit task) then begin
              decr_inflight ();
              Obs.incr c_overloaded;
              respond
                (Api.Response.error ~id:(Protocol.request_id j)
                   Api.Response.Overloaded
                   (Printf.sprintf
                      "work queue is full (limit %d); retry later or raise \
                       %s"
                      queue_limit queue_env))
            end);
        loop ()
  in
  loop ()

let serve_socket ?queue_limit ~path () : unit =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ());
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 8;
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
    (fun () ->
      (* one connection at a time: each client gets the full JSON-lines
         session; the next accept begins when it disconnects *)
      let rec accept_loop () =
        let fd, _ = Unix.accept sock in
        let ic = Unix.in_channel_of_descr fd in
        let oc = Unix.out_channel_of_descr fd in
        (try serve_channels ?queue_limit ic oc
         with End_of_file | Sys_error _ -> ());
        (try Unix.close fd with Unix.Unix_error _ -> ());
        accept_loop ()
      in
      accept_loop ())

let serve ?queue_limit ?socket () : unit =
  match socket with
  | Some path -> serve_socket ?queue_limit ~path ()
  | None -> serve_channels ?queue_limit stdin stdout
