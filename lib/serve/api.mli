(** The versioned request/response API: one entry point, {!run}, shared
    by the one-shot CLI commands, [tenet batch] and [tenet serve].

    Requests and responses are plain records with total JSON codecs
    built on {!Tenet_obs.Json}; the protocol is one JSON object per
    line (see {!Protocol} and docs/serving.md).  [run] never raises:
    malformed inputs become [Bad_request] error responses carrying the
    parser's offset+fragment diagnostics (anything else escaping the
    pipeline — a broken internal invariant — becomes [Internal]),
    deadline expiry becomes a ["partial"] response with a TN013
    diagnostic, and complete ["ok"] responses that carry no
    deadline-dependent warning are memoized in a byte-budgeted LRU keyed
    on the canonical request fingerprint, so identical requests produce
    byte-identical responses in O(lookup). *)

module Json = Tenet_obs.Json

val version : int
(** The protocol version this build speaks (currently 1).  Requests
    carrying any other [api_version] are refused with an
    [Unsupported_version] error. *)

module Request : sig
  type cmd = Analyze | Volumes | Dse | Check | Stats

  type t = {
    api_version : int;
    id : string;  (** echoed verbatim; correlates pipelined responses *)
    cmd : cmd;
    kernel : string;
    sizes : int list;
    c_source : string option;  (** C loop nest; overrides kernel/sizes *)
    arch : string;
    bandwidth : int option;
    space : string;
    time : string;
    dataflow : string option;  (** zoo name; overrides space/time *)
    engine : [ `Concrete | `Relational ];
    adjacency : [ `Inner_step | `Lex_step ];
    window : int;
    strict : bool;
    scale_dims : string list;
    params : string list;
        (** analyze only: iterator dims kept as free parameters.  The
            request is answered through a compiled metric template
            ({!Tenet_model.Template}) cached across sizes — one
            template per dataflow structure answers every concrete
            extent of the [params] dims in O(1) — and the response
            carries the template's closed forms.  Empty (the default)
            preserves the exact legacy behavior. *)
    tensors : string list;  (** volumes: subset of tensors; [] = all *)
    search : [ `Exhaustive | `Pruned | `Heuristic ];
        (** dse only: [`Exhaustive] (default) scores every candidate;
            [`Pruned] adds symmetry/dominance pruning with the same best
            outcomes; [`Heuristic] additionally caps full evaluations at
            [budget] *)
    budget : int option;  (** dse: heuristic evaluation cap *)
    top : int;
    deadline_ms : int option;  (** processing budget; see docs/serving.md *)
    priority : Admission.priority;
        (** admission tier under load (default [`Normal]): low-priority
            work sheds first at the graduated watermarks, high-priority
            work sheds only at the hard queue limit.  Never affects the
            result — the cache fingerprint blanks it. *)
    format : [ `Json | `Prometheus ];
        (** stats responses only: JSON payload (default) or Prometheus
            text exposition *)
  }

  val default : cmd -> t
  (** The defaults mirror the CLI flag defaults. *)

  val cmd_to_string : cmd -> string
  val cmd_of_string : string -> cmd option

  val to_json : t -> Json.t
  (** Canonical encoding: every field, fixed order, options as [null]. *)

  type decode_error = Bad_field of string | Bad_version of int

  val decode_error_message : decode_error -> string

  val of_json : Json.t -> (t, decode_error) result
  (** Total decode.  Unknown fields, type mismatches and out-of-range
      values are [Bad_field]; an [api_version] other than {!version} is
      [Bad_version].  Absent or [null] fields take their defaults; [cmd]
      is required. *)

  val fingerprint : t -> string
  (** The result-cache key: the canonical encoding with the fields that
      do not affect the result — [id], [deadline_ms], [priority] and
      [format] — blanked. *)
end

module Response : sig
  type error_kind = Bad_request | Unsupported_version | Overloaded | Internal

  type dse_outcome = {
    o_dataflow : Tenet_dataflow.Dataflow.t;
    o_expressible : bool;
    o_metrics : Tenet_model.Metrics.t;
  }

  type payload =
    | Metrics of {
        dataflow : Tenet_dataflow.Dataflow.t;
        metrics : Tenet_model.Metrics.t;
        forms : (string * string) list;
            (** closed forms per metric component, rendered in the
                size parameters; non-empty only when the request kept
                [params] and the template covered the size (the JSON
                encoding omits the field when empty, so param-free
                responses are byte-identical to older builds) *)
      }
    | Volumes of {
        dataflow : Tenet_dataflow.Dataflow.t;
        tensors :
          (string
          * Tenet_ir.Tensor_op.direction
          * Tenet_model.Metrics.volumes)
          list;
      }
    | Dse_result of {
        candidates : int;
        pruned : int;
        valid : int;
        outcomes : dse_outcome list;  (** best-first, truncated to [top] *)
      }
    | Stats of Json.t

  type body = {
    status : [ `Ok | `Partial | `Error ];
    payload : payload option;
    diagnostics : Tenet_analysis.Diagnostic.t list;
        (** checker findings, plus TN013 on deadline expiry *)
    error : (error_kind * string) option;
  }

  type t = {
    api_version : int;
    id : string;
    body : body;
    raw : string option;
        (** serialized body bytes replayed from the persistent cache;
            when present, {!to_json} splices them verbatim (they are
            validated on load to re-encode byte-identically) so
            warm-restart responses match the original run byte for
            byte.  [None] everywhere else. *)
  }

  val error_kind_to_string : error_kind -> string

  val error_exit_code : error_kind -> int
  (** The exit code the CLI maps each kind to: 2 for client mistakes
      ([Bad_request], [Unsupported_version]), 3 for [Overloaded], 1 for
      [Internal]. *)

  val status_to_string : [ `Ok | `Partial | `Error ] -> string
  val dataflow_json : Tenet_dataflow.Dataflow.t -> Json.t
  val payload_json : payload -> Json.t
  val body_fields : body -> (string * Json.t) list
  val to_json : t -> Json.t
  val ok_body : ?diagnostics:Tenet_analysis.Diagnostic.t list -> payload -> body

  val error_body :
    ?diagnostics:Tenet_analysis.Diagnostic.t list ->
    error_kind ->
    string ->
    body

  val error : id:string -> error_kind -> string -> t
  val is_error : t -> bool
end

val run : Request.t -> Response.t
(** Execute one request.  Never raises; see the module doc for deadline,
    error and caching semantics. *)

val run_json : Json.t -> Response.t
(** Decode and {!run} a raw JSON request; decode failures become
    [Bad_request] / [Unsupported_version] error responses with the [id]
    recovered from the raw object when possible. *)

val decode : Json.t -> (Request.t, Response.t) result
(** The decode half of {!run_json}: either the typed request or the
    ready-to-send error response.  The server loops use it so admission
    control and the inline-stats fast path match on typed requests
    rather than raw JSON members. *)

(** {2 The result cache} *)

val clear_cache : unit -> unit
(** Drop both in-memory tiers: the result cache and the template cache
    (the persistent tier on disk is untouched). *)

type cache_tiers = {
  result : Cache.stats;  (** the in-memory result LRU *)
  template_entries : int;
  template_hits : int;
  template_misses : int;
  tiers_disk_dir : string option;
      (** where the persistent tier was loaded from; [None] when
          disabled *)
  disk_entries_loaded : int;
}
(** One structured view of every cache tier — the result LRU, the
    template tier and the persistent disk tier. *)

val cache_tiers : unit -> cache_tiers
val cache_tiers_json : cache_tiers -> Json.t

val cache_stats : unit -> Cache.stats
(** Deprecated: the result-LRU slice of {!cache_tiers}.  New callers
    read [(cache_tiers ()).result]. *)

val template_cache_entries : unit -> int
(** Deprecated: the template slice of {!cache_tiers}.  Hits and misses
    are on the [serve.template_cache_hits] /
    [serve.template_cache_misses] counters. *)

(** {2 The persistent tier}

    The on-disk half of the two-level result cache ({!Disk_cache}):
    load seeds the in-memory LRU with raw serialized bodies (validated
    to re-encode byte-identically; damaged entries are dropped and
    counted on [serve.disk_cache_rejected]), save exports the LRU and
    merges it with the on-disk state atomically. *)

val load_disk_cache : dir:string -> int
(** Seed the result cache from [dir]; returns accepted entries.  A
    missing or damaged cache loads as 0 — never an error. *)

val save_disk_cache : dir:string -> int
(** Export the result cache into [dir] (merge + atomic rename; see
    {!Disk_cache.merge_save}); returns the entries written.  Raises on
    I/O failure. *)

val set_extra_gauges : (unit -> (string * int) list) -> unit
(** Installed by the server loop so [stats] responses include its
    inflight gauge (and any future integer gauges) in both the JSON
    payload and the Prometheus exposition. *)

(** {2 Stats exporters}

    The two encodings behind the [stats] command, also callable
    directly (the CI scrape test and the benches use them). *)

val stats_payload : unit -> Json.t
(** The JSON stats payload: result cache, pool, queue (depth, overload
    count, queue-wait quantiles), the recent window (rates and window
    quantiles since the previous JSON scrape — absent on the first
    scrape), and the full telemetry dump.  Each call advances the
    window. *)

val prometheus_text : unit -> string
(** Prometheus text exposition (format 0.0.4) of every telemetry
    counter and histogram plus the serving gauges and result-cache
    counters.  Cumulative series only; does not advance the window. *)

(** {2 Model-input builders}

    The request-to-model translation, shared with the CLI's simulate
    command.  These raise {!Bad} on client mistakes (unknown kernel or
    architecture, wrong size count, non-positive extents); {!run} maps
    that to a [Bad_request] response. *)

exception Bad of string

val op_of : Request.t -> Tenet_ir.Tensor_op.t
val arch_of : Request.t -> Tenet_arch.Spec.t

val dataflow_of :
  Request.t -> Tenet_ir.Tensor_op.t -> Tenet_dataflow.Dataflow.t
