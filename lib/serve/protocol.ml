(* JSON-lines framing (docs/serving.md): one request object per line in,
   one response object per line out.  Blank lines and lines starting
   with '#' are skipped so request files can be annotated.  A line that
   is not valid JSON still produces a well-formed error response — the
   stream never dies on a bad request. *)

module Json = Tenet_obs.Json

let is_comment line =
  let t = String.trim line in
  t = "" || (String.length t > 0 && t.[0] = '#')

let parse_line (line : string) : (Json.t, Api.Response.t) result =
  match Json.parse line with
  | j -> Ok j
  | exception Json.Parse_error msg ->
      Error
        (Api.Response.error ~id:"" Api.Response.Bad_request
           ("malformed JSON request: " ^ msg))

let request_id (j : Json.t) : string =
  match Json.member "id" j with Some (Json.String s) -> s | _ -> ""

let is_stats (j : Json.t) : bool =
  match Json.member "cmd" j with
  | Some (Json.String "stats") -> true
  | _ -> false

(* The typed front half of the server loops: one total decode up front,
   so stats detection, admission priority and deadline handling all
   read typed fields instead of probing raw JSON members (the
   stringly-typed [is_stats] probe predates this and survives only for
   compatibility). *)
let parse_request (line : string) : (Api.Request.t, Api.Response.t) result =
  match parse_line line with
  | Error resp -> Error resp
  | Ok j -> Api.decode j

let response_line (resp : Api.Response.t) : string =
  Json.to_string (Api.Response.to_json resp)

let handle_line (line : string) : Api.Response.t =
  match parse_request line with Ok r -> Api.run r | Error resp -> resp
