(** A byte-budgeted, mutex-guarded LRU cache for whole-request results:
    the model-level layer above the counting caches, keyed on canonical
    request fingerprints so repeated and near-duplicate queries (the DSE
    access pattern) are O(lookup).  See docs/serving.md for tuning. *)

type 'v t

val create : bytes:int -> unit -> 'v t
(** A cache holding at most [bytes] worth of values (caller-declared
    sizes).  [bytes = 0] disables caching: {!add} never stores and
    {!find} always misses.  Raises [Invalid_argument] on a negative
    budget. *)

val find : 'v t -> string -> 'v option
(** Lookup; refreshes recency and counts a hit or miss. *)

val add : 'v t -> key:string -> size:int -> 'v -> unit
(** Insert, evicting least-recently-used entries until the budget holds.
    Values larger than the whole budget are not stored. *)

val fold : 'v t -> init:'a -> f:('a -> key:string -> size:int -> 'v -> 'a) -> 'a
(** Fold over every resident entry (unspecified order) under the cache
    lock — [f] must not call back into the cache.  Powers the export to
    the persistent tier ({!Disk_cache}). *)

val clear : 'v t -> unit
(** Drop every entry (hit/miss/eviction counters are kept). *)

type stats = {
  entries : int;
  bytes : int;
  budget : int;
  hits : int;
  misses : int;
  evictions : int;
}

val stats : 'v t -> stats
