(** TENET: relation-centric modeling of tensor dataflows on spatial
    architectures (Lu et al., ISCA 2021), reimplemented in OCaml.

    This umbrella module re-exports the whole stack and provides the
    one-call entry points a downstream user needs.  The layering is:

    - {!Isl}: integer sets and relations with exact point counting;
    - {!Ir}: tensor-operation IR, kernel builders and the C frontend;
    - {!Arch}: PE arrays, interconnects, scratchpad and energy spec;
    - {!Dataflow}: the relation-centric notation (dataflow Θ, data
      assignment, interconnection, spacetime maps) and Table III's zoo;
    - {!Model}: the performance model (volumes, latency, bandwidth,
      utilization, energy) with relational, concrete and scaled engines;
    - {!Maestro}: the data-centric notation baseline and its
      polynomial analytical model;
    - {!Sim}: a cycle-level simulator used as executable ground truth;
    - {!Dse}: design-space generation and search;
    - {!Workloads}: real-network layer tables (AlexNet, VGG16,
      GoogLeNet, MobileNet, ALS, Transformer);
    - {!Obs}: telemetry (spans, counters, Chrome-trace/JSON export),
      threaded through the counting engine, models, simulator and DSE
      (see docs/observability.md);
    - {!Analysis}: the static model checker — structured diagnostics
      with witness points for Θ validity, causality, interconnect and
      reuse feasibility (see docs/analysis.md);
    - {!Serve}: the versioned request/response API ({!Serve.Api.run})
      behind [tenet serve] and [tenet batch] — JSON-lines protocol,
      per-request deadlines, backpressure and the model-level result
      cache (see docs/serving.md). *)

module Util = Tenet_util
module Obs = Tenet_obs
module Isl = Tenet_isl
module Ir = Tenet_ir
module Arch = Tenet_arch
module Dataflow = Tenet_dataflow
module Model = Tenet_model
module Maestro = Tenet_maestro
module Sim = Tenet_sim
module Compute = Tenet_compute
module Dse = Tenet_dse
module Workloads = Tenet_workloads
module Analysis = Tenet_analysis
module Serve = Tenet_serve

(** Analyze one dataflow on one architecture: the TENET flow of Figure 2.
    Raises [Model.Concrete.Invalid_dataflow] if the dataflow escapes the
    PE array or maps two instances to one spacetime-stamp.

    This and {!analyze_scaled}/{!analyze_c_source} are kept as thin
    engine-level wrappers; request-level callers (anything that wants
    deadlines, structured errors or the result cache) should go through
    {!Serve.Api.run}, which the CLI, [tenet batch] and [tenet serve] all
    share. *)
let analyze ?(adjacency = `Inner_step) ~(arch : Arch.Spec.t)
    ~(op : Ir.Tensor_op.t) ~(dataflow : Dataflow.Dataflow.t) () :
    Model.Metrics.t =
  Model.Concrete.analyze ~adjacency arch op dataflow

(** Like {!analyze} but extrapolating the given sequential dims
    multilinearly, for layers too large to enumerate (see
    {!Model.Scaled}). *)
let analyze_scaled ?(adjacency = `Inner_step) ~(arch : Arch.Spec.t)
    ~(op : Ir.Tensor_op.t) ~(dataflow : Dataflow.Dataflow.t)
    ~(scale_dims : string list) () : Model.Metrics.t =
  Model.Scaled.analyze ~adjacency arch op dataflow ~scale_dims

(** Parse a C loop nest (see {!Ir.Cfront}) and analyze it. *)
let analyze_c_source ?(adjacency = `Inner_step) ~(arch : Arch.Spec.t)
    ~(source : string) ~(dataflow : Dataflow.Dataflow.t) () : Model.Metrics.t
    =
  analyze ~adjacency ~arch ~op:(Ir.Cfront.parse source) ~dataflow ()

(** Render a full human-readable report. *)
let report (m : Model.Metrics.t) : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Model.Metrics.to_string m);
  Buffer.add_char buf '\n';
  List.iter
    (fun tm ->
      Buffer.add_string buf
        (Format.asprintf "  %a@." Model.Metrics.pp_tensor_row tm))
    m.Model.Metrics.per_tensor;
  Buffer.contents buf
