(* Spacetime-stamp map relations M_{D,D'} (Definition 4): adjacency between
   spacetime-stamps, combining a PE-to-PE relation (space part) with a
   time-step relation (time part).

   Two time-adjacency semantics are provided:
   - [`Inner_step]: all time dims equal except the innermost, which
     advances by the interconnect interval.  This is the conservative
     reading of "time distance within 1" and never crosses a tile
     boundary.
   - [`Lex_step]: the lexicographic successor at distance [interval],
     using per-dimension bounds to model inner-dimension wrap-around, so
     reuse chains survive tile/loop boundaries (needed e.g. for the
     row-stationary output-reuse analysis of Section VI-E). *)

module Isl = Tenet_isl
module Arch = Tenet_arch

type adjacency = [ `Inner_step | `Lex_step ]

type channel = {
  cname : string;
  kind : [ `Temporal | `Spatial ];
  m : Isl.Map.t; (* ST -> ST' *)
}

(* --- time-step relations over (t..., t'...) with nvis = 2m --- *)

let time_identity m : Isl.Bset.t =
  let b = ref (Isl.Bset.universe (2 * m)) in
  for i = 0 to m - 1 do
    let a = Array.make (2 * m) 0 in
    a.(i) <- 1;
    a.(m + i) <- -1;
    b := Isl.Bset.add_cons !b [ Isl.Bset.con_eq a 0 ]
  done;
  !b

let time_inner_step ~m ~dt : Isl.Bset.t list =
  if dt = 0 then [ time_identity m ]
  else if m = 0 then [] (* no time dims: no temporal adjacency *)
  else begin
    let b = ref (Isl.Bset.universe (2 * m)) in
    for i = 0 to m - 2 do
      let a = Array.make (2 * m) 0 in
      a.(i) <- 1;
      a.(m + i) <- -1;
      b := Isl.Bset.add_cons !b [ Isl.Bset.con_eq a 0 ]
    done;
    let a = Array.make (2 * m) 0 in
    a.(m - 1) <- 1;
    a.(2 * m - 1) <- -1;
    b := Isl.Bset.add_cons !b [ Isl.Bset.con_eq a dt ];
    [ !b ]
  end

(* Lexicographic successor: one disjunct per incrementing position [j];
   dims after [j] wrap from their max to their min. *)
let time_lex_step ~bounds ~dt : Isl.Bset.t list =
  let m = List.length bounds in
  if dt = 0 then [ time_identity m ]
  else if m = 0 then []
  else begin
    let bounds = Array.of_list bounds in
    let piece j =
      let b = ref (Isl.Bset.universe (2 * m)) in
      for i = 0 to j - 1 do
        let a = Array.make (2 * m) 0 in
        a.(i) <- 1;
        a.(m + i) <- -1;
        b := Isl.Bset.add_cons !b [ Isl.Bset.con_eq a 0 ]
      done;
      let a = Array.make (2 * m) 0 in
      a.(j) <- 1;
      a.(m + j) <- -1;
      b := Isl.Bset.add_cons !b [ Isl.Bset.con_eq a dt ];
      for i = j + 1 to m - 1 do
        let lo, hi = bounds.(i) in
        b := Isl.Bset.fix !b ~dim:i hi;
        b := Isl.Bset.fix !b ~dim:(m + i) lo
      done;
      !b
    in
    List.init m piece
  end

(* --- lifting (PE rel) x (time rel) into ST -> ST' --- *)

let lift ~(df : Dataflow.t) (pe_rel : Isl.Bset.t list)
    (time_rel : Isl.Bset.t list) : Isl.Map.t =
  let r = Dataflow.n_space df and m = Dataflow.n_time df in
  let dom = Dataflow.st_space df in
  let ran =
    Isl.Space.rename_dims dom
      (List.map (fun n -> n ^ "'") dom.Isl.Space.dims)
  in
  let perm_vis =
    (* new order [p, t, p', t'] built from product order [p, p', t, t'] *)
    Array.init
      (2 * (r + m))
      (fun i ->
        if i < r then i (* p *)
        else if i < r + m then (2 * r) + (i - r) (* t *)
        else if i < (2 * r) + m then r + (i - (r + m)) (* p' *)
        else (2 * r) + m + (i - ((2 * r) + m)) (* t' *))
  in
  let ds =
    List.concat_map
      (fun pb ->
        List.map
          (fun tb -> Isl.Bset.permute_vis ~perm_vis (Isl.Bset.product pb tb))
          time_rel)
      pe_rel
  in
  Isl.Map.of_bsets dom ran ds

let time_step ~(adjacency : adjacency) ~bounds ~dt =
  match adjacency with
  | `Inner_step -> time_inner_step ~m:(List.length bounds) ~dt
  | `Lex_step -> time_lex_step ~bounds ~dt

(* For interval-0 (same-cycle multicast) channels the raw interconnect
   relation is symmetric, which would let every PE in a wire group claim
   its datum as "reused" and nobody fetch it.  Designate the
   lexicographically smallest PE holding the datum as the fetcher by
   keeping only lex-increasing pairs. *)
let lex_lt_pairs (rel : Isl.Map.t) : Isl.Map.t =
  let r = Isl.Map.n_in rel in
  let dom = Isl.Map.dom rel and ran = Isl.Map.ran rel in
  let piece j =
    let b = ref (Isl.Bset.universe (2 * r)) in
    for i = 0 to j - 1 do
      let a = Array.make (2 * r) 0 in
      a.(i) <- 1;
      a.(r + i) <- -1;
      b := Isl.Bset.add_cons !b [ Isl.Bset.con_eq a 0 ]
    done;
    let a = Array.make (2 * r) 0 in
    a.(j) <- -1;
    a.(r + j) <- 1;
    b := Isl.Bset.add_cons !b [ Isl.Bset.con_ge a (-1) ];
    !b
  in
  Isl.Map.intersect rel (Isl.Map.of_bsets dom ran (List.init r piece))

(* The PE-to-PE relation actually used for spatial reuse: asymmetric for
   interval-0 topologies, raw otherwise. *)
let reuse_pe_relation (pe : Arch.Pe_array.t) (topology : Arch.Interconnect.t)
    : Isl.Map.t =
  let rel = Arch.Interconnect.relation topology pe in
  if Arch.Interconnect.interval topology = 0 then lex_lt_pairs rel else rel

(* The temporal channel: same PE, next time-stamp (register reuse). *)
let temporal ?(adjacency = `Inner_step) (op : Tenet_ir.Tensor_op.t)
    (df : Dataflow.t) (pe : Arch.Pe_array.t) : channel =
  let bounds = Dataflow.time_bounds op df in
  let pe_rel = Isl.Map.disjuncts (Arch.Interconnect.identity pe) in
  {
    cname = "temporal";
    kind = `Temporal;
    m = lift ~df pe_rel (time_step ~adjacency ~bounds ~dt:1);
  }

(* The spatial channel of a topology: interconnected (distinct) PEs at the
   topology's transfer interval. *)
let spatial ?(adjacency = `Inner_step) (op : Tenet_ir.Tensor_op.t)
    (df : Dataflow.t) (pe : Arch.Pe_array.t)
    (topology : Arch.Interconnect.t) : channel =
  let bounds = Dataflow.time_bounds op df in
  let pe_rel = Isl.Map.disjuncts (reuse_pe_relation pe topology) in
  let dt = Arch.Interconnect.interval topology in
  {
    cname = Arch.Interconnect.name topology;
    kind = `Spatial;
    m = lift ~df pe_rel (time_step ~adjacency ~bounds ~dt);
  }

(* A spatial channel over an explicit PE relation (rather than a
   topology), mirroring [spatial]'s construction exactly.  The analysis
   checker uses this to lift suspect PE pairs (self-loops, out-of-array
   endpoints of custom topologies) into the spacetime map the model
   would credit reuse along. *)
let spatial_of_rel ?(adjacency = `Inner_step) (op : Tenet_ir.Tensor_op.t)
    (df : Dataflow.t) ~(rel : Isl.Map.t) ~(dt : int) : channel =
  let bounds = Dataflow.time_bounds op df in
  {
    cname = "custom";
    kind = `Spatial;
    m = lift ~df (Isl.Map.disjuncts rel) (time_step ~adjacency ~bounds ~dt);
  }

let channels ?(adjacency = `Inner_step) (spec : Arch.Spec.t)
    (op : Tenet_ir.Tensor_op.t) (df : Dataflow.t) : channel list =
  [
    temporal ~adjacency op df spec.Arch.Spec.pe;
    spatial ~adjacency op df spec.Arch.Spec.pe spec.Arch.Spec.topology;
  ]
