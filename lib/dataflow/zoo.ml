(* The twenty dataflows of Table III, parameterized by PE-array width.

   Table III abbreviates multi-dimensional time-stamps to their innermost
   two dimensions "for simplicity"; a valid dataflow must order *all* loop
   instances uniquely per PE, so the iterators missing from the printed
   stamp are restored here as outer time dimensions (keeping the printed
   innermost dims innermost).  This reconstruction is the one documented
   in DESIGN.md.

   Names follow the paper: e.g. [(IJ-P | J,IJK-T)] assigns dims I,J to the
   PE array and uses a time-stamp whose innermost dimension is the skewed
   sum of I, J and K. *)

module Aff = Tenet_isl.Aff

let v = Aff.var
let fl e d = Aff.Fdiv (e, d)
let ( %% ) e d = Aff.Mod (e, d)
let ( ++ ) a b = Aff.Add (a, b)

let df name space time = Dataflow.make ~name ~space ~time

(* ------------------------------------------------------------------ *)
(* GEMM: iterators i, j, k; default PE width 8 (2D) or 64 (1D).        *)
(* ------------------------------------------------------------------ *)

(* (IJ-P | J,IJK-T), applied in the TPU: output-stationary systolic with
   skewed feeding. *)
let gemm_ij_p_ijk_t ?(p = 8) () =
  df "(IJ-P | J,IJK-T)"
    [ v "i" %% p; v "j" %% p ]
    [ fl (v "i") p; fl (v "j") p; (v "i" %% p) ++ (v "j" %% p) ++ v "k" ]

(* (KJ-P | K,IJK-T): A-stationary variant; time skews j and k. *)
let gemm_kj_p_ijk_t ?(p = 8) () =
  df "(KJ-P | K,IJK-T)"
    [ v "k" %% p; v "j" %% p ]
    [ fl (v "j") p; fl (v "k") p; v "i" ++ (v "j" %% p) ++ (v "k" %% p) ]

(* (IK-P | K,IJK-T): B-stationary variant, symmetric to the former. *)
let gemm_ik_p_ijk_t ?(p = 8) () =
  df "(IK-P | K,IJK-T)"
    [ v "i" %% p; v "k" %% p ]
    [ fl (v "i") p; fl (v "k") p; v "j" ++ (v "i" %% p) ++ (v "k" %% p) ]

(* (K-P | I,J-T): 1D array over the reduction dim. *)
let gemm_k_p_ij_t ?(p = 64) () =
  df "(K-P | I,J-T)" [ v "k" %% p ] [ fl (v "k") p; v "i"; v "j" ]

(* (J-P | I,K-T): 1D array over the j dim. *)
let gemm_j_p_ik_t ?(p = 64) () =
  df "(J-P | I,K-T)" [ v "j" %% p ] [ fl (v "j") p; v "i"; v "k" ]

let gemm_2d ?(p = 8) () =
  [ gemm_ij_p_ijk_t ~p (); gemm_kj_p_ijk_t ~p (); gemm_ik_p_ijk_t ~p () ]

let gemm_1d ?(p = 64) () = [ gemm_k_p_ij_t ~p (); gemm_j_p_ik_t ~p () ]
let gemm_all ?(p2 = 8) ?(p1 = 64) () = gemm_2d ~p:p2 () @ gemm_1d ~p:p1 ()

(* ------------------------------------------------------------------ *)
(* 2D-CONV: iterators k, c, ox, oy, rx, ry.                            *)
(* ------------------------------------------------------------------ *)

(* (KC-P | O_Y, KCO_X-T): requires affine transformation (skewed feeding
   of k, c, ox); not expressible in data-centric notation. *)
let conv_kc_p_oy_kcox_t ?(p = 8) () =
  df "(KC-P | OY,KCOX-T)"
    [ v "k" %% p; v "c" %% p ]
    [
      v "ry";
      v "rx";
      fl (v "k") p;
      fl (v "c") p;
      v "oy";
      (v "k" %% p) ++ (v "c" %% p) ++ v "ox";
    ]

(* (KO_X-P | O_Y, KO_XC-T): second affine-only dataflow. *)
let conv_kox_p_oy_koxc_t ?(p = 8) () =
  df "(KOX-P | OY,KOXC-T)"
    [ v "k" %% p; v "ox" %% p ]
    [
      v "ry";
      v "rx";
      fl (v "k") p;
      fl (v "ox") p;
      v "oy";
      (v "k" %% p) ++ (v "ox" %% p) ++ v "c";
    ]

(* (KC-P | C, KO_X-T): weight-stationary-ish with skewed k, ox. *)
let conv_kc_p_c_kox_t ?(p = 8) () =
  df "(KC-P | C,KOX-T)"
    [ v "k" %% p; v "c" %% p ]
    [
      v "ry";
      v "rx";
      fl (v "k") p;
      v "oy";
      fl (v "c") p;
      (v "k" %% p) ++ v "ox";
    ]

(* (K-P | O_X, O_Y-T): 1D output-channel parallel (expressible in
   data-centric notation). *)
let conv_k_p_ox_oy_t ?(p = 64) () =
  df "(K-P | OX,OY-T)"
    [ v "k" %% p ]
    [ v "ry"; v "rx"; fl (v "k") p; v "c"; v "ox"; v "oy" ]

(* (C-P | O_Y, O_X-T): 1D input-channel parallel. *)
let conv_c_p_oy_ox_t ?(p = 64) () =
  df "(C-P | OY,OX-T)"
    [ v "c" %% p ]
    [ v "ry"; v "rx"; fl (v "c") p; v "k"; v "oy"; v "ox" ]

(* (R_YO_Y-P | O_Y,O_X-T), motivated by Eyeriss row-stationary: dims ry
   and a slice of c fill one PE-array column; oy fills the row.  The
   paper's printed stamp is T[fl(k/16), fl(c/16), ox]; we restore the
   missing k%16, fl((c%16)/4) and rx iterators, restored so that ox stays
   innermost: the filter row is then stationary across consecutive stamps
   (its O_X temporal reuse) while the output row cycles with period O_X,
   which the PE's row-sized register window captures (Section VI-E's
   3 x 4 = 12 output analysis).
   [cpack] is how many channel slices share a column (Eyeriss CONV3: 4). *)
let conv_eyeriss_rs ?(rows = 12) ?(cols = 14) ?(kt = 16) ?(ct = 16)
    ?(cpack = 4) ?(r = 3) () =
  ignore rows;
  df "(RYOY-P | OY,OX-T)"
    [ v "ry" ++ Aff.Mul (Aff.Int r, v "c" %% cpack); v "oy" %% cols ]
    [
      fl (v "oy") cols;
      fl (v "k") kt;
      fl (v "c") ct;
      v "k" %% kt;
      fl (v "c" %% ct) cpack;
      v "rx";
      v "ox";
    ]

(* (O_YO_X-P | O_Y,O_X-T), motivated by ShiDianNao: output pixels across
   the array, output-stationary in time. *)
let conv_shidiannao ?(p = 8) () =
  df "(OYOX-P | OY,OX-T)"
    [ v "oy" %% p; v "ox" %% p ]
    [ v "k"; v "c"; fl (v "oy") p; fl (v "ox") p; v "ry"; v "rx" ]

(* (KC-P | O_Y,O_X-T), motivated by the NVDLA: channel-parallel without
   skewing. *)
let conv_nvdla ?(p = 8) () =
  df "(KC-P | OY,OX-T)"
    [ v "k" %% p; v "c" %% p ]
    [ v "ry"; v "rx"; fl (v "k") p; fl (v "c") p; v "oy"; v "ox" ]

let conv_all ?(p2 = 8) ?(p1 = 64) () =
  [
    conv_kc_p_oy_kcox_t ~p:p2 ();
    conv_kox_p_oy_koxc_t ~p:p2 ();
    conv_kc_p_c_kox_t ~p:p2 ();
    conv_k_p_ox_oy_t ~p:p1 ();
    conv_c_p_oy_ox_t ~p:p1 ();
    conv_eyeriss_rs ();
    conv_shidiannao ~p:p2 ();
    conv_nvdla ~p:p2 ();
  ]

(* ------------------------------------------------------------------ *)
(* MTTKRP: iterators i, j, k, l.                                       *)
(* ------------------------------------------------------------------ *)

let mttkrp_ij_p_ijl_t ?(p = 8) () =
  df "(IJ-P | J,IJL-T)"
    [ v "i" %% p; v "j" %% p ]
    [ v "k"; fl (v "i") p; fl (v "j") p; (v "i" %% p) ++ (v "j" %% p) ++ v "l" ]

let mttkrp_kj_p_kjl_t ?(p = 8) () =
  df "(KJ-P | J,KJL-T)"
    [ v "k" %% p; v "j" %% p ]
    [ v "i"; fl (v "k") p; fl (v "j") p; (v "k" %% p) ++ (v "j" %% p) ++ v "l" ]

let mttkrp_kl_p_klj_t ?(p = 8) () =
  df "(KL-P | L,KLJ-T)"
    [ v "k" %% p; v "l" %% p ]
    [ v "i"; fl (v "k") p; fl (v "l") p; (v "k" %% p) ++ (v "l" %% p) ++ v "j" ]

let mttkrp_all ?(p = 8) () =
  [ mttkrp_ij_p_ijl_t ~p (); mttkrp_kj_p_kjl_t ~p (); mttkrp_kl_p_klj_t ~p () ]

(* ------------------------------------------------------------------ *)
(* Jacobi-2D: iterators i, j.                                          *)
(* ------------------------------------------------------------------ *)

let jacobi_i_p_ij_t ?(p = 64) () =
  df "(I-P | I,J-T)" [ v "i" %% p ] [ fl (v "i") p; v "j" ]

let jacobi_ij_p_ij_t ?(p = 8) () =
  df "(IJ-P | I,J-T)"
    [ v "i" %% p; v "j" %% p ]
    [ fl (v "i") p; fl (v "j") p ]

let jacobi_all ?(p2 = 8) ?(p1 = 64) () =
  [ jacobi_i_p_ij_t ~p:p1 (); jacobi_ij_p_ij_t ~p:p2 () ]

(* ------------------------------------------------------------------ *)
(* MMc (matrix-multiplication chain): iterators i, j, k, l.            *)
(* ------------------------------------------------------------------ *)

let mmc_ij_p_ijl_t ?(p = 8) () =
  df "(IJ-P | J,IJL-T)"
    [ v "i" %% p; v "j" %% p ]
    [ v "k"; fl (v "i") p; fl (v "j") p; (v "i" %% p) ++ (v "j" %% p) ++ v "l" ]

let mmc_kj_p_kjl_t ?(p = 8) () =
  df "(KJ-P | J,KJL-T)"
    [ v "k" %% p; v "j" %% p ]
    [ v "i"; fl (v "k") p; fl (v "j") p; (v "k" %% p) ++ (v "j" %% p) ++ v "l" ]

let mmc_all ?(p = 8) () = [ mmc_ij_p_ijl_t ~p (); mmc_kj_p_kjl_t ~p () ]

(* MAERI-style reduction-tree dataflow for 2D-CONV (Section VI-E): the
   multipliers (tree leaves) each take one (c-slice, rx, ry) product of a
   dot-product; the tree sums them in the same cycle.  With 3x3 filters,
   7 channel slices x 9 taps fill 63 of 64 leaves. *)
let conv_maeri ?(cslices = 7) ?(taps = 3) () =
  df "(CRXRY-P | OY,OX-T) maeri"
    [
      Aff.Mul (Aff.Int (taps * taps), v "c" %% cslices)
      ++ Aff.Mul (Aff.Int taps, v "rx")
      ++ v "ry";
    ]
    [ fl (v "c") cslices; v "k"; v "oy"; v "ox" ]

(* ------------------------------------------------------------------ *)
(* Kernel-qualified catalog, for name-based lookup from the CLI.       *)
(* ------------------------------------------------------------------ *)

let catalog ?(p2 = 8) ?(p1 = 64) () : (string * Dataflow.t) list =
  let tag kernel dfs =
    List.map
      (fun (d : Dataflow.t) -> (kernel ^ "/" ^ d.Dataflow.name, d))
      dfs
  in
  tag "gemm" (gemm_all ~p2 ~p1 ())
  @ tag "conv" (conv_all ~p2 ~p1 () @ [ conv_maeri () ])
  @ tag "mttkrp" (mttkrp_all ~p:p2 ())
  @ tag "jacobi2d" (jacobi_all ~p2 ~p1 ())
  @ tag "mmc" (mmc_all ~p:p2 ())

let all_names () = List.map fst (catalog ())

let find ?(p2 = 8) ?(p1 = 64) (name : string) : Dataflow.t =
  let cat = catalog ~p2 ~p1 () in
  match List.assoc_opt name cat with
  | Some df -> df
  | None -> (
      (* accept a bare (unqualified) Table III name when unique *)
      match
        List.filter
          (fun (_, d) -> String.equal d.Dataflow.name name)
          cat
      with
      | [ (_, df) ] -> df
      | _ :: _ :: _ ->
          invalid_arg
            (Printf.sprintf
               "Zoo.find: dataflow name %s is ambiguous; qualify it as \
                kernel/name"
               name)
      | [] ->
          invalid_arg
            ("Zoo.find: "
            ^ Tenet_util.Text.unknown ~what:"dataflow" name
                (List.map fst cat)))
