(* The dataflow relation Θ (Definition 1): a quasi-affine assignment of
   each loop instance to a spacetime-stamp (PE[p] | T[t]).

   Space-stamp and time-stamp coordinates are quasi-affine expressions of
   the loop iterators; the spacetime tuple is flattened into one range
   space [ST[p..., t...]] for relation algebra. *)

module Isl = Tenet_isl
module Ir = Tenet_ir
module Arch = Tenet_arch

type t = {
  name : string;
  space : Isl.Aff.t list; (* PE coordinates *)
  time : Isl.Aff.t list; (* execution sequence, lexicographic *)
}

let make ~name ~space ~time = { name; space; time }

let n_space t = List.length t.space
let n_time t = List.length t.time

let space_dim_names t = List.init (n_space t) (fun i -> Printf.sprintf "p%d" i)
let time_dim_names t = List.init (n_time t) (fun i -> Printf.sprintf "t%d" i)

let st_space t : Isl.Space.t =
  Isl.Space.make "ST" (space_dim_names t @ time_dim_names t)

(* Θ = { S[n] -> ST[p..., t...] } restricted to the iteration domain. *)
let theta (op : Ir.Tensor_op.t) (df : t) : Isl.Map.t =
  let used =
    List.concat_map Isl.Aff.free_vars (df.space @ df.time)
  in
  let known = Ir.Tensor_op.iter_names op in
  List.iter
    (fun v ->
      if not (List.mem v known) then
        invalid_arg
          (Printf.sprintf "Dataflow.theta: %s references unknown iterator %s"
             df.name v))
    used;
  Isl.Map.intersect_domain
    (Isl.Map.of_exprs (Ir.Tensor_op.space op) (st_space df)
       (df.space @ df.time))
    (Ir.Tensor_op.domain op)

(* Data assignment A_{D,F} = Θ⁻¹ . A_{S,F} (Definition 2). *)
let data_assignment (op : Ir.Tensor_op.t) (df : t) (tensor : string) :
    Isl.Map.t =
  Isl.Map.apply_range (Isl.Map.reverse (theta op df))
    (Ir.Tensor_op.access_map op tensor)

(* Per-dimension inclusive intervals of the time stamps over the iteration
   box (used to build lexicographic successor relations). *)
let time_bounds (op : Ir.Tensor_op.t) (df : t) : (int * int) list =
  let env v = Ir.Tensor_op.iter_bounds op v in
  List.map (Isl.Aff.interval env) df.time

let space_bounds (op : Ir.Tensor_op.t) (df : t) : (int * int) list =
  let env v = Ir.Tensor_op.iter_bounds op v in
  List.map (Isl.Aff.interval env) df.space

(* ------------------------------------------------------------------ *)
(* Validity primitives.                                                *)
(*                                                                     *)
(* Fine-grained, witness-producing facts about a dataflow.  These are  *)
(* the single source of truth for {!first_violation} and for the       *)
(* structured checker in [lib/analysis], so the two can never          *)
(* disagree.                                                           *)
(* ------------------------------------------------------------------ *)

let rank_violation (df : t) (pe : Arch.Pe_array.t) : (int * int) option =
  let r = n_space df and ar = Arch.Pe_array.rank pe in
  if r <> ar then Some (r, ar) else None

(* First space dimension whose interval escapes [0, extent): (dim,
   (lo, hi), extent).  Interval analysis, exact for box domains. *)
let bounds_violation (op : Ir.Tensor_op.t) (df : t) (pe : Arch.Pe_array.t) :
    (int * (int * int) * int) option =
  let dims = Arch.Pe_array.dims pe in
  let rec go i = function
    | [] -> None
    | (lo, hi) :: rest ->
        if lo < 0 || hi >= dims.(i) then Some (i, (lo, hi), dims.(i))
        else go (i + 1) rest
  in
  go 0 (space_bounds op df)

(* A concrete iteration point escaping the array on some space dim, with
   its space stamp: the witness behind {!bounds_violation}. *)
let bounds_witness (op : Ir.Tensor_op.t) (df : t) (pe : Arch.Pe_array.t) :
    (int * int array * int array) option =
  let dims = Arch.Pe_array.dims pe in
  let dom = Ir.Tensor_op.domain op in
  let iters = Ir.Tensor_op.iter_names op in
  let stamp_of n =
    let env v =
      let rec idx i = function
        | [] -> raise Not_found
        | x :: _ when String.equal x v -> i
        | _ :: r -> idx (i + 1) r
      in
      n.(idx 0 iters)
    in
    Array.of_list (List.map (Isl.Aff.eval env) df.space)
  in
  let pieces =
    List.concat
      (List.mapi
         (fun i e ->
           [
             (* e <= -1 *)
             (i, Isl.Aff.Sub (Isl.Aff.Int (-1), e));
             (* e >= dims.(i) *)
             (i, Isl.Aff.Sub (e, Isl.Aff.Int dims.(i)));
           ])
         df.space)
  in
  List.find_map
    (fun (i, ge) ->
      match Isl.Set.sample (Isl.Set.constrain dom ~ges:[ ge ]) with
      | Some n -> Some (i, n, stamp_of n)
      | None -> None)
    pieces

(* (instances, stamps) when two instances share a spacetime-stamp. *)
let conflict_counts (op : Ir.Tensor_op.t) (df : t) : (int * int) option =
  let th = theta op df in
  let pairs = Isl.Map.card th in
  let stamps = Isl.Set.card (Isl.Map.range th) in
  if stamps <> pairs then Some (pairs, stamps) else None

(* Θ with a primed copy of the iteration space, for same-space relational
   checks (cf. the primed output tuples of Interconnect). *)
let prime v = v ^ "'"

let theta_primed (op : Ir.Tensor_op.t) (df : t) : Isl.Map.t =
  let iters = Ir.Tensor_op.iter_names op in
  let primed = List.map prime iters in
  let dom' =
    Isl.Space.make (Ir.Tensor_op.space op).Isl.Space.tuple primed
  in
  let exprs' = List.map (Isl.Aff.rename prime) (df.space @ df.time) in
  Isl.Map.intersect_domain
    (Isl.Map.of_exprs dom' (st_space df) exprs')
    (Isl.Set.rename_dims primed (Ir.Tensor_op.domain op))

(* A concrete conflicting pair: two lex-ordered instances with the same
   spacetime-stamp, found by sampling Θ ∘ Θ'⁻¹ below the diagonal. *)
let conflict_witness (op : Ir.Tensor_op.t) (df : t) :
    (int array * int array * int array) option =
  let th = theta op df in
  let conflicts = Isl.Map.apply_range th (Isl.Map.reverse (theta_primed op df)) in
  let iters = Array.of_list (Ir.Tensor_op.iter_names op) in
  let d = Array.length iters in
  let piece j =
    let eqs =
      List.init j (fun e ->
          Isl.Aff.Sub (Isl.Aff.Var iters.(e), Isl.Aff.Var (prime iters.(e))))
    in
    let ges =
      [
        Isl.Aff.Sub
          ( Isl.Aff.Sub (Isl.Aff.Var (prime iters.(j)), Isl.Aff.Var iters.(j)),
            Isl.Aff.Int 1 );
      ]
    in
    Isl.Map.constrain conflicts ~eqs ~ges
  in
  let rec go j =
    if j >= d then None
    else
      match Isl.Set.sample (Isl.Map.wrap (piece j)) with
      | Some p ->
          let n = Array.sub p 0 d and n' = Array.sub p d d in
          let stamp =
            match Isl.Map.eval th n with Some s -> s | None -> [||]
          in
          Some (n, n', stamp)
      | None -> go (j + 1)
  in
  go 0

(* A dataflow is valid on an architecture iff (1) the space-stamp rank
   matches the PE array rank, (2) every instance lands inside the array,
   and (3) no two instances share a spacetime-stamp (each PE has one
   MAC).  [first_violation] renders the first failing fact; callers
   wanting structured findings with witness points should use
   [Analysis.Checker.check] instead. *)
let first_violation (op : Ir.Tensor_op.t) (df : t) (pe : Arch.Pe_array.t) :
    string option =
  match rank_violation df pe with
  | Some (r, ar) ->
      Some
        (Printf.sprintf "%s: space-stamp rank %d vs PE array rank %d" df.name
           r ar)
  | None -> (
      match bounds_violation op df pe with
      | Some (i, (lo, hi), extent) ->
          Some
            (Printf.sprintf "%s: space dim %d spans [%d, %d] outside [0, %d)"
               df.name i lo hi extent)
      | None -> (
          match conflict_counts op df with
          | Some (pairs, stamps) ->
              Some
                (Printf.sprintf "%s: %d instances map to %d spacetime-stamps"
                   df.name pairs stamps)
          | None -> None))

let to_string df =
  let s = String.concat ", " (List.map Isl.Aff.to_string df.space) in
  let t = String.concat ", " (List.map Isl.Aff.to_string df.time) in
  Printf.sprintf "%s: PE[%s] | T[%s]" df.name s t
