(** The twenty dataflows of Table III (plus a MAERI-style reduction-tree
    dataflow), parameterized by PE-array width.

    Table III prints only the innermost two time dimensions; the
    iterators it omits are restored here as outer time dimensions so
    every dataflow orders all instances uniquely per PE (see the module
    implementation and DESIGN.md for the reconstruction rules). *)

(** {2 GEMM} (iterators i, j, k; [p] = array width) *)

val gemm_ij_p_ijk_t : ?p:int -> unit -> Dataflow.t
(** [(IJ-P | J,IJK-T)], the TPU mapping: output-stationary systolic with
    skewed feeding. *)

val gemm_kj_p_ijk_t : ?p:int -> unit -> Dataflow.t
val gemm_ik_p_ijk_t : ?p:int -> unit -> Dataflow.t
val gemm_k_p_ij_t : ?p:int -> unit -> Dataflow.t
val gemm_j_p_ik_t : ?p:int -> unit -> Dataflow.t
val gemm_2d : ?p:int -> unit -> Dataflow.t list
val gemm_1d : ?p:int -> unit -> Dataflow.t list
val gemm_all : ?p2:int -> ?p1:int -> unit -> Dataflow.t list

(** {2 2D-CONV} (iterators k, c, ox, oy, rx, ry) *)

val conv_kc_p_oy_kcox_t : ?p:int -> unit -> Dataflow.t
(** Affine-only (not data-centric expressible). *)

val conv_kox_p_oy_koxc_t : ?p:int -> unit -> Dataflow.t
val conv_kc_p_c_kox_t : ?p:int -> unit -> Dataflow.t
val conv_k_p_ox_oy_t : ?p:int -> unit -> Dataflow.t
val conv_c_p_oy_ox_t : ?p:int -> unit -> Dataflow.t

val conv_eyeriss_rs :
  ?rows:int ->
  ?cols:int ->
  ?kt:int ->
  ?ct:int ->
  ?cpack:int ->
  ?r:int ->
  unit ->
  Dataflow.t
(** Eyeriss row-stationary: filter rows fill array columns
    ([ry + r*(c mod cpack)]), output rows fill array rows ([oy mod
    cols]).  [cpack] channel slices share a column; [r] is the filter
    height. *)

val conv_shidiannao : ?p:int -> unit -> Dataflow.t
val conv_nvdla : ?p:int -> unit -> Dataflow.t
val conv_maeri : ?cslices:int -> ?taps:int -> unit -> Dataflow.t
val conv_all : ?p2:int -> ?p1:int -> unit -> Dataflow.t list

(** {2 MTTKRP} (iterators i, j, k, l) *)

val mttkrp_ij_p_ijl_t : ?p:int -> unit -> Dataflow.t
val mttkrp_kj_p_kjl_t : ?p:int -> unit -> Dataflow.t
val mttkrp_kl_p_klj_t : ?p:int -> unit -> Dataflow.t
val mttkrp_all : ?p:int -> unit -> Dataflow.t list

(** {2 Jacobi-2D} (iterators i, j) *)

val jacobi_i_p_ij_t : ?p:int -> unit -> Dataflow.t
val jacobi_ij_p_ij_t : ?p:int -> unit -> Dataflow.t
val jacobi_all : ?p2:int -> ?p1:int -> unit -> Dataflow.t list

(** {2 MMc} (iterators i, j, k, l) *)

val mmc_ij_p_ijl_t : ?p:int -> unit -> Dataflow.t
val mmc_kj_p_kjl_t : ?p:int -> unit -> Dataflow.t
val mmc_all : ?p:int -> unit -> Dataflow.t list

(** {2 Catalog} *)

val catalog : ?p2:int -> ?p1:int -> unit -> (string * Dataflow.t) list
(** Every zoo dataflow under a kernel-qualified name
    (["gemm/(IJ-P | J,IJK-T)"]), instantiated at 2D width [p2] and 1D
    width [p1]. *)

val all_names : unit -> string list

val find : ?p2:int -> ?p1:int -> string -> Dataflow.t
(** Look a dataflow up by qualified name, or by its bare Table III name
    when unambiguous.  Raises [Invalid_argument] listing the known names
    (with a nearest-match suggestion) otherwise. *)
