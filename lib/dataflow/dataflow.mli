(** The dataflow relation Θ (Definition 1 of the paper): a quasi-affine
    assignment of each loop instance to a spacetime-stamp
    [(PE[p] | T[t])]. *)

module Isl = Tenet_isl
module Ir = Tenet_ir
module Arch = Tenet_arch

type t = {
  name : string;
  space : Isl.Aff.t list;  (** PE coordinates *)
  time : Isl.Aff.t list;  (** execution order, compared lexicographically *)
}

val make : name:string -> space:Isl.Aff.t list -> time:Isl.Aff.t list -> t

val n_space : t -> int
val n_time : t -> int

val st_space : t -> Isl.Space.t
(** The flattened spacetime space [ST[p0.., t0..]]. *)

val theta : Ir.Tensor_op.t -> t -> Isl.Map.t
(** [Θ = { S[n] -> ST[p, t] }] restricted to the iteration domain.
    Raises [Invalid_argument] if a stamp references an unknown
    iterator. *)

val data_assignment : Ir.Tensor_op.t -> t -> string -> Isl.Map.t
(** [A_{D,F} = Θ⁻¹ . A_{S,F}] (Definition 2). *)

val time_bounds : Ir.Tensor_op.t -> t -> (int * int) list
(** Inclusive per-dimension intervals of the time stamps over the
    iteration box (interval analysis; exact for box domains). *)

val space_bounds : Ir.Tensor_op.t -> t -> (int * int) list

(** {2 Validity primitives}

    Fine-grained, witness-producing facts about a dataflow on an
    architecture.  They are the shared foundation of
    {!first_violation} and of the structured checker in [lib/analysis]
    ([Analysis.Checker]), so the two can never disagree. *)

val rank_violation : t -> Arch.Pe_array.t -> (int * int) option
(** [(space-stamp rank, PE-array rank)] when they differ. *)

val bounds_violation :
  Ir.Tensor_op.t -> t -> Arch.Pe_array.t -> (int * (int * int) * int) option
(** First space dimension whose interval escapes the array:
    [(dim, (lo, hi), array extent)].  Interval analysis, exact for box
    domains. *)

val bounds_witness :
  Ir.Tensor_op.t -> t -> Arch.Pe_array.t -> (int * int array * int array) option
(** A concrete escaping instance: [(space dim, iteration point, space
    stamp)], found by sampling the violating set. *)

val conflict_counts : Ir.Tensor_op.t -> t -> (int * int) option
(** [(instances, stamps)] when Θ is not injective on its domain (two
    instances share a spacetime-stamp). *)

val theta_primed : Ir.Tensor_op.t -> t -> Isl.Map.t
(** Θ over a primed copy of the iteration space ([S\[i',j',...\]]), for
    same-space relational checks. *)

val conflict_witness :
  Ir.Tensor_op.t -> t -> (int array * int array * int array) option
(** A concrete conflicting pair: [(n, n', shared stamp)] with [n] lex
    before [n'], found by sampling [Θ ∘ Θ'⁻¹] off the diagonal. *)

val first_violation : Ir.Tensor_op.t -> t -> Arch.Pe_array.t -> string option
(** The first failing validity fact (rank, then containment, then
    injectivity), rendered as a message — [None] when the dataflow is
    valid on the array.  A convenience over the primitives above for
    engine entry points that only need a fail-fast error string; prefer
    [Analysis.Checker.check] for structured findings (including
    causality and reuse-feasibility) with concrete witness points. *)

val to_string : t -> string
