(** The dataflow relation Θ (Definition 1 of the paper): a quasi-affine
    assignment of each loop instance to a spacetime-stamp
    [(PE[p] | T[t])]. *)

module Isl = Tenet_isl
module Ir = Tenet_ir
module Arch = Tenet_arch

type t = {
  name : string;
  space : Isl.Aff.t list;  (** PE coordinates *)
  time : Isl.Aff.t list;  (** execution order, compared lexicographically *)
}

val make : name:string -> space:Isl.Aff.t list -> time:Isl.Aff.t list -> t

val n_space : t -> int
val n_time : t -> int

val st_space : t -> Isl.Space.t
(** The flattened spacetime space [ST[p0.., t0..]]. *)

val theta : Ir.Tensor_op.t -> t -> Isl.Map.t
(** [Θ = { S[n] -> ST[p, t] }] restricted to the iteration domain.
    Raises [Invalid_argument] if a stamp references an unknown
    iterator. *)

val data_assignment : Ir.Tensor_op.t -> t -> string -> Isl.Map.t
(** [A_{D,F} = Θ⁻¹ . A_{S,F}] (Definition 2). *)

val time_bounds : Ir.Tensor_op.t -> t -> (int * int) list
(** Inclusive per-dimension intervals of the time stamps over the
    iteration box (interval analysis; exact for box domains). *)

val space_bounds : Ir.Tensor_op.t -> t -> (int * int) list

(** {2 Validity primitives}

    Fine-grained, witness-producing facts about a dataflow on an
    architecture.  They are the shared foundation of the legacy
    {!validate} entry point and of the structured checker in
    [lib/analysis] ([Analysis.Checker]), so the two can never
    disagree. *)

val rank_violation : t -> Arch.Pe_array.t -> (int * int) option
(** [(space-stamp rank, PE-array rank)] when they differ. *)

val bounds_violation :
  Ir.Tensor_op.t -> t -> Arch.Pe_array.t -> (int * (int * int) * int) option
(** First space dimension whose interval escapes the array:
    [(dim, (lo, hi), array extent)].  Interval analysis, exact for box
    domains. *)

val bounds_witness :
  Ir.Tensor_op.t -> t -> Arch.Pe_array.t -> (int * int array * int array) option
(** A concrete escaping instance: [(space dim, iteration point, space
    stamp)], found by sampling the violating set. *)

val conflict_counts : Ir.Tensor_op.t -> t -> (int * int) option
(** [(instances, stamps)] when Θ is not injective on its domain (two
    instances share a spacetime-stamp). *)

val theta_primed : Ir.Tensor_op.t -> t -> Isl.Map.t
(** Θ over a primed copy of the iteration space ([S\[i',j',...\]]), for
    same-space relational checks. *)

val conflict_witness :
  Ir.Tensor_op.t -> t -> (int array * int array * int array) option
(** A concrete conflicting pair: [(n, n', shared stamp)] with [n] lex
    before [n'], found by sampling [Θ ∘ Θ'⁻¹] off the diagonal. *)

type violation =
  | Out_of_array of string
  | Pe_conflict of string
  | Rank_mismatch of string

val violation_to_string : violation -> string

val validate :
  Ir.Tensor_op.t -> t -> Arch.Pe_array.t -> (unit, violation) result
(** A dataflow is valid iff the space-stamp rank matches the array, every
    instance lands inside it, and no two instances share a
    spacetime-stamp (one MAC per PE per cycle).

    @deprecated Thin shim over the validity primitives above, kept for
    the [violation] API.  Prefer [Analysis.Checker.check], which reports
    every finding (including causality and reuse-feasibility) as a
    structured diagnostic with a concrete witness point. *)

val to_string : t -> string
