(** Spacetime-stamp map relations [M_{D,D'}] (Definition 4): adjacency of
    spacetime-stamps, combining a PE-to-PE relation with a time-step
    relation.  Data reuse is counted along these channels
    (Section V-A). *)

module Isl = Tenet_isl
module Arch = Tenet_arch

type adjacency = [ `Inner_step | `Lex_step ]
(** How multi-dimensional time advances:
    [`Inner_step] — outer time dims equal, innermost advances by the
    interval (never crosses a tile boundary);
    [`Lex_step] — the lexicographic successor with wrap-aware
    inner-dimension resets, so reuse chains survive loop boundaries. *)

type channel = {
  cname : string;
  kind : [ `Temporal | `Spatial ];
  m : Isl.Map.t;  (** ST -> ST' *)
}

val temporal :
  ?adjacency:adjacency ->
  Tenet_ir.Tensor_op.t ->
  Dataflow.t ->
  Arch.Pe_array.t ->
  channel
(** Same PE, next time-stamp: register reuse. *)

val spatial :
  ?adjacency:adjacency ->
  Tenet_ir.Tensor_op.t ->
  Dataflow.t ->
  Arch.Pe_array.t ->
  Arch.Interconnect.t ->
  channel
(** Interconnected distinct PEs at the topology's transfer interval. *)

val channels :
  ?adjacency:adjacency ->
  Arch.Spec.t ->
  Tenet_ir.Tensor_op.t ->
  Dataflow.t ->
  channel list
(** The temporal channel plus the spec's spatial channel. *)

val lex_lt_pairs : Isl.Map.t -> Isl.Map.t
(** Keep only lex-increasing PE pairs: for interval-0 (same-cycle) wires
    the lexicographically least PE holding a datum is the fetcher, so
    reuse attribution is acyclic. *)

val reuse_pe_relation :
  Arch.Pe_array.t -> Arch.Interconnect.t -> Isl.Map.t
(** The PE relation actually used for spatial reuse: lex-filtered for
    interval-0 topologies, raw otherwise. *)

val spatial_of_rel :
  ?adjacency:adjacency ->
  Tenet_ir.Tensor_op.t ->
  Dataflow.t ->
  rel:Isl.Map.t ->
  dt:int ->
  channel
(** A spatial channel over an explicit PE relation at time step [dt],
    mirroring {!spatial}'s construction; used by the analysis checker to
    test which reuse a suspect subset of PE pairs would carry. *)

(**/**)

(* exposed for tests and the analysis checker *)
val time_identity : int -> Isl.Bset.t
val time_inner_step : m:int -> dt:int -> Isl.Bset.t list
val time_lex_step : bounds:(int * int) list -> dt:int -> Isl.Bset.t list

val time_step :
  adjacency:adjacency -> bounds:(int * int) list -> dt:int -> Isl.Bset.t list

val lift :
  df:Dataflow.t -> Isl.Bset.t list -> Isl.Bset.t list -> Isl.Map.t
(* [(PE rel) x (time rel)] lifted into [ST -> ST'] disjuncts. *)
