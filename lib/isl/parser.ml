(* Hand-written parser for the ISL-like notation used throughout TENET:

     set:  { S[i, j] : 0 <= i < 4 and 0 <= j < 3 }
     map:  { S[i, j, k] -> PE[i mod 8, j mod 8] : 0 <= i < 64 }
     map:  { PE[i, j] -> PE[x, y] : (x = i and y = j + 1) or
                                    (x = i + 1 and y = j) }

   Expressions support [+ - *], [mod] / [%], [floor(e/c)] / [fl(e/c)] /
   [e/c] (integer literal divisor), and [abs(e)] in comparison atoms with
   the absolute value on the small side (e.g. [abs(i - j) <= 1]).
   Comparison chains ([0 <= i < n]) and [or] (union / DNF) are supported;
   [!=] expands to a disjunction. *)

type token =
  | INT of int
  | IDENT of string
  | LBRACE
  | RBRACE
  | LBRACK
  | RBRACK
  | LPAREN
  | RPAREN
  | COMMA
  | SEMI
  | COLON
  | ARROW
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | LE
  | LT
  | GE
  | GT
  | EQ
  | NE
  | KAND
  | KOR
  | KMOD
  | KFLOOR
  | KABS
  | KTRUE
  | KFALSE
  | EOF

exception Parse_error of string

(* "at offset N near \"...\"": a window of the source around the offending
   position, so errors point at the bad sub-expression instead of echoing
   the whole string. *)
let context (src : string) (pos : int) : string =
  let n = String.length src in
  let pos = min (max pos 0) n in
  let lo = max 0 (pos - 12) and hi = min n (pos + 12) in
  Printf.sprintf "at offset %d near \"%s%s%s\"" pos
    (if lo > 0 then "…" else "")
    (String.sub src lo (hi - lo))
    (if hi < n then "…" else "")

let error_at src pos msg =
  raise (Parse_error (Printf.sprintf "%s %s" msg (context src pos)))

(* Tokens are paired with their start offset in the source. *)
let tokenize (s : string) : (token * int) list =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  let start = ref 0 in
  let emit t = toks := (t, !start) :: !toks in
  let is_id_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' in
  let is_id c = is_id_start c || (c >= '0' && c <= '9') || c = '\'' in
  while !i < n do
    let c = s.[!i] in
    start := !i;
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c >= '0' && c <= '9' then begin
      let j = ref !i in
      while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do
        incr j
      done;
      emit (INT (int_of_string (String.sub s !i (!j - !i))));
      i := !j
    end
    else if is_id_start c then begin
      let j = ref !i in
      while !j < n && is_id s.[!j] do
        incr j
      done;
      let word = String.sub s !i (!j - !i) in
      i := !j;
      emit
        (match word with
        | "and" -> KAND
        | "or" -> KOR
        | "mod" -> KMOD
        | "floor" | "fl" -> KFLOOR
        | "abs" -> KABS
        | "true" -> KTRUE
        | "false" -> KFALSE
        | w -> IDENT w)
    end
    else begin
      let two = if !i + 1 < n then String.sub s !i 2 else "" in
      match two with
      | "->" ->
          emit ARROW;
          i := !i + 2
      | "<=" ->
          emit LE;
          i := !i + 2
      | ">=" ->
          emit GE;
          i := !i + 2
      | "!=" ->
          emit NE;
          i := !i + 2
      | _ -> (
          incr i;
          match c with
          | '{' -> emit LBRACE
          | '}' -> emit RBRACE
          | '[' -> emit LBRACK
          | ']' -> emit RBRACK
          | '(' -> emit LPAREN
          | ')' -> emit RPAREN
          | ',' -> emit COMMA
          | ';' -> emit SEMI
          | ':' -> emit COLON
          | '+' -> emit PLUS
          | '-' -> emit MINUS
          | '*' -> emit STAR
          | '/' -> emit SLASH
          | '%' -> emit PERCENT
          | '<' -> emit LT
          | '>' -> emit GT
          | '=' -> emit EQ
          | c ->
              error_at s !start
                (Printf.sprintf "unexpected character '%c'" c))
    end
  done;
  List.rev ((EOF, n) :: !toks)

(* ------------------------------------------------------------------ *)
(* Recursive descent.                                                  *)
(* ------------------------------------------------------------------ *)

type state = { mutable toks : (token * int) list; src : string }

let peek st = match st.toks with [] -> EOF | (t, _) :: _ -> t

(* Offset of the next token (end of input once the stream is drained). *)
let pos st =
  match st.toks with [] -> String.length st.src | (_, p) :: _ -> p

let next st =
  match st.toks with
  | [] -> EOF
  | (t, _) :: rest ->
      st.toks <- rest;
      t

let err st msg = error_at st.src (pos st) msg

let expect st t what =
  let p = pos st in
  let got = next st in
  if got <> t then error_at st.src p ("expected " ^ what)

let accept st t = if peek st = t then (ignore (next st); true) else false

(* --- expressions (over Aff.t, allowing tuple-qualified names) --- *)

(* Output-tuple dims may collide with input dims (e.g. PE -> PE maps);
   we qualify names with the tuple position during parsing of maps.  The
   caller supplies a [qualify : string -> string]. *)

let rec parse_expr st ~qualify : Aff.t =
  let lhs = parse_term st ~qualify in
  parse_expr_rest st ~qualify lhs

and parse_expr_rest st ~qualify lhs =
  match peek st with
  | PLUS ->
      ignore (next st);
      let rhs = parse_term st ~qualify in
      parse_expr_rest st ~qualify (Aff.Add (lhs, rhs))
  | MINUS ->
      ignore (next st);
      let rhs = parse_term st ~qualify in
      parse_expr_rest st ~qualify (Aff.Sub (lhs, rhs))
  | _ -> lhs

and parse_term st ~qualify =
  let lhs = parse_factor st ~qualify in
  parse_term_rest st ~qualify lhs

and parse_term_rest st ~qualify lhs =
  match peek st with
  | STAR ->
      ignore (next st);
      let rhs = parse_factor st ~qualify in
      parse_term_rest st ~qualify (Aff.Mul (lhs, rhs))
  | SLASH ->
      ignore (next st);
      let d = parse_int_literal st in
      parse_term_rest st ~qualify (Aff.Fdiv (lhs, d))
  | PERCENT | KMOD ->
      ignore (next st);
      let d = parse_int_literal st in
      parse_term_rest st ~qualify (Aff.Mod (lhs, d))
  | _ -> lhs

and parse_int_literal st =
  let p = pos st in
  match next st with
  | INT n -> n
  | MINUS -> (
      let p = pos st in
      match next st with
      | INT n -> -n
      | _ -> error_at st.src p "expected integer literal")
  | _ -> error_at st.src p "expected integer literal"

and parse_factor st ~qualify =
  let p = pos st in
  match next st with
  | INT n -> Aff.Int n
  | IDENT v -> Aff.Var (qualify v)
  | MINUS -> Aff.Neg (parse_factor st ~qualify)
  | LPAREN ->
      let e = parse_expr st ~qualify in
      expect st RPAREN ")";
      e
  | KFLOOR ->
      expect st LPAREN "( after floor";
      let e = parse_expr st ~qualify in
      (* Accept both floor(e / d) (slash consumed by term parsing) and
         floor(e, d); the common case is that parse_expr already folded
         the division. *)
      expect st RPAREN ") after floor";
      (match e with
      | Aff.Fdiv _ -> e
      | _ -> error_at st.src p "floor(...) must contain a division")
  | KABS ->
      expect st LPAREN "( after abs";
      let e = parse_expr st ~qualify in
      expect st RPAREN ") after abs";
      Aff.Abs e
  | _ -> error_at st.src p "expected expression"

(* --- constraint formulas --- *)

type formula =
  | Atom of (Aff.t * [ `Le | `Lt | `Eq | `Ne ] * Aff.t)
  | And of formula list
  | Or of formula list
  | True
  | False

let rec parse_formula st ~qualify = parse_or st ~qualify

and parse_or st ~qualify =
  let lhs = parse_and st ~qualify in
  if accept st KOR then
    match parse_or st ~qualify with
    | Or fs -> Or (lhs :: fs)
    | f -> Or [ lhs; f ]
  else lhs

and parse_and st ~qualify =
  let lhs = parse_atom st ~qualify in
  if accept st KAND then
    match parse_and st ~qualify with
    | And fs -> And (lhs :: fs)
    | f -> And [ lhs; f ]
  else lhs

and parse_atom st ~qualify =
  match peek st with
  | KTRUE ->
      ignore (next st);
      True
  | KFALSE ->
      ignore (next st);
      False
  | LPAREN ->
      (* Could be a parenthesized formula or a parenthesized expression
         starting a chain; try formula first by lookahead on the matching
         content.  Simplest robust approach: save tokens and backtrack. *)
      let saved = st.toks in
      ignore (next st);
      (try
         let f = parse_formula st ~qualify in
         expect st RPAREN ")";
         (* If the next token is a comparison, the parenthesized thing was
            actually an expression; fall back. *)
         match peek st with
         | LE | LT | GE | GT | EQ | NE -> raise (Parse_error "chain")
         | _ -> f
       with Parse_error _ ->
         st.toks <- saved;
         parse_chain st ~qualify)
  | _ -> parse_chain st ~qualify

and parse_chain st ~qualify =
  let first = parse_expr st ~qualify in
  let rec go lhs acc =
    match peek st with
    | LE | LT | GE | GT | EQ | NE ->
        let op = next st in
        let rhs = parse_expr st ~qualify in
        let atom =
          match op with
          | LE -> Atom (lhs, `Le, rhs)
          | LT -> Atom (lhs, `Lt, rhs)
          | GE -> Atom (rhs, `Le, lhs)
          | GT -> Atom (rhs, `Lt, lhs)
          | EQ -> Atom (lhs, `Eq, rhs)
          | NE -> Atom (lhs, `Ne, rhs)
          | _ -> assert false
        in
        go rhs (atom :: acc)
    | _ -> acc
  in
  match go first [] with
  | [] -> err st "expected comparison"
  | [ a ] -> a
  | atoms -> And atoms

(* Expand an atom into primitive constraints: a list of (expr >= 0) and
   (expr = 0) facts, or a disjunction thereof for [!=] / [abs >=]. *)
type prim = Ge of Aff.t | Eq0 of Aff.t

let rec atom_prims (lhs, op, rhs) : prim list list =
  (* returns DNF: list of conjunctions *)
  match (lhs, op, rhs) with
  | Aff.Abs a, `Le, r -> [ [ Ge (Aff.Sub (r, a)); Ge (Aff.Add (r, a)) ] ]
  | Aff.Abs a, `Lt, r ->
      [
        [
          Ge (Aff.Sub (Aff.Sub (r, a), Aff.Int 1));
          Ge (Aff.Sub (Aff.Add (r, a), Aff.Int 1));
        ];
      ]
  | _, `Le, _ -> [ [ Ge (Aff.Sub (rhs, lhs)) ] ]
  | _, `Lt, _ -> [ [ Ge (Aff.Sub (Aff.Sub (rhs, lhs), Aff.Int 1)) ] ]
  | _, `Eq, _ -> [ [ Eq0 (Aff.Sub (lhs, rhs)) ] ]
  | _, `Ne, _ ->
      atom_prims (lhs, `Lt, rhs) @ atom_prims (rhs, `Lt, lhs)

let rec formula_dnf (f : formula) : prim list list =
  match f with
  | True -> [ [] ]
  | False -> []
  | Atom a -> atom_prims a
  | And fs ->
      List.fold_left
        (fun acc f ->
          let d = formula_dnf f in
          List.concat_map (fun conj -> List.map (fun c -> conj @ c) d) acc)
        [ [] ] fs
  | Or fs -> List.concat_map formula_dnf fs

(* --- tuples and top-level pieces --- *)

let parse_tuple st : string * string list =
  let name = match peek st with
    | IDENT n ->
        ignore (next st);
        n
    | _ -> ""
  in
  expect st LBRACK "[";
  let dims = ref [] in
  if peek st <> RBRACK then begin
    let rec go () =
      let p = pos st in
      (match next st with
      | IDENT d -> dims := d :: !dims
      | _ -> error_at st.src p "expected dimension name");
      if accept st COMMA then go ()
    in
    go ()
  end;
  expect st RBRACK "]";
  (name, List.rev !dims)

let build_bsets ~nvis ~lookup (f : formula) : Bset.t list =
  let dnf = formula_dnf f in
  List.map
    (fun conj ->
      let ctx = Aff.make_ctx nvis in
      let eqs = ref [] and ges = ref [] in
      List.iter
        (fun p ->
          match p with
          | Ge e -> ges := Aff.lower ctx ~lookup e :: !ges
          | Eq0 e -> eqs := Aff.lower ctx ~lookup e :: !eqs)
        conj;
      Aff.to_bset ctx ~eqs:!eqs ~ges:!ges)
    dnf

let lookup_in dims name =
  let rec go i = function
    | [] -> raise (Parse_error ("unknown dimension " ^ name))
    | d :: _ when String.equal d name -> i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 dims

let parse_set_pieces st =
  expect st LBRACE "{";
  let pieces = ref [] in
  let rec go () =
    let tuple, dims = parse_tuple st in
    let f = if accept st COLON then parse_formula st ~qualify:Fun.id else True in
    pieces := (tuple, dims, f) :: !pieces;
    if accept st SEMI then go ()
  in
  go ();
  expect st RBRACE "}";
  List.rev !pieces

let set (s : string) : Set.t =
  let st = { toks = tokenize s; src = s } in
  let pieces = parse_set_pieces st in
  match pieces with
  | [] -> raise (Parse_error "empty set expression")
  | (tuple, dims, _) :: _ ->
      let space = Space.make tuple dims in
      let n = List.length dims in
      let ds =
        List.concat_map
          (fun (t', dims', f) ->
            if t' <> tuple || List.length dims' <> n then
              raise (Parse_error "set pieces must share one space");
            build_bsets ~nvis:n ~lookup:(lookup_in dims') f)
          pieces
      in
      Set.of_bsets space ds

(* Output tuples may contain arbitrary quasi-affine expressions over the
   input dims (e.g. [{ S[i,j] -> A[i+j] }] or [{ PE[i,j] -> PE[i, j+1] }]).
   A position that is a plain identifier not colliding with any input dim
   becomes a fresh output dimension; every other position gets a synthetic
   name plus an equality constraint. *)
let parse_out_tuple st ~in_dims : string * string list * (string * Aff.t) list
    =
  let name =
    match peek st with
    | IDENT n
      when st.toks <> []
           && (match List.nth_opt st.toks 1 with
              | Some (LBRACK, _) -> true
              | _ -> false) ->
        ignore (next st);
        n
    | _ -> ""
  in
  expect st LBRACK "[";
  let dims = ref [] and eqs = ref [] and k = ref 0 in
  if peek st <> RBRACK then begin
    let rec go () =
      let e = parse_expr st ~qualify:Fun.id in
      (match e with
      | Aff.Var v when (not (List.mem v in_dims)) && not (List.mem v !dims) ->
          dims := !dims @ [ v ]
      | _ ->
          let d = Printf.sprintf "_o%d" !k in
          dims := !dims @ [ d ];
          eqs := (d, e) :: !eqs);
      incr k;
      if accept st COMMA then go ()
    in
    go ()
  end;
  expect st RBRACK "]";
  (name, !dims, List.rev !eqs)

let parse_map_pieces st =
  expect st LBRACE "{";
  let pieces = ref [] in
  let rec go () =
    let t1, d1 = parse_tuple st in
    expect st ARROW "->";
    let t2, d2, out_eqs = parse_out_tuple st ~in_dims:d1 in
    let f = if accept st COLON then parse_formula st ~qualify:Fun.id else True in
    (* Fold the output equalities into the formula. *)
    let f =
      List.fold_left
        (fun acc (d, e) ->
          let atom = Atom (Aff.Var d, `Eq, e) in
          match acc with And fs -> And (atom :: fs) | _ -> And [ atom; acc ])
        f out_eqs
    in
    pieces := (t1, d1, t2, d2, f) :: !pieces;
    if accept st SEMI then go ()
  in
  go ();
  expect st RBRACE "}";
  List.rev !pieces

let map (s : string) : Map.t =
  let st = { toks = tokenize s; src = s } in
  let pieces = parse_map_pieces st in
  match pieces with
  | [] -> raise (Parse_error "empty map expression")
  | (t1, d1, t2, d2, _) :: _ ->
      let dom = Space.make t1 d1 and ran = Space.make t2 d2 in
      let n1 = List.length d1 and n2 = List.length d2 in
      let ds =
        List.concat_map
          (fun (t1', d1', t2', d2', f) ->
            if t1' <> t1 || t2' <> t2 then
              raise (Parse_error "map pieces must share spaces");
            let all = d1' @ d2' in
            if List.length all <> n1 + n2 then
              raise (Parse_error "map pieces must share arities");
            build_bsets ~nvis:(n1 + n2) ~lookup:(lookup_in all) f)
          pieces
      in
      Map.of_bsets dom ran ds

(* Parse one stand-alone quasi-affine expression over the given dims
   (used by the CLI to read space/time stamp coordinates). *)
let expr ~dims (s : string) : Aff.t =
  let st = { toks = tokenize s; src = s } in
  let e = parse_expr st ~qualify:Fun.id in
  (match peek st with
  | EOF -> ()
  | _ -> err st "trailing input in expression");
  List.iter
    (fun v ->
      if not (List.mem v dims) then
        raise (Parse_error ("unknown dimension " ^ v ^ " in " ^ s)))
    (Aff.free_vars e);
  e

(* Split on top-level commas and parse each piece with {!expr}. *)
let exprs ~dims (s : string) : Aff.t list =
  let parts = ref [] and buf = Buffer.create 16 and depth = ref 0 in
  String.iter
    (fun c ->
      match c with
      | '(' ->
          incr depth;
          Buffer.add_char buf c
      | ')' ->
          decr depth;
          Buffer.add_char buf c
      | ',' when !depth = 0 ->
          parts := Buffer.contents buf :: !parts;
          Buffer.clear buf
      | c -> Buffer.add_char buf c)
    s;
  parts := Buffer.contents buf :: !parts;
  List.rev_map (expr ~dims) !parts
