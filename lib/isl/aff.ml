(* Quasi-affine expressions over named dimensions, and their lowering into
   the linear-constraint representation of {!Bset}.

   [Fdiv] and [Mod] take a positive integer literal divisor, matching the
   quasi-affine transformations of the paper ([fl(i/8)], [i%8]). *)

type t =
  | Var of string
  | Int of int
  | Neg of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t (* at least one side must lower to a constant *)
  | Fdiv of t * int
  | Mod of t * int
  | Abs of t
      (* [Abs] is only valid in comparison atoms of the constraint language
         (e.g. [abs(i - j) <= 1]); it is expanded there and never reaches
         [lower]. *)

exception Nonlinear of string

let var s = Var s
let int n = Int n
let ( + ) a b = Add (a, b)
let ( - ) a b = Sub (a, b)
let ( * ) a b = Mul (a, b)
let ( / ) a d = Fdiv (a, d)
let ( % ) a d = Mod (a, d)
let neg a = Neg a

let rec free_vars = function
  | Var s -> [ s ]
  | Int _ -> []
  | Neg a -> free_vars a
  | Add (a, b) | Sub (a, b) | Mul (a, b) -> free_vars a @ free_vars b
  | Fdiv (a, _) | Mod (a, _) | Abs a -> free_vars a

let rec rename f = function
  | Var s -> Var (f s)
  | Int n -> Int n
  | Neg a -> Neg (rename f a)
  | Add (a, b) -> Add (rename f a, rename f b)
  | Sub (a, b) -> Sub (rename f a, rename f b)
  | Mul (a, b) -> Mul (rename f a, rename f b)
  | Fdiv (a, d) -> Fdiv (rename f a, d)
  | Mod (a, d) -> Mod (rename f a, d)
  | Abs a -> Abs (rename f a)

let rec to_string = function
  | Var s -> s
  | Int n -> string_of_int n
  | Neg a -> "-(" ^ to_string a ^ ")"
  | Add (a, b) -> to_string a ^ " + " ^ to_string b
  | Sub (a, (Add _ | Sub _ | Neg _ as b)) ->
      to_string a ^ " - (" ^ to_string b ^ ")"
  | Sub (a, b) -> to_string a ^ " - " ^ to_string b
  | Mul (a, b) -> paren a ^ "*" ^ paren b
  | Fdiv (a, d) -> "floor((" ^ to_string a ^ ")/" ^ string_of_int d ^ ")"
  | Mod (a, d) -> "(" ^ to_string a ^ ") mod " ^ string_of_int d
  | Abs a -> "abs(" ^ to_string a ^ ")"

and paren e =
  match e with
  | Var _ | Int _ -> to_string e
  | _ -> "(" ^ to_string e ^ ")"

(* Evaluate with an environment; raises [Not_found] on unbound vars. *)
let rec eval env = function
  | Var s -> env s
  | Int n -> n
  | Neg a -> -eval env a
  | Add (a, b) -> Stdlib.( + ) (eval env a) (eval env b)
  | Sub (a, b) -> Stdlib.( - ) (eval env a) (eval env b)
  | Mul (a, b) -> Stdlib.( * ) (eval env a) (eval env b)
  | Fdiv (a, d) -> Tenet_util.Int_math.fdiv (eval env a) d
  | Mod (a, d) -> Tenet_util.Int_math.fmod (eval env a) d
  | Abs a -> abs (eval env a)

(* Staged evaluator: name resolution and shape dispatch happen once, at
   compile time, so the hot path is closure calls over an int array — no
   string lookups, no AST walk.  Used by the concrete engine, which
   evaluates the same handful of expressions millions of times. *)
let compile_eval ~(lookup : string -> int) (e : t) : int array -> int =
  let rec go = function
    | Var s ->
        let i = lookup s in
        fun v -> v.(i)
    | Int n -> fun _ -> n
    | Neg a ->
        let f = go a in
        fun v -> -f v
    | Add (a, b) ->
        let fa = go a and fb = go b in
        fun v -> Stdlib.( + ) (fa v) (fb v)
    | Sub (a, b) ->
        let fa = go a and fb = go b in
        fun v -> Stdlib.( - ) (fa v) (fb v)
    | Mul (a, b) ->
        let fa = go a and fb = go b in
        fun v -> Stdlib.( * ) (fa v) (fb v)
    | Fdiv (a, d) ->
        let f = go a in
        fun v -> Tenet_util.Int_math.fdiv (f v) d
    | Mod (a, d) ->
        let f = go a in
        fun v -> Tenet_util.Int_math.fmod (f v) d
    | Abs a ->
        let f = go a in
        fun v -> abs (f v)
  in
  go e

(* ------------------------------------------------------------------ *)
(* Lowering context: accumulates floor-division definitions as extra    *)
(* existential dimensions appended after [nbase] visible dimensions.    *)
(* ------------------------------------------------------------------ *)

type lin = { terms : (int * int) list; const : int } (* (var index, coeff) *)

type ctx = {
  nbase : int;
  mutable divs : (lin * int) list; (* reversed; each is (numerator, den) *)
  mutable ndivs : int;
}

let make_ctx nbase = { nbase; divs = []; ndivs = 0 }

let lin_const c = { terms = []; const = c }
let lin_var v = { terms = [ (v, 1) ]; const = 0 }

let lin_add a b =
  let tbl = Hashtbl.create 8 in
  let addt (v, c) =
    let prev = try Hashtbl.find tbl v with Not_found -> 0 in
    Hashtbl.replace tbl v (Stdlib.( + ) prev c)
  in
  List.iter addt a.terms;
  List.iter addt b.terms;
  let terms =
    Hashtbl.fold (fun v c acc -> if c = 0 then acc else (v, c) :: acc) tbl []
  in
  let terms = List.sort compare terms in
  { terms; const = Stdlib.( + ) a.const b.const }

let lin_scale k l =
  if k = 0 then lin_const 0
  else
    {
      terms = List.map (fun (v, c) -> (v, Stdlib.( * ) k c)) l.terms;
      const = Stdlib.( * ) k l.const;
    }

let lin_is_const l = l.terms = []

(* Lower an expression to a linear form, appending div dimensions to the
   context as needed.  [lookup] maps dimension names to indices in
   [0, nbase). *)
let rec lower ctx ~lookup expr : lin =
  match expr with
  | Var s -> lin_var (lookup s)
  | Int n -> lin_const n
  | Neg a -> lin_scale (-1) (lower ctx ~lookup a)
  | Add (a, b) -> lin_add (lower ctx ~lookup a) (lower ctx ~lookup b)
  | Sub (a, b) ->
      lin_add (lower ctx ~lookup a) (lin_scale (-1) (lower ctx ~lookup b))
  | Mul (a, b) -> begin
      let la = lower ctx ~lookup a and lb = lower ctx ~lookup b in
      if lin_is_const la then lin_scale la.const lb
      else if lin_is_const lb then lin_scale lb.const la
      else raise (Nonlinear (to_string expr))
    end
  | Fdiv (a, d) ->
      if d <= 0 then raise (Nonlinear "floor division by non-positive literal");
      let la = lower ctx ~lookup a in
      let v = Stdlib.( + ) ctx.nbase ctx.ndivs in
      ctx.divs <- (la, d) :: ctx.divs;
      ctx.ndivs <- Stdlib.( + ) ctx.ndivs 1;
      lin_var v
  | Mod (a, d) ->
      if d <= 0 then raise (Nonlinear "modulus by non-positive literal");
      (* a mod d = a - d * floor(a/d), sharing the lowering of [a] *)
      let la = lower ctx ~lookup a in
      let v = Stdlib.( + ) ctx.nbase ctx.ndivs in
      ctx.divs <- (la, d) :: ctx.divs;
      ctx.ndivs <- Stdlib.( + ) ctx.ndivs 1;
      lin_add la (lin_scale (-d) (lin_var v))
  | Abs _ -> raise (Nonlinear "abs() outside a comparison atom")

(* Convert the accumulated context + constraints into a {!Bset}. *)
let lin_to_array ~nvars l =
  let a = Array.make nvars 0 in
  List.iter (fun (v, c) -> a.(v) <- Stdlib.( + ) a.(v) c) l.terms;
  a

let ctx_defs ctx ~nvars : Bset.def option array =
  let divs = List.rev ctx.divs in
  Array.of_list
    (List.map
       (fun ((num : lin), den) ->
         Some
           { Bset.num = lin_to_array ~nvars num; dk = num.const; den })
       divs)

(* Build a basic set over [nbase] visible dims from lowered equality and
   inequality linear forms ([eqs] meaning l = 0, [ges] meaning l >= 0). *)
let to_bset ctx ~eqs ~ges : Bset.t =
  let nvars = Stdlib.( + ) ctx.nbase ctx.ndivs in
  let defs = ctx_defs ctx ~nvars in
  let cons =
    List.map (fun l -> Bset.con_eq (lin_to_array ~nvars l) l.const) eqs
    @ List.map (fun l -> Bset.con_ge (lin_to_array ~nvars l) l.const) ges
  in
  { Bset.nvis = ctx.nbase; defs; cons }

(* Conservative-but-tight interval of an expression given per-variable
   inclusive intervals.  Exact for affine terms; [Mod]/[Fdiv] use the
   standard monotone rules. *)
let rec interval (env : string -> int * int) (e : t) : int * int =
  match e with
  | Var s -> env s
  | Int n -> (n, n)
  | Neg a ->
      let lo, hi = interval env a in
      (-hi, -lo)
  | Add (a, b) ->
      let la, ha = interval env a and lb, hb = interval env b in
      (Stdlib.( + ) la lb, Stdlib.( + ) ha hb)
  | Sub (a, b) ->
      let la, ha = interval env a and lb, hb = interval env b in
      (Stdlib.( - ) la hb, Stdlib.( - ) ha lb)
  | Mul (a, b) ->
      let la, ha = interval env a and lb, hb = interval env b in
      let products =
        [
          Stdlib.( * ) la lb;
          Stdlib.( * ) la hb;
          Stdlib.( * ) ha lb;
          Stdlib.( * ) ha hb;
        ]
      in
      (List.fold_left min max_int products, List.fold_left max min_int products)
  | Fdiv (a, d) ->
      let lo, hi = interval env a in
      (Tenet_util.Int_math.fdiv lo d, Tenet_util.Int_math.fdiv hi d)
  | Mod (a, d) ->
      let lo, hi = interval env a in
      if Stdlib.( - ) hi lo >= Stdlib.( - ) d 1 then (0, Stdlib.( - ) d 1)
      else begin
        let flo = Tenet_util.Int_math.fmod lo d
        and fhi = Tenet_util.Int_math.fmod hi d in
        if flo <= fhi then (flo, fhi) else (0, Stdlib.( - ) d 1)
      end
  | Abs a ->
      let lo, hi = interval env a in
      if lo >= 0 then (lo, hi)
      else if hi <= 0 then (-hi, -lo)
      else (0, max (-lo) hi)
