(** Exact integer-point counting over basic sets — the replacement for the
    Barvinok library used by the original TENET.

    [count] is the number of distinct assignments to the {e visible}
    dimensions for which the existential dimensions can be completed.  The
    engine normalizes and Gaussian-substitutes equalities, orders variables
    so each is bounded by its predecessors, and enumerates with per-level
    bound propagation; dimensions unreferenced by later constraints
    contribute closed-form width factors (so boxes cost O(dims)).  See the
    implementation header for the full algorithm. *)

exception Unbounded of string
(** Raised when a visible dimension has no finite bounds. *)

val count_bset : Bset.t -> int
val is_empty_bset : Bset.t -> bool
val mem_bset : Bset.t -> int array -> bool
val iter_bset : Bset.t -> (int array -> unit) -> unit
val sample_bset : Bset.t -> int array option

val count_union : Bset.t list -> int
(** Cardinality of a union, counting overlaps once. *)

val iter_union : Bset.t list -> (int array -> unit) -> unit
val mem_union : Bset.t list -> int array -> bool
val is_empty_union : Bset.t list -> bool

val make_mem_bset : Bset.t -> int array -> bool
(** Precompiled membership tester; compiles once, then answers queries in
    time proportional to the constraint count. *)

val make_mem_union : Bset.t list -> int array -> bool

(** {2 Parametric counting}

    The parametric planner treats the {e leading} [n_params] visible
    dimensions as free size parameters and returns the cardinality of
    the remaining visible dimensions as a quasi-polynomial in those
    parameters: compile once, then answer any concrete size by
    {!Qpoly.eval} — no re-planning and no enumeration.  [None] means the
    set resisted symbolic treatment (dedup plan, unprovable existential
    suffix, unsupported bound shape); callers fall back to the concrete
    path.  The [count.template_hits] / [count.template_fallbacks]
    counters record the split. *)

val count_bset_param :
  n_params:int -> ?assume:(int * int) array -> Bset.t -> Qpoly.t option
(** [count_bset_param ~n_params ~assume b] is the count of [b]'s visible
    dims past the first [n_params], as a quasi-polynomial in variables
    [0..n_params-1].  [assume] gives each parameter's inclusive range
    (default [(1, 4096)] per parameter): the result is certified exact
    for every parameter assignment inside it.  Under
    [TENET_COUNT_VERIFY=1] each template is additionally spot-checked
    against the concrete engine at in-range assignments
    ({!Verify_mismatch} on disagreement). *)

val count_union_param :
  n_params:int -> ?assume:(int * int) array -> Bset.t list -> Qpoly.t option
(** Parametric cardinality of a union via inclusion–exclusion (at most 4
    same-arity disjuncts, like {!count_union}'s fast path); [None] when
    any intersection term resists. *)

val cache_clear : unit -> unit
(** Drop every memoized cardinality/emptiness result.  Counting results
    are deterministic, so this only matters for benchmarks and tests that
    want cold-cache timings or counter values. *)

(** {2 Counting sanitizer}

    With [TENET_COUNT_VERIFY=1] in the environment (or
    [set_verify_mode (Some true)]), every cardinality produced through
    the symbolic/quasi-polynomial fast path is re-derived through the
    plain enumeration path and compared; a disagreement raises
    {!Verify_mismatch} instead of propagating a silently wrong count.
    Cross-checks happen at cache-fill time, so each distinct constraint
    system is verified once per cache epoch; the
    [count.verify_checks] / [count.verify_mismatches] telemetry counters
    record the coverage. *)

exception
  Verify_mismatch of { fast : int; reference : int; set : string }
(** The fast-path count, the enumeration reference, and a rendering of
    the offending set. *)

val verify_mode : unit -> bool
(** Whether cross-checking is currently armed. *)

val set_verify_mode : bool option -> unit
(** [Some b] forces verification on/off regardless of the environment;
    [None] returns to [TENET_COUNT_VERIFY]. *)

(**/**)

val verify_oracle_for_tests : (Bset.t -> int) option ref
(* Test hook: replaces the enumeration reference so the mismatch path can
   be exercised deterministically. *)
