(** Exact integer-point counting over basic sets — the replacement for the
    Barvinok library used by the original TENET.

    [count] is the number of distinct assignments to the {e visible}
    dimensions for which the existential dimensions can be completed.  The
    engine normalizes and Gaussian-substitutes equalities, orders variables
    so each is bounded by its predecessors, and enumerates with per-level
    bound propagation; dimensions unreferenced by later constraints
    contribute closed-form width factors (so boxes cost O(dims)).  See the
    implementation header for the full algorithm. *)

exception Unbounded of string
(** Raised when a visible dimension has no finite bounds. *)

val count_bset : Bset.t -> int
val is_empty_bset : Bset.t -> bool
val mem_bset : Bset.t -> int array -> bool
val iter_bset : Bset.t -> (int array -> unit) -> unit
val sample_bset : Bset.t -> int array option

val count_union : Bset.t list -> int
(** Cardinality of a union, counting overlaps once. *)

val iter_union : Bset.t list -> (int array -> unit) -> unit
val mem_union : Bset.t list -> int array -> bool
val is_empty_union : Bset.t list -> bool

val make_mem_bset : Bset.t -> int array -> bool
(** Precompiled membership tester; compiles once, then answers queries in
    time proportional to the constraint count. *)

val make_mem_union : Bset.t list -> int array -> bool

val cache_clear : unit -> unit
(** Drop every memoized cardinality/emptiness result.  Counting results
    are deterministic, so this only matters for benchmarks and tests that
    want cold-cache timings or counter values. *)
