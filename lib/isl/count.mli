(** Exact integer-point counting over basic sets — the replacement for the
    Barvinok library used by the original TENET.

    [count] is the number of distinct assignments to the {e visible}
    dimensions for which the existential dimensions can be completed.  The
    engine normalizes and Gaussian-substitutes equalities, orders variables
    so each is bounded by its predecessors, and enumerates with per-level
    bound propagation; dimensions unreferenced by later constraints
    contribute closed-form width factors (so boxes cost O(dims)).  See the
    implementation header for the full algorithm. *)

exception Unbounded of string
(** Raised when a visible dimension has no finite bounds. *)

val count_bset : Bset.t -> int
val is_empty_bset : Bset.t -> bool
val mem_bset : Bset.t -> int array -> bool
val iter_bset : Bset.t -> (int array -> unit) -> unit
val sample_bset : Bset.t -> int array option

val count_union : Bset.t list -> int
(** Cardinality of a union, counting overlaps once. *)

val iter_union : Bset.t list -> (int array -> unit) -> unit
val mem_union : Bset.t list -> int array -> bool
val is_empty_union : Bset.t list -> bool

val make_mem_bset : Bset.t -> int array -> bool
(** Precompiled membership tester; compiles once, then answers queries in
    time proportional to the constraint count. *)

val make_mem_union : Bset.t list -> int array -> bool

val cache_clear : unit -> unit
(** Drop every memoized cardinality/emptiness result.  Counting results
    are deterministic, so this only matters for benchmarks and tests that
    want cold-cache timings or counter values. *)

(** {2 Counting sanitizer}

    With [TENET_COUNT_VERIFY=1] in the environment (or
    [set_verify_mode (Some true)]), every cardinality produced through
    the symbolic/quasi-polynomial fast path is re-derived through the
    plain enumeration path and compared; a disagreement raises
    {!Verify_mismatch} instead of propagating a silently wrong count.
    Cross-checks happen at cache-fill time, so each distinct constraint
    system is verified once per cache epoch; the
    [count.verify_checks] / [count.verify_mismatches] telemetry counters
    record the coverage. *)

exception
  Verify_mismatch of { fast : int; reference : int; set : string }
(** The fast-path count, the enumeration reference, and a rendering of
    the offending set. *)

val verify_mode : unit -> bool
(** Whether cross-checking is currently armed. *)

val set_verify_mode : bool option -> unit
(** [Some b] forces verification on/off regardless of the environment;
    [None] returns to [TENET_COUNT_VERIFY]. *)

(**/**)

val verify_oracle_for_tests : (Bset.t -> int) option ref
(* Test hook: replaces the enumeration reference so the mismatch path can
   be exercised deterministically. *)
