(** Parser for the ISL-like textual notation of sets and relations.

    Examples accepted:
    {v
      { S[i, j] : 0 <= i < 4 and 0 <= j < 3 }
      { S[i,j,k] -> PE[i mod 8, j mod 8] : 0 <= i < 64 }
      { PE[i,j] -> PE[x,y] : (x = i and y = j+1) or (x = i+1 and y = j) }
      { S[k,c,ox,oy,rx,ry] -> T[fl(k/8), fl(c/8), oy, k%8 + c%8 + ox] }
    v}

    Expressions: [+ - *], [mod]/[%], [floor(e/c)]/[fl(e/c)]/[e/c] with a
    positive literal divisor, and [abs(e)] inside comparisons with the
    absolute value on the small side.  Comparison chains
    ([0 <= i < n]) are expanded; [or] produces unions (DNF); [!=] expands
    into two disjuncts.  Output tuples of maps may contain arbitrary
    quasi-affine expressions over the input dims. *)

exception Parse_error of string
(** Parse errors carry the offending offset and a source fragment
    ("expected ] at offset 12 near \"… i, j) : 0 …\""), so callers can
    point at the bad sub-expression instead of echoing the whole
    string. *)

val set : string -> Set.t
val map : string -> Map.t

val expr : dims:string list -> string -> Aff.t
(** Parse one stand-alone quasi-affine expression over the given
    dimension names (e.g. ["i%8 + j%8 + k"]). *)

val exprs : dims:string list -> string -> Aff.t list
(** Split on top-level commas and parse each piece with {!expr}. *)
