(* Quasi-polynomials over integer variables, with symbolic summation —
   the "Barvinok-lite" core behind closed-form counting (see Count).

   A quasi-polynomial here is a sum of rational-coefficient monomials
   whose bases are either plain variables or floor atoms
   [floor((c.x + k) / d)].  The fragment is exactly what TENET's sets
   produce: box bounds, simplex/trapezoid couplings, and the mod/fdiv
   forms introduced by dataflow stamps, tiling and skew.

   Two design points make the engine exact:

   - Floor atoms are kept *canonical*: the denominator is > 1, every
     numerator coefficient and the constant lie in [0, den), and the
     gcd of numerator and denominator is 1.  Canonicity is what lets
     syntactically different bounds cancel — e.g. the pair of
     inequalities materialized from a div definition
     [e = floor(x/d)] yields the width
     [floor(x/d) - ceil((x-d+1)/d) + 1], and because
     [ceil((x-d+1)/d)] canonicalizes to [floor(x/d)] the width
     collapses to the constant 1, so div-defined existentials vanish
     from the symbolic count entirely.
   - Summation of a polynomial-in-v integrand between bounds that may
     themselves be floor atoms uses Faulhaber antidifferences
     [F_d(n) = sum_{t=0}^{n} t^d]: [sum_{v=A}^{B} v^d = F_d(B) -
     F_d(A-1)], a polynomial identity that telescopes for every
     integer pair with [B >= A - 1] (callers certify that side
     condition; see Count).  Summation is refused ([None]) when the
     integrand mentions [v] inside a floor atom — that is the truly
     periodic case needing residue splits, and Count falls back to
     enumerating that single level. *)

module IM = Tenet_util.Int_math

(* ------------------------------------------------------------------ *)
(* Exact rationals over machine integers.                              *)
(* ------------------------------------------------------------------ *)

module Q = struct
  type t = { n : int; d : int } (* d > 0, gcd(|n|, d) = 1 *)

  let make n d =
    assert (d <> 0);
    let s = if d < 0 then -1 else 1 in
    let n = s * n and d = s * d in
    let g = IM.gcd n d in
    if g = 0 then { n = 0; d = 1 } else { n = n / g; d = d / g }

  let of_int n = { n; d = 1 }
  let zero = of_int 0
  let one = of_int 1
  let is_zero q = q.n = 0
  let add a b = make ((a.n * b.d) + (b.n * a.d)) (a.d * b.d)
  let mul a b = make (a.n * b.n) (a.d * b.d)
  let neg a = { a with n = -a.n }
  let sub a b = add a (neg b)
  let sign a = compare a.n 0
  let compare a b = compare (a.n * b.d) (b.n * a.d)
  let to_int_opt q = if q.d = 1 then Some q.n else None

  let to_string q =
    if q.d = 1 then string_of_int q.n else Printf.sprintf "%d/%d" q.n q.d
end

(* ------------------------------------------------------------------ *)
(* Integer affine forms.                                               *)
(* ------------------------------------------------------------------ *)

type lin = { lt : (int * int) list; lk : int }
(* [lt] sorted by variable index, coefficients nonzero *)

let lin (terms : (int * int) list) (k : int) : lin =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (v, c) ->
      match Hashtbl.find_opt tbl v with
      | Some r -> r := !r + c
      | None -> Hashtbl.add tbl v (ref c))
    terms;
  let lt =
    Hashtbl.fold (fun v r acc -> if !r <> 0 then (v, !r) :: acc else acc) tbl []
  in
  { lt = List.sort (fun (a, _) (b, _) -> compare a b) lt; lk = k }

let lin_const k = { lt = []; lk = k }

let lin_scale c (l : lin) : lin =
  if c = 0 then lin_const 0
  else { lt = List.map (fun (v, k) -> (v, c * k)) l.lt; lk = c * l.lk }

let lin_add (a : lin) (b : lin) : lin = lin (a.lt @ b.lt) (a.lk + b.lk)
let lin_mentions v (l : lin) = List.exists (fun (w, _) -> w = v) l.lt

let lin_subst v ~(by : lin) (l : lin) : lin =
  match List.assoc_opt v l.lt with
  | None -> l
  | Some c ->
      let rest = { l with lt = List.filter (fun (w, _) -> w <> v) l.lt } in
      lin_add rest (lin_scale c by)

let lin_eval (env : int -> int) (l : lin) : int =
  List.fold_left (fun acc (v, c) -> acc + (c * env v)) l.lk l.lt

let lin_interval (env : int -> int * int) (l : lin) : int * int =
  List.fold_left
    (fun (lo, hi) (v, c) ->
      let vlo, vhi = env v in
      if c >= 0 then (lo + (c * vlo), hi + (c * vhi))
      else (lo + (c * vhi), hi + (c * vlo)))
    (l.lk, l.lk) l.lt

(* ------------------------------------------------------------------ *)
(* Monomials and quasi-polynomials.                                    *)
(* ------------------------------------------------------------------ *)

type base = Var of int | Floor of { fnum : lin; fden : int }
(* [Floor] is canonical: fden >= 2, fnum has at least one variable term,
   all fnum coefficients and the constant in [0, fden), gcd 1. *)

type mono = (base * int) list (* sorted by base, exponents >= 1 *)
type t = (mono * Q.t) list (* sorted by mono, coefficients nonzero *)

let zero : t = []
let const q : t = if Q.is_zero q then [] else [ ([], q) ]
let of_int n = const (Q.of_int n)
let one = of_int 1

let normalize (terms : (mono * Q.t) list) : t =
  let sorted =
    List.sort (fun (ma, _) (mb, _) -> compare ma mb) terms
  in
  let rec combine = function
    | [] -> []
    | (m, c) :: rest ->
        let rec take acc = function
          | (m', c') :: tl when m' = m -> take (Q.add acc c') tl
          | tl -> (acc, tl)
        in
        let c, tl = take c rest in
        if Q.is_zero c then combine tl else (m, c) :: combine tl
  in
  combine sorted

let of_lin (l : lin) : t =
  normalize
    (([], Q.of_int l.lk)
    :: List.map (fun (v, c) -> ([ (Var v, 1) ], Q.of_int c)) l.lt)

let var v : t = [ ([ (Var v, 1) ], Q.one) ]
let add (a : t) (b : t) : t = normalize (a @ b)
let scale q (t : t) : t = if Q.is_zero q then [] else List.map (fun (m, c) -> (m, Q.mul q c)) t
let neg t = scale (Q.of_int (-1)) t
let sub a b = add a (neg b)

let mul_mono (a : mono) (b : mono) : mono =
  let rec go a b =
    match (a, b) with
    | [], m | m, [] -> m
    | (ba, ea) :: ta, (bb, eb) :: tb ->
        let c = compare ba bb in
        if c = 0 then (ba, ea + eb) :: go ta tb
        else if c < 0 then (ba, ea) :: go ta b
        else (bb, eb) :: go a tb
  in
  go a b

let mul (a : t) (b : t) : t =
  normalize
    (List.concat_map
       (fun (ma, ca) ->
         List.map (fun (mb, cb) -> (mul_mono ma mb, Q.mul ca cb)) b)
       a)

let rec pow (t : t) e : t =
  assert (e >= 0);
  if e = 0 then one else if e = 1 then t else mul t (pow t (e - 1))

(* floor((l) / den), canonicalized.  Integer multiples of [den] are
   pulled out of the floor term by term ([floor((c*x + r)/d) =
   (c/d |> fdiv)*x + floor(((c mod d)*x + r)/d)] is valid per variable),
   then the residual atom is gcd-reduced. *)
let floor_lin (l : lin) (den : int) : t =
  assert (den > 0);
  if den = 1 then of_lin l
  else begin
    let outer = ref [] and inner = ref [] in
    List.iter
      (fun (v, c) ->
        let q = IM.fdiv c den in
        let r = c - (q * den) in
        if q <> 0 then outer := (v, q) :: !outer;
        if r <> 0 then inner := (v, r) :: !inner)
      l.lt;
    let qk = IM.fdiv l.lk den in
    let rk = l.lk - (qk * den) in
    let t_outer = of_lin { lt = List.rev !outer; lk = qk } in
    match List.rev !inner with
    | [] -> t_outer (* floor(rk / den) = 0 because rk is in [0, den) *)
    | inner_lt ->
        let g =
          List.fold_left (fun g (_, c) -> IM.gcd g c) (IM.gcd rk den) inner_lt
        in
        let fnum =
          { lt = List.map (fun (v, c) -> (v, c / g)) inner_lt; lk = rk / g }
        in
        let den' = den / g in
        if den' = 1 then add t_outer (of_lin fnum)
        else add t_outer [ ([ (Floor { fnum; fden = den' }, 1) ], Q.one) ]
  end

let ceil_lin (l : lin) (den : int) : t =
  (* ceil(l / den) = floor((l + den - 1) / den) *)
  floor_lin { l with lk = l.lk + den - 1 } den

let is_const (t : t) : int option =
  match t with
  | [] -> Some 0
  | [ ([], c) ] -> Q.to_int_opt c
  | _ -> None

let mono_degree_in v (m : mono) =
  List.fold_left
    (fun acc (b, e) -> match b with Var w when w = v -> acc + e | _ -> acc)
    0 m

let degree_in v (t : t) =
  List.fold_left (fun acc (m, _) -> max acc (mono_degree_in v m)) 0 t

let mentions_floor_of v (t : t) =
  List.exists
    (fun (m, _) ->
      List.exists
        (function
          | Floor { fnum; _ }, _ -> lin_mentions v fnum
          | Var _, _ -> false)
        m)
    t

let mentions v (t : t) =
  mentions_floor_of v t || List.exists (fun (m, _) -> mono_degree_in v m > 0) t

let subst v ~(by : lin) (t : t) : t =
  List.fold_left
    (fun acc (m, c) ->
      let term =
        List.fold_left
          (fun acc (b, e) ->
            let bt =
              match b with
              | Var w when w = v -> of_lin by
              | Var _ -> [ ([ (b, 1) ], Q.one) ]
              | Floor { fnum; fden } ->
                  if lin_mentions v fnum then
                    floor_lin (lin_subst v ~by fnum) fden
                  else [ ([ (b, 1) ], Q.one) ]
            in
            mul acc (pow bt e))
          (const c) m
      in
      add acc term)
    zero t

(* ------------------------------------------------------------------ *)
(* Faulhaber antidifferences.                                          *)
(* ------------------------------------------------------------------ *)

let max_degree = 12

(* [faulhaber.(d).(k)] is the coefficient of n^k in
   F_d(n) = sum_{t=0}^{n} t^d, from the telescoping recurrence
   (n+1)^{d+1} = sum_{k=0}^{d} C(d+1,k) F_k(n).  Precomputed at module
   init so concurrent counting domains never mutate shared state. *)
let faulhaber : Q.t array array =
  let tbl = Array.make (max_degree + 1) [||] in
  for d = 0 to max_degree do
    let acc = Array.init (d + 2) (fun k -> Q.of_int (IM.binomial (d + 1) k)) in
    for k = 0 to d - 1 do
      let fk = tbl.(k) in
      let c = Q.of_int (IM.binomial (d + 1) k) in
      for i = 0 to k + 1 do
        acc.(i) <- Q.sub acc.(i) (Q.mul c fk.(i))
      done
    done;
    for i = 0 to d + 1 do
      acc.(i) <- Q.mul acc.(i) (Q.make 1 (d + 1))
    done;
    tbl.(d) <- acc
  done;
  tbl

let eval_poly_at (coeffs : Q.t array) (x : t) : t =
  let acc = ref zero in
  for i = Array.length coeffs - 1 downto 0 do
    acc := add (mul !acc x) (const coeffs.(i))
  done;
  !acc

(* sum_{v=lb}^{ub} body, provided [body] is polynomial in [v] (no floor
   atom mentions it), the bounds do not mention [v], and the degree is
   within the Faulhaber table.  The result telescopes exactly for every
   integer assignment with ub >= lb - 1; the caller certifies that. *)
let sum_var ~v ~(lb : t) ~(ub : t) (body : t) : t option =
  if mentions_floor_of v body || mentions v lb || mentions v ub then None
  else begin
    let d = degree_in v body in
    if d > max_degree then None
    else begin
      let coeffs = Array.make (d + 1) zero in
      List.iter
        (fun (m, c) ->
          let k = mono_degree_in v m in
          let m' = List.filter (fun (b, _) -> b <> Var v) m in
          coeffs.(k) <- add coeffs.(k) [ (m', c) ])
        body;
      let lbm1 = sub lb one in
      let acc = ref zero in
      for k = 0 to d do
        if coeffs.(k) <> [] then begin
          let f = faulhaber.(k) in
          let s = sub (eval_poly_at f ub) (eval_poly_at f lbm1) in
          acc := add !acc (mul coeffs.(k) s)
        end
      done;
      Some !acc
    end
  end

(* ------------------------------------------------------------------ *)
(* Evaluation.                                                         *)
(* ------------------------------------------------------------------ *)

let eval (env : int -> int) (t : t) : int =
  let q =
    List.fold_left
      (fun acc (m, c) ->
        let mv =
          List.fold_left
            (fun acc (b, e) ->
              let bv =
                match b with
                | Var v -> env v
                | Floor { fnum; fden } -> IM.fdiv (lin_eval env fnum) fden
              in
              acc * IM.pow bv e)
            1 m
        in
        Q.add acc (Q.mul c (Q.of_int mv)))
      Q.zero t
  in
  match Q.to_int_opt q with
  | Some n -> n
  | None -> invalid_arg "Qpoly.eval: non-integral value"

(* Conservative interval of [t] over a box of variable intervals. *)
let imul (alo, ahi) (blo, bhi) =
  let p1 = alo * blo and p2 = alo * bhi and p3 = ahi * blo and p4 = ahi * bhi in
  (min (min p1 p2) (min p3 p4), max (max p1 p2) (max p3 p4))

let ipow (lo, hi) e =
  if e = 0 then (1, 1)
  else if e land 1 = 1 then (IM.pow lo e, IM.pow hi e)
  else begin
    let a = IM.pow lo e and b = IM.pow hi e in
    let mx = max a b in
    if lo <= 0 && hi >= 0 then (0, mx) else (min a b, mx)
  end

let interval (env : int -> int * int) (t : t) : Q.t * Q.t =
  List.fold_left
    (fun (alo, ahi) (m, c) ->
      let mlo, mhi =
        List.fold_left
          (fun acc (b, e) ->
            let biv =
              match b with
              | Var v -> env v
              | Floor { fnum; fden } ->
                  let nlo, nhi = lin_interval env fnum in
                  (IM.fdiv nlo fden, IM.fdiv nhi fden)
            in
            imul acc (ipow biv e))
          (1, 1) m
      in
      let tlo, thi =
        if Q.sign c >= 0 then
          (Q.mul c (Q.of_int mlo), Q.mul c (Q.of_int mhi))
        else (Q.mul c (Q.of_int mhi), Q.mul c (Q.of_int mlo))
      in
      (Q.add alo tlo, Q.add ahi thi))
    (Q.zero, Q.zero) t

let min_ge (env : int -> int * int) (t : t) (k : int) : bool =
  let lo, _ = interval env t in
  Q.compare lo (Q.of_int k) >= 0

(* Provably nonnegative difference: [a - b >= k] everywhere on the box,
   by constant folding first and interval arithmetic second. *)
let prove_ge (env : int -> int * int) (a : t) (k : int) : bool =
  match is_const a with Some c -> c >= k | None -> min_ge env a k

let to_string_with (name : int -> string) (t : t) : string =
  let base_str = function
    | Var v -> name v
    | Floor { fnum; fden } ->
        let terms =
          String.concat " + "
            (List.map (fun (v, c) -> Printf.sprintf "%d*%s" c (name v)) fnum.lt)
        in
        Printf.sprintf "floor((%s + %d)/%d)" terms fnum.lk fden
  in
  let mono_str m =
    String.concat "*"
      (List.map
         (fun (b, e) ->
           if e = 1 then base_str b else Printf.sprintf "%s^%d" (base_str b) e)
         m)
  in
  match t with
  | [] -> "0"
  | _ ->
      String.concat " + "
        (List.map
           (fun (m, c) ->
             if m = [] then Q.to_string c
             else if c = Q.one then mono_str m
             else Printf.sprintf "%s*%s" (Q.to_string c) (mono_str m))
           t)

let to_string (t : t) : string = to_string_with (Printf.sprintf "x%d") t
