(* Exact integer-point counting over {!Bset} basic sets.

   Semantics: [count b] is the number of distinct assignments to the
   *visible* dimensions of [b] for which the existential dimensions can be
   completed so that all constraints (including the implicit bounds of
   floor-division definitions) hold.

   Algorithm (replaces Barvinok counting in the original TENET):
   1. materialize div definitions as inequality pairs and normalize;
   2. Gaussian-substitute unit-coefficient equalities (existentials
      freely; visible dims whenever every other variable in the equality
      is functionally determined by the remaining dimensions — an alive
      visible, or a div-defined existential whose definition bottoms out
      in alive visibles — which keeps the count invariant);
   3. order variables greedily so every variable is bounded by its
      predecessors, preferring visible variables first;
   4. count symbolically, level by level, with a quasi-polynomial
      summation engine ({!Qpoly}, "Barvinok-lite"): working from the
      innermost visible level outward, the partial count below each
      level is kept as a quasi-polynomial in the outer variables, and
      each level integrates it in closed form between its (dominant)
      lower and upper bound via Faulhaber antidifferences, with floor
      atoms canonicalized so mod/fdiv bounds cancel exactly.  The
      existential suffix is discharged symbolically too when every
      existential level provably has a nonempty value interval.  Each
      level certifies its own side conditions (bound dominance,
      nonnegative width, polynomial integrand) with exact interval
      arithmetic; a level that fails falls back to the pre-existing
      enumeration for that level only, keeping the older escapes:
      - a variable not referenced by any later constraint contributes a
        width factor instead of being enumerated (boxes cost O(dims));
      - once the remaining visible suffix is past every variable the
        existential constraints mention, satisfiability is checked once
        and the suffix is counted arithmetically (interval-width tail,
        degree-1 Faulhaber with exact clamps);
      - the per-level loops only remain for levels outside the
        supported fragment.
   5. If the greedy order is forced to place an existential before a
      visible variable (e.g. a range projection where a visible dim is
      only defined through existentials — rare now that step 2 usually
      eliminates such dims), enumeration falls back to collecting
      distinct visible tuples in a hash table.

   On top of the enumeration engine sits a bounded, domain-safe memo
   cache keyed by the canonicalized compiled constraint system: DSE
   sweeps re-count structurally identical sets hundreds of times, and a
   cache hit skips enumeration entirely (see docs/performance.md). *)

module IM = Tenet_util.Int_math
module Obs = Tenet_obs

(* Telemetry cells, resolved once so enabled-mode bumps are atomic adds
   and disabled-mode bumps are a single bool check (see docs/performance.md
   for the counter glossary). *)
let c_bset_calls = Obs.counter "count.bset_calls"
let c_points = Obs.counter "count.points_enumerated"
let c_closed = Obs.counter "count.closed_form_hits"
let c_closed_tail = Obs.counter "count.closed_tail_hits"
let c_faulhaber = Obs.counter "count.faulhaber_hits"
let c_qpoly = Obs.counter "count.qpoly_hits"
let c_qpoly_fb = Obs.counter "count.qpoly_fallbacks"
let c_tpl = Obs.counter "count.template_hits"
let c_tpl_fb = Obs.counter "count.template_fallbacks"
let c_fm = Obs.counter "count.fm_derivations"
let c_dedup = Obs.counter "count.dedup_fallbacks"
let c_cache_hits = Obs.counter "count.cache_hits"
let c_cache_misses = Obs.counter "count.cache_misses"
let c_cache_evictions = Obs.counter "count.cache_evictions"
let c_verify_checks = Obs.counter "count.verify_checks"
let c_verify_mismatches = Obs.counter "count.verify_mismatches"

(* --- counting sanitizer (TENET_COUNT_VERIFY) ----------------------------

   When armed, every cardinality computed through the symbolic/qpoly fast
   path is re-derived through the plain enumeration path (closed tails
   but no symbolic chain) and the two must agree.  This is CI's soundness
   mode for the Barvinok-lite engine: a disagreement raises
   [Verify_mismatch] instead of silently propagating a wrong volume.
   Verification happens at cache-fill time, so each distinct constraint
   system is cross-checked once per cache epoch. *)

exception Verify_mismatch of { fast : int; reference : int; set : string }

let () =
  Printexc.register_printer (function
    | Verify_mismatch { fast; reference; set } ->
        Some
          (Printf.sprintf
             "Count.Verify_mismatch: symbolic count %d <> enumerated %d on %s"
             fast reference set)
    | _ -> None)

let verify_forced : bool option ref = ref None

let verify_env =
  lazy
    (match Sys.getenv_opt "TENET_COUNT_VERIFY" with
    | Some ("1" | "true" | "yes" | "on") -> true
    | _ -> false)

let verify_mode () =
  match !verify_forced with Some b -> b | None -> Lazy.force verify_env

let set_verify_mode b = verify_forced := b

(* Test hook: replaces the enumeration reference with a stub so the
   mismatch path itself can be exercised. *)
let verify_oracle_for_tests : (Bset.t -> int) option ref = ref None

exception Unbounded of string

type con = Bset.con = { a : int array; k : int; eq : bool }

(* ------------------------------------------------------------------ *)
(* Compilation: materialize divs, normalize, Gaussian substitution.    *)
(* ------------------------------------------------------------------ *)

type compiled = {
  nvis : int;
  nvars : int;
  is_vis : bool array;
  alive : bool array; (* vars not eliminated by substitution *)
  cons : con array;
}

exception Empty_set

let materialize_defs (b : Bset.t) : con list =
  let nvars = Bset.nvars b in
  let out = ref [] in
  Array.iteri
    (fun e def ->
      match def with
      | None -> ()
      | Some (d : Bset.def) ->
          let v = b.Bset.nvis + e in
          (* num.x + dk - den*v >= 0 *)
          let a1 = Array.make nvars 0 in
          Array.iteri (fun i c -> a1.(i) <- c) d.Bset.num;
          a1.(v) <- a1.(v) - d.Bset.den;
          out := { a = a1; k = d.Bset.dk; eq = false } :: !out;
          (* den*v - num.x - dk + den - 1 >= 0 *)
          let a2 = Array.make nvars 0 in
          Array.iteri (fun i c -> a2.(i) <- -c) d.Bset.num;
          a2.(v) <- a2.(v) + d.Bset.den;
          out := { a = a2; k = -d.Bset.dk + d.Bset.den - 1; eq = false } :: !out)
    b.Bset.defs;
  !out

(* Normalize one constraint; raise [Empty_set] on constant contradiction,
   return [None] for a trivially true constraint. *)
let normalize (c : con) : con option =
  let g = Tenet_util.Ivec.content c.a in
  if g = 0 then
    if (c.eq && c.k <> 0) || ((not c.eq) && c.k < 0) then raise Empty_set
    else None
  else if c.eq then
    if c.k mod g <> 0 then raise Empty_set
    else Some { c with a = Array.map (fun x -> x / g) c.a; k = c.k / g }
  else Some { c with a = Array.map (fun x -> x / g) c.a; k = IM.fdiv c.k g }

(* Substitute variable [v] using equality [eqc] (with coefficient +-1 on
   [v]) into constraint [c]. *)
let substitute ~v ~(eqc : con) (c : con) : con option =
  if c.a.(v) = 0 then Some c
  else begin
    let s = eqc.a.(v) in
    (* eqc: s*v + rest = 0 with s = +-1, so v = -s*rest.  Adding
       m * eqc with m = -c.a.(v) * s zeroes v's coefficient in c. *)
    let m = -c.a.(v) * s in
    let a = Array.init (Array.length c.a) (fun i -> c.a.(i) + (m * eqc.a.(i))) in
    normalize { a; k = c.k + (m * eqc.k); eq = c.eq }
  end

(* [~elim_vis:false] keeps all visible variables alive so that iteration
   can report full visible tuples.  [~protect:k] additionally forbids
   eliminating visible dims [0..k-1]: the parametric planner needs the
   size parameters to survive compilation so the symbolic chain can stop
   at them (a parameter folded into another dim's expression would no
   longer be a free variable of the resulting quasi-polynomial). *)
let compile ?(elim_vis = true) ?(protect = 0) (b : Bset.t) : compiled option =
  Obs.incr c_bset_calls;
  let nvars = Bset.nvars b in
  let nvis = b.Bset.nvis in
  try
    let cons0 = List.filter_map normalize (materialize_defs b @ b.Bset.cons) in
    (* Unify structurally identical div definitions: two existentials
       with the same numerator, offset and denominator denote the same
       value, so an equality between them is sound.  Meets and theta
       compositions routinely introduce such duplicates (e.g. three
       copies of [floor(i/8)]), and without the link each copy blocks a
       different visible variable from being determined.  The equalities
       have unit coefficients, so the Gaussian pass below absorbs them. *)
    let unif = ref [] in
    let ndivs = Array.length b.Bset.defs in
    for i = 0 to ndivs - 1 do
      match b.Bset.defs.(i) with
      | None -> ()
      | Some (di : Bset.def) ->
          for j = i + 1 to ndivs - 1 do
            match b.Bset.defs.(j) with
            | Some (dj : Bset.def)
              when di.Bset.den = dj.Bset.den
                   && di.Bset.dk = dj.Bset.dk
                   && di.Bset.num = dj.Bset.num ->
                let a = Array.make nvars 0 in
                a.(nvis + i) <- 1;
                a.(nvis + j) <- -1;
                unif := { a; k = 0; eq = true } :: !unif
            | _ -> ()
          done
    done;
    let cons = ref (!unif @ cons0) in
    let alive = Array.make nvars true in
    let is_vis = Array.init nvars (fun i -> i < nvis) in
    (* A visible dim [v] may be eliminated through an equality only when
       its defining expression is a function of the dimensions that
       remain, so that distinct reduced tuples correspond to distinct
       full tuples.  [determined ~except w] certifies that: an alive
       visible other than [except] is determined (it is enumerated); a
       div-defined existential is determined when its definition's
       support is, transitively (div defs reference earlier variables
       only, so this terminates).  Existentials without a definition,
       and definitions reaching [except] or an already-eliminated
       visible, are conservatively not determined. *)
    let rec determined ~except w =
      if w < nvis then w <> except && alive.(w)
      else
        match b.Bset.defs.(w - nvis) with
        | None -> false
        | Some (d : Bset.def) ->
            let ok = ref true in
            Array.iteri
              (fun u c -> if c <> 0 && not (determined ~except u) then ok := false)
              d.Bset.num;
            !ok
    in
    let determined_expr (c : con) ~except =
      let ok = ref true in
      Array.iteri
        (fun i coeff ->
          if i <> except && coeff <> 0 && not (determined ~except i) then
            ok := false)
        c.a;
      !ok
    in
    (* Among the eliminable variables, take the one occurring in the
       fewest *other* constraints.  This is what routes elimination to
       defined outputs (a Θ stamp appears only in its defining equality)
       rather than to an iterator: substituting an iterator away would
       spread the equality's div existentials into its box constraints,
       leaving the stamp bounded only through existentials — and that
       forces the hash-dedup fallback downstream. *)
    let occurrences v ~(excl : con) =
      List.fold_left
        (fun acc c -> if c != excl && c.a.(v) <> 0 then acc + 1 else acc)
        0 !cons
    in
    let rec pass () =
      let best = ref None in
      List.iter
        (fun c ->
          if c.eq then
            Array.iteri
              (fun v coeff ->
                if
                  alive.(v) && v >= protect
                  && abs coeff = 1
                  && (v >= nvis || (elim_vis && determined_expr c ~except:v))
                then begin
                  let occ = occurrences v ~excl:c in
                  match !best with
                  | Some (o, _, _) when o <= occ -> ()
                  | _ -> best := Some (occ, v, c)
                end)
              c.a)
        !cons;
      match !best with
      | None -> ()
      | Some (_, v, eqc) ->
          alive.(v) <- false;
          cons :=
            List.filter_map
              (fun c -> if c == eqc then None else substitute ~v ~eqc c)
              !cons;
          pass ()
    in
    pass ();
    Some { nvis; nvars; is_vis; alive; cons = Array.of_list !cons }
  with Empty_set -> None

(* ------------------------------------------------------------------ *)
(* Variable ordering.                                                  *)
(* ------------------------------------------------------------------ *)

type level_con = {
  lc_terms : (int * int) array; (* (earlier position, coeff) *)
  lc_self : int; (* coefficient of the variable at this position *)
  lc_k : int;
  lc_eq : bool;
}

type plan = {
  order : int array; (* order.(pos) = var index *)
  pos_of : int array; (* inverse; -1 for unordered/dead vars *)
  nvis_positions : int;
  dedup : bool; (* some existential precedes a visible var *)
  level_cons : level_con list array; (* constraints whose last var is here *)
  independent : bool array; (* var at pos unreferenced after pos *)
  vis_tail : int;
      (* first visible position past every visible variable the
         existential levels reference: from here on, existential
         satisfiability is already decided and the suffix counts in
         closed form.  [nvis_positions] when no such tail exists
         (including all dedup plans). *)
  sym_inner : (level_con * level_con) option;
      (* the innermost visible level's (lower, upper) bound pair when it
         is exactly one of each with unit self-coefficients — the shape
         whose width is affine in the surrounding variables, enabling
         the Faulhaber sum one level up *)
  sym : Qpoly.t option array;
      (* [sym.(pos)], when present, is the exact count of the visible
         suffix [pos, nvis_positions) as a quasi-polynomial in the
         positions before [pos] — built innermost-out by symbolic
         summation, [Some one] at [nvis_positions].  Valid for any
         assignment of the earlier positions that satisfies their level
         constraints (side conditions are certified over conservative
         per-position intervals at plan time).  All [None] on
         non-symbolic or dedup plans. *)
  sat_proven : bool;
      (* the existential suffix is satisfiable for *every* assignment
         in the certified region: each existential level provably has a
         nonempty value interval.  When set, no witness search runs and
         [sym] alone answers the count. *)
}

let make_plan ?(allow_unbounded_vis = false) ?(symbolic = false)
    (cp : compiled) : plan =
  (* Alive variables that appear in at least one constraint participate in
     enumeration.  An unconstrained existential is trivially satisfiable
     and dropped; an unconstrained visible variable makes the set
     infinite (unless the caller only needs membership tests). *)
  let appears = Array.make cp.nvars false in
  Array.iter
    (fun c -> Array.iteri (fun v coeff -> if coeff <> 0 then appears.(v) <- true) c.a)
    cp.cons;
  let vars = ref [] in
  for v = cp.nvars - 1 downto 0 do
    if cp.alive.(v) then
      if appears.(v) then vars := v :: !vars
      else if cp.is_vis.(v) && not allow_unbounded_vis then
        raise (Unbounded (Printf.sprintf "visible dim %d unconstrained" v))
  done;
  let vars = Array.of_list !vars in
  let n = Array.length vars in
  let in_order = Array.make cp.nvars false in
  let order = Array.make n (-1) in
  (* [cons] may grow with Fourier-Motzkin-derived (implied, redundant)
     constraints when the greedy ordering deadlocks on mutually-coupled
     variables, e.g. a simplex { i, j >= 0, i + j <= 3 } where neither
     variable has a one-sided bound until the other is fixed. *)
  let cons = ref cp.cons in
  let bounds_status v =
    let has_lb = ref false and has_ub = ref false in
    Array.iter
      (fun c ->
        if c.a.(v) <> 0 then begin
          let others_ready = ref true in
          Array.iteri
            (fun w coeff ->
              if w <> v && coeff <> 0 && not in_order.(w) then
                others_ready := false)
            c.a;
          if !others_ready then
            if c.eq then begin
              has_lb := true;
              has_ub := true
            end
            else if c.a.(v) > 0 then has_lb := true
            else has_ub := true
        end)
      !cons;
    (!has_lb, !has_ub)
  in
  (* Combine opposite-sign pairs on [w] into constraints without [w]. *)
  let fm_derive w =
    let as_ges c =
      if c.eq then
        [
          { c with eq = false };
          { a = Array.map (fun x -> -x) c.a; k = -c.k; eq = false };
        ]
      else [ c ]
    in
    let ges = List.concat_map as_ges (Array.to_list !cons) in
    let pos = List.filter (fun c -> c.a.(w) > 0) ges in
    let neg = List.filter (fun c -> c.a.(w) < 0) ges in
    let derived = ref [] in
    List.iter
      (fun c1 ->
        List.iter
          (fun c2 ->
            let p = c1.a.(w) and q = -c2.a.(w) in
            let a =
              Array.init (Array.length c1.a) (fun i ->
                  (q * c1.a.(i)) + (p * c2.a.(i)))
            in
            match normalize { a; k = (q * c1.k) + (p * c2.k); eq = false } with
            | Some d when not (Tenet_util.Ivec.is_zero d.a) ->
                derived := d :: !derived
            | Some _ | None -> ()
            | exception Empty_set -> raise Empty_set)
          neg)
      pos;
    !derived
  in
  let fm_done = Array.make cp.nvars false in
  let dedup = ref false in
  let pos = ref 0 in
  while !pos < n do
    let candidate = ref (-1) and candidate_vis = ref false in
    Array.iter
      (fun v ->
        if not in_order.(v) then begin
          let want = !candidate = -1 || ((not !candidate_vis) && cp.is_vis.(v)) in
          if want then begin
            let lb, ub = bounds_status v in
            if lb && ub then begin
              candidate := v;
              candidate_vis := cp.is_vis.(v)
            end
          end
        end)
      vars;
    (* Accepting an existential while visible variables remain would
       force the hash-dedup fallback (distinct visible tuples can repeat
       across existential values).  Before conceding that, try to unlock
       a visible variable by Fourier–Motzkin-eliminating a blocking
       existential: the derived (implied, redundant) constraints often
       bound the visible variable directly — e.g. a range projection
       where a stamp is only pinned through a div existential. *)
    let visible_remains () =
      Array.exists (fun v -> (not in_order.(v)) && cp.is_vis.(v)) vars
    in
    let pick_blocker ~existential_only =
      let blocker = ref (-1) and best_uses = ref 0 in
      Array.iter
        (fun v ->
          if
            (not in_order.(v))
            && (not fm_done.(v))
            && ((not existential_only) || not cp.is_vis.(v))
          then begin
            let uses =
              Array.fold_left
                (fun acc c -> if c.a.(v) <> 0 then acc + 1 else acc)
                0 !cons
            in
            if uses > !best_uses then begin
              best_uses := uses;
              blocker := v
            end
          end)
        vars;
      !blocker
    in
    let run_fm blocker =
      fm_done.(blocker) <- true;
      Obs.incr c_fm;
      cons := Array.append !cons (Array.of_list (fm_derive blocker))
      (* the same position is retried with the enriched constraint set *)
    in
    if !candidate = -1 then begin
      (* deadlock: derive implied bounds by eliminating one blocker *)
      let blocker = pick_blocker ~existential_only:false in
      if blocker = -1 then
        raise
          (Unbounded
             (Printf.sprintf "no bounded variable at position %d of %d" !pos n));
      run_fm blocker
    end
    else if (not !candidate_vis) && visible_remains () then begin
      match pick_blocker ~existential_only:true with
      | -1 ->
          (* every existential already eliminated once: concede dedup *)
          order.(!pos) <- !candidate;
          in_order.(!candidate) <- true;
          dedup := true;
          incr pos
      | blocker -> run_fm blocker
    end
    else begin
      order.(!pos) <- !candidate;
      in_order.(!candidate) <- true;
      if not !candidate_vis then
        Array.iter
          (fun v -> if (not in_order.(v)) && cp.is_vis.(v) then dedup := true)
          vars;
      incr pos
    end
  done;
  let cons = !cons in
  let pos_of = Array.make cp.nvars (-1) in
  Array.iteri (fun pos v -> pos_of.(v) <- pos) order;
  let nvis_positions =
    Array.fold_left (fun acc v -> if cp.is_vis.(v) then acc + 1 else acc) 0 vars
  in
  let level_cons = Array.make (max n 1) [] in
  let independent = Array.make (max n 1) true in
  Array.iter
    (fun c ->
      let lastpos = ref (-1) in
      Array.iteri
        (fun v coeff ->
          if coeff <> 0 && pos_of.(v) > !lastpos then lastpos := pos_of.(v))
        c.a;
      if !lastpos >= 0 then begin
        let self_var = order.(!lastpos) in
        let terms = ref [] in
        Array.iteri
          (fun v coeff ->
            if coeff <> 0 && v <> self_var then begin
              terms := (pos_of.(v), coeff) :: !terms;
              independent.(pos_of.(v)) <- false
            end)
          c.a;
        level_cons.(!lastpos) <-
          {
            lc_terms = Array.of_list !terms;
            lc_self = c.a.(self_var);
            lc_k = c.k;
            lc_eq = c.eq;
          }
          :: level_cons.(!lastpos)
      end)
    cons;
  (* Closed-form tail metadata (meaningless under dedup: positions are not
     visible-first there). *)
  let vis_tail =
    if !dedup then nvis_positions
    else begin
      let max_ref = ref (-1) in
      for p = nvis_positions to n - 1 do
        List.iter
          (fun lc ->
            Array.iter
              (fun (q, _) ->
                if q < nvis_positions && q > !max_ref then max_ref := q)
              lc.lc_terms)
          level_cons.(p)
      done;
      !max_ref + 1
    end
  in
  let sym_inner =
    if !dedup || nvis_positions < 2 then None
    else
      match level_cons.(nvis_positions - 1) with
      | [ c1; c2 ] when (not c1.lc_eq) && not c2.lc_eq -> begin
          match (c1.lc_self, c2.lc_self) with
          | 1, -1 -> Some (c1, c2)
          | -1, 1 -> Some (c2, c1)
          | _ -> None
        end
      | _ -> None
  in
  (* --- quasi-polynomial summation chain (the primary counting path) ---
     Innermost-out, [sym.(pos)] integrates [sym.(pos+1)] over position
     [pos]'s value interval in closed form.  Every step certifies its
     side conditions over conservative per-position intervals; a level
     that cannot be certified leaves [sym.(pos)] (and everything outer)
     as [None], so enumeration handles exactly the unsupported prefix. *)
  let sym = Array.make (nvis_positions + 1) None in
  let sat_proven = ref false in
  (if symbolic && not !dedup && n > 0 then
     try
       (* Conservative per-position value intervals: [ivals.(p)] contains
          every value position [p] can take in a feasible assignment
          (bounds of each level constraint evaluated over the intervals
          of the earlier positions, rounded outward). *)
       let ivals = Array.make n (0, 0) in
       let rest_iv (lc : level_con) =
         Array.fold_left
           (fun (lo, hi) (p, c) ->
             let plo, phi = ivals.(p) in
             if c >= 0 then (lo + (c * plo), hi + (c * phi))
             else (lo + (c * phi), hi + (c * plo)))
           (lc.lc_k, lc.lc_k) lc.lc_terms
       in
       for pos = 0 to n - 1 do
         let lo = ref None and hi = ref None in
         let upd_lo v = match !lo with Some l when l >= v -> () | _ -> lo := Some v in
         let upd_hi v = match !hi with Some h when h <= v -> () | _ -> hi := Some v in
         List.iter
           (fun lc ->
             let rlo, rhi = rest_iv lc in
             let s = lc.lc_self in
             if lc.lc_eq then begin
               (* v = -rest/s exactly; round outward *)
               let l, h =
                 if s > 0 then (IM.fdiv (-rhi) s, IM.cdiv (-rlo) s)
                 else (IM.fdiv rlo (-s), IM.cdiv rhi (-s))
               in
               upd_lo l;
               upd_hi h
             end
             else if s > 0 then upd_lo (IM.cdiv (-rhi) s)
             else upd_hi (IM.fdiv rhi (-s)))
           level_cons.(pos);
         match (!lo, !hi) with
         | Some l, Some h when l <= h -> ivals.(pos) <- (l, h)
         | _ -> raise Exit
       done;
       let env p = ivals.(p) in
       let rest_lin (lc : level_con) =
         Qpoly.lin (Array.to_list lc.lc_terms) lc.lc_k
       in
       (* lc with lc_self > 0 is [self*v + rest >= 0]: v >= ceil(-rest/self);
          lc_self < 0 is an upper bound: v <= floor(rest/(-self)). *)
       let lower_qp lc = Qpoly.ceil_lin (Qpoly.lin_scale (-1) (rest_lin lc)) lc.lc_self in
       let upper_qp lc = Qpoly.floor_lin (rest_lin lc) (-lc.lc_self) in
       (* Among several bounds, find one that provably dominates (is the
          effective bound) everywhere in the certified region. *)
       let dominant ~wanted cands qp_of =
         match cands with
         | [ c ] -> Some (qp_of c)
         | _ ->
             List.find_map
               (fun c1 ->
                 let q1 = qp_of c1 in
                 if
                   List.for_all
                     (fun c2 ->
                       c2 == c1
                       ||
                       let q2 = qp_of c2 in
                       let d =
                         match wanted with
                         | `Hi -> Qpoly.sub q1 q2
                         | `Lo -> Qpoly.sub q2 q1
                       in
                       Qpoly.prove_ge env d 0)
                     cands
                 then Some q1
                 else None)
               cands
       in
       (* Existential-suffix satisfiability: every existential level has
          a provably nonempty interval (width >= 1 for every lower/upper
          pair), for any values of the earlier positions in the region.
          Then no witness search is ever needed. *)
       let suffix_ok = ref true in
       for pos = nvis_positions to n - 1 do
         if !suffix_ok then begin
           let lcs = level_cons.(pos) in
           match List.partition (fun lc -> lc.lc_eq) lcs with
           | [ e ], [] when abs e.lc_self = 1 ->
               () (* exactly one value, always an integer *)
           | [], ineqs ->
               let lowers = List.filter (fun lc -> lc.lc_self > 0) ineqs in
               let uppers = List.filter (fun lc -> lc.lc_self < 0) ineqs in
               if
                 lowers = [] || uppers = []
                 || not
                      (List.for_all
                         (fun l ->
                           let ql = lower_qp l in
                           List.for_all
                             (fun u ->
                               let w =
                                 Qpoly.add (Qpoly.sub (upper_qp u) ql) Qpoly.one
                               in
                               Qpoly.prove_ge env w 1)
                             uppers)
                         lowers)
               then suffix_ok := false
           | _ -> suffix_ok := false
         end
       done;
       sat_proven := !suffix_ok;
       (* Visible chain, innermost-out. *)
       sym.(nvis_positions) <- Some Qpoly.one;
       for pos = nvis_positions - 1 downto 0 do
         match sym.(pos + 1) with
         | None -> ()
         | Some inner ->
             sym.(pos) <-
               (match List.partition (fun lc -> lc.lc_eq) level_cons.(pos) with
               | [ e ], [] when abs e.lc_self = 1 ->
                   (* v is pinned to -self*rest: substitute, width 1 *)
                   let by = Qpoly.lin_scale (-e.lc_self) (rest_lin e) in
                   Some (Qpoly.subst pos ~by inner)
               | [], (_ :: _ as ineqs) -> (
                   let lowers = List.filter (fun lc -> lc.lc_self > 0) ineqs in
                   let uppers = List.filter (fun lc -> lc.lc_self < 0) ineqs in
                   match
                     ( dominant ~wanted:`Hi lowers lower_qp,
                       dominant ~wanted:`Lo uppers upper_qp )
                   with
                   | Some qa, Some qb ->
                       (* Faulhaber telescoping needs ub >= lb - 1 *)
                       let w = Qpoly.add (Qpoly.sub qb qa) Qpoly.one in
                       if Qpoly.prove_ge env w 0 then
                         Qpoly.sum_var ~v:pos ~lb:qa ~ub:qb inner
                       else None
                   | _ -> None)
               | _ -> None)
       done
     with Exit -> ());
  if symbolic && ((not !sat_proven) || sym.(0) = None) then Obs.incr c_qpoly_fb;
  {
    order;
    pos_of;
    nvis_positions;
    dedup = !dedup;
    level_cons;
    independent;
    vis_tail;
    sym_inner;
    sym;
    sat_proven = !sat_proven;
  }

(* Compute [lb, ub] for the variable at [pos] given the assignment of all
   earlier positions; lb > ub means the level is infeasible. *)
let level_bounds (plan : plan) (value : int array) pos =
  let lb = ref min_int and ub = ref max_int in
  List.iter
    (fun lc ->
      let rest = ref lc.lc_k in
      Array.iter (fun (p, c) -> rest := !rest + (c * value.(p))) lc.lc_terms;
      let c = lc.lc_self in
      if lc.lc_eq then
        if !rest mod c <> 0 then begin
          lb := 1;
          ub := 0
        end
        else begin
          let v = - !rest / c in
          if v > !lb then lb := v;
          if v < !ub then ub := v
        end
      else if c > 0 then begin
        let b = IM.cdiv (- !rest) c in
        if b > !lb then lb := b
      end
      else begin
        let b = IM.fdiv !rest (-c) in
        if b < !ub then ub := b
      end)
    plan.level_cons.(pos);
  (!lb, !ub)

(* ------------------------------------------------------------------ *)
(* Enumeration.                                                        *)
(* ------------------------------------------------------------------ *)

let n_positions plan = Array.length plan.order

(* First-witness search over positions [pos .. n); [value] is scratch. *)
let rec exists_from plan value pos =
  if pos = n_positions plan then true
  else begin
    let lb, ub = level_bounds plan value pos in
    if lb > ub then false
    else if plan.independent.(pos) then begin
      value.(pos) <- lb;
      exists_from plan value (pos + 1)
    end
    else begin
      let rec try_v v =
        if v > ub then false
        else begin
          value.(pos) <- v;
          if exists_from plan value (pos + 1) then true else try_v (v + 1)
        end
      in
      try_v lb
    end
  end

(* Count the pure visible suffix [pos, nvis_positions): no existential
   level references these positions (guaranteed by [vis_tail]), so no
   witness search appears below and the innermost levels collapse to
   arithmetic. *)
let rec count_tail plan value pos =
  let last = plan.nvis_positions - 1 in
  if pos > last then 1
  else
    match plan.sym.(pos) with
    | Some q ->
        (* the whole remaining visible suffix in one evaluation *)
        Obs.incr c_qpoly;
        Qpoly.eval (fun p -> value.(p)) q
    | None ->
  begin
    let lb, ub = level_bounds plan value pos in
    if lb > ub then 0
    else if pos = last then begin
      (* deepest level: the loop is an interval width *)
      Obs.incr c_closed_tail;
      ub - lb + 1
    end
    else if pos = last - 1 && plan.sym_inner <> None then begin
      (* the innermost width is affine in this variable: sum it
         symbolically (arithmetic series; Faulhaber degree 1) *)
      Obs.incr c_faulhaber;
      let lbc, ubc = Option.get plan.sym_inner in
      let eval_parts lc =
        let rest = ref lc.lc_k and cpos = ref 0 in
        Array.iter
          (fun (p, c) ->
            if p = pos then cpos := !cpos + c else rest := !rest + (c * value.(p)))
          lc.lc_terms;
        (!rest, !cpos)
      in
      (* lbc is [lrest + lcoef*v + x >= 0]: x >= -(lrest + lcoef*v);
         ubc is [urest + ucoef*v - x >= 0]: x <= urest + ucoef*v.  Width
         as a function of v is w0 + w1*v, clamped at 0. *)
      let lrest, lcoef = eval_parts lbc in
      let urest, ucoef = eval_parts ubc in
      let w0 = urest + lrest + 1 in
      let w1 = ucoef + lcoef in
      if w1 = 0 then (ub - lb + 1) * max 0 w0
      else begin
        (* subrange of [lb, ub] where w0 + w1*v >= 1 *)
        let s, t =
          if w1 > 0 then (max lb (IM.cdiv (1 - w0) w1), ub)
          else (lb, min ub (IM.fdiv (w0 - 1) (-w1)))
        in
        if s > t then 0
        else begin
          let tri x = x * (x + 1) / 2 in
          (w0 * (t - s + 1)) + (w1 * (tri t - tri (s - 1)))
        end
      end
    end
    else if plan.independent.(pos) then begin
      Obs.incr c_closed;
      value.(pos) <- lb;
      (ub - lb + 1) * count_tail plan value (pos + 1)
    end
    else begin
      let acc = ref 0 in
      for v = lb to ub do
        value.(pos) <- v;
        acc := !acc + count_tail plan value (pos + 1)
      done;
      !acc
    end
  end

(* Exact-mode counting: positions [0, nvis_positions) hold visible vars.
   Reaching [vis_tail] decides existential satisfiability once (the
   remaining visible variables cannot affect it) and hands the suffix to
   the arithmetic counter above. *)
let rec count_from plan value pos =
  if plan.sat_proven && plan.sym.(pos) <> None then begin
    (* existential suffix certified nonempty and the visible suffix is
       in closed form: the count is one evaluation, no loops *)
    Obs.incr c_qpoly;
    Qpoly.eval (fun p -> value.(p)) (Option.get plan.sym.(pos))
  end
  else if pos = plan.vis_tail && pos < plan.nvis_positions then begin
    if plan.nvis_positions < n_positions plan && not plan.sat_proven then begin
      Obs.incr c_points;
      if exists_from plan value plan.nvis_positions then
        count_tail plan value pos
      else 0
    end
    else count_tail plan value pos
  end
  else if pos = plan.nvis_positions then begin
    if plan.sat_proven then 1
    else begin
      Obs.incr c_points;
      if exists_from plan value pos then 1 else 0
    end
  end
  else begin
    let lb, ub = level_bounds plan value pos in
    if lb > ub then 0
    else if plan.independent.(pos) then begin
      Obs.incr c_closed;
      value.(pos) <- lb;
      (ub - lb + 1) * count_from plan value (pos + 1)
    end
    else begin
      let acc = ref 0 in
      for v = lb to ub do
        value.(pos) <- v;
        acc := !acc + count_from plan value (pos + 1)
      done;
      !acc
    end
  end

(* Current visible tuple restricted to alive visible vars, in original
   dimension order.  Distinctness of this reduced tuple coincides with
   distinctness of the full visible tuple: eliminated visible variables are
   affine functions of the alive ones. *)
let visible_key (cp : compiled) (plan : plan) value =
  let key = ref [] in
  for v = cp.nvis - 1 downto 0 do
    if cp.alive.(v) && plan.pos_of.(v) >= 0 then
      key := value.(plan.pos_of.(v)) :: !key
  done;
  Array.of_list !key

let count_with_plan cp plan =
  let n = n_positions plan in
  if n = 0 then 1
  else if plan.dedup then begin
    Obs.incr c_dedup;
    let value = Array.make n 0 in
    let tbl = Hashtbl.create 1024 in
    let rec go pos =
      if pos = n then begin
        Obs.incr c_points;
        let key = visible_key cp plan value in
        if not (Hashtbl.mem tbl key) then Hashtbl.add tbl key ()
      end
      else begin
        let lb, ub = level_bounds plan value pos in
        if lb <= ub then
          if plan.independent.(pos) && not cp.is_vis.(plan.order.(pos)) then begin
            value.(pos) <- lb;
            go (pos + 1)
          end
          else
            for v = lb to ub do
              value.(pos) <- v;
              go (pos + 1)
            done
      end
    in
    go 0;
    Hashtbl.length tbl
  end
  else begin
    let value = Array.make n 0 in
    count_from plan value 0
  end

(* ------------------------------------------------------------------ *)
(* Memoized cardinalities.                                             *)
(*                                                                     *)
(* Keyed by the canonicalized compiled form (constraints sorted, dead   *)
(* variables recorded), so any two basic sets that normalize to the     *)
(* same constraint system share one entry regardless of how they were   *)
(* built.  The cache is global, bounded (TENET_COUNT_CACHE entries;     *)
(* 0/off disables) and mutex-guarded: it is shared by all domains of    *)
(* the parallel work pool.  On overflow the whole table is dropped —    *)
(* the working sets here are tiny compared to the bound, so an epoch    *)
(* flush is simpler than LRU and near-free in practice.                 *)
(* ------------------------------------------------------------------ *)

module Ckey = struct
  type t = {
    k_nvis : int;
    k_nvars : int;
    k_alive : bool array;
    k_cons : (bool * int * int array) array; (* sorted for canonicity *)
  }

  let equal (a : t) (b : t) = a = b

  let hash (k : t) =
    let h = ref ((k.k_nvis * 131) + k.k_nvars) in
    let mix v = h := (!h * 131) + v in
    Array.iter (fun b -> mix (Bool.to_int b)) k.k_alive;
    Array.iter
      (fun (eq, c, a) ->
        mix (Bool.to_int eq);
        mix c;
        Array.iter mix a)
      k.k_cons;
    !h land max_int
end

module Ctbl = Hashtbl.Make (Ckey)

module Ukey = struct
  type t = Ckey.t array (* sorted: unions are order-insensitive *)

  let equal (a : t) (b : t) = a = b
  let hash (u : t) = Array.fold_left (fun h k -> (h * 131) + Ckey.hash k) 17 u
end

module Utbl = Hashtbl.Make (Ukey)

type cache_entry = {
  mutable e_card : int option;
  mutable e_empty : bool option;
  mutable e_tick : int; (* last touch, for sweep-friendly eviction *)
}

type union_entry = { u_card : int; mutable u_tick : int }

let cache_bound =
  match Sys.getenv_opt "TENET_COUNT_CACHE" with
  | None | Some "" -> 65536
  | Some ("0" | "off" | "none") -> 0
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n > 0 -> n
      | _ -> 65536)

let cache_mutex = Mutex.create ()
let bset_cache : cache_entry Ctbl.t = Ctbl.create 1024
let union_cache : union_entry Utbl.t = Utbl.create 256

(* Touch clock for eviction decisions; guarded by [cache_mutex]. *)
let cache_tick = ref 0
let evict_floor = ref 0 (* clock value at the previous eviction *)

let key_of_compiled (cp : compiled) : Ckey.t =
  let cons = Array.map (fun c -> (c.eq, c.k, c.a)) cp.cons in
  Array.sort compare cons;
  {
    Ckey.k_nvis = cp.nvis;
    k_nvars = cp.nvars;
    k_alive = cp.alive;
    k_cons = cons;
  }

(* Room check shared by both tables; called with [cache_mutex] held.
   Eviction is sweep-friendly: entries touched since the previous
   eviction survive (a DSE sweep keeps re-counting the same basic sets
   while entries from earlier subjects go cold), everything colder is
   dropped.  Only when the hot set itself fills the bound does the
   cache fall back to dropping everything. *)
let make_room () =
  if Ctbl.length bset_cache + Utbl.length union_cache >= cache_bound then begin
    Obs.incr c_cache_evictions;
    let floor = !evict_floor in
    let keep_b = ref [] and keep_u = ref [] in
    Ctbl.iter
      (fun k e -> if e.e_tick > floor then keep_b := (k, e) :: !keep_b)
      bset_cache;
    Utbl.iter
      (fun k e -> if e.u_tick > floor then keep_u := (k, e) :: !keep_u)
      union_cache;
    Ctbl.reset bset_cache;
    Utbl.reset union_cache;
    if List.length !keep_b + List.length !keep_u < cache_bound then begin
      List.iter (fun (k, e) -> Ctbl.add bset_cache k e) !keep_b;
      List.iter (fun (k, e) -> Utbl.add union_cache k e) !keep_u
    end;
    evict_floor := !cache_tick
  end

(* [probe ~get ~set cp compute]: consult the per-bset cache for the field
   selected by [get]/[set], computing and filling on a miss.  [compute]
   runs outside the lock (a racing duplicate computation is benign). *)
let probe ~get ~set (cp : compiled) (compute : unit -> 'a) : 'a =
  if cache_bound = 0 then compute ()
  else begin
    let key = key_of_compiled cp in
    Mutex.lock cache_mutex;
    let cached =
      match Ctbl.find_opt bset_cache key with
      | Some e ->
          incr cache_tick;
          e.e_tick <- !cache_tick;
          get e
      | None -> None
    in
    Mutex.unlock cache_mutex;
    match cached with
    | Some v ->
        Obs.incr c_cache_hits;
        v
    | None ->
        Obs.incr c_cache_misses;
        let v = compute () in
        Mutex.lock cache_mutex;
        (match Ctbl.find_opt bset_cache key with
        | Some e ->
            incr cache_tick;
            e.e_tick <- !cache_tick;
            set e v
        | None ->
            make_room ();
            incr cache_tick;
            let e = { e_card = None; e_empty = None; e_tick = !cache_tick } in
            set e v;
            Ctbl.add bset_cache key e);
        Mutex.unlock cache_mutex;
        v
  end

let cache_clear () =
  Mutex.lock cache_mutex;
  Ctbl.reset bset_cache;
  Utbl.reset union_cache;
  cache_tick := 0;
  evict_floor := 0;
  Mutex.unlock cache_mutex

let count_bset (b : Bset.t) : int =
  match compile b with
  | None -> 0
  | Some cp ->
      probe cp
        ~get:(fun e -> e.e_card)
        ~set:(fun e v -> e.e_card <- Some v)
        (fun () ->
          let n =
            match make_plan ~symbolic:true cp with
            | plan -> count_with_plan cp plan
            | exception Empty_set -> 0
          in
          if verify_mode () then begin
            Obs.incr c_verify_checks;
            let reference =
              match !verify_oracle_for_tests with
              | Some oracle -> oracle b
              | None -> (
                  match make_plan ~symbolic:false cp with
                  | plan -> count_with_plan cp plan
                  | exception Empty_set -> 0)
            in
            if reference <> n then begin
              Obs.incr c_verify_mismatches;
              let names =
                List.init b.Bset.nvis (Printf.sprintf "x%d")
              in
              raise
                (Verify_mismatch
                   {
                     fast = n;
                     reference;
                     set = Printer.set_to_string (Space.make "" names) [ b ];
                   })
            end
          end;
          n)

(* Satisfiability without caching, for the per-query [mem_bset] path
   (every query would otherwise insert a single-use cache entry). *)
let is_empty_compiled (cp : compiled) ~(b : Bset.t) : bool =
  (* Pure satisfiability: treat every position as existential. *)
  match make_plan cp with
  | plan ->
      let n = n_positions plan in
      if n = 0 then false
      else begin
        let value = Array.make n 0 in
        let sat_plan = { plan with nvis_positions = 0 } in
        not (exists_from sat_plan value 0)
      end
  | exception Empty_set -> true
  | exception Unbounded _ ->
      (* Some visible dim is unconstrained: the set is nonempty iff the
         rest is satisfiable.  Project everything out and retry. *)
      let all_ex = Bset.project ~keep:(Array.make b.Bset.nvis false) b in
      let cp' = Option.get (compile all_ex) in
      (match make_plan cp' with
      | exception Empty_set -> true
      | plan' ->
          let n = n_positions plan' in
          if n = 0 then false
          else begin
            let value = Array.make n 0 in
            not (exists_from { plan' with nvis_positions = 0 } value 0)
          end)

let is_empty_bset (b : Bset.t) : bool =
  match compile b with
  | None -> true
  | Some cp ->
      probe cp
        ~get:(fun e -> e.e_empty)
        ~set:(fun e v -> e.e_empty <- Some v)
        (fun () -> is_empty_compiled cp ~b)

let mem_bset (b : Bset.t) (point : int array) : bool =
  assert (Array.length point = b.Bset.nvis);
  let fixed = ref b in
  Array.iteri (fun dim v -> fixed := Bset.fix !fixed ~dim v) point;
  match compile !fixed with
  | None -> false
  | Some cp -> not (is_empty_compiled cp ~b:!fixed)

(* Iterate distinct visible tuples.  Uses [elim_vis:false] so that every
   visible variable has a position and full tuples can be reported. *)
let iter_bset (b : Bset.t) (f : int array -> unit) : unit =
  match compile ~elim_vis:false b with
  | None -> ()
  | Some cp -> (
      match make_plan cp with
      | exception Empty_set -> ()
      | plan ->
      let n = n_positions plan in
      if n = 0 then (if cp.nvis = 0 then f [||]) |> ignore
      else begin
        let value = Array.make n 0 in
        if plan.dedup then begin
          let tbl = Hashtbl.create 1024 in
          let rec go pos =
            if pos = n then begin
              Obs.incr c_points;
              let key = visible_key cp plan value in
              if not (Hashtbl.mem tbl key) then begin
                Hashtbl.add tbl key ();
                f key
              end
            end
            else begin
              let lb, ub = level_bounds plan value pos in
              if lb <= ub then
                if
                  plan.independent.(pos) && not cp.is_vis.(plan.order.(pos))
                then begin
                  value.(pos) <- lb;
                  go (pos + 1)
                end
                else
                  for v = lb to ub do
                    value.(pos) <- v;
                    go (pos + 1)
                  done
            end
          in
          go 0
        end
        else begin
          let rec go pos =
            if pos = plan.nvis_positions then begin
              Obs.incr c_points;
              if exists_from plan value pos then f (visible_key cp plan value)
            end
            else begin
              let lb, ub = level_bounds plan value pos in
              if lb <= ub then
                for v = lb to ub do
                  value.(pos) <- v;
                  go (pos + 1)
                done
            end
          in
          go 0
        end
      end)

let sample_bset (b : Bset.t) : int array option =
  let result = ref None in
  (try
     iter_bset b (fun p ->
         result := Some (Array.copy p);
         raise Exit)
   with Exit -> ());
  !result

(* A precompiled membership tester: compiles and plans once, then answers
   [mem] queries without per-query recompilation.  The query scratch is
   domain-local (one buffer per domain, reused across queries), which
   keeps testers shareable across the parallel work pool.  Falls back to
   [mem_bset] when the plan needs hash-based deduplication (which cannot
   happen for the fixed-visible queries we run, but keeps the function
   total). *)
let make_mem_bset (b : Bset.t) : int array -> bool =
  match compile ~elim_vis:false b with
  | None -> fun _ -> false
  | Some cp -> (
      match make_plan ~allow_unbounded_vis:true cp with
      | exception Empty_set -> fun _ -> false
      | exception Unbounded _ -> fun p -> mem_bset b p
      | plan ->
          if plan.dedup then fun p -> mem_bset b p
          else begin
            let n = n_positions plan in
            let nvisp = plan.nvis_positions in
            let scratch =
              Domain.DLS.new_key (fun () -> Array.make (max n 1) 0)
            in
            fun point ->
              let value = Domain.DLS.get scratch in
              let ok = ref true in
              let pos = ref 0 in
              while !ok && !pos < nvisp do
                let v = point.(plan.order.(!pos)) in
                let lb, ub = level_bounds plan value !pos in
                if v < lb || v > ub then ok := false
                else begin
                  value.(!pos) <- v;
                  incr pos
                end
              done;
              !ok && exists_from plan value nvisp
          end)

let make_mem_union (bs : Bset.t list) : int array -> bool =
  let testers = Array.of_list (List.map make_mem_bset bs) in
  let n = Array.length testers in
  fun p ->
    let rec go j = j < n && (testers.(j) p || go (j + 1)) in
    go 0

(* Shared by union counting and iteration: tester for membership in any
   of the first [upto] disjuncts, scanning a flat array (no closure-list
   walk per point). *)
let seen_in_earlier (testers : (int array -> bool) array) ~upto p =
  let rec go j = j < upto && (testers.(j) p || go (j + 1)) in
  go 0

(* Disjoint counting of a union of basic sets: count each disjunct's points
   that do not belong to any earlier disjunct.  The per-disjunct passes are
   independent given the testers, so they run on the parallel pool; the
   result is their (order-insensitive) sum, so parallelism cannot change
   the answer.  Union cardinalities are memoized like single counts, keyed
   by the multiset of disjunct keys. *)
let count_union (bs : Bset.t list) : int =
  match bs with
  | [] -> 0
  | [ b ] -> count_bset b
  | _ ->
      (* drop disjuncts that are syntactically empty; they contribute
         neither points nor cache-key information *)
      let live =
        List.filter_map
          (fun b -> Option.map (fun cp -> (b, cp)) (compile b))
          bs
      in
      let compute () =
        let arr = Array.of_list (List.map fst live) in
        let n = Array.length arr in
        let same_arity =
          let nv = arr.(0).Bset.nvis in
          Array.for_all (fun (b : Bset.t) -> b.Bset.nvis = nv) arr
        in
        let by_dedup () =
          let testers = Array.map make_mem_bset arr in
          let count_one i =
            let total = ref 0 in
            iter_bset arr.(i) (fun p ->
                if not (seen_in_earlier testers ~upto:i p) then incr total);
            !total
          in
          Array.fold_left ( + ) 0 (Tenet_util.Parallel.init n count_one)
        in
        if n <= 4 && same_arity then begin
          (* Inclusion–exclusion: 2^n - 1 intersection counts, each of
             which hits the closed-form path (and the cache) — no point
             of the union is ever visited.  Bounded at 4 disjuncts so
             the term count stays below the disjunct count's square;
             TENET's unions (spatial-neighbor reuse, halo overlaps) have
             2-4 disjuncts. *)
          let count_mask i =
            let m = i + 1 in
            let parts = ref [] and bits = ref 0 in
            for j = n - 1 downto 0 do
              if m land (1 lsl j) <> 0 then begin
                parts := arr.(j) :: !parts;
                incr bits
              end
            done;
            let inter =
              match !parts with
              | b :: rest -> List.fold_left Bset.meet b rest
              | [] -> assert false
            in
            let c = count_bset inter in
            if !bits land 1 = 1 then c else -c
          in
          let fast =
            Array.fold_left ( + ) 0
              (Tenet_util.Parallel.init ((1 lsl n) - 1) count_mask)
          in
          (* Under TENET_COUNT_VERIFY also certify the inclusion–exclusion
             combination itself (each term was already checked). *)
          if verify_mode () then begin
            Obs.incr c_verify_checks;
            let reference = by_dedup () in
            if reference <> fast then begin
              Obs.incr c_verify_mismatches;
              raise
                (Verify_mismatch
                   {
                     fast;
                     reference;
                     set =
                       Printf.sprintf
                         "inclusion-exclusion over a %d-disjunct union" n;
                   })
            end
          end;
          fast
        end
        else by_dedup ()
      in
      (match live with
      | [] -> 0
      | [ (b, _) ] -> count_bset b
      | _ ->
          if cache_bound = 0 then compute ()
          else begin
            let ukey =
              Array.of_list (List.map (fun (_, cp) -> key_of_compiled cp) live)
            in
            Array.sort compare ukey;
            Mutex.lock cache_mutex;
            let cached =
              match Utbl.find_opt union_cache ukey with
              | Some e ->
                  incr cache_tick;
                  e.u_tick <- !cache_tick;
                  Some e.u_card
              | None -> None
            in
            Mutex.unlock cache_mutex;
            match cached with
            | Some v ->
                Obs.incr c_cache_hits;
                v
            | None ->
                Obs.incr c_cache_misses;
                let v = compute () in
                Mutex.lock cache_mutex;
                if not (Utbl.mem union_cache ukey) then begin
                  make_room ();
                  incr cache_tick;
                  Utbl.add union_cache ukey
                    { u_card = v; u_tick = !cache_tick }
                end;
                Mutex.unlock cache_mutex;
                v
          end)

let iter_union (bs : Bset.t list) (f : int array -> unit) : unit =
  match bs with
  | [] -> ()
  | [ b ] -> iter_bset b f
  | _ ->
      let arr = Array.of_list bs in
      let n = Array.length arr in
      let testers = Array.make n (fun _ -> false) in
      for i = 0 to n - 1 do
        iter_bset arr.(i) (fun p ->
            if not (seen_in_earlier testers ~upto:i p) then f p);
        if i < n - 1 then testers.(i) <- make_mem_bset arr.(i)
      done

let mem_union (bs : Bset.t list) (p : int array) : bool =
  List.exists (fun b -> mem_bset b p) bs

let is_empty_union (bs : Bset.t list) : bool = List.for_all is_empty_bset bs

(* ------------------------------------------------------------------ *)
(* Parametric counting: cardinality as a quasi-polynomial in the       *)
(* leading visible dims (the "size parameters").                       *)
(* ------------------------------------------------------------------ *)

(* Parameters get a conservative assumed range when the caller supplies
   none.  The range matters twice: it feeds the interval certification
   of every symbolic side condition (so it must be bounded — interval
   arithmetic on machine ints would otherwise overflow at high degree),
   and it defines the region where the returned quasi-polynomial is
   guaranteed exact. *)
let default_param_range = (1, 4096)

let count_bset_param ~n_params ?assume (b : Bset.t) : Qpoly.t option =
  assert (n_params >= 0 && n_params <= b.Bset.nvis);
  let assume =
    match assume with
    | Some a ->
        assert (Array.length a = n_params);
        Array.iter (fun (lo, hi) -> assert (lo <= hi)) a;
        a
    | None -> Array.make n_params default_param_range
  in
  let nvars = Bset.nvars b in
  let range_cons =
    List.concat
      (List.init n_params (fun p ->
           let lo, hi = assume.(p) in
           let a_lo = Array.make nvars 0 in
           a_lo.(p) <- 1;
           let a_hi = Array.make nvars 0 in
           a_hi.(p) <- -1;
           [
             { a = a_lo; k = -lo; eq = false };
             { a = a_hi; k = hi; eq = false };
           ]))
  in
  let b = Bset.add_cons b range_cons in
  (* Under TENET_COUNT_VERIFY, spot-check the closed form against the
     concrete engine at a few in-range parameter assignments (each of
     which is itself cross-checked by [count_bset]'s own sanitizer). *)
  let verify qp =
    if verify_mode () && n_params > 0 then
      List.iter
        (fun step ->
          Obs.incr c_verify_checks;
          let vals = Array.map (fun (lo, hi) -> min (lo + step) hi) assume in
          let fixed = ref b in
          Array.iteri (fun p v -> fixed := Bset.fix !fixed ~dim:p v) vals;
          let reference = count_bset !fixed in
          let fast = Qpoly.eval (fun p -> vals.(p)) qp in
          if reference <> fast then begin
            Obs.incr c_verify_mismatches;
            let at =
              String.concat ","
                (Array.to_list (Array.map string_of_int vals))
            in
            raise
              (Verify_mismatch
                 {
                   fast;
                   reference;
                   set =
                     Printf.sprintf "parametric template instantiated at (%s)"
                       at;
                 })
          end)
        [ 0; 3 ]
  in
  (* A plan that resists symbolically can still yield an exact template
     when the set is empty for {e every} in-range parameter value (the
     emptiness query ranges over the parameter box too) — the usual case
     for inclusion–exclusion intersection terms of disjoint unions. *)
  let fallback () =
    if is_empty_bset b then begin
      Obs.incr c_tpl;
      Some Qpoly.zero
    end
    else begin
      Obs.incr c_tpl_fb;
      None
    end
  in
  match compile ~protect:n_params b with
  | None ->
      (* empty for every parameter value *)
      Obs.incr c_tpl;
      Some Qpoly.zero
  | Some cp -> (
      match make_plan ~symbolic:true cp with
      | exception Empty_set ->
          Obs.incr c_tpl;
          Some Qpoly.zero
      | exception Unbounded _ -> fallback ()
      | plan ->
          (* The greedy ordering seats bounded visible vars lowest-index
             first, so the protected parameters land at positions
             [0..n_params); check defensively rather than assume it. *)
          let seated =
            plan.nvis_positions >= n_params
            &&
            let ok = ref true in
            for p = 0 to n_params - 1 do
              if plan.order.(p) <> p then ok := false
            done;
            !ok
          in
          if plan.dedup || (not plan.sat_proven) || not seated then
            fallback ()
          else (
            match plan.sym.(n_params) with
            | None -> fallback ()
            | Some qp ->
                (* [sym.(n_params)] counts the visible suffix past the
                   parameters as a quasi-polynomial in positions
                   [0..n_params) — which, seated, are the parameter dims
                   themselves. *)
                verify qp;
                Obs.incr c_tpl;
                Some qp))

let count_union_param ~n_params ?assume (bs : Bset.t list) : Qpoly.t option =
  match bs with
  | [] -> Some Qpoly.zero
  | [ b ] -> count_bset_param ~n_params ?assume b
  | _ ->
      let arr = Array.of_list bs in
      let n = Array.length arr in
      let same_arity =
        let nv = arr.(0).Bset.nvis in
        Array.for_all (fun (b : Bset.t) -> b.Bset.nvis = nv) arr
      in
      if n > 4 || not same_arity then begin
        Obs.incr c_tpl_fb;
        None
      end
      else begin
        (* Inclusion–exclusion, mirroring [count_union]'s fast path:
           every intersection must itself admit a parametric closed
           form, else the whole union falls back. *)
        let acc = ref (Some Qpoly.zero) in
        for i = 0 to (1 lsl n) - 2 do
          match !acc with
          | None -> ()
          | Some sofar ->
              let m = i + 1 in
              let parts = ref [] and bits = ref 0 in
              for j = n - 1 downto 0 do
                if m land (1 lsl j) <> 0 then begin
                  parts := arr.(j) :: !parts;
                  incr bits
                end
              done;
              let inter =
                match !parts with
                | b :: rest -> List.fold_left Bset.meet b rest
                | [] -> assert false
              in
              acc :=
                (match count_bset_param ~n_params ?assume inter with
                | None -> None
                | Some qp ->
                    Some
                      (if !bits land 1 = 1 then Qpoly.add sofar qp
                       else Qpoly.sub sofar qp))
        done;
        !acc
      end
