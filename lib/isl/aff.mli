(** Quasi-affine expressions over named dimensions.

    These are the building blocks of the relation-centric notation: every
    space-stamp and time-stamp coordinate, tensor subscript, and constraint
    is a quasi-affine expression.  [Fdiv] (floor division) and [Mod] take a
    positive integer literal divisor, exactly the [fl(i/8)] and [i%8] forms
    of the paper. *)

type t =
  | Var of string
  | Int of int
  | Neg of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t  (** at least one side must be constant *)
  | Fdiv of t * int  (** floor division by a positive literal *)
  | Mod of t * int  (** modulus by a positive literal *)
  | Abs of t
      (** only valid inside comparison atoms of the constraint language
          with the absolute value on the small side, e.g.
          [abs(i - j) <= 1]; never reaches {!lower}. *)

exception Nonlinear of string
(** Raised when lowering an expression that is not quasi-affine. *)

(** Convenience constructors; [( / )] is floor division and [( % )] is
    modulus, both by integer literals. *)

val var : string -> t
val int : int -> t
val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> int -> t
val ( % ) : t -> int -> t
val neg : t -> t

val free_vars : t -> string list
(** Variable names, with duplicates. *)

val rename : (string -> string) -> t -> t
(** Apply a renaming to every variable. *)

val eval : (string -> int) -> t -> int
(** Evaluate under an environment. *)

val compile_eval : lookup:(string -> int) -> t -> int array -> int
(** [compile_eval ~lookup e] stages [e] into a closure over an array of
    variable values indexed by [lookup] (applied once per variable, at
    compile time).  Semantically [eval (fun s -> v.(lookup s)) e], but
    with no name resolution or AST walk per call — for hot loops that
    evaluate the same expression many times. *)

val to_string : t -> string

(** {2 Lowering to linear constraint form}

    Used by {!Set}, {!Map} and {!Parser} to translate expressions into the
    basic-set representation.  A lowering context accumulates one
    existential dimension per [Fdiv]/[Mod] occurrence. *)

type lin = { terms : (int * int) list; const : int }
(** Sparse linear form: [(var index, coefficient)] terms plus constant. *)

type ctx

val make_ctx : int -> ctx
(** [make_ctx nbase] starts a lowering over [nbase] visible dimensions. *)

val lower : ctx -> lookup:(string -> int) -> t -> lin
(** Lower an expression; [lookup] resolves dimension names to indices in
    [\[0, nbase)].  Raises {!Nonlinear} on non-affine input. *)

val lin_add : lin -> lin -> lin
val lin_scale : int -> lin -> lin
val lin_const : int -> lin
val lin_var : int -> lin

val to_bset : ctx -> eqs:lin list -> ges:lin list -> Bset.t
(** Package lowered constraints ([eqs] = 0, [ges] >= 0) together with the
    context's floor-division definitions into a basic set. *)

val interval : (string -> int * int) -> t -> int * int
(** Tight interval of the expression's value given per-variable inclusive
    intervals (exact for affine expressions, standard monotone rules for
    [Fdiv]/[Mod]/[Abs]). *)
