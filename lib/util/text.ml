(* Small string utilities for user-facing diagnostics. *)

(* Damerau-Levenshtein distance (with adjacent transpositions), O(nm). *)
let edit_distance (a : string) (b : string) : int =
  let n = String.length a and m = String.length b in
  if n = 0 then m
  else if m = 0 then n
  else begin
    (* three rolling rows: i-2, i-1, i *)
    let prev2 = Array.make (m + 1) 0 in
    let prev = Array.init (m + 1) (fun j -> j) in
    let cur = Array.make (m + 1) 0 in
    for i = 1 to n do
      cur.(0) <- i;
      for j = 1 to m do
        let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
        let d =
          min
            (min (prev.(j) + 1) (cur.(j - 1) + 1))
            (prev.(j - 1) + cost)
        in
        let d =
          if
            i > 1 && j > 1
            && a.[i - 1] = b.[j - 2]
            && a.[i - 2] = b.[j - 1]
          then min d (prev2.(j - 2) + 1)
          else d
        in
        cur.(j) <- d
      done;
      Array.blit prev 0 prev2 0 (m + 1);
      Array.blit cur 0 prev 0 (m + 1)
    done;
    prev.(m)
  end

(* The candidate closest to [name], if it is close enough to plausibly be
   a typo (distance <= max 2 (len/3)). *)
let suggest (name : string) (candidates : string list) : string option =
  let lname = String.lowercase_ascii name in
  let best =
    List.fold_left
      (fun acc c ->
        let d = edit_distance lname (String.lowercase_ascii c) in
        match acc with
        | Some (_, bd) when bd <= d -> acc
        | _ -> Some (c, d))
      None candidates
  in
  match best with
  | Some (c, d) when d <= max 2 (String.length name / 3) -> Some c
  | _ -> None

(* "unknown K 'name' (known: a, b, c). Did you mean 'x'?" *)
let unknown ~what (name : string) (candidates : string list) : string =
  let hint =
    match suggest name candidates with
    | Some s -> Printf.sprintf "  Did you mean %s?" s
    | None -> ""
  in
  Printf.sprintf "unknown %s %s (known: %s).%s" what name
    (String.concat ", " candidates)
    hint
