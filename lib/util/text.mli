(** String helpers for user-facing diagnostics. *)

val edit_distance : string -> string -> int
(** Damerau-Levenshtein distance (insert, delete, substitute, transpose
    adjacent), case-sensitive. *)

val suggest : string -> string list -> string option
(** The candidate (case-insensitively) closest to the given name, when
    close enough to plausibly be a typo. *)

val unknown : what:string -> string -> string list -> string
(** A standard "unknown <what> <name> (known: ...)" message with a
    nearest-match suggestion when one exists. *)
