(** Chunked, order-preserving parallel map on a persistent pool of OCaml 5
    domains.

    The parallelism degree defaults to the [TENET_JOBS] environment
    variable (1 when unset, i.e. fully sequential with no domain ever
    spawned); the CLI's [--jobs] overrides it via {!set_jobs}.  Results
    are written at their input index, so [map f l] equals [List.map f l]
    element-for-element at any job count; an exception raised by [f] is
    re-raised in the caller for the smallest failing index.  Nested calls
    (an [f] that itself maps) run sequentially — the outer call already
    owns the pool. *)

val jobs : unit -> int
(** Current parallelism degree (>= 1).  Resolved from [TENET_JOBS] on
    first use; raises [Failure] on a malformed or non-positive value. *)

val set_jobs : int -> unit
(** Override the parallelism degree.  Raises [Invalid_argument] on
    [n < 1].  Call before the first parallel [map] (the pool is sized on
    first use). *)

val parse_jobs : what:string -> string -> int
(** Strict job-count parsing shared with the CLI: positive integer or
    [Failure] with a message naming [what] was being parsed. *)

val map : ?chunk:int -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map: [map f l] equals [List.map f l]
    element-for-element at any job count.  [chunk] (default 1) is a
    floor on how many items one pool task processes; raise it when the
    per-item work is cheap enough that scheduling overhead would
    dominate (the result is unchanged — batching only coarsens the
    scheduling grain).  Raises [Invalid_argument] on [chunk < 1]. *)

val map_array : ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array

val init : ?chunk:int -> int -> (int -> 'b) -> 'b array
(** [init n f] is [Array.init n f] with the calls distributed over the
    pool. *)

(** {2 Cancellation}

    Cooperative cancellation for long-running request pipelines (the
    serve scheduler): a token is either cancelled explicitly or expires
    when its deadline passes; pipeline stages poll it between stages. *)

exception Cancelled

type token

val token : ?deadline_s:float -> unit -> token
(** A fresh token; with [deadline_s] it auto-cancels that many seconds
    after creation (measured by {!now}). *)

val cancel : token -> unit
val cancelled : token -> bool

val checkpoint : token -> unit
(** Raise {!Cancelled} if the token is cancelled or expired. *)

val now : unit -> float
(** The scheduler clock (wall-clock seconds by default). *)

val set_time_source : (unit -> float) -> unit
(** Inject a fake clock so deadline expiry is deterministic in tests. *)

(** {2 Bounded task submission}

    The serve scheduler's entry point: submit a task to the worker pool,
    refusing (backpressure) when too many submitted tasks are already
    waiting.  [map] chunks share the pool but never count against the
    bound. *)

val set_queue_limit : int -> unit
(** Bound on submitted-but-not-yet-started tasks.  Raises
    [Invalid_argument] on [n < 1].  Default: unbounded. *)

val try_submit : (unit -> unit) -> bool
(** Enqueue a task for the worker pool, spawning workers up to the
    {!jobs} degree on first use.  Returns [false] — and does nothing —
    when the waiting queue is at its limit. *)

val waiting : unit -> int
(** Submitted tasks not yet started (the queue-depth gauge). *)

val running : unit -> int
(** Submitted tasks currently executing on pool workers ([map] chunks
    are not counted).  The serving tier's "running" gauge. *)

val spawned_workers : unit -> int
(** How many worker domains the pool has spawned so far (they live for
    the rest of the process).  Tests use this to block every worker
    deterministically before exercising the overload path. *)

val set_task_wrap : ((unit -> unit) -> unit -> unit) -> unit
(** Install a hook applied (on the submitting domain, at submission
    time) to every task handed to a worker — both [map] work chunks and
    {!try_submit} tasks.  The telemetry layer uses it to carry the
    submitter's trace id into worker domains.  The wrapper must call the
    task exactly once; default is the identity. *)
