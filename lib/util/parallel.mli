(** Chunked, order-preserving parallel map on a persistent pool of OCaml 5
    domains.

    The parallelism degree defaults to the [TENET_JOBS] environment
    variable (1 when unset, i.e. fully sequential with no domain ever
    spawned); the CLI's [--jobs] overrides it via {!set_jobs}.  Results
    are written at their input index, so [map f l] equals [List.map f l]
    element-for-element at any job count; an exception raised by [f] is
    re-raised in the caller for the smallest failing index.  Nested calls
    (an [f] that itself maps) run sequentially — the outer call already
    owns the pool. *)

val jobs : unit -> int
(** Current parallelism degree (>= 1).  Resolved from [TENET_JOBS] on
    first use; raises [Failure] on a malformed or non-positive value. *)

val set_jobs : int -> unit
(** Override the parallelism degree.  Raises [Invalid_argument] on
    [n < 1].  Call before the first parallel [map] (the pool is sized on
    first use). *)

val parse_jobs : what:string -> string -> int
(** Strict job-count parsing shared with the CLI: positive integer or
    [Failure] with a message naming [what] was being parsed. *)

val map : ('a -> 'b) -> 'a list -> 'b list
val map_array : ('a -> 'b) -> 'a array -> 'b array

val init : int -> (int -> 'b) -> 'b array
(** [init n f] is [Array.init n f] with the calls distributed over the
    pool. *)
