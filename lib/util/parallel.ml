(* A small Domain-based work pool: chunked, order-preserving parallel map.

   Design:
   - The pool holds [jobs () - 1] worker domains, spawned lazily on the
     first parallel call and kept alive for the life of the process (one
     spawn per worker, not per call — [map] is called from hot paths such
     as per-disjunct union counting).
   - Each [map] call self-schedules: indices are handed out in chunks
     through an [Atomic.t] cursor, results land in a preallocated array
     at their input index (order preservation is structural, not sorted
     after the fact).  The calling domain participates, so a pool of
     size [jobs - 1] saturates [jobs] cores and [map] works even before
     any worker has been spawned.
   - Nested calls run sequentially: a task that itself calls [map] would
     otherwise deadlock-prone-ly enqueue work the pool may not drain
     promptly, and the outer call already owns all the parallelism.
   - Exceptions raised by [f] are re-raised in the caller, for the
     smallest input index that failed (deterministic regardless of
     scheduling).

   The parallelism degree comes from [set_jobs] (the CLI's [--jobs]) or
   the [TENET_JOBS] environment variable, defaulting to 1 (fully
   sequential — no domain is ever spawned, no behavior change). *)

let env_var = "TENET_JOBS"

let parse_jobs ~what s =
  match int_of_string_opt (String.trim s) with
  | Some n when n >= 1 -> n
  | Some n ->
      failwith
        (Printf.sprintf "bad %s %S: %d is not a positive job count" what s n)
  | None ->
      failwith
        (Printf.sprintf
           "bad %s %S: expected a positive integer number of jobs" what s)

let default_jobs () =
  match Sys.getenv_opt env_var with
  | None | Some "" -> 1
  | Some s -> parse_jobs ~what:env_var s

let jobs_ref : int option ref = ref None

let jobs () =
  match !jobs_ref with
  | Some n -> n
  | None ->
      let n = default_jobs () in
      jobs_ref := Some n;
      n

let set_jobs n =
  if n < 1 then invalid_arg "Parallel.set_jobs: job count must be >= 1";
  jobs_ref := Some n

(* ------------------------------------------------------------------ *)
(* Cancellation tokens.                                                *)
(* ------------------------------------------------------------------ *)

exception Cancelled

(* The clock is injectable so deadline expiry is deterministic in tests;
   the serve scheduler leaves the wall-clock default. *)
let time_source : (unit -> float) ref = ref Unix.gettimeofday
let set_time_source f = time_source := f
let now () = !time_source ()

type token = { t_flag : bool Atomic.t; t_deadline : float option }

let token ?deadline_s () =
  {
    t_flag = Atomic.make false;
    t_deadline = Option.map (fun d -> now () +. d) deadline_s;
  }

let cancel t = Atomic.set t.t_flag true

let cancelled t =
  Atomic.get t.t_flag
  || match t.t_deadline with Some d -> now () >= d | None -> false

let checkpoint t = if cancelled t then raise Cancelled

(* ------------------------------------------------------------------ *)
(* The pool.                                                           *)
(* ------------------------------------------------------------------ *)

(* True inside a worker domain or inside the caller's own participation
   in a [map]; used to force nested maps sequential. *)
let in_task_key = Domain.DLS.new_key (fun () -> false)

(* Hook applied to every task handed to a worker domain, captured on the
   submitting domain at submission time.  The telemetry layer installs a
   wrapper that re-establishes the submitter's trace id inside the
   worker (domain-local state does not cross [Domain.spawn]); the
   default is the identity. *)
let task_wrap : ((unit -> unit) -> unit -> unit) ref = ref Fun.id
let set_task_wrap f = task_wrap := f

let pool_mutex = Mutex.create ()
let pool_cv = Condition.create ()
let queue : (unit -> unit) Queue.t = Queue.create ()
let shutting_down = ref false
let workers : unit Domain.t list ref = ref []
let n_spawned = ref 0

let rec worker_loop () =
  Mutex.lock pool_mutex;
  while Queue.is_empty queue && not !shutting_down do
    Condition.wait pool_cv pool_mutex
  done;
  if Queue.is_empty queue then Mutex.unlock pool_mutex (* shutdown *)
  else begin
    let task = Queue.pop queue in
    Mutex.unlock pool_mutex;
    (* A raising task must not kill the worker: the pool never respawns
       a dead domain ([n_spawned] stays up), so one escaped exception —
       e.g. a serve response write to a disconnected client — would
       silently lose capacity for the life of the process, and the
       [at_exit] join would re-raise it.  [map]'s chunks capture their
       own exceptions per index; anything reaching here has no caller
       left to report to. *)
    (try task () with _ -> ());
    worker_loop ()
  end

let () =
  at_exit (fun () ->
      Mutex.lock pool_mutex;
      shutting_down := true;
      Condition.broadcast pool_cv;
      let ws = !workers in
      workers := [];
      Mutex.unlock pool_mutex;
      List.iter Domain.join ws)

(* Grow the pool to [n] workers; called outside [pool_mutex]. *)
let ensure_workers n =
  if !n_spawned < n then begin
    Mutex.lock pool_mutex;
    while !n_spawned < n && not !shutting_down do
      incr n_spawned;
      workers :=
        Domain.spawn (fun () ->
            Domain.DLS.set in_task_key true;
            worker_loop ())
        :: !workers
    done;
    Mutex.unlock pool_mutex
  end

(* ------------------------------------------------------------------ *)
(* Order-preserving map.                                               *)
(* ------------------------------------------------------------------ *)

let map_array ?(chunk = 1) (f : 'a -> 'b) (arr : 'a array) : 'b array =
  if chunk < 1 then invalid_arg "Parallel.map_array: chunk must be >= 1";
  let n = Array.length arr in
  let j = jobs () in
  if n <= 1 || j <= 1 || Domain.DLS.get in_task_key then Array.map f arr
  else begin
    ensure_workers (j - 1);
    let results : 'b option array = Array.make n None in
    let errors : exn option array = Array.make n None in
    let cursor = Atomic.make 0 in
    let finished = Atomic.make 0 in
    let done_mutex = Mutex.create () in
    let done_cv = Condition.create () in
    (* Small chunks keep the tail balanced; 4 chunks per job amortizes the
       atomic traffic without starving fast workers.  [chunk] raises the
       floor for callers whose per-item work is so cheap that the queue
       and cursor traffic would dominate (short DSE candidates): batching
       N items per pool task preserves order — results still land at
       their input index — it only coarsens the scheduling grain. *)
    let chunk = max chunk (n / (4 * j)) in
    let participate () =
      let continue = ref true in
      while !continue do
        let lo = Atomic.fetch_and_add cursor chunk in
        if lo >= n then continue := false
        else begin
          let hi = min n (lo + chunk) in
          for i = lo to hi - 1 do
            match f arr.(i) with
            | r -> results.(i) <- Some r
            | exception e -> errors.(i) <- Some e
          done;
          let total = Atomic.fetch_and_add finished (hi - lo) + (hi - lo) in
          if total = n then begin
            Mutex.lock done_mutex;
            Condition.broadcast done_cv;
            Mutex.unlock done_mutex
          end
        end
      done
    in
    (* Workers get the wrapped closure (captured here, on the submitting
       domain); the caller participates unwrapped — its domain-local
       context is already in place. *)
    let worker_participate = !task_wrap participate in
    Mutex.lock pool_mutex;
    for _ = 1 to min (j - 1) (1 + ((n - 1) / chunk)) do
      Queue.push worker_participate queue
    done;
    Condition.broadcast pool_cv;
    Mutex.unlock pool_mutex;
    Domain.DLS.set in_task_key true;
    Fun.protect
      ~finally:(fun () -> Domain.DLS.set in_task_key false)
      participate;
    Mutex.lock done_mutex;
    while Atomic.get finished < n do
      Condition.wait done_cv done_mutex
    done;
    Mutex.unlock done_mutex;
    Array.iter (function Some e -> raise e | None -> ()) errors;
    Array.map
      (function
        | Some r -> r
        | None -> assert false (* every index finished without error *))
      results
  end

let map ?chunk (f : 'a -> 'b) (l : 'a list) : 'b list =
  match l with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ -> Array.to_list (map_array ?chunk f (Array.of_list l))

let init ?chunk (n : int) (f : int -> 'b) : 'b array =
  map_array ?chunk f (Array.init n (fun i -> i))

(* ------------------------------------------------------------------ *)
(* Bounded task submission (the serve scheduler).                      *)
(* ------------------------------------------------------------------ *)

(* Tasks submitted here share the queue with [map]'s participate chunks,
   but only submitted-and-not-yet-started tasks count against the bound:
   [map] never sees backpressure, and in-flight tasks keep running while
   new submissions are refused. *)
let queue_limit = ref max_int
let n_waiting = ref 0 (* guarded by pool_mutex *)
let n_running = ref 0 (* guarded by pool_mutex; submitted tasks only *)

let set_queue_limit n =
  if n < 1 then invalid_arg "Parallel.set_queue_limit: limit must be >= 1";
  queue_limit := n

let waiting () =
  Mutex.lock pool_mutex;
  let n = !n_waiting in
  Mutex.unlock pool_mutex;
  n

let running () =
  Mutex.lock pool_mutex;
  let n = !n_running in
  Mutex.unlock pool_mutex;
  n

let spawned_workers () =
  Mutex.lock pool_mutex;
  let n = !n_spawned in
  Mutex.unlock pool_mutex;
  n

let try_submit (f : unit -> unit) : bool =
  (* A submitted task is drained by a worker, never by the submitting
     thread, so the pool needs at least one worker even at [jobs () = 1]
     (where [map] alone would spawn none). *)
  ensure_workers (max 1 (jobs ()));
  let f = !task_wrap f in
  Mutex.lock pool_mutex;
  if !n_waiting >= !queue_limit || !shutting_down then begin
    Mutex.unlock pool_mutex;
    false
  end
  else begin
    incr n_waiting;
    Queue.push
      (fun () ->
        Mutex.lock pool_mutex;
        decr n_waiting;
        incr n_running;
        Mutex.unlock pool_mutex;
        Fun.protect
          ~finally:(fun () ->
            Mutex.lock pool_mutex;
            decr n_running;
            Mutex.unlock pool_mutex)
          f)
      queue;
    Condition.signal pool_cv;
    Mutex.unlock pool_mutex;
    true
  end
