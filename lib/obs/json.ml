(* A minimal JSON tree with a printer and a parser.

   Lives in the telemetry library because every machine-readable output of
   the repository (Chrome traces, stats files, `--json` CLI results, bench
   timing files) goes through it; keeping it dependency-free avoids pulling
   a JSON package into the core stack.  The printer always emits valid
   JSON: non-finite floats become [null] and strings are escaped per RFC
   8259.  The parser accepts exactly what the printer emits plus ordinary
   whitespace and \uXXXX escapes, which is enough for round-trip tests and
   for consuming our own files. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Printing.                                                           *)
(* ------------------------------------------------------------------ *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_string f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else
    (* shortest representation that parses back to the same double *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec write buf ~indent ~level (j : t) =
  let pad n = if indent then Buffer.add_string buf (String.make (2 * n) ' ') in
  let sep_open c items write_item =
    Buffer.add_char buf c;
    if indent && items <> [] then Buffer.add_char buf '\n';
    List.iteri
      (fun i x ->
        if i > 0 then begin
          Buffer.add_char buf ',';
          if indent then Buffer.add_char buf '\n'
        end;
        pad (level + 1);
        write_item x)
      items;
    if indent && items <> [] then begin
      Buffer.add_char buf '\n';
      pad level
    end
  in
  match j with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_string f)
  | String s -> escape_string buf s
  | List items ->
      sep_open '[' items (fun x -> write buf ~indent ~level:(level + 1) x);
      Buffer.add_char buf ']'
  | Obj fields ->
      sep_open '{' fields (fun (k, v) ->
          escape_string buf k;
          Buffer.add_string buf (if indent then ": " else ":");
          write buf ~indent ~level:(level + 1) v);
      Buffer.add_char buf '}'

let to_string ?(pretty = false) (j : t) : string =
  let buf = Buffer.create 256 in
  write buf ~indent:pretty ~level:0 j;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing.                                                            *)
(* ------------------------------------------------------------------ *)

let parse (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "at %d: %s" !pos msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  (* encode one Unicode scalar value as UTF-8 *)
  let add_utf8 buf u =
    if u < 0x80 then Buffer.add_char buf (Char.chr u)
    else if u < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xc0 lor (u lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3f)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xe0 lor (u lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3f)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> advance (); Buffer.add_char buf '"'; go ()
          | Some '\\' -> advance (); Buffer.add_char buf '\\'; go ()
          | Some '/' -> advance (); Buffer.add_char buf '/'; go ()
          | Some 'n' -> advance (); Buffer.add_char buf '\n'; go ()
          | Some 'r' -> advance (); Buffer.add_char buf '\r'; go ()
          | Some 't' -> advance (); Buffer.add_char buf '\t'; go ()
          | Some 'b' -> advance (); Buffer.add_char buf '\b'; go ()
          | Some 'f' -> advance (); Buffer.add_char buf '\012'; go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              (match int_of_string_opt ("0x" ^ hex) with
              | Some u -> add_utf8 buf u
              | None -> fail "bad \\u escape");
              go ()
          | _ -> fail "bad escape")
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "bad number %S" tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ()
            | Some '}' -> advance ()
            | _ -> fail "expected , or }"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected , or ]"
          in
          elements ();
          List (List.rev !items)
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* ------------------------------------------------------------------ *)
(* Accessors (for tests and consumers of our own files).               *)
(* ------------------------------------------------------------------ *)

let member (key : string) (j : t) : t option =
  match j with Obj fields -> List.assoc_opt key fields | _ -> None

let to_int = function Int i -> Some i | _ -> None
let to_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None
let to_list = function List l -> Some l | _ -> None
let to_str = function String s -> Some s | _ -> None
