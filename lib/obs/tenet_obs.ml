(* Telemetry: hierarchical spans, named counters and histograms, and
   exporters (human summary, Chrome-trace JSON, flat stats JSON).

   Design constraints, in order:
   1. Zero-cost when disabled (the default).  Every recording entry point
      first reads one mutable bool; instrumented hot loops (the counting
      engine visits millions of points) must pay only that check.
   2. Global registry.  Instrumentation sites hold a [counter] cell
      obtained once at module init, so the enabled-mode cost of a counter
      bump is a field update, not a hashtable probe.
   3. Deterministic for tests.  The clock is injectable ([set_clock]), and
      exporters sort by name / completion order so the JSON shape is
      stable under a fake clock.

   Spans nest by dynamic scope: [with_span] pushes a depth, times the
   thunk (exception-safe), and records a completed-span row.  The Chrome
   trace exporter emits them as "X" (complete) events on one pid/tid;
   chrome://tracing and Perfetto reconstruct the nesting from ts/dur.

   Domain-safety: the counting engine and the DSE evaluator run on
   multiple domains (Tenet_util.Parallel), so counter cells are
   [Atomic.t]-backed, span depth is domain-local, and every cold-path
   structure (registry, histogram cells, completed-span list) is guarded
   by one mutex.  The disabled path is still a single bool check. *)

module Json = Json

(* ------------------------------------------------------------------ *)
(* State.                                                              *)
(* ------------------------------------------------------------------ *)

type counter = { c_name : string; c_cell : int Atomic.t }

type histogram = {
  h_name : string;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type span = {
  sp_name : string;
  sp_args : (string * string) list;
  sp_start : float; (* seconds, relative to [epoch] *)
  sp_dur : float;
  sp_depth : int; (* nesting depth at the time the span was open *)
  sp_seq : int; (* completion order, 0-based *)
}

let enabled_flag = ref false
let clock : (unit -> float) ref = ref Unix.gettimeofday
let epoch = ref 0.
let counters_tbl : (string, counter) Hashtbl.t = Hashtbl.create 64
let histograms_tbl : (string, histogram) Hashtbl.t = Hashtbl.create 16
let completed : span list ref = ref [] (* newest first *)
let seq = ref 0

(* Span nesting depth is per-domain: concurrent spans on worker domains
   nest against their own domain's stack, not each other's. *)
let depth_key = Domain.DLS.new_key (fun () -> 0)

(* One lock for every cold-path structure above (registry, histograms,
   completed spans).  Counter bumps never take it. *)
let state_mutex = Mutex.create ()

let locked f =
  Mutex.lock state_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock state_mutex) f

let enabled () = !enabled_flag

let enable () =
  epoch := !clock ();
  enabled_flag := true

let disable () = enabled_flag := false

let reset () =
  locked (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c.c_cell 0) counters_tbl;
      Hashtbl.reset histograms_tbl;
      completed := [];
      seq := 0);
  Domain.DLS.set depth_key 0;
  epoch := !clock ()

let set_clock f =
  clock := f;
  epoch := f ()

(* ------------------------------------------------------------------ *)
(* Counters.                                                           *)
(* ------------------------------------------------------------------ *)

(* Find-or-create: instrumentation sites call this once at module init,
   so the cell exists (at value 0) even when telemetry never runs. *)
let counter (name : string) : counter =
  locked (fun () ->
      match Hashtbl.find_opt counters_tbl name with
      | Some c -> c
      | None ->
          let c = { c_name = name; c_cell = Atomic.make 0 } in
          Hashtbl.add counters_tbl name c;
          c)

let add (c : counter) (by : int) : unit =
  if !enabled_flag then ignore (Atomic.fetch_and_add c.c_cell by)

let incr (c : counter) : unit = if !enabled_flag then Atomic.incr c.c_cell
let value (c : counter) : int = Atomic.get c.c_cell

(* By-name convenience for cold paths. *)
let count ?(by = 1) (name : string) : unit =
  if !enabled_flag then add (counter name) by

let counters () : (string * int) list =
  locked (fun () ->
      Hashtbl.fold
        (fun name c acc -> (name, Atomic.get c.c_cell) :: acc)
        counters_tbl [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* ------------------------------------------------------------------ *)
(* Histograms.                                                         *)
(* ------------------------------------------------------------------ *)

let observe (name : string) (v : float) : unit =
  if !enabled_flag then
    locked (fun () ->
        let h =
          match Hashtbl.find_opt histograms_tbl name with
          | Some h -> h
          | None ->
              let h =
                { h_name = name; h_count = 0; h_sum = 0.; h_min = infinity;
                  h_max = neg_infinity }
              in
              Hashtbl.add histograms_tbl name h;
              h
        in
        h.h_count <- h.h_count + 1;
        h.h_sum <- h.h_sum +. v;
        if v < h.h_min then h.h_min <- v;
        if v > h.h_max then h.h_max <- v)

let histograms () : histogram list =
  locked (fun () -> Hashtbl.fold (fun _ h acc -> h :: acc) histograms_tbl [])
  |> List.sort (fun a b -> String.compare a.h_name b.h_name)

(* ------------------------------------------------------------------ *)
(* Spans.                                                              *)
(* ------------------------------------------------------------------ *)

let with_span ?(args : (string * string) list = []) (name : string)
    (f : unit -> 'a) : 'a =
  if not !enabled_flag then f ()
  else begin
    let d = Domain.DLS.get depth_key in
    Domain.DLS.set depth_key (d + 1);
    let t0 = !clock () in
    let finish () =
      let t1 = !clock () in
      Domain.DLS.set depth_key d;
      locked (fun () ->
          let sp =
            {
              sp_name = name;
              sp_args = args;
              sp_start = t0 -. !epoch;
              sp_dur = t1 -. t0;
              sp_depth = d;
              sp_seq = !seq;
            }
          in
          seq := !seq + 1;
          completed := sp :: !completed)
    in
    match f () with
    | r ->
        finish ();
        r
    | exception e ->
        finish ();
        raise e
  end

(* Completed spans in completion order (inner spans before the parents
   that enclose them). *)
let spans () : span list = List.rev (locked (fun () -> !completed))

(* ------------------------------------------------------------------ *)
(* Aggregation & exporters.                                            *)
(* ------------------------------------------------------------------ *)

type span_stat = {
  ss_name : string;
  ss_count : int;
  ss_total : float; (* seconds, wall-clock inclusive *)
  ss_max : float;
}

let span_stats () : span_stat list =
  let tbl : (string, span_stat ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun sp ->
      match Hashtbl.find_opt tbl sp.sp_name with
      | Some r ->
          r :=
            {
              !r with
              ss_count = !r.ss_count + 1;
              ss_total = !r.ss_total +. sp.sp_dur;
              ss_max = Float.max !r.ss_max sp.sp_dur;
            }
      | None ->
          Hashtbl.add tbl sp.sp_name
            (ref
               {
                 ss_name = sp.sp_name;
                 ss_count = 1;
                 ss_total = sp.sp_dur;
                 ss_max = sp.sp_dur;
               }))
    (spans ());
  Hashtbl.fold (fun _ r acc -> !r :: acc) tbl []
  |> List.sort (fun a b -> compare b.ss_total a.ss_total)

(* Human-readable summary: span table (by total time) then counters. *)
let summary () : string =
  let buf = Buffer.create 512 in
  let stats = span_stats () in
  if stats <> [] then begin
    Buffer.add_string buf
      (Printf.sprintf "%-32s %8s %12s %12s\n" "span" "calls" "total_ms"
         "max_ms");
    List.iter
      (fun s ->
        Buffer.add_string buf
          (Printf.sprintf "%-32s %8d %12.3f %12.3f\n" s.ss_name s.ss_count
             (1e3 *. s.ss_total) (1e3 *. s.ss_max)))
      stats
  end;
  let cs = List.filter (fun (_, v) -> v <> 0) (counters ()) in
  if cs <> [] then begin
    if stats <> [] then Buffer.add_char buf '\n';
    Buffer.add_string buf (Printf.sprintf "%-32s %12s\n" "counter" "value");
    List.iter
      (fun (name, v) ->
        Buffer.add_string buf (Printf.sprintf "%-32s %12d\n" name v))
      cs
  end;
  List.iter
    (fun h ->
      Buffer.add_string buf
        (Printf.sprintf "%-32s n=%d sum=%g min=%g max=%g\n" h.h_name h.h_count
           h.h_sum h.h_min h.h_max))
    (histograms ());
  Buffer.contents buf

(* Chrome-trace-format JSON (the "JSON Array Format" with the object
   wrapper): complete ("X") events for spans plus counter ("C") events at
   the end of the timeline.  Load via chrome://tracing or ui.perfetto.dev. *)
let chrome_trace () : Json.t =
  let us t = Float.round (1e6 *. t) in
  let span_events =
    List.map
      (fun sp ->
        let args =
          List.map (fun (k, v) -> (k, Json.String v)) sp.sp_args
        in
        Json.Obj
          [
            ("name", Json.String sp.sp_name);
            ("cat", Json.String "tenet");
            ("ph", Json.String "X");
            ("pid", Json.Int 1);
            ("tid", Json.Int 1);
            ("ts", Json.Float (us sp.sp_start));
            ("dur", Json.Float (us sp.sp_dur));
            ("args", Json.Obj args);
          ])
      (spans ())
  in
  let end_ts =
    List.fold_left
      (fun acc sp -> Float.max acc (us (sp.sp_start +. sp.sp_dur)))
      0. (spans ())
  in
  let counter_events =
    List.filter_map
      (fun (name, v) ->
        if v = 0 then None
        else
          Some
            (Json.Obj
               [
                 ("name", Json.String name);
                 ("ph", Json.String "C");
                 ("pid", Json.Int 1);
                 ("ts", Json.Float end_ts);
                 ("args", Json.Obj [ ("value", Json.Int v) ]);
               ]))
      (counters ())
  in
  Json.Obj
    [
      ("displayTimeUnit", Json.String "ms");
      ("traceEvents", Json.List (span_events @ counter_events));
    ]

(* Flat stats JSON: counters, span aggregates, histograms. *)
let stats () : Json.t =
  let counter_fields =
    List.filter_map
      (fun (name, v) -> if v = 0 then None else Some (name, Json.Int v))
      (counters ())
  in
  let span_fields =
    List.map
      (fun s ->
        ( s.ss_name,
          Json.Obj
            [
              ("calls", Json.Int s.ss_count);
              ("total_s", Json.Float s.ss_total);
              ("max_s", Json.Float s.ss_max);
            ] ))
      (List.sort
         (fun a b -> String.compare a.ss_name b.ss_name)
         (span_stats ()))
  in
  let histogram_fields =
    List.map
      (fun h ->
        ( h.h_name,
          Json.Obj
            [
              ("count", Json.Int h.h_count);
              ("sum", Json.Float h.h_sum);
              ("min", Json.Float h.h_min);
              ("max", Json.Float h.h_max);
              ( "mean",
                Json.Float
                  (if h.h_count = 0 then 0.
                   else h.h_sum /. float_of_int h.h_count) );
            ] ))
      (histograms ())
  in
  Json.Obj
    [
      ("counters", Json.Obj counter_fields);
      ("spans", Json.Obj span_fields);
      ("histograms", Json.Obj histogram_fields);
    ]

let write_file (path : string) (contents : string) : unit =
  let oc = open_out path in
  output_string oc contents;
  output_char oc '\n';
  close_out oc

let write_trace (path : string) : unit =
  write_file path (Json.to_string (chrome_trace ()))

let write_stats (path : string) : unit =
  write_file path (Json.to_string ~pretty:true (stats ()))
