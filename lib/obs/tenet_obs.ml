(* Telemetry: hierarchical spans, named counters, log-bucketed quantile
   histograms, snapshot/delta windows, and exporters (human summary,
   Chrome-trace JSON, flat stats JSON, Prometheus text exposition).

   Design constraints, in order:
   1. Zero-cost when disabled (the default).  Every recording entry point
      first reads one mutable bool; instrumented hot loops (the counting
      engine visits millions of points) must pay only that check.
   2. Global registry.  Instrumentation sites hold a [counter] or
      [histogram] cell obtained once at module init, so the enabled-mode
      cost of a bump is a handful of atomic updates, not a hashtable
      probe or a global mutex.
   3. Service-grade.  A long-running `tenet serve` process keeps
      telemetry enabled for its whole life, so every recording structure
      is bounded: completed spans live in a ring buffer, slow-request
      span trees in a K-bounded exemplar store, and rates over a recent
      window come from {!Snapshot.diff} — never from [reset].
   4. Deterministic for tests.  The clock is injectable ([set_clock]), and
      exporters sort by name / completion order so the JSON shape is
      stable under a fake clock.

   Spans nest by dynamic scope: [with_span] pushes a depth, times the
   thunk (exception-safe), and records a completed-span row.  The Chrome
   trace exporter emits them as "X" (complete) events on one pid/tid;
   chrome://tracing and Perfetto reconstruct the nesting from ts/dur.

   Domain-safety: the counting engine, the DSE evaluator and the serve
   workers run on multiple domains (Tenet_util.Parallel), so counter and
   histogram cells are [Atomic.t]-backed, span depth and the current
   trace id are domain-local, and every cold-path structure (registry,
   span ring, exemplars) is guarded by one mutex.  The disabled path is
   still a single bool check.  [reset] bumps a global epoch that stales
   every domain's local depth, so worker domains that held a nonzero
   span depth across a reset restart from depth 0 instead of skewing
   later nesting. *)

module Json = Json

(* ------------------------------------------------------------------ *)
(* State.                                                              *)
(* ------------------------------------------------------------------ *)

type counter = { c_name : string; c_cell : int Atomic.t }

(* Log-spaced histogram bucket upper bounds: {1, 2, 5} x 10^k for
   k = -9 .. 8, shared by every histogram so snapshots can be diffed
   bucket-by-bucket.  Values above the last bound land in an implicit
   +Inf overflow bucket; values <= 0 land in the first bucket. *)
let bucket_bounds : float array =
  Array.init 54 (fun i ->
      let k = (i / 3) - 9 in
      let m = match i mod 3 with 0 -> 1. | 1 -> 2. | _ -> 5. in
      m *. (10. ** float_of_int k))

let n_buckets = Array.length bucket_bounds + 1 (* + overflow *)

(* First bucket whose upper bound is >= v (binary search; the overflow
   bucket catches everything beyond the last bound). *)
let bucket_index (v : float) : int =
  let n = Array.length bucket_bounds in
  if not (v <= bucket_bounds.(n - 1)) then n
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if v <= bucket_bounds.(mid) then hi := mid else lo := mid + 1
    done;
    !lo
  end

type histogram = {
  h_name : string;
  h_count : int Atomic.t;
  h_sum : float Atomic.t;
  h_min : float Atomic.t;
  h_max : float Atomic.t;
  h_buckets : int Atomic.t array; (* length [n_buckets] *)
}

type span = {
  sp_name : string;
  sp_args : (string * string) list;
  sp_trace : string; (* request/trace id; "" when untraced *)
  sp_start : float; (* seconds, relative to [epoch] *)
  sp_dur : float;
  sp_depth : int; (* nesting depth at the time the span was open *)
  sp_seq : int; (* completion order, 0-based *)
}

type exemplar = {
  ex_trace : string;
  ex_dur : float; (* root span duration, seconds *)
  ex_spans : span list; (* full tree, completion order, root last *)
}

let enabled_flag = ref false
let clock : (unit -> float) ref = ref Unix.gettimeofday
let epoch = ref 0.
let counters_tbl : (string, counter) Hashtbl.t = Hashtbl.create 64
let histograms_tbl : (string, histogram) Hashtbl.t = Hashtbl.create 16
let seq = ref 0

(* Completed spans: a bounded ring so a long-running server retains the
   most recent [span_capacity] spans instead of growing without bound.
   All four cells are guarded by [state_mutex]; the array is reallocated
   lazily when the capacity changes. *)
let default_span_capacity = 4096
let span_capacity = ref default_span_capacity
let ring : span option array ref = ref [||]
let ring_start = ref 0 (* index of the oldest retained span *)
let ring_len = ref 0
let n_spans_dropped = ref 0

(* Slow-request exemplars: the span trees of the K slowest traced
   requests, slowest first.  Guarded by [state_mutex]. *)
let default_exemplar_capacity = 8
let exemplar_capacity = ref default_exemplar_capacity
let exemplars_list : exemplar list ref = ref []

(* [reset] bumps this; every piece of domain-local state is stamped with
   the epoch it was written under and treated as zero when stale, so a
   reset on one domain cannot leave skewed span depths (or a half-built
   request accumulator) alive on pool worker domains. *)
let reset_epoch = Atomic.make 0

(* Span nesting depth is per-domain: concurrent spans on worker domains
   nest against their own domain's stack, not each other's. *)
let depth_key = Domain.DLS.new_key (fun () -> (0, 0)) (* epoch, depth *)

let get_depth () =
  let e, d = Domain.DLS.get depth_key in
  if e = Atomic.get reset_epoch then d else 0

let set_depth d = Domain.DLS.set depth_key (Atomic.get reset_epoch, d)

(* The current trace id (usually the serve request id), per-domain. *)
let trace_key = Domain.DLS.new_key (fun () -> "")
let current_trace () = Domain.DLS.get trace_key

let with_trace ~(trace : string) (f : unit -> 'a) : 'a =
  let prev = Domain.DLS.get trace_key in
  Domain.DLS.set trace_key trace;
  Fun.protect ~finally:(fun () -> Domain.DLS.set trace_key prev) f

(* Per-domain accumulator for the current traced request's completed
   spans (feeds the exemplar store when the root span closes).  Bounded:
   a pathological request cannot grow it past [acc_span_cap]. *)
let acc_span_cap = 1024
let acc_key = Domain.DLS.new_key (fun () -> (0, ref ([] : span list), ref 0))

let acc_cells () =
  let e, spans, count = Domain.DLS.get acc_key in
  let cur = Atomic.get reset_epoch in
  if e = cur then (spans, count)
  else begin
    let spans = ref [] and count = ref 0 in
    Domain.DLS.set acc_key (cur, spans, count);
    (spans, count)
  end

(* One lock for every cold-path structure above (registry, span ring,
   exemplars).  Counter and histogram bumps never take it. *)
let state_mutex = Mutex.create ()

let locked f =
  Mutex.lock state_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock state_mutex) f

let enabled () = !enabled_flag

let enable () =
  epoch := !clock ();
  enabled_flag := true

let disable () = enabled_flag := false

let reset () =
  locked (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c.c_cell 0) counters_tbl;
      Hashtbl.iter
        (fun _ h ->
          Atomic.set h.h_count 0;
          Atomic.set h.h_sum 0.;
          Atomic.set h.h_min infinity;
          Atomic.set h.h_max neg_infinity;
          Array.iter (fun b -> Atomic.set b 0) h.h_buckets)
        histograms_tbl;
      ring_start := 0;
      ring_len := 0;
      n_spans_dropped := 0;
      exemplars_list := [];
      seq := 0);
  Atomic.incr reset_epoch;
  Domain.DLS.set depth_key (Atomic.get reset_epoch, 0);
  epoch := !clock ()

let set_clock f =
  clock := f;
  epoch := f ()

let now () = !clock ()

(* ------------------------------------------------------------------ *)
(* Counters.                                                           *)
(* ------------------------------------------------------------------ *)

(* Find-or-create: instrumentation sites call this once at module init,
   so the cell exists (at value 0) even when telemetry never runs. *)
let counter (name : string) : counter =
  locked (fun () ->
      match Hashtbl.find_opt counters_tbl name with
      | Some c -> c
      | None ->
          let c = { c_name = name; c_cell = Atomic.make 0 } in
          Hashtbl.add counters_tbl name c;
          c)

let add (c : counter) (by : int) : unit =
  if !enabled_flag then ignore (Atomic.fetch_and_add c.c_cell by)

let incr (c : counter) : unit = if !enabled_flag then Atomic.incr c.c_cell
let value (c : counter) : int = Atomic.get c.c_cell

(* By-name convenience for cold paths. *)
let count ?(by = 1) (name : string) : unit =
  if !enabled_flag then add (counter name) by

let counters () : (string * int) list =
  locked (fun () ->
      Hashtbl.fold
        (fun name c acc -> (name, Atomic.get c.c_cell) :: acc)
        counters_tbl [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* ------------------------------------------------------------------ *)
(* Histograms.                                                         *)
(* ------------------------------------------------------------------ *)

(* Lock-free float cells: CAS loops over the boxed value.  Contention is
   per-histogram and observations are rare next to counter bumps. *)
let rec atomic_add_float (a : float Atomic.t) (v : float) =
  let old = Atomic.get a in
  if not (Atomic.compare_and_set a old (old +. v)) then atomic_add_float a v

let rec atomic_min_float (a : float Atomic.t) (v : float) =
  let old = Atomic.get a in
  if v < old && not (Atomic.compare_and_set a old v) then atomic_min_float a v

let rec atomic_max_float (a : float Atomic.t) (v : float) =
  let old = Atomic.get a in
  if v > old && not (Atomic.compare_and_set a old v) then atomic_max_float a v

(* Find-or-create, like {!counter}: hot paths pre-register the cell so
   an observation is a few atomic updates and never takes the mutex. *)
let histogram (name : string) : histogram =
  locked (fun () ->
      match Hashtbl.find_opt histograms_tbl name with
      | Some h -> h
      | None ->
          let h =
            {
              h_name = name;
              h_count = Atomic.make 0;
              h_sum = Atomic.make 0.;
              h_min = Atomic.make infinity;
              h_max = Atomic.make neg_infinity;
              h_buckets = Array.init n_buckets (fun _ -> Atomic.make 0);
            }
          in
          Hashtbl.add histograms_tbl name h;
          h)

let observe_h (h : histogram) (v : float) : unit =
  if !enabled_flag then begin
    Atomic.incr h.h_count;
    atomic_add_float h.h_sum v;
    atomic_min_float h.h_min v;
    atomic_max_float h.h_max v;
    Atomic.incr h.h_buckets.(bucket_index v)
  end

let observe (name : string) (v : float) : unit =
  if !enabled_flag then observe_h (histogram name) v

let hist_count (h : histogram) : int = Atomic.get h.h_count
let hist_sum (h : histogram) : float = Atomic.get h.h_sum

let hist_min (h : histogram) : float =
  if hist_count h = 0 then 0. else Atomic.get h.h_min

let hist_max (h : histogram) : float =
  if hist_count h = 0 then 0. else Atomic.get h.h_max

let hist_buckets (h : histogram) : int array = Array.map Atomic.get h.h_buckets

(* Quantile estimation over the log buckets: find the bucket holding the
   target rank, interpolate linearly inside it, clamp to the observed
   min/max (which tightens the first/last bucket considerably). *)
let quantile_from ~(count : int) ~(vmin : float) ~(vmax : float)
    (buckets : int array) (q : float) : float =
  if count = 0 then 0.
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let rank = q *. float_of_int count in
    let nb = Array.length buckets in
    let rec go i cum =
      if i >= nb then vmax
      else begin
        let c = buckets.(i) in
        let cum' = cum + c in
        if c > 0 && float_of_int cum' >= rank then begin
          let lower = if i = 0 then 0. else bucket_bounds.(i - 1) in
          let upper =
            if i < Array.length bucket_bounds then bucket_bounds.(i) else vmax
          in
          let frac = (rank -. float_of_int cum) /. float_of_int c in
          Float.max vmin (Float.min vmax (lower +. ((upper -. lower) *. frac)))
        end
        else go (i + 1) cum'
      end
    in
    go 0 0
  end

let quantile (h : histogram) (q : float) : float =
  quantile_from ~count:(hist_count h) ~vmin:(hist_min h) ~vmax:(hist_max h)
    (hist_buckets h) q

(* Only histograms with at least one observation: registered-but-silent
   cells (pre-registration is cheap and common) are not "data". *)
let histograms () : histogram list =
  locked (fun () -> Hashtbl.fold (fun _ h acc -> h :: acc) histograms_tbl [])
  |> List.filter (fun h -> hist_count h > 0)
  |> List.sort (fun a b -> String.compare a.h_name b.h_name)

(* ------------------------------------------------------------------ *)
(* Snapshots: lifetime totals and recent-window deltas.                *)
(* ------------------------------------------------------------------ *)

module Snapshot = struct
  type hist = {
    hs_count : int;
    hs_sum : float;
    hs_min : float;
    hs_max : float;
    hs_buckets : int array;
  }

  type t = {
    s_at : float; (* clock reading when taken *)
    s_duration : float; (* seconds this snapshot covers *)
    s_counters : (string * int) list; (* sorted by name *)
    s_hists : (string * hist) list; (* sorted by name *)
  }

  let take () : t =
    let at = !clock () in
    {
      s_at = at;
      s_duration = at -. !epoch;
      s_counters = counters ();
      s_hists =
        List.map
          (fun h ->
            ( h.h_name,
              {
                hs_count = hist_count h;
                hs_sum = hist_sum h;
                hs_min = hist_min h;
                hs_max = hist_max h;
                hs_buckets = hist_buckets h;
              } ))
          (histograms ());
    }

  let counter (t : t) (name : string) : int =
    match List.assoc_opt name t.s_counters with Some v -> v | None -> 0

  let hist (t : t) (name : string) : hist option =
    List.assoc_opt name t.s_hists

  let quantile (h : hist) (q : float) : float =
    quantile_from ~count:h.hs_count ~vmin:h.hs_min ~vmax:h.hs_max h.hs_buckets
      q

  let mean (h : hist) : float =
    if h.hs_count = 0 then 0. else h.hs_sum /. float_of_int h.hs_count

  (* The window [older .. newer]: counters and bucket counts subtract
     (clamped at 0 in case a reset happened in between); the window's
     min/max are re-derived from the surviving delta buckets, so window
     quantiles interpolate against window bounds, not lifetime ones. *)
  let diff ~(newer : t) ~(older : t) : t =
    let dcounters =
      List.map
        (fun (name, v) -> (name, max 0 (v - counter older name)))
        newer.s_counters
    in
    let dhist name (h : hist) : hist =
      let old_buckets =
        match List.assoc_opt name older.s_hists with
        | Some o -> o.hs_buckets
        | None -> Array.make (Array.length h.hs_buckets) 0
      in
      let buckets =
        Array.mapi (fun i c -> max 0 (c - old_buckets.(i))) h.hs_buckets
      in
      let old_count, old_sum =
        match List.assoc_opt name older.s_hists with
        | Some o -> (o.hs_count, o.hs_sum)
        | None -> (0, 0.)
      in
      let count = max 0 (h.hs_count - old_count) in
      let nb = Array.length buckets in
      let lo = ref (-1) and hi = ref (-1) in
      Array.iteri
        (fun i c ->
          if c > 0 then begin
            if !lo < 0 then lo := i;
            hi := i
          end)
        buckets;
      let vmin =
        if count = 0 || !lo < 0 then 0.
        else if !lo = 0 then Float.min h.hs_min bucket_bounds.(0)
        else bucket_bounds.(!lo - 1)
      in
      let vmax =
        if count = 0 || !hi < 0 then 0.
        else if !hi >= nb - 1 then h.hs_max
        else bucket_bounds.(!hi)
      in
      {
        hs_count = count;
        hs_sum = h.hs_sum -. old_sum;
        hs_min = vmin;
        hs_max = vmax;
        hs_buckets = buckets;
      }
    in
    {
      s_at = newer.s_at;
      s_duration = newer.s_at -. older.s_at;
      s_counters = dcounters;
      s_hists = List.map (fun (name, h) -> (name, dhist name h)) newer.s_hists;
    }

  (* [rate t name] is events per second over the snapshot's duration. *)
  let rate (t : t) (name : string) : float =
    if t.s_duration <= 0. then 0.
    else float_of_int (counter t name) /. t.s_duration

  let hist_json (h : hist) : Json.t =
    Json.Obj
      [
        ("count", Json.Int h.hs_count);
        ("sum", Json.Float h.hs_sum);
        ("min", Json.Float h.hs_min);
        ("max", Json.Float h.hs_max);
        ("mean", Json.Float (mean h));
        ("p50", Json.Float (quantile h 0.5));
        ("p90", Json.Float (quantile h 0.9));
        ("p99", Json.Float (quantile h 0.99));
        ("p999", Json.Float (quantile h 0.999));
      ]

  let to_json (t : t) : Json.t =
    Json.Obj
      [
        ("at", Json.Float t.s_at);
        ("duration_s", Json.Float t.s_duration);
        ( "counters",
          Json.Obj
            (List.filter_map
               (fun (name, v) ->
                 if v = 0 then None else Some (name, Json.Int v))
               t.s_counters) );
        ( "histograms",
          Json.Obj
            (List.filter_map
               (fun (name, h) ->
                 if h.hs_count = 0 then None else Some (name, hist_json h))
               t.s_hists) );
      ]
end

(* ------------------------------------------------------------------ *)
(* Spans.                                                              *)
(* ------------------------------------------------------------------ *)

let set_span_capacity (n : int) : unit =
  if n < 0 then invalid_arg "Obs.set_span_capacity: capacity must be >= 0";
  locked (fun () ->
      span_capacity := n;
      ring := [||];
      ring_start := 0;
      ring_len := 0)

let spans_dropped () : int = locked (fun () -> !n_spans_dropped)

(* Called under [state_mutex]. *)
let record_completed (sp : span) : unit =
  let cap = !span_capacity in
  if cap = 0 then Stdlib.incr n_spans_dropped
  else begin
    if Array.length !ring <> cap then begin
      ring := Array.make cap None;
      ring_start := 0;
      ring_len := 0
    end;
    let r = !ring in
    if !ring_len < cap then begin
      r.((!ring_start + !ring_len) mod cap) <- Some sp;
      Stdlib.incr ring_len
    end
    else begin
      r.(!ring_start) <- Some sp;
      ring_start := (!ring_start + 1) mod cap;
      Stdlib.incr n_spans_dropped
    end
  end

let set_exemplar_capacity (n : int) : unit =
  if n < 0 then invalid_arg "Obs.set_exemplar_capacity: capacity must be >= 0";
  locked (fun () ->
      exemplar_capacity := n;
      let rec take k = function
        | x :: r when k > 0 -> x :: take (k - 1) r
        | _ -> []
      in
      exemplars_list := take n !exemplars_list)

(* One entry per trace id: a fan-out inside a traced request can record
   depth-0 spans on worker domains under the same trace; the request's
   real root encloses them all, so keeping the longest entry per trace
   keeps the root. *)
let offer_exemplar (ex : exemplar) : unit =
  locked (fun () ->
      if
        List.exists
          (fun e -> e.ex_trace = ex.ex_trace && e.ex_dur >= ex.ex_dur)
          !exemplars_list
      then ()
      else begin
        let l =
          List.filter (fun e -> e.ex_trace <> ex.ex_trace) !exemplars_list
        in
        let rec insert = function
          | e :: r when e.ex_dur >= ex.ex_dur -> e :: insert r
          | l -> ex :: l
        in
        let rec take k = function
          | x :: r when k > 0 -> x :: take (k - 1) r
          | _ -> []
        in
        exemplars_list := take !exemplar_capacity (insert l)
      end)

let exemplars () : exemplar list = locked (fun () -> !exemplars_list)

let with_span ?(args : (string * string) list = []) (name : string)
    (f : unit -> 'a) : 'a =
  if not !enabled_flag then f ()
  else begin
    let d = get_depth () in
    set_depth (d + 1);
    let trace = current_trace () in
    (* a traced root span opens a fresh request accumulation *)
    (if d = 0 && trace <> "" then begin
       let spans, count = acc_cells () in
       spans := [];
       count := 0
     end);
    let t0 = !clock () in
    let finish () =
      let t1 = !clock () in
      set_depth d;
      let sp =
        locked (fun () ->
            let sp =
              {
                sp_name = name;
                sp_args = args;
                sp_trace = trace;
                sp_start = t0 -. !epoch;
                sp_dur = t1 -. t0;
                sp_depth = d;
                sp_seq = !seq;
              }
            in
            seq := !seq + 1;
            record_completed sp;
            sp)
      in
      if trace <> "" then begin
        let spans, count = acc_cells () in
        if !count < acc_span_cap then begin
          spans := sp :: !spans;
          Stdlib.incr count
        end;
        if d = 0 then begin
          offer_exemplar
            { ex_trace = trace; ex_dur = sp.sp_dur; ex_spans = List.rev !spans };
          spans := [];
          count := 0
        end
      end
    in
    match f () with
    | r ->
        finish ();
        r
    | exception e ->
        finish ();
        raise e
  end

(* Retained completed spans in completion order (inner spans before the
   parents that enclose them); the ring keeps the most recent
   [span_capacity], and {!spans_dropped} counts the overflow. *)
let spans () : span list =
  locked (fun () ->
      let r = !ring in
      let cap = Array.length r in
      List.init !ring_len (fun i ->
          match r.((!ring_start + i) mod cap) with
          | Some sp -> sp
          | None -> assert false))

(* ------------------------------------------------------------------ *)
(* Aggregation & exporters.                                            *)
(* ------------------------------------------------------------------ *)

type span_stat = {
  ss_name : string;
  ss_count : int;
  ss_total : float; (* seconds, wall-clock inclusive *)
  ss_max : float;
}

let span_stats () : span_stat list =
  let tbl : (string, span_stat ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun sp ->
      match Hashtbl.find_opt tbl sp.sp_name with
      | Some r ->
          r :=
            {
              !r with
              ss_count = !r.ss_count + 1;
              ss_total = !r.ss_total +. sp.sp_dur;
              ss_max = Float.max !r.ss_max sp.sp_dur;
            }
      | None ->
          Hashtbl.add tbl sp.sp_name
            (ref
               {
                 ss_name = sp.sp_name;
                 ss_count = 1;
                 ss_total = sp.sp_dur;
                 ss_max = sp.sp_dur;
               }))
    (spans ());
  Hashtbl.fold (fun _ r acc -> !r :: acc) tbl []
  |> List.sort (fun a b -> compare b.ss_total a.ss_total)

(* Human-readable summary: span table (by total time) then counters. *)
let summary () : string =
  let buf = Buffer.create 512 in
  let stats = span_stats () in
  if stats <> [] then begin
    Buffer.add_string buf
      (Printf.sprintf "%-32s %8s %12s %12s\n" "span" "calls" "total_ms"
         "max_ms");
    List.iter
      (fun s ->
        Buffer.add_string buf
          (Printf.sprintf "%-32s %8d %12.3f %12.3f\n" s.ss_name s.ss_count
             (1e3 *. s.ss_total) (1e3 *. s.ss_max)))
      stats
  end;
  let cs = List.filter (fun (_, v) -> v <> 0) (counters ()) in
  if cs <> [] then begin
    if stats <> [] then Buffer.add_char buf '\n';
    Buffer.add_string buf (Printf.sprintf "%-32s %12s\n" "counter" "value");
    List.iter
      (fun (name, v) ->
        Buffer.add_string buf (Printf.sprintf "%-32s %12d\n" name v))
      cs
  end;
  List.iter
    (fun h ->
      if hist_count h > 0 then
        Buffer.add_string buf
          (Printf.sprintf "%-32s n=%d sum=%g min=%g p50=%g p99=%g max=%g\n"
             h.h_name (hist_count h) (hist_sum h) (hist_min h)
             (quantile h 0.5) (quantile h 0.99) (hist_max h)))
    (histograms ());
  Buffer.contents buf

(* Chrome-trace-format JSON (the "JSON Array Format" with the object
   wrapper): complete ("X") events for spans plus counter ("C") events at
   the end of the timeline.  Load via chrome://tracing or ui.perfetto.dev. *)
let chrome_trace () : Json.t =
  let us t = Float.round (1e6 *. t) in
  let span_events =
    List.map
      (fun sp ->
        let args =
          List.map (fun (k, v) -> (k, Json.String v)) sp.sp_args
          @ (if sp.sp_trace = "" then []
             else [ ("trace", Json.String sp.sp_trace) ])
        in
        Json.Obj
          [
            ("name", Json.String sp.sp_name);
            ("cat", Json.String "tenet");
            ("ph", Json.String "X");
            ("pid", Json.Int 1);
            ("tid", Json.Int 1);
            ("ts", Json.Float (us sp.sp_start));
            ("dur", Json.Float (us sp.sp_dur));
            ("args", Json.Obj args);
          ])
      (spans ())
  in
  let end_ts =
    List.fold_left
      (fun acc sp -> Float.max acc (us (sp.sp_start +. sp.sp_dur)))
      0. (spans ())
  in
  let counter_events =
    List.filter_map
      (fun (name, v) ->
        if v = 0 then None
        else
          Some
            (Json.Obj
               [
                 ("name", Json.String name);
                 ("ph", Json.String "C");
                 ("pid", Json.Int 1);
                 ("ts", Json.Float end_ts);
                 ("args", Json.Obj [ ("value", Json.Int v) ]);
               ]))
      (counters ())
  in
  Json.Obj
    [
      ("displayTimeUnit", Json.String "ms");
      ("traceEvents", Json.List (span_events @ counter_events));
    ]

let span_json (sp : span) : Json.t =
  Json.Obj
    ([
       ("name", Json.String sp.sp_name);
       ("start_s", Json.Float sp.sp_start);
       ("dur_s", Json.Float sp.sp_dur);
       ("depth", Json.Int sp.sp_depth);
     ]
    @ if sp.sp_trace = "" then [] else [ ("trace", Json.String sp.sp_trace) ])

(* Flat stats JSON: counters, span aggregates, histograms (with
   quantiles), and — when any traced request completed — the slowest
   request exemplars. *)
let stats () : Json.t =
  let counter_fields =
    List.filter_map
      (fun (name, v) -> if v = 0 then None else Some (name, Json.Int v))
      (counters ())
  in
  let span_fields =
    List.map
      (fun s ->
        ( s.ss_name,
          Json.Obj
            [
              ("calls", Json.Int s.ss_count);
              ("total_s", Json.Float s.ss_total);
              ("max_s", Json.Float s.ss_max);
            ] ))
      (List.sort
         (fun a b -> String.compare a.ss_name b.ss_name)
         (span_stats ()))
  in
  let histogram_fields =
    List.filter_map
      (fun h ->
        if hist_count h = 0 then None
        else
          Some
            ( h.h_name,
              Json.Obj
                [
                  ("count", Json.Int (hist_count h));
                  ("sum", Json.Float (hist_sum h));
                  ("min", Json.Float (hist_min h));
                  ("max", Json.Float (hist_max h));
                  ( "mean",
                    Json.Float (hist_sum h /. float_of_int (hist_count h)) );
                  ("p50", Json.Float (quantile h 0.5));
                  ("p90", Json.Float (quantile h 0.9));
                  ("p99", Json.Float (quantile h 0.99));
                  ("p999", Json.Float (quantile h 0.999));
                ] ))
      (histograms ())
  in
  let exemplar_fields =
    match exemplars () with
    | [] -> []
    | exs ->
        [
          ( "exemplars",
            Json.List
              (List.map
                 (fun ex ->
                   Json.Obj
                     [
                       ("trace", Json.String ex.ex_trace);
                       ("dur_s", Json.Float ex.ex_dur);
                       ("spans", Json.List (List.map span_json ex.ex_spans));
                     ])
                 exs) );
        ]
  in
  let dropped = spans_dropped () in
  Json.Obj
    ([
       ("counters", Json.Obj counter_fields);
       ("spans", Json.Obj span_fields);
       ("histograms", Json.Obj histogram_fields);
     ]
    @ (if dropped = 0 then [] else [ ("spans_dropped", Json.Int dropped) ])
    @ exemplar_fields)

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition (format version 0.0.4).                  *)
(* ------------------------------------------------------------------ *)

let prometheus_name (name : string) : string =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let prometheus_float (f : float) : string =
  if not (Float.is_finite f) then if f > 0. then "+Inf" else "-Inf"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

(* Render every registered counter (as [<name>_total]), every non-empty
   histogram (cumulative [_bucket{le=...}] series plus [_sum]/[_count]),
   plus caller-supplied gauges and extra counters (the serve layer's
   queue/cache gauges).  Sorted by name within each kind, every metric
   preceded by HELP and TYPE lines. *)
let prometheus ?(extra_counters : (string * int) list = [])
    ?(gauges : (string * float) list = []) () : string =
  let buf = Buffer.create 4096 in
  let header name kind =
    Buffer.add_string buf
      (Printf.sprintf "# HELP %s TENET %s %s.\n# TYPE %s %s\n" name kind name
         name kind)
  in
  List.iter
    (fun (name, v) ->
      let n = prometheus_name name in
      header n "gauge";
      Buffer.add_string buf (Printf.sprintf "%s %s\n" n (prometheus_float v)))
    (List.sort (fun (a, _) (b, _) -> String.compare a b) gauges);
  List.iter
    (fun (name, v) ->
      let n = prometheus_name name ^ "_total" in
      header n "counter";
      Buffer.add_string buf (Printf.sprintf "%s %d\n" n v))
    (List.sort
       (fun (a, _) (b, _) -> String.compare a b)
       (counters () @ extra_counters));
  List.iter
    (fun h ->
      let count = hist_count h in
      if count > 0 then begin
        let n = prometheus_name h.h_name in
        header n "histogram";
        let buckets = hist_buckets h in
        let cum = ref 0 in
        Array.iteri
          (fun i c ->
            if i < Array.length bucket_bounds then begin
              cum := !cum + c;
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket{le=\"%g\"} %d\n" n
                   bucket_bounds.(i) !cum)
            end)
          buckets;
        Buffer.add_string buf
          (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" n count);
        Buffer.add_string buf
          (Printf.sprintf "%s_sum %s\n" n (prometheus_float (hist_sum h)));
        Buffer.add_string buf (Printf.sprintf "%s_count %d\n" n count)
      end)
    (histograms ());
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* File export.                                                        *)
(* ------------------------------------------------------------------ *)

(* Write-then-rename: a crash mid-export can leave a stale [.tmp] beside
   the target, but never a truncated trace/stats file at the target
   path itself (the rename is atomic on POSIX filesystems). *)
let write_file (path : string) (contents : string) : unit =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (try
     output_string oc contents;
     output_char oc '\n';
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let write_trace (path : string) : unit =
  write_file path (Json.to_string (chrome_trace ()))

let write_stats (path : string) : unit =
  write_file path (Json.to_string ~pretty:true (stats ()))
