(* A complete spatial-architecture specification: PE array, interconnect
   topology, scratchpad bandwidth, energy coefficients and optional
   resource capacities.

   Capacity fields are all optional: a spec that declares none behaves
   exactly as before (the analysis capacity battery is skipped and no
   TN014-TN018 diagnostic can fire), so every existing spec parses and
   evaluates unchanged. *)

type t = {
  pe : Pe_array.t;
  topology : Interconnect.t;
  bandwidth : int; (* scratchpad words per cycle *)
  buffer_words : int option; (* on-chip scratchpad capacity, if bounded *)
  energy : Energy.t;
  scratchpad_bytes : int option; (* on-chip working-set budget, bytes *)
  pe_regs : int option; (* per-PE register-file words *)
  link_width : int option; (* distinct words one wire carries per cycle *)
  pe_ports : int option; (* operand ports into one PE per cycle *)
  max_fanout : int option; (* destinations one wire feeds per cycle *)
  dram_bw : int option; (* off-chip words per cycle *)
}

let make ?(bandwidth = 64) ?buffer_words ?(energy = Energy.default)
    ?scratchpad_bytes ?pe_regs ?link_width ?pe_ports ?max_fanout ?dram_bw ~pe
    ~topology () =
  if bandwidth <= 0 then invalid_arg "Spec.make: bandwidth must be positive";
  List.iter
    (fun (name, v) ->
      match v with
      | Some c when c <= 0 ->
          invalid_arg (Printf.sprintf "Spec.make: %s must be positive" name)
      | _ -> ())
    [
      ("scratchpad_bytes", scratchpad_bytes);
      ("pe_regs", pe_regs);
      ("link_width", link_width);
      ("pe_ports", pe_ports);
      ("max_fanout", max_fanout);
      ("dram_bw", dram_bw);
    ];
  {
    pe;
    topology;
    bandwidth;
    buffer_words;
    energy;
    scratchpad_bytes;
    pe_regs;
    link_width;
    pe_ports;
    max_fanout;
    dram_bw;
  }

let with_bandwidth bandwidth t = { t with bandwidth }
let with_topology topology t = { t with topology }

let with_capacities ?scratchpad_bytes ?pe_regs ?link_width ?pe_ports
    ?max_fanout ?dram_bw t =
  {
    t with
    scratchpad_bytes =
      (match scratchpad_bytes with Some _ -> scratchpad_bytes | None -> t.scratchpad_bytes);
    pe_regs = (match pe_regs with Some _ -> pe_regs | None -> t.pe_regs);
    link_width =
      (match link_width with Some _ -> link_width | None -> t.link_width);
    pe_ports = (match pe_ports with Some _ -> pe_ports | None -> t.pe_ports);
    max_fanout =
      (match max_fanout with Some _ -> max_fanout | None -> t.max_fanout);
    dram_bw = (match dram_bw with Some _ -> dram_bw | None -> t.dram_bw);
  }

let has_capacities t =
  t.scratchpad_bytes <> None || t.pe_regs <> None || t.link_width <> None
  || t.pe_ports <> None || t.max_fanout <> None || t.dram_bw <> None

let to_string t =
  Printf.sprintf "%s PEs, %s, %d words/cycle"
    (Pe_array.to_string t.pe)
    (Interconnect.name t.topology)
    t.bandwidth
