(** A complete spatial-architecture specification. *)

type t = {
  pe : Pe_array.t;
  topology : Interconnect.t;
  bandwidth : int;  (** scratchpad words per cycle *)
  buffer_words : int option;  (** scratchpad capacity, if bounded *)
  energy : Energy.t;
  scratchpad_bytes : int option;
      (** on-chip working-set budget in bytes (TN014 chip-level check) *)
  pe_regs : int option;
      (** per-PE register-file capacity in words (TN014 per-PE check) *)
  link_width : int option;
      (** distinct words one interconnect wire carries per cycle (TN015) *)
  pe_ports : int option;
      (** operand ports into one PE per cycle (TN016) *)
  max_fanout : int option;
      (** destinations one wire may feed in a single cycle (TN017) *)
  dram_bw : int option;  (** off-chip words per cycle (TN018) *)
}

val make :
  ?bandwidth:int ->
  ?buffer_words:int ->
  ?energy:Energy.t ->
  ?scratchpad_bytes:int ->
  ?pe_regs:int ->
  ?link_width:int ->
  ?pe_ports:int ->
  ?max_fanout:int ->
  ?dram_bw:int ->
  pe:Pe_array.t ->
  topology:Interconnect.t ->
  unit ->
  t
(** Defaults: 64 words/cycle, unbounded buffer, {!Energy.default}, and no
    declared capacities (every capacity field is [None], so the analysis
    capacity battery is skipped).  Raises [Invalid_argument] on a
    non-positive bandwidth or capacity. *)

val with_bandwidth : int -> t -> t
val with_topology : Interconnect.t -> t -> t

val with_capacities :
  ?scratchpad_bytes:int ->
  ?pe_regs:int ->
  ?link_width:int ->
  ?pe_ports:int ->
  ?max_fanout:int ->
  ?dram_bw:int ->
  t ->
  t
(** Declare (or override) capacity fields; fields not passed keep their
    current value. *)

val has_capacities : t -> bool
(** Whether any capacity field is declared.  [false] means the capacity
    checks (TN014-TN018) are vacuous and TN019 lints. *)

val to_string : t -> string
