(* A repository of common spatial architectures (paper Section III):
   systolic arrays (TPU), mesh NoCs (DySER, Plasticine), multicast arrays
   (Eyeriss, Diannao), and reduction trees (MAERI). *)

let tpu_like ?(n = 8) ?(bandwidth = 64) () =
  Spec.make ~pe:(Pe_array.d2 n n) ~topology:Interconnect.Systolic_2d
    ~bandwidth ()

let mesh_array ?(rows = 8) ?(cols = 8) ?(bandwidth = 64) () =
  Spec.make ~pe:(Pe_array.d2 rows cols) ~topology:Interconnect.Mesh ~bandwidth
    ()

(* Eyeriss: 12 x 14 PE array with multicast buses along rows.  The paper's
   row-stationary experiments use this shape. *)
let eyeriss_like ?(rows = 12) ?(cols = 14) ?(bandwidth = 64) () =
  Spec.make
    ~pe:(Pe_array.d2 rows cols)
    ~topology:Interconnect.Broadcast_row ~bandwidth ()

(* ShiDianNao-style 8x8 output-stationary array with neighbor links. *)
let shidiannao_like ?(n = 8) ?(bandwidth = 64) () =
  Spec.make ~pe:(Pe_array.d2 n n) ~topology:Interconnect.Mesh ~bandwidth ()

(* MAERI: multipliers at the leaves of a reconfigurable reduction tree;
   only multipliers count as PEs and distribution is multicast. *)
let maeri_like ?(n = 64) ?(bandwidth = 64) () =
  Spec.make ~pe:(Pe_array.d1 n) ~topology:Interconnect.Reduction_tree
    ~bandwidth ()

let vector_multicast ?(n = 64) ?(group = 3) ?(bandwidth = 64) () =
  Spec.make ~pe:(Pe_array.d1 n) ~topology:(Interconnect.Multicast group)
    ~bandwidth ()

let systolic_1d ?(n = 64) ?(bandwidth = 64) () =
  Spec.make ~pe:(Pe_array.d1 n) ~topology:Interconnect.Systolic_1d ~bandwidth
    ()

let all : (string * Spec.t) list =
  [
    ("tpu-8x8-systolic", tpu_like ());
    ("mesh-8x8", mesh_array ());
    ("eyeriss-12x14", eyeriss_like ());
    ("shidiannao-8x8", shidiannao_like ());
    ("maeri-64", maeri_like ());
    ("multicast-64", vector_multicast ());
    ("systolic-64x1", systolic_1d ());
  ]

let find name =
  match List.assoc_opt name all with
  | Some s -> s
  | None ->
      invalid_arg
        ("Repository.find: "
        ^ Tenet_util.Text.unknown ~what:"architecture" name
            (List.map fst all))
