(** Structured diagnostics for the relation-centric model checker.

    Every finding carries a stable code ([TN001]...), a severity, a
    human-readable message and, when a property was refuted on a
    concrete point, a machine-readable witness.  The code registry is
    append-only and mirrored in [docs/analysis.md]. *)

type severity = Error | Warning | Info

type witness = {
  wspace : string;
      (** what the point ranges over, e.g. ["S[i,j,k] -> S[i',j',k']"] *)
  wpoint : int array;
  wnote : string;  (** short human gloss, possibly empty *)
}

type t = {
  code : string;
  title : string;
  severity : severity;
  message : string;
  witness : witness option;
}

val registry : (string * severity * string * string) list
(** [(code, severity, title, summary)] for every published code. *)

val make : ?witness:witness -> string -> string -> t
(** [make code message]: severity and title are resolved from the
    registry; each emission bumps the [analysis.<code>] telemetry
    counter.  Raises [Invalid_argument] on an unregistered code. *)

val witness : ?note:string -> space:string -> int array -> witness

val explanations : (string * string) list
(** One documentation paragraph per published code — the single source
    behind [tenet check --explain] and the docs/analysis.md table. *)

val explain : string -> string option
(** The paragraph for a code, when the code is registered. *)

val is_error : t -> bool
val errors : t list -> t list
val severity_to_string : severity -> string

val compare_diag : t -> t -> int
(** Total order by (code, witness, message), used to keep reports
    byte-stable regardless of check scheduling. *)

val to_string : t -> string
val to_json : t -> Tenet_obs.Json.t
