(* The relation-centric model checker (cf. paper Sections III-V).

   For a (op, dataflow, arch) triple the checker proves or refutes — with
   a concrete witness point whenever a property fails on one — the
   battery of properties TENET's metrics implicitly assume:

   - Θ is single-valued (by construction for [Dataflow.t]; checked
     relationally for raw maps via {!check_theta_map}) and injective on
     its domain: one MAC per PE per cycle (TN003/TN011);
   - every space stamp lands inside the PE array (TN001/TN002);
   - the schedule is causal: every RAW dependence has a lexicographically
     non-negative time-stamp delta, computed as a relation and checked
     for emptiness of the violating set (TN004);
   - the interconnect relation is well-formed: endpoints inside the
     array, matching rank, no self-loop wires (TN005);
   - reuse-feasibility: the spatial reuse the volume model would credit
     rides only PE pairs an actual wire can carry (TN006);
   - lints: empty domains, unused iterators, unknown iterators,
     degenerate space coordinates (TN007-TN010).

   All checks are relational — violating sets are built with the same
   [Isl] algebra the model itself uses, and witnesses are sampled from
   them — so the checker cannot drift from the model's semantics. *)

module Isl = Tenet_isl
module Ir = Tenet_ir
module Arch = Tenet_arch
module Df = Tenet_dataflow
module M = Tenet_model
module Obs = Tenet_obs
module D = Diagnostic

let c_checks = Obs.counter "analysis.checks"

let fmt_point (p : int array) =
  String.concat ", " (Array.to_list (Array.map string_of_int p))

let prime v = v ^ "'"

(* ------------------------------------------------------------------ *)
(* Syntactic lints.                                                    *)
(* ------------------------------------------------------------------ *)

(* TN009: stamp coordinates may only reference iterators of the op. *)
let check_iterator_names (op : Ir.Tensor_op.t) (df : Df.Dataflow.t) :
    D.t list =
  let known = Ir.Tensor_op.iter_names op in
  let bad kind coords =
    List.concat
      (List.mapi
         (fun i e ->
           List.filter_map
             (fun v ->
               if List.mem v known then None
               else
                 Some
                   (D.make "TN009"
                      (Printf.sprintf
                         "%s: %s coordinate %d references '%s', which is \
                          not an iterator of %s (iterators: %s)"
                         df.Df.Dataflow.name kind i v
                         (Ir.Tensor_op.space op).Isl.Space.tuple
                         (String.concat ", " known))))
             (List.sort_uniq String.compare (Isl.Aff.free_vars e)))
         coords)
  in
  bad "space" df.Df.Dataflow.space @ bad "time" df.Df.Dataflow.time

(* TN007: an empty iteration domain makes every metric trivially zero. *)
let check_domain (op : Ir.Tensor_op.t) : D.t list =
  List.filter_map
    (fun v ->
      let lo, hi = Ir.Tensor_op.iter_bounds op v in
      if hi < lo then
        Some
          (D.make "TN007"
             (Printf.sprintf
                "iteration domain is empty: iterator %s has bounds [%d, %d]"
                v lo hi))
      else None)
    (Ir.Tensor_op.iter_names op)

(* TN008: an iterator with extent > 1 absent from every stamp coordinate
   cannot be ordered, so instances collapse onto shared stamps. *)
let check_unused_iterators (op : Ir.Tensor_op.t) (df : Df.Dataflow.t) :
    D.t list =
  let used =
    List.concat_map Isl.Aff.free_vars
      (df.Df.Dataflow.space @ df.Df.Dataflow.time)
  in
  List.filter_map
    (fun v ->
      let lo, hi = Ir.Tensor_op.iter_bounds op v in
      if (not (List.mem v used)) && hi > lo then
        Some
          (D.make "TN008"
             (Printf.sprintf
                "%s: iterator %s (extent %d) appears in no space or time \
                 coordinate"
                df.Df.Dataflow.name v (hi - lo + 1)))
      else None)
    (Ir.Tensor_op.iter_names op)

(* TN010: a constant space coordinate on an array dimension wider than
   one leaves that dimension idle. *)
let check_degenerate_space (op : Ir.Tensor_op.t) (df : Df.Dataflow.t)
    (pe : Arch.Pe_array.t) : D.t list =
  let dims = Arch.Pe_array.dims pe in
  List.concat
    (List.mapi
       (fun i (lo, hi) ->
         if lo = hi && dims.(i) > 1 then
           [
             D.make "TN010"
               (Printf.sprintf
                  "%s: space coordinate %d is the constant %d over the \
                   whole domain; array dimension of extent %d stays idle"
                  df.Df.Dataflow.name i lo dims.(i));
           ]
         else [])
       (Df.Dataflow.space_bounds op df))

(* ------------------------------------------------------------------ *)
(* Θ properties.                                                       *)
(* ------------------------------------------------------------------ *)

(* TN001: space-stamp rank vs array rank. *)
let check_rank (df : Df.Dataflow.t) (pe : Arch.Pe_array.t) : D.t list =
  match Df.Dataflow.rank_violation df pe with
  | None -> []
  | Some (r, ar) ->
      [
        D.make "TN001"
          (Printf.sprintf "%s: space-stamp rank %d vs PE array rank %d"
             df.Df.Dataflow.name r ar);
      ]

(* TN002: space-stamp containment, with a sampled escaping instance. *)
let check_bounds ?(want_witness = true) (op : Ir.Tensor_op.t)
    (df : Df.Dataflow.t) (pe : Arch.Pe_array.t) : D.t list =
  match Df.Dataflow.bounds_violation op df pe with
  | None -> []
  | Some (i, (lo, hi), extent) ->
      let witness =
        if want_witness then
          Option.map
            (fun (wi, n, stamp) ->
              D.witness
                ~note:
                  (Printf.sprintf "lands at PE[%s], dim %d out of range"
                     (fmt_point stamp) wi)
                ~space:(Isl.Space.to_string (Ir.Tensor_op.space op))
                n)
            (Df.Dataflow.bounds_witness op df pe)
        else None
      in
      [
        D.make "TN002" ?witness
          (Printf.sprintf "%s: space dim %d spans [%d, %d] outside [0, %d)"
             df.Df.Dataflow.name i lo hi extent);
      ]

(* TN003: Θ injectivity on the iteration domain, with a sampled
   conflicting instance pair. *)
let check_conflicts (op : Ir.Tensor_op.t) (df : Df.Dataflow.t) : D.t list =
  match Df.Dataflow.conflict_counts op df with
  | None -> []
  | Some (pairs, stamps) ->
      let witness =
        Option.map
          (fun (n, n', stamp) ->
            D.witness
              ~note:(Printf.sprintf "both execute at ST[%s]" (fmt_point stamp))
              ~space:
                (Printf.sprintf "%s -> %s'"
                   (Isl.Space.to_string (Ir.Tensor_op.space op))
                   (Ir.Tensor_op.space op).Isl.Space.tuple)
              (Array.append n n'))
          (Df.Dataflow.conflict_witness op df)
      in
      [
        D.make "TN003" ?witness
          (Printf.sprintf "%s: %d instances map to %d spacetime-stamps"
             df.Df.Dataflow.name pairs stamps);
      ]

(* TN011/TN003 on a raw relation (e.g. a hand-written Θ from a file):
   single-valuedness and injectivity via the relational predicates. *)
let check_theta_map (m : Isl.Map.t) : D.t list =
  let out = ref [] in
  if not (Isl.Map.is_single_valued m) then begin
    (* witness: first domain point seen with two distinct images *)
    let tbl = Hashtbl.create 97 in
    let wit = ref None in
    (try
       Isl.Map.iter_pairs
         (fun src dst ->
           let key = Array.to_list src in
           match Hashtbl.find_opt tbl key with
           | Some d0 when d0 <> Array.to_list dst ->
               wit := Some (Array.copy src);
               raise Exit
           | Some _ -> ()
           | None -> Hashtbl.add tbl key (Array.to_list dst))
         m
     with Exit -> ());
    out :=
      D.make "TN011"
        ?witness:
          (Option.map
             (fun p ->
               D.witness ~space:(Isl.Space.to_string (Isl.Map.dom m)) p)
             !wit)
        "the relation maps one instance to several spacetime-stamps"
      :: !out
  end;
  if not (Isl.Map.is_injective m) then
    out :=
      D.make "TN003"
        "the relation is not injective: two instances share a \
         spacetime-stamp"
      :: !out;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Schedule causality (TN004).                                         *)
(* ------------------------------------------------------------------ *)

(* For every tensor both written and read, build the memory-based RAW
   dependence relation dep = { n -> n' : W(n) = R(n'), n lex< n' } piece
   by piece (one piece per lexicographic branch position of the program
   order and of the violated time order) and require the violating set
   { (n, n') in dep : t(n') lex< t(n) } to be empty. *)
let check_causality (op : Ir.Tensor_op.t) (df : Df.Dataflow.t) : D.t list =
  let iters = Array.of_list (Ir.Tensor_op.iter_names op) in
  let d = Array.length iters in
  let sspace = Ir.Tensor_op.space op in
  let sspace' =
    Isl.Space.make sspace.Isl.Space.tuple
      (List.map prime (Array.to_list iters))
  in
  let dom = Ir.Tensor_op.domain op in
  let dom' =
    Isl.Set.rename_dims (List.map prime (Array.to_list iters)) dom
  in
  let taff = Array.of_list df.Df.Dataflow.time in
  let taff' = Array.map (Isl.Aff.rename prime) taff in
  let m = Array.length taff in
  let var v = Isl.Aff.Var v in
  let sub a b = Isl.Aff.Sub (a, b) in
  List.concat_map
    (fun tensor ->
      let accs = Ir.Tensor_op.accesses_of op tensor in
      let writes =
        List.filter (fun a -> a.Ir.Tensor_op.direction = Ir.Tensor_op.Write) accs
      in
      let reads =
        List.filter (fun a -> a.Ir.Tensor_op.direction = Ir.Tensor_op.Read) accs
      in
      if writes = [] || reads = [] then []
      else begin
        let arity =
          List.length (List.hd accs).Ir.Tensor_op.subscripts
        in
        let fspace =
          Isl.Space.make tensor
            (List.init arity (Printf.sprintf "f%d"))
        in
        let acc_map sp dset rename a =
          Isl.Map.intersect_domain
            (Isl.Map.of_exprs sp fspace
               (List.map rename a.Ir.Tensor_op.subscripts))
            dset
        in
        let w =
          Isl.Map.union_all (List.map (acc_map sspace dom Fun.id) writes)
        in
        let r' =
          Isl.Map.union_all
            (List.map (acc_map sspace' dom' (Isl.Aff.rename prime)) reads)
        in
        (* same-element pairs S[n] -> S[n'] *)
        let dep0 = Isl.Map.apply_range w (Isl.Map.reverse r') in
        (* piece (a, b): n lex< n' branching at iterator a, and
           t(n') lex< t(n) branching at time dim b *)
        let piece a b =
          let eqs =
            List.init a (fun e ->
                sub (var iters.(e)) (var (prime iters.(e))))
            @ List.init b (fun e -> sub taff'.(e) taff.(e))
          in
          let ges =
            [
              sub (sub (var (prime iters.(a))) (var iters.(a))) (Isl.Aff.Int 1);
              sub (sub taff.(b) taff'.(b)) (Isl.Aff.Int 1);
            ]
          in
          Isl.Map.constrain dep0 ~eqs ~ges
        in
        let total = ref 0 in
        let wit = ref None in
        for a = 0 to d - 1 do
          for b = 0 to m - 1 do
            let viol = piece a b in
            if not (Isl.Map.is_empty viol) then begin
              total := !total + Isl.Map.card viol;
              if !wit = None then
                wit := Isl.Set.sample (Isl.Map.wrap viol)
            end
          done
        done;
        if !total = 0 then []
        else
          let witness =
            Option.map
              (fun p ->
                D.witness
                  ~note:
                    (Printf.sprintf
                       "the write instance runs after the read instance \
                        in time")
                  ~space:
                    (Printf.sprintf "%s -> %s"
                       (Isl.Space.to_string sspace)
                       (Isl.Space.to_string sspace'))
                  p)
              !wit
          in
          [
            D.make "TN004" ?witness
              (Printf.sprintf
                 "%s: tensor %s has %d RAW dependence pair(s) scheduled \
                  backwards in time"
                 df.Df.Dataflow.name tensor !total);
          ]
      end)
    (Ir.Tensor_op.tensors op)

(* ------------------------------------------------------------------ *)
(* Interconnect well-formedness (TN005).                               *)
(* ------------------------------------------------------------------ *)

(* Out-of-bounds pieces of a PE relation: one constrained copy per
   (side, dim, direction), nonempty ones are violations. *)
let oob_pieces (rel : Isl.Map.t) (dims : int array) : Isl.Map.t list =
  let dn = Array.of_list (Isl.Map.dom rel).Isl.Space.dims in
  let rn = Array.of_list (Isl.Map.ran rel).Isl.Space.dims in
  let piece name i lo =
    let v = Isl.Aff.Var name in
    if lo then Isl.Map.constrain rel ~ges:[ Isl.Aff.Sub (Isl.Aff.Int (-1), v) ]
    else Isl.Map.constrain rel ~ges:[ Isl.Aff.Sub (v, Isl.Aff.Int dims.(i)) ]
  in
  List.concat
    (List.init (Array.length dims) (fun i ->
         [
           piece dn.(i) i true;
           piece dn.(i) i false;
           piece rn.(i) i true;
           piece rn.(i) i false;
         ]))

let self_loop_piece (rel : Isl.Map.t) : Isl.Map.t =
  let dn = Array.of_list (Isl.Map.dom rel).Isl.Space.dims in
  let rn = Array.of_list (Isl.Map.ran rel).Isl.Space.dims in
  Isl.Map.constrain rel
    ~eqs:
      (List.init (Array.length dn) (fun i ->
           Isl.Aff.Sub (Isl.Aff.Var dn.(i), Isl.Aff.Var rn.(i))))

let pair_witness (m : Isl.Map.t) ~(note : string) : D.witness option =
  Option.map
    (fun p ->
      D.witness ~note
        ~space:
          (Printf.sprintf "%s -> %s"
             (Isl.Space.to_string (Isl.Map.dom m))
             (Isl.Space.to_string (Isl.Map.ran m)))
        p)
    (Isl.Set.sample (Isl.Map.wrap m))

(* Structural check of the architecture alone. *)
let check_arch (spec : Arch.Spec.t) : D.t list =
  let pe = spec.Arch.Spec.pe and topo = spec.Arch.Spec.topology in
  match Arch.Interconnect.relation topo pe with
  | exception Invalid_argument msg -> [ D.make "TN005" msg ]
  | rel ->
      let r = Arch.Pe_array.rank pe in
      if Isl.Map.n_in rel <> r || Isl.Map.n_out rel <> r then
        [
          D.make "TN005"
            (Printf.sprintf
               "interconnect relation has rank %d -> %d, but the PE array \
                has rank %d"
               (Isl.Map.n_in rel) (Isl.Map.n_out rel) r);
        ]
      else begin
        let dims = Arch.Pe_array.dims pe in
        let oob =
          List.filter_map
            (fun piece ->
              if Isl.Map.is_empty piece then None
              else
                Some
                  (D.make "TN005"
                     ?witness:
                       (pair_witness piece ~note:"endpoint outside the array")
                     (Printf.sprintf
                        "interconnect %s connects PEs outside the %s array"
                        (Arch.Interconnect.name topo)
                        (Arch.Pe_array.to_string pe))))
            (oob_pieces rel dims)
        in
        (* Self-loops are phantom wires when the transfer interval is
           >= 1; at interval 0 the reuse attribution's lex filter drops
           them, so they are not reported. *)
        let selfs =
          if Arch.Interconnect.interval topo >= 1 then begin
            let s = self_loop_piece rel in
            if Isl.Map.is_empty s then []
            else
              [
                D.make "TN005"
                  ?witness:(pair_witness s ~note:"self-loop wire")
                  (Printf.sprintf
                     "interconnect %s contains self-loops at transfer \
                      interval %d; same-PE reuse is the temporal channel"
                     (Arch.Interconnect.name topo)
                     (Arch.Interconnect.interval topo));
              ]
          end
          else []
        in
        (* Report each violation class once. *)
        (match oob with [] -> [] | dg :: _ -> [ dg ]) @ selfs
      end

(* ------------------------------------------------------------------ *)
(* Reuse feasibility (TN006).                                          *)
(* ------------------------------------------------------------------ *)

(* The volume model credits spatial reuse along
   [Spacetime.reuse_pe_relation] lifted to spacetime.  Suspect pairs —
   self-loops and pairs with an endpoint outside the array, which only a
   malformed (custom) topology produces — are lifted through the *same*
   construction, and any (stamp, element) reuse pair the model would
   credit along them is a phantom: no wire carries it.  For well-formed
   topologies every suspect piece is empty and the check costs a few
   emptiness tests. *)
let check_reuse_feasibility ?(adjacency = `Inner_step) (spec : Arch.Spec.t)
    (op : Ir.Tensor_op.t) (df : Df.Dataflow.t) : D.t list =
  let pe = spec.Arch.Spec.pe and topo = spec.Arch.Spec.topology in
  match Df.Spacetime.reuse_pe_relation pe topo with
  | exception Invalid_argument _ -> [] (* TN005 already reported *)
  | rel ->
      if Isl.Map.n_in rel <> Arch.Pe_array.rank pe then []
      else begin
        let dims = Arch.Pe_array.dims pe in
        let suspects =
          List.filter
            (fun m -> not (Isl.Map.is_empty m))
            (self_loop_piece rel :: oob_pieces rel dims)
        in
        if suspects = [] then []
        else begin
          let bad_rel = Isl.Map.union_all suspects in
          let dt = Arch.Interconnect.interval topo in
          let ch =
            Df.Spacetime.spatial_of_rel ~adjacency op df ~rel:bad_rel ~dt
          in
          List.concat_map
            (fun tensor ->
              let a = Df.Dataflow.data_assignment op df tensor in
              let credited =
                M.Volumes.reuse_map ~assignment:a ~m:ch.Df.Spacetime.m
              in
              let n = Isl.Map.card credited in
              if n = 0 then []
              else
                [
                  D.make "TN006"
                    ?witness:
                      (pair_witness credited
                         ~note:
                           "(stamp, element) reuse pair riding an \
                            infeasible PE pair")
                    (Printf.sprintf
                       "%s: tensor %s has %d spatial-reuse pair(s) \
                        credited along interconnect pairs no wire can \
                        carry (self-loops or out-of-array endpoints)"
                       df.Df.Dataflow.name tensor n);
                ])
            (Ir.Tensor_op.tensors op)
        end
      end

(* ------------------------------------------------------------------ *)
(* Counting sanitizer (TN012).                                         *)
(* ------------------------------------------------------------------ *)

let diagnostic_of_exn : exn -> D.t option = function
  | Isl.Count.Verify_mismatch { fast; reference; set } ->
      Some
        (D.make "TN012"
           (Printf.sprintf
              "symbolic count %d disagrees with enumeration %d on %s" fast
              reference set))
  | _ -> None

(* Run [f] with the counting sanitizer armed; a mismatch surfaces as a
   TN012 diagnostic instead of an exception. *)
let with_count_verify (f : unit -> 'a) : ('a, D.t) result =
  Isl.Count.set_verify_mode (Some true);
  Fun.protect
    ~finally:(fun () -> Isl.Count.set_verify_mode None)
    (fun () ->
      match f () with
      | v -> Ok v
      | exception (Isl.Count.Verify_mismatch _ as e) ->
          Error (Option.get (diagnostic_of_exn e)))

(* ------------------------------------------------------------------ *)
(* Drivers.                                                            *)
(* ------------------------------------------------------------------ *)

(* The full battery for one (op, dataflow, arch) triple.  The result is
   sorted by (code, witness, message) so a report is byte-identical
   however the individual checks are scheduled. *)
let check ?(adjacency = `Inner_step) (spec : Arch.Spec.t)
    (op : Ir.Tensor_op.t) (df : Df.Dataflow.t) : D.t list =
  Obs.incr c_checks;
  Obs.with_span "analysis.check" @@ fun () ->
  let pe = spec.Arch.Spec.pe in
  let sorted = List.sort D.compare_diag in
  let lints = check_iterator_names op df in
  if D.errors lints <> [] then sorted lints
  else begin
    let empty_domain = check_domain op in
    let base =
      lints @ empty_domain
      @ check_unused_iterators op df
      @ check_arch spec @ check_rank df pe
    in
    (* An empty domain makes the interval and counting checks vacuous
       (and their bound arithmetic meaningless), so stop at the lints. *)
    if Df.Dataflow.rank_violation df pe <> None || empty_domain <> [] then
      sorted base
    else begin
      let bounds = check_bounds op df pe in
      let base =
        base @ check_degenerate_space op df pe @ bounds
        @ check_conflicts op df @ check_causality op df
      in
      (* Reuse feasibility presumes stamps inside the array. *)
      let base =
        if bounds = [] then
          base @ check_reuse_feasibility ~adjacency spec op df
        else base
      in
      (* Resource feasibility (TN014-TN018) presumes a structurally
         clean mapping: capacity demand is only meaningful when Θ is
         injective and lands inside the array. *)
      let base =
        if D.errors base = [] then base @ Capacity.check spec op df
        else base
      in
      sorted base
    end
  end

(* The cheap subset used to pre-filter DSE candidates under --strict:
   syntactic lints, rank and interval bounds — no counting, no witness
   search. *)
let precheck (spec : Arch.Spec.t) (op : Ir.Tensor_op.t)
    (df : Df.Dataflow.t) : D.t list =
  let pe = spec.Arch.Spec.pe in
  let lints = check_iterator_names op df in
  if D.errors lints <> [] then lints
  else begin
    let base = lints @ check_unused_iterators op df @ check_rank df pe in
    if Df.Dataflow.rank_violation df pe <> None then base
    else base @ check_bounds ~want_witness:false op df pe
  end

(* Staged [precheck] for the DSE inner loop: one closure per (arch, op)
   pair answering whether a candidate would pass [precheck] with no
   error-severity finding — the same verdict as
   [D.errors (precheck spec op df) = []], with no diagnostic formatting
   or allocation per candidate.  The conjuncts mirror [precheck]'s
   short-circuit order: unknown iterators first (the later checks assume
   resolvable names), then rank, then interval bounds. *)
let prechecker (spec : Arch.Spec.t) (op : Ir.Tensor_op.t) :
    Df.Dataflow.t -> bool =
  let pe = spec.Arch.Spec.pe in
  let module S = Set.Make (String) in
  let known = S.of_list (Ir.Tensor_op.iter_names op) in
  fun df ->
    List.for_all
      (fun e -> List.for_all (fun v -> S.mem v known) (Isl.Aff.free_vars e))
      (df.Df.Dataflow.space @ df.Df.Dataflow.time)
    && Df.Dataflow.rank_violation df pe = None
    && Df.Dataflow.bounds_violation op df pe = None

(* ------------------------------------------------------------------ *)
(* The Zoo x Repository sweep.                                         *)
(* ------------------------------------------------------------------ *)

type subject = {
  s_arch : string;
  s_kernel : string;
  s_spec : Arch.Spec.t;
  s_op : Ir.Tensor_op.t;
  s_df : Df.Dataflow.t;
}

(* Every Table III dataflow paired with every repository architecture of
   matching rank, at the experiment sizes of the paper (2D families at
   width 8, which fits every 2D array in the repository; 1D families at
   width 64); the Eyeriss row-stationary dataflow additionally runs on
   its native 12x14 shape. *)
let zoo_subjects () : subject list =
  let gemm = Ir.Kernels.gemm ~ni:16 ~nj:16 ~nk:16 in
  let conv = Ir.Kernels.conv2d ~nk:16 ~nc:16 ~nox:8 ~noy:8 ~nrx:3 ~nry:3 in
  let conv13 =
    Ir.Kernels.conv2d ~nk:16 ~nc:16 ~nox:13 ~noy:13 ~nrx:3 ~nry:3
  in
  let mttkrp = Ir.Kernels.mttkrp ~ni:8 ~nj:8 ~nk:8 ~nl:8 in
  let jacobi = Ir.Kernels.jacobi2d ~n:18 in
  let mmc = Ir.Kernels.mmc ~ni:8 ~nj:8 ~nk:8 ~nl:8 in
  let two_d =
    [
      ("gemm", gemm, Df.Zoo.gemm_2d ());
      ( "conv",
        conv,
        [
          Df.Zoo.conv_kc_p_oy_kcox_t ();
          Df.Zoo.conv_kox_p_oy_koxc_t ();
          Df.Zoo.conv_kc_p_c_kox_t ();
          Df.Zoo.conv_shidiannao ();
          Df.Zoo.conv_nvdla ();
        ] );
      ("mttkrp", mttkrp, Df.Zoo.mttkrp_all ());
      ("jacobi2d", jacobi, [ Df.Zoo.jacobi_ij_p_ij_t () ]);
      ("mmc", mmc, Df.Zoo.mmc_all ());
    ]
  in
  let one_d =
    [
      ("gemm", gemm, Df.Zoo.gemm_1d ());
      ( "conv",
        conv,
        [
          Df.Zoo.conv_k_p_ox_oy_t ();
          Df.Zoo.conv_c_p_oy_ox_t ();
          Df.Zoo.conv_maeri ();
        ] );
      ("jacobi2d", jacobi, [ Df.Zoo.jacobi_i_p_ij_t () ]);
    ]
  in
  List.concat_map
    (fun (aname, spec) ->
      let rank = Arch.Pe_array.rank spec.Arch.Spec.pe in
      let families = if rank = 2 then two_d else one_d in
      let base =
        List.concat_map
          (fun (kernel, op, dfs) ->
            List.map
              (fun df ->
                {
                  s_arch = aname;
                  s_kernel = kernel;
                  s_spec = spec;
                  s_op = op;
                  s_df = df;
                })
              dfs)
          families
      in
      if String.equal aname "eyeriss-12x14" then
        base
        @ [
            {
              s_arch = aname;
              s_kernel = "conv";
              s_spec = spec;
              s_op = conv13;
              s_df = Df.Zoo.conv_eyeriss_rs ();
            };
          ]
      else base)
    Arch.Repository.all

let check_subjects ?adjacency (subjects : subject list) :
    (subject * D.t list) list =
  List.map (fun s -> (s, check ?adjacency s.s_spec s.s_op s.s_df)) subjects
