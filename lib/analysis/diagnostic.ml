(* Structured diagnostics for the relation-centric model checker.

   Every finding carries a stable code (TNxxx), a severity, a human
   message and, when the property is refuted on a concrete point, a
   machine-readable witness.  Codes are append-only: once published they
   keep their meaning so scripts can match on them. *)

module Json = Tenet_obs.Json

type severity = Error | Warning | Info

type witness = {
  wspace : string; (* what the point ranges over, e.g. "S[i,j,k] -> S[i',j',k']" *)
  wpoint : int array;
  wnote : string; (* short human gloss, may be empty *)
}

type t = {
  code : string;
  title : string;
  severity : severity;
  message : string;
  witness : witness option;
}

(* The published code registry; [docs/analysis.md] mirrors this table. *)
let registry : (string * severity * string * string) list =
  [
    ( "TN001", Error, "rank-mismatch",
      "space-stamp rank differs from the PE-array rank" );
    ( "TN002", Error, "out-of-array",
      "an instance's space stamp escapes the PE array" );
    ( "TN003", Error, "pe-conflict",
      "theta is not injective: two instances share a spacetime-stamp" );
    ( "TN004", Error, "causality-violation",
      "a RAW dependence runs backwards in time (negative lexicographic \
       time delta)" );
    ( "TN005", Error, "malformed-interconnect",
      "interconnect endpoints escape the array, or the relation has the \
       wrong rank or self-loops" );
    ( "TN006", Error, "infeasible-reuse",
      "the model credits spatial reuse that no interconnect wire can \
       carry" );
    ( "TN007", Warning, "empty-domain",
      "the iteration domain is empty; every metric is trivially zero" );
    ( "TN008", Warning, "unused-iterator",
      "an iterator with extent > 1 appears in no stamp coordinate" );
    ( "TN009", Error, "unknown-iterator",
      "a stamp coordinate references a name that is not an iterator" );
    ( "TN010", Warning, "degenerate-space-dim",
      "a space coordinate is constant over the domain while the array \
       dimension is wider than 1" );
    ( "TN011", Error, "theta-not-single-valued",
      "the dataflow relation maps one instance to several \
       spacetime-stamps" );
    ( "TN012", Error, "count-verify-mismatch",
      "the symbolic counting fast path disagrees with enumeration \
       (TENET_COUNT_VERIFY)" );
    ( "TN013", Warning, "deadline-exceeded",
      "a serve/batch request ran past its deadline_ms; pipeline stages \
       past the expiry were skipped and the response is partial" );
    ( "TN014", Error, "buffer-overflow",
      "the live working set exceeds a declared buffer capacity (per-PE \
       registers or chip-level scratchpad)" );
    ( "TN015", Error, "link-contention",
      "an interconnect wire carries more distinct transfers in one cycle \
       than its declared width" );
    ( "TN016", Error, "port-conflict",
      "a PE demands more operand ports in one cycle than it declares" );
    ( "TN017", Error, "fanout-overflow",
      "a wire feeds more destinations in one cycle than its declared \
       multicast fan-out" );
    ( "TN018", Error, "dram-oversubscription",
      "per-cycle off-chip working-set inflow exceeds the declared DRAM \
       bandwidth" );
    ( "TN019", Info, "no-capacities-declared",
      "the architecture declares no resource capacities, so the \
       feasibility checks TN014-TN018 are vacuous" );
  ]

(* One documentation paragraph per code: the single source behind both
   `tenet check --explain TNxxx` and the docs/analysis.md table, so the
   CLI and the manual cannot drift apart. *)
let explanations : (string * string) list =
  [
    ( "TN001",
      "The dataflow's space stamp has a different number of coordinates \
       than the PE array has dimensions, so instances cannot be placed at \
       all.  Fix the space tuple or pick an architecture of matching rank." );
    ( "TN002",
      "Some loop instance's space stamp lies outside the PE array: the \
       witness is a concrete iteration point and the PE it would land on.  \
       Either shrink the spatial extent (tile) or widen the array." );
    ( "TN003",
      "Theta is not injective: two distinct instances map to the same \
       (PE, time) stamp, i.e. one MAC would have to do two jobs in one \
       cycle.  The witness is such a pair." );
    ( "TN004",
      "A read-after-write dependence is scheduled backwards: the reading \
       instance runs strictly before the writing instance in time.  The \
       witness is the offending (writer, reader) pair." );
    ( "TN005",
      "The interconnect relation is malformed: endpoints outside the \
       array, a rank that does not match the array, or self-loop wires at \
       transfer interval >= 1 (same-PE reuse is the temporal channel)." );
    ( "TN006",
      "The volume model would credit spatial reuse along PE pairs no \
       physical wire connects (self-loops or out-of-array endpoints of a \
       custom topology), silently deflating traffic.  The witness is a \
       credited (stamp, element) pair." );
    ( "TN007",
      "The iteration domain is empty (some iterator has hi < lo); every \
       metric is trivially zero.  Usually a sign of a bad size override." );
    ( "TN008",
      "An iterator with extent > 1 appears in no space or time \
       coordinate, so distinct instances collapse onto shared stamps." );
    ( "TN009",
      "A stamp coordinate references a name that is not an iterator of \
       the operation; the dataflow cannot be evaluated." );
    ( "TN010",
      "A space coordinate is the same constant over the whole domain \
       while the array dimension is wider than one PE, leaving the rest \
       of that dimension idle." );
    ( "TN011",
      "A raw spacetime relation (e.g. a hand-written Theta) maps one \
       instance to several stamps; Theta must be single-valued." );
    ( "TN012",
      "The symbolic counting fast path disagreed with plain enumeration \
       under TENET_COUNT_VERIFY=1.  This is an engine bug, not a model \
       property; report it with the offending set." );
    ( "TN013",
      "A serve/batch request ran past its deadline_ms budget; pipeline \
       stages past the expiry were skipped and the response is partial \
       (see docs/serving.md)." );
    ( "TN014",
      "The live working set overflows a declared buffer: per PE, the \
       distinct tensor elements an instance touches in one cycle exceed \
       pe_regs; or chip-wide, the distinct elements resident in one cycle \
       exceed scratchpad_bytes (4 bytes per word).  Occupancy is the \
       cardinality of a slice of the data-assignment relation; when \
       Qpoly.prove_ge certifies the bound symbolically the verdict is \
       exact for all sizes, otherwise per-timestamp enumeration decides \
       it.  The witness is the peak (PE, time) or time stamp." );
    ( "TN015",
      "Two or more distinct transfers ride the same interconnect wire in \
       the same cycle, exceeding the declared link_width.  Transfers \
       attribute each fetched element to its lexicographically least \
       holding neighbor, mirroring the simulator's sharing rule.  The \
       witness is a (time, source PE, destination PE) triple." );
    ( "TN016",
      "One instance demands more operand ports (reads plus writes) in \
       its execution cycle than the declared pe_ports.  The demand is \
       the operation's access count, so the verdict is exact for all \
       sizes.  The witness is a concrete instance." );
    ( "TN017",
      "A single wire would have to feed more destination PEs in one \
       cycle than the declared max_fanout allows.  The witness is the \
       peak (time, source PE) pair." );
    ( "TN018",
      "The per-cycle inflow of new tensor elements onto the chip (the \
       working-set delta between consecutive time stamps, the same \
       fetch-on-first-use assumption lib/sim/offchip makes) exceeds the \
       declared dram_bw words per cycle.  The witness is the peak time \
       stamp." );
    ( "TN019",
      "The architecture declares no capacity fields (scratchpad_bytes, \
       pe_regs, link_width, pe_ports, max_fanout, dram_bw), so the \
       resource-feasibility checks TN014-TN018 are vacuous and the \
       dataflow is only checked for logical validity.  Declare \
       capacities (or pass --capacities to the check sweep) to enable \
       them.  Info-level: never fails a check." );
  ]

let explain code = List.assoc_opt code explanations

let severity_of_code code =
  let rec go = function
    | [] -> invalid_arg ("Diagnostic: unknown code " ^ code)
    | (c, sev, _, _) :: rest -> if String.equal c code then sev else go rest
  in
  go registry

let title_of_code code =
  let rec go = function
    | [] -> invalid_arg ("Diagnostic: unknown code " ^ code)
    | (c, _, t, _) :: rest -> if String.equal c code then t else go rest
  in
  go registry

(* Constructor: severity and title come from the registry, and each
   emission bumps the per-code telemetry counter (analysis.TNxxx). *)
let make ?witness code message : t =
  Tenet_obs.count ("analysis." ^ code);
  {
    code;
    title = title_of_code code;
    severity = severity_of_code code;
    message;
    witness;
  }

let witness ?(note = "") ~space point : witness =
  { wspace = space; wpoint = point; wnote = note }

let is_error d = d.severity = Error
let errors ds = List.filter is_error ds

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

(* Total order for byte-stable reports: code first, then witness (absent
   witnesses sort before present ones, then by space and point), then
   message.  [Checker.check] sorts its output with this, so a report is
   identical at any --jobs level or check-scheduling order. *)
let compare_diag (a : t) (b : t) : int =
  let c = String.compare a.code b.code in
  if c <> 0 then c
  else
    let wkey = function
      | None -> ("", [||], "")
      | Some w -> (w.wspace, w.wpoint, w.wnote)
    in
    let c = compare (wkey a.witness) (wkey b.witness) in
    if c <> 0 then c else String.compare a.message b.message

let to_string (d : t) : string =
  let w =
    match d.witness with
    | None -> ""
    | Some w ->
        Printf.sprintf "\n    witness: %s = (%s)%s" w.wspace
          (String.concat ", " (Array.to_list (Array.map string_of_int w.wpoint)))
          (if w.wnote = "" then "" else "  -- " ^ w.wnote)
  in
  Printf.sprintf "%s [%s] %s: %s%s" d.code
    (severity_to_string d.severity)
    d.title d.message w

let to_json (d : t) : Json.t =
  Json.Obj
    [
      ("code", Json.String d.code);
      ("title", Json.String d.title);
      ("severity", Json.String (severity_to_string d.severity));
      ("message", Json.String d.message);
      ( "witness",
        match d.witness with
        | None -> Json.Null
        | Some w ->
            Json.Obj
              [
                ("space", Json.String w.wspace);
                ( "point",
                  Json.List
                    (List.map (fun i -> Json.Int i) (Array.to_list w.wpoint))
                );
                ("note", Json.String w.wnote);
              ] );
    ]
