(* Structured diagnostics for the relation-centric model checker.

   Every finding carries a stable code (TNxxx), a severity, a human
   message and, when the property is refuted on a concrete point, a
   machine-readable witness.  Codes are append-only: once published they
   keep their meaning so scripts can match on them. *)

module Json = Tenet_obs.Json

type severity = Error | Warning

type witness = {
  wspace : string; (* what the point ranges over, e.g. "S[i,j,k] -> S[i',j',k']" *)
  wpoint : int array;
  wnote : string; (* short human gloss, may be empty *)
}

type t = {
  code : string;
  title : string;
  severity : severity;
  message : string;
  witness : witness option;
}

(* The published code registry; [docs/analysis.md] mirrors this table. *)
let registry : (string * severity * string * string) list =
  [
    ( "TN001", Error, "rank-mismatch",
      "space-stamp rank differs from the PE-array rank" );
    ( "TN002", Error, "out-of-array",
      "an instance's space stamp escapes the PE array" );
    ( "TN003", Error, "pe-conflict",
      "theta is not injective: two instances share a spacetime-stamp" );
    ( "TN004", Error, "causality-violation",
      "a RAW dependence runs backwards in time (negative lexicographic \
       time delta)" );
    ( "TN005", Error, "malformed-interconnect",
      "interconnect endpoints escape the array, or the relation has the \
       wrong rank or self-loops" );
    ( "TN006", Error, "infeasible-reuse",
      "the model credits spatial reuse that no interconnect wire can \
       carry" );
    ( "TN007", Warning, "empty-domain",
      "the iteration domain is empty; every metric is trivially zero" );
    ( "TN008", Warning, "unused-iterator",
      "an iterator with extent > 1 appears in no stamp coordinate" );
    ( "TN009", Error, "unknown-iterator",
      "a stamp coordinate references a name that is not an iterator" );
    ( "TN010", Warning, "degenerate-space-dim",
      "a space coordinate is constant over the domain while the array \
       dimension is wider than 1" );
    ( "TN011", Error, "theta-not-single-valued",
      "the dataflow relation maps one instance to several \
       spacetime-stamps" );
    ( "TN012", Error, "count-verify-mismatch",
      "the symbolic counting fast path disagrees with enumeration \
       (TENET_COUNT_VERIFY)" );
    ( "TN013", Warning, "deadline-exceeded",
      "a serve/batch request ran past its deadline_ms; pipeline stages \
       past the expiry were skipped and the response is partial" );
  ]

let severity_of_code code =
  let rec go = function
    | [] -> invalid_arg ("Diagnostic: unknown code " ^ code)
    | (c, sev, _, _) :: rest -> if String.equal c code then sev else go rest
  in
  go registry

let title_of_code code =
  let rec go = function
    | [] -> invalid_arg ("Diagnostic: unknown code " ^ code)
    | (c, _, t, _) :: rest -> if String.equal c code then t else go rest
  in
  go registry

(* Constructor: severity and title come from the registry, and each
   emission bumps the per-code telemetry counter (analysis.TNxxx). *)
let make ?witness code message : t =
  Tenet_obs.count ("analysis." ^ code);
  {
    code;
    title = title_of_code code;
    severity = severity_of_code code;
    message;
    witness;
  }

let witness ?(note = "") ~space point : witness =
  { wspace = space; wpoint = point; wnote = note }

let is_error d = d.severity = Error
let errors ds = List.filter is_error ds

let severity_to_string = function Error -> "error" | Warning -> "warning"

let to_string (d : t) : string =
  let w =
    match d.witness with
    | None -> ""
    | Some w ->
        Printf.sprintf "\n    witness: %s = (%s)%s" w.wspace
          (String.concat ", " (Array.to_list (Array.map string_of_int w.wpoint)))
          (if w.wnote = "" then "" else "  -- " ^ w.wnote)
  in
  Printf.sprintf "%s [%s] %s: %s%s" d.code
    (severity_to_string d.severity)
    d.title d.message w

let to_json (d : t) : Json.t =
  Json.Obj
    [
      ("code", Json.String d.code);
      ("title", Json.String d.title);
      ("severity", Json.String (severity_to_string d.severity));
      ("message", Json.String d.message);
      ( "witness",
        match d.witness with
        | None -> Json.Null
        | Some w ->
            Json.Obj
              [
                ("space", Json.String w.wspace);
                ( "point",
                  Json.List
                    (List.map (fun i -> Json.Int i) (Array.to_list w.wpoint))
                );
                ("note", Json.String w.wnote);
              ] );
    ]
