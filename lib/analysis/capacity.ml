(* Resource-feasibility diagnostics (TN014-TN018) and the
   no-capacities lint (TN019).

   A dataflow that passes the structural checks (rank, containment,
   injectivity, causality) can still be unbuildable: the working set may
   not fit the register files or the scratchpad, a wire may have to
   carry two values in the same cycle, a PE may demand more operands
   than it has ports.  This module decides those questions with the same
   two-tier strategy as the performance model:

   - symbolically where possible: per-stamp demand is a cardinality of
     the data-assignment relation [A = Θ⁻¹ . A_{S,F}] with the stamp
     coordinates as free parameters ({!Tenet_isl.Count.count_union_param}),
     and [Qpoly.prove_ge] certifies the capacity bound for *every* stamp
     at once — exact for all sizes, O(1) per query
     ([analysis.capacity_exact]);

   - by per-timestamp enumeration otherwise: a stamp-by-stamp walk of
     the machine state that mirrors [Tenet_sim.Simulator.run]'s
     window-1 register and interconnect semantics exactly
     ([analysis.capacity_fallback]).  The agreement between the two is
     cross-checked by the [TENET_CHECK_VERIFY=1] sanitizer
     (test/test_check_verify.ml).

   Transfer attribution (shared with the simulator's peak probes): an
   element moves over the interconnect edge [q -> p] in stamp [t] iff
   PE [p] needs it, does not hold it from the previous stamp, and [q] is
   the lexicographically least predecessor that can supply it (for
   interval-0 wires: a co-needing PE this stamp; for interval-1: a
   holder from the previous stamp).  Lex-least matches
   {!Tenet_dataflow.Spacetime.lex_lt_pairs}' fetcher convention. *)

module Isl = Tenet_isl
module Ir = Tenet_ir
module Arch = Tenet_arch
module Df = Tenet_dataflow
module C = Tenet_model.Concrete
module Obs = Tenet_obs
module D = Diagnostic

let c_exact = Obs.counter "analysis.capacity_exact"
let c_fallback = Obs.counter "analysis.capacity_fallback"

(* Scratchpad capacity is declared in bytes; demand is counted in
   elements.  One element = one word of this many bytes. *)
let word_bytes = 4

(* ------------------------------------------------------------------ *)
(* Per-timestamp enumeration: exact peaks with argmax witnesses.       *)
(* ------------------------------------------------------------------ *)

type peaks = {
  pe_live : int;  (** max distinct elements resident in one PE, one stamp *)
  pe_live_at : int array;  (** (p.., t..) stamp achieving it *)
  chip_live : int;  (** max distinct (tensor, element) live in one stamp *)
  chip_live_at : int array;  (** (t..) *)
  link_load : int;  (** max transfers over one edge in one stamp *)
  link_load_at : int array;  (** (t.., src p.., dst p..) *)
  fanout : int;  (** max destinations of one element from one PE, one stamp *)
  fanout_at : int array;  (** (t.., src p..) *)
  inflow : int;  (** max elements entering the live set in one stamp *)
  inflow_at : int array;  (** (t..) *)
}

(* Walk the stamps in lexicographic order, replaying the simulator's
   machine state (window-1 register files, lex-filtered predecessor
   wires) and tracking peak occupancy instead of traffic.  Ties are
   broken toward the earliest stamp, then the lex-least PE (pair), so
   the witness is deterministic. *)
let enumerate_peaks (spec : Arch.Spec.t) (op : Ir.Tensor_op.t)
    (df : Df.Dataflow.t) : peaks =
  Obs.with_span ~args:[ ("dataflow", df.Df.Dataflow.name) ]
    "analysis.capacity_enumerate"
  @@ fun () ->
  let c = C.compile op df in
  let pe = spec.Arch.Spec.pe in
  let pe_base = Array.map (fun d -> (0, d)) (Arch.Pe_array.dims pe) in
  let pe_size = Arch.Pe_array.size pe in
  let r = Df.Dataflow.n_space df and m = Df.Dataflow.n_time df in
  let p_scratch = Array.make r 0 and t_scratch = Array.make m 0 in
  let buckets : (int, (int * int) list ref) Hashtbl.t =
    Hashtbl.create 4096
  in
  let tkeys = ref [] in
  C.iter_instances c (fun () ->
      C.eval_tuple c c.C.space_exprs p_scratch;
      C.eval_tuple c c.C.time_exprs t_scratch;
      let tkey = C.encode c.C.time_base t_scratch in
      let pkey = C.encode pe_base p_scratch in
      let inst = C.encode_iters c in
      match Hashtbl.find_opt buckets tkey with
      | Some l -> l := (pkey, inst) :: !l
      | None ->
          Hashtbl.add buckets tkey (ref [ (pkey, inst) ]);
          tkeys := tkey :: !tkeys);
  let order = List.sort compare !tkeys in
  let interval = Arch.Interconnect.interval spec.Arch.Spec.topology in
  let preds : (int, int list) Hashtbl.t = Hashtbl.create 256 in
  Isl.Map.iter_pairs
    (fun src dst ->
      let s = C.encode pe_base src and d = C.encode pe_base dst in
      let prev = try Hashtbl.find preds d with Not_found -> [] in
      Hashtbl.replace preds d (s :: prev))
    (Df.Spacetime.reuse_pe_relation pe spec.Arch.Spec.topology);
  let tensors = Array.of_list (Ir.Tensor_op.tensors op) in
  let n_tensors = Array.length tensors in
  let accs =
    Array.map (fun t -> Array.of_list (Ir.Tensor_op.accesses_of op t)) tensors
  in
  (* window-1 register files: the element set each PE touched in its
     last active stamp (idle stamps retain it, as in the simulator) *)
  let regs : int array list array = Array.make (pe_size * n_tensors) [] in
  let iv = Array.make c.C.n_iters 0 in
  let fs_of inst ti =
    C.decode_iters c inst iv;
    Array.blit iv 0 c.C.vals 0 c.C.n_iters;
    List.sort_uniq compare
      (Array.to_list
         (Array.map
            (fun (a : Ir.Tensor_op.access) ->
              Array.of_list
                (List.map
                   (fun e -> Isl.Aff.eval c.C.env e)
                   a.Ir.Tensor_op.subscripts))
            accs.(ti)))
  in
  let decode_t tkey =
    let a = Array.make m 0 in
    C.decode c.C.time_base tkey a;
    a
  in
  let decode_p pkey =
    let a = Array.make r 0 in
    C.decode pe_base pkey a;
    a
  in
  let best_pe = ref (-1) and best_pe_at = ref [||] in
  let best_chip = ref (-1) and best_chip_at = ref [||] in
  let best_link = ref (-1) and best_link_at = ref [||] in
  let best_fan = ref (-1) and best_fan_at = ref [||] in
  let best_inflow = ref (-1) and best_inflow_at = ref [||] in
  let prev_live : (int * int array, unit) Hashtbl.t ref =
    ref (Hashtbl.create 64)
  in
  List.iter
    (fun tkey ->
      let insts = !(Hashtbl.find buckets tkey) in
      let needs =
        List.map
          (fun (pkey, inst) ->
            (pkey, List.init n_tensors (fun ti -> (ti, fs_of inst ti))))
          insts
      in
      let stamp_needs : (int * int, int array list) Hashtbl.t =
        Hashtbl.create 64
      in
      let used_now : (int * int array, unit) Hashtbl.t = Hashtbl.create 64 in
      List.iter
        (fun (pkey, per_tensor) ->
          List.iter
            (fun (ti, fs) ->
              Hashtbl.replace stamp_needs (pkey, ti) fs;
              List.iter (fun f -> Hashtbl.replace used_now (ti, f) ()) fs)
            per_tensor)
        needs;
      (* chip-level residency and off-chip inflow *)
      let chip = Hashtbl.length used_now in
      if chip > !best_chip then begin
        best_chip := chip;
        best_chip_at := decode_t tkey
      end;
      let inflow =
        Hashtbl.fold
          (fun k () acc -> if Hashtbl.mem !prev_live k then acc else acc + 1)
          used_now 0
      in
      if inflow > !best_inflow then begin
        best_inflow := inflow;
        best_inflow_at := decode_t tkey
      end;
      (* per-PE residency (what the register file must hold after this
         stamp commits), lex-least PE among ties *)
      let stamp_pe = ref None in
      List.iter
        (fun (pkey, per_tensor) ->
          let live =
            List.fold_left (fun a (_, fs) -> a + List.length fs) 0 per_tensor
          in
          match !stamp_pe with
          | Some (bl, bp) when bl > live || (bl = live && bp <= pkey) -> ()
          | _ -> stamp_pe := Some (live, pkey))
        needs;
      (match !stamp_pe with
      | Some (live, pkey) when live > !best_pe ->
          best_pe := live;
          best_pe_at := Array.append (decode_p pkey) (decode_t tkey)
      | _ -> ());
      (* interconnect transfers: per-edge load and per-source fan-out *)
      let edge_load : (int * int, int ref) Hashtbl.t = Hashtbl.create 64 in
      let fan : (int * int * int array, int ref) Hashtbl.t =
        Hashtbl.create 64
      in
      List.iter
        (fun (pkey, per_tensor) ->
          List.iter
            (fun (ti, fs) ->
              let held = regs.((pkey * n_tensors) + ti) in
              let have_local f =
                List.exists (fun g -> compare g f = 0) held
              in
              let supplier f =
                match Hashtbl.find_opt preds pkey with
                | None -> None
                | Some ps ->
                    List.fold_left
                      (fun acc q ->
                        let has =
                          if interval = 0 then
                            match Hashtbl.find_opt stamp_needs (q, ti) with
                            | None -> false
                            | Some fs' ->
                                List.exists (fun g -> compare g f = 0) fs'
                          else
                            List.exists
                              (fun g -> compare g f = 0)
                              regs.((q * n_tensors) + ti)
                        in
                        if not has then acc
                        else
                          match acc with
                          | Some b when b <= q -> acc
                          | _ -> Some q)
                      None ps
              in
              List.iter
                (fun f ->
                  if not (have_local f) then
                    match supplier f with
                    | None -> ()
                    | Some q ->
                        (match Hashtbl.find_opt edge_load (q, pkey) with
                        | Some n -> incr n
                        | None -> Hashtbl.add edge_load (q, pkey) (ref 1));
                        (match Hashtbl.find_opt fan (q, ti, f) with
                        | Some n -> incr n
                        | None -> Hashtbl.add fan (q, ti, f) (ref 1)))
                fs)
            per_tensor)
        needs;
      let stamp_link = ref None in
      Hashtbl.iter
        (fun (q, p) n ->
          let n = !n in
          match !stamp_link with
          | Some (bn, bq, bp) when bn > n || (bn = n && (bq, bp) <= (q, p))
            ->
              ()
          | _ -> stamp_link := Some (n, q, p))
        edge_load;
      (match !stamp_link with
      | Some (n, q, p) when n > !best_link ->
          best_link := n;
          best_link_at :=
            Array.concat [ decode_t tkey; decode_p q; decode_p p ]
      | _ -> ());
      let stamp_fan = ref None in
      Hashtbl.iter
        (fun (q, _, _) n ->
          let n = !n in
          match !stamp_fan with
          | Some (bn, bq) when bn > n || (bn = n && bq <= q) -> ()
          | _ -> stamp_fan := Some (n, q))
        fan;
      (match !stamp_fan with
      | Some (n, q) when n > !best_fan ->
          best_fan := n;
          best_fan_at := Array.append (decode_t tkey) (decode_p q)
      | _ -> ());
      (* commit: active PEs replace their register sets, idle PEs keep *)
      List.iter
        (fun (pkey, per_tensor) ->
          List.iter
            (fun (ti, fs) -> regs.((pkey * n_tensors) + ti) <- fs)
            per_tensor)
        needs;
      prev_live := used_now)
    order;
  {
    pe_live = max 0 !best_pe;
    pe_live_at = !best_pe_at;
    chip_live = max 0 !best_chip;
    chip_live_at = !best_chip_at;
    link_load = max 0 !best_link;
    link_load_at = !best_link_at;
    fanout = max 0 !best_fan;
    fanout_at = !best_fan_at;
    inflow = max 0 !best_inflow;
    inflow_at = !best_inflow_at;
  }

(* ------------------------------------------------------------------ *)
(* Symbolic per-stamp demand.                                          *)
(* ------------------------------------------------------------------ *)

let sum_opt (qs : Isl.Qpoly.t option list) : Isl.Qpoly.t option =
  List.fold_left
    (fun acc q ->
      match (acc, q) with
      | Some a, Some q -> Some (Isl.Qpoly.add a q)
      | _ -> None)
    (Some Isl.Qpoly.zero) qs

(* Σ over tensors of card { f | (p.., t..) -> f ∈ A_{D,F} }, as a
   quasi-polynomial in the r+m stamp coordinates: the number of distinct
   elements one PE touches in one stamp.  [None] when any tensor's
   relation resists the parametric planner. *)
let pe_demand (op : Ir.Tensor_op.t) (df : Df.Dataflow.t) :
    (Isl.Qpoly.t * (int * int) array) option =
  let n_params = Df.Dataflow.n_space df + Df.Dataflow.n_time df in
  let assume =
    Array.of_list (Df.Dataflow.space_bounds op df @ Df.Dataflow.time_bounds op df)
  in
  let counts =
    List.map
      (fun tensor ->
        let a = Df.Dataflow.data_assignment op df tensor in
        Isl.Count.count_union_param ~n_params ~assume
          (Isl.Set.disjuncts (Isl.Map.wrap a)))
      (Ir.Tensor_op.tensors op)
  in
  Option.map (fun q -> (q, assume)) (sum_opt counts)

(* Σ over tensors of card { f | (t..) -> f }: the number of distinct
   elements live anywhere on the chip in one stamp, as a
   quasi-polynomial in the m time coordinates. *)
let chip_demand (op : Ir.Tensor_op.t) (df : Df.Dataflow.t) :
    (Isl.Qpoly.t * (int * int) array) option =
  let m = Df.Dataflow.n_time df in
  let assume = Array.of_list (Df.Dataflow.time_bounds op df) in
  let tspace =
    Isl.Space.make "T"
      (List.mapi (fun i _ -> Printf.sprintf "t%d" i) df.Df.Dataflow.time)
  in
  let theta_t =
    Isl.Map.intersect_domain
      (Isl.Map.of_exprs (Ir.Tensor_op.space op) tspace df.Df.Dataflow.time)
      (Ir.Tensor_op.domain op)
  in
  let counts =
    List.map
      (fun tensor ->
        let a =
          Isl.Map.apply_range
            (Isl.Map.reverse theta_t)
            (Ir.Tensor_op.access_map op tensor)
        in
        Isl.Count.count_union_param ~n_params:m ~assume
          (Isl.Set.disjuncts (Isl.Map.wrap a)))
      (Ir.Tensor_op.tensors op)
  in
  Option.map (fun q -> (q, assume)) (sum_opt counts)

let env_of (bounds : (int * int) array) (i : int) = bounds.(i)

(* [demand <= cap] certified over the whole stamp box — exact for all
   sizes the bounds cover. *)
let proved_fits (total : Isl.Qpoly.t) ~(cap : int)
    (bounds : (int * int) array) : bool =
  Isl.Qpoly.prove_ge (env_of bounds)
    (Isl.Qpoly.sub (Isl.Qpoly.of_int cap) total)
    0

(* Sound infeasibility probe for the DSE pruner: the parametric count is
   certified exact at every assignment inside [bounds], so a sampled
   stamp whose demand exceeds the capacity is a genuine violation.
   Samples the box corners (up to 2^8) and the midpoint; incomplete by
   design — a [false] never prunes. *)
let sample_points (bounds : (int * int) array) : int array list =
  let n = Array.length bounds in
  let mid = Array.map (fun (lo, hi) -> lo + ((hi - lo) / 2)) bounds in
  if n = 0 then [ mid ]
  else if n > 8 then [ mid; Array.map fst bounds; Array.map snd bounds ]
  else begin
    let pts = ref [ mid ] in
    for mask = 0 to (1 lsl n) - 1 do
      pts :=
        Array.init n (fun i ->
            let lo, hi = bounds.(i) in
            if mask land (1 lsl i) <> 0 then hi else lo)
        :: !pts
    done;
    !pts
  end

let sample_exceeds (total : Isl.Qpoly.t) ~(cap : int)
    (bounds : (int * int) array) : bool =
  List.exists
    (fun pt -> Isl.Qpoly.eval (fun i -> pt.(i)) total > cap)
    (sample_points bounds)

(* ------------------------------------------------------------------ *)
(* Diagnostics.                                                        *)
(* ------------------------------------------------------------------ *)

(* Each instance consumes one operand port per access (reads and writes
   both occupy a port); the demand is a property of the op alone, so the
   verdict is exact for every size and every stamp. *)
let port_demand (op : Ir.Tensor_op.t) : int =
  List.length op.Ir.Tensor_op.accesses

let check (spec : Arch.Spec.t) (op : Ir.Tensor_op.t) (df : Df.Dataflow.t) :
    D.t list =
  if not (Arch.Spec.has_capacities spec) then []
  else begin
    let name = df.Df.Dataflow.name in
    let out = ref [] in
    let emit d = out := d :: !out in
    (match spec.Arch.Spec.pe_ports with
    | None -> ()
    | Some ports ->
        Obs.incr c_exact;
        let demand = port_demand op in
        if demand > ports then
          emit
            (D.make "TN016"
               ~witness:
                 (D.witness
                    ~space:(Isl.Space.to_string (Ir.Tensor_op.space op))
                    (Array.of_list
                       (List.map
                          (fun it -> it.Ir.Tensor_op.lo)
                          op.Ir.Tensor_op.iters))
                    ~note:
                      (Printf.sprintf "%d accesses per instance, %d ports"
                         demand ports))
               (Printf.sprintf
                  "%s: every instance performs %d tensor accesses in its \
                   cycle but the PE declares pe_ports = %d"
                  name demand ports)));
    (* TN014 fast path: prove the capacity bound over the whole stamp
       box symbolically; on success the verdict holds for all sizes. *)
    let pe_settled =
      match spec.Arch.Spec.pe_regs with
      | None -> true
      | Some cap -> (
          match pe_demand op df with
          | Some (total, bounds) when proved_fits total ~cap bounds ->
              Obs.incr c_exact;
              true
          | _ -> false)
    in
    let chip_words =
      Option.map (fun b -> b / word_bytes) spec.Arch.Spec.scratchpad_bytes
    in
    let chip_settled =
      match chip_words with
      | None -> true
      | Some cap -> (
          match chip_demand op df with
          | Some (total, bounds) when proved_fits total ~cap bounds ->
              Obs.incr c_exact;
              true
          | _ -> false)
    in
    let need_enum =
      (not pe_settled) || (not chip_settled)
      || spec.Arch.Spec.link_width <> None
      || spec.Arch.Spec.max_fanout <> None
      || spec.Arch.Spec.dram_bw <> None
    in
    if need_enum then begin
      Obs.incr c_fallback;
      let pk = enumerate_peaks spec op df in
      let st = Isl.Space.to_string (Df.Dataflow.st_space df) in
      (match spec.Arch.Spec.pe_regs with
      | Some cap when (not pe_settled) && pk.pe_live > cap ->
          emit
            (D.make "TN014"
               ~witness:
                 (D.witness ~space:st pk.pe_live_at
                    ~note:
                      (Printf.sprintf "%d live words > pe_regs = %d"
                         pk.pe_live cap))
               (Printf.sprintf
                  "%s: a PE holds %d distinct tensor elements in one stamp \
                   but the register file holds pe_regs = %d"
                  name pk.pe_live cap))
      | _ -> ());
      (match chip_words with
      | Some cap when (not chip_settled) && pk.chip_live > cap ->
          emit
            (D.make "TN014"
               ~witness:
                 (D.witness ~space:"T" pk.chip_live_at
                    ~note:
                      (Printf.sprintf "%d live words > %d words on chip"
                         pk.chip_live cap))
               (Printf.sprintf
                  "%s: the on-chip working set peaks at %d words (%d \
                   bytes) but scratchpad_bytes = %d holds %d words"
                  name pk.chip_live
                  (pk.chip_live * word_bytes)
                  (Option.get spec.Arch.Spec.scratchpad_bytes)
                  cap))
      | _ -> ());
      (match spec.Arch.Spec.link_width with
      | Some w when pk.link_load > w ->
          emit
            (D.make "TN015"
               ~witness:
                 (D.witness ~space:"(T, PE_src, PE_dst)" pk.link_load_at
                    ~note:
                      (Printf.sprintf "%d transfers > link_width = %d"
                         pk.link_load w))
               (Printf.sprintf
                  "%s: one interconnect edge carries %d distinct transfers \
                   in one cycle but link_width = %d"
                  name pk.link_load w))
      | _ -> ());
      (match spec.Arch.Spec.max_fanout with
      | Some fo when pk.fanout > fo ->
          emit
            (D.make "TN017"
               ~witness:
                 (D.witness ~space:"(T, PE_src)" pk.fanout_at
                    ~note:
                      (Printf.sprintf "%d destinations > max_fanout = %d"
                         pk.fanout fo))
               (Printf.sprintf
                  "%s: one PE multicasts an element to %d destinations in \
                   one cycle but max_fanout = %d"
                  name pk.fanout fo))
      | _ -> ());
      (match spec.Arch.Spec.dram_bw with
      | Some bw when pk.inflow > bw ->
          emit
            (D.make "TN018"
               ~witness:
                 (D.witness ~space:"T" pk.inflow_at
                    ~note:
                      (Printf.sprintf "%d words/cycle > dram_bw = %d"
                         pk.inflow bw))
               (Printf.sprintf
                  "%s: %d words enter the on-chip working set in one stamp \
                   but dram_bw = %d words per cycle"
                  name pk.inflow bw))
      | _ -> ())
    end;
    List.rev !out
  end

let lint (spec : Arch.Spec.t) : D.t list =
  if Arch.Spec.has_capacities spec then []
  else
    [
      D.make "TN019"
        ~witness:
          (D.witness ~space:"PE"
             (Arch.Pe_array.dims spec.Arch.Spec.pe)
             ~note:
               "declare scratchpad_bytes / pe_regs / link_width / pe_ports \
                / max_fanout / dram_bw to enable TN014-TN018")
        "architecture declares no resource capacities; the feasibility \
         checks TN014-TN018 are vacuous";
    ]

(* ------------------------------------------------------------------ *)
(* DSE pruning.                                                        *)
(* ------------------------------------------------------------------ *)

(* A candidate is rejected only on a *proof* of infeasibility (the
   constant port demand, or a sampled stamp of a certified parametric
   count exceeding the capacity); anything undecided is kept, so a
   capacity-pruned search returns exactly what the unpruned oracle
   would on every feasible candidate.  Enumeration is deliberately not
   used here — the pruner must stay cheap relative to the evaluation it
   avoids. *)
let feasible (spec : Arch.Spec.t) (op : Ir.Tensor_op.t) :
    (Df.Dataflow.t -> bool) option =
  if not (Arch.Spec.has_capacities spec) then None
  else begin
    let ports_bad =
      match spec.Arch.Spec.pe_ports with
      | Some ports -> port_demand op > ports
      | None -> false
    in
    Some
      (fun df ->
        if ports_bad then false
        else
          try
            let pe_bad =
              match spec.Arch.Spec.pe_regs with
              | None -> false
              | Some cap -> (
                  match pe_demand op df with
                  | Some (total, bounds) -> sample_exceeds total ~cap bounds
                  | None -> false)
            in
            let chip_bad =
              (not pe_bad)
              &&
              match spec.Arch.Spec.scratchpad_bytes with
              | None -> false
              | Some bytes -> (
                  let cap = bytes / word_bytes in
                  match chip_demand op df with
                  | Some (total, bounds) -> sample_exceeds total ~cap bounds
                  | None -> false)
            in
            not (pe_bad || chip_bad)
          with _ -> true)
  end
