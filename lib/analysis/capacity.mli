(** Resource-feasibility diagnostics: buffer capacity (TN014), link
    contention (TN015), PE ports (TN016), multicast fan-out (TN017),
    off-chip bandwidth (TN018), and the no-capacities lint (TN019).

    Verdicts are computed symbolically where the parametric counting
    engine certifies a bound for every stamp at once
    ([analysis.capacity_exact]), and by a per-timestamp enumeration that
    mirrors the simulator's machine state otherwise
    ([analysis.capacity_fallback]). *)

module Ir = Tenet_ir
module Arch = Tenet_arch
module Df = Tenet_dataflow

val word_bytes : int
(** Bytes per tensor element when converting [scratchpad_bytes] to a
    word capacity (4). *)

type peaks = {
  pe_live : int;  (** max distinct elements resident in one PE, one stamp *)
  pe_live_at : int array;  (** (p.., t..) stamp achieving it *)
  chip_live : int;  (** max distinct (tensor, element) live in one stamp *)
  chip_live_at : int array;  (** (t..) *)
  link_load : int;  (** max transfers over one edge in one stamp *)
  link_load_at : int array;  (** (t.., src p.., dst p..) *)
  fanout : int;  (** max destinations of one element from one PE, one stamp *)
  fanout_at : int array;  (** (t.., src p..) *)
  inflow : int;  (** max elements entering the live set in one stamp *)
  inflow_at : int array;  (** (t..) *)
}

val enumerate_peaks :
  Arch.Spec.t -> Ir.Tensor_op.t -> Df.Dataflow.t -> peaks
(** Exact per-timestamp peaks with argmax witnesses, by replaying the
    simulator's window-1 register and interconnect semantics.  The
    [TENET_CHECK_VERIFY=1] sanitizer cross-checks these against
    [Tenet_sim.Simulator]'s own probes. *)

val check : Arch.Spec.t -> Ir.Tensor_op.t -> Df.Dataflow.t -> Diagnostic.t list
(** TN014-TN018 for every capacity the spec declares; [[]] when
    {!Arch.Spec.has_capacities} is false.  Assumes the dataflow already
    passed the structural checks (rank, containment, injectivity). *)

val lint : Arch.Spec.t -> Diagnostic.t list
(** TN019 (info) when the spec declares no capacities at all. *)

val feasible :
  Arch.Spec.t -> Ir.Tensor_op.t -> (Df.Dataflow.t -> bool) option
(** A cheap, symbolic-only pruning predicate for the DSE: [false] only
    on a proof of infeasibility (constant port demand, or a sampled
    stamp of a certified parametric count exceeding a capacity), so
    pruning never drops a feasible candidate.  [None] when the spec
    declares no capacities. *)
