(** The relation-centric model checker (paper Sections III-V).

    For a (op, dataflow, architecture) triple, {!check} proves or
    refutes — with a concrete witness point whenever a property fails on
    one — the battery of properties TENET's metrics implicitly assume:
    Θ single-valuedness and injectivity, space-stamp containment,
    schedule causality over RAW dependences, interconnect
    well-formedness, reuse feasibility, resource feasibility against
    declared capacities ({!Capacity}), plus empty-domain and
    arity/rank lints.  See {!Diagnostic.registry} for the code table
    and [docs/analysis.md] for the prose. *)

module D = Diagnostic

val check :
  ?adjacency:Tenet_dataflow.Spacetime.adjacency ->
  Tenet_arch.Spec.t ->
  Tenet_ir.Tensor_op.t ->
  Tenet_dataflow.Dataflow.t ->
  D.t list
(** Run the full battery.  Returns all findings sorted by
    (code, witness, message) — byte-stable at any [--jobs]; empty list
    means the triple checks clean.  Capacity diagnostics (TN014-TN018)
    run only when the spec declares capacities and the structural
    checks pass; the TN019 lint is a CLI concern ({!Capacity.lint}) and
    is never emitted here. *)

val precheck :
  Tenet_arch.Spec.t ->
  Tenet_ir.Tensor_op.t ->
  Tenet_dataflow.Dataflow.t ->
  D.t list
(** The cheap subset (no counting, no witness search): iterator-name
    and rank lints plus space-stamp interval bounds.  Used to pre-filter
    DSE candidates under [--strict]. *)

val prechecker :
  Tenet_arch.Spec.t -> Tenet_ir.Tensor_op.t -> Tenet_dataflow.Dataflow.t -> bool
(** Staged {!precheck} for DSE inner loops: the closure answers whether
    a candidate passes with no error-severity finding — the same verdict
    as [D.errors (precheck spec op df) = []] — without formatting or
    allocating diagnostics per candidate. *)

val check_theta_map : Tenet_isl.Map.t -> D.t list
(** Single-valuedness (TN011) and injectivity (TN003) of a raw
    spacetime relation, e.g. a hand-written Θ. *)

val check_arch : Tenet_arch.Spec.t -> D.t list
(** Structural well-formedness of the architecture alone (TN005):
    interconnect rank, endpoint containment, self-loop wires. *)

val with_count_verify : (unit -> 'a) -> ('a, D.t) result
(** Run [f] with the {!Tenet_isl.Count} sanitizer armed (as if
    [TENET_COUNT_VERIFY=1]); a symbolic-vs-enumeration mismatch
    surfaces as a TN012 diagnostic instead of an exception. *)

val diagnostic_of_exn : exn -> D.t option
(** Map checker-related exceptions (currently
    {!Tenet_isl.Count.Verify_mismatch}) to diagnostics. *)

(** {1 The Zoo x Repository sweep} *)

type subject = {
  s_arch : string;
  s_kernel : string;
  s_spec : Tenet_arch.Spec.t;
  s_op : Tenet_ir.Tensor_op.t;
  s_df : Tenet_dataflow.Dataflow.t;
}

val zoo_subjects : unit -> subject list
(** Every Table III dataflow paired with every repository architecture
    of matching rank, at the paper's experiment sizes. *)

val check_subjects :
  ?adjacency:Tenet_dataflow.Spacetime.adjacency ->
  subject list ->
  (subject * D.t list) list
