(* Off-chip traffic analysis: runs the simulator with trace recording and
   feeds the scratchpad access stream to the LRU reuse-distance model,
   giving DRAM traffic as a function of scratchpad capacity.

   This closes the loop on Spec.buffer_words: the analytical model's
   UniqueVolume assumes an on-chip hit; this module says how much of it
   actually fits. *)

module Arch = Tenet_arch
module Ir = Tenet_ir
module Df = Tenet_dataflow
module Obs = Tenet_obs

let c_offchip = Obs.counter "sim.offchip_accesses"
let c_spm = Obs.counter "sim.scratchpad_accesses"

type t = {
  histogram : Reuse_distance.histogram;
  scratchpad_accesses : int;
  dram_accesses : int; (* at the spec's buffer capacity (inf if None) *)
  hit_rate : float;
  min_full_reuse_capacity : int;
      (* smallest buffer with only cold misses *)
}

let analyze ?(window = 1) (spec : Arch.Spec.t) (op : Ir.Tensor_op.t)
    (df : Df.Dataflow.t) : t =
  Obs.with_span ~args:[ ("dataflow", df.Df.Dataflow.name) ] "sim.offchip"
  @@ fun () ->
  let buf = ref [] in
  let _result =
    Simulator.run ~window
      ~trace:(fun tensor element -> buf := (tensor, Array.copy element) :: !buf)
      spec op df
  in
  let trace = Array.of_list (List.rev !buf) in
  let histogram =
    Obs.with_span "sim.reuse_histogram" (fun () ->
        Reuse_distance.histogram trace)
  in
  let capacity =
    match spec.Arch.Spec.buffer_words with Some b -> b | None -> max_int
  in
  let dram_accesses = Reuse_distance.misses histogram ~capacity in
  Obs.add c_offchip dram_accesses;
  Obs.add c_spm histogram.Reuse_distance.total;
  {
    histogram;
    scratchpad_accesses = histogram.Reuse_distance.total;
    dram_accesses;
    hit_rate = Reuse_distance.hit_rate histogram ~capacity;
    min_full_reuse_capacity =
      Reuse_distance.min_full_reuse_capacity histogram;
  }

(* DRAM traffic across a sweep of capacities (one simulator run). *)
let sweep ?(window = 1) (spec : Arch.Spec.t) (op : Ir.Tensor_op.t)
    (df : Df.Dataflow.t) ~(capacities : int list) : (int * int) list =
  let a = analyze ~window spec op df in
  List.map
    (fun c -> (c, Reuse_distance.misses a.histogram ~capacity:c))
    capacities
