(* A cycle-level simulator for tensor dataflows on spatial architectures.

   This is the repository's substitute for the silicon ground truth the
   paper compares against (reported Eyeriss / MAERI numbers): it actually
   executes the dataflow stamp by stamp, moving data through registers,
   interconnect and a bandwidth-limited scratchpad, and reports observed
   latency / utilization / traffic.  It shares only the IR with the
   analytical models, so model-vs-simulator agreement is a genuine
   cross-check (see DESIGN.md).

   Machine model:
   - time-stamps execute in lexicographic order; a stamp takes
     max(1, ceil((reads + writes) / bandwidth)) cycles — scratchpad
     traffic the analytical model assumes is hidden by double buffering
     shows up here as stalls when bandwidth is short;
   - each PE holds a register file per tensor retaining the elements it
     touched during the last [window] stamps (default 1), matching the
     analytical model's temporal-reuse window;
   - interval-1 interconnects deliver a neighbor's previous-stamp
     elements; interval-0 wires share one fetch among connected PEs
     needing the same element in the same stamp (the lex-least fetches);
   - output partial sums are written back on eviction and reloaded when
     an already-initialized element returns to a PE. *)

module Ir = Tenet_ir
module Arch = Tenet_arch
module Df = Tenet_dataflow
module C = Tenet_model.Concrete
module Obs = Tenet_obs

let c_runs = Obs.counter "sim.runs"
let c_stamps = Obs.counter "sim.stamps"
let c_fetches = Obs.counter "sim.fetches"
let c_writebacks = Obs.counter "sim.writebacks"
let c_stalls = Obs.counter "sim.stalled_cycles"

type tensor_traffic = {
  tensor : string;
  direction : Ir.Tensor_op.direction;
  fetches : int; (* scratchpad reads *)
  writebacks : int; (* scratchpad writes *)
}

type result = {
  cycles : int; (* observed latency *)
  busy_pe_cycles : int;
  n_instances : int;
  pe_size : int;
  utilization : float; (* instances / (PEs * cycles), the Fig 11 metric *)
  traffic : tensor_traffic list;
  stalled_cycles : int; (* cycles beyond one per stamp *)
  (* peak occupancy probes, the ground truth for the capacity checker's
     TN014/TN015 verdicts (Analysis.Capacity; cross-checked under
     TENET_CHECK_VERIFY=1).  Kept out of to_string/to_json so existing
     transcripts stay byte-identical. *)
  peak_pe_live : int; (* max distinct elements in one PE's registers *)
  peak_chip_live : int; (* max distinct (tensor, element) in one stamp *)
  peak_link_load : int; (* max transfers over one edge in one stamp *)
  peak_fanout : int; (* max destinations of one element from one PE *)
}

let run ?(window = 1) ?trace (spec : Arch.Spec.t) (op : Ir.Tensor_op.t)
    (df : Df.Dataflow.t) : result =
  Obs.with_span ~args:[ ("dataflow", df.Df.Dataflow.name) ] "sim.run"
  @@ fun () ->
  Obs.incr c_runs;
  let record tensor element =
    match trace with None -> () | Some f -> f tensor element
  in
  let c = C.compile op df in
  let pe = spec.Arch.Spec.pe in
  let pe_base = Array.map (fun d -> (0, d)) (Arch.Pe_array.dims pe) in
  let pe_size = Arch.Pe_array.size pe in
  let r = Df.Dataflow.n_space df and m = Df.Dataflow.n_time df in
  let p_scratch = Array.make r 0 and t_scratch = Array.make m 0 in
  (* bucket instances by time-stamp *)
  let buckets : (int, (int * int) list ref) Hashtbl.t = Hashtbl.create 4096 in
  let tkeys = ref [] in
  C.iter_instances c (fun () ->
      C.eval_tuple c c.C.space_exprs p_scratch;
      C.eval_tuple c c.C.time_exprs t_scratch;
      let tkey = C.encode c.C.time_base t_scratch in
      let pkey = C.encode pe_base p_scratch in
      let inst = C.encode_iters c in
      match Hashtbl.find_opt buckets tkey with
      | Some l -> l := (pkey, inst) :: !l
      | None ->
          Hashtbl.add buckets tkey (ref [ (pkey, inst) ]);
          tkeys := tkey :: !tkeys);
  (* lexicographic stamp order = ascending mixed-radix code *)
  let order = List.sort compare !tkeys in
  let interval = Arch.Interconnect.interval spec.Arch.Spec.topology in
  (* hop/wire predecessors per PE (lex-filtered for interval 0) *)
  let preds : (int, int list) Hashtbl.t = Hashtbl.create 256 in
  Tenet_isl.Map.iter_pairs
    (fun src dst ->
      let s = C.encode pe_base src and d = C.encode pe_base dst in
      let prev = try Hashtbl.find preds d with Not_found -> [] in
      Hashtbl.replace preds d (s :: prev))
    (Df.Spacetime.reuse_pe_relation pe spec.Arch.Spec.topology);
  let tensors = Array.of_list (Ir.Tensor_op.tensors op) in
  let n_tensors = Array.length tensors in
  let accs =
    Array.map (fun t -> Array.of_list (Ir.Tensor_op.accesses_of op t)) tensors
  in
  let is_output =
    Array.map (fun t -> List.mem t (Ir.Tensor_op.outputs op)) tensors
  in
  (* regs.(pe * n_tensors + ti): FIFO (newest first) of the element sets
     this PE touched during the last [window] stamps *)
  let regs : int array list list array =
    Array.make (pe_size * n_tensors) []
  in
  let reg_elements r = List.concat regs.(r) in
  (* output elements that already hold partial sums in the scratchpad *)
  let initialized : (int * int array, unit) Hashtbl.t = Hashtbl.create 4096 in
  let fetches = Array.make n_tensors 0 in
  let writebacks = Array.make n_tensors 0 in
  let cycles = ref 0 and busy = ref 0 and stalls = ref 0 in
  let peak_pe = ref 0 and peak_chip = ref 0 in
  let peak_link = ref 0 and peak_fan = ref 0 in
  let iv = Array.make c.C.n_iters 0 in
  let fs_of inst ti =
    C.decode_iters c inst iv;
    Array.blit iv 0 c.C.vals 0 c.C.n_iters;
    List.sort_uniq compare
      (Array.to_list
         (Array.map
            (fun (a : Ir.Tensor_op.access) ->
              Array.of_list
                (List.map
                   (fun e -> Tenet_isl.Aff.eval c.C.env e)
                   a.Ir.Tensor_op.subscripts))
            accs.(ti)))
  in
  List.iter
    (fun tkey ->
      let insts = !(Hashtbl.find buckets tkey) in
      busy := !busy + List.length insts;
      let needs =
        List.map
          (fun (pkey, inst) ->
            (pkey, List.init n_tensors (fun ti -> (ti, fs_of inst ti))))
          insts
      in
      (* (pe, tensor, element) needed this stamp, for same-cycle sharing *)
      let stamp_needs : (int * int, int array list) Hashtbl.t =
        Hashtbl.create 64
      in
      (* all (tensor, element) pairs alive this stamp, for eviction *)
      let used_now : (int * int array, unit) Hashtbl.t = Hashtbl.create 64 in
      List.iter
        (fun (pkey, per_tensor) ->
          List.iter
            (fun (ti, fs) ->
              Hashtbl.replace stamp_needs (pkey, ti) fs;
              List.iter (fun f -> Hashtbl.replace used_now (ti, f) ()) fs)
            per_tensor)
        needs;
      (* deduplicate writebacks of replicated copies within one stamp *)
      let written_now : (int * int array, unit) Hashtbl.t =
        Hashtbl.create 16
      in
      (* per-edge and per-(source, element) transfer tallies this stamp,
         feeding the peak_link_load / peak_fanout probes; a transfer is
         an element a PE needs, does not hold, and receives from its
         lex-least capable predecessor (the same attribution the
         capacity checker uses) *)
      let edge_load : (int * int, int ref) Hashtbl.t = Hashtbl.create 32 in
      let fan_load : (int * int * int array, int ref) Hashtbl.t =
        Hashtbl.create 32
      in
      let reads = ref 0 and writes = ref 0 in
      List.iter
        (fun (pkey, per_tensor) ->
          List.iter
            (fun (ti, fs) ->
              let reg = (pkey * n_tensors) + ti in
              let held = reg_elements reg in
              let have_local f = List.exists (fun g -> compare g f = 0) held in
              let neighbor_supplier f =
                match Hashtbl.find_opt preds pkey with
                | None -> None
                | Some ps ->
                    List.fold_left
                      (fun acc p' ->
                        let has =
                          if interval = 0 then
                            match Hashtbl.find_opt stamp_needs (p', ti) with
                            | None -> false
                            | Some fs' ->
                                List.exists (fun g -> compare g f = 0) fs'
                          else
                            List.exists
                              (fun g -> compare g f = 0)
                              (reg_elements ((p' * n_tensors) + ti))
                        in
                        if not has then acc
                        else
                          match acc with
                          | Some b when b <= p' -> acc
                          | _ -> Some p')
                      None ps
              in
              let note_transfer q f =
                (match Hashtbl.find_opt edge_load (q, pkey) with
                | Some n -> incr n
                | None -> Hashtbl.add edge_load (q, pkey) (ref 1));
                match Hashtbl.find_opt fan_load (q, ti, f) with
                | Some n -> incr n
                | None -> Hashtbl.add fan_load (q, ti, f) (ref 1)
              in
              if is_output.(ti) then begin
                (* evict partial sums leaving the array: those about to
                   fall off the register window, not used anywhere this
                   stamp (a live element merely migrating between PEs
                   travels over the interconnect), and written only once
                   per stamp even if several PEs held copies *)
                let falling_off =
                  if List.length regs.(reg) >= window then
                    match List.rev regs.(reg) with
                    | oldest :: _ ->
                        let rest =
                          List.concat
                            (match List.rev regs.(reg) with
                            | _ :: r -> r
                            | [] -> [])
                        in
                        List.filter
                          (fun g ->
                            not (List.exists (fun h -> compare g h = 0) rest))
                          oldest
                    | [] -> []
                  else []
                in
                let evicted =
                  List.filter
                    (fun g ->
                      (not (List.exists (fun f -> compare g f = 0) fs))
                      && (not (Hashtbl.mem used_now (ti, g)))
                      && not (Hashtbl.mem written_now (ti, g)))
                    falling_off
                in
                List.iter
                  (fun g ->
                    incr writes;
                    writebacks.(ti) <- writebacks.(ti) + 1;
                    record tensors.(ti) g;
                    Hashtbl.replace written_now (ti, g) ();
                    Hashtbl.replace initialized (ti, g) ())
                  evicted;
                List.iter
                  (fun f ->
                    if not (have_local f) then
                      match neighbor_supplier f with
                      | Some q -> note_transfer q f
                      | None ->
                          if Hashtbl.mem initialized (ti, f) then begin
                            (* reload an existing partial sum *)
                            incr reads;
                            fetches.(ti) <- fetches.(ti) + 1;
                            record tensors.(ti) f
                          end)
                  fs
              end
              else
                List.iter
                  (fun f ->
                    if not (have_local f) then
                      match neighbor_supplier f with
                      | Some q -> note_transfer q f
                      | None ->
                          incr reads;
                          fetches.(ti) <- fetches.(ti) + 1;
                          record tensors.(ti) f)
                  fs)
            per_tensor)
        needs;
      peak_chip := max !peak_chip (Hashtbl.length used_now);
      Hashtbl.iter
        (fun _ n -> if !n > !peak_link then peak_link := !n)
        edge_load;
      Hashtbl.iter
        (fun _ n -> if !n > !peak_fan then peak_fan := !n)
        fan_load;
      let step_cycles =
        max 1
          ((!reads + !writes + spec.Arch.Spec.bandwidth - 1)
          / spec.Arch.Spec.bandwidth)
      in
      stalls := !stalls + (step_cycles - 1);
      cycles := !cycles + step_cycles;
      (* commit registers for the next stamp: push this stamp's set and
         retire anything beyond the window *)
      List.iter
        (fun (pkey, per_tensor) ->
          List.iter
            (fun (ti, fs) ->
              let reg = (pkey * n_tensors) + ti in
              let take n l =
                let rec go n = function
                  | x :: r when n > 0 -> x :: go (n - 1) r
                  | _ -> []
                in
                go n l
              in
              regs.(reg) <- take window (fs :: regs.(reg)))
            per_tensor)
        needs;
      (* post-commit register occupancy of the PEs active this stamp *)
      List.iter
        (fun (pkey, per_tensor) ->
          let live =
            List.fold_left
              (fun a (ti, _) ->
                a
                + List.length
                    (List.sort_uniq compare
                       (reg_elements ((pkey * n_tensors) + ti))))
              0 per_tensor
          in
          if live > !peak_pe then peak_pe := live)
        needs)
    order;
  (* final drain: all live output partial sums return to the scratchpad *)
  let final_writes = ref 0 in
  Array.iteri
    (fun ti out ->
      if out then begin
        let distinct = Hashtbl.create 64 in
        for p = 0 to pe_size - 1 do
          List.iter
            (fun g -> Hashtbl.replace distinct g ())
            (reg_elements ((p * n_tensors) + ti))
        done;
        Hashtbl.iter (fun g () -> record tensors.(ti) g) distinct;
        final_writes := !final_writes + Hashtbl.length distinct;
        writebacks.(ti) <- writebacks.(ti) + Hashtbl.length distinct
      end)
    is_output;
  cycles :=
    !cycles
    + ((!final_writes + spec.Arch.Spec.bandwidth - 1)
      / spec.Arch.Spec.bandwidth);
  let n_instances = Ir.Tensor_op.n_instances op in
  Obs.add c_stamps (List.length order);
  Obs.add c_fetches (Array.fold_left ( + ) 0 fetches);
  Obs.add c_writebacks (Array.fold_left ( + ) 0 writebacks);
  Obs.add c_stalls !stalls;
  {
    cycles = !cycles;
    busy_pe_cycles = !busy;
    n_instances;
    pe_size;
    utilization =
      float_of_int n_instances /. float_of_int (pe_size * max 1 !cycles);
    traffic =
      Array.to_list
        (Array.mapi
           (fun ti t ->
             {
               tensor = t;
               direction =
                 (if is_output.(ti) then Ir.Tensor_op.Write
                  else Ir.Tensor_op.Read);
               fetches = fetches.(ti);
               writebacks = writebacks.(ti);
             })
           tensors);
    stalled_cycles = !stalls;
    peak_pe_live = !peak_pe;
    peak_chip_live = !peak_chip;
    peak_link_load = !peak_link;
    peak_fanout = !peak_fan;
  }

let to_string r =
  Printf.sprintf "cycles=%d util=%.3f busy=%d stalls=%d traffic=[%s]" r.cycles
    r.utilization r.busy_pe_cycles r.stalled_cycles
    (String.concat "; "
       (List.map
          (fun t -> Printf.sprintf "%s r%d w%d" t.tensor t.fetches t.writebacks)
          r.traffic))

let to_json (r : result) : Obs.Json.t =
  let open Obs.Json in
  Obj
    [
      ("cycles", Int r.cycles);
      ("busy_pe_cycles", Int r.busy_pe_cycles);
      ("n_instances", Int r.n_instances);
      ("pe_size", Int r.pe_size);
      ("utilization", Float r.utilization);
      ("stalled_cycles", Int r.stalled_cycles);
      ( "traffic",
        List
          (List.map
             (fun t ->
               Obj
                 [
                   ("tensor", String t.tensor);
                   ( "direction",
                     String
                       (match t.direction with
                       | Ir.Tensor_op.Read -> "in"
                       | Ir.Tensor_op.Write -> "out") );
                   ("fetches", Int t.fetches);
                   ("writebacks", Int t.writebacks);
                 ])
             r.traffic) );
    ]
