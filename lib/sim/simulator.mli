(** A cycle-level simulator for tensor dataflows on spatial
    architectures — the executable ground truth for the Figure 11
    accuracy study (see DESIGN.md's substitution table).

    The machine executes time-stamps in lexicographic order; each PE
    keeps a register file per tensor holding the elements touched in the
    last [window] stamps; interval-1 interconnects forward a neighbor's
    previous-stamp elements, interval-0 wires share one fetch per element
    per cycle; scratchpad traffic is limited to [bandwidth] words/cycle
    and surplus shows up as stall cycles; output partial sums write back
    on eviction and reload when they return. *)

type tensor_traffic = {
  tensor : string;
  direction : Tenet_ir.Tensor_op.direction;
  fetches : int;
  writebacks : int;
}

type result = {
  cycles : int;  (** observed latency *)
  busy_pe_cycles : int;
  n_instances : int;
  pe_size : int;
  utilization : float;  (** instances / (PEs x cycles) *)
  traffic : tensor_traffic list;
  stalled_cycles : int;
  peak_pe_live : int;
      (** max distinct elements resident in one PE's registers after a
          stamp commits — the machine-observed TN014 (per-PE) demand *)
  peak_chip_live : int;
      (** max distinct (tensor, element) pairs alive in one stamp — the
          TN014 (scratchpad) demand *)
  peak_link_load : int;
      (** max transfers carried by one interconnect edge in one stamp
          (lex-least-supplier attribution) — the TN015 demand *)
  peak_fanout : int;
      (** max destinations one (source PE, element) pair feeds in one
          stamp — the TN017 demand *)
}

val run :
  ?window:int ->
  ?trace:(string -> int array -> unit) ->
  Tenet_arch.Spec.t ->
  Tenet_ir.Tensor_op.t ->
  Tenet_dataflow.Dataflow.t ->
  result
(** [window] defaults to 1 (single-stamp registers).  [trace] is invoked
    with (tensor, element) for every scratchpad access, in program order,
    feeding {!Reuse_distance}. *)

val to_string : result -> string

val to_json : result -> Tenet_obs.Json.t
(** Machine-readable form with stable keys (CLI [--json]). *)
