#!/bin/sh
# Compare a bench summary.json against the committed seed baseline and
# flag regressions.
#
#   usage: scripts/bench_compare.sh [--points-only] [--sections a,b,...]
#                                   [CURRENT [BASELINE]]
#
# CURRENT defaults to the most natural workflow's output:
#
#   TENET_BENCH_TIMINGS=/tmp/bench dune exec --profile release bench/main.exe
#   scripts/bench_compare.sh /tmp/bench/summary.json
#
# BASELINE defaults to BENCH_seed.json at the repository root (the pre-
# optimization seed measurement; see docs/performance.md).
#
# A section regresses when its wall-clock grows by more than 10% over the
# baseline (sections faster than 100ms are skipped — they are noise) or
# when its count.points_enumerated grows at all beyond 10% (the counter is
# deterministic, so growth means the engine lost a closed form).  Exits 1
# if any section regressed.
#
#   --points-only    skip the wall-clock check: only the deterministic
#                    points_enumerated comparison can fail.  This is what
#                    CI uses, so a loaded runner never flakes the build.
#   --sections a,b   compare only the named sections (for partial runs:
#                    `bench/main.exe -- fig6 fig8` writes a two-section
#                    summary, and unrestricted comparison would report
#                    every other baseline section as missing).
#   --ceiling s=r    require section s's wall-clock to stay at or below
#                    r times the baseline (repeatable, or comma-joined).
#                    Unlike the 10% regression check this also applies
#                    under --points-only: it encodes a "must stay N x
#                    faster than the seed" guarantee whose margin is wide
#                    enough (see docs/performance.md) not to flake on a
#                    loaded runner.
#
# Besides the per-section table (with points ratio), prints the fast-path
# counter totals (qpoly_hits / qpoly_fallbacks) summed over the compared
# sections when the summary carries them; the seed baseline predates
# those fields and reports "-".
set -eu

cd "$(dirname "$0")/.."

points_only=0
sections=""
ceilings=""
while [ $# -gt 0 ]; do
  case "$1" in
    --points-only) points_only=1; shift ;;
    --sections) sections="$2"; shift 2 ;;
    --sections=*) sections="${1#--sections=}"; shift ;;
    --ceiling) ceilings="$ceilings,$2"; shift 2 ;;
    --ceiling=*) ceilings="$ceilings,${1#--ceiling=}"; shift ;;
    *) break ;;
  esac
done

current="${1:-/tmp/bench/summary.json}"
baseline="${2:-BENCH_seed.json}"

[ -f "$current" ] || { echo "no current summary: $current" >&2; exit 2; }
[ -f "$baseline" ] || { echo "no baseline summary: $baseline" >&2; exit 2; }

# Flatten {"sections":[{"section":s,"total_s":t,"points_enumerated":p,
# "qpoly_hits":q,"qpoly_fallbacks":f}]} into "s t p q f" lines, with
# "- -" when the fast-path fields are absent (the seed baseline).  The
# JSON shape is fixed (bench/main.ml writes it), so a line-oriented
# parse is dependable.
flatten() {
  { tr -d ' \n' < "$1"; echo; } \
    | sed 's/},{/}\n{/g' \
    | sed -n \
        -e 's/.*"section":"\([^"]*\)","total_s":\([0-9.eE+-]*\),"points_enumerated":\([0-9]*\),"qpoly_hits":\([0-9]*\),"qpoly_fallbacks":\([0-9]*\).*/\1 \2 \3 \4 \5/p' \
        -e 's/.*"section":"\([^"]*\)","total_s":\([0-9.eE+-]*\),"points_enumerated":\([0-9]*\).*/\1 \2 \3 - -/p'
}

in_sections() {
  [ -z "$sections" ] && return 0
  case ",$sections," in *",$1,"*) return 0 ;; *) return 1 ;; esac
}

flatten "$current" > /tmp/bench_compare_cur.$$
flatten "$baseline" > /tmp/bench_compare_base.$$
trap 'rm -f /tmp/bench_compare_cur.$$ /tmp/bench_compare_base.$$' EXIT

status=0
cur_q_total=0; cur_f_total=0; base_q_total="-"; base_f_total="-"
printf '%-22s %12s %12s %8s %22s %8s\n' \
  section base_s cur_s t_ratio points p_ratio
while read -r name base_t base_p base_q base_f; do
  in_sections "$name" || continue
  line=$(grep "^$name " /tmp/bench_compare_cur.$$ || true)
  if [ -z "$line" ]; then
    echo "MISSING  $name (in baseline, not in current run)"
    status=1
    continue
  fi
  cur_t=$(echo "$line" | cut -d' ' -f2)
  cur_p=$(echo "$line" | cut -d' ' -f3)
  cur_q=$(echo "$line" | cut -d' ' -f4)
  cur_f=$(echo "$line" | cut -d' ' -f5)
  [ "$cur_q" != "-" ] && cur_q_total=$((cur_q_total + cur_q))
  [ "$cur_f" != "-" ] && cur_f_total=$((cur_f_total + cur_f))
  if [ "$base_q" != "-" ]; then
    [ "$base_q_total" = "-" ] && base_q_total=0
    base_q_total=$((base_q_total + base_q))
  fi
  if [ "$base_f" != "-" ]; then
    [ "$base_f_total" = "-" ] && base_f_total=0
    base_f_total=$((base_f_total + base_f))
  fi
  ceil=$(printf '%s,' "$ceilings" \
    | sed -n "s/.*,$name=\([0-9.]*\),.*/\1/p")
  awk -v n="$name" -v bt="$base_t" -v ct="$cur_t" -v bp="$base_p" \
      -v cp="$cur_p" -v ponly="$points_only" -v ceil="$ceil" '
    BEGIN {
      t_ratio = (bt > 0) ? ct / bt : 1
      p_ratio = (bp > 0) ? cp / bp : (cp > 0 ? -1 : 1)
      flag = ""
      # wall-clock: >10% slower on a section big enough to measure
      if (!ponly && bt >= 0.1 && t_ratio > 1.10) flag = flag " TIME-REGRESSION"
      # explicit speedup guarantee: stay at or below ceil x baseline
      if (ceil != "" && bt > 0 && t_ratio > ceil + 0) \
        flag = flag " CEILING-EXCEEDED"
      # enumerated points are deterministic; >10% growth means lost closed forms
      if (bp > 0 && cp > bp * 1.10) flag = flag " POINTS-REGRESSION"
      if (bp == 0 && cp > 0) flag = flag " POINTS-REGRESSION"
      p_str = (p_ratio < 0) ? "new" : sprintf("%.4f", p_ratio)
      printf "%-22s %12.3f %12.3f %8.2f %12d -> %7d %8s%s\n", \
        n, bt, ct, t_ratio, bp, cp, p_str, flag
      exit (flag == "") ? 0 : 1
    }' || status=1
done < /tmp/bench_compare_base.$$

echo "fast-path totals over compared sections:"
echo "  qpoly_hits:      base=$base_q_total cur=$cur_q_total"
echo "  qpoly_fallbacks: base=$base_f_total cur=$cur_f_total"

if [ "$status" -eq 0 ]; then
  echo "bench_compare: OK (no section regressed >10% vs $baseline)"
else
  echo "bench_compare: REGRESSIONS FOUND vs $baseline" >&2
fi
exit "$status"
