#!/bin/sh
# Compare a bench summary.json against the committed seed baseline and
# flag regressions.
#
#   usage: scripts/bench_compare.sh [CURRENT [BASELINE]]
#
# CURRENT defaults to the most natural workflow's output:
#
#   TENET_BENCH_TIMINGS=/tmp/bench dune exec --profile release bench/main.exe
#   scripts/bench_compare.sh /tmp/bench/summary.json
#
# BASELINE defaults to BENCH_seed.json at the repository root (the pre-
# optimization seed measurement; see docs/performance.md).
#
# A section regresses when its wall-clock grows by more than 10% over the
# baseline (sections faster than 100ms are skipped — they are noise) or
# when its count.points_enumerated grows at all beyond 10% (the counter is
# deterministic, so growth means the engine lost a closed form).  Exits 1
# if any section regressed.
set -eu

cd "$(dirname "$0")/.."

current="${1:-/tmp/bench/summary.json}"
baseline="${2:-BENCH_seed.json}"

[ -f "$current" ] || { echo "no current summary: $current" >&2; exit 2; }
[ -f "$baseline" ] || { echo "no baseline summary: $baseline" >&2; exit 2; }

# Flatten {"sections":[{"section":s,"total_s":t,"points_enumerated":p}]}
# into "s t p" lines.  The JSON shape is fixed (bench/main.ml writes it),
# so a line-oriented parse is dependable.
flatten() {
  { tr -d ' \n' < "$1"; echo; } \
    | sed 's/},{/}\n{/g' \
    | sed -n 's/.*"section":"\([^"]*\)","total_s":\([0-9.eE+-]*\),"points_enumerated":\([0-9]*\).*/\1 \2 \3/p'
}

flatten "$current" > /tmp/bench_compare_cur.$$
flatten "$baseline" > /tmp/bench_compare_base.$$
trap 'rm -f /tmp/bench_compare_cur.$$ /tmp/bench_compare_base.$$' EXIT

status=0
printf '%-22s %12s %12s %8s   %s\n' section base_s cur_s ratio points
while read -r name base_t base_p; do
  line=$(grep "^$name " /tmp/bench_compare_cur.$$ || true)
  if [ -z "$line" ]; then
    echo "MISSING  $name (in baseline, not in current run)"
    status=1
    continue
  fi
  cur_t=$(echo "$line" | cut -d' ' -f2)
  cur_p=$(echo "$line" | cut -d' ' -f3)
  awk -v n="$name" -v bt="$base_t" -v ct="$cur_t" -v bp="$base_p" -v cp="$cur_p" '
    BEGIN {
      ratio = (bt > 0) ? ct / bt : 1
      flag = ""
      # wall-clock: >10% slower on a section big enough to measure
      if (bt >= 0.1 && ratio > 1.10) flag = flag " TIME-REGRESSION"
      # enumerated points are deterministic; >10% growth means lost closed forms
      if (bp > 0 && cp > bp * 1.10) flag = flag " POINTS-REGRESSION"
      printf "%-22s %12.3f %12.3f %8.2f   %d -> %d%s\n", n, bt, ct, ratio, bp, cp, flag
      exit (flag == "") ? 0 : 1
    }' || status=1
done < /tmp/bench_compare_base.$$

if [ "$status" -eq 0 ]; then
  echo "bench_compare: OK (no section regressed >10% vs $baseline)"
else
  echo "bench_compare: REGRESSIONS FOUND vs $baseline" >&2
fi
exit "$status"
