#!/bin/sh
# Tier-1 verification: format check (when ocamlformat is available),
# full build, full test suite.  Run from the repository root.
set -eu

cd "$(dirname "$0")/.."

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune fmt =="
  dune build @fmt
else
  echo "== dune fmt == (skipped: ocamlformat not installed)"
fi

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== model checker sweep (tenet check --all) =="
# Every Table III dataflow on every matching-rank repository
# architecture must check clean; the command exits nonzero on any
# error-severity diagnostic, and --json keeps the output greppable.
dune exec -- tenet check --all --json \
  | grep -q '"failing": 0' || { echo "check sweep failed"; exit 1; }

echo "== serve protocol golden (tenet batch --jobs 4) =="
# 50+ mixed requests (analyze/volumes/dse/check, duplicates for the
# result cache, one malformed line, one unknown field, one bad
# expression, one 1 ms deadline) must reproduce the committed responses
# byte for byte; see docs/serving.md for the protocol.
TENET_SERVE_CACHE_MB=64 dune exec -- tenet batch \
    test/golden/serve_requests.jsonl --jobs 4 \
  | diff - test/golden/serve_responses.golden.jsonl \
  || { echo "serve golden mismatch"; exit 1; }

echo "== counting sanitizer shard (TENET_COUNT_VERIFY=1) =="
# One oracle-test shard re-runs with every symbolic count cross-checked
# against enumeration; any disagreement raises Count.Verify_mismatch.
TENET_COUNT_VERIFY=1 dune exec test/test_count_oracle.exe >/dev/null

echo "== release build =="
dune build --profile release

echo "== bench smoke (fig6+fig8+serve, release, vs BENCH_seed.json) =="
bench_dir=$(mktemp -d)
trap 'rm -rf "$bench_dir"' EXIT
TENET_BENCH_TIMINGS="$bench_dir" \
  dune exec --profile release bench/main.exe -- fig6 fig8 serve >/dev/null
# Points-only: the enumerated-point counters are deterministic, so this
# cannot flake on a loaded runner the way wall-clock comparison would.
scripts/bench_compare.sh --points-only --sections fig6,fig8 \
  "$bench_dir/summary.json" BENCH_seed.json

echo "== serve cache speedup (warm vs cold batch) =="
# The serve section replays a duplicate-heavy batch cold and warm; the
# warm pass must be at least 3x faster through the result cache.  The
# margin is enormous in practice (warm requests are pure cache lookups),
# so the 3x floor does not flake on a loaded runner.
awk -F': *' '/"serve_speedup"/ { s = $2 + 0 }
  END { if (s >= 3) { printf "serve speedup %.1fx (>= 3x)\n", s; exit 0 }
        printf "serve speedup %.1fx is below the 3x floor\n", s; exit 1 }' \
  "$bench_dir/summary.json"

echo "CI OK"
