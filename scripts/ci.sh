#!/bin/sh
# Tier-1 verification: format check (when ocamlformat is available),
# full build, full test suite.  Run from the repository root.
set -eu

cd "$(dirname "$0")/.."

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune fmt =="
  dune build @fmt
else
  echo "== dune fmt == (skipped: ocamlformat not installed)"
fi

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== model checker sweep (tenet check --all) =="
# Every Table III dataflow on every matching-rank repository
# architecture must check clean; the command exits nonzero on any
# error-severity diagnostic, and --json keeps the output greppable.
dune exec -- tenet check --all --json \
  | grep -q '"failing": 0' || { echo "check sweep failed"; exit 1; }

echo "== capacity sweep (tenet check --all --capacities) =="
# The same sweep with generous resource capacities annotated onto every
# architecture: the zoo must also be resource-feasible (TN014-TN018),
# not just structurally valid.
dune exec -- tenet check --all --capacities --json \
  | grep -q '"failing": 0' || { echo "capacity sweep failed"; exit 1; }

echo "== serve protocol golden (tenet batch --jobs 4) =="
# 50+ mixed requests (analyze/volumes/dse/check, duplicates for the
# result cache, one malformed line, one unknown field, one bad
# expression, one 1 ms deadline) must reproduce the committed responses
# byte for byte; see docs/serving.md for the protocol.
TENET_SERVE_CACHE_MB=64 dune exec -- tenet batch \
    test/golden/serve_requests.jsonl --jobs 4 \
  | diff - test/golden/serve_responses.golden.jsonl \
  || { echo "serve golden mismatch"; exit 1; }

echo "== serve golden across the worker fleet (tenet batch --workers 3) =="
# The same transcript fanned out over pre-forked worker processes:
# round-robin dispatch plus index-ordered reassembly must reproduce the
# committed bytes exactly.
TENET_SERVE_CACHE_MB=64 dune exec -- tenet batch \
    test/golden/serve_requests.jsonl --workers 3 \
  | diff - test/golden/serve_responses.golden.jsonl \
  || { echo "fleet golden mismatch"; exit 1; }

echo "== serve observability (live scrape, prometheus lint) =="
# A live `tenet serve` session over the golden batch, with the access
# log on: scrape stats before and after the batch, assert the request
# counter is monotonic and the latency histogram has nonzero quantiles,
# then lint the Prometheus exposition (HELP/TYPE coverage, cumulative
# bucket monotonicity, +Inf == _count) from a third scrape.
tmp_root=$(mktemp -d)
trap 'rm -rf "$tmp_root"' EXIT
obs_dir="$tmp_root/obs"
mkdir -p "$obs_dir"
mkfifo "$obs_dir/in"
dune exec -- tenet serve --access-log "$obs_dir/access.jsonl" \
  <"$obs_dir/in" >"$obs_dir/out" &
serve_pid=$!
exec 9>"$obs_dir/in"
printf '{"cmd":"stats","id":"scrape1"}\n' >&9
cat test/golden/serve_requests.jsonl >&9
# Wait until every batch request has been answered (stats is answered
# inline, so scrape1's response is already there: golden count + 1).
want=$(($(wc -l <test/golden/serve_responses.golden.jsonl) + 1))
tries=0
while [ "$(wc -l <"$obs_dir/out")" -lt "$want" ]; do
  tries=$((tries + 1))
  if [ "$tries" -gt 600 ]; then
    echo "serve session stalled waiting for $want responses"
    kill "$serve_pid" 2>/dev/null || true
    exit 1
  fi
  sleep 0.1
done
printf '{"cmd":"stats","id":"scrape2"}\n' >&9
printf '{"cmd":"stats","id":"scrape3","format":"prometheus"}\n' >&9
exec 9>&-
wait "$serve_pid"

r1=$(grep '"id":"scrape1"' "$obs_dir/out" \
  | sed -n 's/.*"serve\.requests":\([0-9][0-9]*\).*/\1/p')
r2=$(grep '"id":"scrape2"' "$obs_dir/out" \
  | sed -n 's/.*"serve\.requests":\([0-9][0-9]*\).*/\1/p')
[ -n "$r1" ] && [ -n "$r2" ] && [ "$r2" -gt "$r1" ] \
  || { echo "serve.requests not monotonic ('$r1' -> '$r2')"; exit 1; }
echo "serve.requests monotonic: $r1 -> $r2"
grep '"id":"scrape2"' "$obs_dir/out" | grep -q '"window":{' \
  || { echo "second JSON scrape is missing the window section"; exit 1; }
grep '"id":"scrape2"' "$obs_dir/out" | grep -q '"serve\.queue_wait"' \
  || { echo "stats is missing the serve.queue_wait histogram"; exit 1; }
grep '"id":"scrape2"' "$obs_dir/out" | awk '{
  if (!match($0, /"serve\.request_latency":\{[^}]*/)) {
    print "stats is missing the serve.request_latency histogram"; exit 1 }
  s = substr($0, RSTART, RLENGTH)
  p50 = 0; p99 = 0
  if (match(s, /"p50":[0-9.eE+-]+/)) p50 = substr(s, RSTART + 6, RLENGTH - 6) + 0
  if (match(s, /"p99":[0-9.eE+-]+/)) p99 = substr(s, RSTART + 6, RLENGTH - 6) + 0
  if (p50 > 0 && p99 >= p50) {
    printf "latency quantiles: p50 %gs p99 %gs\n", p50, p99; exit 0 }
  printf "latency quantiles not positive (p50 %g p99 %g)\n", p50, p99
  exit 1
}'

grep '"id":"scrape3"' "$obs_dir/out" | awk '{
  if (!match($0, /"exposition":"/)) exit 1
  s = substr($0, RSTART + RLENGTH)
  sub(/"[^"]*$/, "", s)
  gsub(/\\n/, "\n", s)
  gsub(/\\"/, "\"", s)
  gsub(/\\\\/, "\\", s)
  print s
}' >"$obs_dir/exposition.txt"
[ -s "$obs_dir/exposition.txt" ] \
  || { echo "no prometheus exposition in scrape3"; exit 1; }
awk -v floor="$r2" '
  /^# HELP / { help[$3] = 1; next }
  /^# TYPE / { type[$3] = $4; next }
  /^$/ || /^#/ { next }
  {
    name = $1; sub(/\{.*/, "", name)
    fam = name
    if (fam ~ /_(bucket|sum|count)$/) {
      base = fam; sub(/_(bucket|sum|count)$/, "", base)
      if (type[base] == "histogram") fam = base
    }
    if (!(fam in help) || !(fam in type)) {
      printf "missing HELP/TYPE for %s\n", fam; bad = 1 }
    if (type[fam] == "histogram") {
      if (name == fam "_bucket") {
        v = $2 + 0
        if (fam in last_bucket && v < last_bucket[fam]) {
          printf "non-monotonic buckets for %s\n", fam; bad = 1 }
        last_bucket[fam] = v
        if ($0 ~ /le="\+Inf"/) inf[fam] = v
      }
      if (name == fam "_count" && (!(fam in inf) || inf[fam] != $2 + 0)) {
        printf "+Inf bucket != _count for %s\n", fam; bad = 1 }
    }
    if (name == "serve_request_latency_count" && $2 + 0 > 0) latency_ok = 1
    if (name == "serve_requests_total" && $2 + 0 >= floor) counter_ok = 1
    samples++
  }
  END {
    if (samples == 0) { print "empty exposition"; exit 1 }
    if (!latency_ok) {
      print "serve_request_latency histogram missing or empty"; exit 1 }
    if (!counter_ok) {
      printf "serve_requests_total below the JSON scrape (%d)\n", floor
      exit 1 }
    if (bad) exit 1
    printf "prometheus lint OK (%d samples)\n", samples
  }' "$obs_dir/exposition.txt"
[ "$(wc -l <"$obs_dir/access.jsonl")" -ge 50 ] \
  || { echo "access log is unexpectedly short"; exit 1; }
grep -q '"queue_wait_ms"' "$obs_dir/access.jsonl" \
  || { echo "access log has no queue_wait_ms field"; exit 1; }
echo "access log OK ($(wc -l <"$obs_dir/access.jsonl") lines)"

echo "== persistent cache: cold restart replays the golden batch =="
# First run populates the on-disk tier; a fresh process with cold memory
# must replay the batch byte-identically from it, mostly as cache hits.
cache_dir="$tmp_root/cache"
TENET_SERVE_CACHE_MB=64 dune exec -- tenet batch \
    test/golden/serve_requests.jsonl --jobs 4 --cache-dir "$cache_dir" \
  | diff - test/golden/serve_responses.golden.jsonl \
  || { echo "cache-dir warm-up run mismatched"; exit 1; }
[ -s "$cache_dir/results-v1.jsonl" ] \
  || { echo "no persistent cache written"; exit 1; }
TENET_SERVE_CACHE_MB=64 dune exec -- tenet batch \
    test/golden/serve_requests.jsonl --jobs 4 --cache-dir "$cache_dir" \
    --stats "$tmp_root/warm_stats.json" \
  | diff - test/golden/serve_responses.golden.jsonl \
  || { echo "cold restart with warm disk cache mismatched"; exit 1; }
hits=$(sed -n 's/.*"serve\.cache_hits": *\([0-9][0-9]*\).*/\1/p' \
  "$tmp_root/warm_stats.json")
[ -n "$hits" ] && [ "$hits" -ge 40 ] \
  || { echo "warm restart served only '${hits:-0}' cache hits (want >= 40)"
       exit 1; }
echo "cold restart byte-identical ($hits cache hits from \
$(($(wc -l <"$cache_dir/results-v1.jsonl") - 1)) persisted entries)"

echo "== admission control smoke (graduated shedding under overload) =="
# A burst far past the queue bound, mixed low/normal priority, against a
# single-domain pool with a tiny queue: some requests must shed, and the
# shed-tier counters must agree exactly with the overloaded responses
# the client saw (every shed is a response, every overload is counted).
shed_dir="$tmp_root/shed"
mkdir -p "$shed_dir"
mkfifo "$shed_dir/in"
TENET_JOBS=1 dune exec -- tenet serve --queue 2 --shed-low 1 \
  <"$shed_dir/in" >"$shed_dir/out" &
shed_pid=$!
exec 8>"$shed_dir/in"
i=0
while [ "$i" -lt 24 ]; do
  if [ $((i % 2)) -eq 0 ]; then prio=low; else prio=normal; fi
  printf '{"cmd":"analyze","id":"ov%d","sizes":[%d,24,24],"priority":"%s"}\n' \
    "$i" $((24 + i)) "$prio"
  i=$((i + 1))
done >&8
tries=0
while [ "$(wc -l <"$shed_dir/out")" -lt 24 ]; do
  tries=$((tries + 1))
  if [ "$tries" -gt 600 ]; then
    echo "overload burst stalled"
    kill "$shed_pid" 2>/dev/null || true
    exit 1
  fi
  sleep 0.1
done
printf '{"cmd":"stats","id":"shed-scrape"}\n' >&8
exec 8>&-
wait "$shed_pid"
tiers=$(grep '"id":"shed-scrape"' "$shed_dir/out" | sed -n \
  's/.*"shed":{"hard":\([0-9]*\),"normal":\([0-9]*\),"low":\([0-9]*\),"expired":\([0-9]*\)}.*/\1 \2 \3 \4/p')
[ -n "$tiers" ] || { echo "stats has no shed section"; exit 1; }
set -- $tiers
shed_total=$(($1 + $2 + $3 + $4))
overloaded=$(grep -v shed-scrape "$shed_dir/out" \
  | grep -c '"kind":"overloaded"' || true)
[ "$shed_total" -ge 1 ] || { echo "overload burst shed nothing"; exit 1; }
[ "$overloaded" -eq "$shed_total" ] \
  || { echo "shed counters ($shed_total) disagree with overloaded \
responses ($overloaded)"; exit 1; }
echo "graduated shedding consistent: $overloaded overloaded responses \
(hard $1, normal $2, low $3, expired $4)"

echo "== counting sanitizer shard (TENET_COUNT_VERIFY=1) =="
# One oracle-test shard re-runs with every symbolic count cross-checked
# against enumeration; any disagreement raises Count.Verify_mismatch.
TENET_COUNT_VERIFY=1 dune exec test/test_count_oracle.exe >/dev/null

echo "== capacity sanitizer shard (TENET_CHECK_VERIFY=1) =="
# The capacity checker's peak enumeration is cross-checked against the
# cycle-level simulator's observed peaks on the full zoo sweep; the two
# implement the same attribution from independent code paths.
TENET_CHECK_VERIFY=1 dune exec test/test_check_verify.exe >/dev/null

echo "== release build =="
dune build --profile release

echo "== bench smoke (serve_mp+fig6+fig8+dse+serve+table3, release, vs BENCH_seed.json) =="
bench_dir="$tmp_root/bench"
mkdir -p "$bench_dir"
# serve_mp must come first on the command line: it forks server
# processes, and the OCaml runtime cannot fork once any later section
# has spawned pool domains.
TENET_BENCH_TIMINGS="$bench_dir" \
  dune exec --profile release bench/main.exe -- \
    serve_mp fig6 fig8 dse serve table3 \
  >/dev/null
# Points-only: the enumerated-point counters are deterministic, so this
# cannot flake on a loaded runner the way wall-clock comparison would.
# The dse ceiling is the mapper's speedup guarantee: the pruned search
# must stay at least ~3x under the exhaustive seed measurement.  Its
# actual margin is >10x, so the gate has ample headroom.  The table3
# ceiling encodes the parametric path: the section (validity tables
# plus a template compile + O(1) re-instantiation) must stay at least
# 10x under the seed's analyze-everything measurement.
scripts/bench_compare.sh --points-only --sections fig6,fig8,dse,table3 \
  --ceiling dse=0.35 --ceiling table3=0.1 \
  "$bench_dir/summary.json" BENCH_seed.json

echo "== parametric template re-instantiation (table3, zero points) =="
# The table3 section compiles the GEMM workload into a metric template
# and re-instantiates it at a size never analyzed before; the second
# size must be answered by pure substitution — zero enumerated points.
awk '
  /"section": *"table3"/ { in_t3 = 1 }
  in_t3 && /"table3_reinstantiation_points"/ { found = 1; pts = $2 + 0 }
  END {
    if (!found) { print "table3_reinstantiation_points missing"; exit 1 }
    if (pts != 0) {
      printf "template re-instantiation enumerated %d points (want 0)\n", pts
      exit 1
    }
    print "table3 re-instantiation: 0 points enumerated (pure substitution)"
  }' "$bench_dir/summary.json"

echo "== dse size-sweep template reuse =="
# The dse section re-scores the top candidates at two more problem
# sizes through per-candidate metric templates; at least one
# candidate-size score must come from template instantiation.
awk '
  /"section": *"dse"/ { in_dse = 1 }
  in_dse && /"dse_template_reuse"/ { found = 1; reuse = $2 + 0 }
  END {
    if (!found) { print "dse_template_reuse missing"; exit 1 }
    if (reuse < 1) { print "dse size sweep reused no templates"; exit 1 }
    printf "dse size sweep: %d scores via template instantiation\n", reuse
  }' "$bench_dir/summary.json"

echo "== dse mapper pruning (deterministic, from summary extras) =="
# The pruned search's work accounting is deterministic: candidate
# generation is fixed, so the evaluated/generated ratio and the tier
# partition must hold exactly on any machine.
awk '
  /"section": *"dse"/ { in_dse = 1 }
  in_dse && /"dse_generated"/   { gen  = $2 + 0 }
  in_dse && /"dse_evaluated"/   { eval = $2 + 0 }
  in_dse && /"dse_pruned_precheck"/  { pc  = $2 + 0 }
  in_dse && /"dse_pruned_symmetry"/  { sym = $2 + 0 }
  in_dse && /"dse_pruned_capacity"/  { cap = $2 + 0 }
  in_dse && /"dse_pruned_dominated"/ { dom = $2 + 0 }
  in_dse && /"dse_cap_generated"/        { cgen  = $2 + 0 }
  in_dse && /"dse_cap_pruned_capacity"/  { ccap  = $2 + 0 }
  in_dse && /"dse_cap_evaluated"/        { ceval = $2 + 0 }
  END {
    if (gen == 0) { print "dse summary extras missing"; exit 1 }
    if (pc + sym + cap + dom + eval != gen) {
      printf "dse prune partition broken: %d+%d+%d+%d+%d != %d\n", \
        pc, sym, cap, dom, eval, gen
      exit 1
    }
    if (eval * 4 > gen) {
      printf "dse evaluated %d of %d candidates (> 25%%)\n", eval, gen
      exit 1
    }
    if (cgen == 0) { print "dse capacity-run extras missing"; exit 1 }
    if (ccap < 1) {
      print "capacity tier pruned nothing on the tight-scratchpad run"
      exit 1
    }
    if (ccap + ceval > cgen) {
      printf "dse capacity run overcounts: %d+%d > %d\n", ccap, ceval, cgen
      exit 1
    }
    printf "dse mapper: %d/%d evaluated (precheck %d, symmetry %d, \
capacity %d, dominated %d); capacity run: %d/%d pruned\n", \
      eval, gen, pc, sym, cap, dom, ccap, cgen
  }' "$bench_dir/summary.json"

echo "== serve cache speedup (warm vs cold batch) =="
# The serve section replays a duplicate-heavy batch cold and warm; the
# warm pass must be at least 3x faster through the result cache.  The
# margin is enormous in practice (warm requests are pure cache lookups),
# so the 3x floor does not flake on a loaded runner.
awk -F': *' '/"serve_speedup"/ { s = $2 + 0 }
  END { if (s >= 3) { printf "serve speedup %.1fx (>= 3x)\n", s; exit 0 }
        printf "serve speedup %.1fx is below the 3x floor\n", s; exit 1 }' \
  "$bench_dir/summary.json"

echo "== scale-out serving throughput (serve_mp load generator) =="
# The serve_mp section drove the real socket server with a synthetic
# load generator, single-process then pre-forked fleet.  The extras
# must be present and sane everywhere; the >= 2x multi-worker speedup
# is gated only on machines with >= 4 cores (a fleet cannot beat one
# process on a single-core container).
awk -F': *' '
  /"serve_mp_cores"/ { cores = $2 + 0; seen++ }
  /"serve_mp_workers"/ { workers = $2 + 0; seen++ }
  /"serve_mp_throughput_rps"/ { rps = $2 + 0; seen++ }
  /"serve_mp_p99_ms"/ { p99 = $2 + 0; seen++ }
  /"serve_mp_speedup"/ { sp = $2 + 0; seen++ }
  END {
    if (seen < 5) { print "serve_mp extras missing from summary"; exit 1 }
    if (rps <= 0 || p99 <= 0) {
      printf "serve_mp degenerate: %.0f req/s, p99 %.3f ms\n", rps, p99
      exit 1
    }
    if (cores >= 4 && sp < 2) {
      printf "serve_mp speedup %.2fx with %d workers on %d cores \
(want >= 2x)\n", sp, workers, cores
      exit 1
    }
    printf "serve_mp: %.0f req/s, p99 %.1f ms, %.2fx with %d workers \
on %d cores%s\n", rps, p99, sp, workers, cores, \
      (cores >= 4 ? "" : " (speedup gate skipped: < 4 cores)")
  }' "$bench_dir/summary.json"

echo "CI OK"
