#!/bin/sh
# Tier-1 verification: format check (when ocamlformat is available),
# full build, full test suite.  Run from the repository root.
set -eu

cd "$(dirname "$0")/.."

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune fmt =="
  dune build @fmt
else
  echo "== dune fmt == (skipped: ocamlformat not installed)"
fi

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== release build =="
dune build --profile release

echo "== bench smoke (fig8, release) =="
dune exec --profile release bench/main.exe -- fig8 >/dev/null

echo "CI OK"
