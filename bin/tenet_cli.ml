(* The TENET command-line tool (the automatic flow of Figure 2):

     tenet analyze --kernel gemm --sizes 64,64,64 --arch tpu-8x8-systolic \
                   --space "i%8,j%8" --time "i/8,j/8,i%8+j%8+k"
     tenet analyze --c-file kernel.c --arch mesh-8x8 --space ... --time ...
     tenet dse --kernel conv --sizes 16,16,14,14,3,3 --arch tpu-8x8-systolic
     tenet archs
     tenet simulate --kernel gemm --sizes 32,32,32 --arch tpu-8x8-systolic \
                   --space "i%8,j%8" --time "i/8,j/8,i%8+j%8+k"

   Observability (see docs/observability.md): every analysis command takes
   --trace FILE (Chrome-trace JSON of the internal spans), --stats FILE
   (flat counters/span-aggregate JSON) and --json (machine-readable result
   on stdout instead of the human tables). *)

module T = Tenet
module Ir = Tenet.Ir
module Arch = Tenet.Arch
module Df = Tenet.Dataflow
module M = Tenet.Model
module Dse = Tenet.Dse.Dse
module Obs = Tenet.Obs
module Json = Tenet.Obs.Json
module An = Tenet.Analysis
open Cmdliner

let parse_sizes s =
  let fail msg =
    failwith
      (Printf.sprintf
         "bad --sizes %S: %s (expected a comma-separated list of positive \
          integers, e.g. 64,64,64)"
         s msg)
  in
  if String.trim s = "" then fail "empty list";
  List.map
    (fun tok ->
      let tok = String.trim tok in
      match int_of_string_opt tok with
      | None ->
          fail
            (if tok = "" then "empty entry"
             else Printf.sprintf "%S is not an integer" tok)
      | Some n when n <= 0 ->
          fail (Printf.sprintf "extent %d is not positive" n)
      | Some n -> n)
    (String.split_on_char ',' s)

let known_kernels = [ "gemm"; "conv"; "conv1d"; "mttkrp"; "mmc"; "jacobi2d" ]

let kernel_of ~kernel ~sizes =
  if not (List.mem kernel known_kernels) then
    failwith (T.Util.Text.unknown ~what:"kernel" kernel known_kernels);
  match (kernel, parse_sizes sizes) with
  | "gemm", [ ni; nj; nk ] -> Ir.Kernels.gemm ~ni ~nj ~nk
  | "conv", [ nk; nc; nox; noy; nrx; nry ] ->
      Ir.Kernels.conv2d ~nk ~nc ~nox ~noy ~nrx ~nry
  | "conv1d", [ no; nr ] -> Ir.Kernels.conv1d ~no ~nr
  | "mttkrp", [ ni; nj; nk; nl ] -> Ir.Kernels.mttkrp ~ni ~nj ~nk ~nl
  | "mmc", [ ni; nj; nk; nl ] -> Ir.Kernels.mmc ~ni ~nj ~nk ~nl
  | "jacobi2d", [ n ] -> Ir.Kernels.jacobi2d ~n
  | k, sz ->
      failwith
        (Printf.sprintf
           "kernel %s got %d sizes (expected: gemm i,j,k | conv \
            k,c,ox,oy,rx,ry | conv1d o,r | mttkrp i,j,k,l | mmc i,j,k,l | \
            jacobi2d n)"
           k (List.length sz))

let op_of ~kernel ~sizes ~c_file =
  match c_file with
  | Some path ->
      let ic = open_in path in
      let n = in_channel_length ic in
      let src = really_input_string ic n in
      close_in ic;
      Ir.Cfront.parse src
  | None -> kernel_of ~kernel ~sizes

let arch_of name ~bandwidth =
  let spec = Arch.Repository.find name in
  match bandwidth with
  | Some bw -> Arch.Spec.with_bandwidth bw spec
  | None -> spec

let dataflow_of ?(dataflow = None) op ~space ~time =
  match dataflow with
  | Some name -> Df.Zoo.find name
  | None ->
      let dims = Ir.Tensor_op.iter_names op in
      Df.Dataflow.make ~name:"(cli)"
        ~space:(T.Isl.Parser.exprs ~dims space)
        ~time:(T.Isl.Parser.exprs ~dims time)

(* --- telemetry plumbing --- *)

(* Telemetry is armed whenever any output that needs it was requested;
   the trace/stats files are written even if the command fails partway,
   so a crash still leaves the spans collected so far on disk. *)
let with_telemetry ~trace ~stats ~span f =
  if trace <> None || stats <> None then Obs.enable ();
  Fun.protect
    ~finally:(fun () ->
      if Obs.enabled () then begin
        Option.iter Obs.write_trace trace;
        Option.iter Obs.write_stats stats
      end)
    (fun () -> Obs.with_span span f)

(* Counters appended to --json output when telemetry is armed. *)
let telemetry_fields () =
  if Obs.enabled () then [ ("telemetry", Obs.stats ()) ] else []

let dataflow_json (df : Df.Dataflow.t) : Json.t =
  Json.Obj
    [
      ("name", Json.String df.Df.Dataflow.name);
      ( "space",
        Json.List
          (List.map
             (fun e -> Json.String (T.Isl.Aff.to_string e))
             df.Df.Dataflow.space) );
      ( "time",
        Json.List
          (List.map
             (fun e -> Json.String (T.Isl.Aff.to_string e))
             df.Df.Dataflow.time) );
    ]

let print_json fields =
  print_endline (Json.to_string ~pretty:true (Json.Obj fields))

(* --- flags --- *)

let kernel_t =
  Arg.(value & opt string "gemm" & info [ "kernel" ] ~docv:"NAME"
         ~doc:"Kernel: gemm, conv, conv1d, mttkrp, mmc, jacobi2d.")

let sizes_t =
  Arg.(value & opt string "64,64,64" & info [ "sizes" ] ~docv:"N,N,..."
         ~doc:"Comma-separated loop extents for the kernel.")

let c_file_t =
  Arg.(value & opt (some string) None & info [ "c-file" ] ~docv:"FILE"
         ~doc:"Parse the tensor operation from a C loop nest instead.")

let arch_t =
  Arg.(value & opt string "tpu-8x8-systolic" & info [ "arch" ] ~docv:"NAME"
         ~doc:"Architecture from the repository (see the archs command).")

let bandwidth_t =
  Arg.(value & opt (some int) None & info [ "bandwidth" ] ~docv:"W"
         ~doc:"Override scratchpad bandwidth (words/cycle).")

let space_t =
  Arg.(value & opt string "i%8,j%8" & info [ "space" ] ~docv:"EXPRS"
         ~doc:"Space-stamp coordinates, e.g. 'i%8,j%8'.")

let time_t =
  Arg.(value & opt string "i/8,j/8,i%8+j%8+k" & info [ "time" ] ~docv:"EXPRS"
         ~doc:"Time-stamp coordinates, e.g. 'i/8,j/8,i%8+j%8+k'.")

let dataflow_t =
  Arg.(value & opt (some string) None & info [ "dataflow" ] ~docv:"NAME"
         ~doc:"Take the dataflow from the Table III zoo by name (e.g. \
               'gemm/(IJ-P | J,IJK-T)', or an unambiguous bare name) \
               instead of --space/--time.")

let strict_t =
  Arg.(value & flag & info [ "strict" ]
         ~doc:"Run the static model checker first and fail on any error \
               diagnostic (see the check command).")

let window_t =
  Arg.(value & opt int 1 & info [ "window" ] ~docv:"W"
         ~doc:"Per-PE register window (stamps of temporal reuse history).")

let lex_t =
  Arg.(value & flag & info [ "lex" ]
         ~doc:"Use lexicographic (wrap-aware) time adjacency.")

let scaled_t =
  Arg.(value & opt (some string) None & info [ "scale-dims" ] ~docv:"D,D"
         ~doc:"Extrapolate these sequential dims (for huge layers).")

let trace_t =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Write a Chrome-trace JSON (chrome://tracing, Perfetto) of \
               the internal spans to $(docv).")

let stats_t =
  Arg.(value & opt (some string) None & info [ "stats" ] ~docv:"FILE"
         ~doc:"Write flat telemetry stats (counters, span aggregates) as \
               JSON to $(docv).")

let json_t =
  Arg.(value & flag & info [ "json" ]
         ~doc:"Print one machine-readable JSON object on stdout instead of \
               the human-readable report.")

let jobs_t =
  (* strict: reject 0, negatives and garbage with a named error instead of
     silently falling back to sequential *)
  let jobs_conv =
    Arg.conv'
      ( (fun s ->
          match T.Util.Parallel.parse_jobs ~what:"--jobs" s with
          | n -> Ok n
          | exception Failure msg -> Error msg),
        Format.pp_print_int )
  in
  Arg.(value & opt (some jobs_conv) None & info [ "jobs" ] ~docv:"N"
         ~doc:"Run on $(docv) parallel domains (DSE candidate evaluation \
               and union counting).  Defaults to \\$TENET_JOBS, or 1 \
               (sequential).  Results are identical at any job count.")

let apply_jobs = function
  | Some n -> T.Util.Parallel.set_jobs n
  | None ->
      (* force TENET_JOBS resolution now: a malformed value should fail
         the command up front, not at the first parallel region *)
      ignore (T.Util.Parallel.jobs ())

(* --- commands --- *)

let wrap f = try `Ok (f ()) with
  | Failure msg | Invalid_argument msg -> `Error (false, msg)
  | M.Concrete.Invalid_dataflow msg -> `Error (false, "invalid dataflow: " ^ msg)
  | T.Isl.Parser.Parse_error msg -> `Error (false, "parse error: " ^ msg)
  | Ir.Cfront.Syntax_error msg -> `Error (false, "C syntax error: " ^ msg)
  | Sys_error msg -> `Error (false, msg)
  (* TENET_COUNT_VERIFY=1: the counting sanitizer caught the symbolic
     fast path disagreeing with enumeration *)
  | T.Isl.Count.Verify_mismatch _ as e ->
      `Error
        ( false,
          An.Diagnostic.to_string
            (Option.get (An.Checker.diagnostic_of_exn e)) )
  (* a telemetry file that fails to write surfaces from Fun.protect's
     cleanup as Finally_raised *)
  | Fun.Finally_raised (Sys_error msg) -> `Error (false, msg)

let analyze_cmd =
  let run kernel sizes c_file arch bandwidth space time dataflow strict window
      lex scale_dims jobs trace stats json =
    wrap (fun () ->
        apply_jobs jobs;
        with_telemetry ~trace ~stats ~span:"cli.analyze" (fun () ->
            let op = op_of ~kernel ~sizes ~c_file in
            let spec = arch_of arch ~bandwidth in
            let df = dataflow_of ~dataflow op ~space ~time in
            let adjacency = if lex then `Lex_step else `Inner_step in
            (if strict then
               match
                 An.Diagnostic.errors (An.Checker.check ~adjacency spec op df)
               with
               | [] -> ()
               | errs ->
                   failwith
                     ("the model checker rejected the dataflow:\n"
                     ^ String.concat "\n"
                         (List.map An.Diagnostic.to_string errs)));
            let m =
              match scale_dims with
              | Some dims ->
                  M.Scaled.analyze ~adjacency spec op df
                    ~scale_dims:(String.split_on_char ',' dims)
              | None -> M.Concrete.analyze ~adjacency ~window spec op df
            in
            if json then
              print_json
                ([
                   ("command", Json.String "analyze");
                   ("kernel", Json.String kernel);
                   ("arch", Json.String arch);
                   ("dataflow", dataflow_json df);
                   ("metrics", M.Metrics.to_json m);
                 ]
                @ telemetry_fields ())
            else print_string (T.report m)))
  in
  Cmd.v (Cmd.info "analyze" ~doc:"Analyze one dataflow (Figure 2 flow).")
    Term.(
      ret
        (const run $ kernel_t $ sizes_t $ c_file_t $ arch_t $ bandwidth_t
       $ space_t $ time_t $ dataflow_t $ strict_t $ window_t $ lex_t
       $ scaled_t $ jobs_t $ trace_t $ stats_t $ json_t))

let simulate_cmd =
  let run kernel sizes c_file arch bandwidth space time jobs trace stats json =
    wrap (fun () ->
        apply_jobs jobs;
        with_telemetry ~trace ~stats ~span:"cli.simulate" (fun () ->
            let op = op_of ~kernel ~sizes ~c_file in
            let spec = arch_of arch ~bandwidth in
            let df = dataflow_of op ~space ~time in
            let r = T.Sim.Simulator.run spec op df in
            if json then
              print_json
                ([
                   ("command", Json.String "simulate");
                   ("kernel", Json.String kernel);
                   ("arch", Json.String arch);
                   ("dataflow", dataflow_json df);
                   ("result", T.Sim.Simulator.to_json r);
                 ]
                @ telemetry_fields ())
            else print_endline (T.Sim.Simulator.to_string r)))
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run the cycle-level simulator on a dataflow.")
    Term.(
      ret
        (const run $ kernel_t $ sizes_t $ c_file_t $ arch_t $ bandwidth_t
       $ space_t $ time_t $ jobs_t $ trace_t $ stats_t $ json_t))

let dse_cmd =
  let run kernel sizes c_file arch bandwidth strict top jobs trace stats json =
    wrap (fun () ->
        apply_jobs jobs;
        with_telemetry ~trace ~stats ~span:"cli.dse" (fun () ->
            let op = op_of ~kernel ~sizes ~c_file in
            let spec = arch_of arch ~bandwidth in
            let p =
              let dims = Arch.Pe_array.dims spec.Arch.Spec.pe in
              dims.(0)
            in
            let cands =
              if Arch.Pe_array.rank spec.Arch.Spec.pe = 2 then
                Dse.candidates_2d op ~p
              else Dse.candidates_1d op ~p
            in
            (* under --strict, candidates failing the checker's cheap
               battery are pruned before scoring (each pruned candidate
               bumps dse.candidates_pruned and its analysis.TNxxx
               counters) *)
            let n_pruned = ref 0 in
            let prefilter =
              if strict then
                Some
                  (fun df ->
                    let ok =
                      An.Diagnostic.errors (An.Checker.precheck spec op df)
                      = []
                    in
                    if not ok then incr n_pruned;
                    ok)
              else None
            in
            let outcomes =
              Dse.evaluate_all ?prefilter ~objective:Dse.Latency spec op cands
            in
            if json then begin
              let outcome_json (o : Dse.outcome) =
                Json.Obj
                  [
                    ("dataflow", dataflow_json o.Dse.dataflow);
                    ("expressible", Json.Bool o.Dse.expressible);
                    ("metrics", M.Metrics.to_json o.Dse.metrics);
                  ]
              in
              let rec take n = function
                | x :: r when n > 0 -> x :: take (n - 1) r
                | _ -> []
              in
              print_json
                ([
                   ("command", Json.String "dse");
                   ("kernel", Json.String kernel);
                   ("arch", Json.String arch);
                   ("objective", Json.String "latency");
                   ("candidates", Json.Int (List.length cands));
                   ("pruned", Json.Int !n_pruned);
                   ("valid", Json.Int (List.length outcomes));
                   ( "best",
                     match outcomes with
                     | o :: _ -> outcome_json o
                     | [] -> Json.Null );
                   ("top", Json.List (List.map outcome_json (take top outcomes)));
                 ]
                @ telemetry_fields ())
            end
            else begin
              if strict then
                Printf.printf
                  "%d candidates, %d pruned by --strict, %d valid; top %d \
                   by latency:\n"
                  (List.length cands) !n_pruned (List.length outcomes) top
              else
                Printf.printf "%d candidates, %d valid; top %d by latency:\n"
                  (List.length cands) (List.length outcomes) top;
              List.iteri
                (fun i o ->
                  if i < top then
                    Printf.printf
                      "%2d. %-34s lat=%10.0f util=%4.2f sbw=%7.2f [%s]\n"
                      (i + 1) o.Dse.dataflow.Df.Dataflow.name
                      o.Dse.metrics.M.Metrics.latency
                      o.Dse.metrics.M.Metrics.avg_utilization
                      o.Dse.metrics.M.Metrics.sbw
                      (if o.Dse.expressible then "data-centric"
                       else "TENET-only"))
                outcomes
            end))
  in
  let top_t =
    Arg.(value & opt int 10 & info [ "top" ] ~docv:"N"
           ~doc:"How many best dataflows to print.")
  in
  Cmd.v (Cmd.info "dse" ~doc:"Explore the dataflow design space.")
    Term.(
      ret
        (const run $ kernel_t $ sizes_t $ c_file_t $ arch_t $ bandwidth_t
       $ strict_t $ top_t $ jobs_t $ trace_t $ stats_t $ json_t))

let check_cmd =
  let diag_lines prefix ds =
    List.iter
      (fun d ->
        String.split_on_char '\n' (An.Diagnostic.to_string d)
        |> List.iter (fun line -> Printf.printf "%s%s\n" prefix line))
      ds
  in
  let run kernel sizes c_file arch bandwidth space time dataflow all lex jobs
      trace stats json =
    wrap (fun () ->
        apply_jobs jobs;
        let adjacency = if lex then `Lex_step else `Inner_step in
        let had_errors =
          with_telemetry ~trace ~stats ~span:"cli.check" (fun () ->
              if all then begin
                let results =
                  An.Checker.check_subjects ~adjacency
                    (An.Checker.zoo_subjects ())
                in
                let failing =
                  List.filter
                    (fun (_, ds) -> An.Diagnostic.errors ds <> [])
                    results
                in
                if json then
                  print_json
                    ([
                       ("command", Json.String "check");
                       ("subjects", Json.Int (List.length results));
                       ("failing", Json.Int (List.length failing));
                       ( "results",
                         Json.List
                           (List.map
                              (fun ((s : An.Checker.subject), ds) ->
                                Json.Obj
                                  [
                                    ("arch", Json.String s.An.Checker.s_arch);
                                    ( "kernel",
                                      Json.String s.An.Checker.s_kernel );
                                    ( "dataflow",
                                      Json.String
                                        s.An.Checker.s_df.Df.Dataflow.name );
                                    ( "diagnostics",
                                      Json.List
                                        (List.map An.Diagnostic.to_json ds)
                                    );
                                  ])
                              results) );
                     ]
                    @ telemetry_fields ())
                else begin
                  List.iter
                    (fun ((s : An.Checker.subject), ds) ->
                      let label =
                        Printf.sprintf "%-18s %-8s %s" s.An.Checker.s_arch
                          s.An.Checker.s_kernel
                          s.An.Checker.s_df.Df.Dataflow.name
                      in
                      if ds = [] then Printf.printf "ok    %s\n" label
                      else begin
                        Printf.printf "%-5s %s\n"
                          (if An.Diagnostic.errors ds <> [] then "FAIL"
                           else "warn")
                          label;
                        diag_lines "      " ds
                      end)
                    results;
                  Printf.printf "%d subjects checked, %d failing\n"
                    (List.length results) (List.length failing)
                end;
                failing <> []
              end
              else begin
                let op = op_of ~kernel ~sizes ~c_file in
                let spec = arch_of arch ~bandwidth in
                let df = dataflow_of ~dataflow op ~space ~time in
                let ds = An.Checker.check ~adjacency spec op df in
                let errs = An.Diagnostic.errors ds in
                if json then
                  print_json
                    ([
                       ("command", Json.String "check");
                       ("kernel", Json.String kernel);
                       ("arch", Json.String arch);
                       ("dataflow", dataflow_json df);
                       ("errors", Json.Int (List.length errs));
                       ( "diagnostics",
                         Json.List (List.map An.Diagnostic.to_json ds) );
                     ]
                    @ telemetry_fields ())
                else if ds = [] then
                  print_endline "ok: all checks passed"
                else diag_lines "" ds;
                errs <> []
              end)
        in
        if had_errors then exit 1)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Statically check a (kernel, dataflow, architecture) triple: Θ \
          validity, causality, interconnect well-formedness, reuse \
          feasibility.  With --all, sweep the whole Table III zoo across \
          the architecture repository.  Exits nonzero if any error \
          diagnostic is found.")
    Term.(
      ret
        (const run $ kernel_t $ sizes_t $ c_file_t $ arch_t $ bandwidth_t
       $ space_t $ time_t $ dataflow_t
       $ Arg.(
           value & flag
           & info [ "all" ]
               ~doc:"Check every zoo dataflow on every matching-rank \
                     repository architecture.")
       $ lex_t $ jobs_t $ trace_t $ stats_t $ json_t))

let archs_cmd =
  let run () =
    `Ok
      (List.iter
         (fun (name, spec) ->
           Printf.printf "%-20s %s\n" name (Arch.Spec.to_string spec))
         Arch.Repository.all)
  in
  Cmd.v (Cmd.info "archs" ~doc:"List the architecture repository.")
    Term.(ret (const run $ const ()))

let zoo_cmd =
  let run kernel =
    wrap (fun () ->
        let dfs =
          match kernel with
          | "gemm" -> Df.Zoo.gemm_all ()
          | "conv" -> Df.Zoo.conv_all ()
          | "mttkrp" -> Df.Zoo.mttkrp_all ()
          | "jacobi2d" -> Df.Zoo.jacobi_all ()
          | "mmc" -> Df.Zoo.mmc_all ()
          | k ->
              failwith
                (T.Util.Text.unknown ~what:"kernel" k
                   [ "gemm"; "conv"; "mttkrp"; "jacobi2d"; "mmc" ])
        in
        List.iter (fun df -> print_endline (Df.Dataflow.to_string df)) dfs)
  in
  Cmd.v
    (Cmd.info "zoo" ~doc:"Print the Table III dataflows for a kernel.")
    Term.(ret (const run $ kernel_t))

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default
          (Cmd.info "tenet" ~version:"1.0.0"
             ~doc:
               "Relation-centric modeling of tensor dataflows on spatial \
                architectures (TENET, ISCA 2021).")
          [ analyze_cmd; simulate_cmd; dse_cmd; check_cmd; archs_cmd; zoo_cmd ]))
