(* The TENET command-line tool (the automatic flow of Figure 2):

     tenet analyze --kernel gemm --sizes 64,64,64 --arch tpu-8x8-systolic \
                   --space "i%8,j%8" --time "i/8,j/8,i%8+j%8+k"
     tenet analyze --c-file kernel.c --arch mesh-8x8 --space ... --time ...
     tenet dse --kernel conv --sizes 16,16,14,14,3,3 --arch tpu-8x8-systolic
     tenet archs
     tenet simulate --kernel gemm --sizes 32,32,32 --arch tpu-8x8-systolic \
                   --space "i%8,j%8" --time "i/8,j/8,i%8+j%8+k"
     tenet batch requests.jsonl --jobs 4
     tenet serve --queue 64

   analyze / volumes / dse / check are thin shells over the versioned
   request API (Tenet.Serve.Api.run) that `tenet batch` and `tenet
   serve` also speak — the flags here build an Api.Request.t, and
   `--json` prints the same response object the service would send
   (docs/serving.md).  Client mistakes (bad expressions, unknown names,
   unsupported api_version) exit 2; an overloaded service response maps
   to 3; internal faults to 1.

   Observability (see docs/observability.md): every analysis command takes
   --trace FILE (Chrome-trace JSON of the internal spans), --stats FILE
   (flat counters/span-aggregate JSON) and --json (machine-readable result
   on stdout instead of the human tables). *)

module T = Tenet
module Ir = Tenet.Ir
module Arch = Tenet.Arch
module Df = Tenet.Dataflow
module M = Tenet.Model
module Obs = Tenet.Obs
module Json = Tenet.Obs.Json
module An = Tenet.Analysis
module Api = Tenet.Serve.Api
module Server = Tenet.Serve.Server
module Access_log = Tenet.Serve.Access_log
open Cmdliner

let parse_sizes s =
  let fail msg =
    failwith
      (Printf.sprintf
         "bad --sizes %S: %s (expected a comma-separated list of positive \
          integers, e.g. 64,64,64)"
         s msg)
  in
  if String.trim s = "" then fail "empty list";
  List.map
    (fun tok ->
      let tok = String.trim tok in
      match int_of_string_opt tok with
      | None ->
          fail
            (if tok = "" then "empty entry"
             else Printf.sprintf "%S is not an integer" tok)
      | Some n when n <= 0 ->
          fail (Printf.sprintf "extent %d is not positive" n)
      | Some n -> n)
    (String.split_on_char ',' s)

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  src

(* Build the shared request fields from the shared flags. *)
let request_of ~cmd ~kernel ~sizes ~c_file ~arch ~bandwidth ~space ~time
    ~dataflow ~strict ~window ~lex ~scale_dims ~deadline : Api.Request.t =
  let d = Api.Request.default cmd in
  {
    d with
    Api.Request.kernel;
    sizes = parse_sizes sizes;
    c_source = Option.map read_file c_file;
    arch;
    bandwidth;
    space;
    time;
    dataflow;
    strict;
    window;
    adjacency = (if lex then `Lex_step else `Inner_step);
    scale_dims =
      (match scale_dims with
      | Some dims -> String.split_on_char ',' dims
      | None -> []);
    deadline_ms = deadline;
  }

(* --- telemetry plumbing --- *)

(* Telemetry is armed whenever any output that needs it was requested;
   the trace/stats files are written even if the command fails partway,
   so a crash still leaves the spans collected so far on disk. *)
let with_telemetry ~trace ~stats ~span f =
  if trace <> None || stats <> None then Obs.enable ();
  Fun.protect
    ~finally:(fun () ->
      if Obs.enabled () then begin
        Option.iter Obs.write_trace trace;
        Option.iter Obs.write_stats stats
      end)
    (fun () -> Obs.with_span span f)

(* Counters appended to --json output when telemetry is armed. *)
let telemetry_fields () =
  if Obs.enabled () then [ ("telemetry", Obs.stats ()) ] else []

let print_json fields =
  print_endline (Json.to_string ~pretty:true (Json.Obj fields))

let response_fields (resp : Api.Response.t) =
  match Api.Response.to_json resp with
  | Json.Obj fields -> fields
  | j -> [ ("response", j) ]

(* Render an Api response the CLI way: JSON mode prints the response
   object the service would send (plus telemetry when armed); human mode
   hands the body to the command's renderer.  Error responses exit with
   the kind's distinct code (bad request 2, overloaded 3, internal 1 —
   docs/serving.md).  Called outside with_telemetry so the trace/stats
   files are flushed before any exit. *)
let finish_response ~json ~human (resp : Api.Response.t) =
  let b = resp.Api.Response.body in
  (if json then print_json (response_fields resp @ telemetry_fields ())
   else
     match b.Api.Response.error with
     | Some (_, msg) ->
         List.iter
           (fun d -> prerr_endline (An.Diagnostic.to_string d))
           b.Api.Response.diagnostics;
         prerr_endline ("tenet: " ^ msg)
     | None -> human b);
  match b.Api.Response.error with
  | Some (kind, _) -> exit (Api.Response.error_exit_code kind)
  | None -> ()

(* --- flags --- *)

let kernel_t =
  Arg.(value & opt string "gemm" & info [ "kernel" ] ~docv:"NAME"
         ~doc:"Kernel: gemm, conv, conv1d, mttkrp, mmc, jacobi2d.")

let sizes_t =
  Arg.(value & opt string "64,64,64" & info [ "sizes" ] ~docv:"N,N,..."
         ~doc:"Comma-separated loop extents for the kernel.")

let c_file_t =
  Arg.(value & opt (some string) None & info [ "c-file" ] ~docv:"FILE"
         ~doc:"Parse the tensor operation from a C loop nest instead.")

let arch_t =
  Arg.(value & opt string "tpu-8x8-systolic" & info [ "arch" ] ~docv:"NAME"
         ~doc:"Architecture from the repository (see the archs command).")

let bandwidth_t =
  Arg.(value & opt (some int) None & info [ "bandwidth" ] ~docv:"W"
         ~doc:"Override scratchpad bandwidth (words/cycle).")

let space_t =
  Arg.(value & opt string "i%8,j%8" & info [ "space" ] ~docv:"EXPRS"
         ~doc:"Space-stamp coordinates, e.g. 'i%8,j%8'.")

let time_t =
  Arg.(value & opt string "i/8,j/8,i%8+j%8+k" & info [ "time" ] ~docv:"EXPRS"
         ~doc:"Time-stamp coordinates, e.g. 'i/8,j/8,i%8+j%8+k'.")

let dataflow_t =
  Arg.(value & opt (some string) None & info [ "dataflow" ] ~docv:"NAME"
         ~doc:"Take the dataflow from the Table III zoo by name (e.g. \
               'gemm/(IJ-P | J,IJK-T)', or an unambiguous bare name) \
               instead of --space/--time.")

let strict_t =
  Arg.(value & flag & info [ "strict" ]
         ~doc:"Run the static model checker first and fail on any error \
               diagnostic (see the check command).")

let window_t =
  Arg.(value & opt int 1 & info [ "window" ] ~docv:"W"
         ~doc:"Per-PE register window (stamps of temporal reuse history).")

let lex_t =
  Arg.(value & flag & info [ "lex" ]
         ~doc:"Use lexicographic (wrap-aware) time adjacency.")

let scaled_t =
  Arg.(value & opt (some string) None & info [ "scale-dims" ] ~docv:"D,D"
         ~doc:"Extrapolate these sequential dims (for huge layers).")

let params_t =
  Arg.(value & opt (some string) None & info [ "params" ] ~docv:"D,D"
         ~doc:"Keep these iterator dims as free size parameters: compile \
               the dataflow once into a reusable metric template, answer \
               the requested sizes by O(1) substitution, and print each \
               metric's closed form in the parameters alongside the \
               instantiated numbers (docs/performance.md).")

let deadline_t =
  Arg.(value & opt (some int) None & info [ "deadline-ms" ] ~docv:"MS"
         ~doc:"Processing budget: pipeline stages past the expiry are \
               skipped and the response is marked partial with a TN013 \
               diagnostic (see docs/serving.md).")

let trace_t =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Write a Chrome-trace JSON (chrome://tracing, Perfetto) of \
               the internal spans to $(docv).")

let stats_t =
  Arg.(value & opt (some string) None & info [ "stats" ] ~docv:"FILE"
         ~doc:"Write flat telemetry stats (counters, span aggregates) as \
               JSON to $(docv).")

let json_t =
  Arg.(value & flag & info [ "json" ]
         ~doc:"Print one machine-readable JSON object on stdout instead of \
               the human-readable report (the same response object the \
               serve protocol sends; see docs/serving.md).")

let jobs_t =
  (* strict: reject 0, negatives and garbage with a named error instead of
     silently falling back to sequential *)
  let jobs_conv =
    Arg.conv'
      ( (fun s ->
          match T.Util.Parallel.parse_jobs ~what:"--jobs" s with
          | n -> Ok n
          | exception Failure msg -> Error msg),
        Format.pp_print_int )
  in
  Arg.(value & opt (some jobs_conv) None & info [ "jobs" ] ~docv:"N"
         ~doc:"Run on $(docv) parallel domains (DSE candidate evaluation \
               and union counting).  Defaults to \\$TENET_JOBS, or 1 \
               (sequential).  Results are identical at any job count.")

let apply_jobs = function
  | Some n -> T.Util.Parallel.set_jobs n
  | None ->
      (* force TENET_JOBS resolution now: a malformed value should fail
         the command up front, not at the first parallel region *)
      ignore (T.Util.Parallel.jobs ())

(* --- commands --- *)

let wrap f = try `Ok (f ()) with
  | Failure msg | Invalid_argument msg | Api.Bad msg -> `Error (false, msg)
  | M.Concrete.Invalid_dataflow msg -> `Error (false, "invalid dataflow: " ^ msg)
  | T.Isl.Parser.Parse_error msg -> `Error (false, "parse error: " ^ msg)
  | Ir.Cfront.Syntax_error msg -> `Error (false, "C syntax error: " ^ msg)
  | Sys_error msg -> `Error (false, msg)
  (* TENET_COUNT_VERIFY=1: the counting sanitizer caught the symbolic
     fast path disagreeing with enumeration *)
  | T.Isl.Count.Verify_mismatch _ as e ->
      `Error
        ( false,
          An.Diagnostic.to_string
            (Option.get (An.Checker.diagnostic_of_exn e)) )
  (* a telemetry file that fails to write surfaces from Fun.protect's
     cleanup as Finally_raised *)
  | Fun.Finally_raised (Sys_error msg) -> `Error (false, msg)

let analyze_cmd =
  let run kernel sizes c_file arch bandwidth space time dataflow strict window
      lex scale_dims params deadline jobs trace stats json =
    wrap (fun () ->
        apply_jobs jobs;
        let req =
          {
            (request_of ~cmd:Api.Request.Analyze ~kernel ~sizes ~c_file ~arch
               ~bandwidth ~space ~time ~dataflow ~strict ~window ~lex
               ~scale_dims ~deadline)
            with
            Api.Request.params =
              (match params with
              | Some dims -> String.split_on_char ',' dims
              | None -> []);
          }
        in
        let resp =
          with_telemetry ~trace ~stats ~span:"cli.analyze" (fun () ->
              Api.run req)
        in
        finish_response ~json resp ~human:(fun b ->
            List.iter
              (fun d -> prerr_endline (An.Diagnostic.to_string d))
              b.Api.Response.diagnostics;
            match b.Api.Response.payload with
            | Some (Api.Response.Metrics { metrics; forms; _ }) ->
                print_string (T.report metrics);
                if forms <> [] then begin
                  print_endline "closed forms (in the size parameters):";
                  List.iter
                    (fun (k, v) -> Printf.printf "  %-24s %s\n" k v)
                    forms
                end
            | _ -> ()))
  in
  Cmd.v (Cmd.info "analyze" ~doc:"Analyze one dataflow (Figure 2 flow).")
    Term.(
      ret
        (const run $ kernel_t $ sizes_t $ c_file_t $ arch_t $ bandwidth_t
       $ space_t $ time_t $ dataflow_t $ strict_t $ window_t $ lex_t
       $ scaled_t $ params_t $ deadline_t $ jobs_t $ trace_t $ stats_t
       $ json_t))

let volumes_cmd =
  let run kernel sizes c_file arch bandwidth space time dataflow lex deadline
      jobs trace stats json =
    wrap (fun () ->
        apply_jobs jobs;
        let req =
          request_of ~cmd:Api.Request.Volumes ~kernel ~sizes ~c_file ~arch
            ~bandwidth ~space ~time ~dataflow ~strict:false ~window:1 ~lex
            ~scale_dims:None ~deadline
        in
        let resp =
          with_telemetry ~trace ~stats ~span:"cli.volumes" (fun () ->
              Api.run req)
        in
        finish_response ~json resp ~human:(fun b ->
            List.iter
              (fun d -> prerr_endline (An.Diagnostic.to_string d))
              b.Api.Response.diagnostics;
            match b.Api.Response.payload with
            | Some (Api.Response.Volumes { tensors; _ }) ->
                List.iter
                  (fun (tensor, dir, v) ->
                    Printf.printf
                      "%-3s %-3s total=%-10d uniq=%-10d reuseT=%-10d \
                       reuseS=%-10d\n"
                      tensor
                      (match dir with
                      | Ir.Tensor_op.Read -> "in"
                      | Ir.Tensor_op.Write -> "out")
                      v.M.Metrics.total v.M.Metrics.unique
                      v.M.Metrics.temporal_reuse v.M.Metrics.spatial_reuse)
                  tensors
            | _ -> ()))
  in
  Cmd.v
    (Cmd.info "volumes"
       ~doc:
         "Per-tensor volume metrics by relation counting (Table II), one \
          pipeline stage per tensor — the partial-result-friendly subset \
          of analyze.")
    Term.(
      ret
        (const run $ kernel_t $ sizes_t $ c_file_t $ arch_t $ bandwidth_t
       $ space_t $ time_t $ dataflow_t $ lex_t $ deadline_t $ jobs_t
       $ trace_t $ stats_t $ json_t))

let simulate_cmd =
  let run kernel sizes c_file arch bandwidth space time jobs trace stats json =
    wrap (fun () ->
        apply_jobs jobs;
        with_telemetry ~trace ~stats ~span:"cli.simulate" (fun () ->
            (* reuse the Api builders so names and error texts stay
               uniform with the served commands *)
            let req =
              request_of ~cmd:Api.Request.Analyze ~kernel ~sizes ~c_file
                ~arch ~bandwidth ~space ~time ~dataflow:None ~strict:false
                ~window:1 ~lex:false ~scale_dims:None ~deadline:None
            in
            let op = Api.op_of req in
            let spec = Api.arch_of req in
            let df = Api.dataflow_of req op in
            let r = T.Sim.Simulator.run spec op df in
            if json then
              print_json
                ([
                   ("command", Json.String "simulate");
                   ("kernel", Json.String kernel);
                   ("arch", Json.String arch);
                   ("dataflow", Api.Response.dataflow_json df);
                   ("result", T.Sim.Simulator.to_json r);
                 ]
                @ telemetry_fields ())
            else print_endline (T.Sim.Simulator.to_string r)))
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run the cycle-level simulator on a dataflow.")
    Term.(
      ret
        (const run $ kernel_t $ sizes_t $ c_file_t $ arch_t $ bandwidth_t
       $ space_t $ time_t $ jobs_t $ trace_t $ stats_t $ json_t))

let dse_cmd =
  let run kernel sizes c_file arch bandwidth strict search budget top deadline
      jobs trace stats json =
    wrap (fun () ->
        apply_jobs jobs;
        let req =
          let d = Api.Request.default Api.Request.Dse in
          let base =
            request_of ~cmd:Api.Request.Dse ~kernel ~sizes ~c_file ~arch
              ~bandwidth ~space:d.Api.Request.space ~time:d.Api.Request.time
              ~dataflow:None ~strict ~window:1 ~lex:false ~scale_dims:None
              ~deadline
          in
          { base with Api.Request.top; search; budget }
        in
        let resp =
          with_telemetry ~trace ~stats ~span:"cli.dse" (fun () -> Api.run req)
        in
        finish_response ~json resp ~human:(fun b ->
            List.iter
              (fun d -> prerr_endline (An.Diagnostic.to_string d))
              b.Api.Response.diagnostics;
            match b.Api.Response.payload with
            | Some (Api.Response.Dse_result { candidates; pruned; valid;
                                              outcomes }) ->
                if strict then
                  Printf.printf
                    "%d candidates, %d pruned by --strict, %d valid; top %d \
                     by latency:\n"
                    candidates pruned valid top
                else
                  Printf.printf "%d candidates, %d valid; top %d by latency:\n"
                    candidates valid top;
                List.iteri
                  (fun i (o : Api.Response.dse_outcome) ->
                    Printf.printf
                      "%2d. %-34s lat=%10.0f util=%4.2f sbw=%7.2f [%s]\n"
                      (i + 1) o.Api.Response.o_dataflow.Df.Dataflow.name
                      o.Api.Response.o_metrics.M.Metrics.latency
                      o.Api.Response.o_metrics.M.Metrics.avg_utilization
                      o.Api.Response.o_metrics.M.Metrics.sbw
                      (if o.Api.Response.o_expressible then "data-centric"
                       else "TENET-only"))
                  outcomes
            | _ -> ()))
  in
  let top_t =
    Arg.(value & opt int 10 & info [ "top" ] ~docv:"N"
           ~doc:"How many best dataflows to print.")
  in
  let search_t =
    let mode_conv =
      Arg.enum
        [
          ("exhaustive", `Exhaustive); ("pruned", `Pruned);
          ("heuristic", `Heuristic);
        ]
    in
    Arg.(
      value
      & opt mode_conv `Exhaustive
      & info [ "search" ] ~docv:"MODE"
          ~doc:
            "Search mode: $(b,exhaustive) scores every candidate, \
             $(b,pruned) adds symmetry and dominance pruning with the same \
             best result, $(b,heuristic) additionally caps full evaluations \
             at $(b,--budget).")
  in
  let budget_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "budget" ] ~docv:"N"
          ~doc:
            "Evaluation budget for $(b,--search heuristic) (default: a \
             quarter of the candidates).")
  in
  Cmd.v (Cmd.info "dse" ~doc:"Explore the dataflow design space.")
    Term.(
      ret
        (const run $ kernel_t $ sizes_t $ c_file_t $ arch_t $ bandwidth_t
       $ strict_t $ search_t $ budget_t $ top_t $ deadline_t $ jobs_t
       $ trace_t $ stats_t $ json_t))

let check_cmd =
  let diag_lines prefix ds =
    List.iter
      (fun d ->
        String.split_on_char '\n' (An.Diagnostic.to_string d)
        |> List.iter (fun line -> Printf.printf "%s%s\n" prefix line))
      ds
  in
  let run kernel sizes c_file arch bandwidth space time dataflow all
      capacities explain lex jobs trace stats json =
    wrap (fun () ->
        (match explain with
        | None -> ()
        | Some code -> (
            match An.Diagnostic.explain code with
            | Some text ->
                let head =
                  match
                    List.find_opt
                      (fun (c, _, _, _) -> c = code)
                      An.Diagnostic.registry
                  with
                  | Some (_, sev, title, _) ->
                      Printf.sprintf "%s (%s, %s)" code title
                        (An.Diagnostic.severity_to_string sev)
                  | None -> code
                in
                Printf.printf "%s\n\n%s\n" head text;
                exit 0
            | None ->
                failwith
                  (T.Util.Text.unknown ~what:"diagnostic code" code
                     (List.map
                        (fun (c, _, _, _) -> c)
                        An.Diagnostic.registry))));
        apply_jobs jobs;
        let adjacency = if lex then `Lex_step else `Inner_step in
        if all then begin
          (* the zoo x repository sweep keeps its dedicated path (and its
             stable --json shape, which scripts/ci.sh greps) *)
          let subjects = An.Checker.zoo_subjects () in
          let subjects =
            if capacities then
              (* generous defaults: roomy enough that every zoo subject
                 stays clean, tight enough to be meaningful (ci.sh runs
                 this sweep as the TN014-TN018 smoke test) *)
              List.map
                (fun (s : An.Checker.subject) ->
                  {
                    s with
                    An.Checker.s_spec =
                      Arch.Spec.with_capacities
                        ~scratchpad_bytes:(1 lsl 22) ~pe_regs:64
                        ~link_width:8 ~pe_ports:8 ~max_fanout:64
                        ~dram_bw:4096 s.An.Checker.s_spec;
                  })
                subjects
            else subjects
          in
          let had_errors =
            with_telemetry ~trace ~stats ~span:"cli.check" (fun () ->
                let results =
                  An.Checker.check_subjects ~adjacency subjects
                in
                let failing =
                  List.filter
                    (fun (_, ds) -> An.Diagnostic.errors ds <> [])
                    results
                in
                if json then
                  print_json
                    ([
                       ("command", Json.String "check");
                       ("subjects", Json.Int (List.length results));
                       ("failing", Json.Int (List.length failing));
                       ( "results",
                         Json.List
                           (List.map
                              (fun ((s : An.Checker.subject), ds) ->
                                Json.Obj
                                  [
                                    ("arch", Json.String s.An.Checker.s_arch);
                                    ( "kernel",
                                      Json.String s.An.Checker.s_kernel );
                                    ( "dataflow",
                                      Json.String
                                        s.An.Checker.s_df.Df.Dataflow.name );
                                    ( "diagnostics",
                                      Json.List
                                        (List.map An.Diagnostic.to_json ds)
                                    );
                                  ])
                              results) );
                     ]
                    @ telemetry_fields ())
                else begin
                  List.iter
                    (fun ((s : An.Checker.subject), ds) ->
                      let label =
                        Printf.sprintf "%-18s %-8s %s" s.An.Checker.s_arch
                          s.An.Checker.s_kernel
                          s.An.Checker.s_df.Df.Dataflow.name
                      in
                      if ds = [] then Printf.printf "ok    %s\n" label
                      else begin
                        Printf.printf "%-5s %s\n"
                          (if An.Diagnostic.errors ds <> [] then "FAIL"
                           else "warn")
                          label;
                        diag_lines "      " ds
                      end)
                    results;
                  Printf.printf "%d subjects checked, %d failing\n"
                    (List.length results) (List.length failing)
                end;
                failing <> [])
          in
          if had_errors then exit 1
        end
        else begin
          let req =
            request_of ~cmd:Api.Request.Check ~kernel ~sizes ~c_file ~arch
              ~bandwidth ~space ~time ~dataflow ~strict:false ~window:1 ~lex
              ~scale_dims:None ~deadline:None
          in
          let resp =
            with_telemetry ~trace ~stats ~span:"cli.check" (fun () ->
                Api.run req)
          in
          finish_response ~json resp ~human:(fun b ->
              match b.Api.Response.diagnostics with
              | [] -> print_endline "ok: all checks passed"
              | ds -> diag_lines "" ds);
          (* info-level capacity lint: a spec with no declared capacities
             makes TN014-TN018 vacuous; human output only, so the --json
             response stays the byte-stable API object *)
          if not json then
            (try
               List.iter
                 (fun d -> print_endline (An.Diagnostic.to_string d))
                 (An.Capacity.lint (Arch.Repository.find arch))
             with _ -> ());
          if
            An.Diagnostic.errors resp.Api.Response.body.Api.Response.diagnostics
            <> []
          then exit 1
        end)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Statically check a (kernel, dataflow, architecture) triple: Θ \
          validity, causality, interconnect well-formedness, reuse and \
          resource feasibility.  With --all, sweep the whole Table III \
          zoo across the architecture repository ($(b,--capacities) adds \
          generous capacity declarations so TN014-TN018 run).  \
          $(b,--explain CODE) documents one diagnostic code.  Exits \
          nonzero if any error diagnostic is found.")
    Term.(
      ret
        (const run $ kernel_t $ sizes_t $ c_file_t $ arch_t $ bandwidth_t
       $ space_t $ time_t $ dataflow_t
       $ Arg.(
           value & flag
           & info [ "all" ]
               ~doc:"Check every zoo dataflow on every matching-rank \
                     repository architecture.")
       $ Arg.(
           value & flag
           & info [ "capacities" ]
               ~doc:
                 "With $(b,--all): annotate every architecture with \
                  generous default capacities so the resource checks \
                  TN014-TN018 run (4 MiB scratchpad, 64 registers, 8-wide \
                  links, 8 ports, fan-out 64, 4096 words/cycle DRAM).")
       $ Arg.(
           value
           & opt (some string) None
           & info [ "explain" ] ~docv:"CODE"
               ~doc:
                 "Print the documentation paragraph for one diagnostic \
                  code (e.g. TN014) and exit; unknown codes get a \
                  nearest-match suggestion.")
       $ lex_t $ jobs_t $ trace_t $ stats_t $ json_t))

(* Flags shared by batch and serve: the scale-out knobs.  Each layers
   over Config.load (), so the precedence is flag > TENET_SERVE_* env >
   default. *)
let workers_t =
  Arg.(value & opt (some int) None & info [ "workers" ] ~docv:"N"
         ~doc:"Pre-fork $(docv) worker processes and fan requests out \
               over socketpairs (default \\$TENET_SERVE_WORKERS, or 1: \
               in-process).  Output stays byte-identical to a \
               single-process run.")

let cache_dir_t =
  Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR"
         ~doc:"Persist the result cache in $(docv) (default \
               \\$TENET_SERVE_CACHE_DIR, or off): loaded on startup, \
               merged back atomically on shutdown, shareable across \
               replicas.")

let serve_config ?queue ?workers ?cache_dir ?shed_low ?shed_normal
    ?access_log ?sample ?socket () : Server.Config.t =
  let cfg = Server.Config.load () in
  let opt v default = Option.value v ~default in
  {
    cfg with
    Server.Config.queue_limit = opt queue cfg.Server.Config.queue_limit;
    workers = opt workers cfg.Server.Config.workers;
    cache_dir =
      (match cache_dir with
      | Some _ -> cache_dir
      | None -> cfg.Server.Config.cache_dir);
    shed_low =
      (match shed_low with
      | Some _ -> shed_low
      | None -> cfg.Server.Config.shed_low);
    shed_normal =
      (match shed_normal with
      | Some _ -> shed_normal
      | None -> cfg.Server.Config.shed_normal);
    access_log;
    access_log_sample = opt sample 1;
    socket;
  }

let batch_cmd =
  let run file jobs workers cache_dir trace stats =
    wrap (fun () ->
        apply_jobs jobs;
        let cfg = serve_config ?workers ?cache_dir () in
        with_telemetry ~trace ~stats ~span:"cli.batch" (fun () ->
            let ic = if file = "-" then stdin else open_in file in
            Fun.protect
              ~finally:(fun () -> if file <> "-" then close_in ic)
              (fun () -> Server.run_batch cfg ic stdout)))
  in
  let file_t =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE"
           ~doc:"JSON-lines request file ('-' for stdin); blank and \
                 '#'-prefixed lines are skipped.")
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Evaluate a file of serve-protocol requests (one JSON object per \
          line, docs/serving.md) and print one response per line, in input \
          order.  Deterministic at any --jobs or --workers count, and \
          identical to running each request one-shot.")
    Term.(ret (const run $ file_t $ jobs_t $ workers_t $ cache_dir_t
               $ trace_t $ stats_t))

let serve_cmd =
  let run socket queue workers cache_dir shed_low shed_normal jobs
      access_log sample =
    wrap (fun () ->
        apply_jobs jobs;
        (match sample with
        | Some n when n < 1 ->
            failwith "--access-log-sample must be a positive integer"
        | _ -> ());
        if access_log = None && sample <> None then
          failwith "--access-log-sample requires --access-log";
        let cfg =
          serve_config ?queue ?workers ?cache_dir ?shed_low ?shed_normal
            ?access_log ?sample ?socket ()
        in
        Fun.protect
          ~finally:(fun () -> Access_log.disable ())
          (fun () -> Server.run cfg))
  in
  let socket_t =
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH"
           ~doc:"Listen on a Unix socket instead of stdin/stdout (one \
                 JSON-lines connection at a time).")
  in
  let queue_t =
    Arg.(value & opt (some int) None & info [ "queue" ] ~docv:"N"
           ~doc:"Bound on waiting requests before the service answers \
                 'overloaded' (default \\$TENET_SERVE_QUEUE, or 64).")
  in
  let shed_low_t =
    Arg.(value & opt (some int) None & info [ "shed-low" ] ~docv:"N"
           ~doc:"Queue depth at which low-priority requests shed \
                 (default \\$TENET_SERVE_SHED_LOW, or half the queue \
                 limit).")
  in
  let shed_normal_t =
    Arg.(value & opt (some int) None & info [ "shed-normal" ] ~docv:"N"
           ~doc:"Queue depth at which normal-priority requests shed \
                 (default \\$TENET_SERVE_SHED_NORMAL, or the queue limit \
                 itself, i.e. only at the hard bound).")
  in
  let access_log_t =
    Arg.(value & opt (some string) None & info [ "access-log" ] ~docv:"FILE"
           ~doc:"Append one JSON line per completed request (id, trace, \
                 fingerprint, status, cache outcome, latency, queue wait; \
                 see docs/serving.md).  With --workers, each worker \
                 appends to FILE.w0, FILE.w1, ...")
  in
  let sample_t =
    Arg.(value & opt (some int) None & info [ "access-log-sample" ] ~docv:"N"
           ~doc:"Log every Nth completed request (default 1: log all); \
                 requires --access-log.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the persistent analysis service: JSON-lines requests on \
          stdin (or --socket), responses in completion order correlated \
          by id, per-request deadlines, graduated load shedding, a \
          two-level result cache (in-memory LRU plus optional persistent \
          tier), a pre-forked worker fleet (--workers), live stats with \
          Prometheus exposition, and an optional access log \
          (docs/serving.md).")
    Term.(ret (const run $ socket_t $ queue_t $ workers_t $ cache_dir_t
               $ shed_low_t $ shed_normal_t $ jobs_t $ access_log_t
               $ sample_t))

let archs_cmd =
  let run () =
    `Ok
      (List.iter
         (fun (name, spec) ->
           Printf.printf "%-20s %s\n" name (Arch.Spec.to_string spec))
         Arch.Repository.all)
  in
  Cmd.v (Cmd.info "archs" ~doc:"List the architecture repository.")
    Term.(ret (const run $ const ()))

let zoo_cmd =
  let run kernel =
    wrap (fun () ->
        let dfs =
          match kernel with
          | "gemm" -> Df.Zoo.gemm_all ()
          | "conv" -> Df.Zoo.conv_all ()
          | "mttkrp" -> Df.Zoo.mttkrp_all ()
          | "jacobi2d" -> Df.Zoo.jacobi_all ()
          | "mmc" -> Df.Zoo.mmc_all ()
          | k ->
              failwith
                (T.Util.Text.unknown ~what:"kernel" k
                   [ "gemm"; "conv"; "mttkrp"; "jacobi2d"; "mmc" ])
        in
        List.iter (fun df -> print_endline (Df.Dataflow.to_string df)) dfs)
  in
  Cmd.v
    (Cmd.info "zoo" ~doc:"Print the Table III dataflows for a kernel.")
    Term.(ret (const run $ kernel_t))

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default
          (Cmd.info "tenet" ~version:"1.0.0"
             ~doc:
               "Relation-centric modeling of tensor dataflows on spatial \
                architectures (TENET, ISCA 2021).")
          [
            analyze_cmd;
            volumes_cmd;
            simulate_cmd;
            dse_cmd;
            check_cmd;
            batch_cmd;
            serve_cmd;
            archs_cmd;
            zoo_cmd;
          ]))
