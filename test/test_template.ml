(* Tests for Model.Template: parametric metric templates must reproduce
   the concrete engine byte for byte at every covered size, including
   sizes never analyzed concretely before. *)

module Isl = Tenet.Isl
module Ir = Tenet.Ir
module Arch = Tenet.Arch
module Df = Tenet.Dataflow
module M = Tenet.Model
module Json = Tenet.Obs.Json

let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let bytes_of (m : M.Metrics.t) = Json.to_string (M.Metrics.to_json m)

let with_verify f =
  Isl.Count.set_verify_mode (Some true);
  Fun.protect ~finally:(fun () -> Isl.Count.set_verify_mode None) f

(* ------------------------------------------------------------------ *)
(* Byte-identity against fresh concrete analyses.                      *)
(* ------------------------------------------------------------------ *)

let check_sizes ~msg tpl spec df make_op sizes_list =
  List.iter
    (fun sizes ->
      match M.Template.try_instantiate tpl ~sizes with
      | None ->
          Alcotest.failf "%s: template refused %s" msg
            (String.concat ","
               (List.map (fun (d, e) -> Printf.sprintf "%s=%d" d e) sizes))
      | Some fast ->
          let reference = M.Concrete.analyze spec (make_op sizes) df in
          check_string
            (Printf.sprintf "%s at %s" msg
               (String.concat ","
                  (List.map (fun (d, e) -> Printf.sprintf "%s=%d" d e) sizes)))
            (bytes_of reference) (bytes_of fast))
    sizes_list

let test_gemm_random_sizes () =
  with_verify @@ fun () ->
  let spec = Arch.Repository.tpu_like () in
  let df = Df.Zoo.gemm_ij_p_ijk_t () in
  let op = Ir.Kernels.gemm ~ni:64 ~nj:64 ~nk:64 in
  let tpl =
    M.Model.analyze_template spec op df ~params:[ "i"; "j"; "k" ]
  in
  let rand = Random.State.make [| 0x7e4e7 |] in
  (* stay above the per-class validity floors (residue + up to 3 periods,
     period 8 here): the template refuses smaller sizes by design *)
  let size () = 32 + Random.State.int rand 40 in
  let sizes_list =
    List.init 50 (fun _ -> [ ("i", size ()); ("j", size ()); ("k", size ()) ])
  in
  check_sizes ~msg:"gemm" tpl spec df
    (fun sizes ->
      Ir.Kernels.gemm ~ni:(List.assoc "i" sizes) ~nj:(List.assoc "j" sizes)
        ~nk:(List.assoc "k" sizes))
    sizes_list

let test_conv_random_sizes () =
  with_verify @@ fun () ->
  let spec = Arch.Repository.tpu_like () in
  let df = Df.Zoo.conv_nvdla () in
  let op = Ir.Kernels.conv2d ~nk:8 ~nc:16 ~nox:14 ~noy:14 ~nrx:3 ~nry:3 in
  let tpl = M.Model.analyze_template spec op df ~params:[ "c"; "ox"; "oy" ] in
  let rand = Random.State.make [| 0xc0c0 |] in
  let c_size () = 32 + Random.State.int rand 16 in
  let o_size () = 16 + Random.State.int rand 8 in
  let sizes_list =
    List.init 6 (fun _ ->
        [ ("c", c_size ()); ("ox", o_size ()); ("oy", o_size ()) ])
  in
  check_sizes ~msg:"conv" tpl spec df
    (fun sizes ->
      Ir.Kernels.conv2d
        ~nk:8
        ~nc:(List.assoc "c" sizes)
        ~nox:(List.assoc "ox" sizes)
        ~noy:(List.assoc "oy" sizes)
        ~nrx:3 ~nry:3)
    sizes_list

(* ------------------------------------------------------------------ *)
(* Table III pin: the template instantiated at the bench's own size    *)
(* must give exactly the numbers the concrete engine has always given. *)
(* ------------------------------------------------------------------ *)

let test_table3_pin () =
  let spec = Arch.Repository.tpu_like () in
  let df = Df.Zoo.gemm_ij_p_ijk_t () in
  let op = Ir.Kernels.gemm ~ni:64 ~nj:64 ~nk:64 in
  let tpl = M.Model.analyze_template spec op df ~params:[ "i"; "j"; "k" ] in
  let m =
    M.Model.instantiate tpl ~sizes:[ ("i", 64); ("j", 64); ("k", 64) ]
  in
  Alcotest.(check int) "instances" (64 * 64 * 64) m.M.Metrics.n_instances;
  let reference = M.Concrete.analyze spec op df in
  check_string "table3 gemm bytes" (bytes_of reference) (bytes_of m);
  (* a never-seen size answered without enumeration: points counters are
     untouched by try_instantiate *)
  let counters () =
    Tenet.Obs.(value (counter "count.points_enumerated"))
  in
  Tenet.Obs.enable ();
  let before = counters () in
  (match
     M.Template.try_instantiate tpl
       ~sizes:[ ("i", 96); ("j", 80); ("k", 112) ]
   with
  | None -> Alcotest.fail "table3 template refused a fresh size"
  | Some m96 ->
      Alcotest.(check int) "instances at 96x80x112" (96 * 80 * 112)
        m96.M.Metrics.n_instances);
  Tenet.Obs.disable ();
  Alcotest.(check int) "zero points enumerated" before (counters ())

(* ------------------------------------------------------------------ *)
(* Closed forms and fallbacks.                                         *)
(* ------------------------------------------------------------------ *)

let test_closed_forms () =
  let spec = Arch.Repository.tpu_like () in
  let df = Df.Zoo.gemm_ij_p_ijk_t () in
  let op = Ir.Kernels.gemm ~ni:64 ~nj:64 ~nk:64 in
  let tpl = M.Model.analyze_template spec op df ~params:[ "i"; "j"; "k" ] in
  let forms =
    M.Template.closed_forms tpl ~sizes:[ ("i", 64); ("j", 64); ("k", 64) ]
  in
  check_bool "has forms" true (forms <> []);
  check_bool "has n_instances form" true
    (List.mem_assoc "n_instances" forms);
  (* n_instances of gemm is exactly i*j*k *)
  let ni = List.assoc "n_instances" forms in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  check_bool
    (Printf.sprintf "n_instances form mentions all params (%s)" ni)
    true
    (List.for_all (fun d -> contains ni d) [ "i"; "j"; "k" ]);
  match M.Template.domain_closed_form tpl with
  | None -> Alcotest.fail "domain count should be covered for gemm"
  | Some s -> check_bool "domain form nonempty" true (String.length s > 0)

let test_small_sizes_fall_back () =
  (* extents below residue + 2*period are not covered: try_instantiate
     refuses, instantiate falls back to the concrete engine. *)
  let spec = Arch.Repository.tpu_like () in
  let df = Df.Zoo.gemm_ij_p_ijk_t () in
  let op = Ir.Kernels.gemm ~ni:64 ~nj:64 ~nk:64 in
  let tpl = M.Model.analyze_template spec op df ~params:[ "i"; "j"; "k" ] in
  let sizes = [ ("i", 5); ("j", 5); ("k", 5) ] in
  check_bool "refused" true (M.Template.try_instantiate tpl ~sizes = None);
  let m = M.Model.instantiate tpl ~sizes in
  let reference =
    M.Concrete.analyze spec (Ir.Kernels.gemm ~ni:5 ~nj:5 ~nk:5) df
  in
  check_string "fallback bytes" (bytes_of reference) (bytes_of m)

let test_bad_params_rejected () =
  let spec = Arch.Repository.tpu_like () in
  let df = Df.Zoo.gemm_ij_p_ijk_t () in
  let op = Ir.Kernels.gemm ~ni:64 ~nj:64 ~nk:64 in
  check_bool "unknown iterator raises" true
    (try
       ignore (M.Model.analyze_template spec op df ~params:[ "q" ]);
       false
     with Invalid_argument _ -> true);
  let tpl = M.Model.analyze_template spec op df ~params:[ "i" ] in
  check_bool "unknown size name raises" true
    (try
       ignore (M.Template.try_instantiate tpl ~sizes:[ ("z", 8) ]);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "template"
    [
      ( "byte-identity",
        [
          Alcotest.test_case "gemm 50 random sizes" `Slow
            test_gemm_random_sizes;
          Alcotest.test_case "conv random sizes" `Slow test_conv_random_sizes;
        ] );
      ( "pins",
        [
          Alcotest.test_case "table3 gemm pin" `Quick test_table3_pin;
          Alcotest.test_case "closed forms" `Quick test_closed_forms;
          Alcotest.test_case "small sizes fall back" `Quick
            test_small_sizes_fall_back;
          Alcotest.test_case "bad params rejected" `Quick
            test_bad_params_rejected;
        ] );
    ]
